// Wire replay client (DESIGN.md §14): synthesises the same fleet the
// throughput benches use (sim::synthesize_fleet — identical seeds, so a
// given --sessions/--identities/--rate/--duration names one exact
// workload), encodes it into VPWB streams, and replays them to a
// vp_ingest_server over loopback TCP across one or more connections.
//
//   ./build/tools/vp_ingest_client --port-file /tmp/vp.port
//       --sessions 8 --identities 8 --rate 20 --duration 20 --connections 2
//
// Observers are dealt round-robin across connections, so multi-connection
// runs exercise interleaved arrival at the server while each observer's
// own stream stays in order (the VPWB seq contract is per connection).
//
// Connection establishment retries deterministically: --retries N extra
// attempts per connection (default 5), sleeping --backoff-ms × 2^k before
// retry k — the same schedule every run, so failure traces reproduce.
// Retries consumed are reported in the final summary line.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "sim/replay_source.h"
#include "wire/client.h"
#include "wire/transport.h"

namespace {

// Polls `path` until it contains a port number (the server writes it
// after binding). Returns 0 on timeout.
std::uint16_t wait_for_port_file(const std::string& path, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(path);
    int port = 0;
    if (in && (in >> port) && port > 0 && port <= 65535) {
      return static_cast<std::uint16_t>(port);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const std::string host = args.get("host", "127.0.0.1");
  const std::string port_file = args.get("port-file", "");
  std::uint16_t port = static_cast<std::uint16_t>(args.get_int("port", 0));
  const std::size_t sessions =
      static_cast<std::size_t>(args.get_int("sessions", 8));
  const std::size_t identities =
      static_cast<std::size_t>(args.get_int("identities", 8));
  const double rate_hz = args.get_double("rate", 10.0);
  const double duration_s = args.get_double("duration", 20.0);
  const std::size_t connections =
      static_cast<std::size_t>(args.get_int("connections", 1));
  const double timeout_s = args.get_double("timeout", 30.0);
  const std::size_t max_retries =
      static_cast<std::size_t>(args.get_int("retries", 5));
  const std::int64_t backoff_ms = args.get_int("backoff-ms", 50);
  if (backoff_ms < 0) {
    std::fprintf(stderr, "vp_ingest_client: --backoff-ms must be >= 0\n");
    return 1;
  }

  if (port == 0 && !port_file.empty()) {
    port = wait_for_port_file(port_file, timeout_s);
  }
  if (port == 0) {
    std::fprintf(stderr,
                 "vp_ingest_client: no port (use --port or --port-file)\n");
    return 1;
  }

  const std::vector<sim::FleetBeacon> fleet =
      sim::synthesize_fleet(sessions, identities, rate_hz, duration_s);
  wire::FleetStreamOptions options;
  options.close_time_s = duration_s;

  // Deal observers round-robin, encode each connection's stream up
  // front so the send loop is pure transport work.
  std::vector<std::vector<std::uint64_t>> groups(
      std::min(connections, sessions));
  for (std::size_t o = 1; o <= sessions; ++o) {
    groups[(o - 1) % groups.size()].push_back(o);
  }
  std::vector<std::unique_ptr<wire::Connection>> conns;
  std::vector<wire::StreamSender> senders;
  std::size_t total_bytes = 0;
  std::size_t retries_used = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (const std::vector<std::uint64_t>& observers : groups) {
    std::vector<std::uint8_t> bytes =
        wire::encode_fleet_stream(fleet, observers, options);
    total_bytes += bytes.size();
    // Bounded deterministic backoff: attempt 0 immediately, then retry k
    // (k in [1, max_retries]) after backoff_ms·2^(k-1) — the schedule
    // depends only on the flags, never on wall-clock jitter.
    std::unique_ptr<wire::Connection> conn;
    for (std::size_t attempt = 0; !(conn = wire::tcp_connect(host, port));
         ++attempt) {
      if (attempt >= max_retries ||
          std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr,
                     "vp_ingest_client: cannot connect to %s:%u "
                     "(%zu attempts)\n",
                     host.c_str(), static_cast<unsigned>(port), attempt + 1);
        return 1;
      }
      ++retries_used;
      const std::int64_t sleep_ms = backoff_ms << std::min<std::size_t>(
                                        attempt, 10);  // cap growth at 1024x
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    conns.push_back(std::move(conn));
    senders.emplace_back(conns.back().get(), std::move(bytes));
  }

  for (;;) {
    std::size_t progress = 0;
    bool all_done = true;
    for (wire::StreamSender& sender : senders) {
      if (sender.done()) continue;
      progress += sender.send_some();
      all_done = all_done && sender.done();
    }
    if (all_done) break;
    if (std::chrono::steady_clock::now() > deadline) {
      std::fprintf(stderr, "vp_ingest_client: send timed out\n");
      return 1;
    }
    if (progress == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  for (std::unique_ptr<wire::Connection>& conn : conns) conn->close();

  std::printf(
      "vp_ingest_client: sent %zu bytes (%zu beacons, %zu observers) over "
      "%zu connections to %s:%u (%zu connect retries)\n",
      total_bytes, fleet.size(), sessions, conns.size(), host.c_str(),
      static_cast<unsigned>(port), retries_used);
  return 0;
}
