// Live terminal view over a telemetry JSONL stream (DESIGN.md §12):
//
//   vp_top <telemetry.jsonl> [--once] [--interval-ms <n>]
//
// Re-reads the frame stream each refresh and renders what an operator
// watches during a run: beacon/round throughput (cumulative totals plus
// the rate over the newest frame interval), every shed counter that has
// fired, per-shard round latency (p50/p95/p99 from the
// service.shard<k>.round_ns and stream.round_ns timing histograms), and
// the HealthMonitor alert count with the most recent alert's detail.
//
// --once prints a single snapshot and exits (exit 1 when the file holds
// no frames — how smoke.sh asserts telemetry actually flowed); the
// default follow mode clears the screen and refreshes every
// --interval-ms (default 1000) until interrupted. Frames are parsed with
// the same JSON layer the validator uses; malformed lines are counted
// and skipped, never fatal — vp_top is a viewer, check_run_report is the
// gate.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "obs/json.h"

namespace {

using vp::obs::json::Value;

struct LatencyRow {
  double count = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Everything one pass over the frame stream yields.
struct StreamState {
  std::size_t frames = 0;
  std::size_t bad_lines = 0;
  std::uint64_t last_seq = 0;
  double stream_time_s = 0.0;
  double rate_window_s = 0.0;  // stream time between the last two frames
  std::map<std::string, std::uint64_t> totals;      // accumulated deltas
  std::map<std::string, std::int64_t> last_deltas;  // newest frame only
  std::map<std::string, double> gauges;             // newest frame
  std::map<std::string, LatencyRow> latency;        // newest frame's timing
  std::uint64_t alerts = 0;
  std::string last_alert;
};

bool scan_file(const std::string& path, StreamState& state) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  double prev_time_s = 0.0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Value frame;
    try {
      frame = vp::obs::json::parse(line);
    } catch (const std::exception&) {
      ++state.bad_lines;
      continue;
    }
    if (!frame.is_object()) {
      ++state.bad_lines;
      continue;
    }
    prev_time_s = state.stream_time_s;
    if (const Value* v = frame.find("seq"); v != nullptr && v->is_number()) {
      state.last_seq = static_cast<std::uint64_t>(v->as_number());
    }
    if (const Value* v = frame.find("stream_time_s");
        v != nullptr && v->is_number()) {
      state.stream_time_s = v->as_number();
    }
    state.last_deltas.clear();
    if (const Value* counters = frame.find("counters");
        counters != nullptr && counters->is_object()) {
      for (const auto& [name, delta] : counters->as_object()) {
        if (!delta.is_number()) continue;
        const auto d = static_cast<std::int64_t>(delta.as_number());
        state.last_deltas[name] = d;
        state.totals[name] += static_cast<std::uint64_t>(d);
      }
    }
    if (const Value* gauges = frame.find("gauges");
        gauges != nullptr && gauges->is_object()) {
      for (const auto& [name, v] : gauges->as_object()) {
        if (v.is_number()) state.gauges[name] = v.as_number();
      }
    }
    if (const Value* timing = frame.find("timing");
        timing != nullptr && timing->is_object()) {
      for (const auto& [name, hist] : timing->as_object()) {
        if (!hist.is_object()) continue;
        LatencyRow row;
        const auto field = [&](const char* key) {
          const Value* v = hist.find(key);
          return v != nullptr && v->is_number() ? v->as_number() : 0.0;
        };
        row.count = field("count");
        row.p50 = field("p50");
        row.p95 = field("p95");
        row.p99 = field("p99");
        state.latency[name] = row;
      }
    }
    if (const Value* alerts = frame.find("alerts");
        alerts != nullptr && alerts->is_array()) {
      for (const Value& alert : alerts->as_array()) {
        ++state.alerts;
        if (!alert.is_object()) continue;
        const Value* invariant = alert.find("invariant");
        const Value* detail = alert.find("detail");
        state.last_alert =
            (invariant != nullptr && invariant->is_string()
                 ? invariant->as_string()
                 : std::string("?")) +
            ": " +
            (detail != nullptr && detail->is_string() ? detail->as_string()
                                                      : std::string());
      }
    }
    ++state.frames;
    state.rate_window_s = state.stream_time_s - prev_time_s;
  }
  return true;
}

std::string rate_cell(std::int64_t delta, double window_s) {
  if (window_s <= 0.0) return "-";
  return vp::Table::num(static_cast<double>(delta) / window_s, 1) + "/s";
}

std::string us(double ns) { return vp::Table::num(ns / 1000.0, 1); }

void render(const std::string& path, const StreamState& state,
            std::ostream& os) {
  os << path << "  frames=" << state.frames << "  seq=" << state.last_seq
     << "  stream_time=" << vp::Table::num(state.stream_time_s, 2) << "s";
  if (state.bad_lines > 0) os << "  bad_lines=" << state.bad_lines;
  os << "\n\n";

  // Throughput: the counters an operator watches, with the rate over the
  // newest frame interval (stream-clock, not wall-clock).
  static constexpr const char* kThroughput[] = {
      "stream.beacons_offered",  "stream.beacons_ingested",
      "stream.rounds",           "service.beacons_offered",
      "service.beacons_ingested", "service.rounds_executed",
      "service.pumps",           "fault.offered",
      "fault.emitted",           "detect.calls",
  };
  vp::Table throughput({"counter", "total", "rate"});
  for (const char* name : kThroughput) {
    const auto it = state.totals.find(name);
    if (it == state.totals.end()) continue;
    const auto d = state.last_deltas.find(name);
    throughput.add_row(
        {name, std::to_string(it->second),
         rate_cell(d == state.last_deltas.end() ? 0 : d->second,
                   state.rate_window_s)});
  }
  throughput.print(os);
  os << "\n";

  // Every shed/drop counter that has actually fired.
  vp::Table shed({"shed counter", "total"});
  bool any_shed = false;
  for (const auto& [name, total] : state.totals) {
    if (total == 0) continue;
    if (name.find("shed") == std::string::npos &&
        name.find("dropped") == std::string::npos &&
        name.find("evict") == std::string::npos) {
      continue;
    }
    shed.add_row({name, std::to_string(total)});
    any_shed = true;
  }
  if (any_shed) {
    shed.print(os);
    os << "\n";
  }

  // Round latency per shard (µs), from the newest frame's cumulative
  // timing histograms.
  vp::Table latency({"latency (us)", "count", "p50", "p95", "p99"});
  bool any_latency = false;
  for (const auto& [name, row] : state.latency) {
    const bool round_hist =
        name == "stream.round_ns" || name == "service.pump_ns" ||
        (name.rfind("service.shard", 0) == 0 &&
         name.size() >= 9 && name.compare(name.size() - 9, 9, ".round_ns") == 0);
    if (!round_hist || row.count <= 0.0) continue;
    latency.add_row({name, vp::Table::num(row.count, 0), us(row.p50),
                     us(row.p95), us(row.p99)});
    any_latency = true;
  }
  if (any_latency) {
    latency.print(os);
    os << "\n";
  }

  os << "alerts: " << state.alerts;
  if (!state.last_alert.empty()) os << "  last: " << state.last_alert;
  os << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: vp_top <telemetry.jsonl> [--once] [--interval-ms <n>]\n";
  std::string path;
  bool once = false;
  long interval_ms = 1000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::stol(argv[++i]);
      if (interval_ms < 1) interval_ms = 1;
    } else if (path.empty() && arg.rfind("--", 0) != 0) {
      path = arg;
    } else {
      std::cerr << kUsage;
      return 1;
    }
  }
  if (path.empty()) {
    std::cerr << kUsage;
    return 1;
  }

  for (;;) {
    StreamState state;
    if (!scan_file(path, state)) {
      std::cerr << "vp_top: cannot read " << path << "\n";
      return 1;
    }
    std::ostringstream out;
    render(path, state, out);
    if (once) {
      std::cout << out.str();
      if (state.frames == 0) {
        std::cerr << "vp_top: no telemetry frames in " << path << "\n";
        return 1;
      }
      return 0;
    }
    // Follow mode: home the cursor and repaint over the previous screen.
    std::cout << "\x1b[H\x1b[2J" << out.str() << std::flush;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
