// Standalone wire ingestion server (DESIGN.md §14): listens on loopback
// TCP, decodes VPWB beacon streams from vp_ingest_client (or any
// conforming sender), and routes them into an in-process fleet of
// sharded DetectionService backends via the consistent-hash ring.
//
//   ./build/tools/vp_ingest_server --port 0 --port-file /tmp/vp.port
//       --expect-connections 2 --telemetry-out telemetry.jsonl
//
// With --port 0 the kernel picks an ephemeral port; --port-file
// publishes the bound port for the client to discover. The server runs
// its poll/drain loop until --expect-connections peers have connected
// and every one of them has closed (all sessions CLOSEd, all frames
// drained), then exits 0 — unless the HealthMonitor raised an alert or
// the --max-seconds wall-clock guard expired. Standard run flags
// (--metrics-out, --telemetry-out, ...) produce the usual artifacts for
// check_run_report.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "core/detector.h"
#include "obs/report.h"
#include "obs/runtime.h"
#include "obs/telemetry.h"
#include "service/service.h"
#include "wire/server.h"
#include "wire/transport.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const RunFlags run_flags = parse_run_flags(args, /*default_threads=*/0);
  obs::RunSession session(args.program_name(), run_flags.metrics_out,
                          run_flags.trace_out);
  obs::HealthMonitor monitor = obs::HealthMonitor::with_default_invariants();
  obs::TelemetryExporter telemetry(obs::telemetry_config_from_flags(run_flags));
  if (telemetry.active()) telemetry.set_monitor(&monitor);
  obs::enable();

  const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
  const std::string port_file = args.get("port-file", "");
  const std::size_t backends_n =
      static_cast<std::size_t>(args.get_int("backends", 1));
  const std::size_t shards = static_cast<std::size_t>(args.get_int("shards", 4));
  const std::size_t expect =
      static_cast<std::size_t>(args.get_int("expect-connections", 1));
  const double max_seconds = args.get_double("max-seconds", 120.0);

  service::ServiceConfig config;
  config.shards = shards;
  config.threads = run_flags.threads;
  config.max_sessions = 4096;
  config.pump_batch_rounds = shards * 2;
  config.engine.condition_ingest = run_flags.cond;
  config.engine.detector =
      core::with_run_flags(core::tuned_simulation_options(1), run_flags);
  config.engine.ring_capacity = 4096;
  config.engine.max_identities = 256;

  std::vector<std::unique_ptr<service::DetectionService>> owned;
  std::vector<service::DetectionService*> backends;
  for (std::size_t b = 0; b < backends_n; ++b) {
    owned.push_back(std::make_unique<service::DetectionService>(config));
    owned.back()->set_round_callback(
        [&](const service::SessionRound& round) {
          telemetry.on_round(round.round.time_s);
        });
    backends.push_back(owned.back().get());
  }
  wire::IngestServer server(wire::IngestServerConfig{}, backends);

  wire::TcpListener listener(port);
  std::fprintf(stderr, "vp_ingest_server: listening on 127.0.0.1:%u\n",
               static_cast<unsigned>(listener.port()));
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::out | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
      return 1;
    }
    out << listener.port() << "\n";
  }

  const auto start = std::chrono::steady_clock::now();
  bool timed_out = false;
  for (;;) {
    while (std::unique_ptr<wire::Connection> conn = listener.accept()) {
      server.add_connection(std::move(conn));
    }
    const std::size_t bytes = server.poll();
    const std::size_t delivered = server.drain();
    telemetry.sample(server.watermark());
    if (server.stats().connections_opened >= expect &&
        server.connections_active() == 0 && server.frames_buffered() == 0) {
      break;
    }
    const double elapsed =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (elapsed > max_seconds) {
      timed_out = true;
      break;
    }
    if (bytes == 0 && delivered == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  telemetry.finish(server.watermark());

  const wire::IngestServer::Stats& stats = server.stats();
  std::printf(
      "vp_ingest_server: %llu bytes, %llu frames (%llu beacons ingested, "
      "%llu invalid, %llu backpressure) over %llu connections, "
      "watermark %.3f s, %llu health alerts\n",
      static_cast<unsigned long long>(stats.bytes_received),
      static_cast<unsigned long long>(stats.frames_received),
      static_cast<unsigned long long>(stats.beacons_ingested),
      static_cast<unsigned long long>(stats.frames_shed_invalid),
      static_cast<unsigned long long>(stats.frames_shed_backpressure),
      static_cast<unsigned long long>(stats.connections_opened),
      server.watermark(),
      static_cast<unsigned long long>(monitor.alerts_total()));
  if (timed_out) {
    std::fprintf(stderr, "vp_ingest_server: --max-seconds %.0f expired before "
                         "all connections closed\n", max_seconds);
    return 1;
  }
  return monitor.alerts_total() > 0 ? 1 : 0;
}
