// Schema checker for emitted observability artefacts:
//
//   check_run_report [report.json] [--trace <trace.jsonl>]
//                    [--require <counter>]... [--stream-bench <bench.json>]
//                    [--service-bench <bench.json>] [--chaos-bench <bench.json>]
//                    [--comparison-bench <bench.json>]
//                    [--fusion-bench <bench.json>] [--wire-bench <bench.json>]
//                    [--telemetry <telemetry.jsonl>]
//
// The positional run report may be omitted when only validating bench or
// telemetry artefacts (e.g. `check_run_report --chaos-bench
// BENCH_chaos.json`); --trace and --require need the report they qualify.
//
// Parses the report and validates it against voiceprint.run_report/v1 via
// obs::validate_run_report — the same function the unit tests call, so
// this binary cannot accept a document the tests would reject. With
// --trace, every JSONL line must parse and pass obs::validate_span. Each
// --require names a counter that must be present with a positive value
// (how smoke.sh asserts the stream.* pipeline actually ran). With
// --stream-bench, the file must pass stream::validate_stream_bench
// (voiceprint.stream_bench/v1, including the shed-beacon conservation
// law); with --service-bench, service::validate_service_bench
// (voiceprint.service_bench/v1, including the beacon and round
// conservation laws); with --chaos-bench, fault::validate_chaos_bench
// (voiceprint.chaos_bench/v1, including the injector and serving-stack
// conservation laws and the per-run divergence ceilings); with
// --comparison-bench, core::validate_comparison_bench
// (voiceprint.comparison_bench/v1, including the cascade exit-tier
// conservation law pairs_comparable = lb_kim_pruned + lb_keogh_pruned +
// fixed_pruned + early_abandoned + full_sweeps, and that the
// exact-vs-pruned verdict
// cross-check passed); with --fusion-bench, fusion::validate_fusion_bench
// (voiceprint.fusion_bench/v1, including the round conservation law
// rounds_delivered = fused + expired + pending, trust bounds in [0, 1],
// and fused DR >= single DR / fused FPR <= single FPR on every
// multi-observer row); with --wire-bench, wire::validate_wire_bench
// (voiceprint.wire_bench/v1, including the wire frame conservation law
// frames_received = frames_ingested + frames_shed_invalid +
// frames_shed_backpressure at quiescence). With --telemetry, every JSONL
// frame must pass
// obs::TelemetryValidator (voiceprint.telemetry/v1 schema, gapless frame
// sequence, non-decreasing stream clock, counter monotonicity, histogram
// shape, and the conservation laws re-evaluated per frame). Exit status 0
// on success, 1 on any violation (with
// a one-line reason on stderr). Used by scripts/smoke.sh (the `smoke`
// ctest).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.h"
#include "fault/report.h"
#include "fusion/report.h"
#include "obs/json.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "service/report.h"
#include "stream/report.h"
#include "wire/report.h"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int check_report(const std::string& path,
                 const std::vector<std::string>& required_counters) {
  std::string text;
  if (!read_file(path, text)) {
    std::cerr << "check_run_report: cannot read " << path << "\n";
    return 1;
  }
  vp::obs::json::Value report;
  try {
    report = vp::obs::json::parse(text);
  } catch (const std::exception& e) {
    std::cerr << "check_run_report: " << path << ": " << e.what() << "\n";
    return 1;
  }
  std::string error;
  if (!vp::obs::validate_run_report(report, &error)) {
    std::cerr << "check_run_report: " << path << ": " << error << "\n";
    return 1;
  }
  const auto& counters = report.find("counters")->as_object();
  for (const std::string& name : required_counters) {
    const auto it = counters.find(name);
    if (it == counters.end()) {
      std::cerr << "check_run_report: " << path << ": required counter '"
                << name << "' missing\n";
      return 1;
    }
    if (!it->second.is_number() || it->second.as_number() <= 0) {
      std::cerr << "check_run_report: " << path << ": required counter '"
                << name << "' is not positive\n";
      return 1;
    }
  }
  const auto& histograms = report.find("histograms")->as_object();
  std::cout << "ok: " << path << " (" << counters.size() << " counters, "
            << histograms.size() << " histograms)\n";
  return 0;
}

int check_stream_bench(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) {
    std::cerr << "check_run_report: cannot read " << path << "\n";
    return 1;
  }
  vp::obs::json::Value bench;
  try {
    bench = vp::obs::json::parse(text);
  } catch (const std::exception& e) {
    std::cerr << "check_run_report: " << path << ": " << e.what() << "\n";
    return 1;
  }
  std::string error;
  if (!vp::stream::validate_stream_bench(bench, &error)) {
    std::cerr << "check_run_report: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << "ok: " << path << " ("
            << bench.find("configs")->as_array().size()
            << " stream bench configs)\n";
  return 0;
}

int check_service_bench(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) {
    std::cerr << "check_run_report: cannot read " << path << "\n";
    return 1;
  }
  vp::obs::json::Value bench;
  try {
    bench = vp::obs::json::parse(text);
  } catch (const std::exception& e) {
    std::cerr << "check_run_report: " << path << ": " << e.what() << "\n";
    return 1;
  }
  std::string error;
  if (!vp::service::validate_service_bench(bench, &error)) {
    std::cerr << "check_run_report: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << "ok: " << path << " ("
            << bench.find("configs")->as_array().size()
            << " service bench configs)\n";
  return 0;
}

int check_chaos_bench(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) {
    std::cerr << "check_run_report: cannot read " << path << "\n";
    return 1;
  }
  vp::obs::json::Value bench;
  try {
    bench = vp::obs::json::parse(text);
  } catch (const std::exception& e) {
    std::cerr << "check_run_report: " << path << ": " << e.what() << "\n";
    return 1;
  }
  std::string error;
  if (!vp::fault::validate_chaos_bench(bench, &error)) {
    std::cerr << "check_run_report: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << "ok: " << path << " ("
            << bench.find("runs")->as_array().size() << " chaos runs)\n";
  return 0;
}

int check_comparison_bench(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) {
    std::cerr << "check_run_report: cannot read " << path << "\n";
    return 1;
  }
  vp::obs::json::Value bench;
  try {
    bench = vp::obs::json::parse(text);
  } catch (const std::exception& e) {
    std::cerr << "check_run_report: " << path << ": " << e.what() << "\n";
    return 1;
  }
  std::string error;
  if (!vp::core::validate_comparison_bench(bench, &error)) {
    std::cerr << "check_run_report: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << "ok: " << path << " ("
            << bench.find("configs")->as_array().size()
            << " comparison bench configs)\n";
  return 0;
}

int check_fusion_bench(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) {
    std::cerr << "check_run_report: cannot read " << path << "\n";
    return 1;
  }
  vp::obs::json::Value bench;
  try {
    bench = vp::obs::json::parse(text);
  } catch (const std::exception& e) {
    std::cerr << "check_run_report: " << path << ": " << e.what() << "\n";
    return 1;
  }
  std::string error;
  if (!vp::fusion::validate_fusion_bench(bench, &error)) {
    std::cerr << "check_run_report: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << "ok: " << path << " ("
            << bench.find("configs")->as_array().size()
            << " fusion bench configs)\n";
  return 0;
}

int check_wire_bench(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) {
    std::cerr << "check_run_report: cannot read " << path << "\n";
    return 1;
  }
  vp::obs::json::Value bench;
  try {
    bench = vp::obs::json::parse(text);
  } catch (const std::exception& e) {
    std::cerr << "check_run_report: " << path << ": " << e.what() << "\n";
    return 1;
  }
  std::string error;
  if (!vp::wire::validate_wire_bench(bench, &error)) {
    std::cerr << "check_run_report: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << "ok: " << path << " ("
            << bench.find("configs")->as_array().size()
            << " wire bench configs)\n";
  return 0;
}

int check_telemetry(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "check_run_report: cannot read " << path << "\n";
    return 1;
  }
  vp::obs::TelemetryValidator validator;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    vp::obs::json::Value frame;
    try {
      frame = vp::obs::json::parse(line);
    } catch (const std::exception& e) {
      std::cerr << "check_run_report: " << path << ":" << lineno << ": "
                << e.what() << "\n";
      return 1;
    }
    std::string error;
    if (!validator.check_frame(frame, &error)) {
      std::cerr << "check_run_report: " << path << ":" << lineno << ": "
                << error << "\n";
      return 1;
    }
  }
  std::string error;
  if (!validator.finish(&error)) {
    std::cerr << "check_run_report: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << "ok: " << path << " (" << validator.frames()
            << " telemetry frames, " << validator.alerts_seen()
            << " alerts)\n";
  return 0;
}

int check_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "check_run_report: cannot read " << path << "\n";
    return 1;
  }
  std::string line;
  std::size_t lineno = 0;
  std::size_t spans = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    vp::obs::json::Value span;
    try {
      span = vp::obs::json::parse(line);
    } catch (const std::exception& e) {
      std::cerr << "check_run_report: " << path << ":" << lineno << ": "
                << e.what() << "\n";
      return 1;
    }
    std::string error;
    if (!vp::obs::validate_span(span, &error)) {
      std::cerr << "check_run_report: " << path << ":" << lineno << ": "
                << error << "\n";
      return 1;
    }
    ++spans;
  }
  if (spans == 0) {
    std::cerr << "check_run_report: " << path << ": no spans recorded\n";
    return 1;
  }
  std::cout << "ok: " << path << " (" << spans << " spans)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: check_run_report [report.json] [--trace <trace.jsonl>] "
      "[--require <counter>]... [--stream-bench <bench.json>] "
      "[--service-bench <bench.json>] [--chaos-bench <bench.json>] "
      "[--comparison-bench <bench.json>] [--fusion-bench <bench.json>] "
      "[--wire-bench <bench.json>] [--telemetry <telemetry.jsonl>]\n"
      "       (report.json may be omitted when only bench/telemetry "
      "artefacts are checked)\n";
  std::string report_path;
  std::string trace_path;
  std::string stream_bench_path;
  std::string service_bench_path;
  std::string chaos_bench_path;
  std::string comparison_bench_path;
  std::string fusion_bench_path;
  std::string wire_bench_path;
  std::string telemetry_path;
  std::vector<std::string> required_counters;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--require" && i + 1 < argc) {
      required_counters.push_back(argv[++i]);
    } else if (arg == "--stream-bench" && i + 1 < argc) {
      stream_bench_path = argv[++i];
    } else if (arg == "--service-bench" && i + 1 < argc) {
      service_bench_path = argv[++i];
    } else if (arg == "--chaos-bench" && i + 1 < argc) {
      chaos_bench_path = argv[++i];
    } else if (arg == "--comparison-bench" && i + 1 < argc) {
      comparison_bench_path = argv[++i];
    } else if (arg == "--fusion-bench" && i + 1 < argc) {
      fusion_bench_path = argv[++i];
    } else if (arg == "--wire-bench" && i + 1 < argc) {
      wire_bench_path = argv[++i];
    } else if (arg == "--telemetry" && i + 1 < argc) {
      telemetry_path = argv[++i];
    } else if (report_path.empty()) {
      report_path = arg;
    } else {
      std::cerr << kUsage;
      return 1;
    }
  }
  const bool has_bench = !stream_bench_path.empty() ||
                         !service_bench_path.empty() ||
                         !chaos_bench_path.empty() ||
                         !comparison_bench_path.empty() ||
                         !fusion_bench_path.empty() ||
                         !wire_bench_path.empty() ||
                         !telemetry_path.empty();
  if (report_path.empty() &&
      (!has_bench || !trace_path.empty() || !required_counters.empty())) {
    std::cerr << kUsage;
    return 1;
  }
  int status = 0;
  if (!report_path.empty()) {
    status = check_report(report_path, required_counters);
  }
  if (!trace_path.empty()) status |= check_trace(trace_path);
  if (!stream_bench_path.empty()) status |= check_stream_bench(stream_bench_path);
  if (!service_bench_path.empty()) {
    status |= check_service_bench(service_bench_path);
  }
  if (!chaos_bench_path.empty()) status |= check_chaos_bench(chaos_bench_path);
  if (!comparison_bench_path.empty()) {
    status |= check_comparison_bench(comparison_bench_path);
  }
  if (!fusion_bench_path.empty()) status |= check_fusion_bench(fusion_bench_path);
  if (!wire_bench_path.empty()) status |= check_wire_bench(wire_bench_path);
  if (!telemetry_path.empty()) status |= check_telemetry(telemetry_path);
  return status;
}
