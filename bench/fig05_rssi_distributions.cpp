// Fig. 5 — RSSI distributions from Scenario 1 (two vehicles in the campus)
// plus the Observation-1 point: inverting a predefined model on mean RSSI
// badly misestimates the true 140 m separation.
//
// (a)/(b): two stationary 10-minute captures at 140 m — distributions and
//          the distances FSPL / two-ray-ground would infer from the means.
// (c):     four randomly selected 1-minute moving segments — visibly
//          non-normal, shifting distributions.
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "fieldtest/area.h"
#include "radio/fading.h"
#include "radio/propagation.h"
#include "radio/receiver.h"

namespace {

using namespace vp;

// Emits an ASCII histogram of the samples.
void print_histogram(const std::vector<double>& samples, const std::string& title) {
  Histogram hist(-95.0, -55.0, 20);
  hist.add_all(samples);
  RunningStats stats;
  for (double s : samples) stats.add(s);
  std::cout << title << "\n  n=" << samples.size()
            << "  mean=" << Table::num(stats.mean(), 4) << " dBm"
            << "  std=" << Table::num(stats.stddev(), 4) << " dB\n";
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    if (hist.count(b) == 0) continue;
    const int bars = static_cast<int>(hist.fraction(b) * 200.0);
    std::cout << "  " << Table::num(hist.bin_center(b), 0) << " dBm | "
              << std::string(static_cast<std::size_t>(bars), '#') << " "
              << Table::num(hist.fraction(b) * 100.0, 1) << "%\n";
  }
  std::cout << "\n";
}

// Samples a stationary capture: fixed 140 m link through the campus
// channel with correlated shadowing (the channel itself drifts over time,
// which is why the two periods differ — Observation 1). `site_shadow_db`
// is the fixed large-scale shadowing of the parking spot: the paper's
// stationary captures sit 9–13 dB below the fitted mean path loss (that
// is precisely why FSPL inversion misjudged 140 m as 281.5 m).
std::vector<double> stationary_capture(double minutes, std::uint64_t seed,
                                       double sigma_scale,
                                       double site_shadow_db) {
  const radio::DualSlopeModel model(units::kDsrcFrequencyHz,
                                    ft::area_params(ft::Area::kCampus));
  radio::CorrelatedShadowingField field(8.0, 0.5, Rng(seed));
  const radio::Receiver receiver{};
  std::vector<double> out;
  const double d = 140.0;
  for (double t = 0.0; t < minutes * 60.0; t += 0.1) {
    const double mean = model.mean_rx_power_dbm(20.0, d, t) + site_shadow_db;
    const double sigma = model.shadowing_sigma_db(d, t) * sigma_scale;
    const auto rssi = receiver.measure(mean + field.sample(0, 1, sigma, t));
    if (rssi.has_value()) out.push_back(*rssi);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_seed("seed", 509);

  std::cout << "Fig. 5 reproduction — RSSI distributions (Scenario 1)\n"
            << "Testbed stand-in: campus dual-slope channel (Table IV fit), "
               "140 m link,\n10 Hz beacons, -95 dBm sensitivity, integer "
               "RSSI. Seed "
            << seed << ".\n\n";

  // (a) and (b): two stationary periods. The channel's slow drift and the
  // spot's site shadowing give them different means and spreads, as
  // measured in the paper ((-76.86, 2.33) vs (-72.54, 0.77) dBm).
  const auto period_a = stationary_capture(10.0, seed, 1.0, -13.5);
  const auto period_b = stationary_capture(10.0, seed + 1, 0.3, -9.2);
  print_histogram(period_a, "(a) stationary period 1 (10 min)");
  print_histogram(period_b, "(b) stationary period 2 (10 min)");

  // Observation 1: model inversion on the means misestimates 140 m badly.
  {
    const radio::FreeSpaceModel fspl(units::kDsrcFrequencyHz);
    const radio::TwoRayGroundModel trgp(units::kDsrcFrequencyHz, 1.5, 1.5);
    Table table({"period", "mean RSSI (dBm)", "FSPL estimate (m)",
                 "TRGP estimate (m)", "true distance (m)"});
    int idx = 1;
    for (const auto* samples : {&period_a, &period_b}) {
      RunningStats stats;
      for (double s : *samples) stats.add(s);
      table.add_row({std::to_string(idx++), Table::num(stats.mean(), 2),
                     Table::num(fspl.distance_for_mean_power(
                                    20.0, stats.mean(), 0.0), 1),
                     Table::num(trgp.distance_for_mean_power(
                                    20.0, stats.mean(), 0.0), 1),
                     "140.0"});
    }
    std::cout << "Observation 1 — positions inferred from predefined models "
                 "(paper: 281.5/171.2 m FSPL, 263.9/205.8 m TRGP):\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  // (c) four random 1-minute moving segments: the vehicle wanders between
  // 60 and 260 m, so each segment's distribution is shifted and skewed.
  std::cout << "(c) four random 1-minute segments while moving:\n\n";
  Rng rng = Rng(seed).fork("moving");
  const radio::DualSlopeModel model(units::kDsrcFrequencyHz,
                                    ft::area_params(ft::Area::kCampus));
  radio::CorrelatedShadowingField field(1.0, 1.0, Rng(seed + 2));
  const radio::Receiver receiver{};
  for (int segment = 0; segment < 4; ++segment) {
    std::vector<double> samples;
    double d = rng.uniform(60.0, 260.0);
    double drift = rng.uniform(-3.0, 3.0);
    for (double t = 0.0; t < 60.0; t += 0.1) {
      d = std::max(20.0, d + drift * 0.1);
      if (rng.chance(0.01)) drift = rng.uniform(-3.0, 3.0);
      const double tt = segment * 60.0 + t;
      const double mean = model.mean_rx_power_dbm(20.0, d, tt);
      const double sigma = model.shadowing_sigma_db(d, tt);
      const auto rssi =
          receiver.measure(mean + field.sample(0, 1, sigma, tt));
      if (rssi.has_value()) samples.push_back(*rssi);
    }
    print_histogram(samples,
                    "segment " + std::to_string(segment + 1) + " (1 min)");
  }
  std::cout << "Observation 1: RSSI is neither stationary in time nor "
               "normal while moving; predefined models mislocate nodes.\n";
  return 0;
}
