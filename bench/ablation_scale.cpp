// Ablation A8 — attack-scale sensitivity. The paper fixes the attack at
// 5% malicious vehicles with 3–6 Sybil identities each (Section V-A);
// this sweep varies both knobs to show where the voiceprint signature
// gets stronger (more Sybils per attacker = bigger cliques, more votes)
// and where the channel itself throttles the attack (an attacker's one
// radio must carry 10·(1+n) beacons per second).
#include <iostream>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/detector.h"
#include "obs/report.h"
#include "sim/runner.h"
#include "sim/world.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const RunFlags run_flags = parse_run_flags(args);
  obs::RunSession session(args.program_name(), run_flags.metrics_out,
                          run_flags.trace_out);
  const double density = args.get_double("density", 30.0);
  const std::uint64_t seed = args.get_seed("seed", 2208);
  const std::size_t threads = run_flags.threads;

  std::cout << "Ablation A8 — attack scale (density " << density
            << " vhls/km)\n\n";

  std::cout << "Sybil identities per attacker (malicious fraction 5%):\n";
  Table by_count({"sybils/attacker", "DR", "FPR", "attacker queue drops"});
  for (int sybils : {1, 2, 4, 8, 12}) {
    sim::ScenarioConfig config;
    config.density_per_km = density;
    config.sybil_per_malicious_min = sybils;
    config.sybil_per_malicious_max = sybils;
    config.seed = mix64(seed, static_cast<std::uint64_t>(sybils));
    sim::World world(config);
    world.run();
    core::VoiceprintDetector detector(core::tuned_simulation_options(threads));
    const sim::EvaluationResult result = sim::evaluate(
        world, detector, {.max_observers = 8, .threads = threads});
    by_count.add_row({std::to_string(sybils),
                      Table::num(result.average_dr, 4),
                      Table::num(result.average_fpr, 4),
                      std::to_string(world.stats().beacon_queue_drops)});
  }
  by_count.print(std::cout);

  std::cout << "\nMalicious fraction (3-6 sybils each):\n";
  Table by_fraction({"malicious fraction", "DR", "FPR"});
  for (double fraction : {0.02, 0.05, 0.10, 0.20}) {
    sim::ScenarioConfig config;
    config.density_per_km = density;
    config.malicious_fraction = fraction;
    config.seed = mix64(seed, static_cast<std::uint64_t>(fraction * 1000));
    sim::World world(config);
    world.run();
    core::VoiceprintDetector detector(core::tuned_simulation_options(threads));
    const sim::EvaluationResult result = sim::evaluate(
        world, detector, {.max_observers = 8, .threads = threads});
    by_fraction.add_row({Table::num(fraction, 2),
                         Table::num(result.average_dr, 4),
                         Table::num(result.average_fpr, 4)});
  }
  by_fraction.print(std::cout);

  std::cout << "\nExpected: a lone Sybil identity is the hardest case "
               "(pair evidence only, no clique); detection strengthens "
               "with clique size until the attacker's own MAC queue "
               "saturates; accuracy is insensitive to how many attackers "
               "there are (each is detected from its own clique).\n";
  return 0;
}
