// Wire ingestion throughput sweep (DESIGN.md §14): how fast can the
// VPWB codec + IngestServer front-end move fleets of beacons from
// loopback TCP sockets into a sharded DetectionService — as a function
// of connection count × beacon rate — plus two adversarial
// configurations: a corrupted stream (seeded byte flips, every damaged
// frame shed as invalid before touching any session) and an overloaded
// one (tiny frame queue, drains withheld, frames shed as backpressure).
//
// Each configuration synthesises the same fleet the service bench uses
// (sim::synthesize_fleet — identical seeds), encodes one VPWB stream
// per connection up front, then replays them from sender threads while
// the main thread accepts/polls/drains. The timed region is transport +
// decode + routing + rounds. The wire frame conservation law is checked
// two ways: live by the HealthMonitor on every telemetry frame, and at
// rest by the report's self-validation (validate_wire_bench) before
// BENCH_wire.json is written.
//
//   ./build/bench/wire_throughput                  # full sweep
//   ./build/bench/wire_throughput --quick          # smoke-sized sweep
//   ./build/bench/wire_throughput --backends 2 --shards 4 --duration 30
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "core/detector.h"
#include "obs/report.h"
#include "obs/runtime.h"
#include "obs/telemetry.h"
#include "service/service.h"
#include "sim/replay_source.h"
#include "wire/client.h"
#include "wire/report.h"
#include "wire/server.h"
#include "wire/transport.h"

namespace {

using namespace vp;

enum class Mode { kClean, kCorrupt, kOverload };

// Flips one mid-payload byte in every `stride`-th BEACON frame (control
// frames stay intact so sessions still open and close). The stream is
// frame-aligned, so damaged frames are consumed whole and each flip
// costs exactly one checksum reject.
void corrupt_stream(std::vector<std::uint8_t>& bytes, std::size_t stride,
                    std::uint64_t seed) {
  Rng rng(seed);
  std::size_t beacon_index = 0;
  for (std::size_t base = 0; base + wire::kFrameBytes <= bytes.size();
       base += wire::kFrameBytes) {
    if (bytes[base + 5] != static_cast<std::uint8_t>(wire::FrameType::kBeacon))
      continue;
    if (beacon_index++ % stride == 0) {
      const std::size_t offset =
          static_cast<std::size_t>(rng.uniform_int(6, 41));  // seq..rssi
      bytes[base + offset] ^= 0xFF;
    }
  }
}

wire::WireBenchConfigResult run_config(
    const std::string& label, std::size_t connections, std::size_t observers,
    std::size_t identities, double rate_hz, double duration_s,
    std::size_t backends_n, std::size_t shards, std::size_t threads,
    Mode mode, const vp::RunFlags& run_flags,
    obs::TelemetryExporter& telemetry) {
  const std::vector<sim::FleetBeacon> fleet =
      sim::synthesize_fleet(observers, identities, rate_hz, duration_s);
  wire::FleetStreamOptions options;
  options.close_time_s = duration_s;

  std::vector<std::vector<std::uint64_t>> groups(
      std::min(connections, observers));
  for (std::size_t o = 1; o <= observers; ++o) {
    groups[(o - 1) % groups.size()].push_back(o);
  }
  std::vector<std::vector<std::uint8_t>> streams;
  for (const std::vector<std::uint64_t>& group : groups) {
    streams.push_back(wire::encode_fleet_stream(fleet, group, options));
    if (mode == Mode::kCorrupt) {
      corrupt_stream(streams.back(), /*stride=*/50,
                     mix64(0xc0de, streams.size()));
    }
  }

  service::ServiceConfig config;
  config.shards = shards;
  config.threads = threads;
  config.max_sessions = observers + 8;
  config.pump_batch_rounds = shards * 2;
  config.engine.detector =
      core::with_run_flags(core::tuned_simulation_options(1), run_flags);
  config.engine.ring_capacity = static_cast<std::size_t>(
      config.engine.observation_time_s * rate_hz * 2.0) + 16;
  config.engine.max_identities = identities + 16;
  std::vector<std::unique_ptr<service::DetectionService>> owned;
  std::vector<service::DetectionService*> backends;
  for (std::size_t b = 0; b < backends_n; ++b) {
    owned.push_back(std::make_unique<service::DetectionService>(config));
    owned.back()->set_round_callback(
        [&](const service::SessionRound& round) {
          telemetry.on_round(round.round.time_s);
        });
    backends.push_back(owned.back().get());
  }

  wire::IngestServerConfig server_config;
  if (mode == Mode::kOverload) {
    // A queue smaller than one read chunk's worth of frames, drained
    // only every 32nd iteration: decode outpaces delivery and the
    // excess must be counted shed, never buffered unbounded.
    server_config.max_frames_buffered = 64;
  }
  wire::IngestServer server(server_config, backends);
  wire::TcpListener listener;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> senders;
  for (std::vector<std::uint8_t>& bytes : streams) {
    senders.emplace_back([&listener, &bytes]() {
      std::unique_ptr<wire::Connection> conn;
      while (!(conn = wire::tcp_connect("127.0.0.1", listener.port()))) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      wire::StreamSender sender(conn.get(), std::move(bytes));
      while (!sender.done()) {
        if (sender.send_some() == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
      conn->close();
    });
  }

  std::size_t accepted = 0;
  std::uint64_t iteration = 0;
  const std::size_t drain_every = mode == Mode::kOverload ? 32 : 1;
  for (;;) {
    while (accepted < groups.size()) {
      std::unique_ptr<wire::Connection> conn = listener.accept();
      if (conn == nullptr) break;
      server.add_connection(std::move(conn));
      ++accepted;
    }
    const std::size_t bytes = server.poll();
    std::size_t delivered = 0;
    if (++iteration % drain_every == 0) delivered = server.drain();
    telemetry.sample(server.watermark());
    if (accepted == groups.size() && server.connections_active() == 0 &&
        server.frames_buffered() == 0) {
      break;
    }
    if (bytes == 0 && delivered == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  server.drain();  // deliver anything queued by the final poll
  telemetry.sample(server.watermark());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  for (std::thread& t : senders) t.join();
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();

  const wire::IngestServer::Stats& stats = server.stats();
  wire::WireBenchConfigResult result;
  result.label = label;
  result.connections = groups.size();
  result.observers = observers;
  result.identities_per_observer = identities;
  result.beacon_rate_hz = rate_hz;
  result.duration_s = duration_s;
  result.backends = backends_n;
  result.shards = shards;
  result.threads = threads;
  result.bytes_received = stats.bytes_received;
  result.frames_received = stats.frames_received;
  result.frames_ingested = stats.frames_ingested;
  result.frames_shed_invalid = stats.frames_shed_invalid;
  result.frames_shed_backpressure = stats.frames_shed_backpressure;
  result.beacons_ingested = stats.beacons_ingested;
  for (service::DetectionService* backend : backends) {
    result.rounds_executed += backend->stats().rounds_executed;
  }
  result.failovers = stats.failovers;
  result.wall_s = wall_s;
  result.ingest_beacons_per_s =
      wall_s > 0.0 ? static_cast<double>(stats.beacons_ingested) / wall_s
                   : 0.0;
  result.round_ns = obs::registry().histogram("stream.round_ns").snapshot();

  std::printf(
      "BENCH %-12s conns=%-2zu rate=%5.1f Hz  ingest=%9.0f beacons/s  "
      "frames=%llu (invalid=%llu backpressure=%llu)  rounds=%llu\n",
      label.c_str(), result.connections, rate_hz,
      result.ingest_beacons_per_s,
      static_cast<unsigned long long>(result.frames_received),
      static_cast<unsigned long long>(result.frames_shed_invalid),
      static_cast<unsigned long long>(result.frames_shed_backpressure),
      static_cast<unsigned long long>(result.rounds_executed));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const RunFlags run_flags = parse_run_flags(args, /*default_threads=*/0);
  obs::RunSession session(args.program_name(), run_flags.metrics_out,
                          run_flags.trace_out);
  obs::HealthMonitor monitor = obs::HealthMonitor::with_default_invariants();
  obs::TelemetryExporter telemetry(obs::telemetry_config_from_flags(run_flags));
  if (telemetry.active()) telemetry.set_monitor(&monitor);
  obs::enable();

  const bool quick = args.get_bool("quick", false);
  const double duration = args.get_double("duration", quick ? 20.0 : 40.0);
  const std::size_t observers =
      static_cast<std::size_t>(args.get_int("observers", quick ? 4 : 16));
  const std::size_t identities =
      static_cast<std::size_t>(args.get_int("identities", quick ? 8 : 16));
  const std::size_t backends =
      static_cast<std::size_t>(args.get_int("backends", 1));
  const std::size_t shards =
      static_cast<std::size_t>(args.get_int("shards", 4));
  const std::string out_path = args.get("out", "BENCH_wire.json");
  const std::size_t threads = run_flags.threads;

  const std::vector<std::size_t> connection_counts =
      quick ? std::vector<std::size_t>{2} : std::vector<std::size_t>{1, 4};
  const std::vector<double> rates = quick ? std::vector<double>{10.0}
                                          : std::vector<double>{20.0, 100.0};

  std::vector<wire::WireBenchConfigResult> results;
  for (double rate : rates) {
    for (std::size_t connections : connection_counts) {
      std::string label = "c";
      label += std::to_string(connections);
      label += "_rate";
      label += std::to_string(static_cast<int>(rate));
      // Per-configuration detector latency: the histogram is global.
      obs::registry().histogram("stream.round_ns").reset();
      results.push_back(run_config(label, connections, observers, identities,
                                   rate, duration, backends, shards, threads,
                                   Mode::kClean, run_flags, telemetry));
    }
  }
  obs::registry().histogram("stream.round_ns").reset();
  results.push_back(run_config("corrupt", 2, observers, identities, 10.0,
                               duration, backends, shards, threads,
                               Mode::kCorrupt, run_flags, telemetry));
  obs::registry().histogram("stream.round_ns").reset();
  results.push_back(run_config("overload", 2, observers, identities,
                               quick ? 10.0 : 50.0, duration, backends,
                               shards, threads, Mode::kOverload, run_flags,
                               telemetry));
  telemetry.finish(duration);

  if (monitor.alerts_total() > 0) {
    std::fprintf(stderr, "wire_throughput: %llu health alerts raised\n",
                 static_cast<unsigned long long>(monitor.alerts_total()));
    return 1;
  }
  const obs::json::Value report =
      wire::build_wire_bench_report(args.program_name(), results);
  std::string error;
  if (!wire::validate_wire_bench(report, &error)) {
    std::fprintf(stderr, "wire_throughput: self-check failed: %s\n",
                 error.c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::out | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << report.dump(2) << "\n";
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
