// Ablation A1 — similarity measure: FastDTW (the paper's choice) vs exact
// DTW vs point-to-point Euclidean, on identical simulated observation
// windows. Section IV-B argues DTW-family measures tolerate the unequal
// series lengths packet loss produces; this bench quantifies it.
#include <chrono>
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "core/detector.h"
#include "sim/runner.h"
#include "sim/world.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const double density = args.get_double("density", 40.0);
  const std::uint64_t seed = args.get_seed("seed", 2201);

  sim::ScenarioConfig config;
  config.density_per_km = density;
  config.seed = seed;
  std::cout << "Ablation A1 — distance measures (density " << density
            << " vhls/km, seed " << seed << ")\n\n";
  sim::World world(config);
  world.run();

  Table table({"measure", "DR", "FPR", "eval time (ms)"});
  struct Case {
    std::string name;
    core::DistanceKind kind;
    std::size_t radius;
  };
  for (const Case& c : {Case{"FastDTW r=1", core::DistanceKind::kFastDtw, 1},
                        Case{"FastDTW r=4", core::DistanceKind::kFastDtw, 4},
                        Case{"exact DTW", core::DistanceKind::kExactDtw, 0},
                        Case{"Euclidean (resampled)",
                             core::DistanceKind::kEuclidean, 0}}) {
    core::VoiceprintOptions options = core::tuned_simulation_options();
    options.comparison.distance = c.kind;
    options.comparison.fastdtw_radius = c.radius;
    core::VoiceprintDetector detector(options);
    const auto start = std::chrono::steady_clock::now();
    const sim::EvaluationResult result =
        sim::evaluate(world, detector, {.max_observers = 8});
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    table.add_row({c.name, Table::num(result.average_dr, 4),
                   Table::num(result.average_fpr, 4),
                   Table::num(elapsed, 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: DTW-family measures dominate point-to-point "
               "Euclidean on accuracy under packet loss. Note that with the "
               "Sakoe-Chiba band the \"exact\" DTW is already O(N*band), so "
               "FastDTW's multiresolution pass adds accuracy-neutral "
               "overhead at these series lengths.\n";
  return 0;
}
