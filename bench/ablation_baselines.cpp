// Ablation A7 — three-way baseline comparison: Voiceprint vs the
// cooperative CPVSAD [19] vs the independent RSSI-variation check in the
// spirit of Bouassida [17] (Table I's three design points: model-free/
// independent, model-dependent/cooperative, model-dependent/independent),
// on identical worlds, with and without propagation drift.
#include <iostream>

#include "baseline/cpvsad.h"
#include "baseline/rssi_variation.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/detector.h"
#include "sim/runner.h"
#include "sim/world.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_seed("seed", 2207);

  std::cout << "Ablation A7 — detector family comparison (Table I design "
               "points)\n\n";
  Table table({"density", "channel", "detector", "DR", "FPR"});

  for (double density : {20.0, 60.0}) {
    for (bool drift : {false, true}) {
      sim::ScenarioConfig config;
      config.density_per_km = density;
      config.model_change = drift;
      // The attack begins mid-run: entry-plausibility checks (the
      // RSSI-variation baseline) can only ever fire on identities whose
      // first beacon is observed, and detection periods after t=40 s give
      // every detector the same view of an ongoing attack.
      config.attack_start_time_s = 25.0;
      config.seed = mix64(seed, static_cast<std::uint64_t>(
                                    density + (drift ? 1000 : 0)));
      sim::World world(config);
      world.run();

      core::VoiceprintDetector voiceprint(core::tuned_simulation_options());
      baseline::CpvsadDetector cpvsad;
      baseline::RssiVariationDetector variation;
      const sim::EvaluationOptions options{.max_observers = 8};
      for (sim::Detector* detector :
           std::initializer_list<sim::Detector*>{&voiceprint, &cpvsad,
                                                 &variation}) {
        const sim::EvaluationResult result =
            sim::evaluate(world, *detector, options);
        table.add_row({Table::num(density, 0), drift ? "drifting" : "stable",
                       std::string(detector->name()),
                       Table::num(result.average_dr, 4),
                       Table::num(result.average_fpr, 4)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected (Table I's design space): Voiceprint "
               "(model-free, independent) is the only detector whose "
               "numbers survive the drifting channel; CPVSAD needs its "
               "predefined model; the RSSI-variation heuristic is cheap "
               "but weak in both settings (single-series evidence only).\n";
  return 0;
}
