// Table I — the paper's qualitative comparison of RSSI-based Sybil
// detection methods. Reprinted with a third column mapping each design
// point to what this repository implements (documentation bench; the
// quantitative counterpart is bench/ablation_baselines).
#include <iostream>

#include "common/table.h"

int main() {
  using vp::Table;
  std::cout << "Table I — RSSI-based detection methods "
               "(RPM: radio propagation model; C/D: centralized/"
               "decentralized;\nC/I: cooperative/independent; SoI: support "
               "of infrastructure)\n\n";
  Table table({"method", "RPM", "C/D", "C/I", "SoI", "mobility",
               "in this repo"});
  table.add_row({"Demirbas [14]", "free space", "D", "C", "no", "static",
                 "model: radio/FreeSpaceModel"});
  table.add_row({"Wang [15]", "Rayleigh fading", "D", "C", "no", "static",
                 "model: radio/NakagamiModel (m=1)"});
  table.add_row({"Lv [16]", "two-ray ground", "D", "C", "no", "static",
                 "model: radio/TwoRayGroundModel"});
  table.add_row({"Bouassida [17]", "Friis free space", "D", "I", "no",
                 "low mobility", "baseline/RssiVariationDetector"});
  table.add_row({"Chen [18]", "shadowing", "C", "-", "yes", "static",
                 "model: radio/ShadowingModel"});
  table.add_row({"Xiao [20] / Yu [19]", "shadowing", "D", "C", "yes",
                 "high mobility", "baseline/CpvsadDetector"});
  table.add_row({"Voiceprint", "model-free", "D", "I", "no",
                 "high mobility", "core/VoiceprintDetector"});
  table.print(std::cout);
  std::cout << "\nQuantitative comparison of the three implemented design "
               "points: bench/ablation_baselines.\n";
  return 0;
}
