// Ablation A4 — threshold classifiers. Section IV-C names perceptrons,
// linear classifiers, logistic regression and SVMs as alternatives before
// choosing LDA. This bench trains each on the same density-distance data
// and evaluates the resulting boundary on held-out simulation runs, plus a
// density-blind constant threshold as the control.
#include <iostream>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/detector.h"
#include "core/threshold.h"
#include "ml/lda.h"
#include "ml/logistic.h"
#include "ml/metrics.h"
#include "ml/perceptron.h"
#include "sim/runner.h"
#include "sim/world.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_seed("seed", 2204);

  std::cout << "Ablation A4 — boundary classifiers on the density-DTW "
               "plane\n\ncollecting training data...\n";
  ml::Dataset train;
  for (double density : {15.0, 45.0, 75.0}) {
    sim::ScenarioConfig config;
    config.density_per_km = density;
    config.seed = mix64(seed, static_cast<std::uint64_t>(density));
    sim::World world(config);
    world.run();
    core::TrainingOptions options;
    options.max_observers = 8;
    core::collect_training_points(world, options, train);
  }
  std::cout << "  " << train.size() << " labelled pairs\n\n";

  struct Candidate {
    std::string name;
    ml::LinearBoundary boundary;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"LDA (paper)", ml::Lda::fit(train, 0.05).boundary});
  candidates.push_back({"logistic regression",
                        ml::Logistic::fit(train).boundary});
  candidates.push_back({"pocket perceptron",
                        ml::Perceptron::fit(train).boundary});
  candidates.push_back({"constant 0.05", core::constant_boundary(0.05)});
  candidates.push_back(
      {"paper constants (k=0.00054,b=0.0483)", core::paper_boundary()});

  // Held-out evaluation world at a density not in the training sweep.
  sim::ScenarioConfig eval_config;
  eval_config.density_per_km = 60.0;
  eval_config.seed = mix64(seed, 999);
  sim::World eval_world(eval_config);
  eval_world.run();

  Table table({"classifier", "k", "b", "train DR", "train FPR", "eval DR",
               "eval FPR"});
  for (const Candidate& c : candidates) {
    const ml::Confusion on_train = ml::evaluate(c.boundary, train);
    core::VoiceprintOptions options = core::tuned_simulation_options();
    options.boundary = c.boundary;  // same vote rule, candidate boundary
    core::VoiceprintDetector detector(options);
    const sim::EvaluationResult on_eval =
        sim::evaluate(eval_world, detector, {.max_observers = 8});
    table.add_row({c.name, Table::num(c.boundary.k, 6),
                   Table::num(c.boundary.b, 4),
                   Table::num(on_train.detection_rate(), 4),
                   Table::num(on_train.false_positive_rate(), 4),
                   Table::num(on_eval.average_dr, 4),
                   Table::num(on_eval.average_fpr, 4)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: per-pair classifiers optimise the wrong "
               "objective for Algorithm 1 (flagged pairs union into "
               "identities), so pair-trained boundaries that look similar "
               "on 'train' columns diverge widely on identity-level eval — "
               "the reason the library ships the identity-level tuned "
               "boundary (see fig10_lda_training).\n";
  return 0;
}
