// Fig. 10 — the optimal decision boundary determined by LDA.
//
// As in Section V-B-2: several simulation runs per traffic density, all
// pairwise (density, normalised DTW distance) points labelled with ground
// truth, then LDA fits the divider line D' = k·den + b. The paper's own
// training produced k = 0.00054, b = 0.0483.
#include <iostream>
#include <sstream>
#include <vector>

#include "common/cli.h"
#include "common/csv.h"
#include "common/table.h"
#include "core/threshold.h"
#include "ml/lda.h"
#include "ml/metrics.h"
#include "sim/world.h"

namespace {

std::vector<double> parse_densities(const std::string& text) {
  std::vector<double> out;
  std::istringstream is(text);
  std::string token;
  while (std::getline(is, token, ',')) out.push_back(std::stod(token));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_seed("seed", 10);
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 2));
  const std::vector<double> densities =
      parse_densities(args.get("densities", "10,30,50,70,90"));
  const auto observers = static_cast<std::size_t>(args.get_int("observers", 8));

  std::cout << "Fig. 10 reproduction — LDA decision boundary on the "
               "density-DTW plane\n"
            << "densities:";
  for (double d : densities) std::cout << " " << d;
  std::cout << "  runs/density: " << runs << "  observers/run: " << observers
            << "  seed: " << seed << "\n\n";

  ml::Dataset data;
  std::vector<core::LabeledWindow> windows;
  for (double density : densities) {
    for (std::size_t run = 0; run < runs; ++run) {
      sim::ScenarioConfig config;
      config.density_per_km = density;
      config.seed = mix64(seed, static_cast<std::uint64_t>(
                                    density * 1000.0 + run));
      sim::World world(config);
      world.run();
      core::TrainingOptions options;
      options.max_observers = observers;
      core::collect_training_points(world, options, data);
      core::collect_labeled_windows(world, options, windows);
      std::cout << "  density " << density << " run " << run + 1 << ": "
                << data.size() << " labelled pairs so far\n";
    }
  }

  std::size_t sybil = 0;
  for (const auto& p : data) sybil += p.sybil_pair ? 1 : 0;
  std::cout << "\ntraining points: " << data.size() << " (" << sybil
            << " Sybil pairs, " << data.size() - sybil << " others)\n";

  const ml::LdaModel model = ml::Lda::fit(data, 0.05);
  const ml::Confusion confusion = ml::evaluate(model.boundary, data);

  Table table({"quantity", "this run", "paper"});
  table.add_row({"slope k", Table::num(model.boundary.k, 6), "0.00054"});
  table.add_row({"intercept b", Table::num(model.boundary.b, 4), "0.0483"});
  table.add_row({"training DR", Table::num(confusion.detection_rate(), 4),
                 "(not reported)"});
  table.add_row({"training FPR",
                 Table::num(confusion.false_positive_rate(), 4),
                 "(not reported)"});
  table.add_row({"AUC (distance ranking)",
                 Table::num(ml::auc_lower_is_positive(data), 4),
                 "(not reported)"});
  table.print(std::cout);

  // The paper evaluates per identity (Eq. 10–13), and Algorithm 1 unions
  // flagged pairs into identities — so the boundary the library actually
  // ships is selected on identity-level rates (see core/threshold.h).
  const core::TunedBoundary tuned = core::tune_boundary(windows);
  std::cout << "\nidentity-level tuned boundary (the library default, "
               "tuned_simulation_options()):\n";
  Table tuned_table({"quantity", "this run", "shipped default"});
  tuned_table.add_row({"slope k", Table::num(tuned.boundary.k, 6), "0"});
  tuned_table.add_row(
      {"intercept b", Table::num(tuned.boundary.b, 4), "0.0125"});
  tuned_table.add_row(
      {"pair votes", std::to_string(tuned.votes), "2"});
  tuned_table.add_row(
      {"identity-level DR", Table::num(tuned.train_dr, 4), "-"});
  tuned_table.add_row(
      {"identity-level FPR", Table::num(tuned.train_fpr, 4), "-"});
  tuned_table.print(std::cout);

  const std::string csv_path = "fig10_training_points.csv";
  CsvWriter csv(csv_path, {"density", "distance", "sybil_pair"});
  for (const auto& p : data) {
    csv.write_row(std::vector<double>{p.density, p.distance,
                                      p.sybil_pair ? 1.0 : 0.0});
  }
  std::cout << "\nscatter data written to " << csv_path
            << " (red dots = sybil_pair=1, blue circles = 0 in the paper's "
               "plot)\n"
            << "Expected shape: Sybil pairs hug D'~0 at every density; the "
               "LDA line has a small positive slope and intercept.\n";
  return 0;
}
