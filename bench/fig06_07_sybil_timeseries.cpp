// Figs. 6 & 7 — RSSI time series recorded by the trailing and leading
// normal nodes during the four-vehicle Sybil run (Scenario 3).
//
// Observation 3: the malicious node's and its Sybil identities' series
// share one shape (same radio, same realised fading), while the normal
// node driving 3 m beside the attacker produces a visibly different series.
// The bench prints per-identity series excerpts, their pairwise exact-DTW
// distances after Z-score normalisation, and writes full series to CSV.
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/csv.h"
#include "common/table.h"
#include "fieldtest/scenario3.h"
#include "timeseries/dtw.h"
#include "timeseries/normalize.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  ft::FieldTestConfig config;
  config.area = ft::Area::kCampus;
  config.duration_s = args.get_double("duration", 120.0);
  config.seed = args.get_seed("seed", 607);
  const ft::FieldTestData data = ft::run_field_test(config);

  std::cout << "Figs. 6-7 reproduction — RSSI time series in the Sybil run\n"
            << "(campus channel, " << config.duration_s << " s, seed "
            << config.seed << ")\n\n";

  const std::vector<IdentityId> shown = {ft::kMaliciousNode, ft::kSybil1,
                                         ft::kSybil2, ft::kNormalNode2};
  for (const auto& [observer, figure] :
       std::vector<std::pair<NodeId, std::string>>{
           {ft::kNormalNode4, "Fig. 6 (recorded by the leading normal node)"},
           {ft::kNormalNode3,
            "Fig. 7 (recorded by the trailing normal node)"}}) {
    std::cout << figure << "\n";
    const sim::RssiLog& log = data.logs.at(observer);

    // Excerpt: first 15 samples of each identity's series.
    Table table({"identity", "role", "first samples of RSSI series (dBm)"});
    for (IdentityId id : shown) {
      const ts::Series series =
          log.rssi_series(id, 0.0, config.duration_s);
      std::string excerpt;
      for (std::size_t i = 0; i < std::min<std::size_t>(15, series.size());
           ++i) {
        excerpt += Table::num(series.value(i), 0) + " ";
      }
      const std::string role =
          id == ft::kMaliciousNode ? "malicious"
          : ft::FieldTestData::identity_is_attack(id) ? "sybil"
                                                      : "normal (3 m away)";
      table.add_row({std::to_string(id), role, excerpt});
    }
    table.print(std::cout);

    // Observation 3 quantified: pairwise DTW of Z-scored series.
    Table dtw_table({"pair", "relationship", "DTW distance (z-scored)"});
    for (std::size_t i = 0; i + 1 < shown.size(); ++i) {
      for (std::size_t j = i + 1; j < shown.size(); ++j) {
        const auto a = log.rssi_series(shown[i], 0.0, config.duration_s);
        const auto b = log.rssi_series(shown[j], 0.0, config.duration_s);
        if (a.size() < 2 || b.size() < 2) continue;
        const auto za = ts::z_score_enhanced(a.values());
        const auto zb = ts::z_score_enhanced(b.values());
        const double d = ts::dtw_distance(za, zb);
        const bool same_radio =
            ft::FieldTestData::identity_owner(shown[i]) ==
            ft::FieldTestData::identity_owner(shown[j]);
        dtw_table.add_row(
            {std::to_string(shown[i]) + "-" + std::to_string(shown[j]),
             same_radio ? "same radio (Sybil pair)" : "different radios",
             Table::num(d, 3)});
      }
    }
    std::cout << "\n";
    dtw_table.print(std::cout);
    std::cout << "\n";

    // Dump full series for plotting.
    const std::string csv_path =
        "fig06_07_observer_" + std::to_string(observer) + ".csv";
    CsvWriter csv(csv_path, {"identity", "time_s", "rssi_dbm"});
    for (IdentityId id : shown) {
      const ts::Series series =
          log.rssi_series(id, 0.0, config.duration_s);
      for (std::size_t i = 0; i < series.size(); ++i) {
        csv.write_row(std::vector<double>{static_cast<double>(id),
                                          series.time(i), series.value(i)});
      }
    }
    std::cout << "full series written to " << csv_path << "\n\n";
  }

  std::cout << "Expected shape: same-radio pairs score far smaller DTW "
               "distances than any cross-radio pair, even the 3 m neighbour "
               "(Observation 3).\n";
  return 0;
}
