// Streaming engine throughput sweep (DESIGN.md §8): how fast can
// stream::StreamEngine ingest beacons and turn confirmation rounds, as a
// function of per-identity beacon rate × neighbour count — plus one
// deliberately overloaded configuration (10× over the admission cap,
// undersized rings, an identity cap below the offered identities) to
// show the load-shedding path staying bounded instead of stalling.
//
// Beacon traces are synthesised up front (AR(1) shadowing shapes at
// jittered beacon instants, merged into one arrival-ordered stream), so
// the timed region is exactly ingest + rounds. Round latencies flow
// through the obs registry ("stream.round_ns"), and BENCH_stream.json is
// built from the same HistogramSnapshot aggregation as a --metrics-out
// run report (schema voiceprint.stream_bench/v1, self-validated before
// writing).
//
//   ./build/bench/stream_throughput                 # full sweep
//   ./build/bench/stream_throughput --quick         # smoke-sized sweep
//   ./build/bench/stream_throughput --duration 60 --threads 4
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "core/detector.h"
#include "obs/report.h"
#include "obs/runtime.h"
#include "obs/telemetry.h"
#include "stream/engine.h"
#include "stream/report.h"

namespace {

using namespace vp;

struct Rx {
  double time_s;
  IdentityId id;
  double rssi_dbm;
};

// One identity's beacons over [0, duration): nominal 1/rate spacing with
// MAC-ish jitter, values an AR(1) shadowing walk around a mean level.
void synthesize_identity(IdentityId id, double rate_hz, double duration_s,
                         std::vector<Rx>& out) {
  Rng rng(mix64(0xbeac0, id));
  const double period = 1.0 / rate_hz;
  double shadow = 0.0;
  const double level = -60.0 - rng.uniform(0.0, 25.0);
  const double phase = rng.uniform(0.0, period);
  for (double t = phase; t < duration_s; t += period) {
    shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
    const double jitter = rng.uniform(0.0, 0.2 * period);
    out.push_back({t + jitter, id, level + shadow + rng.normal(0.0, 0.5)});
  }
}

std::vector<Rx> synthesize_stream(std::size_t identities, double rate_hz,
                                  double duration_s) {
  std::vector<Rx> beacons;
  beacons.reserve(static_cast<std::size_t>(
      static_cast<double>(identities) * rate_hz * duration_s) + identities);
  for (std::size_t i = 0; i < identities; ++i) {
    synthesize_identity(static_cast<IdentityId>(i + 1), rate_hz, duration_s,
                        beacons);
  }
  std::sort(beacons.begin(), beacons.end(), [](const Rx& a, const Rx& b) {
    return a.time_s != b.time_s ? a.time_s < b.time_s : a.id < b.id;
  });
  return beacons;
}

stream::BenchConfigResult run_config(const std::string& label,
                                     std::size_t identities, double rate_hz,
                                     double duration_s, std::size_t threads,
                                     bool overload,
                                     const vp::RunFlags& run_flags,
                                     obs::TelemetryExporter& telemetry) {
  const std::vector<Rx> beacons =
      synthesize_stream(identities, rate_hz, duration_s);

  stream::StreamEngineConfig config;
  config.condition_ingest = run_flags.cond;
  config.detector =
      core::with_run_flags(core::tuned_simulation_options(threads), run_flags);
  if (overload) {
    // 10× over the admission cap, rings far below a full window, and an
    // identity cap below the offered identity count: everything past the
    // caps must be shed and counted, never grown into.
    config.max_ingest_rate_hz =
        static_cast<double>(identities) * rate_hz / 10.0;
    config.ring_capacity = 32;
    config.max_identities = std::max<std::size_t>(identities / 2, 1);
  } else {
    config.ring_capacity = static_cast<std::size_t>(
        config.observation_time_s * rate_hz * 2.0) + 16;
    config.max_identities = identities + 16;
  }
  stream::StreamEngine engine(config);
  engine.set_round_callback([&](const stream::StreamRound& round) {
    telemetry.on_round(round.time_s);
  });

  obs::Histogram& round_ns = obs::registry().histogram("stream.round_ns");
  round_ns.reset();  // this configuration only

  const auto start = std::chrono::steady_clock::now();
  for (const Rx& rx : beacons) {
    engine.ingest(rx.id, rx.time_s, rx.rssi_dbm);
    telemetry.sample(rx.time_s);
  }
  engine.advance_to(duration_s);
  telemetry.sample(duration_s);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();

  const stream::StreamEngine::Stats& stats = engine.stats();
  stream::BenchConfigResult result;
  result.label = label;
  result.beacon_rate_hz = rate_hz;
  result.identities = identities;
  result.duration_s = duration_s;
  result.offered = stats.beacons_offered;
  result.ingested = stats.beacons_ingested;
  result.shed = stats.shed_total();
  result.ring_evictions = stats.ring_evictions;
  result.rounds = stats.rounds;
  result.ingest_beacons_per_s =
      wall_s > 0.0 ? static_cast<double>(stats.beacons_offered) / wall_s : 0.0;
  result.round_ns = round_ns.snapshot();

  std::printf(
      "BENCH %-16s identities=%-4zu rate=%5.1f Hz  ingest=%9.0f beacons/s  "
      "rounds=%llu p50=%.3f ms p99=%.3f ms  shed=%llu evictions=%llu\n",
      label.c_str(), identities, rate_hz, result.ingest_beacons_per_s,
      static_cast<unsigned long long>(result.rounds), result.round_ns.p50 * 1e-6,
      result.round_ns.p99 * 1e-6,
      static_cast<unsigned long long>(result.shed),
      static_cast<unsigned long long>(result.ring_evictions));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const RunFlags run_flags = parse_run_flags(args);
  obs::RunSession session(args.program_name(), run_flags.metrics_out,
                          run_flags.trace_out);
  obs::HealthMonitor monitor = obs::HealthMonitor::with_default_invariants();
  obs::TelemetryExporter telemetry(obs::telemetry_config_from_flags(run_flags));
  if (telemetry.active()) telemetry.set_monitor(&monitor);
  // The round-latency histogram must collect even without --metrics-out:
  // BENCH_stream.json is derived from it.
  obs::enable();

  const bool quick = args.get_bool("quick", false);
  const double duration = args.get_double("duration", quick ? 25.0 : 60.0);
  const std::string out_path = args.get("out", "BENCH_stream.json");
  const std::size_t threads = run_flags.threads;

  std::vector<std::size_t> neighbor_counts =
      quick ? std::vector<std::size_t>{10}
            : std::vector<std::size_t>{10, 40, 80, 160};
  std::vector<double> rates = quick ? std::vector<double>{10.0}
                                    : std::vector<double>{10.0, 20.0};

  std::vector<stream::BenchConfigResult> results;
  for (double rate : rates) {
    for (std::size_t n : neighbor_counts) {
      const std::string label =
          "rate" + std::to_string(static_cast<int>(rate)) + "_n" +
          std::to_string(n);
      results.push_back(run_config(label, n, rate, duration, threads, false,
                                   run_flags, telemetry));
    }
  }
  // The 10× overload scenario (always included — the acceptance bar).
  results.push_back(run_config("overload_x10", quick ? 20 : 80,
                               quick ? 10.0 : 20.0, duration, threads, true,
                               run_flags, telemetry));
  telemetry.finish(duration);

  const obs::json::Value report =
      stream::build_stream_bench_report(args.program_name(), results);
  std::string error;
  if (!stream::validate_stream_bench(report, &error)) {
    std::fprintf(stderr, "stream_throughput: self-check failed: %s\n",
                 error.c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::out | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << report.dump(2) << "\n";
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
