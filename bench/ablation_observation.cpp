// Ablation A3 — observation time and beacon rate. The paper uses 20 s of
// 10 Hz beacons (200 samples) and notes in Section VII that Voiceprint,
// being independent, needs longer observation than cooperative schemes;
// its first future-work item is to collect samples faster over the
// Service Channel (SCH). This sweep covers:
//   * the window-length trade-off at the standard 10 Hz CCH rate,
//   * the naive fix (raising the CCH rate) — which saturates the shared
//     3 Mbps channel, and
//   * the paper's SCH idea (extra samples on a second channel).
#include <algorithm>
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "core/detector.h"
#include "sim/runner.h"
#include "sim/world.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const double density = args.get_double("density", 30.0);
  const std::uint64_t seed = args.get_seed("seed", 2203);

  std::cout << "Ablation A3 — observation time / beacon rate sweep (density "
            << density << " vhls/km)\n\n";
  Table table({"observation (s)", "CCH rate (Hz)", "SCH rate (Hz)",
               "samples/ID (max)", "DR", "FPR", "collisions"});

  struct Row {
    double obs;
    double cch_rate;
    double sch_rate;
  };
  for (const Row& row : {Row{5.0, 10.0, 0.0}, Row{10.0, 10.0, 0.0},
                         Row{20.0, 10.0, 0.0}, Row{40.0, 10.0, 0.0},
                         // Naive fix: raise the shared-channel rate.
                         Row{4.0, 50.0, 0.0},
                         // Section VII: keep the CCH at 10 Hz and sample
                         // faster on the service channel.
                         Row{5.0, 10.0, 40.0}, Row{10.0, 10.0, 40.0}}) {
    sim::ScenarioConfig config;
    config.density_per_km = density;
    config.observation_time_s = row.obs;
    config.detection_period_s = row.obs;
    config.density_estimation_period_s = std::min(10.0, row.obs);
    config.beacon_rate_hz = row.cch_rate;
    config.sch_beacon_rate_hz = row.sch_rate;
    config.sim_time_s = std::max(100.0, 3.0 * row.obs);
    config.seed = seed;
    sim::World world(config);
    world.run();

    const double total_rate = row.cch_rate + row.sch_rate;
    core::VoiceprintOptions vp_options = core::tuned_simulation_options();
    // Short windows need a proportionally shorter overlap requirement (the
    // default 5 s assumes the paper's 20 s window).
    vp_options.comparison.min_overlap_s = std::min(5.0, 0.4 * row.obs);
    vp_options.comparison.min_overlap_samples = std::max<std::size_t>(
        4, static_cast<std::size_t>(0.1 * row.obs * total_rate));
    core::VoiceprintDetector detector(vp_options);
    sim::EvaluationOptions eval{.max_observers = 8};
    eval.min_samples = std::max<std::size_t>(
        8, static_cast<std::size_t>(0.05 * row.obs * total_rate));
    const sim::EvaluationResult result = sim::evaluate(world, detector, eval);

    table.add_row({Table::num(row.obs, 0), Table::num(row.cch_rate, 0),
                   Table::num(row.sch_rate, 0),
                   Table::num(row.obs * total_rate, 0),
                   Table::num(result.average_dr, 4),
                   Table::num(result.average_fpr, 4),
                   std::to_string(world.stats().frames_collided)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: longer windows help (more independent shadowing "
               "to compare); raising the CCH rate on the shared channel "
               "saturates the MAC and loses the extra samples to "
               "collisions; the SCH path adds samples without touching the "
               "CCH, improving short-window detection — though the gain is "
               "bounded by the shadowing coherence time (samples closer "
               "than the channel decorrelates carry little new "
               "information).\n";
  return 0;
}
