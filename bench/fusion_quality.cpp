// Fusion accuracy bench (DESIGN.md §13): does cross-observer
// corroboration actually beat the paper's single-observer detector?
//
// Sweeps observer count × attacker mix over the highway scenario. Each
// config replays the fleet's merged beacon stream once through a sharded
// service::DetectionService with a fusion::FusionEngine subscribed, and
// scores THREE channels from that one replay (the labelled RateAverager
// channels exist for exactly this):
//   single — every delivered round's suspect set against the observer's
//            own ground-truth window (Eq. 10/11 per (observer, period),
//            Eq. 12/13 averaged): the paper's detector, as deployed.
//   fused  — every closed fusion epoch's quorum verdicts against ground
//            truth over the epoch's whole electorate.
//   cpvsad — the cooperative position-verification baseline via the
//            batch evaluation harness on the same world.
// Writes BENCH_fusion.json (voiceprint.fusion_bench/v1, self-validated
// before writing — including fused DR >= single DR and fused FPR <=
// single FPR on every multi-observer row; checked again by
// tools/check_run_report --fusion-bench and scripts/smoke.sh).
//
//   ./build/bench/fusion_quality                 # full sweep
//   ./build/bench/fusion_quality --quick         # smoke-sized sweep
//   ./build/bench/fusion_quality --observers 8 --density 15
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "baseline/cpvsad.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/detector.h"
#include "fusion/engine.h"
#include "fusion/report.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "service/service.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "sim/world.h"
#include "stream/engine.h"

namespace {

using namespace vp;

struct SweepPoint {
  std::string label;
  std::size_t observers = 0;
  double density_per_km = 0.0;
  double malicious_fraction = 0.0;
  double sim_time_s = 0.0;
};

struct FleetRx {
  double time_s;
  NodeId observer;
  IdentityId id;
  double rssi_dbm;
};

std::string format_rate(const std::optional<double>& rate) {
  if (!rate.has_value()) return "n/a";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.3f", *rate);
  return buf;
}

fusion::FusionBenchConfigResult run_point(const SweepPoint& point,
                                          std::uint64_t seed,
                                          std::size_t threads,
                                          obs::TelemetryExporter& telemetry) {
  sim::ScenarioConfig config;
  config.density_per_km = point.density_per_km;
  config.malicious_fraction = point.malicious_fraction;
  config.sim_time_s = point.sim_time_s;
  config.seed = seed;
  sim::World world(config);
  world.run();
  const sim::GroundTruth& truth = world.truth();

  const std::vector<NodeId> normals = world.normal_node_ids();
  const std::size_t session_count =
      std::min(point.observers, normals.size());
  const std::vector<NodeId> observers(normals.begin(),
                                      normals.begin() + session_count);
  const double horizon = config.sim_time_s + 1.0;
  const double end_time = world.detection_times().back();

  std::vector<FleetRx> fleet;
  for (NodeId observer : observers) {
    const sim::RssiLog& log = world.node(observer).log();
    for (IdentityId id : log.identities_heard(0.0, horizon, 1)) {
      for (const sim::BeaconRecord& r : log.records(id, 0.0, horizon)) {
        fleet.push_back({r.time_s, observer, id, r.rssi_dbm});
      }
    }
  }
  std::sort(fleet.begin(), fleet.end(), [](const FleetRx& a, const FleetRx& b) {
    if (a.time_s != b.time_s) return a.time_s < b.time_s;
    if (a.observer != b.observer) return a.observer < b.observer;
    return a.id < b.id;
  });

  stream::StreamEngineConfig engine_config;
  engine_config.observation_time_s = config.observation_time_s;
  engine_config.round_period_s = config.detection_period_s;
  engine_config.density_estimation_period_s =
      config.density_estimation_period_s;
  engine_config.max_transmission_range_m = config.max_transmission_range_m;
  engine_config.min_samples = 4;  // World::observe's default
  engine_config.detector = core::tuned_simulation_options(1);

  service::ServiceConfig service_config;
  service_config.shards = 4;
  service_config.threads = threads;
  service_config.max_sessions = observers.size() + 4;
  service_config.engine = engine_config;

  fusion::FusionConfig fusion_config;
  fusion_config.epoch_period_s = config.detection_period_s;

  service::DetectionService service(service_config);
  fusion::FusionEngine fusion_engine(fusion_config);
  sim::RateAverager rates;

  // Channel "single": the paper's per-observer verdicts, scored per
  // delivered round against that observer's own window.
  service.set_round_callback([&](const service::SessionRound& round) {
    telemetry.on_round(round.round.time_s);
    const sim::ObservationWindow window = world.observe(
        static_cast<NodeId>(round.session), round.round.time_s);
    rates.add("single",
              sim::score_detection(round.round.suspects, window, truth));
  });
  service.add_round_listener([&](const service::SessionRound& round) {
    fusion_engine.observe(round);
  });

  // Channel "fused": one sample per closed epoch, over the epoch's whole
  // electorate (every identity any observer compared).
  fusion_engine.set_epoch_callback([&](const fusion::FusedEpoch& epoch) {
    sim::DetectionCounts counts;
    for (const fusion::FusedVerdict& verdict : epoch.verdicts) {
      if (!truth.known(verdict.id)) continue;
      if (truth.is_illegitimate(verdict.id)) {
        ++counts.illegitimate;
        if (verdict.accused) ++counts.detected_true;
      } else {
        ++counts.legitimate;
        if (verdict.accused) ++counts.detected_false;
      }
    }
    rates.add("fused", counts);
  });

  for (const FleetRx& rx : fleet) {
    service.ingest(static_cast<service::SessionId>(rx.observer), rx.id,
                   rx.time_s, rx.rssi_dbm);
    fusion_engine.advance(rx.time_s);
    telemetry.sample(rx.time_s);
  }
  service.advance_all_to(end_time);
  fusion_engine.advance(end_time);
  fusion_engine.finish();
  for (NodeId observer : observers) {
    service.close(static_cast<service::SessionId>(observer));
  }
  telemetry.sample(end_time);

  // Channel "cpvsad": the cooperative baseline on the same world through
  // the batch harness, with the same observer budget and window floor.
  baseline::CpvsadDetector cpvsad;
  sim::EvaluationOptions eval_options;
  eval_options.max_observers = observers.size();
  eval_options.min_samples = 4;
  eval_options.threads = threads;
  const sim::EvaluationResult cpvsad_result =
      sim::evaluate(world, cpvsad, eval_options);

  fusion::FusionBenchConfigResult row;
  row.label = point.label;
  row.observers = observers.size();
  row.density_per_km = point.density_per_km;
  row.attackers = config.malicious_count();
  row.sim_time_s = point.sim_time_s;
  const fusion::FusionEngine::Stats& fs = fusion_engine.stats();
  row.rounds_delivered = fs.rounds_delivered;
  row.rounds_fused = fs.rounds_fused;
  row.rounds_expired = fs.rounds_expired;
  row.rounds_pending = fusion_engine.rounds_pending();
  row.epochs_closed = fs.epochs_closed;
  row.votes_cast = fs.votes_cast;
  row.single_dr = rates.average_dr_if_defined("single");
  row.single_fpr = rates.average_fpr_if_defined("single");
  row.single_dr_samples = rates.defined_dr_samples("single");
  row.single_fpr_samples = rates.defined_fpr_samples("single");
  row.fused_dr = rates.average_dr_if_defined("fused");
  row.fused_fpr = rates.average_fpr_if_defined("fused");
  row.fused_dr_samples = rates.defined_dr_samples("fused");
  row.fused_fpr_samples = rates.defined_fpr_samples("fused");
  if (cpvsad_result.dr_defined()) row.cpvsad_dr = cpvsad_result.average_dr;
  if (cpvsad_result.fpr_defined()) row.cpvsad_fpr = cpvsad_result.average_fpr;

  // End-of-run trust: pooled bounds over every scored id, plus the floor
  // over identities the ground truth marks legitimate.
  double trust_min = 1.0;
  double trust_max = 0.0;
  double honest_min = 1.0;
  bool any_score = false;
  for (const auto& [id, score] : fusion_engine.identity_trust().scores()) {
    trust_min = std::min(trust_min, score);
    trust_max = std::max(trust_max, score);
    any_score = true;
    const auto identity = static_cast<IdentityId>(id);
    if (truth.known(identity) && !truth.is_illegitimate(identity)) {
      honest_min = std::min(honest_min, score);
    }
  }
  for (const auto& [id, score] : fusion_engine.observer_trust().scores()) {
    trust_min = std::min(trust_min, score);
    trust_max = std::max(trust_max, score);
    any_score = true;
  }
  if (!any_score) {
    trust_min = trust_max = honest_min = fusion_config.trust.initial;
  }
  row.trust_min = trust_min;
  row.trust_max = trust_max;
  row.honest_identity_trust_min = honest_min;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const RunFlags run_flags = parse_run_flags(args);
  obs::RunSession session(args.program_name(), run_flags.metrics_out,
                          run_flags.trace_out);
  obs::HealthMonitor monitor = obs::HealthMonitor::with_default_invariants();
  obs::TelemetryExporter telemetry(obs::telemetry_config_from_flags(run_flags));
  if (telemetry.active()) telemetry.set_monitor(&monitor);

  const bool quick = args.get_bool("quick", false);
  const std::uint64_t seed = args.get_seed("seed", 5);
  const std::string out_path = args.get("out", "BENCH_fusion.json");
  const double density = args.get_double("density", 12.0);
  const double sim_time = args.get_double("sim-time", quick ? 40.0 : 60.0);

  // Observer count sweep at the paper's attacker mix, then an attacker
  // mix sweep at a fixed fleet size: corroboration should pay more as
  // either rises.
  std::vector<SweepPoint> sweep;
  // Corroboration needs coverage: a Sybil heard by only two observers can
  // collect at most one accusation beyond the twin's owner, so the quick
  // grid keeps the fleet at 6 rather than shrinking it below the
  // min_corroboration regime.
  const std::vector<std::size_t> observer_counts =
      quick ? std::vector<std::size_t>{1, 6}
            : std::vector<std::size_t>{1, 3, 6, 10};
  for (std::size_t n : observer_counts) {
    sweep.push_back({"observers_" + std::to_string(n), n, density, 0.05,
                     sim_time});
  }
  for (double mix : quick ? std::vector<double>{0.15}
                          : std::vector<double>{0.10, 0.15}) {
    char label[40];
    std::snprintf(label, sizeof(label), "attacker_mix_%02d",
                  static_cast<int>(mix * 100.0 + 0.5));
    sweep.push_back({label, 6, density, mix, sim_time});
  }
  if (args.has("observers")) {
    const auto n = static_cast<std::size_t>(args.get_int("observers", 6));
    sweep = {{"observers_" + std::to_string(n), n, density, 0.05, sim_time}};
  }

  std::vector<fusion::FusionBenchConfigResult> rows;
  Table table({"config", "observers", "attackers", "epochs", "single DR/FPR",
               "fused DR/FPR", "cpvsad DR/FPR", "honest trust"});
  for (const SweepPoint& point : sweep) {
    std::printf("fusion_quality: %s (%zu observers, %.0f%% malicious)...\n",
                point.label.c_str(), point.observers,
                point.malicious_fraction * 100.0);
    const fusion::FusionBenchConfigResult row =
        run_point(point, seed, run_flags.threads, telemetry);
    char honest[16];
    std::snprintf(honest, sizeof(honest), "%.2f",
                  row.honest_identity_trust_min);
    table.add_row({row.label, std::to_string(row.observers),
                   std::to_string(row.attackers),
                   std::to_string(row.epochs_closed),
                   format_rate(row.single_dr) + "/" +
                       format_rate(row.single_fpr),
                   format_rate(row.fused_dr) + "/" +
                       format_rate(row.fused_fpr),
                   format_rate(row.cpvsad_dr) + "/" +
                       format_rate(row.cpvsad_fpr),
                   honest});
    rows.push_back(row);
  }
  table.print(std::cout);
  telemetry.finish(sim_time);

  if (telemetry.active() && monitor.alerts_total() != 0) {
    std::fprintf(stderr,
                 "fusion_quality: health monitor raised %llu alert(s)\n",
                 static_cast<unsigned long long>(monitor.alerts_total()));
    return 1;
  }
  if (session.active()) {
    obs::json::Object extra;
    extra.emplace("configs", obs::json::Value(rows.size()));
    session.set_extra(obs::json::Value(std::move(extra)));
    if (telemetry.active()) session.merge_extra("health", monitor.summary());
  }

  const obs::json::Value report =
      fusion::build_fusion_bench_report(args.program_name(), seed, rows);
  std::string error;
  if (!fusion::validate_fusion_bench(report, &error)) {
    std::fprintf(stderr, "fusion_quality: self-check failed: %s\n",
                 error.c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::out | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << report.dump(2) << "\n";
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  std::printf("fusion_quality: OK (%zu configs)\n", rows.size());
  return 0;
}
