// Ablation A6 — smart attackers (Section VII). The paper closes by noting
// that "as same as all RSSI-based methods, Voiceprint cannot identify the
// malicious node if it adopts power control". This bench quantifies that
// limitation and a second evasion the model predicts:
//   * per-packet power control  — re-drawing each Sybil beacon's TX power
//     destroys the constant offset Eq. 7 removes;
//   * staggered Sybil timing    — spreading the identities' beacons across
//     the beacon period makes their samples ride different instants of the
//     shadowing process, diluting the shared-voiceprint signature.
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "core/detector.h"
#include "sim/runner.h"
#include "sim/world.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const double density = args.get_double("density", 30.0);
  const std::uint64_t seed = args.get_seed("seed", 2206);

  std::cout << "Ablation A6 — smart attackers vs Voiceprint (density "
            << density << " vhls/km, seed " << seed << ")\n\n";
  Table table({"attack", "DR", "FPR"});

  using PowerMode = sim::ScenarioConfig::AttackerPowerMode;
  using TimingMode = sim::ScenarioConfig::SybilTimingMode;
  struct Case {
    std::string name;
    PowerMode power;
    TimingMode timing;
  };
  for (const Case& c :
       {Case{"baseline (Assumption 3: constant spoofed powers)",
             PowerMode::kConstant, TimingMode::kBurst},
        Case{"per-packet power control", PowerMode::kPerPacket,
             TimingMode::kBurst},
        Case{"staggered Sybil timing", PowerMode::kConstant,
             TimingMode::kStaggered},
        Case{"power control + staggered timing", PowerMode::kPerPacket,
             TimingMode::kStaggered}}) {
    sim::ScenarioConfig config;
    config.density_per_km = density;
    config.attacker_power_mode = c.power;
    config.sybil_timing_mode = c.timing;
    config.seed = seed;
    sim::World world(config);
    world.run();

    core::VoiceprintDetector detector(core::tuned_simulation_options());
    const sim::EvaluationResult result =
        sim::evaluate(world, detector, {.max_observers = 8});
    table.add_row({c.name, Table::num(result.average_dr, 4),
                   Table::num(result.average_fpr, 4)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: the paper's open problem, reproduced — power "
               "control collapses the detection rate (the per-packet "
               "offsets bury the shared fading shape), and timing "
               "staggering erodes it further; false positives stay low "
               "because normal pairs are unaffected.\n";
  return 0;
}
