// Chaos harness for the serving stack (DESIGN.md §10): sweep every
// fault class at low and high intensity — plus everything-at-once — over
// a highway trace, run the faulted stream through stream::StreamEngine
// with kill/restore cycles (checkpoint → encode → decode → rebuild), and
// prove the stack survives: zero crashes, conservation laws exact,
// divergence from the clean baseline bounded. One additional run drives
// a sharded service::DetectionService fleet through the same storm with
// a service-level kill/restore.
//
// Writes BENCH_chaos.json (schema voiceprint.chaos_bench/v1,
// self-validated before writing; checked again by
// tools/check_run_report --chaos-bench and scripts/smoke.sh).
//
//   ./build/bench/chaos_detection                  # full sweep
//   ./build/bench/chaos_detection --quick          # smoke-sized sweep
//   ./build/bench/chaos_detection --kill-cycles 3 --seed 7
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.h"
#include "core/detector.h"
#include "fault/injector.h"
#include "fault/report.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/runtime.h"
#include "obs/telemetry.h"
#include "service/checkpoint.h"
#include "service/service.h"
#include "sim/world.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"

namespace {

using namespace vp;

// Clean source trace: one observer's receptions from the highway
// simulator, arrival-ordered — the same kind of stream the parity tests
// feed the engine.
std::vector<fault::Beacon> highway_trace(double density, double sim_time,
                                         std::uint64_t seed,
                                         sim::ScenarioConfig* out_config) {
  sim::ScenarioConfig config;
  config.density_per_km = density;
  config.sim_time_s = sim_time;
  config.seed = seed;
  sim::World world(config);
  world.run();
  const NodeId observer = world.normal_node_ids().front();
  const sim::RssiLog& log = world.node(observer).log();

  std::vector<fault::Beacon> beacons;
  for (IdentityId id : log.identities_heard(0.0, sim_time + 1.0, 1)) {
    for (const sim::BeaconRecord& r : log.records(id, 0.0, sim_time + 1.0)) {
      beacons.push_back({id, r.time_s, r.rssi_dbm});
    }
  }
  std::sort(beacons.begin(), beacons.end(),
            [](const fault::Beacon& a, const fault::Beacon& b) {
              return a.time_s != b.time_s ? a.time_s < b.time_s : a.id < b.id;
            });
  *out_config = config;
  return beacons;
}

stream::StreamEngineConfig engine_config_for(const sim::ScenarioConfig& sim) {
  stream::StreamEngineConfig config;
  config.observation_time_s = sim.observation_time_s;
  config.round_period_s = sim.detection_period_s;
  config.density_estimation_period_s = sim.density_estimation_period_s;
  config.max_transmission_range_m = sim.max_transmission_range_m;
  config.detector = core::tuned_simulation_options(1);
  return config;
}

using RoundMap = std::map<double, std::vector<IdentityId>>;

// Fraction of baseline rounds the faulted run got wrong (different
// suspect set, or the round missing entirely).
double divergence_vs(const RoundMap& baseline, const RoundMap& faulted) {
  if (baseline.empty()) return 0.0;
  std::size_t divergent = 0;
  for (const auto& [time, suspects] : baseline) {
    const auto it = faulted.find(time);
    if (it == faulted.end() || it->second != suspects) ++divergent;
  }
  return static_cast<double>(divergent) / static_cast<double>(baseline.size());
}

void fill_injector_side(const fault::FaultStats& fs,
                        fault::ChaosRunResult& row) {
  row.source_beacons = fs.offered;
  row.emitted = fs.emitted;
  row.dropped = fs.dropped;
  row.burst_dropped = fs.burst_dropped;
  row.duplicated = fs.duplicated;
  row.reordered = fs.reordered;
  row.rssi_spiked = fs.rssi_spiked;
  row.rssi_quantized = fs.rssi_quantized;
  row.rssi_non_finite = fs.rssi_non_finite;
  row.time_skewed = fs.time_skewed;
  row.time_regressed = fs.time_regressed;
  row.flood_injected = fs.flood_injected;
}

void print_row(const fault::ChaosRunResult& row) {
  std::printf(
      "CHAOS %-22s class=%-12s intensity=%6.3f kills=%llu  emitted=%-6llu "
      "ingested=%-6llu shed=%-5llu rounds=%-3llu divergence=%.3f\n",
      row.label.c_str(), row.fault_class.c_str(), row.intensity,
      static_cast<unsigned long long>(row.kill_restore_cycles),
      static_cast<unsigned long long>(row.emitted),
      static_cast<unsigned long long>(row.ingested),
      static_cast<unsigned long long>(
          row.shed_rate_limited + row.shed_identity_cap +
          row.shed_out_of_order + row.shed_invalid_rssi_non_finite +
          row.shed_invalid_rssi_out_of_range + row.shed_invalid_time_non_finite +
          row.shed_invalid_time_negative),
      static_cast<unsigned long long>(row.rounds), row.round_divergence);
}

// One engine chaos run: fault the trace, stream it with `kill_cycles`
// checkpoint/encode/decode/restore interruptions, collect rounds.
fault::ChaosRunResult run_engine_chaos(
    const std::string& label, const std::string& fault_class, double intensity,
    const fault::FaultConfig& fault_config,
    const stream::StreamEngineConfig& engine_config,
    const std::vector<fault::Beacon>& trace, double end_time,
    std::size_t kill_cycles, const RoundMap& baseline,
    double max_divergence) {
  fault::FaultInjector injector(fault_config);
  const std::vector<fault::Beacon> faulted = injector.apply(trace);

  RoundMap rounds;
  auto record = [&rounds](const stream::StreamRound& round) {
    rounds[round.time_s] = round.suspects;
  };
  std::optional<stream::StreamEngine> engine(std::in_place, engine_config);
  engine->set_round_callback(record);

  // Kill points: evenly spaced beacon indices, skipping 0 and the end.
  std::vector<std::size_t> kills;
  for (std::size_t k = 1; k <= kill_cycles; ++k) {
    kills.push_back(faulted.size() * k / (kill_cycles + 1));
  }
  std::size_t next_kill = 0;
  double last_finite_time = 0.0;
  for (std::size_t i = 0; i < faulted.size(); ++i) {
    if (next_kill < kills.size() && i == kills[next_kill]) {
      ++next_kill;
      // The crash: serialise, discard the live engine, deserialise,
      // rebuild. A decode failure here is a harness bug — fail loudly.
      const std::vector<std::uint8_t> bytes =
          stream::encode_checkpoint(engine->checkpoint());
      engine.reset();
      stream::EngineCheckpoint restored;
      std::string error;
      if (!stream::decode_checkpoint(bytes, &restored, &error)) {
        std::fprintf(stderr, "chaos: checkpoint roundtrip failed: %s\n",
                     error.c_str());
        std::exit(1);
      }
      engine.emplace(engine_config, restored);
      engine->set_round_callback(record);
    }
    const fault::Beacon& b = faulted[i];
    engine->ingest(b.id, b.time_s, b.rssi_dbm);
    if (std::isfinite(b.time_s)) {
      last_finite_time = std::max(last_finite_time, b.time_s);
    }
  }
  engine->advance_to(std::max(end_time, last_finite_time));

  const stream::StreamEngine::Stats& stats = engine->stats();
  fault::ChaosRunResult row;
  row.label = label;
  row.fault_class = fault_class;
  row.intensity = intensity;
  row.kill_restore_cycles = kill_cycles;
  fill_injector_side(injector.stats(), row);
  row.offered = stats.beacons_offered;
  row.ingested = stats.beacons_ingested;
  row.shed_rate_limited = stats.beacons_shed_rate_limited;
  row.shed_identity_cap = stats.beacons_shed_identity_cap;
  row.shed_out_of_order = stats.beacons_shed_out_of_order;
  row.shed_invalid_rssi_non_finite = stats.shed_invalid_rssi_non_finite;
  row.shed_invalid_rssi_out_of_range = stats.shed_invalid_rssi_out_of_range;
  row.shed_invalid_time_non_finite = stats.shed_invalid_time_non_finite;
  row.shed_invalid_time_negative = stats.shed_invalid_time_negative;
  row.rounds = stats.rounds;
  row.round_divergence = divergence_vs(baseline, rounds);
  row.max_divergence = max_divergence;
  print_row(row);
  return row;
}

// The fleet run: three sessions fed independently-faulted copies of the
// trace through a sharded DetectionService, with one service-level
// kill/restore (pump → checkpoint → encode → decode → rebuild) midway.
fault::ChaosRunResult run_service_chaos(
    const fault::FaultConfig& base_faults,
    const stream::StreamEngineConfig& engine_config,
    const std::vector<fault::Beacon>& trace, double end_time,
    const RoundMap& baseline, double max_divergence, std::size_t threads) {
  struct SessionBeacon {
    service::SessionId session;
    fault::Beacon beacon;
  };
  constexpr std::size_t kSessions = 3;
  std::vector<SessionBeacon> merged;
  fault::FaultStats injector_totals;
  for (std::size_t s = 0; s < kSessions; ++s) {
    fault::FaultConfig fc = base_faults;
    fc.seed = mix64(base_faults.seed, s + 1);
    fault::FaultInjector injector(fc);
    for (const fault::Beacon& b : injector.apply(trace)) {
      merged.push_back({static_cast<service::SessionId>(s + 1), b});
    }
    const fault::FaultStats& fs = injector.stats();
    injector_totals.offered += fs.offered;
    injector_totals.emitted += fs.emitted;
    injector_totals.dropped += fs.dropped;
    injector_totals.burst_dropped += fs.burst_dropped;
    injector_totals.duplicated += fs.duplicated;
    injector_totals.reordered += fs.reordered;
    injector_totals.rssi_spiked += fs.rssi_spiked;
    injector_totals.rssi_quantized += fs.rssi_quantized;
    injector_totals.rssi_non_finite += fs.rssi_non_finite;
    injector_totals.time_skewed += fs.time_skewed;
    injector_totals.time_regressed += fs.time_regressed;
    injector_totals.flood_injected += fs.flood_injected;
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const SessionBeacon& a, const SessionBeacon& b) {
                     return a.beacon.time_s < b.beacon.time_s;
                   });

  service::ServiceConfig config;
  config.shards = kSessions;
  config.threads = threads;
  config.engine = engine_config;
  std::map<service::SessionId, RoundMap> rounds;
  auto record = [&rounds](const service::SessionRound& r) {
    rounds[r.session][r.round.time_s] = r.round.suspects;
  };
  std::optional<service::DetectionService> svc(std::in_place, config);
  svc->set_round_callback(record);

  const std::size_t kill_at = merged.size() / 2;
  double last_finite_time = 0.0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (i == kill_at) {
      svc->pump();  // checkpoint requires a drained round queue
      const std::vector<std::uint8_t> bytes =
          service::encode_checkpoint(svc->checkpoint());
      svc.reset();
      service::ServiceCheckpoint restored;
      std::string error;
      if (!service::decode_checkpoint(bytes, &restored, &error)) {
        std::fprintf(stderr, "chaos: service checkpoint roundtrip failed: %s\n",
                     error.c_str());
        std::exit(1);
      }
      svc.emplace(config, restored);
      svc->set_round_callback(record);
    }
    const SessionBeacon& sb = merged[i];
    svc->ingest(sb.session, sb.beacon.id, sb.beacon.time_s, sb.beacon.rssi_dbm);
    if (std::isfinite(sb.beacon.time_s)) {
      last_finite_time = std::max(last_finite_time, sb.beacon.time_s);
    }
  }
  svc->advance_all_to(std::max(end_time, last_finite_time));

  const service::DetectionService::Stats& stats = svc->stats();
  fault::ChaosRunResult row;
  row.label = "service_fleet";
  row.fault_class = "all";
  row.intensity = 1.0;
  row.kill_restore_cycles = 1;
  fill_injector_side(injector_totals, row);
  row.offered = stats.beacons_offered;
  row.ingested = stats.beacons_ingested;
  row.shed_rate_limited = stats.beacons_shed_rate_limited;
  row.shed_identity_cap = stats.beacons_shed_identity_cap;
  row.shed_out_of_order = stats.beacons_shed_out_of_order;
  row.shed_session_cap = stats.beacons_shed_session_cap;
  // Per-reason validation detail lives in the session engines.
  svc->for_each_session([&row](service::SessionId,
                               const stream::StreamEngine& engine) {
    const stream::StreamEngine::Stats& es = engine.stats();
    row.shed_invalid_rssi_non_finite += es.shed_invalid_rssi_non_finite;
    row.shed_invalid_rssi_out_of_range += es.shed_invalid_rssi_out_of_range;
    row.shed_invalid_time_non_finite += es.shed_invalid_time_non_finite;
    row.shed_invalid_time_negative += es.shed_invalid_time_negative;
  });
  row.rounds = stats.rounds_executed;
  double worst = 0.0;
  for (std::size_t s = 1; s <= kSessions; ++s) {
    worst = std::max(worst, divergence_vs(baseline, rounds[s]));
  }
  row.round_divergence = worst;
  row.max_divergence = max_divergence;
  print_row(row);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const RunFlags run_flags = parse_run_flags(args);
  obs::RunSession session(args.program_name(), run_flags.metrics_out,
                          run_flags.trace_out);
  obs::enable();  // the fault.* / stream.* counters feed --metrics-out

  // Telemetry + health: one frame per chaos run, each evaluated against
  // the conservation laws. A clean sweep must raise zero alerts — and the
  // self-test below then breaks a law on purpose and requires the monitor
  // to catch it, so "no alerts" is a real signal, not a dead check.
  obs::HealthMonitor monitor = obs::HealthMonitor::with_default_invariants();
  obs::TelemetryExporter telemetry(obs::telemetry_config_from_flags(run_flags));
  telemetry.set_monitor(&monitor);  // declared after monitor: outlived

  const bool quick = args.get_bool("quick", false);
  const double density = args.get_double("density", quick ? 8.0 : 12.0);
  const double sim_time = args.get_double("sim-time", quick ? 45.0 : 80.0);
  const std::uint64_t seed = args.get_seed("seed", 11);
  const auto kill_cycles = static_cast<std::size_t>(
      args.get_int("kill-cycles", quick ? 1 : 2));
  const std::string out_path = args.get("out", "BENCH_chaos.json");

  sim::ScenarioConfig sim_config;
  const std::vector<fault::Beacon> trace =
      highway_trace(density, sim_time, seed, &sim_config);
  const stream::StreamEngineConfig engine_config =
      engine_config_for(sim_config);
  std::printf("chaos: trace %zu beacons over %.0f s (density %.0f /km)\n",
              trace.size(), sim_time, density);

  // Clean baseline, and — as run "none" — the same clean trace through
  // the injector at zero intensity with a kill/restore cycle: the
  // restored engine must reproduce the baseline exactly (divergence 0).
  RoundMap baseline;
  {
    stream::StreamEngine engine(engine_config);
    engine.set_round_callback([&baseline](const stream::StreamRound& round) {
      baseline[round.time_s] = round.suspects;
    });
    for (const fault::Beacon& b : trace) {
      engine.ingest(b.id, b.time_s, b.rssi_dbm);
    }
    engine.advance_to(sim_time);
  }

  fault::FaultConfig off;
  off.seed = seed;

  std::vector<fault::ChaosRunResult> runs;
  auto engine_run = [&](const std::string& label,
                        const std::string& fault_class, double intensity,
                        const fault::FaultConfig& fc, double max_divergence) {
    runs.push_back(run_engine_chaos(label, fault_class, intensity, fc,
                                    engine_config, trace, sim_time,
                                    kill_cycles, baseline, max_divergence));
    telemetry.emit_now(sim_time);  // run boundary: a quiescent point
  };

  // Injection disabled + kill/restore: restore parity, divergence 0.
  engine_run("none_restore_parity", "none", 0.0, off, 0.0);

  {  // i.i.d. loss
    fault::FaultConfig fc = off;
    fc.drop_probability = 0.05;
    engine_run("drop_low", "drop", fc.drop_probability, fc, 0.9);
    fc.drop_probability = 1.0;  // total blackout: empty rounds only
    engine_run("drop_max", "drop", fc.drop_probability, fc, 1.0);
  }
  {  // correlated loss
    fault::FaultConfig fc = off;
    fc.burst_start_probability = 0.002;
    fc.burst_length = quick ? 20 : 50;
    engine_run("burst_low", "burst", fc.burst_start_probability, fc, 1.0);
    fc.burst_start_probability = 1.0;
    engine_run("burst_max", "burst", fc.burst_start_probability, fc, 1.0);
  }
  {  // duplicates
    fault::FaultConfig fc = off;
    fc.duplicate_probability = 0.1;
    engine_run("duplicate_low", "duplicate", fc.duplicate_probability, fc, 1.0);
    fc.duplicate_probability = 1.0;
    engine_run("duplicate_max", "duplicate", fc.duplicate_probability, fc, 1.0);
  }
  {  // bounded reordering
    fault::FaultConfig fc = off;
    fc.reorder_probability = 0.1;
    fc.reorder_max_displacement = 4;
    engine_run("reorder_low", "reorder", fc.reorder_probability, fc, 1.0);
    fc.reorder_probability = 1.0;
    fc.reorder_max_displacement = 16;
    engine_run("reorder_max", "reorder", fc.reorder_probability, fc, 1.0);
  }
  {  // RSSI spikes + quantisation
    fault::FaultConfig fc = off;
    fc.rssi_spike_probability = 0.05;
    fc.rssi_spike_db = 25.0;
    engine_run("rssi_spike_low", "rssi_spike", fc.rssi_spike_probability, fc,
               1.0);
    fc.rssi_spike_probability = 1.0;
    fc.rssi_spike_db = 90.0;  // ±90 dB: the negative arm leaves the
                              // valid range and must be shed as invalid
    fc.rssi_quantize_step_db = 4.0;
    engine_run("rssi_spike_max", "rssi_spike", fc.rssi_spike_probability, fc,
               1.0);
  }
  {  // non-finite RSSI — the validation front's reason to exist
    fault::FaultConfig fc = off;
    fc.rssi_non_finite_probability = 0.05;
    engine_run("rssi_non_finite_low", "rssi_non_finite",
               fc.rssi_non_finite_probability, fc, 1.0);
    fc.rssi_non_finite_probability = 1.0;
    engine_run("rssi_non_finite_max", "rssi_non_finite",
               fc.rssi_non_finite_probability, fc, 1.0);
  }
  {  // clock trouble
    fault::FaultConfig fc = off;
    fc.time_skew_s = 0.5;
    fc.time_drift_per_s = 0.001;
    engine_run("time_skew_low", "time_skew", fc.time_skew_s, fc, 1.0);
    fc.time_skew_s = -5.0;  // clock BEHIND true time: early beacons land
                            // at negative timestamps → shed as invalid
    fc.time_drift_per_s = 0.05;
    fc.time_regression_probability = 0.2;
    engine_run("time_skew_max", "time_skew", 5.0, fc, 1.0);
  }
  {  // identity flood
    fault::FaultConfig fc = off;
    fc.flood_probability = 0.1;
    engine_run("flood_low", "flood", fc.flood_probability, fc, 1.0);
    fc.flood_probability = 1.0;
    engine_run("flood_max", "flood", fc.flood_probability, fc, 1.0);
  }

  // Everything at once, at maximum intensity — the survival bar: the
  // engine must stay up through every kill/restore with conservation
  // exact, whatever the output looks like.
  fault::FaultConfig storm = off;
  storm.drop_probability = 0.3;
  storm.burst_start_probability = 0.01;
  storm.burst_length = quick ? 20 : 50;
  storm.duplicate_probability = 0.3;
  storm.reorder_probability = 0.3;
  storm.reorder_max_displacement = 16;
  storm.rssi_spike_probability = 0.5;
  storm.rssi_spike_db = 90.0;
  storm.rssi_quantize_step_db = 4.0;
  storm.rssi_non_finite_probability = 0.3;
  storm.time_skew_s = -5.0;
  storm.time_drift_per_s = 0.05;
  storm.time_regression_probability = 0.2;
  storm.flood_probability = 0.5;
  engine_run("all_max", "all", 1.0, storm, 1.0);

  // The fleet under the same storm, with a service-level kill/restore.
  runs.push_back(run_service_chaos(storm, engine_config, trace, sim_time,
                                   baseline, 1.0, run_flags.threads));
  telemetry.emit_now(sim_time);

  // Health gate 1: the whole faulted sweep — storms, floods, kill/restore
  // cycles — must leave every conservation law exact on every frame.
  if (monitor.alerts_total() != 0) {
    std::fprintf(stderr,
                 "chaos_detection: health monitor raised %llu alert(s) on a "
                 "conserving run\n",
                 static_cast<unsigned long long>(monitor.alerts_total()));
    return 1;
  }
  // Health gate 2: break the stream admission law on purpose (offered
  // bumped with no matching ingest/shed) and require the monitor to flag
  // exactly that invariant on the next frame.
  obs::registry().counter("stream.beacons_offered").add(5);
  telemetry.emit_now(sim_time);
  if (monitor.alerts_by_invariant().count("conservation.stream.beacons") == 0) {
    std::fprintf(stderr,
                 "chaos_detection: health monitor missed an injected "
                 "stream-conservation violation\n");
    return 1;
  }
  std::printf(
      "chaos: health monitor clean over %llu frames; injected violation "
      "flagged\n",
      static_cast<unsigned long long>(monitor.frames_evaluated() - 1));
  telemetry.finish(sim_time);
  if (session.active()) session.merge_extra("health", monitor.summary());

  const obs::json::Value report =
      fault::build_chaos_bench_report(args.program_name(), seed, runs);
  std::string error;
  if (!fault::validate_chaos_bench(report, &error)) {
    std::fprintf(stderr, "chaos_detection: self-check failed: %s\n",
                 error.c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::out | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << report.dump(2) << "\n";
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  std::printf("chaos: OK (%zu runs, all conservation laws exact)\n",
              runs.size());
  return 0;
}
