// Chaos harness for the serving stack (DESIGN.md §10): sweep every
// fault class at low and high intensity — plus everything-at-once — over
// a highway trace, run the faulted stream through stream::StreamEngine
// with kill/restore cycles (checkpoint → encode → decode → rebuild), and
// prove the stack survives: zero crashes, conservation laws exact,
// divergence from the clean baseline bounded. One additional run drives
// a sharded service::DetectionService fleet through the same storm with
// a service-level kill/restore.
//
// The sweep also proves the §15 conditioning front earns its place: for
// the RSSI corruption classes it can plausibly blunt (spike, quantise,
// stuck-at) the same faulted stream runs twice — conditioning OFF
// against the unconditioned clean baseline and conditioning ON against
// the conditioned clean baseline — and the report's cond_gates require a
// strict divergence improvement (with the OFF arm provably non-zero, so
// the gate cannot pass on a fault that never bit).
//
// Writes BENCH_chaos.json (schema voiceprint.chaos_bench/v2,
// self-validated before writing; checked again by
// tools/check_run_report --chaos-bench and scripts/smoke.sh).
//
//   ./build/bench/chaos_detection                  # full sweep
//   ./build/bench/chaos_detection --quick          # smoke-sized sweep
//   ./build/bench/chaos_detection --kill-cycles 3 --seed 7
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/cli.h"
#include "core/detector.h"
#include "fault/injector.h"
#include "fault/report.h"
#include "fusion/checkpoint.h"
#include "fusion/engine.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/runtime.h"
#include "obs/telemetry.h"
#include "service/checkpoint.h"
#include "service/service.h"
#include "sim/world.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"

namespace {

using namespace vp;

// Clean source trace: one observer's receptions from the highway
// simulator, arrival-ordered — the same kind of stream the parity tests
// feed the engine.
std::vector<fault::Beacon> highway_trace(double density, double sim_time,
                                         std::uint64_t seed,
                                         sim::ScenarioConfig* out_config) {
  sim::ScenarioConfig config;
  config.density_per_km = density;
  config.sim_time_s = sim_time;
  config.seed = seed;
  sim::World world(config);
  world.run();
  const NodeId observer = world.normal_node_ids().front();
  const sim::RssiLog& log = world.node(observer).log();

  std::vector<fault::Beacon> beacons;
  for (IdentityId id : log.identities_heard(0.0, sim_time + 1.0, 1)) {
    for (const sim::BeaconRecord& r : log.records(id, 0.0, sim_time + 1.0)) {
      beacons.push_back({id, r.time_s, r.rssi_dbm});
    }
  }
  std::sort(beacons.begin(), beacons.end(),
            [](const fault::Beacon& a, const fault::Beacon& b) {
              return a.time_s != b.time_s ? a.time_s < b.time_s : a.id < b.id;
            });
  *out_config = config;
  return beacons;
}

stream::StreamEngineConfig engine_config_for(const sim::ScenarioConfig& sim) {
  stream::StreamEngineConfig config;
  config.observation_time_s = sim.observation_time_s;
  config.round_period_s = sim.detection_period_s;
  config.density_estimation_period_s = sim.density_estimation_period_s;
  config.max_transmission_range_m = sim.max_transmission_range_m;
  config.detector = core::tuned_simulation_options(1);
  return config;
}

using RoundMap = std::map<double, std::vector<IdentityId>>;

// Fraction of baseline rounds the faulted run got wrong (different
// suspect set, or the round missing entirely).
double divergence_vs(const RoundMap& baseline, const RoundMap& faulted) {
  if (baseline.empty()) return 0.0;
  std::size_t divergent = 0;
  for (const auto& [time, suspects] : baseline) {
    const auto it = faulted.find(time);
    if (it == faulted.end() || it->second != suspects) ++divergent;
  }
  return static_cast<double>(divergent) / static_cast<double>(baseline.size());
}

void fill_injector_side(const fault::FaultStats& fs,
                        fault::ChaosRunResult& row) {
  row.source_beacons = fs.offered;
  row.emitted = fs.emitted;
  row.dropped = fs.dropped;
  row.burst_dropped = fs.burst_dropped;
  row.duplicated = fs.duplicated;
  row.reordered = fs.reordered;
  row.rssi_spiked = fs.rssi_spiked;
  row.rssi_quantized = fs.rssi_quantized;
  row.rssi_non_finite = fs.rssi_non_finite;
  row.rssi_stuck = fs.rssi_stuck;
  row.time_skewed = fs.time_skewed;
  row.time_regressed = fs.time_regressed;
  row.flood_injected = fs.flood_injected;
}

void print_row(const fault::ChaosRunResult& row) {
  std::printf(
      "CHAOS %-22s class=%-12s intensity=%6.3f kills=%llu  emitted=%-6llu "
      "ingested=%-6llu shed=%-5llu rounds=%-3llu divergence=%.3f\n",
      row.label.c_str(), row.fault_class.c_str(), row.intensity,
      static_cast<unsigned long long>(row.kill_restore_cycles),
      static_cast<unsigned long long>(row.emitted),
      static_cast<unsigned long long>(row.ingested),
      static_cast<unsigned long long>(
          row.shed_rate_limited + row.shed_identity_cap +
          row.shed_out_of_order + row.shed_invalid_rssi_non_finite +
          row.shed_invalid_rssi_out_of_range + row.shed_invalid_time_non_finite +
          row.shed_invalid_time_negative + row.shed_conditioned),
      static_cast<unsigned long long>(row.rounds), row.round_divergence);
}

// One engine chaos run: fault the trace, stream it with `kill_cycles`
// checkpoint/encode/decode/restore interruptions, collect rounds.
fault::ChaosRunResult run_engine_chaos(
    const std::string& label, const std::string& fault_class, double intensity,
    const fault::FaultConfig& fault_config,
    const stream::StreamEngineConfig& engine_config,
    const std::vector<fault::Beacon>& trace, double end_time,
    std::size_t kill_cycles, const RoundMap& baseline,
    double max_divergence) {
  fault::FaultInjector injector(fault_config);
  const std::vector<fault::Beacon> faulted = injector.apply(trace);

  RoundMap rounds;
  auto record = [&rounds](const stream::StreamRound& round) {
    rounds[round.time_s] = round.suspects;
  };
  std::optional<stream::StreamEngine> engine(std::in_place, engine_config);
  engine->set_round_callback(record);

  // Kill points: evenly spaced beacon indices, skipping 0 and the end.
  std::vector<std::size_t> kills;
  for (std::size_t k = 1; k <= kill_cycles; ++k) {
    kills.push_back(faulted.size() * k / (kill_cycles + 1));
  }
  std::size_t next_kill = 0;
  double last_finite_time = 0.0;
  for (std::size_t i = 0; i < faulted.size(); ++i) {
    if (next_kill < kills.size() && i == kills[next_kill]) {
      ++next_kill;
      // The crash: serialise, discard the live engine, deserialise,
      // rebuild. A decode failure here is a harness bug — fail loudly.
      const std::vector<std::uint8_t> bytes =
          stream::encode_checkpoint(engine->checkpoint());
      engine.reset();
      stream::EngineCheckpoint restored;
      std::string error;
      if (!stream::decode_checkpoint(bytes, &restored, &error)) {
        std::fprintf(stderr, "chaos: checkpoint roundtrip failed: %s\n",
                     error.c_str());
        std::exit(1);
      }
      engine.emplace(engine_config, restored);
      engine->set_round_callback(record);
    }
    const fault::Beacon& b = faulted[i];
    engine->ingest(b.id, b.time_s, b.rssi_dbm);
    if (std::isfinite(b.time_s)) {
      last_finite_time = std::max(last_finite_time, b.time_s);
    }
  }
  engine->advance_to(std::max(end_time, last_finite_time));

  const stream::StreamEngine::Stats& stats = engine->stats();
  fault::ChaosRunResult row;
  row.label = label;
  row.fault_class = fault_class;
  row.intensity = intensity;
  row.kill_restore_cycles = kill_cycles;
  fill_injector_side(injector.stats(), row);
  row.offered = stats.beacons_offered;
  row.ingested = stats.beacons_ingested;
  row.shed_rate_limited = stats.beacons_shed_rate_limited;
  row.shed_identity_cap = stats.beacons_shed_identity_cap;
  row.shed_out_of_order = stats.beacons_shed_out_of_order;
  row.shed_invalid_rssi_non_finite = stats.shed_invalid_rssi_non_finite;
  row.shed_invalid_rssi_out_of_range = stats.shed_invalid_rssi_out_of_range;
  row.shed_invalid_time_non_finite = stats.shed_invalid_time_non_finite;
  row.shed_invalid_time_negative = stats.shed_invalid_time_negative;
  row.shed_conditioned = stats.beacons_shed_conditioned;
  row.cond_offered = stats.cond_offered;
  row.cond_passed = stats.cond_passed;
  row.cond_clamped = stats.cond_clamped;
  row.cond_rejected = stats.cond_rejected;
  row.rounds = stats.rounds;
  row.round_divergence = divergence_vs(baseline, rounds);
  row.max_divergence = max_divergence;
  print_row(row);
  return row;
}

// The fleet run: three sessions fed independently-faulted copies of the
// trace through a sharded DetectionService, with one service-level
// kill/restore (pump → checkpoint → encode → decode → rebuild) midway.
fault::ChaosRunResult run_service_chaos(
    const fault::FaultConfig& base_faults,
    const stream::StreamEngineConfig& engine_config,
    const std::vector<fault::Beacon>& trace, double end_time,
    const RoundMap& baseline, double max_divergence, std::size_t threads) {
  struct SessionBeacon {
    service::SessionId session;
    fault::Beacon beacon;
  };
  constexpr std::size_t kSessions = 3;
  std::vector<SessionBeacon> merged;
  fault::FaultStats injector_totals;
  for (std::size_t s = 0; s < kSessions; ++s) {
    fault::FaultConfig fc = base_faults;
    fc.seed = mix64(base_faults.seed, s + 1);
    fault::FaultInjector injector(fc);
    for (const fault::Beacon& b : injector.apply(trace)) {
      merged.push_back({static_cast<service::SessionId>(s + 1), b});
    }
    const fault::FaultStats& fs = injector.stats();
    injector_totals.offered += fs.offered;
    injector_totals.emitted += fs.emitted;
    injector_totals.dropped += fs.dropped;
    injector_totals.burst_dropped += fs.burst_dropped;
    injector_totals.duplicated += fs.duplicated;
    injector_totals.reordered += fs.reordered;
    injector_totals.rssi_spiked += fs.rssi_spiked;
    injector_totals.rssi_quantized += fs.rssi_quantized;
    injector_totals.rssi_non_finite += fs.rssi_non_finite;
    injector_totals.rssi_stuck += fs.rssi_stuck;
    injector_totals.time_skewed += fs.time_skewed;
    injector_totals.time_regressed += fs.time_regressed;
    injector_totals.flood_injected += fs.flood_injected;
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const SessionBeacon& a, const SessionBeacon& b) {
                     return a.beacon.time_s < b.beacon.time_s;
                   });

  service::ServiceConfig config;
  config.shards = kSessions;
  config.threads = threads;
  config.engine = engine_config;
  std::map<service::SessionId, RoundMap> rounds;
  auto record = [&rounds](const service::SessionRound& r) {
    rounds[r.session][r.round.time_s] = r.round.suspects;
  };
  std::optional<service::DetectionService> svc(std::in_place, config);
  svc->set_round_callback(record);

  const std::size_t kill_at = merged.size() / 2;
  double last_finite_time = 0.0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (i == kill_at) {
      svc->pump();  // checkpoint requires a drained round queue
      const std::vector<std::uint8_t> bytes =
          service::encode_checkpoint(svc->checkpoint());
      svc.reset();
      service::ServiceCheckpoint restored;
      std::string error;
      if (!service::decode_checkpoint(bytes, &restored, &error)) {
        std::fprintf(stderr, "chaos: service checkpoint roundtrip failed: %s\n",
                     error.c_str());
        std::exit(1);
      }
      svc.emplace(config, restored);
      svc->set_round_callback(record);
    }
    const SessionBeacon& sb = merged[i];
    svc->ingest(sb.session, sb.beacon.id, sb.beacon.time_s, sb.beacon.rssi_dbm);
    if (std::isfinite(sb.beacon.time_s)) {
      last_finite_time = std::max(last_finite_time, sb.beacon.time_s);
    }
  }
  svc->advance_all_to(std::max(end_time, last_finite_time));

  const service::DetectionService::Stats& stats = svc->stats();
  fault::ChaosRunResult row;
  row.label = "service_fleet";
  row.fault_class = "all";
  row.intensity = 1.0;
  row.kill_restore_cycles = 1;
  fill_injector_side(injector_totals, row);
  row.offered = stats.beacons_offered;
  row.ingested = stats.beacons_ingested;
  row.shed_rate_limited = stats.beacons_shed_rate_limited;
  row.shed_identity_cap = stats.beacons_shed_identity_cap;
  row.shed_out_of_order = stats.beacons_shed_out_of_order;
  row.shed_session_cap = stats.beacons_shed_session_cap;
  // Per-reason validation detail lives in the session engines.
  svc->for_each_session([&row](service::SessionId,
                               const stream::StreamEngine& engine) {
    const stream::StreamEngine::Stats& es = engine.stats();
    row.shed_invalid_rssi_non_finite += es.shed_invalid_rssi_non_finite;
    row.shed_invalid_rssi_out_of_range += es.shed_invalid_rssi_out_of_range;
    row.shed_invalid_time_non_finite += es.shed_invalid_time_non_finite;
    row.shed_invalid_time_negative += es.shed_invalid_time_negative;
    row.cond_offered += es.cond_offered;
    row.cond_passed += es.cond_passed;
    row.cond_clamped += es.cond_clamped;
    row.cond_rejected += es.cond_rejected;
  });
  row.rounds = stats.rounds_executed;
  double worst = 0.0;
  for (std::size_t s = 1; s <= kSessions; ++s) {
    worst = std::max(worst, divergence_vs(baseline, rounds[s]));
  }
  row.round_divergence = worst;
  row.max_divergence = max_divergence;
  // Close every session (after the per-engine stats were harvested) so
  // the session conservation law (opened = closed + evicted + active)
  // stays exact for the later runs in this process; a destroyed service
  // cannot retire the registry's active-sessions gauge.
  for (std::size_t s = 1; s <= kSessions; ++s) {
    svc->close(static_cast<service::SessionId>(s));
  }
  print_row(row);
  return row;
}

// The collusion regression: corroboration must not hand a colluding
// minority a better frame-up than they had alone. Three attacker sessions
// feed the service crafted streams in which one legitimate identity's
// beacon series is replayed under a second legitimate identity — a
// perfect DTW twin, so their per-observer engines accuse the framed pair
// every round — while six honest sessions stream the clean trace and
// exonerate it. The fusion quorum has to hold: the framed identities are
// never fused-accused, their trust recovers instead of decaying, and the
// attackers pay the badmouth penalty until their vote weight is spent.
// One mid-stream kill/restore round-trips the service AND the fusion
// (VPFU) checkpoints together. Any gate failure exits loudly.
fault::ChaosRunResult run_collusion_chaos(
    const stream::StreamEngineConfig& engine_config,
    const std::vector<fault::Beacon>& trace, double end_time,
    const RoundMap& baseline, std::size_t threads) {
  constexpr std::size_t kHonest = 6;
  constexpr std::size_t kAttackers = 3;

  // Identities the clean baseline ever flagged (the trace's real Sybil
  // twins): fused accusations against those are correct detections.
  // Everything else is an honest identity the collusion must not sink.
  std::set<IdentityId> baseline_suspects;
  for (const auto& [time, suspects] : baseline) {
    baseline_suspects.insert(suspects.begin(), suspects.end());
  }

  // Frame targets: the two busiest identities the baseline never flagged
  // — the hardest honest pair to protect, since every observer votes on
  // them every epoch.
  std::map<IdentityId, std::size_t> beacon_counts;
  for (const fault::Beacon& b : trace) ++beacon_counts[b.id];
  IdentityId frame_a = 0;
  IdentityId frame_b = 0;
  std::size_t best_a = 0;
  std::size_t best_b = 0;
  for (const auto& [id, count] : beacon_counts) {
    if (baseline_suspects.count(id) != 0) continue;
    if (count > best_a) {
      frame_b = frame_a;
      best_b = best_a;
      frame_a = id;
      best_a = count;
    } else if (count > best_b) {
      frame_b = id;
      best_b = count;
    }
  }
  if (best_b == 0) {
    std::fprintf(stderr, "chaos: collusion needs two clean identities\n");
    std::exit(1);
  }

  // The attackers' stream: frame_a's genuine beacons, each replayed 20 ms
  // later under frame_b's identity — two identities, one RSSI voiceprint.
  std::vector<fault::Beacon> crafted;
  for (const fault::Beacon& b : trace) {
    if (b.id != frame_a) continue;
    crafted.push_back(b);
    crafted.push_back({frame_b, b.time_s + 0.02, b.rssi_dbm});
  }
  std::sort(crafted.begin(), crafted.end(),
            [](const fault::Beacon& a, const fault::Beacon& b) {
              return a.time_s != b.time_s ? a.time_s < b.time_s : a.id < b.id;
            });

  struct SessionBeacon {
    service::SessionId session;
    fault::Beacon beacon;
  };
  std::vector<SessionBeacon> merged;
  for (std::size_t s = 1; s <= kHonest; ++s) {
    for (const fault::Beacon& b : trace) {
      merged.push_back({static_cast<service::SessionId>(s), b});
    }
  }
  for (std::size_t s = kHonest + 1; s <= kHonest + kAttackers; ++s) {
    for (const fault::Beacon& b : crafted) {
      merged.push_back({static_cast<service::SessionId>(s), b});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const SessionBeacon& a, const SessionBeacon& b) {
                     return a.beacon.time_s < b.beacon.time_s;
                   });

  service::ServiceConfig config;
  config.shards = 3;
  config.threads = threads;
  config.engine = engine_config;
  fusion::FusionConfig fusion_config;
  fusion_config.epoch_period_s = engine_config.round_period_s;

  std::map<service::SessionId, RoundMap> rounds;
  auto record = [&rounds](const service::SessionRound& r) {
    rounds[r.session][r.round.time_s] = r.round.suspects;
  };
  std::vector<fusion::FusedEpoch> epochs;
  auto collect = [&epochs](const fusion::FusedEpoch& e) {
    epochs.push_back(e);
  };
  std::optional<service::DetectionService> svc(std::in_place, config);
  std::optional<fusion::FusionEngine> fuse(std::in_place, fusion_config);
  auto wire = [&svc, &fuse, &record, &collect] {
    svc->set_round_callback(record);
    svc->add_round_listener(
        [&fuse](const service::SessionRound& r) { fuse->observe(r); });
    fuse->set_epoch_callback(collect);
  };
  wire();

  const std::size_t kill_at = merged.size() / 2;
  double last_time = 0.0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (i == kill_at) {
      // The crash takes down service and fusion together; both restore
      // from their own checkpoint bytes (mid-epoch for the fusion side).
      svc->pump();  // drains queued rounds into the live fusion engine
      const std::vector<std::uint8_t> svc_bytes =
          service::encode_checkpoint(svc->checkpoint());
      const std::vector<std::uint8_t> fuse_bytes =
          fusion::encode_checkpoint(fuse->checkpoint());
      svc.reset();
      fuse.reset();
      service::ServiceCheckpoint svc_restored;
      fusion::FusionCheckpoint fuse_restored;
      std::string error;
      if (!service::decode_checkpoint(svc_bytes, &svc_restored, &error) ||
          !fusion::decode_checkpoint(fuse_bytes, &fuse_restored, &error)) {
        std::fprintf(stderr, "chaos: collusion checkpoint roundtrip: %s\n",
                     error.c_str());
        std::exit(1);
      }
      svc.emplace(config, svc_restored);
      fuse.emplace(fusion_config, fuse_restored);
      wire();
    }
    const SessionBeacon& sb = merged[i];
    svc->ingest(sb.session, sb.beacon.id, sb.beacon.time_s, sb.beacon.rssi_dbm);
    fuse->advance(sb.beacon.time_s);
    last_time = std::max(last_time, sb.beacon.time_s);
  }
  const double horizon = std::max(end_time, last_time);
  svc->advance_all_to(horizon);
  fuse->advance(horizon);
  fuse->finish();

  // Gate A: no fused epoch ever accuses an identity the clean baseline
  // never flagged — the frame-up must not land once, not just "rarely".
  std::uint64_t framed_accusations = 0;
  for (const fusion::FusedEpoch& epoch : epochs) {
    for (const fusion::FusedVerdict& verdict : epoch.verdicts) {
      if (verdict.accused && baseline_suspects.count(verdict.id) == 0) {
        ++framed_accusations;
        std::fprintf(stderr,
                     "chaos: collusion landed on identity %llu in epoch "
                     "%lld (%u/%u accusers)\n",
                     static_cast<unsigned long long>(verdict.id),
                     static_cast<long long>(epoch.index), verdict.accusations,
                     verdict.voters);
      }
    }
  }
  // Gate B: every clean identity's trust holds above the honest floor
  // (they were exonerated, so they should have *recovered* from 0.5).
  constexpr double kHonestTrustFloor = 0.3;
  double clean_trust_min = 1.0;
  for (const auto& [id, score] : fuse->identity_trust().scores()) {
    if (baseline_suspects.count(static_cast<IdentityId>(id)) != 0) continue;
    clean_trust_min = std::min(clean_trust_min, score);
  }
  // Gate C: badmouthing cost the attackers real vote weight — every
  // attacker session ends strictly below every honest session.
  double attacker_trust_max = 0.0;
  double honest_trust_min = 1.0;
  for (std::size_t s = 1; s <= kHonest + kAttackers; ++s) {
    const double score = fuse->observer_trust().get(s);
    if (s <= kHonest) {
      honest_trust_min = std::min(honest_trust_min, score);
    } else {
      attacker_trust_max = std::max(attacker_trust_max, score);
    }
  }
  if (framed_accusations != 0 || clean_trust_min < kHonestTrustFloor ||
      attacker_trust_max >= honest_trust_min) {
    std::fprintf(stderr,
                 "chaos: collusion gate failed — %llu framed accusations, "
                 "clean trust min %.3f (floor %.2f), attacker trust %.3f vs "
                 "honest %.3f\n",
                 static_cast<unsigned long long>(framed_accusations),
                 clean_trust_min, kHonestTrustFloor, attacker_trust_max,
                 honest_trust_min);
    std::exit(1);
  }
  std::printf(
      "chaos: collusion held — ids %llu/%llu exonerated over %zu epochs, "
      "clean trust >= %.2f, attacker trust %.2f < honest %.2f\n",
      static_cast<unsigned long long>(frame_a),
      static_cast<unsigned long long>(frame_b), epochs.size(), clean_trust_min,
      attacker_trust_max, honest_trust_min);

  const service::DetectionService::Stats& stats = svc->stats();
  fault::ChaosRunResult row;
  row.label = "collusion_cross_vouch";
  row.fault_class = "collusion";
  row.intensity = static_cast<double>(kAttackers) /
                  static_cast<double>(kHonest + kAttackers);
  row.kill_restore_cycles = 1;
  // No injector in this run: the crafted streams are the fault. Source =
  // emitted keeps the injector conservation law trivially exact.
  row.source_beacons = merged.size();
  row.emitted = merged.size();
  row.offered = stats.beacons_offered;
  row.ingested = stats.beacons_ingested;
  row.shed_rate_limited = stats.beacons_shed_rate_limited;
  row.shed_identity_cap = stats.beacons_shed_identity_cap;
  row.shed_out_of_order = stats.beacons_shed_out_of_order;
  row.shed_session_cap = stats.beacons_shed_session_cap;
  svc->for_each_session([&row](service::SessionId,
                               const stream::StreamEngine& engine) {
    const stream::StreamEngine::Stats& es = engine.stats();
    row.shed_invalid_rssi_non_finite += es.shed_invalid_rssi_non_finite;
    row.shed_invalid_rssi_out_of_range += es.shed_invalid_rssi_out_of_range;
    row.shed_invalid_time_non_finite += es.shed_invalid_time_non_finite;
    row.shed_invalid_time_negative += es.shed_invalid_time_negative;
    row.cond_offered += es.cond_offered;
    row.cond_passed += es.cond_passed;
    row.cond_clamped += es.cond_clamped;
    row.cond_rejected += es.cond_rejected;
  });
  row.rounds = stats.rounds_executed;
  // The honest sessions saw the clean trace: their rounds must match the
  // baseline exactly (ceiling 0) even through the kill/restore.
  double worst = 0.0;
  for (std::size_t s = 1; s <= kHonest; ++s) {
    worst = std::max(worst, divergence_vs(baseline, rounds[s]));
  }
  row.round_divergence = worst;
  row.max_divergence = 0.0;
  for (std::size_t s = 1; s <= kHonest + kAttackers; ++s) {
    svc->close(s);  // retire the sessions gauge for the conservation law
  }
  print_row(row);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const RunFlags run_flags = parse_run_flags(args);
  obs::RunSession session(args.program_name(), run_flags.metrics_out,
                          run_flags.trace_out);
  obs::enable();  // the fault.* / stream.* counters feed --metrics-out

  // Telemetry + health: one frame per chaos run, each evaluated against
  // the conservation laws. A clean sweep must raise zero alerts — and the
  // self-test below then breaks a law on purpose and requires the monitor
  // to catch it, so "no alerts" is a real signal, not a dead check.
  obs::HealthMonitor monitor = obs::HealthMonitor::with_default_invariants();
  obs::TelemetryExporter telemetry(obs::telemetry_config_from_flags(run_flags));
  telemetry.set_monitor(&monitor);  // declared after monitor: outlived

  const bool quick = args.get_bool("quick", false);
  const double density = args.get_double("density", quick ? 8.0 : 12.0);
  const double sim_time = args.get_double("sim-time", quick ? 45.0 : 80.0);
  const std::uint64_t seed = args.get_seed("seed", 11);
  const auto kill_cycles = static_cast<std::size_t>(
      args.get_int("kill-cycles", quick ? 1 : 2));
  const std::string out_path = args.get("out", "BENCH_chaos.json");

  sim::ScenarioConfig sim_config;
  const std::vector<fault::Beacon> trace =
      highway_trace(density, sim_time, seed, &sim_config);
  const stream::StreamEngineConfig engine_config =
      engine_config_for(sim_config);
  std::printf("chaos: trace %zu beacons over %.0f s (density %.0f /km)\n",
              trace.size(), sim_time, density);

  // Clean baseline, and — as run "none" — the same clean trace through
  // the injector at zero intensity with a kill/restore cycle: the
  // restored engine must reproduce the baseline exactly (divergence 0).
  auto clean_rounds = [&](const stream::StreamEngineConfig& config) {
    RoundMap rounds;
    stream::StreamEngine engine(config);
    engine.set_round_callback([&rounds](const stream::StreamRound& round) {
      rounds[round.time_s] = round.suspects;
    });
    for (const fault::Beacon& b : trace) {
      engine.ingest(b.id, b.time_s, b.rssi_dbm);
    }
    engine.advance_to(sim_time);
    return rounds;
  };
  const RoundMap baseline = clean_rounds(engine_config);

  // Conditioned twin of the baseline: same clean trace with the §15
  // conditioning front on. The cond-ON restore-parity run measures
  // against THIS map — conditioning changes what "correct" looks like,
  // so it gets its own reference.
  stream::StreamEngineConfig cond_config = engine_config;
  cond_config.condition_ingest = true;
  const RoundMap baseline_cond = clean_rounds(cond_config);

  // The conditioning gates run at a finer round cadence: with the
  // default 20 s rounds a whole sweep yields only a handful of verdict
  // points, far too coarse to resolve PARTIAL recovery (off 4/16 vs on
  // 1/16 rounds wrong both round to "half the rounds diverged" at two
  // points). 5 s rounds over the same 20 s observation window give the
  // divergence measure the resolution the strict gates need.
  stream::StreamEngineConfig gate_config = engine_config;
  gate_config.round_period_s = 5.0;
  stream::StreamEngineConfig gate_cond_config = gate_config;
  gate_cond_config.condition_ingest = true;
  const RoundMap gate_baseline = clean_rounds(gate_config);
  const RoundMap gate_baseline_cond = clean_rounds(gate_cond_config);

  fault::FaultConfig off;
  off.seed = seed;

  std::vector<fault::ChaosRunResult> runs;
  auto engine_run_vs = [&](const std::string& label,
                           const std::string& fault_class, double intensity,
                           const fault::FaultConfig& fc,
                           const stream::StreamEngineConfig& ec,
                           const RoundMap& base, double max_divergence) {
    runs.push_back(run_engine_chaos(label, fault_class, intensity, fc, ec,
                                    trace, sim_time, kill_cycles, base,
                                    max_divergence));
    telemetry.emit_now(sim_time);  // run boundary: a quiescent point
    return runs.back().round_divergence;
  };
  auto engine_run = [&](const std::string& label,
                        const std::string& fault_class, double intensity,
                        const fault::FaultConfig& fc, double max_divergence) {
    engine_run_vs(label, fault_class, intensity, fc, engine_config, baseline,
                  max_divergence);
  };

  // Injection disabled + kill/restore: restore parity, divergence 0.
  engine_run("none_restore_parity", "none", 0.0, off, 0.0);
  // Same parity bar with conditioning ON: the VPCK v3 checkpoint carries
  // the full Hampel window + EMA state, so a killed/restored conditioned
  // engine must reproduce the conditioned baseline bit-exactly too.
  engine_run_vs("none_restore_parity_cond", "none", 0.0, off, cond_config,
                baseline_cond, 0.0);

  {  // i.i.d. loss
    fault::FaultConfig fc = off;
    fc.drop_probability = 0.05;
    engine_run("drop_low", "drop", fc.drop_probability, fc, 0.9);
    fc.drop_probability = 1.0;  // total blackout: empty rounds only
    engine_run("drop_max", "drop", fc.drop_probability, fc, 1.0);
  }
  {  // correlated loss
    fault::FaultConfig fc = off;
    fc.burst_start_probability = 0.002;
    fc.burst_length = quick ? 20 : 50;
    engine_run("burst_low", "burst", fc.burst_start_probability, fc, 1.0);
    fc.burst_start_probability = 1.0;
    engine_run("burst_max", "burst", fc.burst_start_probability, fc, 1.0);
  }
  {  // duplicates
    fault::FaultConfig fc = off;
    fc.duplicate_probability = 0.1;
    engine_run("duplicate_low", "duplicate", fc.duplicate_probability, fc, 1.0);
    fc.duplicate_probability = 1.0;
    engine_run("duplicate_max", "duplicate", fc.duplicate_probability, fc, 1.0);
  }
  {  // bounded reordering
    fault::FaultConfig fc = off;
    fc.reorder_probability = 0.1;
    fc.reorder_max_displacement = 4;
    engine_run("reorder_low", "reorder", fc.reorder_probability, fc, 1.0);
    fc.reorder_probability = 1.0;
    fc.reorder_max_displacement = 16;
    engine_run("reorder_max", "reorder", fc.reorder_probability, fc, 1.0);
  }
  {  // RSSI spikes + quantisation
    fault::FaultConfig fc = off;
    fc.rssi_spike_probability = 0.05;
    fc.rssi_spike_db = 25.0;
    engine_run("rssi_spike_low", "rssi_spike", fc.rssi_spike_probability, fc,
               1.0);
    fc.rssi_spike_probability = 1.0;
    fc.rssi_spike_db = 90.0;  // ±90 dB: the negative arm leaves the
                              // valid range and must be shed as invalid
    fc.rssi_quantize_step_db = 4.0;
    engine_run("rssi_spike_max", "rssi_spike", fc.rssi_spike_probability, fc,
               1.0);
  }
  {  // non-finite RSSI — the validation front's reason to exist
    fault::FaultConfig fc = off;
    fc.rssi_non_finite_probability = 0.05;
    engine_run("rssi_non_finite_low", "rssi_non_finite",
               fc.rssi_non_finite_probability, fc, 1.0);
    fc.rssi_non_finite_probability = 1.0;
    engine_run("rssi_non_finite_max", "rssi_non_finite",
               fc.rssi_non_finite_probability, fc, 1.0);
  }
  {  // stuck-at / saturated RSSI readback
    fault::FaultConfig fc = off;
    fc.rssi_stuck_probability = 0.005;
    fc.rssi_stuck_length = 8;
    engine_run("rssi_stuck_low", "rssi_stuck", fc.rssi_stuck_probability, fc,
               1.0);
    fc.rssi_stuck_probability = 0.2;
    fc.rssi_stuck_length = quick ? 20 : 40;
    engine_run("rssi_stuck_max", "rssi_stuck", fc.rssi_stuck_probability, fc,
               1.0);
  }
  {  // clock trouble
    fault::FaultConfig fc = off;
    fc.time_skew_s = 0.5;
    fc.time_drift_per_s = 0.001;
    engine_run("time_skew_low", "time_skew", fc.time_skew_s, fc, 1.0);
    fc.time_skew_s = -5.0;  // clock BEHIND true time: early beacons land
                            // at negative timestamps → shed as invalid
    fc.time_drift_per_s = 0.05;
    fc.time_regression_probability = 0.2;
    engine_run("time_skew_max", "time_skew", 5.0, fc, 1.0);
  }
  {  // identity flood
    fault::FaultConfig fc = off;
    fc.flood_probability = 0.1;
    engine_run("flood_low", "flood", fc.flood_probability, fc, 1.0);
    fc.flood_probability = 1.0;
    engine_run("flood_max", "flood", fc.flood_probability, fc, 1.0);
  }

  // §15 conditioning gates: the same faulted stream, conditioning OFF
  // against the unconditioned baseline and ON against the conditioned
  // one. The report validator requires the OFF arm to diverge (the fault
  // must actually bite) and the ON arm to come in strictly below it —
  // conditioning has to measurably blunt each gated corruption class.
  std::vector<fault::CondGateResult> cond_gates;
  auto gated_pair = [&](const std::string& cls, double intensity,
                        const fault::FaultConfig& fc) {
    fault::CondGateResult gate;
    gate.fault_class = cls;
    gate.intensity = intensity;
    gate.divergence_off = engine_run_vs(cls + "_cond_off", cls, intensity, fc,
                                        gate_config, gate_baseline, 1.0);
    gate.divergence_on = engine_run_vs(cls + "_cond_on", cls, intensity, fc,
                                       gate_cond_config, gate_baseline_cond,
                                       1.0);
    std::printf("chaos: cond gate %-13s divergence off %.3f -> on %.3f\n",
                cls.c_str(), gate.divergence_off, gate.divergence_on);
    cond_gates.push_back(gate);
  };
  {
    fault::FaultConfig fc = off;
    fc.rssi_spike_probability = 0.08;
    fc.rssi_spike_db = 20.0;
    gated_pair("rssi_spike", fc.rssi_spike_probability, fc);
  }
  {
    fault::FaultConfig fc = off;
    fc.rssi_quantize_step_db = 6.0;
    gated_pair("rssi_quantize", fc.rssi_quantize_step_db, fc);
  }
  {
    fault::FaultConfig fc = off;
    fc.rssi_stuck_probability = 0.02;
    fc.rssi_stuck_length = 12;
    // Every gated episode saturates at the rail: the in-band freeze (a
    // beacon repeating its own last reading) is deliberately close to
    // legitimate traffic, while the rail is exactly the corruption the
    // Hampel front exists to reject. The mixed-mode runs above keep the
    // default 50/50 split.
    fc.rssi_stuck_rail_probability = 1.0;
    gated_pair("rssi_stuck", fc.rssi_stuck_probability, fc);
  }

  // Everything at once, at maximum intensity — the survival bar: the
  // engine must stay up through every kill/restore with conservation
  // exact, whatever the output looks like.
  fault::FaultConfig storm = off;
  storm.drop_probability = 0.3;
  storm.burst_start_probability = 0.01;
  storm.burst_length = quick ? 20 : 50;
  storm.duplicate_probability = 0.3;
  storm.reorder_probability = 0.3;
  storm.reorder_max_displacement = 16;
  storm.rssi_spike_probability = 0.5;
  storm.rssi_spike_db = 90.0;
  storm.rssi_quantize_step_db = 4.0;
  storm.rssi_non_finite_probability = 0.3;
  storm.rssi_stuck_probability = 0.05;
  storm.rssi_stuck_length = quick ? 10 : 20;
  storm.time_skew_s = -5.0;
  storm.time_drift_per_s = 0.05;
  storm.time_regression_probability = 0.2;
  storm.flood_probability = 0.5;
  engine_run("all_max", "all", 1.0, storm, 1.0);

  // The fleet under the same storm, with a service-level kill/restore.
  runs.push_back(run_service_chaos(storm, engine_config, trace, sim_time,
                                   baseline, 1.0, run_flags.threads));
  telemetry.emit_now(sim_time);

  // Cross-vouching collusion against the fusion quorum (DESIGN.md §13):
  // three attacker sessions frame an honest identity pair; the run gates
  // on the frame never fusing, honest trust holding, and the attackers'
  // vote weight decaying — and its telemetry frame checks the fusion
  // conservation law with real (non-zero) fusion counters.
  runs.push_back(run_collusion_chaos(engine_config, trace, sim_time, baseline,
                                     run_flags.threads));
  telemetry.emit_now(sim_time);

  // Health gate 1: the whole faulted sweep — storms, floods, kill/restore
  // cycles — must leave every conservation law exact on every frame.
  if (monitor.alerts_total() != 0) {
    std::fprintf(stderr,
                 "chaos_detection: health monitor raised %llu alert(s) on a "
                 "conserving run\n",
                 static_cast<unsigned long long>(monitor.alerts_total()));
    for (const auto& [invariant, count] : monitor.alerts_by_invariant()) {
      std::fprintf(stderr, "  %s: %llu\n", invariant.c_str(),
                   static_cast<unsigned long long>(count));
    }
    return 1;
  }
  // Health gate 2: break the stream admission law on purpose (offered
  // bumped with no matching ingest/shed) and require the monitor to flag
  // exactly that invariant on the next frame.
  obs::registry().counter("stream.beacons_offered").add(5);
  telemetry.emit_now(sim_time);
  if (monitor.alerts_by_invariant().count("conservation.stream.beacons") == 0) {
    std::fprintf(stderr,
                 "chaos_detection: health monitor missed an injected "
                 "stream-conservation violation\n");
    return 1;
  }
  std::printf(
      "chaos: health monitor clean over %llu frames; injected violation "
      "flagged\n",
      static_cast<unsigned long long>(monitor.frames_evaluated() - 1));
  telemetry.finish(sim_time);
  if (session.active()) session.merge_extra("health", monitor.summary());

  const obs::json::Value report =
      fault::build_chaos_bench_report(args.program_name(), seed, runs,
                                      cond_gates);
  // Write before self-checking: a failing sweep still leaves the report
  // on disk for inspection (the non-zero exit is the gate).
  std::ofstream out(out_path, std::ios::out | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << report.dump(2) << "\n";
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  std::string error;
  if (!fault::validate_chaos_bench(report, &error)) {
    std::fprintf(stderr, "chaos_detection: self-check failed: %s\n",
                 error.c_str());
    return 1;
  }
  std::printf("chaos: OK (%zu runs, all conservation laws exact)\n",
              runs.size());
  return 0;
}
