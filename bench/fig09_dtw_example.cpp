// Fig. 9 — the paper's worked DTW example:
//   X = {1, 1, 4, 1, 1}, Y = {2, 2, 2, 4, 2, 2}
// Prints the local-cost matrix, the accumulated-cost matrix, the optimal
// warp path and the resulting distance, plus the FastDTW result for the
// same pair. (The figure annotates the total as 9; the DP optimum under
// the paper's own Eq. 3/4 is 5 — see EXPERIMENTS.md.)
#include <iostream>
#include <vector>

#include "common/table.h"
#include "timeseries/dtw.h"
#include "timeseries/fast_dtw.h"

int main() {
  using namespace vp;
  const std::vector<double> x = {1, 1, 4, 1, 1};
  const std::vector<double> y = {2, 2, 2, 4, 2, 2};

  std::cout << "Fig. 9 worked example: X={1,1,4,1,1}, Y={2,2,2,4,2,2}\n\n";

  // Local cost matrix c(i,j) = (x_i − y_j)² (Eq. 3).
  {
    std::vector<std::string> headers = {"c(i,j)"};
    for (std::size_t j = 0; j < y.size(); ++j) {
      headers.push_back("y" + std::to_string(j + 1) + "=" +
                        Table::num(y[j], 0));
    }
    Table table(headers);
    for (std::size_t i = 0; i < x.size(); ++i) {
      std::vector<std::string> row = {"x" + std::to_string(i + 1) + "=" +
                                      Table::num(x[i], 0)};
      for (std::size_t j = 0; j < y.size(); ++j) {
        row.push_back(Table::num(ts::local_cost(x[i], y[j],
                                                ts::LocalCost::kSquared),
                                 0));
      }
      table.add_row(row);
    }
    std::cout << "Local cost matrix (Eq. 3):\n" << table.to_string() << "\n";
  }

  const ts::DtwResult exact = ts::dtw(x, y);
  std::cout << "Optimal DTW distance (Eq. 6): " << exact.distance
            << "   [paper's figure annotates 9; the DP optimum is 5]\n";
  std::cout << "Optimal warp path (1-based, as in the paper):\n  ";
  for (const ts::WarpStep& step : exact.path) {
    std::cout << "(" << step.i + 1 << "," << step.j + 1 << ") ";
  }
  std::cout << "\npath valid: " << std::boolalpha
            << ts::is_valid_warp_path(exact.path, x.size(), y.size())
            << "\n\n";

  const ts::DtwResult fast = ts::fast_dtw(x, y, {.radius = 1});
  std::cout << "FastDTW (radius 1) distance: " << fast.distance
            << "  (series this short fall back to exact DTW)\n";
  return 0;
}
