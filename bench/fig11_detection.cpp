// Fig. 11 — detection rate and false positive rate vs traffic density,
// Voiceprint vs CPVSAD, (a) without and (b) with propagation model change.
//
//   fig11_detection --model-change=off      (Fig. 11a)
//   fig11_detection --model-change=on       (Fig. 11b)
//   fig11_detection --model-change=both     (default: both panels)
//
// Expected shapes (Section V-C):
//   11a: both methods reach the ~90% DR level with FPR < 10%;
//        CPVSAD improves with density (more witnesses), Voiceprint
//        degrades slightly (packet collisions + closer spacing).
//   11b: CPVSAD's performance drops rapidly; Voiceprint is almost immune.
#include <iostream>
#include <sstream>
#include <vector>

#include "baseline/cpvsad.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/detector.h"
#include "obs/report.h"
#include "sim/runner.h"
#include "sim/world.h"

namespace {

using namespace vp;

std::vector<double> parse_densities(const std::string& text) {
  std::vector<double> out;
  std::istringstream is(text);
  std::string token;
  while (std::getline(is, token, ',')) out.push_back(std::stod(token));
  return out;
}

struct PanelRow {
  double density;
  sim::EvaluationResult voiceprint;
  sim::EvaluationResult cpvsad;
};

void run_panel(bool model_change, const std::vector<double>& densities,
               std::size_t runs, std::size_t observers, std::uint64_t seed,
               std::size_t threads) {
  std::cout << (model_change
                    ? "\n=== Fig. 11b: WITH propagation model change ===\n"
                    : "\n=== Fig. 11a: WITHOUT propagation model change ===\n");

  std::vector<PanelRow> rows;
  for (double density : densities) {
    double vp_dr = 0, vp_fpr = 0, cp_dr = 0, cp_fpr = 0;
    for (std::size_t run = 0; run < runs; ++run) {
      sim::ScenarioConfig config;
      config.density_per_km = density;
      config.model_change = model_change;
      config.seed =
          mix64(seed, static_cast<std::uint64_t>(density * 100 + run));
      sim::World world(config);
      world.run();

      core::VoiceprintDetector voiceprint(
          core::tuned_simulation_options(threads));
      baseline::CpvsadDetector cpvsad;      // assumes the base environment
      sim::EvaluationOptions options{.max_observers = observers};
      options.threads = threads;
      const auto vp_result = sim::evaluate(world, voiceprint, options);
      const auto cp_result = sim::evaluate(world, cpvsad, options);
      vp_dr += vp_result.average_dr;
      vp_fpr += vp_result.average_fpr;
      cp_dr += cp_result.average_dr;
      cp_fpr += cp_result.average_fpr;
      std::cout << "  density " << density << " run " << run + 1
                << ": VP DR=" << Table::num(vp_result.average_dr, 3)
                << " FPR=" << Table::num(vp_result.average_fpr, 3)
                << " | CPVSAD DR=" << Table::num(cp_result.average_dr, 3)
                << " FPR=" << Table::num(cp_result.average_fpr, 3) << "\n";
    }
    PanelRow row;
    row.density = density;
    const auto n = static_cast<double>(runs);
    row.voiceprint.average_dr = vp_dr / n;
    row.voiceprint.average_fpr = vp_fpr / n;
    row.cpvsad.average_dr = cp_dr / n;
    row.cpvsad.average_fpr = cp_fpr / n;
    rows.push_back(row);
  }

  Table table({"density (vhls/km)", "Voiceprint DR", "Voiceprint FPR",
               "CPVSAD DR", "CPVSAD FPR"});
  for (const PanelRow& row : rows) {
    table.add_row({Table::num(row.density, 0),
                   Table::num(row.voiceprint.average_dr, 4),
                   Table::num(row.voiceprint.average_fpr, 4),
                   Table::num(row.cpvsad.average_dr, 4),
                   Table::num(row.cpvsad.average_fpr, 4)});
  }
  std::cout << "\n";
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const RunFlags run_flags = parse_run_flags(args);
  obs::RunSession session(args.program_name(), run_flags.metrics_out,
                          run_flags.trace_out);
  const std::vector<double> densities =
      parse_densities(args.get("densities", "10,25,40,55,70,85,100"));
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 1));
  const auto observers =
      static_cast<std::size_t>(args.get_int("observers", 8));
  const std::uint64_t seed = args.get_seed("seed", 1101);
  const std::string mode = args.get("model-change", "both");
  const std::size_t threads = run_flags.threads;

  {
    sim::ScenarioConfig defaults;
    std::cout << "Fig. 11 reproduction — Voiceprint vs CPVSAD\n\n"
              << defaults.describe();
  }

  if (mode == "off" || mode == "both") {
    run_panel(false, densities, runs, observers, seed, threads);
  }
  if (mode == "on" || mode == "both") {
    run_panel(true, densities, runs, observers, seed, threads);
  }
  std::cout << "\nExpected: (a) both ~90% DR, <10% FPR; CPVSAD rises with "
               "density, Voiceprint declines. (b) CPVSAD collapses, "
               "Voiceprint nearly unchanged.\n";
  return 0;
}
