// Fig. 13 (and Fig. 14) — the field test: measured DTW distances against
// the constant threshold across campus, rural, urban and highway runs,
// recorded by the trailing normal node 3; plus the Fig. 14 analysis of any
// false positive (all vehicles stationary at a red light).
//
// Paper results: detections 14 / 23 / 35 / 11 per area, DR 100%, a single
// false positive (normal node 2, stationary at an urban intersection),
// overall FPR 0.95%.
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "fieldtest/replay.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_seed("seed", 1306);
  const double scale = args.get_double("duration-scale", 1.0);

  std::cout << "Fig. 13 reproduction — field-test DTW distances vs "
               "threshold (observer: normal node 3)\n"
            << "threshold k = 0.05046 (constant, den = 4 vhls/km), "
               "observation 20 s, detection every 60 s, seed "
            << seed << "\n\n";

  double dr_sum = 0.0;
  double fp_total = 0.0;
  double fp_possible = 0.0;
  std::size_t areas = 0;

  Table summary({"area", "duration", "detections", "complete detections",
                 "false positives", "paper detections"});
  const std::vector<std::string> paper_counts = {"14", "23", "35", "11"};

  std::size_t area_idx = 0;
  for (ft::Area area : ft::all_areas()) {
    ft::FieldTestConfig config;
    config.area = area;
    config.duration_s = ft::area_duration_s(area) * scale;
    config.seed = seed + area_idx;
    const ft::FieldTestData data = ft::run_field_test(config);
    const ft::FieldReplayResult result = ft::replay_field_test(data);

    std::size_t complete = 0;
    std::size_t false_positives = 0;
    for (const ft::FieldDetection& d : result.detections) {
      complete += d.complete_detection() ? 1 : 0;
      false_positives += d.normal_identities_flagged;
      fp_possible += static_cast<double>(d.normal_identities_heard);
    }
    fp_total += static_cast<double>(false_positives);
    dr_sum += result.detection_rate;
    ++areas;

    summary.add_row({std::string(ft::area_name(area)),
                     Table::num(config.duration_s, 0) + " s",
                     std::to_string(result.detection_count),
                     std::to_string(complete),
                     std::to_string(false_positives),
                     paper_counts[area_idx]});

    // Per-area distance records (the Fig. 13 scatter, printed compactly):
    std::cout << "--- " << ft::area_name(area) << " ---\n";
    Table detail({"t (s)", "min sybil-pair D'", "max sybil-pair D'",
                  "min other-pair D'", "threshold", "verdict"});
    for (const ft::FieldDetection& d : result.detections) {
      double min_s = 1.0, max_s = 0.0, min_o = 1.0;
      for (const ft::PairRecord& p : d.pairs) {
        if (p.sybil_pair) {
          min_s = std::min(min_s, p.distance);
          max_s = std::max(max_s, p.distance);
        } else {
          min_o = std::min(min_o, p.distance);
        }
      }
      detail.add_row(
          {Table::num(d.time_s, 0), Table::num(min_s, 4),
           Table::num(max_s, 4), Table::num(min_o, 4),
           Table::num(d.threshold, 4),
           d.has_false_positive()
               ? "FALSE POSITIVE"
               : (d.complete_detection() ? "full detection" : "partial")});
    }
    detail.print(std::cout);
    std::cout << "\n";

    // Fig. 14 analysis for any false positives in this area.
    for (const ft::FalsePositiveAnalysis& fp : result.false_positives) {
      std::cout << "Fig. 14 analysis — false positive at t="
                << Table::num(fp.time_s, 0) << " s: normal node "
                << fp.victim << " flagged.\n"
                << "  all vehicles stationary during the window: "
                << (fp.all_stationary ? "YES (red light, matching the "
                                        "paper's diagnosis)"
                                      : "no")
                << "\n  attacker-victim distance: "
                << Table::num(fp.dist_attacker_victim_m, 1)
                << " m, observer-attacker distance: "
                << Table::num(fp.dist_observer_attacker_m, 1) << " m\n\n";
    }
    ++area_idx;
  }

  std::cout << "=== Summary (paper: DR 100%, FPR 0.95%) ===\n";
  summary.print(std::cout);
  std::cout << "\naverage detection rate : "
            << Table::num(dr_sum / static_cast<double>(areas), 4)
            << "\nfalse positive count   : " << fp_total << " of "
            << fp_possible << " normal-identity verdicts ("
            << Table::num(fp_possible == 0.0
                              ? 0.0
                              : 100.0 * fp_total / fp_possible,
                          2)
            << "%)\n";
  return 0;
}
