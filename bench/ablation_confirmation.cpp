// Ablation A5 — multi-period confirmation, the mitigation Section VI
// proposes after its single field-test false positive: only confirm an
// identity after it was flagged in m of the last n detection periods.
// Sweeps (m, n) and reports the DR/FPR trade-off on a long urban-like
// highway run.
#include <iostream>
#include <set>

#include "common/cli.h"
#include "common/table.h"
#include "core/confirmation.h"
#include "core/detector.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "sim/world.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const double density = args.get_double("density", 50.0);
  const std::uint64_t seed = args.get_seed("seed", 2205);

  sim::ScenarioConfig config;
  config.density_per_km = density;
  config.sim_time_s = 160.0;  // 8 detection periods of 20 s
  config.seed = seed;
  std::cout << "Ablation A5 — multi-period confirmation (density " << density
            << " vhls/km, " << config.sim_time_s << " s => "
            << "8 periods)\n\n";
  sim::World world(config);
  world.run();

  const sim::EvaluationOptions options{.max_observers = 8};
  const std::vector<NodeId> observers = sim::sample_observers(world, options);

  Table table({"policy", "DR", "FPR"});
  for (const auto& [label, required, window] :
       {std::tuple<std::string, std::size_t, std::size_t>{
            "single period (paper default)", 1, 1},
        {"2 of 3", 2, 3},
        {"3 of 4", 3, 4},
        {"2 of 2 (consecutive)", 2, 2}}) {
    core::VoiceprintDetector detector(core::tuned_simulation_options());
    core::ConfirmationFilter filter(required, window);
    sim::RateAverager averager;
    for (double t : world.detection_times()) {
      for (NodeId observer : observers) {
        const sim::ObservationWindow obs_window =
            world.observe(observer, t, options.min_samples);
        if (obs_window.neighbors.empty()) continue;
        std::vector<IdentityId> heard;
        for (const auto& n : obs_window.neighbors) heard.push_back(n.id);
        const auto raw = detector.detect(obs_window, world);
        const auto confirmed = filter.update(observer, heard, raw);
        averager.add(
            sim::score_detection(confirmed, obs_window, world.truth()));
      }
    }
    table.add_row({label, Table::num(averager.average_dr(), 4),
                   Table::num(averager.average_fpr(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: requiring repeated verdicts suppresses "
               "transient false positives (the paper's red-light case) at "
               "the cost of slower first detection (lower early-period "
               "DR).\n";
  return 0;
}
