// Table IV — fit parameters of the empirical dual-slope model.
//
// The paper drives two vehicles through campus / rural / urban areas
// (Scenario 2) and regression-fits Eq. 1 to the collected RSSI-vs-distance
// samples. We do not have their drives, so for each area we synthesise
// measurements from that area's published channel and verify the fitter
// recovers the Table IV parameters — closing the loop on the regression
// machinery itself.
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"
#include "fieldtest/area.h"
#include "radio/fitter.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_seed("seed", 2024);
  const auto samples_per_area =
      static_cast<std::size_t>(args.get_int("samples", 4000));
  const double tx_power = args.get_double("tx-power", 20.0);

  std::cout << "Table IV reproduction — dual-slope fits per area\n"
            << "(synthetic Scenario-2 drives; " << samples_per_area
            << " samples/area, TX " << tx_power << " dBm, seed " << seed
            << ")\n\n";

  Table table({"parameter", "campus true", "campus fit", "rural true",
               "rural fit", "urban true", "urban fit"});

  struct AreaFit {
    radio::DualSlopeParams truth;
    radio::DualSlopeParams fit;
  };
  std::vector<AreaFit> fits;

  for (ft::Area area :
       {ft::Area::kCampus, ft::Area::kRural, ft::Area::kUrban}) {
    const radio::DualSlopeParams truth = ft::area_params(area);
    const radio::DualSlopeModel model(units::kDsrcFrequencyHz, truth);
    Rng rng = Rng(seed).fork(ft::area_name(area));
    std::vector<radio::RssiSample> samples;
    samples.reserve(samples_per_area);
    for (std::size_t i = 0; i < samples_per_area; ++i) {
      const double d = rng.uniform(2.0, 500.0);
      samples.push_back(
          {d, model.sample_rx_power_dbm(tx_power, d, 0.0, rng)});
    }
    const radio::DualSlopeFitter fitter(units::kDsrcFrequencyHz, tx_power);
    const radio::DualSlopeFit fit = fitter.fit(samples, 60.0, 350.0, 2.0);
    fits.push_back({truth, fit.params});
  }

  auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells = {name};
    for (const auto& f : fits) {
      cells.push_back(Table::num(getter(f.truth), 2));
      cells.push_back(Table::num(getter(f.fit), 2));
    }
    table.add_row(cells);
  };
  row("d_c (m)", [](const radio::DualSlopeParams& p) {
    return p.critical_distance_m;
  });
  row("gamma1", [](const radio::DualSlopeParams& p) { return p.gamma1; });
  row("gamma2", [](const radio::DualSlopeParams& p) { return p.gamma2; });
  row("sigma1 (dB)",
      [](const radio::DualSlopeParams& p) { return p.sigma1_db; });
  row("sigma2 (dB)",
      [](const radio::DualSlopeParams& p) { return p.sigma2_db; });

  table.print(std::cout);
  std::cout << "\nPaper values (Table IV): campus dc=218 g1=1.66 g2=5.53 "
               "s1=2.8 s2=3.2 | rural dc=182 g1=1.89 g2=5.86 s1=3.1 s2=3.6 "
               "| urban dc=102 g1=2.56 g2=6.34 s1=3.9 s2=5.2\n";
  return 0;
}
