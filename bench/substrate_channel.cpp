// Substrate validation — the channel/MAC behaviour behind Section V-C's
// explanation of Fig. 11a ("with the increasing traffic density, the
// severe packet losses lead to less information obtained by each
// vehicle"). Not a paper figure; this bench characterises the NS-2
// replacement itself:
//   * packet delivery ratio vs link distance (per density),
//   * collision share of all losses vs density,
//   * queue drops at the attacker (its radio carries 10·n packets/s).
#include <iostream>
#include <map>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "sim/world.h"

namespace {

using namespace vp;

struct PdrBin {
  std::size_t received = 0;
  double expected = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_seed("seed", 3001);
  const double sim_time = args.get_double("sim-time", 60.0);

  std::cout << "Substrate characterisation — CSMA/CA channel under load\n\n";

  Table summary({"density", "frames sent", "delivered", "collided",
                 "below sens.", "half-duplex", "queue drops",
                 "collision share"});

  for (double density : {10.0, 40.0, 70.0, 100.0}) {
    sim::ScenarioConfig config;
    config.density_per_km = density;
    config.sim_time_s = sim_time;
    config.seed = seed;
    sim::World world(config);
    world.run();
    const sim::WorldStats& s = world.stats();
    const double losses = static_cast<double>(
        s.frames_collided + s.frames_below_sensitivity +
        s.frames_half_duplex_missed);
    summary.add_row(
        {Table::num(density, 0), std::to_string(s.frames_sent),
         std::to_string(s.frames_received), std::to_string(s.frames_collided),
         std::to_string(s.frames_below_sensitivity),
         std::to_string(s.frames_half_duplex_missed),
         std::to_string(s.beacon_queue_drops),
         Table::num(losses == 0.0
                        ? 0.0
                        : static_cast<double>(s.frames_collided) / losses,
                    3)});

    // PDR vs distance for genuine identities: per (tx, rx, second), bin by
    // the true distance and compare receptions against the 10 Hz schedule.
    std::map<int, PdrBin> bins;  // key: distance bin index (50 m wide)
    const double rate = config.beacon_rate_hz;
    for (const auto& tx : world.nodes()) {
      const IdentityId genuine = tx->identities().front().id;
      for (const auto& rx : world.nodes()) {
        if (rx->id() == tx->id()) continue;
        for (double t = 1.0; t + 1.0 < sim_time; t += 1.0) {
          const double d =
              mob::distance(tx->trace().position_at(t + 0.5),
                            rx->trace().position_at(t + 0.5));
          if (d > 800.0) continue;
          PdrBin& bin = bins[static_cast<int>(d / 50.0)];
          bin.expected += rate;
          bin.received += rx->log().sample_count(genuine, t, t + 1.0);
        }
      }
    }
    std::cout << "\ndensity " << density
              << " vhls/km — packet delivery ratio vs distance:\n";
    Table pdr({"distance (m)", "PDR", "expected beacons"});
    for (const auto& [bin, counts] : bins) {
      if (counts.expected < 100.0) continue;
      pdr.add_row({std::to_string(bin * 50) + "-" +
                       std::to_string(bin * 50 + 50),
                   Table::num(static_cast<double>(counts.received) /
                                  counts.expected,
                              3),
                   Table::num(counts.expected, 0)});
    }
    pdr.print(std::cout);
  }

  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\nExpected: near-unity PDR at close range collapsing "
               "toward the radio horizon (~500-700 m); the collision share "
               "of losses grows with density — the packet-loss mechanism "
               "behind Voiceprint's DR decline in Fig. 11a. Note the queue "
               "drops: a malicious radio must push 10·(1+n) beacons/s "
               "through one MAC, so its own attack throttles it at high "
               "load.\n";
  return 0;
}
