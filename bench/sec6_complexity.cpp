// Section VI timing claims, measured with google-benchmark:
//   * comparing two 200-sample RSSI series took the paper 0.1995 ms on its
//     OBU hardware (FastDTW);
//   * a full confirmation round over 80 neighbours (3160 comparisons) took
//     ~630 ms.
// We benchmark FastDTW vs exact DTW vs Euclidean across series lengths,
// plus the full Algorithm-1 pipeline for various neighbour counts.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "core/comparison.h"
#include "core/detector.h"
#include "timeseries/dtw.h"
#include "timeseries/fast_dtw.h"
#include "timeseries/lp_distance.h"
#include "timeseries/normalize.h"

namespace {

using namespace vp;

std::vector<double> rssi_like_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  double shadow = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
    out[i] = -75.0 + shadow + rng.normal(0.0, 1.0);
  }
  return out;
}

void BM_FastDtw(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = ts::z_score_enhanced(rssi_like_series(n, 1));
  const auto y = ts::z_score_enhanced(rssi_like_series(n, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::fast_dtw(x, y, {.radius = 1}).distance);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FastDtw)->RangeMultiplier(2)->Range(25, 1600)->Complexity();

void BM_ExactDtw(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = ts::z_score_enhanced(rssi_like_series(n, 3));
  const auto y = ts::z_score_enhanced(rssi_like_series(n, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::dtw_distance(x, y));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ExactDtw)->RangeMultiplier(2)->Range(25, 1600)->Complexity();

void BM_Euclidean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = ts::z_score_enhanced(rssi_like_series(n, 5));
  const auto y = ts::z_score_enhanced(rssi_like_series(n, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::euclidean_distance(x, y));
  }
}
BENCHMARK(BM_Euclidean)->RangeMultiplier(2)->Range(25, 1600);

// The paper's headline number: one 200-sample pair comparison (their OBU:
// 0.1995 ms; a modern x86 core should be well under that).
void BM_PaperSingleComparison200(benchmark::State& state) {
  const auto x = rssi_like_series(200, 7);
  const auto y = rssi_like_series(190, 8);  // packet loss shortens one
  for (auto _ : state) {
    const auto zx = ts::z_score_enhanced(x);
    const auto zy = ts::z_score_enhanced(y);
    benchmark::DoNotOptimize(ts::fast_dtw(zx, zy, {.radius = 1}).distance);
  }
}
BENCHMARK(BM_PaperSingleComparison200);

// Full Algorithm-1 detection for N neighbours (the paper extrapolates 80
// neighbours → ~630 ms on the OBU).
void BM_FullDetection(benchmark::State& state) {
  const auto neighbors = static_cast<std::size_t>(state.range(0));
  std::vector<core::NamedSeries> series;
  for (std::size_t i = 0; i < neighbors; ++i) {
    series.emplace_back(
        static_cast<IdentityId>(i),
        ts::Series::uniform(0.0, 0.1, rssi_like_series(200, 100 + i)));
  }
  core::VoiceprintDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect_series(series, 50.0));
  }
  state.SetComplexityN(static_cast<std::int64_t>(neighbors));
}
BENCHMARK(BM_FullDetection)->Arg(10)->Arg(20)->Arg(40)->Arg(80)->Complexity();

}  // namespace

BENCHMARK_MAIN();
