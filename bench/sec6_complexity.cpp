// Section VI timing claims, measured with google-benchmark:
//   * comparing two 200-sample RSSI series took the paper 0.1995 ms on its
//     OBU hardware (FastDTW);
//   * a full confirmation round over 80 neighbours (3160 comparisons) took
//     ~630 ms.
// We benchmark FastDTW vs exact DTW vs Euclidean across series lengths,
// workspace-reusing vs per-call-allocating FastDTW, and the full
// Algorithm-1 pipeline (serial vs parallel sweep) for various neighbour
// counts. After the google-benchmark run, main() sweeps neighbour counts
// {10, 20, 40, 80, 160} with a wall-clock timer and writes
// BENCH_comparison.json (ns per confirmation round, serial and parallel).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/comparison.h"
#include "core/detector.h"
#include "timeseries/dtw.h"
#include "timeseries/fast_dtw.h"
#include "timeseries/lp_distance.h"
#include "timeseries/normalize.h"

namespace {

using namespace vp;

std::vector<double> rssi_like_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  double shadow = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
    out[i] = -75.0 + shadow + rng.normal(0.0, 1.0);
  }
  return out;
}

void BM_FastDtw(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = ts::z_score_enhanced(rssi_like_series(n, 1));
  const auto y = ts::z_score_enhanced(rssi_like_series(n, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::fast_dtw(x, y, {.radius = 1}).distance);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FastDtw)->RangeMultiplier(2)->Range(25, 1600)->Complexity();

// Same computation through a reused DtwWorkspace: the pyramid, search
// windows and DP storage hit their high-water mark once and are recycled,
// so this should beat BM_FastDtw at every length.
void BM_FastDtwWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = ts::z_score_enhanced(rssi_like_series(n, 1));
  const auto y = ts::z_score_enhanced(rssi_like_series(n, 2));
  ts::DtwWorkspace workspace;
  ts::DtwResult result;
  for (auto _ : state) {
    ts::fast_dtw(x, y, {.radius = 1}, workspace, result);
    benchmark::DoNotOptimize(result.distance);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FastDtwWorkspace)
    ->RangeMultiplier(2)
    ->Range(25, 1600)
    ->Complexity();

void BM_ExactDtw(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = ts::z_score_enhanced(rssi_like_series(n, 3));
  const auto y = ts::z_score_enhanced(rssi_like_series(n, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::dtw_distance(x, y));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ExactDtw)->RangeMultiplier(2)->Range(25, 1600)->Complexity();

void BM_Euclidean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = ts::z_score_enhanced(rssi_like_series(n, 5));
  const auto y = ts::z_score_enhanced(rssi_like_series(n, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::euclidean_distance(x, y));
  }
}
BENCHMARK(BM_Euclidean)->RangeMultiplier(2)->Range(25, 1600);

// The paper's headline number: one 200-sample pair comparison (their OBU:
// 0.1995 ms; a modern x86 core should be well under that).
void BM_PaperSingleComparison200(benchmark::State& state) {
  const auto x = rssi_like_series(200, 7);
  const auto y = rssi_like_series(190, 8);  // packet loss shortens one
  for (auto _ : state) {
    const auto zx = ts::z_score_enhanced(x);
    const auto zy = ts::z_score_enhanced(y);
    benchmark::DoNotOptimize(ts::fast_dtw(zx, zy, {.radius = 1}).distance);
  }
}
BENCHMARK(BM_PaperSingleComparison200);

std::vector<core::NamedSeries> neighbor_series(std::size_t neighbors) {
  std::vector<core::NamedSeries> series;
  series.reserve(neighbors);
  for (std::size_t i = 0; i < neighbors; ++i) {
    series.emplace_back(
        static_cast<IdentityId>(i),
        ts::Series::uniform(0.0, 0.1, rssi_like_series(200, 100 + i)));
  }
  return series;
}

// Full Algorithm-1 detection for N neighbours (the paper extrapolates 80
// neighbours → ~630 ms on the OBU). range(1) is the comparison-sweep
// thread count (1 = serial baseline); the flagged set is identical for
// every value.
void BM_FullDetection(benchmark::State& state) {
  const auto neighbors = static_cast<std::size_t>(state.range(0));
  const std::vector<core::NamedSeries> series = neighbor_series(neighbors);
  core::VoiceprintOptions options;
  options.comparison.threads = static_cast<std::size_t>(state.range(1));
  core::VoiceprintDetector detector(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect_series(series, 50.0));
  }
  state.SetComplexityN(static_cast<std::int64_t>(neighbors));
}
BENCHMARK(BM_FullDetection)
    ->ArgsProduct({{10, 20, 40, 80, 160}, {1, 4}})
    ->ArgNames({"neighbors", "threads"})
    ->Complexity();

// Wall-clock sweep behind BENCH_comparison.json: ns per confirmation round
// (one detect_series call over N neighbours), serial vs parallel.
double ns_per_round(core::VoiceprintDetector& detector,
                    const std::vector<core::NamedSeries>& series) {
  using clock = std::chrono::steady_clock;
  benchmark::DoNotOptimize(detector.detect_series(series, 50.0));  // warm-up
  std::size_t rounds = 0;
  const clock::time_point start = clock::now();
  clock::time_point now = start;
  // At least 3 rounds and at least 200 ms, so short configs are not noise.
  while (rounds < 3 || now - start < std::chrono::milliseconds(200)) {
    benchmark::DoNotOptimize(detector.detect_series(series, 50.0));
    ++rounds;
    now = clock::now();
  }
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(now - start)
                 .count()) /
         static_cast<double>(rounds);
}

void write_bench_json(const char* path) {
  // Pool width for the "parallel" column. On a wide machine this is the
  // hardware concurrency; on a 1-core container it still exercises the
  // real pool dispatch (4 workers oversubscribed), so speedup ≈ 1 there.
  const std::size_t parallel_threads = std::max<std::size_t>(
      vp::hardware_threads(), 4);
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"confirmation round (Algorithm 1, "
               "200-sample series)\",\n  \"hardware_threads\": %zu,\n"
               "  \"parallel_threads\": %zu,\n  \"rounds\": [",
               vp::hardware_threads(), parallel_threads);
  bool first = true;
  for (std::size_t neighbors : {10u, 20u, 40u, 80u, 160u}) {
    const std::vector<core::NamedSeries> series = neighbor_series(neighbors);

    core::VoiceprintOptions serial_options;
    serial_options.comparison.threads = 1;
    core::VoiceprintDetector serial(serial_options);
    const double serial_ns = ns_per_round(serial, series);

    core::VoiceprintOptions parallel_options;
    parallel_options.comparison.threads = parallel_threads;
    core::VoiceprintDetector parallel(parallel_options);
    const double parallel_ns = ns_per_round(parallel, series);

    std::fprintf(out,
                 "%s\n    {\"neighbors\": %zu, \"pairs\": %zu, "
                 "\"serial_ns_per_round\": %.0f, "
                 "\"parallel_ns_per_round\": %.0f, \"speedup\": %.3f}",
                 first ? "" : ",", neighbors, neighbors * (neighbors - 1) / 2,
                 serial_ns, parallel_ns, serial_ns / parallel_ns);
    std::fprintf(stderr,
                 "BENCH neighbors=%zu serial=%.3f ms parallel=%.3f ms "
                 "speedup=%.2fx\n",
                 neighbors, serial_ns * 1e-6, parallel_ns * 1e-6,
                 serial_ns / parallel_ns);
    first = false;
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_bench_json("BENCH_comparison.json");
  return 0;
}
