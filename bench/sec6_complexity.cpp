// Section VI timing claims, measured with google-benchmark:
//   * comparing two 200-sample RSSI series took the paper 0.1995 ms on its
//     OBU hardware (FastDTW);
//   * a full confirmation round over 80 neighbours (3160 comparisons) took
//     ~630 ms.
// We benchmark FastDTW vs exact DTW vs Euclidean across series lengths,
// workspace-reusing vs per-call-allocating FastDTW, and the full
// Algorithm-1 pipeline (serial vs parallel sweep) for various neighbour
// counts. After the google-benchmark run, main() sweeps neighbour counts
// {10, 20, 40, 80, 160} and writes BENCH_comparison.json (ns per
// confirmation round, serial and parallel). The sweep's timings flow
// through the observability registry's histograms (obs::ScopedTimer into
// obs::Histogram), so the numbers in BENCH_comparison.json come from the
// exact same aggregation code as a runtime --metrics-out report and the
// two can never drift apart. Supports --metrics-out/--trace-out like the
// experiment binaries (flags are split off before google-benchmark parses
// the rest).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/comparison.h"
#include "core/detector.h"
#include "obs/report.h"
#include "obs/runtime.h"
#include "obs/timer.h"
#include "timeseries/dtw.h"
#include "timeseries/fast_dtw.h"
#include "timeseries/lp_distance.h"
#include "timeseries/normalize.h"

namespace {

using namespace vp;

std::vector<double> rssi_like_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  double shadow = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
    out[i] = -75.0 + shadow + rng.normal(0.0, 1.0);
  }
  return out;
}

void BM_FastDtw(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = ts::z_score_enhanced(rssi_like_series(n, 1));
  const auto y = ts::z_score_enhanced(rssi_like_series(n, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::fast_dtw(x, y, {.radius = 1}).distance);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FastDtw)->RangeMultiplier(2)->Range(25, 1600)->Complexity();

// Same computation through a reused DtwWorkspace: the pyramid, search
// windows and DP storage hit their high-water mark once and are recycled,
// so this should beat BM_FastDtw at every length.
void BM_FastDtwWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = ts::z_score_enhanced(rssi_like_series(n, 1));
  const auto y = ts::z_score_enhanced(rssi_like_series(n, 2));
  ts::DtwWorkspace workspace;
  ts::DtwResult result;
  for (auto _ : state) {
    ts::fast_dtw(x, y, {.radius = 1}, workspace, result);
    benchmark::DoNotOptimize(result.distance);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FastDtwWorkspace)
    ->RangeMultiplier(2)
    ->Range(25, 1600)
    ->Complexity();

void BM_ExactDtw(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = ts::z_score_enhanced(rssi_like_series(n, 3));
  const auto y = ts::z_score_enhanced(rssi_like_series(n, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::dtw_distance(x, y));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ExactDtw)->RangeMultiplier(2)->Range(25, 1600)->Complexity();

void BM_Euclidean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = ts::z_score_enhanced(rssi_like_series(n, 5));
  const auto y = ts::z_score_enhanced(rssi_like_series(n, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::euclidean_distance(x, y));
  }
}
BENCHMARK(BM_Euclidean)->RangeMultiplier(2)->Range(25, 1600);

// The paper's headline number: one 200-sample pair comparison (their OBU:
// 0.1995 ms; a modern x86 core should be well under that).
void BM_PaperSingleComparison200(benchmark::State& state) {
  const auto x = rssi_like_series(200, 7);
  const auto y = rssi_like_series(190, 8);  // packet loss shortens one
  for (auto _ : state) {
    const auto zx = ts::z_score_enhanced(x);
    const auto zy = ts::z_score_enhanced(y);
    benchmark::DoNotOptimize(ts::fast_dtw(zx, zy, {.radius = 1}).distance);
  }
}
BENCHMARK(BM_PaperSingleComparison200);

std::vector<core::NamedSeries> neighbor_series(std::size_t neighbors) {
  std::vector<core::NamedSeries> series;
  series.reserve(neighbors);
  for (std::size_t i = 0; i < neighbors; ++i) {
    series.emplace_back(
        static_cast<IdentityId>(i),
        ts::Series::uniform(0.0, 0.1, rssi_like_series(200, 100 + i)));
  }
  return series;
}

// Full Algorithm-1 detection for N neighbours (the paper extrapolates 80
// neighbours → ~630 ms on the OBU). range(1) is the comparison-sweep
// thread count (1 = serial baseline); the flagged set is identical for
// every value.
void BM_FullDetection(benchmark::State& state) {
  const auto neighbors = static_cast<std::size_t>(state.range(0));
  const std::vector<core::NamedSeries> series = neighbor_series(neighbors);
  core::VoiceprintOptions options;
  options.comparison.threads = static_cast<std::size_t>(state.range(1));
  core::VoiceprintDetector detector(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect_series(series, 50.0));
  }
  state.SetComplexityN(static_cast<std::int64_t>(neighbors));
}
BENCHMARK(BM_FullDetection)
    ->ArgsProduct({{10, 20, 40, 80, 160}, {1, 4}})
    ->ArgNames({"neighbors", "threads"})
    ->Complexity();

// Wall-clock sweep behind BENCH_comparison.json: every confirmation round
// (one detect_series call over N neighbours) is timed by obs::ScopedTimer
// into an obs::Histogram from the shared registry — the same aggregation
// code a --metrics-out run report uses, so bench numbers and runtime
// metrics are produced by one implementation.
vp::obs::Histogram& measure_rounds(const std::string& name,
                                   core::VoiceprintDetector& detector,
                                   const std::vector<core::NamedSeries>& series) {
  obs::Histogram& hist = obs::registry().histogram(name);
  hist.reset();  // this sweep only (the binary may be re-run in-process)
  benchmark::DoNotOptimize(detector.detect_series(series, 50.0));  // warm-up
  std::uint64_t total_ns = 0;
  std::size_t rounds = 0;
  // At least 3 rounds and at least 200 ms, so short configs are not noise.
  while (rounds < 3 || total_ns < 200'000'000ULL) {
    obs::ScopedTimer timer(&hist);
    benchmark::DoNotOptimize(detector.detect_series(series, 50.0));
    total_ns += timer.stop();
    ++rounds;
  }
  return hist;
}

void write_bench_json(const char* path) {
  // Pool width for the "parallel" column. On a wide machine this is the
  // hardware concurrency; on a 1-core container it still exercises the
  // real pool dispatch (4 workers oversubscribed), so speedup ≈ 1 there.
  const std::size_t parallel_threads = std::max<std::size_t>(
      vp::hardware_threads(), 4);
  obs::json::Object doc;
  doc.emplace("benchmark", obs::json::Value(
                               "confirmation round (Algorithm 1, 200-sample "
                               "series)"));
  doc.emplace("hardware_threads", obs::json::Value(vp::hardware_threads()));
  doc.emplace("parallel_threads", obs::json::Value(parallel_threads));
  obs::json::Array rounds;
  for (std::size_t neighbors : {10u, 20u, 40u, 80u, 160u}) {
    const std::vector<core::NamedSeries> series = neighbor_series(neighbors);
    const std::string base = "bench.round_ns.n" + std::to_string(neighbors);

    core::VoiceprintOptions serial_options;
    serial_options.comparison.threads = 1;
    core::VoiceprintDetector serial(serial_options);
    const obs::HistogramSnapshot serial_stats =
        measure_rounds(base + ".serial", serial, series).snapshot();

    core::VoiceprintOptions parallel_options;
    parallel_options.comparison.threads = parallel_threads;
    core::VoiceprintDetector parallel(parallel_options);
    const obs::HistogramSnapshot parallel_stats =
        measure_rounds(base + ".parallel", parallel, series).snapshot();

    obs::json::Object row;
    row.emplace("neighbors", obs::json::Value(neighbors));
    row.emplace("pairs", obs::json::Value(neighbors * (neighbors - 1) / 2));
    row.emplace("serial_ns_per_round", obs::json::Value(serial_stats.mean));
    row.emplace("serial_p50_ns", obs::json::Value(serial_stats.p50));
    row.emplace("serial_p95_ns", obs::json::Value(serial_stats.p95));
    row.emplace("parallel_ns_per_round",
                obs::json::Value(parallel_stats.mean));
    row.emplace("parallel_p50_ns", obs::json::Value(parallel_stats.p50));
    row.emplace("parallel_p95_ns", obs::json::Value(parallel_stats.p95));
    row.emplace("speedup",
                obs::json::Value(serial_stats.mean / parallel_stats.mean));
    rounds.push_back(obs::json::Value(std::move(row)));
    std::fprintf(stderr,
                 "BENCH neighbors=%zu serial=%.3f ms parallel=%.3f ms "
                 "speedup=%.2fx\n",
                 neighbors, serial_stats.mean * 1e-6,
                 parallel_stats.mean * 1e-6,
                 serial_stats.mean / parallel_stats.mean);
  }
  doc.emplace("rounds", obs::json::Value(std::move(rounds)));

  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  out << obs::json::Value(std::move(doc)).dump(2) << "\n";
  std::fprintf(stderr, "wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  // Split the shared run flags off before google-benchmark parses the
  // rest (it rejects flags it does not know).
  std::vector<char*> bench_argv{argv[0]};
  std::vector<const char*> run_argv{argv[0]};
  const auto is_run_flag = [](std::string_view arg) {
    for (const std::string_view name :
         {"--threads", "--metrics-out", "--trace-out"}) {
      if (arg == name) return true;
      if (arg.size() > name.size() && arg.substr(0, name.size()) == name &&
          arg[name.size()] == '=') {
        return true;
      }
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!is_run_flag(arg)) {
      bench_argv.push_back(argv[i]);
      continue;
    }
    run_argv.push_back(argv[i]);
    // --name value form: the value token travels along.
    if (arg.find('=') == std::string_view::npos && i + 1 < argc &&
        std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      run_argv.push_back(argv[++i]);
    }
  }
  const CliArgs run_args(static_cast<int>(run_argv.size()), run_argv.data());
  const RunFlags run_flags = parse_run_flags(run_args);
  obs::RunSession session(run_args.program_name(), run_flags.metrics_out,
                          run_flags.trace_out);

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_bench_json("BENCH_comparison.json");
  return 0;
}
