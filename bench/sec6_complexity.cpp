// Section VI timing claims, measured with google-benchmark:
//   * comparing two 200-sample RSSI series took the paper 0.1995 ms on its
//     OBU hardware (FastDTW);
//   * a full confirmation round over 80 neighbours (3160 comparisons) took
//     ~630 ms.
// We benchmark FastDTW vs exact DTW vs Euclidean across series lengths,
// workspace-reusing vs per-call-allocating FastDTW, and the full
// Algorithm-1 pipeline (serial vs parallel sweep) for various neighbour
// counts. After the google-benchmark run, main() sweeps neighbour counts
// {10, 20, 40, 80, 160} and writes BENCH_comparison.json
// (voiceprint.comparison_bench/v1, see core/report.h): ns per confirmation
// round for the exact sweep vs the lower-bound cascade, serial and
// parallel, the cascade's exit-tier tally (LB_Kim / LB_Keogh / early
// abandon / full sweeps, whose sum the validator checks equals the
// comparable pair count) and an exact-vs-pruned verdict parity
// cross-check. The sweep's timings flow through the observability
// registry's histograms (obs::ScopedTimer into obs::Histogram), so the
// numbers in BENCH_comparison.json come from the exact same aggregation
// code as a runtime --metrics-out report and the two can never drift
// apart. Supports --metrics-out/--trace-out like the experiment binaries
// plus --simd on|off (cascade kernel selection), --out PATH (default
// BENCH_comparison.json) and --quick (skip the google-benchmark suite,
// sweep fewer neighbour counts with a smaller timing budget — the smoke
// test's configuration). Flags are split off before google-benchmark
// parses the rest.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/comparison.h"
#include "core/detector.h"
#include "core/report.h"
#include "obs/report.h"
#include "timeseries/lower_bound.h"
#include "obs/runtime.h"
#include "obs/timer.h"
#include "timeseries/dtw.h"
#include "timeseries/fast_dtw.h"
#include "timeseries/lp_distance.h"
#include "timeseries/normalize.h"

namespace {

using namespace vp;

std::vector<double> rssi_like_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  double shadow = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
    out[i] = -75.0 + shadow + rng.normal(0.0, 1.0);
  }
  return out;
}

void BM_FastDtw(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = ts::z_score_enhanced(rssi_like_series(n, 1));
  const auto y = ts::z_score_enhanced(rssi_like_series(n, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::fast_dtw(x, y, {.radius = 1}).distance);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FastDtw)->RangeMultiplier(2)->Range(25, 1600)->Complexity();

// Same computation through a reused DtwWorkspace: the pyramid, search
// windows and DP storage hit their high-water mark once and are recycled,
// so this should beat BM_FastDtw at every length.
void BM_FastDtwWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = ts::z_score_enhanced(rssi_like_series(n, 1));
  const auto y = ts::z_score_enhanced(rssi_like_series(n, 2));
  ts::DtwWorkspace workspace;
  ts::DtwResult result;
  for (auto _ : state) {
    ts::fast_dtw(x, y, {.radius = 1}, workspace, result);
    benchmark::DoNotOptimize(result.distance);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FastDtwWorkspace)
    ->RangeMultiplier(2)
    ->Range(25, 1600)
    ->Complexity();

void BM_ExactDtw(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = ts::z_score_enhanced(rssi_like_series(n, 3));
  const auto y = ts::z_score_enhanced(rssi_like_series(n, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::dtw_distance(x, y));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ExactDtw)->RangeMultiplier(2)->Range(25, 1600)->Complexity();

void BM_Euclidean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = ts::z_score_enhanced(rssi_like_series(n, 5));
  const auto y = ts::z_score_enhanced(rssi_like_series(n, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::euclidean_distance(x, y));
  }
}
BENCHMARK(BM_Euclidean)->RangeMultiplier(2)->Range(25, 1600);

// The paper's headline number: one 200-sample pair comparison (their OBU:
// 0.1995 ms; a modern x86 core should be well under that).
void BM_PaperSingleComparison200(benchmark::State& state) {
  const auto x = rssi_like_series(200, 7);
  const auto y = rssi_like_series(190, 8);  // packet loss shortens one
  for (auto _ : state) {
    const auto zx = ts::z_score_enhanced(x);
    const auto zy = ts::z_score_enhanced(y);
    benchmark::DoNotOptimize(ts::fast_dtw(zx, zy, {.radius = 1}).distance);
  }
}
BENCHMARK(BM_PaperSingleComparison200);

// One confirmation round's worth of neighbour series. A confirmation
// round fires on suspicion, so the representative window holds a Sybil
// clique — identities whose series all come from one physical radio and
// differ only by measurement noise (the paper's attack model) — among
// independent vehicles. The clique drags Eq. 8's population min down to
// the attack scale, which is what gives the detector (and hence the
// cascade) a meaningful decision boundary; an all-independent window has
// every distance far above the threshold and nothing to detect.
std::vector<core::NamedSeries> neighbor_series(std::size_t neighbors) {
  const std::size_t sybil = std::max<std::size_t>(2, neighbors / 8);
  const std::vector<double> radio = rssi_like_series(200, 99);
  Rng noise(7);
  std::vector<core::NamedSeries> series;
  series.reserve(neighbors);
  for (std::size_t i = 0; i < neighbors; ++i) {
    std::vector<double> values;
    if (i < sybil) {
      values = radio;
      for (double& v : values) v += noise.normal(0.0, 1.0);
    } else {
      values = rssi_like_series(200, 100 + i);
    }
    series.emplace_back(static_cast<IdentityId>(i),
                        ts::Series::uniform(0.0, 0.1, std::move(values)));
  }
  return series;
}

// Full Algorithm-1 detection for N neighbours (the paper extrapolates 80
// neighbours → ~630 ms on the OBU). range(1) is the comparison-sweep
// thread count (1 = serial baseline); the flagged set is identical for
// every value.
void BM_FullDetection(benchmark::State& state) {
  const auto neighbors = static_cast<std::size_t>(state.range(0));
  const std::vector<core::NamedSeries> series = neighbor_series(neighbors);
  core::VoiceprintOptions options;
  options.comparison.threads = static_cast<std::size_t>(state.range(1));
  core::VoiceprintDetector detector(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect_series(series, 50.0));
  }
  state.SetComplexityN(static_cast<std::int64_t>(neighbors));
}
BENCHMARK(BM_FullDetection)
    ->ArgsProduct({{10, 20, 40, 80, 160}, {1, 4}})
    ->ArgNames({"neighbors", "threads"})
    ->Complexity();

// Wall-clock sweep behind BENCH_comparison.json: every confirmation round
// (one detect_series call over N neighbours) is timed by obs::ScopedTimer
// into an obs::Histogram from the shared registry — the same aggregation
// code a --metrics-out run report uses, so bench numbers and runtime
// metrics are produced by one implementation.
double measure_rounds(const std::string& name,
                      core::VoiceprintDetector& detector,
                      const std::vector<core::NamedSeries>& series,
                      std::uint64_t budget_ns) {
  obs::Histogram& hist = obs::registry().histogram(name);
  hist.reset();  // this sweep only (the binary may be re-run in-process)
  benchmark::DoNotOptimize(detector.detect_series(series, 50.0));  // warm-up
  std::uint64_t total_ns = 0;
  std::size_t rounds = 0;
  // At least 3 rounds and the full time budget, so short configs are not
  // noise.
  while (rounds < 3 || total_ns < budget_ns) {
    obs::ScopedTimer timer(&hist);
    benchmark::DoNotOptimize(detector.detect_series(series, 50.0));
    total_ns += timer.stop();
    ++rounds;
  }
  return hist.snapshot().mean;
}

// Exact-vs-pruned parity on one detector pair: same suspects, and the same
// (a, b, comparable, flagged) tuple on every pair slot. Bound values are
// allowed to differ (pruned pairs report bounds); verdicts are not.
bool verdicts_match(core::VoiceprintDetector& exact,
                    core::VoiceprintDetector& pruned,
                    const std::vector<core::NamedSeries>& series) {
  const std::vector<IdentityId> se = exact.detect_series(series, 50.0);
  const std::vector<IdentityId> sp = pruned.detect_series(series, 50.0);
  if (se != sp) return false;
  const auto& pe = exact.last_all_pairs();
  const auto& pp = pruned.last_all_pairs();
  if (pe.size() != pp.size()) return false;
  for (std::size_t i = 0; i < pe.size(); ++i) {
    if (pe[i].a != pp[i].a || pe[i].b != pp[i].b ||
        pe[i].comparable != pp[i].comparable ||
        pe[i].flagged != pp[i].flagged) {
      return false;
    }
  }
  return true;
}

bool write_bench_json(const std::string& path, bool use_simd, bool quick) {
  // Pool width for the "parallel" columns. On a wide machine this is the
  // hardware concurrency; on a 1-core container it still exercises the
  // real pool dispatch (4 workers oversubscribed), so speedup ≈ 1 there.
  const std::size_t parallel_threads =
      std::max<std::size_t>(vp::hardware_threads(), 4);
  const std::uint64_t budget_ns = quick ? 20'000'000ULL : 200'000'000ULL;
  const std::vector<std::size_t> sweep =
      quick ? std::vector<std::size_t>{10, 20}
            : std::vector<std::size_t>{10, 20, 40, 80, 160};

  std::vector<core::ComparisonBenchResult> results;
  for (const std::size_t neighbors : sweep) {
    const std::vector<core::NamedSeries> series = neighbor_series(neighbors);
    const std::string base = "bench.round_ns.n" + std::to_string(neighbors);

    // The sweep measures the banded-DTW hot path the cascade targets
    // (kExactDtw at the default band), where the wavefront kernel is the
    // exact answer — the cascade replaces the row-sliced DP, its path
    // backtrack and the per-pair allocations outright. FastDTW timings
    // (where the kernel only probes) live in the google-benchmark suite.
    const auto make_detector = [&](bool exact, std::size_t threads) {
      core::VoiceprintOptions options;
      options.comparison.distance = core::DistanceKind::kExactDtw;
      options.comparison.threads = threads;
      options.comparison.exact_mode = exact;
      options.comparison.use_simd = use_simd;
      return core::VoiceprintDetector(options);
    };
    core::VoiceprintDetector exact_serial = make_detector(true, 1);
    core::VoiceprintDetector pruned_serial = make_detector(false, 1);
    core::VoiceprintDetector exact_parallel =
        make_detector(true, parallel_threads);
    core::VoiceprintDetector pruned_parallel =
        make_detector(false, parallel_threads);

    core::ComparisonBenchResult r;
    r.label = "n" + std::to_string(neighbors);
    r.identities = neighbors;
    r.pairs = neighbors * (neighbors - 1) / 2;
    r.exact_serial_ns =
        measure_rounds(base + ".exact_serial", exact_serial, series,
                       budget_ns);
    r.pruned_serial_ns =
        measure_rounds(base + ".pruned_serial", pruned_serial, series,
                       budget_ns);
    r.exact_parallel_ns =
        measure_rounds(base + ".exact_parallel", exact_parallel, series,
                       budget_ns);
    r.pruned_parallel_ns =
        measure_rounds(base + ".pruned_parallel", pruned_parallel, series,
                       budget_ns);
    r.speedup_serial = r.exact_serial_ns / r.pruned_serial_ns;
    r.speedup_parallel = r.exact_parallel_ns / r.pruned_parallel_ns;

    // Exit-tier tally of one pruned sweep at the detector's threshold.
    const core::VoiceprintOptions options = pruned_serial.options();
    core::compare_series_pruned(
        series, options.comparison,
        options.boundary.threshold_at(50.0), &r.cascade);
    std::size_t comparable = 0;
    for (const core::PairDistance& p : pruned_serial.last_all_pairs()) {
      comparable += p.comparable ? 1 : 0;
    }
    r.pairs_comparable = comparable;

    r.verdicts_match = verdicts_match(exact_serial, pruned_serial, series) &&
                       verdicts_match(exact_parallel, pruned_parallel, series);

    std::fprintf(stderr,
                 "BENCH neighbors=%zu exact=%.3f ms pruned=%.3f ms "
                 "speedup=%.2fx (parallel %.2fx) tiers kim=%llu keogh=%llu "
                 "fixed=%llu abandon=%llu full=%llu verdicts=%s\n",
                 neighbors, r.exact_serial_ns * 1e-6,
                 r.pruned_serial_ns * 1e-6, r.speedup_serial,
                 r.speedup_parallel,
                 static_cast<unsigned long long>(r.cascade.lb_kim_pruned),
                 static_cast<unsigned long long>(r.cascade.lb_keogh_pruned),
                 static_cast<unsigned long long>(r.cascade.fixed_pruned),
                 static_cast<unsigned long long>(r.cascade.early_abandoned),
                 static_cast<unsigned long long>(r.cascade.full_sweeps),
                 r.verdicts_match ? "match" : "MISMATCH");
    results.push_back(std::move(r));
  }

  const obs::json::Value doc = core::build_comparison_bench_report(
      "sec6_complexity", ts::simd_backend_name(), use_simd, results);
  std::string error;
  bool ok = true;
  if (!core::validate_comparison_bench(doc, &error)) {
    // A verdict mismatch or tally leak must fail the bench run (the smoke
    // test depends on this), not just leave a broken artefact behind.
    std::fprintf(stderr, "BENCH self-validation failed: %s\n", error.c_str());
    ok = false;
  }
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << doc.dump(2) << "\n";
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  // Split the shared run flags off before google-benchmark parses the
  // rest (it rejects flags it does not know).
  std::vector<char*> bench_argv{argv[0]};
  std::vector<const char*> run_argv{argv[0]};
  const auto is_run_flag = [](std::string_view arg) {
    for (const std::string_view name :
         {"--threads", "--metrics-out", "--trace-out", "--prune", "--simd",
          "--quick", "--out"}) {
      if (arg == name) return true;
      if (arg.size() > name.size() && arg.substr(0, name.size()) == name &&
          arg[name.size()] == '=') {
        return true;
      }
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!is_run_flag(arg)) {
      bench_argv.push_back(argv[i]);
      continue;
    }
    run_argv.push_back(argv[i]);
    // --name value form: the value token travels along.
    if (arg.find('=') == std::string_view::npos && i + 1 < argc &&
        std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      run_argv.push_back(argv[++i]);
    }
  }
  const CliArgs run_args(static_cast<int>(run_argv.size()), run_argv.data());
  const RunFlags run_flags = parse_run_flags(run_args);
  const bool quick = run_args.get_bool("quick", false);
  const std::string out_path = run_args.get("out", "BENCH_comparison.json");
  obs::RunSession session(run_args.program_name(), run_flags.metrics_out,
                          run_flags.trace_out);

  if (!quick) {
    int bench_argc = static_cast<int>(bench_argv.size());
    benchmark::Initialize(&bench_argc, bench_argv.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_argv.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return write_bench_json(out_path, run_flags.simd, quick) ? 0 : 1;
}
