// Ablation A2 — the enhanced Z-score pre-processing (Eq. 7) under
// TX-power spoofing (Assumption 3). The attacker sets each Sybil identity
// a different constant power; without Eq. 7 those offsets corrupt the
// distance scale DTW sees.
//
// A fixed threshold would compare apples to oranges across scales, so for
// every (power spread × Eq. 7 on/off) cell the boundary is re-tuned on
// that cell's own training windows under the same identity-level FPR
// budget; the table reports the best detection rate each configuration
// can achieve at comparable false-positive cost.
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "core/detector.h"
#include "core/threshold.h"
#include "sim/runner.h"
#include "sim/world.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const double density = args.get_double("density", 30.0);
  const std::uint64_t seed = args.get_seed("seed", 2202);

  std::cout << "Ablation A2 — Z-score normalisation vs TX-power spoofing\n"
            << "(each cell re-tuned to a 5% identity-level FPR budget)\n\n";
  Table table({"TX power spread", "Eq. 7", "tuned DR", "tuned FPR",
               "boundary b", "votes"});

  for (const auto& [label, p_min, p_max] :
       {std::tuple<std::string, double, double>{"none (all 20 dBm)", 20.0,
                                                20.0},
        {"17-23 dBm (paper)", 17.0, 23.0},
        {"14-26 dBm (aggressive)", 14.0, 26.0}}) {
    sim::ScenarioConfig config;
    config.density_per_km = density;
    config.tx_power_min_dbm = p_min;
    config.tx_power_max_dbm = p_max;
    config.seed = seed;
    sim::World world(config);
    world.run();

    for (bool z_score : {true, false}) {
      core::TrainingOptions options;
      options.max_observers = 8;
      options.comparison.z_score_normalize = z_score;
      std::vector<core::LabeledWindow> windows;
      core::collect_labeled_windows(world, options, windows);
      const core::TunedBoundary tuned = core::tune_boundary(windows);
      table.add_row({label, z_score ? "on" : "off",
                     Table::num(tuned.train_dr, 4),
                     Table::num(tuned.train_fpr, 4),
                     Table::num(tuned.boundary.b, 4),
                     std::to_string(tuned.votes)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: with Eq. 7 the achievable DR is insensitive to "
               "the power spread; without it the achievable DR at the same "
               "FPR budget degrades as the spread grows.\n";
  return 0;
}
