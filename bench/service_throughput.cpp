// Sharded detection-service throughput sweep (DESIGN.md §9): how fast
// can service::DetectionService multiplex whole fleets of observers —
// ingest across N concurrent sessions and batch their confirmation
// rounds onto the thread pool — as a function of session count × beacon
// rate, plus one deliberately overloaded configuration (session cap
// below the offered fleet, per-session admission caps, a tiny round
// queue with manual pumping) to show every shedding path staying bounded
// and counted instead of stalling.
//
// Beacon traces are synthesised up front (AR(1) shadowing shapes at
// jittered beacon instants, merged into one fleet-wide arrival-ordered
// stream), so the timed region is exactly ingest + round scheduling +
// pumps. Pump and round latencies flow through the obs registry
// ("service.pump_ns", "stream.round_ns"), and BENCH_service.json is
// built from the same HistogramSnapshot aggregation as a --metrics-out
// run report (schema voiceprint.service_bench/v1, self-validated before
// writing).
//
//   ./build/bench/service_throughput                  # full sweep
//   ./build/bench/service_throughput --quick          # smoke-sized sweep
//   ./build/bench/service_throughput --shards 8 --threads 0 --duration 60
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "core/detector.h"
#include "obs/report.h"
#include "obs/runtime.h"
#include "obs/telemetry.h"
#include "service/report.h"
#include "service/service.h"
#include "sim/replay_source.h"

namespace {

using namespace vp;

service::ServiceBenchConfigResult run_config(
    const std::string& label, std::size_t sessions, std::size_t identities,
    double rate_hz, double duration_s, std::size_t shards,
    std::size_t threads, bool overload, const vp::RunFlags& run_flags,
    obs::TelemetryExporter& telemetry) {
  // Shared with bench/wire_throughput: both synthesise the same fleet
  // (same seeds, same arrival order), so BENCH_service and BENCH_wire
  // rows at matching parameters measure the same workload.
  const std::vector<sim::FleetBeacon> beacons =
      sim::synthesize_fleet(sessions, identities, rate_hz, duration_s);

  service::ServiceConfig config;
  config.shards = shards;
  config.threads = threads;
  config.engine.condition_ingest = run_flags.cond;
  config.engine.detector =
      core::with_run_flags(core::tuned_simulation_options(1), run_flags);
  if (overload) {
    // The fleet is twice the session cap, each session's offered load is
    // 10× its admission cap, rings are a fraction of a window, and the
    // round queue is one entry pumped only at the end: every shedding
    // path — session cap, rate cap, identity cap, queue-full — must
    // engage, stay bounded, and account for every unit it dropped.
    config.max_sessions = std::max<std::size_t>(sessions / 2, 1);
    config.max_queued_rounds = 1;
    config.pump_batch_rounds = 0;  // manual pump only: force queue pressure
    config.engine.max_ingest_rate_hz =
        static_cast<double>(identities) * rate_hz / 10.0;
    config.engine.ring_capacity = 32;
    config.engine.max_identities = std::max<std::size_t>(identities / 2, 1);
  } else {
    config.max_sessions = sessions + 8;
    config.pump_batch_rounds = shards * 2;
    config.engine.ring_capacity = static_cast<std::size_t>(
        config.engine.observation_time_s * rate_hz * 2.0) + 16;
    config.engine.max_identities = identities + 16;
  }
  service::DetectionService fleet(config);
  fleet.set_round_callback([&](const service::SessionRound& round) {
    telemetry.on_round(round.round.time_s);
  });

  obs::Histogram& round_ns = obs::registry().histogram("stream.round_ns");
  obs::Histogram& pump_ns = obs::registry().histogram("service.pump_ns");
  round_ns.reset();  // this configuration only
  pump_ns.reset();

  const auto start = std::chrono::steady_clock::now();
  for (const sim::FleetBeacon& rx : beacons) {
    fleet.ingest(rx.observer, rx.id, rx.time_s, rx.rssi_dbm);
    telemetry.sample(rx.time_s);
  }
  fleet.advance_all_to(duration_s);
  telemetry.sample(duration_s);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();

  const service::DetectionService::Stats& stats = fleet.stats();
  service::ServiceBenchConfigResult result;
  result.label = label;
  result.sessions = sessions;
  result.identities_per_session = identities;
  result.beacon_rate_hz = rate_hz;
  result.duration_s = duration_s;
  result.shards = shards;
  result.threads = threads;
  result.offered = stats.beacons_offered;
  result.ingested = stats.beacons_ingested;
  result.shed = stats.beacons_shed_session_cap +
                stats.beacons_shed_rate_limited +
                stats.beacons_shed_identity_cap +
                stats.beacons_shed_out_of_order +
                stats.beacons_shed_invalid +
                stats.beacons_shed_conditioned;
  result.rounds_prepared = stats.rounds_prepared;
  result.rounds_executed = stats.rounds_executed;
  result.rounds_shed =
      stats.rounds_shed_queue_full + stats.rounds_shed_closed;
  result.ingest_beacons_per_s =
      wall_s > 0.0 ? static_cast<double>(stats.beacons_offered) / wall_s : 0.0;
  result.pump_ns = pump_ns.snapshot();
  result.round_ns = round_ns.snapshot();

  std::printf(
      "BENCH %-16s sessions=%-4zu rate=%5.1f Hz  ingest=%9.0f beacons/s  "
      "rounds=%llu/%llu pump p99=%.3f ms  shed=%llu beacons, %llu rounds\n",
      label.c_str(), sessions, rate_hz, result.ingest_beacons_per_s,
      static_cast<unsigned long long>(result.rounds_executed),
      static_cast<unsigned long long>(result.rounds_prepared),
      result.pump_ns.p99 * 1e-6,
      static_cast<unsigned long long>(result.shed),
      static_cast<unsigned long long>(result.rounds_shed));

  // Graceful shutdown: close every session so the fleet-wide accounting
  // (sessions_opened = closed + evicted + active) stays exact across the
  // configurations sharing one registry — the HealthMonitor checks it on
  // every telemetry frame.
  std::vector<service::SessionId> open_sessions;
  fleet.for_each_session(
      [&](service::SessionId id, const stream::StreamEngine&) {
        open_sessions.push_back(id);
      });
  for (service::SessionId id : open_sessions) fleet.close(id);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const RunFlags run_flags = parse_run_flags(args, /*default_threads=*/0);
  obs::RunSession session(args.program_name(), run_flags.metrics_out,
                          run_flags.trace_out);
  obs::HealthMonitor monitor = obs::HealthMonitor::with_default_invariants();
  obs::TelemetryExporter telemetry(obs::telemetry_config_from_flags(run_flags));
  if (telemetry.active()) telemetry.set_monitor(&monitor);
  // The pump/round latency histograms must collect even without
  // --metrics-out: BENCH_service.json is derived from them.
  obs::enable();

  const bool quick = args.get_bool("quick", false);
  const double duration = args.get_double("duration", quick ? 25.0 : 60.0);
  const std::size_t identities =
      static_cast<std::size_t>(args.get_int("identities", quick ? 8 : 16));
  const std::size_t shards =
      static_cast<std::size_t>(args.get_int("shards", 4));
  const std::string out_path = args.get("out", "BENCH_service.json");
  const std::size_t threads = run_flags.threads;

  std::vector<std::size_t> session_counts =
      quick ? std::vector<std::size_t>{4} : std::vector<std::size_t>{8, 32};
  std::vector<double> rates = quick ? std::vector<double>{10.0}
                                    : std::vector<double>{10.0, 20.0};

  std::vector<service::ServiceBenchConfigResult> results;
  for (double rate : rates) {
    for (std::size_t sessions : session_counts) {
      std::string label = "s";
      label += std::to_string(sessions);
      label += "_rate";
      label += std::to_string(static_cast<int>(rate));
      results.push_back(run_config(label, sessions, identities, rate,
                                   duration, shards, threads, false,
                                   run_flags, telemetry));
    }
  }
  // The overload scenario (always included — the acceptance bar): every
  // shedding path engages and the conservation laws still hold.
  results.push_back(run_config("overload", quick ? 4 : 16, identities, 10.0,
                               duration, shards, threads, true, run_flags,
                               telemetry));
  telemetry.finish(duration);

  const obs::json::Value report =
      service::build_service_bench_report(args.program_name(), results);
  std::string error;
  if (!service::validate_service_bench(report, &error)) {
    std::fprintf(stderr, "service_throughput: self-check failed: %s\n",
                 error.c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::out | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << report.dump(2) << "\n";
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
