// The parallel comparison engine's two core guarantees (ISSUE 1):
//   1. compare_series is bit-identical for every thread count — the (i,j)
//      pairs are enumerated up front and written into fixed slots, so
//      Eq. 8's min–max normalisation sees the same ordered distance set;
//   2. a reused ts::DtwWorkspace gives exactly the same results as fresh
//      per-call allocations, across interleaved series lengths.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "core/comparison.h"
#include "core/detector.h"
#include "sim/runner.h"
#include "sim/world.h"
#include "timeseries/dtw.h"
#include "timeseries/fast_dtw.h"
#include "timeseries/series.h"

namespace vp::core {
namespace {

// A 50-identity observation window: 10 radios, five identities each, all
// identities of one radio riding the same shadowing trajectory (the Sybil
// signature) with independent packet loss and measurement noise.
std::vector<NamedSeries> fifty_identity_window() {
  Rng rng(42);
  std::vector<NamedSeries> series;
  const std::size_t slots = 120;  // 12 s at 10 Hz
  for (int radio = 0; radio < 10; ++radio) {
    std::vector<double> shadow(slots);
    double s = 0.0;
    for (std::size_t i = 0; i < slots; ++i) {
      s = 0.9 * s + rng.normal(0.0, 1.5);
      shadow[i] = -70.0 - radio + s;
    }
    for (int ident = 0; ident < 5; ++ident) {
      Rng local(static_cast<std::uint64_t>(radio * 100 + ident));
      ts::Series out;
      for (std::size_t i = 0; i < slots; ++i) {
        if (local.chance(0.2)) continue;  // lost beacon
        out.add(static_cast<double>(i) * 0.1 + 0.002 * ident,
                shadow[i] + local.normal(0.0, 0.5));
      }
      series.emplace_back(static_cast<IdentityId>(radio * 100 + ident),
                          std::move(out));
    }
  }
  return series;
}

void expect_identical(const std::vector<PairDistance>& a,
                      const std::vector<PairDistance>& b,
                      std::size_t threads) {
  ASSERT_EQ(a.size(), b.size()) << "threads=" << threads;
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].a, b[k].a) << "threads=" << threads << " k=" << k;
    EXPECT_EQ(a[k].b, b[k].b) << "threads=" << threads << " k=" << k;
    EXPECT_EQ(a[k].comparable, b[k].comparable)
        << "threads=" << threads << " k=" << k;
    // Bit-identical, not approximately equal: the parallel sweep must not
    // change a single ulp anywhere downstream.
    EXPECT_EQ(a[k].raw, b[k].raw) << "threads=" << threads << " k=" << k;
    EXPECT_EQ(a[k].normalized, b[k].normalized)
        << "threads=" << threads << " k=" << k;
  }
}

TEST(ParallelComparison, BitIdenticalAcrossThreadCounts) {
  const std::vector<NamedSeries> series = fifty_identity_window();
  ComparisonOptions options;
  options.threads = 1;
  const std::vector<PairDistance> serial = compare_series(series, options);
  ASSERT_EQ(serial.size(), 50u * 49u / 2u);

  for (std::size_t threads : {std::size_t{2}, std::size_t{8},
                              std::size_t{0} /* 0 = all hardware threads */}) {
    options.threads = threads;
    expect_identical(serial, compare_series(series, options), threads);
  }
}

TEST(ParallelComparison, BitIdenticalForExactDtwToo) {
  const std::vector<NamedSeries> series = fifty_identity_window();
  ComparisonOptions options;
  options.distance = DistanceKind::kExactDtw;
  options.threads = 1;
  const std::vector<PairDistance> serial = compare_series(series, options);
  options.threads = 8;
  expect_identical(serial, compare_series(series, options), 8);
}

TEST(ParallelComparison, EvaluateHarnessIdenticalAcrossThreads) {
  sim::ScenarioConfig config;
  config.density_per_km = 10.0;
  config.sim_time_s = 45.0;
  config.seed = 63;
  sim::World world(config);
  world.run();

  auto run = [&](std::size_t harness_threads, std::size_t sweep_threads) {
    VoiceprintDetector detector(tuned_simulation_options(sweep_threads));
    sim::EvaluationOptions options{.max_observers = 6};
    options.threads = harness_threads;
    return sim::evaluate(world, detector, options);
  };
  const sim::EvaluationResult serial = run(1, 1);
  const sim::EvaluationResult parallel = run(4, 4);
  EXPECT_EQ(serial.average_dr, parallel.average_dr);
  EXPECT_EQ(serial.average_fpr, parallel.average_fpr);
  EXPECT_EQ(serial.windows_evaluated, parallel.windows_evaluated);
  EXPECT_EQ(serial.average_estimated_density,
            parallel.average_estimated_density);
  EXPECT_EQ(serial.average_neighbors, parallel.average_neighbors);
}

std::vector<double> noisy_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  double shadow = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
    out[i] = -75.0 + shadow + rng.normal(0.0, 1.0);
  }
  return out;
}

TEST(DtwWorkspace, ReusedWorkspaceMatchesFreshCalls) {
  // Two consecutive calls with very different lengths through ONE workspace
  // must equal fresh per-call results: every buffer is re-dimensioned, no
  // state leaks between calls.
  ts::DtwWorkspace workspace;
  ts::DtwResult reused;
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {200, 190}, {37, 53}, {160, 40}, {8, 8}, {200, 200}};
  for (const ts::FastDtwOptions options :
       {ts::FastDtwOptions{.radius = 1, .band = 0},
        ts::FastDtwOptions{.radius = 1, .band = 2},
        ts::FastDtwOptions{.radius = 2, .band = 5}}) {
    for (const auto& [n, m] : shapes) {
      const std::vector<double> x = noisy_series(n, n * 31 + m);
      const std::vector<double> y = noisy_series(m, n * 17 + m + 1);
      const ts::DtwResult fresh = ts::fast_dtw(x, y, options);
      ts::fast_dtw(x, y, options, workspace, reused);
      EXPECT_EQ(fresh.distance, reused.distance) << n << "x" << m;
      EXPECT_EQ(fresh.path, reused.path) << n << "x" << m;
    }
  }
}

TEST(DtwWorkspace, ExactBandedAndDistanceVariantsMatch) {
  ts::DtwWorkspace workspace;
  ts::DtwResult reused;
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {50, 64}, {64, 50}, {7, 90}};
  for (const auto& [n, m] : shapes) {
    const std::vector<double> x = noisy_series(n, 1000 + n);
    const std::vector<double> y = noisy_series(m, 2000 + m);

    const ts::DtwResult plain = ts::dtw(x, y);
    ts::dtw(x, y, ts::LocalCost::kSquared, workspace, reused);
    EXPECT_EQ(plain.distance, reused.distance);
    EXPECT_EQ(plain.path, reused.path);

    const ts::DtwResult banded = ts::dtw_banded(x, y, 4);
    ts::dtw_banded(x, y, 4, ts::LocalCost::kSquared, workspace, reused);
    EXPECT_EQ(banded.distance, reused.distance);
    EXPECT_EQ(banded.path, reused.path);

    EXPECT_EQ(ts::dtw_distance(x, y),
              ts::dtw_distance(x, y, ts::LocalCost::kSquared, workspace));
  }
}

TEST(DtwWorkspace, CoarsenAndExpandVariantsMatch) {
  ts::DtwWorkspace workspace;
  std::vector<double> reused;
  for (std::size_t n : {std::size_t{2}, std::size_t{9}, std::size_t{200}}) {
    const std::vector<double> x = noisy_series(n, 7 * n);
    ts::coarsen_by_two(x, reused);
    EXPECT_EQ(ts::coarsen_by_two(x), reused) << n;
  }

  const std::vector<double> x = noisy_series(60, 5);
  const std::vector<double> y = noisy_series(55, 6);
  const ts::DtwResult coarse = ts::dtw(x, y);
  for (std::size_t radius : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    const ts::SearchWindow fresh =
        ts::expand_window(coarse.path, 120, 110, radius);
    const ts::SearchWindow& reused_window =
        ts::expand_window(coarse.path, 120, 110, radius, workspace);
    ASSERT_EQ(fresh.rows(), reused_window.rows());
    ASSERT_EQ(fresh.cols(), reused_window.cols());
    for (std::size_t i = 0; i < fresh.rows(); ++i) {
      ASSERT_EQ(fresh.row_empty(i), reused_window.row_empty(i)) << i;
      if (fresh.row_empty(i)) continue;
      EXPECT_EQ(fresh.lo(i), reused_window.lo(i)) << i;
      EXPECT_EQ(fresh.hi(i), reused_window.hi(i)) << i;
    }
  }
}

}  // namespace
}  // namespace vp::core
