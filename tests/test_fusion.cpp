// Fusion-layer invariants (DESIGN.md §13):
//   * Determinism — fused epochs, trust trajectories and counters are
//     bit-identical across every service shard/thread combination, and
//     across a mid-epoch kill/restore (service VPSC + fusion VPFU
//     checkpoints round-tripped through bytes).
//   * Quorum — exact weighted tie exonerates; a lone voter's verdict
//     stands (single-observer fallback); a multi-voter ballot needs
//     min_corroboration distinct accusers; a zero-delivery stretch closes
//     no epochs and emits no callbacks.
//   * Accounting — rounds_delivered = rounds_fused + rounds_expired +
//     rounds_pending after every observe/advance, including late rounds
//     for already-closed epochs.
//   * Codec — VPFU encode/decode is an exact roundtrip; corruptions are
//     rejected with a reason; restore refuses a config-hash mismatch.
//   * Report — build_fusion_bench_report validates clean and the
//     validator rejects a broken conservation law, out-of-range trust and
//     a fused/single rate inversion on a multi-observer row.
#include "fusion/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "fusion/checkpoint.h"
#include "fusion/report.h"
#include "obs/json.h"
#include "service/checkpoint.h"
#include "service/service.h"
#include "sim/world.h"
#include "stream/engine.h"

namespace vp::fusion {
namespace {

struct FleetRx {
  double time_s;
  NodeId observer;
  IdentityId id;
  double rssi_dbm;
};

std::vector<FleetRx> fleet_stream(const sim::World& world,
                                  const std::vector<NodeId>& observers,
                                  double horizon) {
  std::vector<FleetRx> fleet;
  for (NodeId observer : observers) {
    const sim::RssiLog& log = world.node(observer).log();
    for (IdentityId id : log.identities_heard(0.0, horizon, 1)) {
      for (const sim::BeaconRecord& r : log.records(id, 0.0, horizon)) {
        fleet.push_back({r.time_s, observer, id, r.rssi_dbm});
      }
    }
  }
  std::sort(fleet.begin(), fleet.end(), [](const FleetRx& a, const FleetRx& b) {
    if (a.time_s != b.time_s) return a.time_s < b.time_s;
    if (a.observer != b.observer) return a.observer < b.observer;
    return a.id < b.id;
  });
  return fleet;
}

stream::StreamEngineConfig engine_config_for(const sim::ScenarioConfig& c) {
  stream::StreamEngineConfig engine_config;
  engine_config.observation_time_s = c.observation_time_s;
  engine_config.round_period_s = c.detection_period_s;
  engine_config.density_estimation_period_s = c.density_estimation_period_s;
  engine_config.max_transmission_range_m = c.max_transmission_range_m;
  engine_config.min_samples = 4;
  return engine_config;
}

// Everything fusion produces for one run, compared bitwise.
struct Outcome {
  std::vector<FusedEpoch> epochs;
  std::map<std::uint64_t, double> identity_trust;
  std::map<std::uint64_t, double> observer_trust;
  FusionEngine::Stats stats;
};

void expect_outcomes_identical(const Outcome& actual,
                               const Outcome& expected) {
  ASSERT_EQ(actual.epochs.size(), expected.epochs.size());
  for (std::size_t i = 0; i < expected.epochs.size(); ++i) {
    const FusedEpoch& a = actual.epochs[i];
    const FusedEpoch& e = expected.epochs[i];
    EXPECT_EQ(a.index, e.index);
    EXPECT_EQ(a.rounds, e.rounds);
    EXPECT_EQ(a.max_round_id, e.max_round_id);
    ASSERT_EQ(a.verdicts.size(), e.verdicts.size());
    for (std::size_t v = 0; v < e.verdicts.size(); ++v) {
      EXPECT_EQ(a.verdicts[v].id, e.verdicts[v].id);
      EXPECT_EQ(a.verdicts[v].accused, e.verdicts[v].accused);
      // Bitwise: the weight sums run in one canonical order.
      EXPECT_EQ(a.verdicts[v].accuse_weight, e.verdicts[v].accuse_weight);
      EXPECT_EQ(a.verdicts[v].total_weight, e.verdicts[v].total_weight);
      EXPECT_EQ(a.verdicts[v].voters, e.verdicts[v].voters);
      EXPECT_EQ(a.verdicts[v].accusations, e.verdicts[v].accusations);
    }
  }
  EXPECT_EQ(actual.identity_trust, expected.identity_trust);
  EXPECT_EQ(actual.observer_trust, expected.observer_trust);
  EXPECT_EQ(actual.stats.rounds_delivered, expected.stats.rounds_delivered);
  EXPECT_EQ(actual.stats.rounds_fused, expected.stats.rounds_fused);
  EXPECT_EQ(actual.stats.rounds_expired, expected.stats.rounds_expired);
  EXPECT_EQ(actual.stats.epochs_closed, expected.stats.epochs_closed);
  EXPECT_EQ(actual.stats.votes_cast, expected.stats.votes_cast);
  EXPECT_EQ(actual.stats.verdicts_fused, expected.stats.verdicts_fused);
  EXPECT_EQ(actual.stats.accusations_fused,
            expected.stats.accusations_fused);
}

void check_conservation(const FusionEngine& engine) {
  const FusionEngine::Stats& s = engine.stats();
  EXPECT_EQ(s.rounds_delivered,
            s.rounds_fused + s.rounds_expired + engine.rounds_pending());
}

// Runs the fleet through a sharded service with fusion attached.
Outcome run_fused(const std::vector<FleetRx>& fleet,
                  const std::vector<NodeId>& observers,
                  const stream::StreamEngineConfig& engine_config,
                  const FusionConfig& fusion_config, double end_time,
                  std::size_t shards, std::size_t threads) {
  service::ServiceConfig service_config;
  service_config.shards = shards;
  service_config.threads = threads;
  service_config.max_sessions = observers.size() + 4;
  service_config.engine = engine_config;

  service::DetectionService service(service_config);
  FusionEngine fusion(fusion_config);
  Outcome outcome;
  fusion.set_epoch_callback(
      [&](const FusedEpoch& epoch) { outcome.epochs.push_back(epoch); });
  service.add_round_listener(
      [&](const service::SessionRound& round) { fusion.observe(round); });

  for (const FleetRx& rx : fleet) {
    service.ingest(static_cast<service::SessionId>(rx.observer), rx.id,
                   rx.time_s, rx.rssi_dbm);
    fusion.advance(rx.time_s);
  }
  service.advance_all_to(end_time);
  fusion.advance(end_time);
  fusion.finish();
  check_conservation(fusion);
  outcome.identity_trust = fusion.identity_trust().scores();
  outcome.observer_trust = fusion.observer_trust().scores();
  outcome.stats = fusion.stats();
  return outcome;
}

// A minimal synthetic round: `accused` go into the suspect set, the rest
// of `heard` only into the pair roster (exonerating votes).
service::SessionRound make_round(std::uint64_t observer, double time_s,
                                 std::vector<IdentityId> heard,
                                 std::vector<IdentityId> accused,
                                 double density_per_km = 10.0,
                                 std::uint64_t round_id = 1) {
  service::SessionRound round;
  round.session = observer;
  round.round.round_id = round_id;
  round.round.time_s = time_s;
  round.round.density_per_km = density_per_km;
  round.round.identities_heard = heard.size();
  for (std::size_t i = 0; i + 1 < heard.size(); ++i) {
    core::PairDistance pair;
    pair.a = heard[i];
    pair.b = heard[i + 1];
    pair.comparable = true;
    round.round.pairs.push_back(pair);
  }
  if (heard.size() == 1) {
    core::PairDistance pair;
    pair.a = heard[0];
    pair.b = heard[0];
    round.round.pairs.push_back(pair);
  }
  round.round.suspects = std::move(accused);
  return round;
}

// Flat-weight config for arithmetic-exact quorum tests.
FusionConfig flat_config() {
  FusionConfig config;
  config.weight_by_trust = false;
  config.weight_by_density = false;
  config.exoneration_weight = 1.0;
  config.min_corroboration = 1;
  return config;
}

TEST(FusionDeterminism, BitIdenticalAcrossShardAndThreadGrid) {
  sim::ScenarioConfig config;
  config.density_per_km = 12.0;
  config.sim_time_s = 40.0;
  config.seed = 11;
  sim::World world(config);
  world.run();

  const std::vector<NodeId> normals = world.normal_node_ids();
  ASSERT_GE(normals.size(), 4u);
  const std::vector<NodeId> observers(normals.begin(), normals.begin() + 4);
  const std::vector<FleetRx> fleet =
      fleet_stream(world, observers, config.sim_time_s + 1.0);
  const stream::StreamEngineConfig engine_config = engine_config_for(config);
  const double end_time = world.detection_times().back();
  FusionConfig fusion_config;
  fusion_config.epoch_period_s = config.detection_period_s;

  std::optional<Outcome> reference;
  for (std::size_t shards : {1u, 4u}) {
    for (std::size_t threads : {0u, 1u, 4u}) {
      Outcome outcome = run_fused(fleet, observers, engine_config,
                                  fusion_config, end_time, shards, threads);
      EXPECT_GT(outcome.stats.rounds_delivered, 0u);
      EXPECT_GT(outcome.epochs.size(), 0u);
      if (!reference.has_value()) {
        reference = std::move(outcome);
      } else {
        expect_outcomes_identical(outcome, *reference);
      }
    }
  }
}

TEST(FusionDeterminism, MidEpochKillRestoreParity) {
  sim::ScenarioConfig config;
  config.density_per_km = 12.0;
  config.sim_time_s = 40.0;
  config.seed = 13;
  sim::World world(config);
  world.run();

  const std::vector<NodeId> normals = world.normal_node_ids();
  ASSERT_GE(normals.size(), 3u);
  const std::vector<NodeId> observers(normals.begin(), normals.begin() + 3);
  const std::vector<FleetRx> fleet =
      fleet_stream(world, observers, config.sim_time_s + 1.0);
  const stream::StreamEngineConfig engine_config = engine_config_for(config);
  const double end_time = world.detection_times().back();
  FusionConfig fusion_config;
  fusion_config.epoch_period_s = config.detection_period_s;

  const Outcome uninterrupted = run_fused(fleet, observers, engine_config,
                                          fusion_config, end_time, 4, 0);

  // Kill past the first detection round (t = 20) but before its epoch
  // closes (watermark 40), so an epoch is open with buffered votes when
  // the checkpoint is cut.
  const double kill_time = 30.0;

  service::ServiceConfig service_config;
  service_config.shards = 4;
  service_config.threads = 0;
  service_config.max_sessions = observers.size() + 4;
  service_config.engine = engine_config;

  Outcome outcome;
  service::DetectionService first(service_config);
  FusionEngine fusion_first(fusion_config);
  fusion_first.set_epoch_callback(
      [&](const FusedEpoch& epoch) { outcome.epochs.push_back(epoch); });
  first.add_round_listener(
      [&](const service::SessionRound& round) { fusion_first.observe(round); });

  std::size_t cursor = 0;
  for (; cursor < fleet.size() && fleet[cursor].time_s < kill_time; ++cursor) {
    const FleetRx& rx = fleet[cursor];
    first.ingest(static_cast<service::SessionId>(rx.observer), rx.id,
                 rx.time_s, rx.rssi_dbm);
    fusion_first.advance(rx.time_s);
  }
  first.pump();  // drain the round queue (delivers into fusion_first)

  // The kill must land mid-epoch for the test to mean anything.
  ASSERT_GT(fusion_first.rounds_pending(), 0u);
  check_conservation(fusion_first);

  // Both checkpoints round-trip through their byte codecs, as a real
  // crash-recovery would.
  const std::vector<std::uint8_t> service_bytes =
      service::encode_checkpoint(first.checkpoint());
  const std::vector<std::uint8_t> fusion_bytes =
      encode_checkpoint(fusion_first.checkpoint());
  service::ServiceCheckpoint service_cp;
  FusionCheckpoint fusion_cp;
  std::string error;
  ASSERT_TRUE(service::decode_checkpoint(service_bytes, &service_cp, &error))
      << error;
  ASSERT_TRUE(decode_checkpoint(fusion_bytes, &fusion_cp, &error)) << error;

  service::DetectionService second(service_config, service_cp);
  FusionEngine fusion_second(fusion_config, fusion_cp);
  EXPECT_EQ(fusion_second.rounds_pending(), fusion_first.rounds_pending());
  fusion_second.set_epoch_callback(
      [&](const FusedEpoch& epoch) { outcome.epochs.push_back(epoch); });
  second.add_round_listener([&](const service::SessionRound& round) {
    fusion_second.observe(round);
  });

  for (; cursor < fleet.size(); ++cursor) {
    const FleetRx& rx = fleet[cursor];
    second.ingest(static_cast<service::SessionId>(rx.observer), rx.id,
                  rx.time_s, rx.rssi_dbm);
    fusion_second.advance(rx.time_s);
  }
  second.advance_all_to(end_time);
  fusion_second.advance(end_time);
  fusion_second.finish();
  check_conservation(fusion_second);
  outcome.identity_trust = fusion_second.identity_trust().scores();
  outcome.observer_trust = fusion_second.observer_trust().scores();
  outcome.stats = fusion_second.stats();

  expect_outcomes_identical(outcome, uninterrupted);
}

TEST(FusionQuorum, ExactTieExonerates) {
  FusionEngine engine(flat_config());
  std::vector<FusedEpoch> epochs;
  engine.set_epoch_callback(
      [&](const FusedEpoch& epoch) { epochs.push_back(epoch); });
  // Observer 1 accuses identity 7; observer 2 heard it clean. Symmetric
  // weights → exact tie → exonerated (strict quorum).
  engine.observe(make_round(1, 5.0, {7, 8}, {7}));
  engine.observe(make_round(2, 6.0, {7, 8}, {}));
  engine.finish();
  ASSERT_EQ(epochs.size(), 1u);
  const FusedEpoch& epoch = epochs[0];
  ASSERT_EQ(epoch.verdicts.size(), 2u);
  EXPECT_EQ(epoch.verdicts[0].id, 7u);
  EXPECT_EQ(epoch.verdicts[0].voters, 2u);
  EXPECT_EQ(epoch.verdicts[0].accusations, 1u);
  EXPECT_EQ(epoch.verdicts[0].accuse_weight, 1.0);
  EXPECT_EQ(epoch.verdicts[0].total_weight, 2.0);
  EXPECT_FALSE(epoch.verdicts[0].accused);  // tie is not a majority
  EXPECT_FALSE(epoch.verdicts[1].accused);
}

TEST(FusionQuorum, SingleObserverFallback) {
  // min_corroboration (default 2) must not mute a fleet of one: a lone
  // voter's verdict stands verbatim.
  FusionConfig config;  // defaults: trust+density weighting, min_corr 2
  FusionEngine engine(config);
  std::vector<FusedEpoch> epochs;
  engine.set_epoch_callback(
      [&](const FusedEpoch& epoch) { epochs.push_back(epoch); });
  engine.observe(make_round(1, 5.0, {7, 8}, {7}));
  engine.finish();
  ASSERT_EQ(epochs.size(), 1u);
  ASSERT_EQ(epochs[0].verdicts.size(), 2u);
  EXPECT_EQ(epochs[0].verdicts[0].id, 7u);
  EXPECT_TRUE(epochs[0].verdicts[0].accused);
  EXPECT_FALSE(epochs[0].verdicts[1].accused);
}

TEST(FusionQuorum, MinCorroborationSuppressesLoneAccuserOnMultiVoterBallot) {
  FusionConfig config = flat_config();
  config.exoneration_weight = 0.5;
  config.min_corroboration = 2;
  FusionEngine engine(config);
  std::vector<FusedEpoch> epochs;
  engine.set_epoch_callback(
      [&](const FusedEpoch& epoch) { epochs.push_back(epoch); });
  // 1-of-2 would win the weight quorum (1.0 > 0.5 × 1.5) but has only one
  // accuser; 2-of-3 passes both tests.
  engine.observe(make_round(1, 5.0, {7, 9}, {7, 9}));
  engine.observe(make_round(2, 6.0, {7, 9}, {9}));
  engine.observe(make_round(3, 7.0, {9}, {}));
  engine.finish();
  ASSERT_EQ(epochs.size(), 1u);
  ASSERT_EQ(epochs[0].verdicts.size(), 2u);
  EXPECT_EQ(epochs[0].verdicts[0].id, 7u);
  EXPECT_EQ(epochs[0].verdicts[0].accusations, 1u);
  EXPECT_FALSE(epochs[0].verdicts[0].accused);  // lone accuser, 2 voters
  EXPECT_EQ(epochs[0].verdicts[1].id, 9u);
  EXPECT_EQ(epochs[0].verdicts[1].accusations, 2u);
  EXPECT_TRUE(epochs[0].verdicts[1].accused);  // corroborated majority
}

TEST(FusionQuorum, ZeroDeliveryEpochClosesNothing) {
  FusionEngine engine(flat_config());
  std::size_t callbacks = 0;
  engine.set_epoch_callback([&](const FusedEpoch&) { ++callbacks; });
  engine.advance(500.0);  // watermark sails past many empty epochs
  engine.finish();
  EXPECT_EQ(callbacks, 0u);
  EXPECT_EQ(engine.stats().epochs_closed, 0u);
  EXPECT_EQ(engine.rounds_pending(), 0u);
  check_conservation(engine);
}

TEST(FusionAccounting, LateRoundForClosedEpochCountsExpired) {
  FusionEngine engine(flat_config());  // epoch_period 20
  std::size_t callbacks = 0;
  engine.set_epoch_callback([&](const FusedEpoch&) { ++callbacks; });
  engine.observe(make_round(1, 5.0, {7}, {7}));
  engine.advance(45.0);  // closes epochs 0 and 1
  EXPECT_EQ(callbacks, 1u);
  EXPECT_EQ(engine.stats().rounds_fused, 1u);
  // A round for epoch 0 arriving after the close is expired, not fused.
  engine.observe(make_round(2, 6.0, {7}, {7}));
  EXPECT_EQ(engine.stats().rounds_expired, 1u);
  EXPECT_EQ(engine.rounds_pending(), 0u);
  check_conservation(engine);
  engine.finish();
  EXPECT_EQ(callbacks, 1u);  // nothing further to close
  check_conservation(engine);
}

TEST(FusionTrust, TrajectoriesFollowVerdictsAndStayBounded) {
  FusionConfig config = flat_config();
  config.min_corroboration = 2;
  FusionEngine engine(config);
  engine.set_epoch_callback([](const FusedEpoch&) {});
  // Five epochs of observers 1 and 2 both accusing identity 7 while
  // identity 8 is heard clean.
  for (int epoch = 0; epoch < 5; ++epoch) {
    const double t = 5.0 + 20.0 * epoch;
    engine.observe(make_round(1, t, {7, 8}, {7}));
    engine.observe(make_round(2, t + 1.0, {7, 8}, {7}));
    engine.advance(20.0 * (epoch + 1) + 10.0);
  }
  engine.finish();
  const TrustConfig& trust = config.trust;
  // Identity 7: 0.5 − 5 × 0.15, clamped at the floor after epoch 4.
  EXPECT_EQ(engine.identity_trust().get(7), trust.floor);
  // Identity 8: 0.5 + 5 × 0.05 = 0.75, monotone recovery.
  EXPECT_NEAR(engine.identity_trust().get(8), 0.75, 1e-12);
  // Corroborated accusers earn the reward each epoch.
  EXPECT_NEAR(engine.observer_trust().get(1), 0.5 + 5 * 0.02, 1e-12);
  EXPECT_NEAR(engine.observer_trust().get(2), 0.5 + 5 * 0.02, 1e-12);

  // Badmouthing: observer 3 accuses against two exonerating peers.
  FusionEngine engine2(config);
  engine2.observe(make_round(3, 5.0, {7, 8}, {7}));
  engine2.observe(make_round(4, 6.0, {7, 8}, {}));
  engine2.observe(make_round(5, 7.0, {7, 8}, {}));
  engine2.finish();
  EXPECT_NEAR(engine2.observer_trust().get(3), 0.5 - 0.10, 1e-12);
  // The exonerated identity recovers instead of decaying.
  EXPECT_NEAR(engine2.identity_trust().get(7), 0.55, 1e-12);

  // Bounds hold no matter how long the pressure continues.
  for (int epoch = 0; epoch < 30; ++epoch) {
    const double t = 105.0 + 20.0 * epoch;
    engine2.observe(make_round(4, t, {7, 8}, {7}));
    engine2.observe(make_round(5, t + 1.0, {7, 8}, {7}));
    engine2.advance(t + 30.0);
  }
  engine2.finish();
  for (const auto& [id, score] : engine2.identity_trust().scores()) {
    EXPECT_GE(score, trust.floor);
    EXPECT_LE(score, trust.ceiling);
  }
  for (const auto& [id, score] : engine2.observer_trust().scores()) {
    EXPECT_GE(score, trust.floor);
    EXPECT_LE(score, trust.ceiling);
  }
  EXPECT_EQ(engine2.identity_trust().get(7), trust.floor);
}

TEST(FusionCheckpointCodec, RoundtripPreservesEverything) {
  FusionConfig config;
  FusionEngine engine(config);
  engine.observe(make_round(1, 5.0, {7, 8}, {7}, 12.0, 3));
  engine.observe(make_round(2, 25.0, {7, 9}, {}, 8.0, 4));
  engine.advance(30.0);  // closes epoch 0, leaves epoch 1 open

  const FusionCheckpoint original = engine.checkpoint();
  EXPECT_EQ(original.config_hash, fusion_config_hash(config));
  ASSERT_EQ(original.epochs.size(), 1u);  // the open epoch only
  EXPECT_GT(original.identity_trust.size(), 0u);

  const std::vector<std::uint8_t> bytes = encode_checkpoint(original);
  FusionCheckpoint decoded;
  std::string error;
  ASSERT_TRUE(decode_checkpoint(bytes, &decoded, &error)) << error;
  EXPECT_EQ(decoded.config_hash, original.config_hash);
  EXPECT_EQ(decoded.watermark, original.watermark);
  EXPECT_EQ(decoded.closed_before, original.closed_before);
  EXPECT_EQ(decoded.identity_trust, original.identity_trust);
  EXPECT_EQ(decoded.observer_trust, original.observer_trust);
  ASSERT_EQ(decoded.epochs.size(), original.epochs.size());
  const EpochCheckpoint& eo = original.epochs[0];
  const EpochCheckpoint& ed = decoded.epochs[0];
  EXPECT_EQ(ed.index, eo.index);
  EXPECT_EQ(ed.rounds, eo.rounds);
  EXPECT_EQ(ed.max_round_id, eo.max_round_id);
  ASSERT_EQ(ed.votes.size(), eo.votes.size());
  for (std::size_t i = 0; i < eo.votes.size(); ++i) {
    EXPECT_EQ(ed.votes[i].identity, eo.votes[i].identity);
    EXPECT_EQ(ed.votes[i].observer, eo.votes[i].observer);
    EXPECT_EQ(ed.votes[i].accused, eo.votes[i].accused);
    EXPECT_EQ(ed.votes[i].density_per_km, eo.votes[i].density_per_km);
    EXPECT_EQ(ed.votes[i].time_s, eo.votes[i].time_s);
  }
}

TEST(FusionCheckpointCodec, RejectsCorruption) {
  FusionEngine engine(FusionConfig{});
  engine.observe(make_round(1, 5.0, {7, 8}, {7}));
  const std::vector<std::uint8_t> bytes =
      encode_checkpoint(engine.checkpoint());
  std::string error;

  // Any single-byte flip breaks the checksum (or a structural check).
  for (std::size_t i = 0; i < bytes.size(); i += 7) {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[i] ^= 0x40;
    EXPECT_FALSE(decode_checkpoint(corrupt, nullptr, &error)) << i;
  }
  // Truncations at every length.
  for (std::size_t len = 0; len < bytes.size(); len += 11) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + len);
    EXPECT_FALSE(decode_checkpoint(prefix, nullptr, &error)) << len;
  }
  // Trailing garbage shifts the checksum window off the real one.
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(decode_checkpoint(padded, nullptr, &error));

  // Restore refuses a config-hash mismatch.
  FusionCheckpoint cp;
  ASSERT_TRUE(decode_checkpoint(bytes, &cp, &error)) << error;
  FusionConfig other;
  other.quorum_fraction = 0.75;
  EXPECT_THROW(FusionEngine(other, cp), PreconditionError);
}

obs::json::Value sample_report() {
  FusionBenchConfigResult row;
  row.label = "observers_6";
  row.observers = 6;
  row.density_per_km = 12.0;
  row.attackers = 1;
  row.sim_time_s = 60.0;
  row.rounds_delivered = 12;
  row.rounds_fused = 10;
  row.rounds_expired = 1;
  row.rounds_pending = 1;
  row.epochs_closed = 2;
  row.votes_cast = 40;
  row.single_dr = 0.6;
  row.single_fpr = 0.02;
  row.single_dr_samples = 12;
  row.single_fpr_samples = 12;
  row.fused_dr = 1.0;
  row.fused_fpr = 0.0;
  row.fused_dr_samples = 2;
  row.fused_fpr_samples = 2;
  row.cpvsad_dr = 0.55;
  row.cpvsad_fpr = 0.03;
  row.trust_min = 0.1;
  row.trust_max = 0.9;
  row.honest_identity_trust_min = 0.45;
  return build_fusion_bench_report("test", 5, {row});
}

obs::json::Value& row_field(obs::json::Value& report, const std::string& key) {
  return report.as_object().at("configs").as_array()[0].as_object().at(key);
}

TEST(FusionBenchReport, ValidatesCleanAndRejectsBrokenRows) {
  obs::json::Value report = sample_report();
  std::string error;
  EXPECT_TRUE(validate_fusion_bench(report, &error)) << error;

  {  // broken conservation law
    obs::json::Value broken = sample_report();
    row_field(broken, "rounds_fused") = obs::json::Value(9.0);
    EXPECT_FALSE(validate_fusion_bench(broken, &error));
    EXPECT_NE(error.find("rounds_delivered"), std::string::npos) << error;
  }
  {  // trust out of [0, 1]
    obs::json::Value broken = sample_report();
    row_field(broken, "trust_max") = obs::json::Value(1.5);
    EXPECT_FALSE(validate_fusion_bench(broken, &error));
  }
  {  // fused FPR above single on a multi-observer row
    obs::json::Value broken = sample_report();
    row_field(broken, "fused_fpr") = obs::json::Value(0.5);
    EXPECT_FALSE(validate_fusion_bench(broken, &error));
    EXPECT_NE(error.find("fused_fpr"), std::string::npos) << error;
  }
  {  // fused DR below single on a multi-observer row
    obs::json::Value broken = sample_report();
    row_field(broken, "fused_dr") = obs::json::Value(0.1);
    EXPECT_FALSE(validate_fusion_bench(broken, &error));
    EXPECT_NE(error.find("fused_dr"), std::string::npos) << error;
  }
  {  // a rate outside [0, 1]
    obs::json::Value broken = sample_report();
    row_field(broken, "single_dr") = obs::json::Value(-0.25);
    EXPECT_FALSE(validate_fusion_bench(broken, &error));
  }
  {  // wrong schema tag
    obs::json::Value broken = sample_report();
    broken.as_object().at("schema") =
        obs::json::Value(std::string("voiceprint.other/v1"));
    EXPECT_FALSE(validate_fusion_bench(broken, &error));
  }
}

}  // namespace
}  // namespace vp::fusion
