// Randomised robustness sweep over the comparison phase: arbitrary bundles
// of ragged, gappy, clipped series must never crash the pipeline, and its
// outputs must always satisfy the documented invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "core/comparison.h"
#include "core/detector.h"
#include "timeseries/series.h"

namespace vp::core {
namespace {

std::vector<NamedSeries> random_bundle(Rng& rng) {
  const auto n_series = static_cast<std::size_t>(rng.uniform_int(0, 12));
  std::vector<NamedSeries> bundle;
  for (std::size_t s = 0; s < n_series; ++s) {
    ts::Series series;
    double t = rng.uniform(0.0, 10.0);
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 250));
    const double base = rng.uniform(-95.0, -55.0);
    for (std::size_t i = 0; i < n; ++i) {
      t += rng.uniform(0.0, 0.4);  // ragged sampling with gaps
      double v = base + rng.normal(0.0, rng.uniform(0.0, 6.0));
      if (rng.chance(0.1)) v = -95.0;  // clipped sample
      series.add(t, v);
    }
    bundle.emplace_back(static_cast<IdentityId>(s), std::move(series));
  }
  return bundle;
}

class ComparisonFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ComparisonFuzz, InvariantsHoldOnArbitraryBundles) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const auto bundle = random_bundle(rng);
    for (const auto alignment :
         {ComparisonOptions::Alignment::kMatchedSamples,
          ComparisonOptions::Alignment::kResampleGrid,
          ComparisonOptions::Alignment::kNone}) {
      ComparisonOptions options;
      options.alignment = alignment;
      const auto pairs = compare_series(bundle, options);

      // Pair count is bounded by C(usable, 2) <= C(n, 2).
      const std::size_t n = bundle.size();
      EXPECT_LE(pairs.size(), n * (n > 0 ? n - 1 : 0) / 2);

      std::set<std::pair<IdentityId, IdentityId>> seen;
      for (const PairDistance& p : pairs) {
        EXPECT_LT(p.a, p.b);  // canonical i < j ordering
        EXPECT_TRUE(seen.emplace(p.a, p.b).second);
        EXPECT_GE(p.normalized, 0.0);
        EXPECT_LE(p.normalized, 1.0);
        if (p.comparable) {
          EXPECT_GE(p.raw, 0.0);
          EXPECT_TRUE(std::isfinite(p.raw));
        } else {
          EXPECT_DOUBLE_EQ(p.normalized, 1.0);
        }
      }
    }
  }
}

TEST_P(ComparisonFuzz, DetectorNeverCrashesAndFlagsSubset) {
  Rng rng(GetParam() + 1000);
  VoiceprintDetector detector;
  for (int trial = 0; trial < 25; ++trial) {
    const auto bundle = random_bundle(rng);
    const auto flagged =
        detector.detect_series(bundle, rng.uniform(0.0, 150.0));
    std::set<IdentityId> ids;
    for (const auto& [id, s] : bundle) ids.insert(id);
    for (IdentityId id : flagged) EXPECT_TRUE(ids.count(id));
    EXPECT_LE(detector.last_flagged_pairs().size(),
              detector.last_all_pairs().size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComparisonFuzz,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

// Degenerate-geometry regression: a bundle of identical (but shaped —
// constant series are excluded by the usable-shape filter) series makes
// every pairwise distance equal, so min–max normalisation sees hi == lo.
// It must take its defined all-zeros branch — every output finite,
// nothing NaN (DESIGN.md §10 numeric edges).
TEST(ComparisonDegenerate, IdenticalSeriesProduceFiniteDistances) {
  ts::Series proto;
  Rng rng(77);
  for (int i = 0; i < 80; ++i) {  // 7.9 s: clears min_overlap_s
    proto.add(0.1 * i, -70.0 + 6.0 * std::sin(0.4 * i) + rng.normal(0.0, 1.0));
  }
  std::vector<NamedSeries> bundle;
  for (IdentityId id = 1; id <= 4; ++id) bundle.emplace_back(id, proto);

  const auto pairs = compare_series(bundle, ComparisonOptions{});
  ASSERT_EQ(pairs.size(), 6u);
  for (const PairDistance& p : pairs) {
    EXPECT_TRUE(p.comparable);
    EXPECT_TRUE(std::isfinite(p.raw));
    EXPECT_TRUE(std::isfinite(p.normalized));
    EXPECT_EQ(p.normalized, 0.0);  // all-equal distances normalise to 0
  }

  // End to end through the detector: no NaN reaches the threshold rule.
  VoiceprintDetector detector;
  detector.detect_series(bundle, 15.0);
  for (const PairDistance& p : detector.last_all_pairs()) {
    EXPECT_TRUE(std::isfinite(p.normalized));
  }
}

}  // namespace
}  // namespace vp::core
