// Randomised robustness sweep over the comparison phase: arbitrary bundles
// of ragged, gappy, clipped series must never crash the pipeline, and its
// outputs must always satisfy the documented invariants.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/comparison.h"
#include "core/detector.h"
#include "timeseries/series.h"

namespace vp::core {
namespace {

std::vector<NamedSeries> random_bundle(Rng& rng) {
  const auto n_series = static_cast<std::size_t>(rng.uniform_int(0, 12));
  std::vector<NamedSeries> bundle;
  for (std::size_t s = 0; s < n_series; ++s) {
    ts::Series series;
    double t = rng.uniform(0.0, 10.0);
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 250));
    const double base = rng.uniform(-95.0, -55.0);
    for (std::size_t i = 0; i < n; ++i) {
      t += rng.uniform(0.0, 0.4);  // ragged sampling with gaps
      double v = base + rng.normal(0.0, rng.uniform(0.0, 6.0));
      if (rng.chance(0.1)) v = -95.0;  // clipped sample
      series.add(t, v);
    }
    bundle.emplace_back(static_cast<IdentityId>(s), std::move(series));
  }
  return bundle;
}

class ComparisonFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ComparisonFuzz, InvariantsHoldOnArbitraryBundles) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const auto bundle = random_bundle(rng);
    for (const auto alignment :
         {ComparisonOptions::Alignment::kMatchedSamples,
          ComparisonOptions::Alignment::kResampleGrid,
          ComparisonOptions::Alignment::kNone}) {
      ComparisonOptions options;
      options.alignment = alignment;
      const auto pairs = compare_series(bundle, options);

      // Pair count is bounded by C(usable, 2) <= C(n, 2).
      const std::size_t n = bundle.size();
      EXPECT_LE(pairs.size(), n * (n > 0 ? n - 1 : 0) / 2);

      std::set<std::pair<IdentityId, IdentityId>> seen;
      for (const PairDistance& p : pairs) {
        EXPECT_LT(p.a, p.b);  // canonical i < j ordering
        EXPECT_TRUE(seen.emplace(p.a, p.b).second);
        EXPECT_GE(p.normalized, 0.0);
        EXPECT_LE(p.normalized, 1.0);
        if (p.comparable) {
          EXPECT_GE(p.raw, 0.0);
          EXPECT_TRUE(std::isfinite(p.raw));
        } else {
          EXPECT_DOUBLE_EQ(p.normalized, 1.0);
        }
      }
    }
  }
}

TEST_P(ComparisonFuzz, DetectorNeverCrashesAndFlagsSubset) {
  Rng rng(GetParam() + 1000);
  VoiceprintDetector detector;
  for (int trial = 0; trial < 25; ++trial) {
    const auto bundle = random_bundle(rng);
    const auto flagged =
        detector.detect_series(bundle, rng.uniform(0.0, 150.0));
    std::set<IdentityId> ids;
    for (const auto& [id, s] : bundle) ids.insert(id);
    for (IdentityId id : flagged) EXPECT_TRUE(ids.count(id));
    EXPECT_LE(detector.last_flagged_pairs().size(),
              detector.last_all_pairs().size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComparisonFuzz,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

}  // namespace
}  // namespace vp::core
