// Wire ingestion tier (DESIGN.md §14): VPWB codec structural rejection,
// consistent-hash routing, transport semantics, and the headline parity
// claim — a fleet streamed through the socket front-end (multiple
// connections, interleaved arrival, mid-run checkpoint failover) produces
// bit-identical per-session rounds and fused verdicts to direct
// ingestion, at every shard/thread count.
#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/binio.h"
#include "core/detector.h"
#include "fusion/engine.h"
#include "obs/runtime.h"
#include "obs/telemetry.h"
#include "service/checkpoint.h"
#include "service/service.h"
#include "sim/replay_source.h"
#include "sim/world.h"
#include "stream/engine.h"
#include "wire/client.h"
#include "wire/frame.h"
#include "wire/hash_ring.h"
#include "wire/report.h"
#include "wire/server.h"
#include "wire/transport.h"

namespace vp::wire {
namespace {

// ---------------------------------------------------------------- codec

std::vector<std::uint8_t> encode_one(const Frame& frame) {
  std::vector<std::uint8_t> bytes;
  encode_frame(frame, bytes);
  return bytes;
}

// Re-stamps the FNV-1a trailer after a deliberate payload edit, so the
// test reaches the checks *behind* the checksum gate.
void fix_checksum(std::vector<std::uint8_t>& bytes, std::size_t base = 0) {
  const std::uint64_t sum =
      fnv1a64(std::span<const std::uint8_t>(bytes.data() + base,
                                            kFramePayloadBytes));
  std::vector<std::uint8_t> trailer;
  ByteWriter writer(trailer);
  writer.put_u64(sum);
  std::copy(trailer.begin(), trailer.end(),
            bytes.begin() + static_cast<std::ptrdiff_t>(base) +
                kFramePayloadBytes);
}

TEST(WireFrame, EncoderRoundTripsEveryType) {
  FrameEncoder encoder;
  std::vector<std::uint8_t> bytes;
  encoder.append_open(7, 0.0, bytes);
  encoder.append_beacon(7, 42, 1.25, -63.5, bytes);
  encoder.append_heartbeat(7, 2.0, bytes);
  encoder.append_close(7, 3.0, bytes);
  ASSERT_EQ(bytes.size(), 4 * kFrameBytes);
  EXPECT_EQ(encoder.frames_encoded(), 4u);

  FrameDecoder decoder;
  ASSERT_EQ(decoder.push(bytes), bytes.size());
  Frame frame;
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kOpen);
  EXPECT_EQ(frame.seq, 1u);
  EXPECT_EQ(frame.observer, 7u);
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kBeacon);
  EXPECT_EQ(frame.seq, 2u);
  EXPECT_EQ(frame.identity, 42u);
  EXPECT_EQ(frame.time_s, 1.25);
  EXPECT_EQ(frame.rssi_dbm, -63.5);
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kHeartbeat);
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kClose);
  EXPECT_EQ(frame.time_s, 3.0);
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kNeedMore);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(WireFrame, ByteAtATimeFeedNeedsMoreUntilComplete) {
  Frame original;
  original.seq = 1;
  original.observer = 9;
  original.identity = 3;
  original.time_s = 4.5;
  original.rssi_dbm = -70.0;
  const std::vector<std::uint8_t> bytes = encode_one(original);

  FrameDecoder decoder;
  Frame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    ASSERT_EQ(decoder.push(std::span<const std::uint8_t>(&bytes[i], 1)), 1u);
    ASSERT_EQ(decoder.next(frame), DecodeStatus::kNeedMore)
        << "frame completed early at byte " << i;
  }
  ASSERT_EQ(decoder.push(std::span<const std::uint8_t>(&bytes.back(), 1)),
            1u);
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.observer, 9u);
  EXPECT_EQ(frame.rssi_dbm, -70.0);
}

TEST(WireFrame, ChecksumRejectsEveryFlippedByte) {
  Frame original;
  original.seq = 1;
  original.observer = 5;
  const std::vector<std::uint8_t> clean = encode_one(original);
  // Flipping any payload byte past the magic must be caught by the
  // checksum (or the magic resync for the first four); flipping trailer
  // bytes breaks the checksum itself. No flip may ever produce a frame.
  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::vector<std::uint8_t> bytes = clean;
    bytes[i] ^= 0x01;
    FrameDecoder decoder;
    ASSERT_EQ(decoder.push(bytes), bytes.size());
    Frame frame;
    RejectReason reason;
    ASSERT_EQ(decoder.next(frame, &reason), DecodeStatus::kRejected)
        << "flipped byte " << i << " slipped through";
  }
}

TEST(WireFrame, BadVersionAndTypeAreRejectedUnderValidChecksums) {
  Frame original;
  original.seq = 1;
  original.observer = 5;

  std::vector<std::uint8_t> bad_version = encode_one(original);
  bad_version[4] = 9;
  fix_checksum(bad_version);
  FrameDecoder decoder;
  ASSERT_EQ(decoder.push(bad_version), bad_version.size());
  Frame frame;
  RejectReason reason;
  ASSERT_EQ(decoder.next(frame, &reason), DecodeStatus::kRejected);
  EXPECT_EQ(reason, RejectReason::kBadVersion);

  std::vector<std::uint8_t> bad_type = encode_one(original);
  bad_type[5] = 200;
  fix_checksum(bad_type);
  FrameDecoder decoder2;
  ASSERT_EQ(decoder2.push(bad_type), bad_type.size());
  ASSERT_EQ(decoder2.next(frame, &reason), DecodeStatus::kRejected);
  EXPECT_EQ(reason, RejectReason::kBadType);
}

TEST(WireFrame, ReplayedSequenceIsRejected) {
  Frame frame;
  frame.observer = 5;
  frame.seq = 4;
  std::vector<std::uint8_t> bytes = encode_one(frame);
  encode_frame(frame, bytes);  // the same seq again: a spliced duplicate
  frame.seq = 2;               // and a regression
  encode_frame(frame, bytes);
  frame.seq = 5;               // recovery: strictly above the last accepted
  encode_frame(frame, bytes);

  FrameDecoder decoder;
  ASSERT_EQ(decoder.push(bytes), bytes.size());
  Frame out;
  RejectReason reason;
  ASSERT_EQ(decoder.next(out), DecodeStatus::kFrame);
  EXPECT_EQ(out.seq, 4u);
  ASSERT_EQ(decoder.next(out, &reason), DecodeStatus::kRejected);
  EXPECT_EQ(reason, RejectReason::kReplayedSeq);
  ASSERT_EQ(decoder.next(out, &reason), DecodeStatus::kRejected);
  EXPECT_EQ(reason, RejectReason::kReplayedSeq);
  ASSERT_EQ(decoder.next(out), DecodeStatus::kFrame);
  EXPECT_EQ(out.seq, 5u);
  EXPECT_EQ(decoder.last_seq(), 5u);
}

TEST(WireFrame, JunkBetweenFramesCostsOneRejectPerRun) {
  Frame frame;
  frame.observer = 5;
  frame.seq = 1;
  std::vector<std::uint8_t> bytes(37, 0xAB);  // junk run, no magic inside
  encode_frame(frame, bytes);
  bytes.push_back('V');  // a second junk run: a lone magic prefix
  bytes.push_back('P');
  frame.seq = 2;
  encode_frame(frame, bytes);

  FrameDecoder decoder;
  ASSERT_EQ(decoder.push(bytes), bytes.size());
  Frame out;
  RejectReason reason;
  ASSERT_EQ(decoder.next(out, &reason), DecodeStatus::kRejected);
  EXPECT_EQ(reason, RejectReason::kBadMagic);
  ASSERT_EQ(decoder.next(out), DecodeStatus::kFrame);
  EXPECT_EQ(out.seq, 1u);
  ASSERT_EQ(decoder.next(out, &reason), DecodeStatus::kRejected);
  EXPECT_EQ(reason, RejectReason::kBadMagic);
  ASSERT_EQ(decoder.next(out), DecodeStatus::kFrame);
  EXPECT_EQ(out.seq, 2u);
}

TEST(WireFrame, BufferCapIsEnforcedOnPush) {
  FrameDecoder decoder(kFrameBytes + 10);
  const std::vector<std::uint8_t> bytes(3 * kFrameBytes, 0x11);
  EXPECT_EQ(decoder.push(bytes), kFrameBytes + 10);
  EXPECT_EQ(decoder.capacity_remaining(), 0u);
  Frame frame;
  // All junk without a magic: consumed as one reject run, space frees.
  RejectReason reason;
  EXPECT_EQ(decoder.next(frame, &reason), DecodeStatus::kRejected);
  EXPECT_GT(decoder.capacity_remaining(), 0u);
}

// ------------------------------------------------------------ hash ring

TEST(HashRing, RoutesAreStableAndCoverEveryBackend) {
  const HashRing ring(4, 64);
  const HashRing twin(4, 64);
  std::set<std::size_t> hit;
  for (std::uint64_t key = 1; key <= 2000; ++key) {
    const std::size_t backend = ring.route(key);
    ASSERT_LT(backend, 4u);
    EXPECT_EQ(backend, twin.route(key));  // pure function of (topology, key)
    hit.insert(backend);
  }
  EXPECT_EQ(hit.size(), 4u);

  const HashRing single(1, 64);
  for (std::uint64_t key = 1; key <= 50; ++key) {
    EXPECT_EQ(single.route(key), 0u);
  }
}

// ------------------------------------------------------------ transport

TEST(PipeTransport, BoundedDuplexWithDrainOnClose) {
  PipePair pipe = make_pipe(64);
  std::vector<std::uint8_t> payload(100, 0x5A);
  EXPECT_EQ(pipe.client->send(payload), 64u);  // capacity backpressure

  std::vector<std::uint8_t> out(256, 0);
  EXPECT_EQ(pipe.server->receive(out), 64);
  EXPECT_EQ(out[0], 0x5A);
  EXPECT_EQ(pipe.server->receive(out), 0);  // drained, peer still open

  // Reverse direction works independently.
  const std::vector<std::uint8_t> reply(5, 0x33);
  EXPECT_EQ(pipe.server->send(reply), 5u);
  EXPECT_EQ(pipe.client->receive(out), 5);

  // Close drains in-flight bytes before reporting -1.
  EXPECT_EQ(pipe.client->send(std::span<const std::uint8_t>(payload.data(),
                                                            10)),
            10u);
  pipe.client->close();
  EXPECT_EQ(pipe.server->receive(out), 10);
  EXPECT_EQ(pipe.server->receive(out), -1);
}

TEST(FleetStream, EncodingIsDeterministicAndFramed) {
  const std::vector<sim::FleetBeacon> fleet =
      sim::synthesize_fleet(3, 2, 5.0, 4.0);
  FleetStreamOptions options;
  options.close_time_s = 4.0;
  const std::vector<std::uint64_t> observers{1, 3};
  const std::vector<std::uint8_t> a =
      encode_fleet_stream(fleet, observers, options);
  const std::vector<std::uint8_t> b =
      encode_fleet_stream(fleet, observers, options);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size() % kFrameBytes, 0u);
  // Leading OPEN per observer, trailing CLOSE per observer.
  EXPECT_EQ(a[5], static_cast<std::uint8_t>(FrameType::kOpen));
  EXPECT_EQ(a[kFrameBytes + 5], static_cast<std::uint8_t>(FrameType::kOpen));
  EXPECT_EQ(a[a.size() - kFrameBytes + 5],
            static_cast<std::uint8_t>(FrameType::kClose));
}

// --------------------------------------------------------- ingest server

stream::StreamEngineConfig synthetic_engine_config() {
  stream::StreamEngineConfig config;
  // Short window geometry so the 8–12 s synthetic fleets produce
  // several confirmation rounds (the defaults are paper-scale: 20 s).
  config.observation_time_s = 5.0;
  config.round_period_s = 5.0;
  config.density_estimation_period_s = 5.0;
  config.min_samples = 1;
  config.detector = core::tuned_simulation_options(1);
  return config;
}

service::ServiceConfig synthetic_service_config(std::size_t shards,
                                                std::size_t threads) {
  service::ServiceConfig config;
  config.shards = shards;
  config.threads = threads;
  config.max_sessions = 64;
  config.engine = synthetic_engine_config();
  return config;
}

bool rounds_identical(const stream::StreamRound& a,
                      const stream::StreamRound& b) {
  if (a.round_id != b.round_id || a.time_s != b.time_s ||
      a.density_per_km != b.density_per_km ||
      a.identities_heard != b.identities_heard || a.suspects != b.suspects ||
      a.pairs.size() != b.pairs.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    if (a.pairs[i].a != b.pairs[i].a || a.pairs[i].b != b.pairs[i].b ||
        a.pairs[i].comparable != b.pairs[i].comparable ||
        a.pairs[i].raw != b.pairs[i].raw ||          // bitwise, no epsilon
        a.pairs[i].normalized != b.pairs[i].normalized) {
      return false;
    }
  }
  return true;
}

// Standalone per-observer reference rounds for a synthetic fleet.
std::map<std::uint64_t, std::vector<stream::StreamRound>> reference_rounds(
    const std::vector<sim::FleetBeacon>& fleet,
    const std::vector<std::uint64_t>& observers,
    const stream::StreamEngineConfig& engine_config, double end_time_s) {
  std::map<std::uint64_t, std::vector<stream::StreamRound>> reference;
  for (std::uint64_t observer : observers) {
    stream::StreamEngine engine(engine_config);
    engine.set_round_callback(
        [&, observer](const stream::StreamRound& round) {
          reference[observer].push_back(round);
        });
    for (const sim::FleetBeacon& rx : fleet) {
      if (rx.observer != observer) continue;
      engine.ingest(rx.id, rx.time_s, rx.rssi_dbm);
    }
    engine.advance_to(end_time_s);
  }
  return reference;
}

TEST(IngestServer, DeliversFleetBitIdenticalOverPipe) {
  const std::vector<sim::FleetBeacon> fleet =
      sim::synthesize_fleet(4, 3, 10.0, 12.0);
  const std::vector<std::uint64_t> observers{1, 2, 3, 4};
  const stream::StreamEngineConfig engine_config = synthetic_engine_config();
  const auto reference =
      reference_rounds(fleet, observers, engine_config, 12.0);

  service::DetectionService backend(synthetic_service_config(2, 1));
  std::map<std::uint64_t, std::vector<stream::StreamRound>> streamed;
  backend.set_round_callback([&](const service::SessionRound& round) {
    streamed[round.session].push_back(round.round);
  });

  IngestServer server(IngestServerConfig{}, {&backend});
  PipePair pipe = make_pipe();
  server.add_connection(std::move(pipe.server));

  FleetStreamOptions options;
  options.close_time_s = 12.0;
  const std::vector<std::uint8_t> bytes =
      encode_fleet_stream(fleet, observers, options);
  std::size_t cursor = 0;
  while (cursor < bytes.size() || server.connections_active() > 0) {
    if (cursor < bytes.size()) {
      // Odd-sized chunks straddle frame boundaries on purpose.
      const std::size_t chunk = std::min<std::size_t>(
          bytes.size() - cursor, 487);
      cursor += pipe.client->send(std::span<const std::uint8_t>(
          bytes.data() + cursor, chunk));
      if (cursor == bytes.size()) pipe.client->close();
    }
    server.poll();
    server.drain();
  }

  const IngestServer::Stats& stats = server.stats();
  EXPECT_EQ(stats.frames_received, bytes.size() / kFrameBytes);
  EXPECT_EQ(stats.frames_ingested, stats.frames_received);
  EXPECT_EQ(stats.beacons_ingested, fleet.size());
  EXPECT_EQ(stats.frames_shed_invalid, 0u);
  EXPECT_EQ(stats.frames_shed_backpressure, 0u);
  EXPECT_EQ(stats.truncated_tails, 0u);
  EXPECT_EQ(server.watermark(), 12.0);

  for (std::uint64_t observer : observers) {
    const std::vector<stream::StreamRound>& expected =
        reference.at(observer);
    const std::vector<stream::StreamRound>& got = streamed[observer];
    ASSERT_EQ(got.size(), expected.size()) << "observer " << observer;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_TRUE(rounds_identical(got[i], expected[i]))
          << "observer " << observer << " round " << i;
    }
  }
  // Every CLOSE was applied after its session's final rounds ran.
  EXPECT_EQ(backend.stats().rounds_shed_closed, 0u);
  EXPECT_EQ(backend.sessions_active(), 0u);
}

TEST(IngestServer, CorruptAndReplayedFramesNeverReachSessions) {
  const std::vector<sim::FleetBeacon> fleet =
      sim::synthesize_fleet(2, 2, 10.0, 6.0);
  FleetStreamOptions options;
  options.close_time_s = 6.0;
  std::vector<std::uint8_t> bytes =
      encode_fleet_stream(fleet, {1, 2}, options);
  // Corrupt one mid-stream beacon payload byte (checksum reject) and
  // splice a stale duplicate of the first frame (replay reject).
  bytes[10 * kFrameBytes + 30] ^= 0xFF;
  std::vector<std::uint8_t> spliced(bytes.begin(),
                                    bytes.begin() + 20 * kFrameBytes);
  spliced.insert(spliced.end(), bytes.begin(), bytes.begin() + kFrameBytes);
  spliced.insert(spliced.end(), bytes.begin() + 20 * kFrameBytes,
                 bytes.end());

  service::DetectionService backend(synthetic_service_config(1, 1));
  IngestServer server(IngestServerConfig{}, {&backend});
  PipePair pipe = make_pipe();
  server.add_connection(std::move(pipe.server));

  std::size_t cursor = 0;
  while (cursor < spliced.size() || server.connections_active() > 0) {
    if (cursor < spliced.size()) {
      cursor += pipe.client->send(std::span<const std::uint8_t>(
          spliced.data() + cursor,
          std::min<std::size_t>(spliced.size() - cursor, 333)));
      if (cursor == spliced.size()) pipe.client->close();
    }
    server.poll();
    server.drain();
  }

  const IngestServer::Stats& stats = server.stats();
  EXPECT_EQ(stats.reject_bad_checksum, 1u);
  EXPECT_EQ(stats.reject_replayed_seq, 1u);
  EXPECT_EQ(stats.frames_shed_invalid, 2u);
  EXPECT_EQ(stats.frames_received,
            stats.frames_ingested + stats.frames_shed_invalid);
  // The corrupted beacon is simply missing from its session's stream —
  // exactly one beacon short, nothing else disturbed.
  EXPECT_EQ(stats.beacons_ingested, fleet.size() - 1);
}

TEST(IngestServer, BackpressureShedsDeterministically) {
  const std::vector<sim::FleetBeacon> fleet =
      sim::synthesize_fleet(1, 2, 10.0, 4.0);
  FleetStreamOptions options;
  options.heartbeat_period_s = 0.0;
  options.close_time_s = 4.0;
  const std::vector<std::uint8_t> bytes =
      encode_fleet_stream(fleet, {1}, options);
  const std::size_t total_frames = bytes.size() / kFrameBytes;

  IngestServerConfig config;
  config.max_frames_buffered = 4;
  service::DetectionService backend(synthetic_service_config(1, 1));
  IngestServer server(config, {&backend});
  PipePair pipe = make_pipe(1 << 16);
  server.add_connection(std::move(pipe.server));

  ASSERT_EQ(pipe.client->send(bytes), bytes.size());
  server.poll();  // decodes everything: 4 buffered, the rest shed
  const IngestServer::Stats& stats = server.stats();
  EXPECT_EQ(stats.frames_received, total_frames);
  EXPECT_EQ(server.frames_buffered(), 4u);
  EXPECT_EQ(stats.frames_shed_backpressure, total_frames - 4);
  // Conservation with the buffered term, mid-flight.
  EXPECT_EQ(stats.frames_received,
            stats.frames_ingested + stats.frames_shed_invalid +
                stats.frames_shed_backpressure + server.frames_buffered());
  server.drain();
  EXPECT_EQ(server.frames_buffered(), 0u);
  EXPECT_EQ(server.stats().frames_ingested, 4u);
  // Identical re-run sheds the identical frames: no timing dependence.
  service::DetectionService backend2(synthetic_service_config(1, 1));
  IngestServer server2(config, {&backend2});
  PipePair pipe2 = make_pipe(1 << 16);
  server2.add_connection(std::move(pipe2.server));
  ASSERT_EQ(pipe2.client->send(bytes), bytes.size());
  server2.poll();
  server2.drain();
  EXPECT_EQ(server2.stats().frames_shed_backpressure,
            stats.frames_shed_backpressure);
  EXPECT_EQ(server2.stats().beacons_ingested, server.stats().beacons_ingested);
}

TEST(IngestServer, DeadConnectionMidFrameCountsTruncatedTail) {
  FrameEncoder encoder;
  std::vector<std::uint8_t> bytes;
  encoder.append_open(1, 0.0, bytes);
  encoder.append_beacon(1, 2, 0.5, -60.0, bytes);
  bytes.resize(bytes.size() - 7);  // the peer dies mid-frame

  service::DetectionService backend(synthetic_service_config(1, 1));
  IngestServer server(IngestServerConfig{}, {&backend});
  PipePair pipe = make_pipe();
  server.add_connection(std::move(pipe.server));
  ASSERT_EQ(pipe.client->send(bytes), bytes.size());
  pipe.client->close();
  while (server.connections_active() > 0) {
    server.poll();
    server.drain();
  }
  EXPECT_EQ(server.stats().truncated_tails, 1u);
  EXPECT_EQ(server.stats().frames_ingested, 1u);  // the complete OPEN
  EXPECT_EQ(server.stats().connections_closed, 1u);
}

// ------------------------------------------- parity: wire vs direct path

struct FusionOutcome {
  std::vector<fusion::FusedEpoch> epochs;
  std::map<std::uint64_t, double> identity_trust;
  std::map<std::uint64_t, double> observer_trust;
  fusion::FusionEngine::Stats stats;
};

bool verdicts_identical(const fusion::FusedVerdict& a,
                        const fusion::FusedVerdict& b) {
  return a.id == b.id && a.accused == b.accused &&
         a.accuse_weight == b.accuse_weight &&  // bitwise, no epsilon
         a.total_weight == b.total_weight && a.voters == b.voters &&
         a.accusations == b.accusations;
}

bool outcomes_identical(const FusionOutcome& a, const FusionOutcome& b) {
  if (a.epochs.size() != b.epochs.size()) return false;
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    const fusion::FusedEpoch& ea = a.epochs[i];
    const fusion::FusedEpoch& eb = b.epochs[i];
    if (ea.index != eb.index || ea.start_s != eb.start_s ||
        ea.end_s != eb.end_s || ea.rounds != eb.rounds ||
        ea.max_round_id != eb.max_round_id ||
        ea.verdicts.size() != eb.verdicts.size()) {
      return false;
    }
    for (std::size_t v = 0; v < ea.verdicts.size(); ++v) {
      if (!verdicts_identical(ea.verdicts[v], eb.verdicts[v])) return false;
    }
  }
  const fusion::FusionEngine::Stats& sa = a.stats;
  const fusion::FusionEngine::Stats& sb = b.stats;
  return a.identity_trust == b.identity_trust &&
         a.observer_trust == b.observer_trust &&
         sa.rounds_delivered == sb.rounds_delivered &&
         sa.rounds_fused == sb.rounds_fused &&
         sa.rounds_expired == sb.rounds_expired &&
         sa.epochs_closed == sb.epochs_closed &&
         sa.votes_cast == sb.votes_cast &&
         sa.verdicts_fused == sb.verdicts_fused &&
         sa.accusations_fused == sb.accusations_fused;
}

// The simulated world, its fleet stream and engine geometry, built once
// for the whole parity suite (a world run is the expensive part).
struct ParityWorld {
  sim::ScenarioConfig scenario;
  std::vector<std::uint64_t> observers;
  std::vector<sim::FleetBeacon> fleet;
  stream::StreamEngineConfig engine_config;
  double end_time = 0.0;
  std::map<std::uint64_t, std::vector<stream::StreamRound>> reference;
  FusionOutcome fusion_reference;
};

const ParityWorld& parity_world() {
  static const ParityWorld* world = [] {
    auto* p = new ParityWorld();
    p->scenario.density_per_km = 12.0;
    p->scenario.seed = 5;
    p->scenario.sim_time_s = 40.0;
    sim::World sim_world(p->scenario);
    sim_world.run();
    const std::vector<NodeId> normals = sim_world.normal_node_ids();
    for (std::size_t i = 0; i < 3 && i < normals.size(); ++i) {
      p->observers.push_back(static_cast<std::uint64_t>(normals[i]));
    }
    std::vector<NodeId> observer_nodes(p->observers.begin(),
                                       p->observers.end());
    p->fleet = sim::replay_from_world(sim_world, observer_nodes,
                                      p->scenario.sim_time_s + 1.0, 1);
    p->engine_config.observation_time_s = p->scenario.observation_time_s;
    p->engine_config.round_period_s = p->scenario.detection_period_s;
    p->engine_config.density_estimation_period_s =
        p->scenario.density_estimation_period_s;
    p->engine_config.max_transmission_range_m =
        p->scenario.max_transmission_range_m;
    p->engine_config.min_samples = 4;  // World::observe's default
    p->engine_config.detector = core::tuned_simulation_options(1);
    p->end_time = sim_world.detection_times().back();
    p->reference = reference_rounds(p->fleet, p->observers, p->engine_config,
                                    p->end_time);

    // Fusion reference from the direct (socket-free) service path —
    // exactly the examples/fleet_detection --fuse flow.
    fusion::FusionConfig fusion_config;
    fusion_config.epoch_period_s = p->scenario.detection_period_s;
    service::ServiceConfig service_config;
    service_config.shards = 4;
    service_config.threads = 1;
    service_config.max_sessions = 64;
    service_config.engine = p->engine_config;
    service::DetectionService direct(service_config);
    fusion::FusionEngine fusion_engine(fusion_config);
    fusion_engine.set_epoch_callback([&](const fusion::FusedEpoch& epoch) {
      p->fusion_reference.epochs.push_back(epoch);
    });
    direct.add_round_listener([&](const service::SessionRound& round) {
      fusion_engine.observe(round);
    });
    for (const sim::FleetBeacon& rx : p->fleet) {
      direct.ingest(rx.observer, rx.id, rx.time_s, rx.rssi_dbm);
      fusion_engine.advance(rx.time_s);
    }
    direct.advance_all_to(p->end_time);
    fusion_engine.advance(p->end_time);
    fusion_engine.finish();
    p->fusion_reference.identity_trust =
        fusion_engine.identity_trust().scores();
    p->fusion_reference.observer_trust =
        fusion_engine.observer_trust().scores();
    p->fusion_reference.stats = fusion_engine.stats();
    return p;
  }();
  return *world;
}

// Streams the parity fleet through a Pipe-backed IngestServer with
// `connections` interleaved connections and (optionally) a mid-run
// checkpoint failover of backend slot 0, and requires every session's
// rounds and the entire fusion output to be bit-identical to the direct
// path.
void run_wire_parity(std::size_t shards, std::size_t threads,
                     std::size_t backends_n, bool failover) {
  const ParityWorld& world = parity_world();
  fusion::FusionConfig fusion_config;
  fusion_config.epoch_period_s = world.scenario.detection_period_s;
  service::ServiceConfig service_config;
  service_config.shards = shards;
  service_config.threads = threads;
  service_config.max_sessions = 64;
  service_config.engine = world.engine_config;

  std::map<std::uint64_t, std::vector<stream::StreamRound>> streamed;
  FusionOutcome outcome;
  fusion::FusionEngine fusion_engine(fusion_config);
  fusion_engine.set_epoch_callback([&](const fusion::FusedEpoch& epoch) {
    outcome.epochs.push_back(epoch);
  });
  const auto on_round = [&](const service::SessionRound& round) {
    streamed[round.session].push_back(round.round);
  };
  const auto on_listener = [&](const service::SessionRound& round) {
    fusion_engine.observe(round);
  };

  std::vector<std::unique_ptr<service::DetectionService>> owned;
  std::vector<service::DetectionService*> backends;
  for (std::size_t b = 0; b < backends_n; ++b) {
    owned.push_back(
        std::make_unique<service::DetectionService>(service_config));
    owned.back()->set_round_callback(on_round);
    owned.back()->add_round_listener(on_listener);
    backends.push_back(owned.back().get());
  }
  IngestServer server(IngestServerConfig{}, backends);

  // Observers dealt round-robin over the connections; each connection's
  // stream is pre-encoded, then fed in interleaved odd-sized chunks.
  const std::size_t connections = 2;
  std::vector<std::vector<std::uint64_t>> groups(
      std::min(connections, world.observers.size()));
  for (std::size_t i = 0; i < world.observers.size(); ++i) {
    groups[i % groups.size()].push_back(world.observers[i]);
  }
  FleetStreamOptions options;
  options.close_time_s = world.end_time;
  std::vector<std::vector<std::uint8_t>> streams;
  std::vector<std::unique_ptr<Connection>> clients;
  for (const std::vector<std::uint64_t>& group : groups) {
    streams.push_back(encode_fleet_stream(world.fleet, group, options));
    PipePair pipe = make_pipe(1 << 16);
    server.add_connection(std::move(pipe.server));
    clients.push_back(std::move(pipe.client));
  }

  std::vector<std::size_t> cursors(streams.size(), 0);
  std::size_t total = 0;
  for (const std::vector<std::uint8_t>& s : streams) total += s.size();
  std::size_t sent = 0;
  std::size_t step = 0;
  bool failed_over = false;
  while (sent < total || server.connections_active() > 0) {
    for (std::size_t c = 0; c < streams.size(); ++c) {
      if (cursors[c] >= streams[c].size()) continue;
      // Chunk sizes vary per step and per connection so frame boundaries
      // land everywhere and arrival order interleaves.
      const std::size_t chunk = std::min<std::size_t>(
          streams[c].size() - cursors[c], 101 + (step * 97 + c * 53) % 400);
      const std::size_t accepted = clients[c]->send(
          std::span<const std::uint8_t>(streams[c].data() + cursors[c],
                                        chunk));
      cursors[c] += accepted;
      sent += accepted;
      if (cursors[c] == streams[c].size()) clients[c]->close();
    }
    server.poll();
    server.drain();
    fusion_engine.advance(server.watermark());

    if (failover && !failed_over && sent >= total / 2) {
      // Quiesced by the drain above: checkpoint slot 0, round-trip it
      // through the VPSC codec, restore into a standby, re-route.
      service::ServiceCheckpoint checkpoint = owned[0]->checkpoint();
      const std::vector<std::uint8_t> encoded =
          service::encode_checkpoint(checkpoint);
      service::ServiceCheckpoint decoded;
      std::string error;
      ASSERT_TRUE(service::decode_checkpoint(encoded, &decoded, &error))
          << error;
      owned.push_back(std::make_unique<service::DetectionService>(
          service_config, decoded));
      owned.back()->set_round_callback(on_round);
      owned.back()->add_round_listener(on_listener);
      server.replace_backend(0, owned.back().get());
      failed_over = true;
    }
    ++step;
  }
  fusion_engine.advance(world.end_time);
  fusion_engine.finish();
  outcome.identity_trust = fusion_engine.identity_trust().scores();
  outcome.observer_trust = fusion_engine.observer_trust().scores();
  outcome.stats = fusion_engine.stats();

  EXPECT_EQ(failover, failed_over);
  EXPECT_EQ(server.stats().failovers, failover ? 1u : 0u);
  EXPECT_EQ(server.stats().frames_shed_invalid, 0u);
  EXPECT_EQ(server.stats().frames_shed_backpressure, 0u);
  EXPECT_EQ(server.stats().beacons_ingested, world.fleet.size());

  for (std::uint64_t observer : world.observers) {
    const std::vector<stream::StreamRound>& expected =
        world.reference.at(observer);
    const std::vector<stream::StreamRound>& got = streamed[observer];
    ASSERT_EQ(got.size(), expected.size())
        << "observer " << observer << " shards=" << shards
        << " threads=" << threads << " failover=" << failover;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_TRUE(rounds_identical(got[i], expected[i]))
          << "observer " << observer << " round " << i << " shards="
          << shards << " threads=" << threads << " failover=" << failover;
    }
  }
  EXPECT_EQ(outcome.stats.rounds_expired, 0u);
  EXPECT_TRUE(outcomes_identical(world.fusion_reference, outcome))
      << "fusion diverged at shards=" << shards << " threads=" << threads
      << " failover=" << failover;
}

TEST(WireParity, Shards1Threads0) { run_wire_parity(1, 0, 1, false); }
TEST(WireParity, Shards1Threads1) { run_wire_parity(1, 1, 1, false); }
TEST(WireParity, Shards1Threads4) { run_wire_parity(1, 4, 1, false); }
TEST(WireParity, Shards4Threads0) { run_wire_parity(4, 0, 1, false); }
TEST(WireParity, Shards4Threads1) { run_wire_parity(4, 1, 1, false); }
TEST(WireParity, Shards4Threads4) { run_wire_parity(4, 4, 1, false); }

TEST(WireFailover, Shards1Threads0) { run_wire_parity(1, 0, 2, true); }
TEST(WireFailover, Shards1Threads1) { run_wire_parity(1, 1, 2, true); }
TEST(WireFailover, Shards1Threads4) { run_wire_parity(1, 4, 2, true); }
TEST(WireFailover, Shards4Threads0) { run_wire_parity(4, 0, 2, true); }
TEST(WireFailover, Shards4Threads1) { run_wire_parity(4, 1, 2, true); }
TEST(WireFailover, Shards4Threads4) { run_wire_parity(4, 4, 2, true); }

// ------------------------------------------------------- TCP loopback

TEST(TcpTransport, LoopbackSingleConnectionParity) {
  const std::vector<sim::FleetBeacon> fleet =
      sim::synthesize_fleet(2, 3, 10.0, 8.0);
  const std::vector<std::uint64_t> observers{1, 2};
  const stream::StreamEngineConfig engine_config = synthetic_engine_config();
  const auto reference = reference_rounds(fleet, observers, engine_config, 8.0);

  service::DetectionService backend(synthetic_service_config(2, 1));
  std::map<std::uint64_t, std::vector<stream::StreamRound>> streamed;
  backend.set_round_callback([&](const service::SessionRound& round) {
    streamed[round.session].push_back(round.round);
  });
  IngestServer server(IngestServerConfig{}, {&backend});

  TcpListener listener;
  std::unique_ptr<Connection> client =
      tcp_connect("127.0.0.1", listener.port());
  ASSERT_NE(client, nullptr);
  std::unique_ptr<Connection> accepted;
  for (int i = 0; i < 1000 && accepted == nullptr; ++i) {
    accepted = listener.accept();
  }
  ASSERT_NE(accepted, nullptr);
  server.add_connection(std::move(accepted));

  FleetStreamOptions options;
  options.close_time_s = 8.0;
  StreamSender sender(client.get(),
                      encode_fleet_stream(fleet, observers, options), 512);
  bool closed = false;
  while (server.connections_active() > 0) {
    if (!sender.done()) {
      sender.send_some();
    } else if (!closed) {
      client->close();
      closed = true;
    }
    server.poll();
    server.drain();
  }
  EXPECT_EQ(server.stats().beacons_ingested, fleet.size());
  EXPECT_EQ(server.stats().frames_shed_invalid, 0u);
  for (std::uint64_t observer : observers) {
    const std::vector<stream::StreamRound>& expected =
        reference.at(observer);
    const std::vector<stream::StreamRound>& got = streamed[observer];
    ASSERT_EQ(got.size(), expected.size()) << "observer " << observer;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_TRUE(rounds_identical(got[i], expected[i]))
          << "observer " << observer << " round " << i;
    }
  }
}

// ------------------------------------------------- report & telemetry

WireBenchConfigResult sample_result() {
  WireBenchConfigResult result;
  result.label = "c2_rate10";
  result.connections = 2;
  result.observers = 4;
  result.identities_per_observer = 3;
  result.beacon_rate_hz = 10.0;
  result.duration_s = 12.0;
  result.backends = 1;
  result.shards = 2;
  result.threads = 1;
  result.bytes_received = 5000;
  result.frames_received = 100;
  result.frames_ingested = 90;
  result.frames_shed_invalid = 4;
  result.frames_shed_backpressure = 6;
  result.beacons_ingested = 80;
  result.rounds_executed = 8;
  result.wall_s = 0.5;
  result.ingest_beacons_per_s = 160.0;
  return result;
}

TEST(WireBenchReport, BuildsValidDocument) {
  const obs::json::Value report =
      build_wire_bench_report("test_wire", {sample_result()});
  std::string error;
  EXPECT_TRUE(validate_wire_bench(report, &error)) << error;
}

TEST(WireBenchReport, RejectsConservationViolation) {
  WireBenchConfigResult result = sample_result();
  result.frames_received += 1;  // a silently lost frame
  std::string error;
  EXPECT_FALSE(validate_wire_bench(
      build_wire_bench_report("test_wire", {result}), &error));
  EXPECT_NE(error.find("frames_received"), std::string::npos);
}

TEST(WireBenchReport, RejectsBeaconsExceedingFrames) {
  WireBenchConfigResult result = sample_result();
  result.beacons_ingested = result.frames_ingested + 1;
  std::string error;
  EXPECT_FALSE(validate_wire_bench(
      build_wire_bench_report("test_wire", {result}), &error));
}

TEST(WireBenchReport, RejectsNonReportInput) {
  std::string error;
  EXPECT_FALSE(validate_wire_bench(obs::json::Value("nope"), &error));
  EXPECT_FALSE(
      validate_wire_bench(obs::json::Value(obs::json::Object{}), &error));
}

TEST(WireTelemetry, ConservationLawHoldsAlertFree) {
  obs::registry().reset();
  obs::HealthMonitor monitor = obs::HealthMonitor::with_default_invariants();
  obs::TelemetryConfig config;
  obs::TelemetryExporter telemetry(config);
  telemetry.set_monitor(&monitor);  // enables obs collection

  const std::vector<sim::FleetBeacon> fleet =
      sim::synthesize_fleet(3, 2, 10.0, 8.0);
  service::DetectionService backend(synthetic_service_config(2, 1));
  backend.set_round_callback([&](const service::SessionRound& round) {
    telemetry.on_round(round.round.time_s);
  });
  IngestServerConfig server_config;
  server_config.max_frames_buffered = 8;  // force backpressure sheds too
  IngestServer server(server_config, {&backend});
  PipePair pipe = make_pipe(1 << 16);
  server.add_connection(std::move(pipe.server));

  FleetStreamOptions options;
  options.close_time_s = 8.0;
  std::vector<std::uint8_t> bytes = encode_fleet_stream(fleet, {1, 2, 3},
                                                        options);
  bytes[7 * kFrameBytes + 25] ^= 0xFF;  // one invalid-shed as well
  std::size_t cursor = 0;
  while (cursor < bytes.size() || server.connections_active() > 0) {
    if (cursor < bytes.size()) {
      cursor += pipe.client->send(std::span<const std::uint8_t>(
          bytes.data() + cursor,
          std::min<std::size_t>(bytes.size() - cursor, 777)));
      if (cursor == bytes.size()) pipe.client->close();
    }
    server.poll();
    server.drain();
    telemetry.sample(server.watermark());
  }
  telemetry.finish(server.watermark());

  EXPECT_GT(server.stats().frames_shed_invalid, 0u);
  EXPECT_GT(telemetry.frames_emitted(), 0u);
  EXPECT_EQ(monitor.alerts_total(), 0u)
      << "wire conservation law violated under shedding";

  obs::disable();
  obs::registry().reset();
}

}  // namespace
}  // namespace vp::wire
