#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.h"
#include "common/csv.h"
#include "common/error.h"
#include "common/table.h"
#include "common/units.h"

namespace vp {
namespace {

TEST(Units, DbmRoundTrip) {
  for (double dbm : {-95.0, -60.0, 0.0, 20.0, 23.0}) {
    EXPECT_NEAR(units::mw_to_dbm(units::dbm_to_mw(dbm)), dbm, 1e-9);
  }
}

TEST(Units, KnownConversions) {
  EXPECT_NEAR(units::dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(units::dbm_to_mw(20.0), 100.0, 1e-9);
  EXPECT_NEAR(units::kmh_to_mps(36.0), 10.0, 1e-12);
  EXPECT_NEAR(units::mps_to_kmh(25.0), 90.0, 1e-12);
  EXPECT_NEAR(units::kDsrcWavelengthM, 0.0509, 1e-3);
}

TEST(TableTest, AlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  // Every line has the same column separator position count.
  std::istringstream is(s);
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 4);  // header + rule + 2 rows
}

TEST(TableTest, CellCountMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(-0.5, 3), "-0.500");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/vp_test_csv.csv";
  {
    CsvWriter csv(path, {"t", "rssi"});
    csv.write_row(std::vector<double>{1.0, -80.5});
    csv.write_row(std::vector<std::string>{"x,y", "quote\"d"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,rssi");
  std::getline(in, line);
  EXPECT_EQ(line, "1,-80.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",\"quote\"\"d\"");
  std::remove(path.c_str());
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog",     "--seed=9", "--density", "55.5",
                        "--verbose"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_seed("seed", 1), 9u);
  EXPECT_DOUBLE_EQ(args.get_double("density", 0.0), 55.5);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=on", "--b=Off", "--c=1", "--d=no"};
  CliArgs args(5, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(Cli, MalformedInputThrows) {
  const char* bad[] = {"prog", "stray"};
  EXPECT_THROW(CliArgs(2, bad), InvalidArgument);

  const char* argv[] = {"prog", "--n=abc"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.get_int("n", 0), InvalidArgument);
  EXPECT_THROW(args.get_double("n", 0.0), InvalidArgument);
  EXPECT_THROW(args.get_bool("n", false), InvalidArgument);
}

}  // namespace
}  // namespace vp
