#include "sim/rssi_log.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace vp::sim {
namespace {

BeaconRecord record(double t, double rssi) {
  return {.time_s = t, .rssi_dbm = rssi, .claimed_position = {}};
}

TEST(RssiLog, RecordsAndCounts) {
  RssiLog log;
  log.record(7, record(1.0, -70));
  log.record(7, record(2.0, -71));
  log.record(8, record(1.5, -80));
  EXPECT_EQ(log.total_records(), 3u);
  EXPECT_EQ(log.sample_count(7, 0.0, 10.0), 2u);
  EXPECT_EQ(log.sample_count(8, 0.0, 10.0), 1u);
  EXPECT_EQ(log.sample_count(9, 0.0, 10.0), 0u);
}

TEST(RssiLog, WindowIsHalfOpen) {
  RssiLog log;
  log.record(1, record(1.0, -70));
  log.record(1, record(2.0, -71));
  log.record(1, record(3.0, -72));
  EXPECT_EQ(log.sample_count(1, 1.0, 3.0), 2u);  // [1, 3)
  EXPECT_EQ(log.sample_count(1, 3.0, 3.0), 0u);
  EXPECT_EQ(log.sample_count(1, 2.5, 10.0), 1u);
}

TEST(RssiLog, IdentitiesHeardAppliesMinSamples) {
  RssiLog log;
  for (int i = 0; i < 5; ++i) log.record(1, record(i * 1.0, -70));
  log.record(2, record(0.5, -75));
  const auto three = log.identities_heard(0.0, 10.0, 3);
  ASSERT_EQ(three.size(), 1u);
  EXPECT_EQ(three[0], 1u);
  const auto one = log.identities_heard(0.0, 10.0, 1);
  EXPECT_EQ(one.size(), 2u);
}

TEST(RssiLog, SeriesMatchesRecords) {
  RssiLog log;
  log.record(4, record(0.1, -60));
  log.record(4, record(0.2, -61));
  log.record(4, record(0.3, -62));
  const ts::Series series = log.rssi_series(4, 0.15, 0.35);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.time(0), 0.2);
  EXPECT_DOUBLE_EQ(series.value(0), -61);
  EXPECT_DOUBLE_EQ(series.value(1), -62);
  EXPECT_TRUE(log.rssi_series(99, 0.0, 1.0).empty());
}

TEST(RssiLog, RecordsSliceMatchesSeries) {
  RssiLog log;
  for (int i = 0; i < 10; ++i) log.record(5, record(i * 0.1, -70.0 - i));
  const auto records = log.records(5, 0.25, 0.75);
  const auto series = log.rssi_series(5, 0.25, 0.75);
  ASSERT_EQ(records.size(), series.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_DOUBLE_EQ(records[i].time_s, series.time(i));
    EXPECT_DOUBLE_EQ(records[i].rssi_dbm, series.value(i));
  }
}

TEST(RssiLog, EqualTimestampsAllowed) {
  RssiLog log;
  log.record(6, record(1.0, -70));
  log.record(6, record(1.0, -71));  // CCH + SCH can land together
  EXPECT_EQ(log.sample_count(6, 0.9, 1.1), 2u);
}

// Regression guard for the binary-search window cut: every query must
// agree with a brute-force linear scan over the same records, across
// randomized windows that land on, between and outside the timestamps —
// including runs of equal timestamps (CCH + SCH double receptions).
TEST(RssiLog, BinarySearchMatchesLinearScan) {
  RssiLog log;
  std::vector<double> times;
  Rng rng(2024);
  double t = 0.0;
  for (int i = 0; i < 400; ++i) {
    t += rng.uniform(0.0, 0.3);  // zero steps create duplicate timestamps
    log.record(11, record(t, -70.0 + rng.normal(0.0, 3.0)));
    times.push_back(t);
  }

  const auto linear_count = [&](double t0, double t1) {
    std::size_t n = 0;
    for (double x : times) n += (x >= t0 && x < t1) ? 1 : 0;
    return n;
  };

  for (int trial = 0; trial < 300; ++trial) {
    double t0 = rng.uniform(-1.0, t + 1.0);
    double t1 = rng.uniform(-1.0, t + 1.0);
    if (trial % 3 == 0) t0 = times[static_cast<std::size_t>(
        rng.uniform(0.0, static_cast<double>(times.size())))];  // on a sample
    if (trial % 5 == 0) t1 = t0;  // empty window
    const std::size_t expected = linear_count(t0, t1);
    EXPECT_EQ(log.sample_count(11, t0, t1), expected) << t0 << " " << t1;
    EXPECT_EQ(log.rssi_series(11, t0, t1).size(), expected);
    EXPECT_EQ(log.records(11, t0, t1).size(), expected);
  }
}

TEST(RssiLog, IdentitiesHeardMinSamplesBoundary) {
  RssiLog log;
  for (int i = 0; i < 4; ++i) log.record(1, record(i * 1.0, -70));
  for (int i = 0; i < 3; ++i) log.record(2, record(i * 1.0, -75));
  // Exactly at the threshold counts; one below does not.
  EXPECT_EQ(log.identities_heard(0.0, 10.0, 4).size(), 1u);
  EXPECT_EQ(log.identities_heard(0.0, 10.0, 3).size(), 2u);
  EXPECT_EQ(log.identities_heard(0.0, 10.0, 5).size(), 0u);
  // An empty window hears nobody even with min_samples = 0-equivalent.
  EXPECT_TRUE(log.identities_heard(5.0, 5.0, 1).empty());
  EXPECT_TRUE(log.identities_heard(7.0, 3.0, 1).empty());  // inverted
}

TEST(RssiLog, OutOfOrderRejected) {
  RssiLog log;
  log.record(6, record(2.0, -70));
  EXPECT_THROW(log.record(6, record(1.0, -70)), PreconditionError);
  // Other identities are unaffected by identity 6's clock.
  log.record(7, record(0.5, -80));
  EXPECT_EQ(log.total_records(), 2u);
}

}  // namespace
}  // namespace vp::sim
