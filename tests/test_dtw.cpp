#include "timeseries/dtw.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace vp::ts {
namespace {

// Exhaustive DTW by enumerating all monotone warp paths (exponential —
// only for tiny series). Gold reference for the DP implementation.
double brute_force_dtw(const std::vector<double>& x,
                       const std::vector<double>& y, LocalCost cost,
                       std::size_t i, std::size_t j) {
  const double c = local_cost(x[i], y[j], cost);
  if (i == 0 && j == 0) return c;
  double best = std::numeric_limits<double>::infinity();
  if (i > 0) best = std::min(best, brute_force_dtw(x, y, cost, i - 1, j));
  if (j > 0) best = std::min(best, brute_force_dtw(x, y, cost, i, j - 1));
  if (i > 0 && j > 0) {
    best = std::min(best, brute_force_dtw(x, y, cost, i - 1, j - 1));
  }
  return c + best;
}

double brute_force_dtw(const std::vector<double>& x,
                       const std::vector<double>& y, LocalCost cost) {
  return brute_force_dtw(x, y, cost, x.size() - 1, y.size() - 1);
}

// The paper's Fig. 9 example series.
const std::vector<double> kFig9X = {1, 1, 4, 1, 1};
const std::vector<double> kFig9Y = {2, 2, 2, 4, 2, 2};

TEST(Dtw, Fig9ExampleOptimalDistance) {
  // Note: the figure annotates the total as 9, but the DP optimum under
  // the paper's own Eq. 3/4 (squared local cost) is 5 — verified against
  // exhaustive path enumeration below. We reproduce the algorithm, not the
  // figure's arithmetic.
  const DtwResult result = dtw(kFig9X, kFig9Y);
  EXPECT_DOUBLE_EQ(result.distance, 5.0);
  EXPECT_DOUBLE_EQ(brute_force_dtw(kFig9X, kFig9Y, LocalCost::kSquared), 5.0);
  EXPECT_TRUE(is_valid_warp_path(result.path, kFig9X.size(), kFig9Y.size()));
}

TEST(Dtw, MatchesBruteForceOnRandomSmallSeries) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(rng.uniform_int(1, 6)));
    std::vector<double> y(static_cast<std::size_t>(rng.uniform_int(1, 6)));
    for (double& v : x) v = rng.uniform(-5.0, 5.0);
    for (double& v : y) v = rng.uniform(-5.0, 5.0);
    for (LocalCost cost : {LocalCost::kSquared, LocalCost::kAbsolute}) {
      const DtwResult result = dtw(x, y, cost);
      EXPECT_NEAR(result.distance, brute_force_dtw(x, y, cost), 1e-9);
      EXPECT_TRUE(is_valid_warp_path(result.path, x.size(), y.size()));
    }
  }
}

TEST(Dtw, IdenticalSeriesHaveZeroDistance) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(dtw(x, x).distance, 0.0);
  EXPECT_DOUBLE_EQ(dtw_distance(x, x), 0.0);
}

TEST(Dtw, SymmetricInArguments) {
  const std::vector<double> x = {0.0, 1.0, 5.0, 2.0};
  const std::vector<double> y = {1.0, 1.0, 4.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(dtw(x, y).distance, dtw(y, x).distance);
}

TEST(Dtw, DistanceOnlyMatchesFull) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x(20), y(25);
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    for (double& v : y) v = rng.uniform(-1.0, 1.0);
    EXPECT_NEAR(dtw(x, y).distance, dtw_distance(x, y), 1e-9);
  }
}

TEST(Dtw, ToleratesTemporalShift) {
  // A shifted copy should be much closer under DTW than under any
  // point-to-point comparison.
  std::vector<double> x(50, 0.0), y(50, 0.0);
  for (int i = 20; i < 30; ++i) x[static_cast<std::size_t>(i)] = 5.0;
  for (int i = 24; i < 34; ++i) y[static_cast<std::size_t>(i)] = 5.0;
  EXPECT_LT(dtw(x, y).distance, 1e-9);  // pure shift warps away entirely
}

TEST(Dtw, HandlesDifferentLengths) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 1.5, 2.0, 2.5, 3.0};
  const DtwResult result = dtw(x, y);
  EXPECT_TRUE(is_valid_warp_path(result.path, 3, 5));
  EXPECT_GE(result.path.size(), 5u);  // must cover the longer series
}

TEST(Dtw, PathEndpointsAndContinuity) {
  const std::vector<double> x = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0};
  const std::vector<double> y = {2.0, 7.0, 1.0, 8.0};
  const DtwResult result = dtw(x, y);
  ASSERT_FALSE(result.path.empty());
  EXPECT_EQ(result.path.front(), (WarpStep{0, 0}));
  EXPECT_EQ(result.path.back(), (WarpStep{5, 3}));
  EXPECT_TRUE(is_valid_warp_path(result.path, 6, 4));
}

TEST(Dtw, EmptySeriesThrows) {
  const std::vector<double> x = {1.0};
  const std::vector<double> empty;
  EXPECT_THROW(dtw(x, empty), PreconditionError);
  EXPECT_THROW(dtw(empty, x), PreconditionError);
}

TEST(DtwBanded, WideBandMatchesFullDtw) {
  Rng rng(99);
  std::vector<double> x(30), y(30);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  for (double& v : y) v = rng.uniform(-1.0, 1.0);
  EXPECT_NEAR(dtw_banded(x, y, 30).distance, dtw(x, y).distance, 1e-9);
}

TEST(DtwBanded, NarrowBandUpperBoundsFull) {
  Rng rng(100);
  std::vector<double> x(40), y(40);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  for (double& v : y) v = rng.uniform(-1.0, 1.0);
  const double full = dtw(x, y).distance;
  const double banded = dtw_banded(x, y, 2).distance;
  EXPECT_GE(banded, full - 1e-9);  // fewer paths cannot improve the optimum
}

TEST(SearchWindowTest, FullWindowCounts) {
  const SearchWindow w = SearchWindow::full(4, 5);
  EXPECT_EQ(w.cell_count(), 20u);
  EXPECT_EQ(w.lo(2), 0u);
  EXPECT_EQ(w.hi(2), 4u);
}

TEST(SearchWindowTest, IncludeAndExpand) {
  SearchWindow w(5, 5);
  w.include(2, 2);
  EXPECT_TRUE(w.row_empty(0));
  w.expand(1);
  EXPECT_FALSE(w.row_empty(1));
  EXPECT_EQ(w.lo(1), 1u);
  EXPECT_EQ(w.hi(1), 3u);
  EXPECT_FALSE(w.row_empty(3));
  EXPECT_TRUE(w.row_empty(4));
}

TEST(DtwWindowed, MissingCornerThrows) {
  SearchWindow w(3, 3);
  w.include_range(0, 1, 2);  // (0,0) missing
  w.include_range(1, 0, 2);
  w.include_range(2, 0, 2);
  const std::vector<double> x = {1, 2, 3};
  EXPECT_THROW(dtw_windowed(x, x, w), InvalidArgument);
}

TEST(DtwWindowed, DisconnectedWindowThrows) {
  SearchWindow w(3, 4);
  w.include(0, 0);
  w.include(2, 3);  // row 1 empty → no monotone path
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_THROW(dtw_windowed(x, y, w), InvalidArgument);
}

TEST(WarpPathValidation, RejectsBadPaths) {
  // Wrong start.
  EXPECT_FALSE(is_valid_warp_path(std::vector<WarpStep>{{1, 0}, {1, 1}}, 2, 2));
  // Non-monotone.
  EXPECT_FALSE(is_valid_warp_path(
      std::vector<WarpStep>{{0, 0}, {1, 1}, {0, 1}}, 2, 2));
  // Jump (discontinuous).
  EXPECT_FALSE(
      is_valid_warp_path(std::vector<WarpStep>{{0, 0}, {2, 2}}, 3, 3));
  // Valid diagonal.
  EXPECT_TRUE(is_valid_warp_path(
      std::vector<WarpStep>{{0, 0}, {1, 1}, {2, 2}}, 3, 3));
}

}  // namespace
}  // namespace vp::ts
