#include <gtest/gtest.h>

#include "fieldtest/area.h"
#include "fieldtest/replay.h"
#include "fieldtest/scenario3.h"

namespace vp::ft {
namespace {

FieldTestConfig short_config(Area area, double duration = 240.0,
                             std::uint64_t seed = 42) {
  FieldTestConfig config;
  config.area = area;
  config.duration_s = duration;
  config.seed = seed;
  return config;
}

TEST(AreaTest, NamesAndParams) {
  EXPECT_EQ(area_name(Area::kCampus), "campus");
  EXPECT_EQ(area_name(Area::kHighway), "highway");
  EXPECT_EQ(all_areas().size(), 4u);
  EXPECT_DOUBLE_EQ(area_params(Area::kUrban).critical_distance_m, 102.0);
  EXPECT_DOUBLE_EQ(area_params(Area::kCampus).gamma1, 1.66);
}

TEST(AreaTest, PaperDurations) {
  EXPECT_DOUBLE_EQ(area_duration_s(Area::kCampus), 801.0);
  EXPECT_DOUBLE_EQ(area_duration_s(Area::kRural), 1360.0);
  EXPECT_DOUBLE_EQ(area_duration_s(Area::kUrban), 2086.0);
  EXPECT_DOUBLE_EQ(area_duration_s(Area::kHighway), 672.0);
}

TEST(AreaTest, SpeedsAndStops) {
  const SpeedRange campus = area_speed_range(Area::kCampus);
  EXPECT_NEAR(campus.min_mps, 10.0 / 3.6, 1e-9);
  EXPECT_NEAR(campus.max_mps, 15.0 / 3.6, 1e-9);
  EXPECT_TRUE(area_has_stops(Area::kUrban));
  EXPECT_FALSE(area_has_stops(Area::kHighway));
}

TEST(FieldTest, GeneratesLogsForAllReceivers) {
  const FieldTestData data = run_field_test(short_config(Area::kCampus));
  EXPECT_EQ(data.logs.size(), 4u);
  EXPECT_EQ(data.traces.size(), 4u);
  // Node 3 hears all five foreign identities (1, 2, 4, 101, 102).
  const auto heard =
      data.logs.at(kNormalNode3).identities_heard(0.0, data.duration_s, 10);
  EXPECT_GE(heard.size(), 4u);
}

TEST(FieldTest, GeometryMatchesScenario3) {
  const FieldTestData data = run_field_test(short_config(Area::kRural));
  const double t = 100.0;
  const auto p1 = data.traces.at(kMaliciousNode).position_at(t);
  const auto p2 = data.traces.at(kNormalNode2).position_at(t);
  const auto p3 = data.traces.at(kNormalNode3).position_at(t);
  const auto p4 = data.traces.at(kNormalNode4).position_at(t);
  // Side-by-side vehicle stays within ~3.3 m.
  EXPECT_LT(mob::distance(p1, p2), 3.5);
  // Leader ahead, trailer behind.
  EXPECT_GT(p4.x, p1.x + 100.0);
  EXPECT_LT(p3.x, p1.x - 120.0);
}

TEST(FieldTest, SybilSeriesSharePatternAtObserver) {
  const FieldTestData data = run_field_test(short_config(Area::kRural));
  const auto& log = data.logs.at(kNormalNode3);
  const auto primary = log.rssi_series(kMaliciousNode, 50.0, 70.0);
  const auto sybil = log.rssi_series(kSybil1, 50.0, 70.0);
  ASSERT_GT(primary.size(), 50u);
  ASSERT_GT(sybil.size(), 50u);
  // Means differ by the +3 dB spoofed power (plus small noise).
  double mp = 0.0, ms = 0.0;
  for (double v : primary.values()) mp += v;
  for (double v : sybil.values()) ms += v;
  mp /= static_cast<double>(primary.size());
  ms /= static_cast<double>(sybil.size());
  EXPECT_NEAR(ms - mp, 3.0, 1.5);
}

TEST(FieldTest, UrbanIncludesStops) {
  const FieldTestData data =
      run_field_test(short_config(Area::kUrban, 600.0));
  const mob::Trace& trace = data.traces.at(kMaliciousNode);
  bool any_stop = false;
  for (double t = 0.0; t < 600.0; t += 10.0) {
    if (trace.is_stationary(t, t + 10.0, 0.1)) {
      any_stop = true;
      break;
    }
  }
  EXPECT_TRUE(any_stop);
}

TEST(FieldTest, HighwayHasNoStops) {
  const FieldTestData data =
      run_field_test(short_config(Area::kHighway, 400.0));
  const mob::Trace& trace = data.traces.at(kMaliciousNode);
  for (double t = 5.0; t < 390.0; t += 5.0) {
    EXPECT_FALSE(trace.is_stationary(t, t + 5.0, 0.1));
  }
}

TEST(FieldTest, DetectionTimesEveryMinute) {
  // First detection once the observation window has filled (t = 20 s),
  // then one per minute — this grid reproduces the paper's per-area
  // detection counts (14/23/35/11).
  const FieldTestData data = run_field_test(short_config(Area::kCampus, 240.0));
  ASSERT_EQ(data.detection_times.size(), 4u);
  EXPECT_DOUBLE_EQ(data.detection_times[0], 20.0);
  EXPECT_DOUBLE_EQ(data.detection_times[1], 80.0);
  EXPECT_DOUBLE_EQ(data.detection_times[3], 200.0);
}

TEST(FieldTest, IdentityHelpers) {
  EXPECT_TRUE(FieldTestData::identity_is_attack(kMaliciousNode));
  EXPECT_TRUE(FieldTestData::identity_is_attack(kSybil1));
  EXPECT_FALSE(FieldTestData::identity_is_attack(kNormalNode2));
  EXPECT_EQ(FieldTestData::identity_owner(kSybil2), kMaliciousNode);
  EXPECT_EQ(FieldTestData::identity_owner(kNormalNode4), kNormalNode4);
}

TEST(FieldTest, DeterministicForSeed) {
  const FieldTestData a = run_field_test(short_config(Area::kCampus, 120.0, 7));
  const FieldTestData b = run_field_test(short_config(Area::kCampus, 120.0, 7));
  EXPECT_EQ(a.logs.at(kNormalNode3).total_records(),
            b.logs.at(kNormalNode3).total_records());
}

TEST(Replay, DetectsAttackInMovingAreas) {
  const FieldTestData data = run_field_test(short_config(Area::kRural, 300.0));
  const FieldReplayResult result = replay_field_test(data);
  EXPECT_GT(result.detection_count, 0u);
  EXPECT_GT(result.detection_rate, 0.95);
  for (const FieldDetection& d : result.detections) {
    EXPECT_DOUBLE_EQ(d.threshold, data.config.constant_threshold);
    // Every Sybil pair must sit below every non-Sybil pair here.
    double max_sybil = 0.0, min_other = 1.0;
    for (const PairRecord& p : d.pairs) {
      (p.sybil_pair ? max_sybil : min_other) =
          p.sybil_pair ? std::max(max_sybil, p.distance)
                       : std::min(min_other, p.distance);
    }
    EXPECT_LT(max_sybil, min_other);
  }
}

TEST(Replay, MultipleObservers) {
  const FieldTestData data = run_field_test(short_config(Area::kCampus, 180.0));
  ReplayOptions options;
  options.observers = {kNormalNode2, kNormalNode3, kNormalNode4};
  const FieldReplayResult result = replay_field_test(data, options);
  EXPECT_GT(result.detection_rate, 0.9);
  EXPECT_LT(result.false_positive_rate, 0.2);
}

// Parameterized sweep: in every area a moderate run must detect the
// attack cluster with high confidence from the trailing vehicle's seat.
class AreaReplay : public ::testing::TestWithParam<Area> {};

TEST_P(AreaReplay, DetectsAcrossAreas) {
  const FieldTestData data =
      run_field_test(short_config(GetParam(), 360.0, 77));
  const FieldReplayResult result = replay_field_test(data);
  ASSERT_GT(result.detection_count, 0u);
  EXPECT_GT(result.detection_rate, 0.75) << area_name(GetParam());
  EXPECT_LT(result.false_positive_rate, 0.25) << area_name(GetParam());
  // Sybil pairs must rank below the bulk of normal pairs everywhere.
  for (const FieldDetection& d : result.detections) {
    for (const PairRecord& p : d.pairs) {
      if (p.sybil_pair) EXPECT_LT(p.distance, 0.5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAreas, AreaReplay,
                         ::testing::ValuesIn(all_areas()),
                         [](const ::testing::TestParamInfo<Area>& info) {
                           return std::string(area_name(info.param));
                         });

TEST(Replay, StationaryUrbanPhasesCanConfuse) {
  // Not asserting a false positive MUST occur (it is a tail event), only
  // that the analysis machinery reports coherent data when it does.
  const FieldTestData data =
      run_field_test(short_config(Area::kUrban, 1200.0));
  const FieldReplayResult result = replay_field_test(data);
  for (const FalsePositiveAnalysis& fp : result.false_positives) {
    EXPECT_GT(fp.time_s, 0.0);
    EXPECT_GT(fp.dist_observer_attacker_m, 0.0);
  }
  EXPECT_GT(result.detection_rate, 0.8);
}

}  // namespace
}  // namespace vp::ft
