// Conditioning invariants (DESIGN.md §15):
//   * Boundary conversions — to_q12 rounds half away from zero, saturates
//     at the ±2^28 rail, maps NaN to 0; from_q12∘to_q12 is exact on
//     dyadics.
//   * Golden vectors — a hand-computed Q19.12 trace pins the filter's
//     bit-exact outputs (warmup, adaptive EMA, reject); a double-precision
//     reference filter over dequantised inputs must agree on every verdict
//     and stay within 1e-2 dB of the fixed-point EMA over long traces.
//   * Hampel semantics — zero-MAD windows use the floor, rejects leave all
//     registers untouched, the reject_limit streak re-seeds the channel,
//     any accepted sample breaks the streak.
//   * Saturation — rail-valued inputs flow through process() without
//     overflow (the CI integer-sanitizer job runs this file).
//   * Restore parity — a Conditioner restored from the checkpoint
//     accessors (including mid-reject-streak) emits bit-identical samples;
//     a conditioned StreamEngine killed/restored through VPCK emits
//     bit-identical rounds; conditioned fleet verdicts are bit-identical
//     across shard × thread configurations.
//   * Conservation — cond.offered = passed + clamped + rejected, and the
//     engine's shed_conditioned equals its cond_rejected.
#include "cond/conditioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/detector.h"
#include "service/service.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"

namespace vp::cond {
namespace {

// --- Boundary conversions ------------------------------------------------

TEST(CondQ12, RoundsHalfAwayFromZeroAndSaturates) {
  EXPECT_EQ(to_q12(0.0), 0);
  EXPECT_EQ(to_q12(1.0), kOneQ12);
  EXPECT_EQ(to_q12(-70.25), -70 * kOneQ12 - kOneQ12 / 4);
  // Exactly half a step rounds away from zero, both signs.
  EXPECT_EQ(to_q12(0.5 / kOneQ12), 1);
  EXPECT_EQ(to_q12(-0.5 / kOneQ12), -1);
  // NaN maps to 0; infinities and huge values hit the ±2^28 rail.
  EXPECT_EQ(to_q12(std::numeric_limits<double>::quiet_NaN()), 0);
  EXPECT_EQ(to_q12(std::numeric_limits<double>::infinity()), 1 << 28);
  EXPECT_EQ(to_q12(-std::numeric_limits<double>::infinity()), -(1 << 28));
  EXPECT_EQ(to_q12(1e12), 1 << 28);
  EXPECT_EQ(to_q12(-1e12), -(1 << 28));
}

TEST(CondQ12, RoundTripIsExactOnDyadics) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::int32_t q =
        static_cast<std::int32_t>(rng.uniform_int(-150 * kOneQ12, 50 * kOneQ12));
    EXPECT_EQ(to_q12(from_q12(q)), q);
  }
}

TEST(CondQ12, MedianAndMadMatchDoubleReference) {
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + 2 * static_cast<std::size_t>(
                                  rng.uniform_int(1, 15));  // odd, 3..31
    std::vector<std::int32_t> q(n);
    std::vector<double> d(n);
    for (std::size_t i = 0; i < n; ++i) {
      q[i] = static_cast<std::int32_t>(
          rng.uniform_int(-150 * kOneQ12, 50 * kOneQ12));
      d[i] = from_q12(q[i]);
    }
    std::vector<double> sorted = d;
    std::nth_element(sorted.begin(), sorted.begin() + n / 2, sorted.end());
    const double ref_med = sorted[n / 2];
    const std::int32_t med = median_q12(q);
    EXPECT_EQ(from_q12(med), ref_med);

    std::vector<double> devs(n);
    for (std::size_t i = 0; i < n; ++i) devs[i] = std::abs(d[i] - ref_med);
    std::nth_element(devs.begin(), devs.begin() + n / 2, devs.end());
    EXPECT_EQ(from_q12(mad_q12(q, med)), devs[n / 2]);
  }
}

// --- Golden vector -------------------------------------------------------

// Hand-computed trace, window 3, default thresholds (3·MAD clamp, 8·MAD
// reject, 1 dB MAD floor, alpha 1.0 → 0.25 over MAD 0..6 dB):
//   warmup passes at alpha 1.0 (EMA = input), then the window
//   {-70,-71,-69} has median -70 and MAD 1 dB, so alpha = 0.875 and the
//   EMA tracks 7/8 of each accepted step; -60 deviates 10 dB > 8·MAD and
//   is rejected with every register untouched.
TEST(Conditioner, GoldenVectorIsBitExact) {
  CondConfig config;
  config.window = 3;
  validate(config);
  Conditioner c;

  const struct {
    double x_dbm;
    Verdict verdict;
    std::int32_t conditioned_q12;
  } golden[] = {
      {-70.0, Verdict::kPass, -70 * kOneQ12},
      {-71.0, Verdict::kPass, -71 * kOneQ12},
      {-69.0, Verdict::kPass, -69 * kOneQ12},
      {-70.0, Verdict::kPass, -286208},  // -69 + 0.875·(-1) = -69.875 dB
      {-60.0, Verdict::kReject, -286208},
      {-72.0, Verdict::kPass, -293824},  // -69.875 + 0.875·(-2.125)
  };
  for (const auto& step : golden) {
    const Sample s = c.process(to_q12(step.x_dbm), config);
    EXPECT_EQ(s.verdict, step.verdict) << "at " << step.x_dbm;
    EXPECT_EQ(s.conditioned_q12, step.conditioned_q12) << "at " << step.x_dbm;
  }
}

// --- Double-precision reference ------------------------------------------

// The filter re-expressed in real arithmetic. Inputs are dequantised Q12
// values (exact dyadics), the median/MAD/threshold comparisons are then
// exact in double too, so the verdict sequence must match bit-for-bit;
// only the EMA register may drift by the fixed-point rounding per step.
class ReferenceConditioner {
 public:
  struct Out {
    Verdict verdict;
    double conditioned;
  };

  Out process(double x, const CondConfig& config) {
    const double clamp_k = static_cast<double>(config.clamp_k_q8) / kOneQ8;
    const double reject_k = static_cast<double>(config.reject_k_q8) / kOneQ8;
    const double floor = from_q12(config.mad_floor_q12);
    if (win_.size() < config.window) {
      win_.push_back(x);
      ema_update(x, 0.0, config);
      return {Verdict::kPass, ema_};
    }
    std::vector<double> sorted(win_.begin(), win_.end());
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double med = sorted[sorted.size() / 2];
    for (double& v : sorted) v = std::abs(v - med);
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double mad = std::max(sorted[sorted.size() / 2], floor);
    const double dev = std::abs(x - med);
    if (dev > reject_k * mad) {
      if (streak_ < config.reject_limit) {
        ++streak_;
        return {Verdict::kReject, ema_};
      }
      streak_ = 0;
      win_.clear();
      win_.push_back(x);
      init_ = false;
      ema_update(x, 0.0, config);
      return {Verdict::kPass, ema_};
    }
    streak_ = 0;
    double accepted = x;
    Verdict verdict = Verdict::kPass;
    if (dev > clamp_k * mad) {
      accepted = x > med ? med + clamp_k * mad : med - clamp_k * mad;
      verdict = Verdict::kClamp;
    }
    win_.push_back(accepted);
    if (win_.size() > config.window) win_.pop_front();
    ema_update(accepted, mad, config);
    return {verdict, ema_};
  }

 private:
  void ema_update(double x, double mad, const CondConfig& config) {
    if (!init_) {
      ema_ = x;
      init_ = true;
      return;
    }
    const double alpha_max = static_cast<double>(config.ema_alpha_max_q15) / kOneQ15;
    const double alpha_min = static_cast<double>(config.ema_alpha_min_q15) / kOneQ15;
    const double ref = from_q12(config.mad_ref_q12);
    const double alpha =
        alpha_max - (alpha_max - alpha_min) * std::min(mad, ref) / ref;
    ema_ += alpha * (x - ema_);
  }

  std::deque<double> win_;
  double ema_ = 0.0;
  bool init_ = false;
  std::uint32_t streak_ = 0;
};

// A 1 dB-quantised AR(1) trace (the simulator's receivers round to
// integer dBm) with spike bursts and a level shift: every conditioning
// code path fires, and the fixed-point filter must agree with the double
// reference on every verdict while the EMA stays within 1e-2 dB.
TEST(Conditioner, TracksDoubleReferenceWithinTolerance) {
  CondConfig config;
  validate(config);
  Conditioner fixed;
  ReferenceConditioner ref;
  Rng rng(41);

  double shadow = 0.0;
  int verdict_counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) {
    shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
    double level = i < 2000 ? -72.0 : -58.0;  // mid-trace level shift
    double x = std::round(level + shadow + rng.normal(0.0, 0.8));
    if (rng.chance(0.02)) x += rng.chance(0.5) ? 25.0 : -25.0;  // spikes
    const std::int32_t q = to_q12(x);
    const Sample got = fixed.process(q, config);
    const ReferenceConditioner::Out want = ref.process(from_q12(q), config);
    ASSERT_EQ(got.verdict, want.verdict) << "sample " << i << " x=" << x;
    ASSERT_NEAR(from_q12(got.conditioned_q12), want.conditioned, 1e-2)
        << "sample " << i;
    ++verdict_counts[static_cast<int>(got.verdict)];
  }
  // The trace was built to exercise all three verdicts.
  EXPECT_GT(verdict_counts[0], 0);
  EXPECT_GT(verdict_counts[1], 0);
  EXPECT_GT(verdict_counts[2], 0);
}

// --- Hampel semantics ----------------------------------------------------

// Warms a conditioner up to a constant level so the window MAD is 0 and
// the floor (1 dB by default) sets the thresholds.
Conditioner warmed_at(double level_dbm, const CondConfig& config) {
  Conditioner c;
  for (std::size_t i = 0; i < config.window; ++i) {
    c.process(to_q12(level_dbm), config);
  }
  return c;
}

TEST(Conditioner, ZeroMadWindowUsesFloor) {
  CondConfig config;
  config.window = 7;
  validate(config);
  // MAD 0 → floor 1 dB → clamp at 3 dB, reject at 8 dB.
  Conditioner pass = warmed_at(-70.0, config);
  EXPECT_EQ(pass.process(to_q12(-67.0), config).verdict, Verdict::kPass);
  Conditioner clamp = warmed_at(-70.0, config);
  EXPECT_EQ(clamp.process(to_q12(-66.0), config).verdict, Verdict::kClamp);
  Conditioner reject = warmed_at(-70.0, config);
  EXPECT_EQ(reject.process(to_q12(-61.0), config).verdict, Verdict::kReject);
}

TEST(Conditioner, RejectLeavesEveryRegisterUntouched) {
  CondConfig config;
  config.window = 5;
  validate(config);
  Conditioner c = warmed_at(-70.0, config);
  const std::int32_t ema_before = c.ema_q12();
  const std::size_t count_before = c.window_count();
  std::vector<std::int32_t> window_before;
  for (std::size_t i = 0; i < count_before; ++i) {
    window_before.push_back(c.window_sample(i));
  }

  const Sample s = c.process(to_q12(-30.0), config);
  EXPECT_EQ(s.verdict, Verdict::kReject);
  EXPECT_EQ(s.conditioned_q12, ema_before);
  EXPECT_EQ(c.ema_q12(), ema_before);
  ASSERT_EQ(c.window_count(), count_before);
  for (std::size_t i = 0; i < count_before; ++i) {
    EXPECT_EQ(c.window_sample(i), window_before[i]);
  }
  EXPECT_EQ(c.reject_streak(), 1u);
}

TEST(Conditioner, RejectLimitReseedsTheChannel) {
  CondConfig config;
  config.window = 5;
  config.reject_limit = 4;
  validate(config);
  Conditioner c = warmed_at(-70.0, config);

  // A genuine level shift: the stale baseline rejects it reject_limit
  // times, then the escape re-seeds the channel from the new level.
  const std::int32_t shifted = to_q12(-40.0);
  for (std::uint32_t i = 1; i <= config.reject_limit; ++i) {
    const Sample s = c.process(shifted, config);
    EXPECT_EQ(s.verdict, Verdict::kReject) << "reject " << i;
    EXPECT_EQ(c.reject_streak(), i);
  }
  const Sample reseed = c.process(shifted, config);
  EXPECT_EQ(reseed.verdict, Verdict::kPass);
  EXPECT_EQ(reseed.conditioned_q12, shifted);  // EMA snapped to the shift
  EXPECT_EQ(c.reject_streak(), 0u);
  EXPECT_EQ(c.window_count(), 1u);  // window restarted from the sample
  EXPECT_EQ(c.window_sample(0), shifted);
}

TEST(Conditioner, AcceptedSampleBreaksTheStreak) {
  CondConfig config;
  config.window = 5;
  validate(config);
  Conditioner c = warmed_at(-70.0, config);
  c.process(to_q12(-30.0), config);
  c.process(to_q12(-30.0), config);
  EXPECT_EQ(c.reject_streak(), 2u);
  EXPECT_EQ(c.process(to_q12(-70.0), config).verdict, Verdict::kPass);
  EXPECT_EQ(c.reject_streak(), 0u);
}

// Rail-valued inputs (±2^28, the to_q12 saturation rail): every
// difference taken inside the filter must stay inside its integer type.
// The CI integer-sanitizer job runs this test; a silent wrap would trip
// -fsanitize=integer even where the optimiser hides it.
TEST(Conditioner, RailValuedInputsDoNotOverflow) {
  CondConfig config;
  config.window = 5;
  config.reject_limit = 2;
  validate(config);
  constexpr std::int32_t kRail = 1 << 28;
  Conditioner c;
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const std::int32_t x = rng.chance(0.5) ? kRail : -kRail;
    const Sample s = c.process(x, config);
    EXPECT_GE(s.conditioned_q12, -kRail);
    EXPECT_LE(s.conditioned_q12, kRail);
  }
}

// --- Restore parity ------------------------------------------------------

std::vector<std::int32_t> quantized_trace(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> out(n);
  double shadow = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
    double x = std::round(-68.0 + shadow + rng.normal(0.0, 0.8));
    if (i >= n / 2 && i < n / 2 + 6) x -= 35.0;  // burst → reject streak
    out[i] = to_q12(x);
  }
  return out;
}

// Kill/restore at every position of a trace that crosses a reject burst:
// the restored conditioner (window + EMA + streak through the accessors)
// must emit bit-identical samples, including cuts mid-streak.
TEST(Conditioner, RestoreIsBitIdenticalIncludingMidStreak) {
  CondConfig config;
  config.window = 7;
  config.reject_limit = 8;
  validate(config);
  const std::vector<std::int32_t> trace = quantized_trace(60, 77);

  std::vector<Sample> baseline;
  {
    Conditioner c;
    for (const std::int32_t x : trace) baseline.push_back(c.process(x, config));
  }

  bool saw_mid_streak_cut = false;
  for (std::size_t cut = 0; cut <= trace.size(); ++cut) {
    Conditioner first;
    for (std::size_t i = 0; i < cut; ++i) first.process(trace[i], config);
    saw_mid_streak_cut = saw_mid_streak_cut || first.reject_streak() > 0;

    std::vector<std::int32_t> window;
    for (std::size_t i = 0; i < first.window_count(); ++i) {
      window.push_back(first.window_sample(i));
    }
    Conditioner second;
    second.restore(window, first.ema_q12(), first.ema_initialized(),
                   first.reject_streak());

    for (std::size_t i = cut; i < trace.size(); ++i) {
      const Sample s = second.process(trace[i], config);
      ASSERT_EQ(s.verdict, baseline[i].verdict)
          << "cut " << cut << " sample " << i;
      ASSERT_EQ(s.conditioned_q12, baseline[i].conditioned_q12)
          << "cut " << cut << " sample " << i;
    }
  }
  EXPECT_TRUE(saw_mid_streak_cut);  // the burst must actually cover a cut
}

// --- Engine integration --------------------------------------------------

struct Rx {
  double time_s;
  IdentityId id;
  double rssi_dbm;
};

// Synthetic fleet-style arrival stream with spikes, so the conditioner
// rejects some beacons and the cond.* counters all move.
std::vector<Rx> spiky_stream(std::size_t identities, double rate_hz,
                             double duration_s, std::uint64_t seed) {
  std::vector<Rx> beacons;
  for (std::size_t i = 1; i <= identities; ++i) {
    Rng rng(mix64(seed, i));
    double shadow = 0.0;
    const double level = -62.0 - rng.uniform(0.0, 20.0);
    for (double t = rng.uniform(0.0, 0.1); t < duration_s; t += 1.0 / rate_hz) {
      shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
      double x = std::round(level + shadow + rng.normal(0.0, 0.8));
      if (rng.chance(0.03)) x += rng.chance(0.5) ? 25.0 : -25.0;
      beacons.push_back({t, static_cast<IdentityId>(i), x});
    }
  }
  std::sort(beacons.begin(), beacons.end(), [](const Rx& a, const Rx& b) {
    return a.time_s != b.time_s ? a.time_s < b.time_s : a.id < b.id;
  });
  return beacons;
}

stream::StreamEngineConfig conditioned_config() {
  stream::StreamEngineConfig config;
  config.min_samples = 4;
  config.condition_ingest = true;
  config.detector = core::tuned_simulation_options(1);
  return config;
}

TEST(CondEngine, ConservationLawHoldsUnderSpikes) {
  const std::vector<Rx> trace = spiky_stream(6, 10.0, 45.0, 0xc0de);
  stream::StreamEngine engine(conditioned_config());
  for (const Rx& rx : trace) engine.ingest(rx.id, rx.time_s, rx.rssi_dbm);
  engine.advance_to(45.0);

  const stream::StreamEngine::Stats& s = engine.stats();
  EXPECT_EQ(s.cond_offered, s.cond_passed + s.cond_clamped + s.cond_rejected);
  EXPECT_EQ(s.beacons_shed_conditioned, s.cond_rejected);
  EXPECT_GT(s.cond_rejected, 0u);  // the spikes must actually shed
  EXPECT_GT(s.cond_clamped, 0u);
  EXPECT_EQ(s.beacons_offered, s.beacons_ingested + s.shed_total());
}

void expect_rounds_identical(const std::vector<stream::StreamRound>& actual,
                             const std::vector<stream::StreamRound>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].time_s, expected[i].time_s);
    EXPECT_EQ(actual[i].suspects, expected[i].suspects);
    ASSERT_EQ(actual[i].pairs.size(), expected[i].pairs.size());
    for (std::size_t j = 0; j < expected[i].pairs.size(); ++j) {
      EXPECT_EQ(actual[i].pairs[j].a, expected[i].pairs[j].a);
      EXPECT_EQ(actual[i].pairs[j].b, expected[i].pairs[j].b);
      EXPECT_EQ(actual[i].pairs[j].raw, expected[i].pairs[j].raw);  // bitwise
    }
  }
}

// A conditioned engine killed through the VPCK wire format and restored
// must emit bit-identical rounds — the v3 conditioning records (window,
// EMA, reject streak) carry the filter across the kill.
TEST(CondEngine, KillRestoreThroughCheckpointIsBitIdentical) {
  const std::vector<Rx> trace = spiky_stream(6, 10.0, 60.0, 0xfade);
  const stream::StreamEngineConfig config = conditioned_config();

  std::vector<stream::StreamRound> baseline;
  {
    stream::StreamEngine engine(config);
    engine.set_round_callback(
        [&](const stream::StreamRound& r) { baseline.push_back(r); });
    for (const Rx& rx : trace) engine.ingest(rx.id, rx.time_s, rx.rssi_dbm);
    engine.advance_to(60.0);
  }
  ASSERT_GE(baseline.size(), 2u);

  for (std::size_t cut : {trace.size() / 4, trace.size() / 2,
                          (3 * trace.size()) / 4, trace.size() - 1}) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    std::vector<stream::StreamRound> rounds;
    const auto record = [&](const stream::StreamRound& r) {
      rounds.push_back(r);
    };
    stream::StreamEngine first(config);
    first.set_round_callback(record);
    for (std::size_t i = 0; i < cut; ++i) {
      first.ingest(trace[i].id, trace[i].time_s, trace[i].rssi_dbm);
    }
    const std::vector<std::uint8_t> bytes =
        stream::encode_checkpoint(first.checkpoint());
    stream::EngineCheckpoint cp;
    std::string error;
    ASSERT_TRUE(stream::decode_checkpoint(bytes, &cp, &error)) << error;
    stream::StreamEngine second(config, cp);
    second.set_round_callback(record);
    for (std::size_t i = cut; i < trace.size(); ++i) {
      second.ingest(trace[i].id, trace[i].time_s, trace[i].rssi_dbm);
    }
    second.advance_to(60.0);
    expect_rounds_identical(rounds, baseline);
  }
}

// Conditioned verdicts must not depend on the deployment shape: the same
// fleet trace through every shards × threads configuration produces
// bit-identical rounds per session.
TEST(CondEngine, FleetVerdictsIdenticalAcrossShardsAndThreads) {
  struct FleetRx {
    double time_s;
    service::SessionId session;
    IdentityId id;
    double rssi_dbm;
  };
  std::vector<FleetRx> beacons;
  for (std::size_t s = 1; s <= 3; ++s) {
    const std::vector<Rx> trace = spiky_stream(5, 10.0, 30.0, mix64(0xf1ee, s));
    for (const Rx& rx : trace) {
      beacons.push_back({rx.time_s, static_cast<service::SessionId>(s), rx.id,
                         rx.rssi_dbm});
    }
  }
  std::sort(beacons.begin(), beacons.end(),
            [](const FleetRx& a, const FleetRx& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              if (a.session != b.session) return a.session < b.session;
              return a.id < b.id;
            });

  using SessionRounds =
      std::map<service::SessionId, std::vector<stream::StreamRound>>;
  const auto run = [&](std::size_t shards, std::size_t threads) {
    service::ServiceConfig config;
    config.shards = shards;
    config.threads = threads;
    config.engine = conditioned_config();
    service::DetectionService fleet(config);
    SessionRounds rounds;
    fleet.set_round_callback([&](const service::SessionRound& r) {
      rounds[r.session].push_back(r.round);
    });
    for (const FleetRx& rx : beacons) {
      fleet.ingest(rx.session, rx.id, rx.time_s, rx.rssi_dbm);
    }
    fleet.advance_all_to(30.0);
    return rounds;
  };

  const SessionRounds baseline = run(1, 0);
  ASSERT_FALSE(baseline.empty());
  for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    for (std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      const SessionRounds rounds = run(shards, threads);
      ASSERT_EQ(rounds.size(), baseline.size());
      for (const auto& [session, expected] : baseline) {
        const auto it = rounds.find(session);
        ASSERT_NE(it, rounds.end());
        expect_rounds_identical(it->second, expected);
      }
    }
  }
}

// --- Config contract -----------------------------------------------------

TEST(CondConfigContract, RejectsEveryInvalidField) {
  const CondConfig good;
  validate(good);
  CondConfig bad = good;
  bad.window = 4;  // even
  EXPECT_THROW(validate(bad), PreconditionError);
  bad = good;
  bad.window = 1;  // below minimum
  EXPECT_THROW(validate(bad), PreconditionError);
  bad = good;
  bad.window = kMaxWindow + 2;
  EXPECT_THROW(validate(bad), PreconditionError);
  bad = good;
  bad.clamp_k_q8 = 0;
  EXPECT_THROW(validate(bad), PreconditionError);
  bad = good;
  bad.reject_k_q8 = good.clamp_k_q8 - 1;
  EXPECT_THROW(validate(bad), PreconditionError);
  bad = good;
  bad.mad_floor_q12 = 0;
  EXPECT_THROW(validate(bad), PreconditionError);
  bad = good;
  bad.reject_limit = 0;
  EXPECT_THROW(validate(bad), PreconditionError);
  bad = good;
  bad.ema_alpha_min_q15 = 0;
  EXPECT_THROW(validate(bad), PreconditionError);
  bad = good;
  bad.ema_alpha_max_q15 = kOneQ15 + 1;
  EXPECT_THROW(validate(bad), PreconditionError);
}

}  // namespace
}  // namespace vp::cond
