#include "sim/world.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "common/error.h"

namespace vp::sim {
namespace {

// A small, fast scenario for unit testing.
ScenarioConfig small_config(std::uint64_t seed = 1) {
  ScenarioConfig config;
  config.density_per_km = 10.0;  // 20 vehicles
  config.sim_time_s = 25.0;
  config.observation_time_s = 20.0;
  config.detection_period_s = 20.0;
  config.seed = seed;
  return config;
}

TEST(ScenarioConfigTest, DerivedCounts) {
  ScenarioConfig config;
  config.density_per_km = 50.0;
  EXPECT_EQ(config.vehicle_count(), 100u);   // 2 km road
  EXPECT_EQ(config.malicious_count(), 5u);   // 5%
  config.density_per_km = 10.0;
  EXPECT_EQ(config.vehicle_count(), 20u);
  EXPECT_EQ(config.malicious_count(), 1u);   // floor of one attacker
}

TEST(ScenarioConfigTest, ValidationCatchesBadConfigs) {
  ScenarioConfig config;
  config.density_per_km = 0.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = ScenarioConfig{};
  config.observation_time_s = 200.0;  // > sim time
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = ScenarioConfig{};
  config.sybil_per_malicious_min = 5;
  config.sybil_per_malicious_max = 3;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(ScenarioConfigTest, DescribeMentionsKeyParameters) {
  const std::string text = ScenarioConfig{}.describe();
  EXPECT_NE(text.find("2000"), std::string::npos);
  EXPECT_NE(text.find("10 Hz"), std::string::npos);
}

TEST(GroundTruthTest, IllegitimacyRules) {
  GroundTruth truth;
  truth.add(0, {.owner = 0, .sybil = false, .owner_malicious = false});
  truth.add(1, {.owner = 1, .sybil = false, .owner_malicious = true});
  truth.add(10001, {.owner = 1, .sybil = true, .owner_malicious = true});
  EXPECT_FALSE(truth.is_illegitimate(0));
  EXPECT_TRUE(truth.is_illegitimate(1));      // malicious primary
  EXPECT_TRUE(truth.is_illegitimate(10001));  // Sybil
  EXPECT_TRUE(truth.same_radio(1, 10001));
  EXPECT_FALSE(truth.same_radio(0, 1));
  EXPECT_THROW(truth.info(999), PreconditionError);
  EXPECT_FALSE(truth.known(999));
}

TEST(GroundTruthTest, DuplicateIdentityRejected) {
  GroundTruth truth;
  truth.add(5, {});
  EXPECT_THROW(truth.add(5, {}), PreconditionError);
}

class SmallWorldTest : public ::testing::Test {
 protected:
  static World& world() {
    // Building and running the world once keeps the suite fast.
    static std::unique_ptr<World> instance = [] {
      auto w = std::make_unique<World>(small_config());
      w->run();
      return w;
    }();
    return *instance;
  }
};

TEST_F(SmallWorldTest, FleetComposition) {
  const World& w = world();
  EXPECT_EQ(w.nodes().size(), 20u);
  std::size_t malicious = 0;
  std::size_t sybil_identities = 0;
  for (const auto& node : w.nodes()) {
    if (node->malicious()) {
      ++malicious;
      const std::size_t sybils = node->identities().size() - 1;
      EXPECT_GE(sybils, 3u);
      EXPECT_LE(sybils, 6u);
      sybil_identities += sybils;
    } else {
      EXPECT_EQ(node->identities().size(), 1u);
    }
  }
  EXPECT_EQ(malicious, 1u);
  EXPECT_EQ(w.truth().identity_count(), 20u + sybil_identities);
}

TEST_F(SmallWorldTest, TxPowersWithinConfiguredRange) {
  for (const auto& node : world().nodes()) {
    for (const auto& identity : node->identities()) {
      EXPECT_GE(identity.tx_power_dbm, 17.0);
      EXPECT_LE(identity.tx_power_dbm, 23.0);
    }
  }
}

TEST_F(SmallWorldTest, SybilOffsetsWithinConfiguredRange) {
  for (const auto& node : world().nodes()) {
    for (const auto& identity : node->identities()) {
      if (!identity.sybil) continue;
      const double off = std::abs(identity.claimed_offset.x);
      EXPECT_GE(off, 20.0);
      EXPECT_LE(off, 200.0);
    }
  }
}

TEST_F(SmallWorldTest, BeaconsFlowAndAreLogged) {
  const WorldStats& stats = world().stats();
  EXPECT_GT(stats.frames_sent, 1000u);
  EXPECT_GT(stats.frames_received, stats.frames_sent);  // broadcast fan-out
  std::size_t logged = 0;
  for (const auto& node : world().nodes()) logged += node->log().total_records();
  EXPECT_EQ(logged, stats.frames_received);
}

TEST_F(SmallWorldTest, ReceivedRssiRespectsSensitivity) {
  for (const auto& node : world().nodes()) {
    for (IdentityId id : node->log().identities_heard(0.0, 25.0, 1)) {
      for (const BeaconRecord& r : node->log().records(id, 0.0, 25.0)) {
        EXPECT_GE(r.rssi_dbm, -95.0);
      }
    }
  }
}

TEST_F(SmallWorldTest, NodesNeverHearThemselves) {
  for (const auto& node : world().nodes()) {
    std::set<IdentityId> own;
    for (const auto& identity : node->identities()) own.insert(identity.id);
    for (IdentityId heard : node->log().identities_heard(0.0, 25.0, 1)) {
      EXPECT_EQ(own.count(heard), 0u);
    }
  }
}

TEST_F(SmallWorldTest, DetectionTimesFollowConfig) {
  const std::vector<double> times = world().detection_times();
  ASSERT_EQ(times.size(), 1u);  // sim 25 s, first detection at 20 s
  EXPECT_DOUBLE_EQ(times[0], 20.0);
}

TEST_F(SmallWorldTest, ObservationWindowContents) {
  const World& w = world();
  const std::vector<NodeId> normals = w.normal_node_ids();
  ASSERT_FALSE(normals.empty());
  const ObservationWindow window = w.observe(normals.front(), 20.0);
  EXPECT_DOUBLE_EQ(window.t0, 0.0);
  EXPECT_DOUBLE_EQ(window.t1, 20.0);
  EXPECT_FALSE(window.neighbors.empty());
  for (const NeighborObservation& n : window.neighbors) {
    EXPECT_GE(n.rssi.size(), 4u);  // default min_samples
    EXPECT_EQ(n.rssi.size(), n.beacons.size());
    // Series times stay inside the window.
    EXPECT_GE(n.rssi.time(0), window.t0);
    EXPECT_LT(n.rssi.time(n.rssi.size() - 1), window.t1);
  }
  EXPECT_GT(window.estimated_density_per_km, 0.0);
  EXPECT_NE(window.find(window.neighbors.front().id), nullptr);
  EXPECT_EQ(window.find(99999), nullptr);
}

TEST_F(SmallWorldTest, TracesCoverSimTime) {
  for (const auto& node : world().nodes()) {
    ASSERT_FALSE(node->trace().empty());
    EXPECT_DOUBLE_EQ(node->trace().point(0).time_s, 0.0);
    EXPECT_GT(node->trace().points().back().time_s, 24.0);
  }
}

TEST_F(SmallWorldTest, SybilSeriesTrackMaliciousSeries) {
  // The load-bearing property (Observation 3): an observer's RSSI series
  // for a Sybil identity must hug the series of the attacker's genuine
  // identity far more closely than any other vehicle's series does.
  const World& w = world();
  const Node* attacker = nullptr;
  for (const auto& node : w.nodes()) {
    if (node->malicious()) attacker = node.get();
  }
  ASSERT_NE(attacker, nullptr);
  const IdentityId primary = attacker->identities()[0].id;
  const IdentityId sybil = attacker->identities()[1].id;

  int checked = 0;
  for (NodeId obs : w.normal_node_ids()) {
    const auto& log = w.node(obs).log();
    const auto primary_series = log.rssi_series(primary, 0.0, 20.0);
    const auto sybil_series = log.rssi_series(sybil, 0.0, 20.0);
    if (primary_series.size() < 50 || sybil_series.size() < 50) continue;
    // Compare sample means — same radio, same path, ±3 dB TX offsets; the
    // mean gap must stay within TX-power spread + noise.
    double mean_p = 0.0, mean_s = 0.0;
    for (double v : primary_series.values()) mean_p += v;
    for (double v : sybil_series.values()) mean_s += v;
    mean_p /= static_cast<double>(primary_series.size());
    mean_s /= static_cast<double>(sybil_series.size());
    EXPECT_LT(std::abs(mean_p - mean_s), 9.0);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(WorldLifecycle, RunTwiceThrows) {
  World w(small_config(3));
  w.run();
  EXPECT_THROW(w.run(), PreconditionError);
}

TEST(WorldLifecycle, DeterministicForFixedSeed) {
  World a(small_config(7));
  World b(small_config(7));
  a.run();
  b.run();
  EXPECT_EQ(a.stats().frames_sent, b.stats().frames_sent);
  EXPECT_EQ(a.stats().frames_received, b.stats().frames_received);
  EXPECT_EQ(a.stats().frames_collided, b.stats().frames_collided);
}

TEST(WorldLifecycle, SeedChangesOutcome) {
  World a(small_config(8));
  World b(small_config(9));
  a.run();
  b.run();
  EXPECT_NE(a.stats().frames_received, b.stats().frames_received);
}

}  // namespace
}  // namespace vp::sim
