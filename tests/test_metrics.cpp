#include "sim/metrics.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vp::sim {
namespace {

GroundTruth make_truth() {
  GroundTruth truth;
  truth.add(0, {.owner = 0, .sybil = false, .owner_malicious = false});
  truth.add(1, {.owner = 1, .sybil = false, .owner_malicious = false});
  truth.add(2, {.owner = 2, .sybil = false, .owner_malicious = true});
  truth.add(101, {.owner = 2, .sybil = true, .owner_malicious = true});
  truth.add(102, {.owner = 2, .sybil = true, .owner_malicious = true});
  return truth;
}

ObservationWindow make_window(std::vector<IdentityId> heard) {
  ObservationWindow window;
  window.t0 = 0.0;
  window.t1 = 20.0;
  for (IdentityId id : heard) {
    NeighborObservation n;
    n.id = id;
    window.neighbors.push_back(n);
  }
  return window;
}

TEST(ScoreDetection, PerfectDetection) {
  const GroundTruth truth = make_truth();
  const ObservationWindow window = make_window({0, 1, 2, 101, 102});
  const DetectionCounts counts =
      score_detection({2, 101, 102}, window, truth);
  EXPECT_EQ(counts.detected_true, 3u);
  EXPECT_EQ(counts.illegitimate, 3u);
  EXPECT_EQ(counts.detected_false, 0u);
  EXPECT_EQ(counts.legitimate, 2u);
  EXPECT_DOUBLE_EQ(counts.dr(), 1.0);
  EXPECT_DOUBLE_EQ(counts.fpr(), 0.0);
}

TEST(ScoreDetection, PartialDetectionAndFalsePositive) {
  const GroundTruth truth = make_truth();
  const ObservationWindow window = make_window({0, 1, 2, 101, 102});
  const DetectionCounts counts = score_detection({101, 0}, window, truth);
  EXPECT_EQ(counts.detected_true, 1u);
  EXPECT_EQ(counts.detected_false, 1u);
  EXPECT_DOUBLE_EQ(counts.dr(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(counts.fpr(), 0.5);
}

TEST(ScoreDetection, FlagsOutsideWindowIgnored) {
  const GroundTruth truth = make_truth();
  const ObservationWindow window = make_window({0, 1});
  const DetectionCounts counts =
      score_detection({101, 102, 2}, window, truth);  // none were heard
  EXPECT_EQ(counts.detected_true, 0u);
  EXPECT_EQ(counts.illegitimate, 0u);
  EXPECT_FALSE(counts.dr_defined());
}

TEST(ScoreDetection, DuplicateFlagsCountOnce) {
  const GroundTruth truth = make_truth();
  const ObservationWindow window = make_window({2, 101});
  const DetectionCounts counts =
      score_detection({101, 101, 101}, window, truth);
  EXPECT_EQ(counts.detected_true, 1u);
}

TEST(DetectionCountsTest, UndefinedRatesThrow) {
  DetectionCounts counts;
  EXPECT_FALSE(counts.dr_defined());
  EXPECT_FALSE(counts.fpr_defined());
  EXPECT_THROW(counts.dr(), PreconditionError);
  EXPECT_THROW(counts.fpr(), PreconditionError);
}

TEST(RateAveragerTest, AveragesOnlyDefinedEntries) {
  RateAverager averager;
  DetectionCounts a;
  a.detected_true = 1;
  a.illegitimate = 2;
  a.legitimate = 4;
  a.detected_false = 1;
  averager.add(a);  // DR 0.5, FPR 0.25

  DetectionCounts b;  // nothing heard: contributes to neither average
  averager.add(b);

  DetectionCounts c;
  c.detected_true = 2;
  c.illegitimate = 2;
  c.legitimate = 2;
  averager.add(c);  // DR 1.0, FPR 0.0

  EXPECT_EQ(averager.dr_samples(), 2u);
  EXPECT_EQ(averager.fpr_samples(), 2u);
  EXPECT_DOUBLE_EQ(averager.average_dr(), 0.75);
  EXPECT_DOUBLE_EQ(averager.average_fpr(), 0.125);
}

TEST(RateAveragerTest, EmptyAveragerIsZero) {
  RateAverager averager;
  EXPECT_DOUBLE_EQ(averager.average_dr(), 0.0);
  EXPECT_DOUBLE_EQ(averager.average_fpr(), 0.0);
}

// The run report must distinguish "no window had a defined rate" (null)
// from a true 0.0 average; the sample counts and optional variants carry
// that distinction.
TEST(RateAveragerTest, DefinedSampleCountsSeparateNoDataFromZero) {
  RateAverager averager;
  EXPECT_EQ(averager.defined_dr_samples(), 0u);
  EXPECT_EQ(averager.defined_fpr_samples(), 0u);
  EXPECT_FALSE(averager.average_dr_if_defined().has_value());
  EXPECT_FALSE(averager.average_fpr_if_defined().has_value());

  // A window with illegitimate identities but zero detections: DR is a
  // genuine 0.0, not "undefined".
  DetectionCounts miss;
  miss.illegitimate = 3;
  averager.add(miss);
  EXPECT_EQ(averager.defined_dr_samples(), 1u);
  EXPECT_EQ(averager.defined_fpr_samples(), 0u);
  ASSERT_TRUE(averager.average_dr_if_defined().has_value());
  EXPECT_DOUBLE_EQ(*averager.average_dr_if_defined(), 0.0);
  EXPECT_FALSE(averager.average_fpr_if_defined().has_value());

  DetectionCounts clean;
  clean.legitimate = 5;
  averager.add(clean);  // FPR 0.0 now defined too
  EXPECT_EQ(averager.defined_fpr_samples(), 1u);
  EXPECT_DOUBLE_EQ(*averager.average_fpr_if_defined(), 0.0);

  // The older spellings stay aliases of the canonical names.
  EXPECT_EQ(averager.dr_samples(), averager.defined_dr_samples());
  EXPECT_EQ(averager.fpr_samples(), averager.defined_fpr_samples());
}

// Labelled rate channels: one averager can keep e.g. "single" and
// "fused" accuracy series side by side without the accumulators
// bleeding into each other; the no-channel API stays an alias of the
// default "" channel.
TEST(RateAveragerTest, LabelledChannelsAccumulateIndependently) {
  RateAverager averager;

  DetectionCounts hit;
  hit.detected_true = 2;
  hit.illegitimate = 2;
  hit.legitimate = 4;
  averager.add("single", hit);  // DR 1.0, FPR 0.0

  DetectionCounts miss;
  miss.illegitimate = 2;
  miss.detected_false = 1;
  miss.legitimate = 4;
  averager.add("fused", miss);  // DR 0.0, FPR 0.25

  EXPECT_DOUBLE_EQ(averager.average_dr("single"), 1.0);
  EXPECT_DOUBLE_EQ(averager.average_fpr("single"), 0.0);
  EXPECT_DOUBLE_EQ(averager.average_dr("fused"), 0.0);
  EXPECT_DOUBLE_EQ(averager.average_fpr("fused"), 0.25);
  EXPECT_EQ(averager.defined_dr_samples("single"), 1u);
  EXPECT_EQ(averager.defined_dr_samples("fused"), 1u);

  // A channel nothing was added to reports no data, not zeros.
  EXPECT_EQ(averager.defined_dr_samples("cpvsad"), 0u);
  EXPECT_FALSE(averager.average_dr_if_defined("cpvsad").has_value());

  // Only materialised channels are listed, sorted.
  const std::vector<std::string> channels = averager.channels();
  ASSERT_EQ(channels.size(), 2u);
  EXPECT_EQ(channels[0], "fused");
  EXPECT_EQ(channels[1], "single");
}

TEST(RateAveragerTest, DefaultChannelAliasesUnlabelledApi) {
  RateAverager averager;
  DetectionCounts counts;
  counts.detected_true = 1;
  counts.illegitimate = 2;
  averager.add(counts);  // unlabelled → channel ""

  EXPECT_DOUBLE_EQ(averager.average_dr(""), averager.average_dr());
  EXPECT_EQ(averager.defined_dr_samples(""), averager.defined_dr_samples());
  ASSERT_EQ(averager.channels().size(), 1u);
  EXPECT_EQ(averager.channels()[0], "");

  // An entry with neither rate defined materialises no channel.
  RateAverager empty;
  empty.add("ghost", DetectionCounts{});
  EXPECT_TRUE(empty.channels().empty());
}

}  // namespace
}  // namespace vp::sim
