// Tests for the fork/join pool behind the parallel comparison engine
// (common/thread_pool.h): coverage, worker-id bounds, serial fallback,
// nesting, exception propagation and reuse.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace vp {
namespace {

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{16}}) {
    for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{7}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(count);
      parallel_for(threads, count,
                   [&](std::size_t, std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ParallelFor, WorkerIdsStayBelowRequestedParallelism) {
  const std::size_t threads = 4;
  std::atomic<std::size_t> max_seen{0};
  parallel_for(threads, 500, [&](std::size_t worker, std::size_t) {
    std::size_t prev = max_seen.load();
    while (worker > prev && !max_seen.compare_exchange_weak(prev, worker)) {
    }
  });
  EXPECT_LT(max_seen.load(), threads);
}

TEST(ParallelFor, SerialModeRunsOnCallingThreadInOrder) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for(1, 20, [&](std::size_t worker, std::size_t i) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, ThreadsZeroMeansHardware) {
  // Just the contract that it runs everything; the actual width depends on
  // the machine.
  std::vector<std::atomic<int>> hits(64);
  parallel_for(0, 64, [&](std::size_t, std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(4, 100,
                   [&](std::size_t, std::size_t i) {
                     if (i == 17) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must stay usable afterwards.
  std::atomic<int> total{0};
  parallel_for(4, 10, [&](std::size_t, std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 10);
}

TEST(ParallelFor, NestedCallsRunSeriallyWithoutDeadlock) {
  std::vector<std::atomic<int>> hits(8 * 8);
  parallel_for(4, 8, [&](std::size_t, std::size_t i) {
    parallel_for(4, 8, [&](std::size_t inner_worker, std::size_t j) {
      EXPECT_EQ(inner_worker, 0u);  // nested calls degrade to serial
      ++hits[i * 8 + j];
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ReusableAcrossManyCalls) {
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    parallel_for(8, 40, [&](std::size_t, std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 50u * 40u);
}

TEST(ThreadPool, DedicatedPoolRunsAndJoins) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, 3, [&](std::size_t worker, std::size_t i) {
    EXPECT_LT(worker, 3u);
    ++hits[i];
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SharedPoolHasAtLeastTwoWorkers) {
  // The shared pool is deliberately floored so the parallel machinery is
  // exercised even on single-core CI machines.
  EXPECT_GE(ThreadPool::shared().workers(), 2u);
}

TEST(ThreadPoolStats, CountsDispatchedJobsAndTasks) {
  ThreadPool pool(3);
  ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.workers, 3u);
  EXPECT_EQ(stats.jobs, 0u);
  EXPECT_EQ(stats.tasks, 0u);
  EXPECT_EQ(stats.submit_wait_ns, 0u);
  ASSERT_EQ(stats.worker_busy_ns.size(), 3u);

  std::atomic<std::size_t> total{0};
  const auto work = [&](std::size_t, std::size_t) {
    for (volatile int spin = 0; spin < 500; ++spin) {
    }
    ++total;
  };
  pool.parallel_for(100, 3, work);
  pool.parallel_for(40, 3, work);
  stats = pool.stats();
  EXPECT_EQ(total.load(), 140u);
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_EQ(stats.tasks, 140u);
  // The calling thread participates as worker 0 in every dispatched job.
  EXPECT_GT(stats.worker_busy_ns[0], 0u);

  pool.reset_stats();
  stats = pool.stats();
  EXPECT_EQ(stats.jobs, 0u);
  EXPECT_EQ(stats.tasks, 0u);
  EXPECT_EQ(stats.submit_wait_ns, 0u);
  for (std::uint64_t ns : stats.worker_busy_ns) EXPECT_EQ(ns, 0u);
}

TEST(ThreadPoolStats, SerialFastPathsAreNotCounted) {
  // Documented contract: the stats cover pool-dispatched jobs only.
  ThreadPool pool(3);
  pool.parallel_for(1, 3, [](std::size_t, std::size_t) {});   // count == 1
  pool.parallel_for(10, 1, [](std::size_t, std::size_t) {});  // serial width
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.jobs, 0u);
  EXPECT_EQ(stats.tasks, 0u);
}

TEST(HardwareThreads, AtLeastOne) { EXPECT_GE(hardware_threads(), 1u); }

}  // namespace
}  // namespace vp
