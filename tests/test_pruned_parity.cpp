// End-to-end regressions for the pruned comparison path (DESIGN.md §11):
// routing detection through the lower-bound cascade (exact_mode = false,
// SIMD on) must leave every externally visible verdict — suspects and the
// (a, b, comparable, flagged) pair set — bit-identical to the exact sweep
// through the full serving stack: StreamEngine rounds, DetectionService
// fleet rounds, and checkpoint kill/restore in pruned mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/detector.h"
#include "service/checkpoint.h"
#include "service/service.h"
#include "sim/world.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"

namespace vp {
namespace {

struct Rx {
  double time_s;
  IdentityId id;
  double rssi_dbm;
};

std::vector<Rx> arrival_stream(const sim::RssiLog& log, double horizon) {
  std::vector<Rx> beacons;
  for (IdentityId id : log.identities_heard(0.0, horizon, 1)) {
    for (const sim::BeaconRecord& r : log.records(id, 0.0, horizon)) {
      beacons.push_back({r.time_s, id, r.rssi_dbm});
    }
  }
  std::sort(beacons.begin(), beacons.end(), [](const Rx& a, const Rx& b) {
    return a.time_s != b.time_s ? a.time_s < b.time_s : a.id < b.id;
  });
  return beacons;
}

// Verdict equality: suspects and the flagged/comparable pair set. The
// pruned path never computes distances it can classify from bounds, so
// raw/normalized are compared only where the ISSUE requires — verdicts.
void expect_verdicts_identical(const std::vector<core::PairDistance>& pruned,
                               const std::vector<core::PairDistance>& exact) {
  ASSERT_EQ(pruned.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(pruned[i].a, exact[i].a);
    EXPECT_EQ(pruned[i].b, exact[i].b);
    EXPECT_EQ(pruned[i].comparable, exact[i].comparable) << "pair " << i;
    EXPECT_EQ(pruned[i].flagged, exact[i].flagged) << "pair " << i;
  }
}

stream::StreamEngineConfig engine_config_for(
    const sim::ScenarioConfig& sim_config, std::size_t threads, bool exact) {
  stream::StreamEngineConfig config;
  config.observation_time_s = sim_config.observation_time_s;
  config.round_period_s = sim_config.detection_period_s;
  config.density_estimation_period_s =
      sim_config.density_estimation_period_s;
  config.max_transmission_range_m = sim_config.max_transmission_range_m;
  config.min_samples = 4;
  config.detector = core::tuned_simulation_options(threads);
  config.detector.comparison.exact_mode = exact;
  config.detector.comparison.use_simd = true;
  return config;
}

sim::World& shared_world() {
  static sim::World* world = [] {
    sim::ScenarioConfig config;
    config.density_per_km = 15.0;
    config.sim_time_s = 60.0;
    config.seed = 29;
    auto* w = new sim::World(config);
    w->run();
    return w;
  }();
  return *world;
}

sim::ScenarioConfig shared_config() {
  sim::ScenarioConfig config;
  config.density_per_km = 15.0;
  config.sim_time_s = 60.0;
  config.seed = 29;
  return config;
}

std::vector<stream::StreamRound> run_engine(
    const stream::StreamEngineConfig& config, const std::vector<Rx>& trace,
    double end_time) {
  std::vector<stream::StreamRound> rounds;
  stream::StreamEngine engine(config);
  engine.set_round_callback(
      [&rounds](const stream::StreamRound& r) { rounds.push_back(r); });
  for (const Rx& rx : trace) engine.ingest(rx.id, rx.time_s, rx.rssi_dbm);
  engine.advance_to(end_time);
  return rounds;
}

class PrunedParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrunedParity, StreamEngineRoundsMatchExactMode) {
  const std::size_t threads = GetParam();
  const sim::ScenarioConfig sim_config = shared_config();
  sim::World& world = shared_world();
  const double end_time = world.detection_times().back();
  const NodeId observer = world.normal_node_ids().front();
  const std::vector<Rx> trace =
      arrival_stream(world.node(observer).log(), sim_config.sim_time_s + 1.0);

  const std::vector<stream::StreamRound> exact =
      run_engine(engine_config_for(sim_config, threads, true), trace,
                 end_time);
  const std::vector<stream::StreamRound> pruned =
      run_engine(engine_config_for(sim_config, threads, false), trace,
                 end_time);

  ASSERT_EQ(pruned.size(), exact.size());
  ASSERT_GE(exact.size(), 3u);
  for (std::size_t r = 0; r < exact.size(); ++r) {
    EXPECT_EQ(pruned[r].time_s, exact[r].time_s);
    EXPECT_EQ(pruned[r].density_per_km, exact[r].density_per_km);
    EXPECT_EQ(pruned[r].suspects, exact[r].suspects) << "round " << r;
    expect_verdicts_identical(pruned[r].pairs, exact[r].pairs);
  }
}

// Kill/restore mid-stream in pruned mode: the checkpoint round-trips
// through the wire format and the restored engine's remaining rounds are
// bit-identical to the uninterrupted pruned run (and verdict-identical to
// exact mode, by the test above).
TEST_P(PrunedParity, CheckpointKillRestoreInPrunedMode) {
  const std::size_t threads = GetParam();
  const sim::ScenarioConfig sim_config = shared_config();
  sim::World& world = shared_world();
  const double end_time = world.detection_times().back();
  const NodeId observer = world.normal_node_ids().front();
  const std::vector<Rx> trace =
      arrival_stream(world.node(observer).log(), sim_config.sim_time_s + 1.0);
  const stream::StreamEngineConfig config =
      engine_config_for(sim_config, threads, false);

  const std::vector<stream::StreamRound> uninterrupted =
      run_engine(config, trace, end_time);
  ASSERT_GE(uninterrupted.size(), 3u);

  for (const std::size_t cut :
       {trace.size() / 3, trace.size() / 2, 2 * trace.size() / 3}) {
    std::vector<stream::StreamRound> rounds;
    const auto record = [&rounds](const stream::StreamRound& r) {
      rounds.push_back(r);
    };
    stream::StreamEngine first(config);
    first.set_round_callback(record);
    for (std::size_t i = 0; i < cut; ++i) {
      first.ingest(trace[i].id, trace[i].time_s, trace[i].rssi_dbm);
    }
    const std::vector<std::uint8_t> bytes =
        stream::encode_checkpoint(first.checkpoint());
    stream::EngineCheckpoint restored;
    std::string error;
    ASSERT_TRUE(stream::decode_checkpoint(bytes, &restored, &error)) << error;
    stream::StreamEngine second(config, restored);
    second.set_round_callback(record);
    for (std::size_t i = cut; i < trace.size(); ++i) {
      second.ingest(trace[i].id, trace[i].time_s, trace[i].rssi_dbm);
    }
    second.advance_to(end_time);

    ASSERT_EQ(rounds.size(), uninterrupted.size()) << "cut=" << cut;
    for (std::size_t r = 0; r < rounds.size(); ++r) {
      EXPECT_EQ(rounds[r].time_s, uninterrupted[r].time_s);
      EXPECT_EQ(rounds[r].suspects, uninterrupted[r].suspects);
      ASSERT_EQ(rounds[r].pairs.size(), uninterrupted[r].pairs.size());
      for (std::size_t i = 0; i < rounds[r].pairs.size(); ++i) {
        // Same mode both sides, so full bitwise parity is required here.
        EXPECT_EQ(rounds[r].pairs[i].raw, uninterrupted[r].pairs[i].raw);
        EXPECT_EQ(rounds[r].pairs[i].normalized,
                  uninterrupted[r].pairs[i].normalized);
        EXPECT_EQ(rounds[r].pairs[i].flagged,
                  uninterrupted[r].pairs[i].flagged);
      }
    }
  }
}

TEST_P(PrunedParity, DetectionServiceFleetMatchesExactMode) {
  const std::size_t threads = GetParam();
  const sim::ScenarioConfig sim_config = shared_config();
  sim::World& world = shared_world();
  const double end_time = world.detection_times().back();
  std::vector<NodeId> observers = world.normal_node_ids();
  observers.resize(std::min<std::size_t>(observers.size(), 4));

  struct FleetRx {
    service::SessionId session;
    Rx rx;
  };
  std::vector<FleetRx> fleet;
  for (NodeId observer : observers) {
    for (const Rx& rx : arrival_stream(world.node(observer).log(),
                                       sim_config.sim_time_s + 1.0)) {
      fleet.push_back({static_cast<service::SessionId>(observer), rx});
    }
  }
  std::sort(fleet.begin(), fleet.end(), [](const FleetRx& a, const FleetRx& b) {
    if (a.rx.time_s != b.rx.time_s) return a.rx.time_s < b.rx.time_s;
    if (a.session != b.session) return a.session < b.session;
    return a.rx.id < b.rx.id;
  });

  const auto run_service = [&](bool exact) {
    service::ServiceConfig config;
    config.shards = 4;
    config.threads = threads;
    config.engine = engine_config_for(sim_config, 1, exact);
    std::map<service::SessionId, std::vector<stream::StreamRound>> rounds;
    service::DetectionService service(config);
    service.set_round_callback([&rounds](const service::SessionRound& r) {
      rounds[r.session].push_back(r.round);
    });
    for (const FleetRx& frx : fleet) {
      EXPECT_EQ(service.ingest(frx.session, frx.rx.id, frx.rx.time_s,
                               frx.rx.rssi_dbm),
                service::DetectionService::Admission::kAccepted);
    }
    service.advance_all_to(end_time);
    return rounds;
  };

  const auto exact = run_service(true);
  const auto pruned = run_service(false);
  ASSERT_EQ(pruned.size(), exact.size());
  for (const auto& [session, exact_rounds] : exact) {
    ASSERT_TRUE(pruned.count(session));
    const std::vector<stream::StreamRound>& pruned_rounds =
        pruned.at(session);
    ASSERT_EQ(pruned_rounds.size(), exact_rounds.size());
    for (std::size_t r = 0; r < exact_rounds.size(); ++r) {
      EXPECT_EQ(pruned_rounds[r].suspects, exact_rounds[r].suspects);
      expect_verdicts_identical(pruned_rounds[r].pairs,
                                exact_rounds[r].pairs);
    }
  }
}

// Service-level kill/restore with pruned engines: checkpoint the whole
// fleet mid-run, restore, and finish — delivered rounds must equal the
// uninterrupted pruned service's bit for bit.
TEST(PrunedParity, ServiceCheckpointKillRestoreInPrunedMode) {
  const sim::ScenarioConfig sim_config = shared_config();
  sim::World& world = shared_world();
  const double end_time = world.detection_times().back();
  std::vector<NodeId> observers = world.normal_node_ids();
  observers.resize(std::min<std::size_t>(observers.size(), 3));

  struct FleetRx {
    service::SessionId session;
    Rx rx;
  };
  std::vector<FleetRx> fleet;
  for (NodeId observer : observers) {
    for (const Rx& rx : arrival_stream(world.node(observer).log(),
                                       sim_config.sim_time_s + 1.0)) {
      fleet.push_back({static_cast<service::SessionId>(observer), rx});
    }
  }
  std::sort(fleet.begin(), fleet.end(), [](const FleetRx& a, const FleetRx& b) {
    if (a.rx.time_s != b.rx.time_s) return a.rx.time_s < b.rx.time_s;
    if (a.session != b.session) return a.session < b.session;
    return a.rx.id < b.rx.id;
  });

  service::ServiceConfig config;
  config.shards = 2;
  config.threads = 1;
  config.engine = engine_config_for(sim_config, 1, false);

  using Rounds = std::map<service::SessionId, std::vector<stream::StreamRound>>;
  const auto collect = [](Rounds& rounds) {
    return [&rounds](const service::SessionRound& r) {
      rounds[r.session].push_back(r.round);
    };
  };

  Rounds uninterrupted;
  {
    service::DetectionService service(config);
    service.set_round_callback(collect(uninterrupted));
    for (const FleetRx& frx : fleet) {
      service.ingest(frx.session, frx.rx.id, frx.rx.time_s, frx.rx.rssi_dbm);
    }
    service.advance_all_to(end_time);
  }

  Rounds killed;
  const std::size_t cut = fleet.size() / 2;
  {
    service::DetectionService first(config);
    first.set_round_callback(collect(killed));
    for (std::size_t i = 0; i < cut; ++i) {
      first.ingest(fleet[i].session, fleet[i].rx.id, fleet[i].rx.time_s,
                   fleet[i].rx.rssi_dbm);
    }
    first.pump();  // drain the queue; checkpoint() requires it empty
    const std::vector<std::uint8_t> bytes =
        service::encode_checkpoint(first.checkpoint());
    service::ServiceCheckpoint restored;
    std::string error;
    ASSERT_TRUE(service::decode_checkpoint(bytes, &restored, &error))
        << error;
    service::DetectionService second(config, restored);
    second.set_round_callback(collect(killed));
    for (std::size_t i = cut; i < fleet.size(); ++i) {
      second.ingest(fleet[i].session, fleet[i].rx.id, fleet[i].rx.time_s,
                    fleet[i].rx.rssi_dbm);
    }
    second.advance_all_to(end_time);
  }

  ASSERT_EQ(killed.size(), uninterrupted.size());
  for (const auto& [session, expected] : uninterrupted) {
    ASSERT_TRUE(killed.count(session));
    const std::vector<stream::StreamRound>& got = killed.at(session);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t r = 0; r < expected.size(); ++r) {
      EXPECT_EQ(got[r].time_s, expected[r].time_s);
      EXPECT_EQ(got[r].suspects, expected[r].suspects);
      ASSERT_EQ(got[r].pairs.size(), expected[r].pairs.size());
      for (std::size_t i = 0; i < expected[r].pairs.size(); ++i) {
        EXPECT_EQ(got[r].pairs[i].raw, expected[r].pairs[i].raw);
        EXPECT_EQ(got[r].pairs[i].normalized,
                  expected[r].pairs[i].normalized);
        EXPECT_EQ(got[r].pairs[i].flagged, expected[r].pairs[i].flagged);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PrunedParity,
                         ::testing::Values(0u, 1u, 4u));

}  // namespace
}  // namespace vp
