// StreamEngine invariants (DESIGN.md §8):
//   * Parity — on traces the rings fully retain, every confirmation round
//     is bit-identical (suspects, pair list, density) to the batch
//     VoiceprintDetector on the same window, at every thread count, over
//     both the highway simulator and the field-test generator.
//   * Bounded memory — under 10× overload the identity cap and ring
//     capacity are never exceeded, every shed beacon is counted, and the
//     engine keeps producing rounds.
#include "stream/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/detector.h"
#include "fieldtest/scenario3.h"
#include "sim/world.h"

namespace vp::stream {
namespace {

struct Rx {
  double time_s;
  IdentityId id;
  double rssi_dbm;
};

// One radio's receptions in arrival order, merged from the per-identity
// logs by (time, id).
std::vector<Rx> arrival_stream(const sim::RssiLog& log, double horizon) {
  std::vector<Rx> beacons;
  for (IdentityId id : log.identities_heard(0.0, horizon, 1)) {
    for (const sim::BeaconRecord& r : log.records(id, 0.0, horizon)) {
      beacons.push_back({r.time_s, id, r.rssi_dbm});
    }
  }
  std::sort(beacons.begin(), beacons.end(), [](const Rx& a, const Rx& b) {
    return a.time_s != b.time_s ? a.time_s < b.time_s : a.id < b.id;
  });
  return beacons;
}

void expect_pairs_identical(const std::vector<core::PairDistance>& streamed,
                            const std::vector<core::PairDistance>& batch) {
  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(streamed[i].a, batch[i].a);
    EXPECT_EQ(streamed[i].b, batch[i].b);
    EXPECT_EQ(streamed[i].comparable, batch[i].comparable);
    EXPECT_EQ(streamed[i].raw, batch[i].raw);                // bitwise, no NEAR
    EXPECT_EQ(streamed[i].normalized, batch[i].normalized);
  }
}

class StreamEngineSimParity : public ::testing::TestWithParam<std::size_t> {};

// The tentpole invariant over a simulator trace: stream the observer's
// beacons, and every round must reproduce the batch detector bit for bit.
TEST_P(StreamEngineSimParity, RoundsMatchBatchDetector) {
  const std::size_t threads = GetParam();
  sim::ScenarioConfig config;
  config.density_per_km = 15.0;
  config.sim_time_s = 60.0;
  config.seed = 11;
  sim::World world(config);
  world.run();

  const std::vector<double> detection_times = world.detection_times();
  const std::vector<NodeId> normals = world.normal_node_ids();
  ASSERT_GE(normals.size(), 2u);
  constexpr std::size_t kMinSamples = 4;

  for (NodeId observer : {normals.front(), normals.back()}) {
    StreamEngineConfig engine_config;
    engine_config.observation_time_s = config.observation_time_s;
    engine_config.round_period_s = config.detection_period_s;
    engine_config.density_estimation_period_s =
        config.density_estimation_period_s;
    engine_config.max_transmission_range_m = config.max_transmission_range_m;
    engine_config.min_samples = kMinSamples;
    engine_config.detector = core::tuned_simulation_options(threads);
    StreamEngine engine(engine_config);

    core::VoiceprintDetector batch(core::tuned_simulation_options(threads));
    std::size_t rounds_seen = 0;
    engine.set_round_callback([&](const StreamRound& round) {
      ASSERT_LT(rounds_seen, detection_times.size());
      // Round instants are bit-equal to World::detection_times.
      EXPECT_EQ(round.time_s, detection_times[rounds_seen]);
      const sim::ObservationWindow window =
          world.observe(observer, round.time_s, kMinSamples);
      const std::vector<IdentityId> expected = batch.detect_window(window);
      EXPECT_EQ(round.density_per_km, window.estimated_density_per_km);
      EXPECT_EQ(round.identities_heard, window.neighbors.size());
      EXPECT_EQ(round.suspects, expected);
      expect_pairs_identical(round.pairs, batch.last_all_pairs());
      ++rounds_seen;
    });

    for (const Rx& rx : arrival_stream(world.node(observer).log(),
                                       config.sim_time_s + 1.0)) {
      engine.ingest(rx.id, rx.time_s, rx.rssi_dbm);
    }
    engine.advance_to(detection_times.back());
    EXPECT_EQ(rounds_seen, detection_times.size());
    EXPECT_EQ(engine.stats().rounds, detection_times.size());
    EXPECT_EQ(engine.stats().beacons_offered, engine.stats().beacons_ingested);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, StreamEngineSimParity,
                         ::testing::Values(1u, 2u, 0u));

// Same invariant over the field-test generator's traces (node 3, the
// observer the paper reports), with the field test's fixed density.
TEST(StreamEngine, FieldTestReplayParity) {
  ft::FieldTestConfig config;
  config.area = ft::Area::kCampus;
  config.duration_s = 240.0;
  const ft::FieldTestData data = ft::run_field_test(config);
  const sim::RssiLog& log = data.logs.at(ft::kNormalNode3);
  constexpr std::size_t kMinSamples = 4;

  StreamEngineConfig engine_config;
  engine_config.observation_time_s = config.observation_time_s;
  engine_config.round_period_s = config.detection_period_s;
  engine_config.min_samples = kMinSamples;
  engine_config.staleness_horizon_s = 120.0;  // a red light is not goodbye
  engine_config.detector.fixed_density_per_km = 4.0;  // four-vehicle fleet
  StreamEngine engine(engine_config);

  core::VoiceprintDetector batch(engine_config.detector);
  std::size_t rounds_seen = 0;
  engine.set_round_callback([&](const StreamRound& round) {
    const double t0 = round.time_s - config.observation_time_s;
    std::vector<core::NamedSeries> series;
    for (IdentityId id :
         log.identities_heard(t0, round.time_s, kMinSamples)) {
      series.emplace_back(id, log.rssi_series(id, t0, round.time_s));
    }
    const std::vector<IdentityId> expected =
        batch.detect_series(series, round.density_per_km);
    EXPECT_EQ(round.identities_heard, series.size());
    EXPECT_EQ(round.suspects, expected);
    expect_pairs_identical(round.pairs, batch.last_all_pairs());
    ++rounds_seen;
  });

  for (const Rx& rx : arrival_stream(log, data.duration_s + 1.0)) {
    engine.ingest(rx.id, rx.time_s, rx.rssi_dbm);
  }
  engine.advance_to(data.duration_s);
  EXPECT_GE(rounds_seen, 3u);
  EXPECT_GT(engine.stats().beacons_ingested, 0u);
}

// 10× overload: offered load is ten times the admission cap, rings are a
// fraction of a window, the identity cap is half the offered identities.
// The engine must shed — visibly — and never exceed a single bound.
TEST(StreamEngine, OverloadStaysBoundedAndCountsShedWork) {
  constexpr std::size_t kIdentities = 40;
  constexpr double kRateHz = 10.0;
  constexpr double kDuration = 50.0;

  StreamEngineConfig config;
  config.max_ingest_rate_hz = kIdentities * kRateHz / 10.0;  // 10× overload
  config.ring_capacity = 16;
  config.max_identities = kIdentities / 2;
  config.staleness_horizon_s = 25.0;
  StreamEngine engine(config);

  Rng rng(99);
  std::vector<Rx> beacons;
  for (std::size_t i = 0; i < kIdentities; ++i) {
    double shadow = 0.0;
    for (double t = rng.uniform(0.0, 0.1); t < kDuration; t += 1.0 / kRateHz) {
      shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
      beacons.push_back({t, static_cast<IdentityId>(i + 1),
                         -70.0 + shadow});
    }
  }
  std::sort(beacons.begin(), beacons.end(), [](const Rx& a, const Rx& b) {
    return a.time_s != b.time_s ? a.time_s < b.time_s : a.id < b.id;
  });

  std::uint64_t accepted = 0;
  for (const Rx& rx : beacons) {
    const auto admission = engine.ingest(rx.id, rx.time_s, rx.rssi_dbm);
    if (admission == StreamEngine::Admission::kAccepted) ++accepted;
    ASSERT_LE(engine.identities_tracked(), config.max_identities);
  }
  engine.advance_to(kDuration);

  const StreamEngine::Stats& stats = engine.stats();
  EXPECT_EQ(stats.beacons_offered, beacons.size());
  EXPECT_EQ(stats.beacons_ingested, accepted);
  // Conservation: every offered beacon is accounted for.
  EXPECT_EQ(stats.beacons_offered,
            stats.beacons_ingested + stats.beacons_shed_rate_limited +
                stats.beacons_shed_identity_cap +
                stats.beacons_shed_out_of_order);
  EXPECT_GT(stats.beacons_shed_rate_limited, 0u);
  EXPECT_GT(stats.beacons_shed_identity_cap, 0u);
  // Graceful degradation, not a stall: rounds kept coming (t = 20, 40).
  EXPECT_EQ(stats.rounds, 2u);
  ASSERT_TRUE(engine.last_round().has_value());
  EXPECT_EQ(engine.last_round()->time_s, 40.0);
}

TEST(StreamEngine, ShedsOutOfOrderAndLateBeacons) {
  StreamEngineConfig config;
  StreamEngine engine(config);
  EXPECT_EQ(engine.ingest(1, 5.0, -70.0), StreamEngine::Admission::kAccepted);
  // Per-identity time regression.
  EXPECT_EQ(engine.ingest(1, 4.0, -70.0),
            StreamEngine::Admission::kShedOutOfOrder);
  // Equal timestamps are fine (CCH + SCH), other identities unaffected.
  EXPECT_EQ(engine.ingest(1, 5.0, -71.0), StreamEngine::Admission::kAccepted);
  EXPECT_EQ(engine.ingest(2, 4.5, -80.0), StreamEngine::Admission::kAccepted);
  // Crossing a round boundary closes earlier windows.
  engine.advance_to(20.0);
  EXPECT_EQ(engine.stats().rounds, 1u);
  EXPECT_EQ(engine.ingest(3, 19.0, -75.0),
            StreamEngine::Admission::kShedOutOfOrder);
  EXPECT_EQ(engine.ingest(3, 20.0, -75.0), StreamEngine::Admission::kAccepted);
  EXPECT_EQ(engine.stats().beacons_shed_out_of_order, 2u);
}

TEST(StreamEngine, ExpiresStaleIdentities) {
  StreamEngineConfig config;
  config.staleness_horizon_s = 25.0;
  StreamEngine engine(config);
  engine.ingest(1, 1.0, -70.0);
  engine.ingest(2, 1.0, -72.0);
  EXPECT_EQ(engine.identities_tracked(), 2u);
  // Identity 2 keeps beaconing; identity 1 goes silent.
  for (double t = 2.0; t <= 44.0; t += 1.0) engine.ingest(2, t, -72.0);
  engine.advance_to(40.0);  // round at 40: identity 1 silent for 39 s
  EXPECT_EQ(engine.identities_tracked(), 1u);
  EXPECT_EQ(engine.stats().identities_expired, 1u);
}

// A beacon landing exactly on a round boundary belongs to the next
// window, exactly like the batch half-open cut.
TEST(StreamEngine, RoundBoundaryIsHalfOpen) {
  StreamEngineConfig config;
  config.min_samples = 1;
  StreamEngine engine(config);
  for (double t = 1.0; t < 20.0; t += 1.0) engine.ingest(7, t, -70.0);
  std::vector<std::size_t> heard;
  engine.set_round_callback([&](const StreamRound& round) {
    heard.push_back(round.identities_heard);
  });
  engine.ingest(7, 20.0, -70.0);  // triggers the round at t=20 first
  ASSERT_EQ(heard.size(), 1u);
  EXPECT_EQ(heard[0], 1u);
  ASSERT_TRUE(engine.last_round().has_value());
  // The t=20 sample is outside [0, 20): 19 samples in the window.
  EXPECT_EQ(engine.last_round()->pairs.size(), 0u);
}

// A beacon at exactly t = 0 is the earliest admissible sample and lands
// inside the first window [0, 20).
TEST(StreamEngine, BeaconAtTimeZeroIsInFirstWindow) {
  StreamEngineConfig config;
  config.min_samples = 1;
  StreamEngine engine(config);
  EXPECT_EQ(engine.ingest(3, 0.0, -70.0), StreamEngine::Admission::kAccepted);
  engine.advance_to(20.0);
  const StreamEngine::Stats& stats = engine.stats();
  EXPECT_EQ(stats.rounds, 1u);
  ASSERT_TRUE(engine.last_round().has_value());
  EXPECT_EQ(engine.last_round()->time_s, 20.0);
  EXPECT_EQ(engine.last_round()->identities_heard, 1u);
  // Eq. 9 counts only the trailing estimation period [10, 20): the t=0
  // beacon is in the observation window but not the density window.
  EXPECT_EQ(engine.last_round()->density_per_km, 0.0);
}

// An engine that never hears anything still closes its rounds: empty
// windows, zero density, no suspects — and no crash or stall.
TEST(StreamEngine, EmptyTraceProducesEmptyRounds) {
  StreamEngineConfig config;
  StreamEngine engine(config);
  std::vector<StreamRound> rounds;
  engine.set_round_callback(
      [&](const StreamRound& round) { rounds.push_back(round); });
  engine.advance_to(60.0);
  ASSERT_EQ(rounds.size(), 3u);  // t = 20, 40, 60
  for (const StreamRound& round : rounds) {
    EXPECT_EQ(round.identities_heard, 0u);
    EXPECT_TRUE(round.suspects.empty());
    EXPECT_TRUE(round.pairs.empty());
    EXPECT_EQ(round.density_per_km, 0.0);
  }
  EXPECT_EQ(engine.stats().beacons_offered, 0u);
}

// A round falling due exactly on the final beacon's timestamp runs
// before that beacon is admitted, so the beacon is outside the closing
// window — and a subsequent advance_to the same instant is idempotent.
TEST(StreamEngine, RoundDueExactlyOnFinalBeaconTimestamp) {
  StreamEngineConfig config;
  config.min_samples = 1;
  StreamEngine engine(config);
  std::vector<StreamRound> rounds;
  engine.set_round_callback(
      [&](const StreamRound& round) { rounds.push_back(round); });
  for (double t = 1.0; t <= 39.0; t += 1.0) engine.ingest(5, t, -70.0);
  // The trace's last beacon lands exactly at the round instant: rounds at
  // 20 and 40 both close first, then the beacon is accepted into [40, ·).
  EXPECT_EQ(engine.ingest(5, 40.0, -70.0), StreamEngine::Admission::kAccepted);
  ASSERT_EQ(rounds.size(), 2u);
  EXPECT_EQ(rounds[0].time_s, 20.0);
  EXPECT_EQ(rounds[1].time_s, 40.0);
  // [20, 40) holds the beacons at 20..39, not the one at 40.
  EXPECT_EQ(rounds[1].identities_heard, 1u);
  engine.advance_to(40.0);  // idempotent: no third round
  EXPECT_EQ(engine.stats().rounds, 2u);
  EXPECT_EQ(engine.stats().beacons_ingested, 40u);
}

}  // namespace
}  // namespace vp::stream
