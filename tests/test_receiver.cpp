#include "radio/receiver.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"

namespace vp::radio {
namespace {

TEST(ReceiverTest, BelowSensitivityNotDecoded) {
  const Receiver rx;
  EXPECT_FALSE(rx.measure(-95.01).has_value());
  EXPECT_TRUE(rx.measure(-95.0).has_value());
  EXPECT_TRUE(rx.measure(-60.0).has_value());
}

TEST(ReceiverTest, IntegerQuantization) {
  const Receiver rx({.quantization_db = 1.0});
  EXPECT_DOUBLE_EQ(rx.measure(-80.4).value(), -80.0);
  EXPECT_DOUBLE_EQ(rx.measure(-80.6).value(), -81.0);
}

TEST(ReceiverTest, FlooredAtSensitivity) {
  // A decodable frame never reports below the hardware floor — the paper's
  // far-node traces pin at −95 dBm (Section VI-B).
  const Receiver rx({.sensitivity_dbm = -95.0, .quantization_db = 1.0});
  const auto rssi = rx.measure(-94.9);
  ASSERT_TRUE(rssi.has_value());
  EXPECT_DOUBLE_EQ(*rssi, -95.0);  // rounds to −95, floor keeps it there
}

TEST(ReceiverTest, NoQuantization) {
  const Receiver rx({.quantization_db = 0.0});
  EXPECT_DOUBLE_EQ(rx.measure(-80.37).value(), -80.37);
}

TEST(ReceiverTest, CaptureCleanChannel) {
  const Receiver rx;
  EXPECT_TRUE(rx.captures(-80.0, 0.0));
  EXPECT_FALSE(rx.captures(-96.0, 0.0));  // below sensitivity
}

TEST(ReceiverTest, CaptureRequiresSinr) {
  const Receiver rx({.capture_threshold_db = 10.0});
  const double interferer_mw = units::dbm_to_mw(-85.0);
  EXPECT_TRUE(rx.captures(-74.0, interferer_mw));   // SINR 11 dB
  EXPECT_FALSE(rx.captures(-76.0, interferer_mw));  // SINR 9 dB
}

TEST(ReceiverTest, StrongerInterferenceKills) {
  const Receiver rx;
  EXPECT_FALSE(rx.captures(-80.0, units::dbm_to_mw(-78.0)));
}

TEST(ReceiverTest, InvalidConfigThrows) {
  EXPECT_THROW(Receiver({.quantization_db = -1.0}), PreconditionError);
}

}  // namespace
}  // namespace vp::radio
