#include "common/least_squares.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace vp {
namespace {

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (double x = 0.0; x < 10.0; x += 1.0) {
    xs.push_back(x);
    ys.push_back(3.0 * x - 2.0);
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.residual_stddev, 0.0, 1e-9);
}

TEST(LinearFit, NoisyLineApproximateRecovery) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    xs.push_back(x);
    ys.push_back(-1.5 * x + 7.0 + rng.normal(0.0, 2.0));
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, -1.5, 0.02);
  EXPECT_NEAR(fit.intercept, 7.0, 1.0);
  EXPECT_NEAR(fit.residual_stddev, 2.0, 0.3);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFit, DegenerateXThrows) {
  const std::vector<double> xs = {2.0, 2.0, 2.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_THROW(linear_fit(xs, ys), PreconditionError);
}

TEST(LinearFit, SizeMismatchThrows) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW(linear_fit(xs, ys), PreconditionError);
}

TEST(SlopeThrough, ExactRecovery) {
  std::vector<double> xs, ys;
  for (double x = 1.0; x <= 5.0; x += 1.0) {
    xs.push_back(x);
    ys.push_back(10.0 - 4.0 * x);
  }
  EXPECT_NEAR(slope_through(xs, ys, 10.0), -4.0, 1e-12);
}

TEST(SlopeThrough, AllZeroXThrows) {
  const std::vector<double> xs = {0.0, 0.0};
  const std::vector<double> ys = {1.0, 2.0};
  EXPECT_THROW(slope_through(xs, ys, 0.0), PreconditionError);
}

TEST(NormalEquations, SolvesTwoColumnSystem) {
  // y = 2*x1 - 3*x2, rows (x1, x2).
  const std::vector<double> a = {1, 0, 0, 1, 1, 1, 2, 1};
  const std::vector<double> b = {2, -3, -1, 1};
  const std::vector<double> x = solve_normal_equations(a, 2, b);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], -3.0, 1e-9);
}

TEST(NormalEquations, LeastSquaresOverdetermined) {
  // Fit y = c0 + c1*x through noisy-free points of y = 1 + 2x plus one
  // outlier-free consistency: exact solution expected.
  std::vector<double> a, b;
  for (double x = 0.0; x < 6.0; x += 1.0) {
    a.push_back(1.0);
    a.push_back(x);
    b.push_back(1.0 + 2.0 * x);
  }
  const std::vector<double> x = solve_normal_equations(a, 2, b);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(NormalEquations, SingularThrows) {
  // Two identical columns.
  const std::vector<double> a = {1, 1, 2, 2, 3, 3};
  const std::vector<double> b = {1, 2, 3};
  EXPECT_THROW(solve_normal_equations(a, 2, b), InvalidArgument);
}

TEST(NormalEquations, ShapeChecks) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {1};
  EXPECT_THROW(solve_normal_equations(a, 2, b), PreconditionError);
}

}  // namespace
}  // namespace vp
