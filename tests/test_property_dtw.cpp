// Property-based sweeps over the DTW family: metric-like axioms and
// approximation orderings that must hold for ANY input, checked across a
// grid of seeds, lengths and costs (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "timeseries/dtw.h"
#include "timeseries/fast_dtw.h"

namespace vp::ts {
namespace {

using Params = std::tuple<std::uint64_t /*seed*/, std::size_t /*len x*/,
                          std::size_t /*len y*/, LocalCost>;

class DtwProperty : public ::testing::TestWithParam<Params> {
 protected:
  void SetUp() override {
    const auto& [seed, nx, ny, cost] = GetParam();
    cost_ = cost;
    Rng rng(seed);
    x_.resize(nx);
    y_.resize(ny);
    double vx = rng.uniform(-90.0, -60.0);
    double vy = rng.uniform(-90.0, -60.0);
    for (double& v : x_) {
      vx += rng.normal(0.0, 1.5);
      v = vx;
    }
    for (double& v : y_) {
      vy += rng.normal(0.0, 1.5);
      v = vy;
    }
  }

  std::vector<double> x_, y_;
  LocalCost cost_ = LocalCost::kSquared;
};

TEST_P(DtwProperty, NonNegativeAndZeroOnSelf) {
  EXPECT_GE(dtw(x_, y_, cost_).distance, 0.0);
  EXPECT_DOUBLE_EQ(dtw(x_, x_, cost_).distance, 0.0);
  EXPECT_DOUBLE_EQ(dtw(y_, y_, cost_).distance, 0.0);
}

TEST_P(DtwProperty, Symmetric) {
  EXPECT_NEAR(dtw(x_, y_, cost_).distance, dtw(y_, x_, cost_).distance,
              1e-9);
}

TEST_P(DtwProperty, DistanceOnlyMatchesPathVariant) {
  EXPECT_NEAR(dtw(x_, y_, cost_).distance, dtw_distance(x_, y_, cost_),
              1e-9);
}

TEST_P(DtwProperty, PathIsValidAndCostConsistent) {
  const DtwResult result = dtw(x_, y_, cost_);
  ASSERT_TRUE(is_valid_warp_path(result.path, x_.size(), y_.size()));
  // Re-summing the local costs along the reported path must reproduce the
  // reported distance.
  double total = 0.0;
  for (const WarpStep& step : result.path) {
    total += local_cost(x_[step.i], y_[step.j], cost_);
  }
  EXPECT_NEAR(total, result.distance, 1e-9);
}

TEST_P(DtwProperty, ConstraintsOnlyIncreaseCost) {
  const double exact = dtw(x_, y_, cost_).distance;
  for (std::size_t band : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    EXPECT_GE(dtw_banded(x_, y_, band, cost_).distance, exact - 1e-9);
  }
  for (std::size_t radius : {std::size_t{0}, std::size_t{1}, std::size_t{4}}) {
    EXPECT_GE(fast_dtw(x_, y_, {.radius = radius, .cost = cost_}).distance,
              exact - 1e-9);
  }
}

TEST_P(DtwProperty, WiderBandNeverWorse) {
  const double narrow = dtw_banded(x_, y_, 2, cost_).distance;
  const double wide = dtw_banded(x_, y_, 10, cost_).distance;
  EXPECT_LE(wide, narrow + 1e-9);
}

TEST_P(DtwProperty, FastDtwPathValid) {
  const DtwResult result = fast_dtw(x_, y_, {.radius = 1, .cost = cost_});
  EXPECT_TRUE(is_valid_warp_path(result.path, x_.size(), y_.size()));
}

TEST_P(DtwProperty, BandedFastDtwBetweenExactAndBandedExact) {
  // FastDTW with a band explores a subset of the banded-exact window, so
  // its cost is sandwiched: exact <= banded-exact <= banded-fast.
  const double exact = dtw(x_, y_, cost_).distance;
  const double banded_exact = dtw_banded(x_, y_, 5, cost_).distance;
  const double banded_fast =
      fast_dtw(x_, y_, {.radius = 1, .cost = cost_, .band = 5}).distance;
  EXPECT_GE(banded_exact, exact - 1e-9);
  EXPECT_GE(banded_fast, banded_exact - 1e-9);
}

TEST_P(DtwProperty, CoarseningHalvesLength) {
  const auto coarse = coarsen_by_two(x_);
  EXPECT_EQ(coarse.size(), (x_.size() + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DtwProperty,
    ::testing::Combine(::testing::Values(1u, 7u, 42u),
                       ::testing::Values(std::size_t{3}, std::size_t{37},
                                         std::size_t{128}),
                       ::testing::Values(std::size_t{3}, std::size_t{41},
                                         std::size_t{100}),
                       ::testing::Values(LocalCost::kSquared,
                                         LocalCost::kAbsolute)));

}  // namespace
}  // namespace vp::ts
