// FaultInjector and ingestion-validation invariants (DESIGN.md §10):
//   * Determinism — identical (seed, config, trace) produces identical
//     fault sequences, stats, and downstream engine rounds.
//   * Per-class behaviour — each fault class at p = 1 does exactly what
//     it says (and only that), with bounded reorder displacement.
//   * Conservation — offered + duplicated + flood == emitted + dropped +
//     burst_dropped + held, after every offer and after flush.
//   * Validation front — every invalid-beacon reason is shed with its
//     own counter, engine state untouched, conservation exact.
#include "fault/injector.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "common/error.h"
#include "fault/report.h"
#include "service/service.h"
#include "stream/engine.h"

namespace vp::fault {
namespace {

std::vector<Beacon> clean_trace(std::size_t identities, double rate_hz,
                                double duration_s) {
  std::vector<Beacon> trace;
  Rng rng(42);
  for (double t = 0.0; t < duration_s; t += 1.0 / rate_hz) {
    for (std::size_t i = 0; i < identities; ++i) {
      trace.push_back({static_cast<IdentityId>(i + 1), t,
                       -70.0 + rng.normal(0.0, 3.0)});
    }
  }
  return trace;
}

void expect_conservation(const FaultInjector& injector) {
  const FaultStats& s = injector.stats();
  EXPECT_EQ(s.conserved_in(), s.conserved_out());
}

TEST(FaultInjector, IdenticalSeedIsBitIdentical) {
  const std::vector<Beacon> trace = clean_trace(6, 10.0, 30.0);
  FaultConfig config;
  config.seed = 7;
  config.drop_probability = 0.1;
  config.duplicate_probability = 0.1;
  config.reorder_probability = 0.2;
  config.rssi_spike_probability = 0.1;
  config.rssi_non_finite_probability = 0.02;
  config.time_regression_probability = 0.05;
  config.flood_probability = 0.1;

  FaultInjector a(config);
  FaultInjector b(config);
  const std::vector<Beacon> out_a = a.apply(trace);
  const std::vector<Beacon> out_b = b.apply(trace);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a[i].id, out_b[i].id);
    // Bitwise: NaN != NaN, so compare representations.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out_a[i].time_s),
              std::bit_cast<std::uint64_t>(out_b[i].time_s));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out_a[i].rssi_dbm),
              std::bit_cast<std::uint64_t>(out_b[i].rssi_dbm));
  }
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
  EXPECT_EQ(a.stats().reordered, b.stats().reordered);
  EXPECT_EQ(a.stats().flood_injected, b.stats().flood_injected);
  expect_conservation(a);
}

// The full determinism chain: same seed + config ⇒ same faulted stream ⇒
// same engine shed counters and bit-identical rounds.
TEST(FaultInjector, RepeatRunReproducesEngineRoundsExactly) {
  const std::vector<Beacon> trace = clean_trace(8, 10.0, 45.0);
  FaultConfig config;
  config.seed = 99;
  config.drop_probability = 0.2;
  config.rssi_spike_probability = 0.3;
  config.rssi_non_finite_probability = 0.1;
  config.flood_probability = 0.2;

  auto run = [&] {
    FaultInjector injector(config);
    stream::StreamEngine engine{stream::StreamEngineConfig{}};
    std::vector<stream::StreamRound> rounds;
    engine.set_round_callback(
        [&rounds](const stream::StreamRound& r) { rounds.push_back(r); });
    for (const Beacon& b : injector.apply(trace)) {
      engine.ingest(b.id, b.time_s, b.rssi_dbm);
    }
    engine.advance_to(45.0);
    return std::make_pair(std::move(rounds), engine.stats());
  };
  const auto [rounds_a, stats_a] = run();
  const auto [rounds_b, stats_b] = run();

  EXPECT_EQ(stats_a.beacons_ingested, stats_b.beacons_ingested);
  EXPECT_EQ(stats_a.shed_invalid_total(), stats_b.shed_invalid_total());
  EXPECT_EQ(stats_a.beacons_shed_identity_cap,
            stats_b.beacons_shed_identity_cap);
  ASSERT_EQ(rounds_a.size(), rounds_b.size());
  for (std::size_t i = 0; i < rounds_a.size(); ++i) {
    EXPECT_EQ(rounds_a[i].time_s, rounds_b[i].time_s);
    EXPECT_EQ(rounds_a[i].suspects, rounds_b[i].suspects);
    ASSERT_EQ(rounds_a[i].pairs.size(), rounds_b[i].pairs.size());
    for (std::size_t j = 0; j < rounds_a[i].pairs.size(); ++j) {
      EXPECT_EQ(rounds_a[i].pairs[j].raw, rounds_b[i].pairs[j].raw);
    }
  }
}

TEST(FaultInjector, DropAtOneSwallowsEverything) {
  const std::vector<Beacon> trace = clean_trace(3, 10.0, 5.0);
  FaultConfig config;
  config.drop_probability = 1.0;
  FaultInjector injector(config);
  EXPECT_TRUE(injector.apply(trace).empty());
  EXPECT_EQ(injector.stats().dropped, trace.size());
  expect_conservation(injector);
}

TEST(FaultInjector, BurstDropsRunsOfConfiguredLength) {
  const std::vector<Beacon> trace = clean_trace(1, 10.0, 10.0);  // 100
  FaultConfig config;
  config.burst_start_probability = 1.0;  // wall-to-wall bursts
  config.burst_length = 10;
  FaultInjector injector(config);
  EXPECT_TRUE(injector.apply(trace).empty());
  EXPECT_EQ(injector.stats().burst_dropped, trace.size());
  EXPECT_EQ(injector.stats().dropped, 0u);  // bursts, not i.i.d. drops
  expect_conservation(injector);
}

TEST(FaultInjector, DuplicateAtOneEmitsEverythingTwice) {
  const std::vector<Beacon> trace = clean_trace(2, 10.0, 5.0);
  FaultConfig config;
  config.duplicate_probability = 1.0;
  FaultInjector injector(config);
  const std::vector<Beacon> out = injector.apply(trace);
  ASSERT_EQ(out.size(), trace.size() * 2);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(out[2 * i].id, out[2 * i + 1].id);
    EXPECT_EQ(out[2 * i].time_s, out[2 * i + 1].time_s);
    EXPECT_EQ(out[2 * i].rssi_dbm, out[2 * i + 1].rssi_dbm);
  }
  expect_conservation(injector);
}

TEST(FaultInjector, ReorderDisplacementIsBounded) {
  const std::vector<Beacon> trace = clean_trace(1, 10.0, 30.0);
  FaultConfig config;
  config.reorder_probability = 0.5;
  config.reorder_max_displacement = 4;
  FaultInjector injector(config);
  const std::vector<Beacon> out = injector.apply(trace);
  ASSERT_EQ(out.size(), trace.size());  // nothing lost, only re-sequenced
  EXPECT_GT(injector.stats().reordered, 0u);
  // One identity at fixed rate: displacement in positions is bounded by
  // displacement in source beacons, so |emitted_index - original_index|
  // stays within max_displacement.
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double expected_t = trace[i].time_s;
    const double dt = std::abs(out[i].time_s - expected_t);
    EXPECT_LE(dt, 0.1 * (config.reorder_max_displacement + 1) + 1e-9);
  }
  expect_conservation(injector);
}

TEST(FaultInjector, NonFiniteRssiIsInjectedAndCounted) {
  const std::vector<Beacon> trace = clean_trace(2, 10.0, 10.0);
  FaultConfig config;
  config.rssi_non_finite_probability = 1.0;
  FaultInjector injector(config);
  const std::vector<Beacon> out = injector.apply(trace);
  ASSERT_EQ(out.size(), trace.size());
  for (const Beacon& b : out) EXPECT_FALSE(std::isfinite(b.rssi_dbm));
  EXPECT_EQ(injector.stats().rssi_non_finite, trace.size());
  expect_conservation(injector);
}

TEST(FaultInjector, QuantizationSnapsToStep) {
  const std::vector<Beacon> trace = clean_trace(2, 10.0, 5.0);
  FaultConfig config;
  config.rssi_quantize_step_db = 4.0;
  FaultInjector injector(config);
  for (const Beacon& b : injector.apply(trace)) {
    const double steps = b.rssi_dbm / 4.0;
    EXPECT_NEAR(steps, std::round(steps), 1e-9);
  }
  EXPECT_EQ(injector.stats().rssi_quantized, trace.size());
}

TEST(FaultInjector, TimeSkewAndDriftTransformTimestamps) {
  const std::vector<Beacon> trace = clean_trace(1, 10.0, 10.0);
  FaultConfig config;
  config.time_skew_s = 2.0;
  config.time_drift_per_s = 0.01;
  FaultInjector injector(config);
  const std::vector<Beacon> out = injector.apply(trace);
  ASSERT_EQ(out.size(), trace.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].time_s, trace[i].time_s * 1.01 + 2.0);
  }
  EXPECT_EQ(injector.stats().time_skewed, trace.size());
}

TEST(FaultInjector, FloodFabricatesFreshIdentities) {
  const std::vector<Beacon> trace = clean_trace(3, 10.0, 10.0);
  FaultConfig config;
  config.flood_probability = 1.0;
  config.flood_id_base = 5000;
  FaultInjector injector(config);
  const std::vector<Beacon> out = injector.apply(trace);
  ASSERT_EQ(out.size(), trace.size() * 2);
  std::set<IdentityId> fabricated;
  for (const Beacon& b : out) {
    if (b.id >= 5000) fabricated.insert(b.id);
  }
  // Every injected identity is fresh — the cap-pressure worst case.
  EXPECT_EQ(fabricated.size(), trace.size());
  EXPECT_EQ(injector.stats().flood_injected, trace.size());
  expect_conservation(injector);
}

TEST(FaultInjector, RejectsInvalidConfig) {
  FaultConfig config;
  config.drop_probability = 1.5;
  EXPECT_THROW(FaultInjector{config}, PreconditionError);
  config.drop_probability = 0.0;
  config.burst_length = 0;
  EXPECT_THROW(FaultInjector{config}, PreconditionError);
  config.burst_length = 1;
  config.rssi_quantize_step_db = -1.0;
  EXPECT_THROW(FaultInjector{config}, PreconditionError);
}

// --- Ingestion validation front -----------------------------------------

TEST(ValidationFront, ShedsEachReasonWithItsOwnCounter) {
  stream::StreamEngineConfig config;
  stream::StreamEngine engine(config);
  using Admission = stream::StreamEngine::Admission;

  EXPECT_EQ(engine.ingest(1, 1.0, -70.0), Admission::kAccepted);
  EXPECT_EQ(engine.ingest(1, std::numeric_limits<double>::quiet_NaN(), -70.0),
            Admission::kShedInvalid);
  EXPECT_EQ(engine.ingest(1, std::numeric_limits<double>::infinity(), -70.0),
            Admission::kShedInvalid);
  EXPECT_EQ(engine.ingest(1, -3.0, -70.0), Admission::kShedInvalid);
  EXPECT_EQ(engine.ingest(1, 2.0, std::numeric_limits<double>::quiet_NaN()),
            Admission::kShedInvalid);
  EXPECT_EQ(engine.ingest(1, 2.0, -std::numeric_limits<double>::infinity()),
            Admission::kShedInvalid);
  EXPECT_EQ(engine.ingest(1, 2.0, -200.0), Admission::kShedInvalid);
  EXPECT_EQ(engine.ingest(1, 2.0, 90.0), Admission::kShedInvalid);
  EXPECT_EQ(engine.ingest(1, 2.0, -71.0), Admission::kAccepted);

  const stream::StreamEngine::Stats& stats = engine.stats();
  EXPECT_EQ(stats.shed_invalid_time_non_finite, 2u);
  EXPECT_EQ(stats.shed_invalid_time_negative, 1u);
  EXPECT_EQ(stats.shed_invalid_rssi_non_finite, 2u);
  EXPECT_EQ(stats.shed_invalid_rssi_out_of_range, 2u);
  EXPECT_EQ(stats.beacons_ingested, 2u);
  // Conservation, now including the validation classes.
  EXPECT_EQ(stats.beacons_offered,
            stats.beacons_ingested + stats.shed_total());
}

// An invalid beacon must not move ANY engine state: no ring append, no
// round scheduling, no admission-bucket consumption.
TEST(ValidationFront, InvalidBeaconLeavesStateUntouched) {
  stream::StreamEngineConfig config;
  stream::StreamEngine engine(config);
  engine.ingest(1, 1.0, -70.0);
  const double next_round_before = engine.next_round_time();

  // A +inf timestamp would run the round scheduler forever if it ever
  // reached advance_to; this must return, shed, in O(1).
  engine.ingest(2, std::numeric_limits<double>::infinity(), -70.0);
  engine.ingest(2, 25.0, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(engine.identities_tracked(), 1u);  // identity 2 never tracked
  EXPECT_EQ(engine.next_round_time(), next_round_before);
  EXPECT_EQ(engine.stats().rounds, 0u);  // the NaN-RSSI at t=25 shed first
}

// With validation off (trusted replay), the same beacons reach the
// legacy paths — documenting exactly what the front protects against.
TEST(ValidationFront, DisabledValidationAdmitsOutOfContractRssi) {
  stream::StreamEngineConfig config;
  config.validate_ingest = false;
  stream::StreamEngine engine(config);
  EXPECT_EQ(engine.ingest(1, 1.0, -200.0),
            stream::StreamEngine::Admission::kAccepted);
  EXPECT_EQ(engine.stats().shed_invalid_total(), 0u);
}

TEST(ValidationFront, ServiceForwardsInvalidVerdict) {
  service::ServiceConfig config;
  service::DetectionService svc(config);
  using Admission = service::DetectionService::Admission;
  EXPECT_EQ(svc.ingest(1, 1, 1.0, -70.0), Admission::kAccepted);
  EXPECT_EQ(svc.ingest(1, 1, std::numeric_limits<double>::quiet_NaN(), -70.0),
            Admission::kShedInvalid);
  EXPECT_EQ(svc.ingest(1, 1, 2.0, std::numeric_limits<double>::infinity()),
            Admission::kShedInvalid);
  const service::DetectionService::Stats& stats = svc.stats();
  EXPECT_EQ(stats.beacons_shed_invalid, 2u);
  EXPECT_EQ(stats.beacons_offered,
            stats.beacons_ingested + stats.beacons_shed_session_cap +
                stats.beacons_shed_rate_limited +
                stats.beacons_shed_identity_cap +
                stats.beacons_shed_out_of_order + stats.beacons_shed_invalid);
}

// --- Chaos bench schema -------------------------------------------------

ChaosRunResult valid_run() {
  ChaosRunResult r;
  r.label = "drop_low";
  r.fault_class = "drop";
  r.intensity = 0.1;
  r.kill_restore_cycles = 1;
  r.source_beacons = 100;
  r.emitted = 85;
  r.dropped = 10;
  r.burst_dropped = 5;
  r.offered = 85;
  r.ingested = 80;
  r.shed_out_of_order = 5;
  r.rounds = 3;
  r.round_divergence = 0.25;
  r.max_divergence = 0.5;
  return r;
}

CondGateResult valid_gate() {
  CondGateResult g;
  g.fault_class = "rssi_spike";
  g.intensity = 0.08;
  g.divergence_off = 0.75;
  g.divergence_on = 0.25;
  return g;
}

TEST(ChaosBenchReport, BuildsAndValidates) {
  const obs::json::Value report = build_chaos_bench_report(
      "chaos_detection", 11, {valid_run()}, {valid_gate()});
  std::string error;
  EXPECT_TRUE(validate_chaos_bench(report, &error)) << error;
}

TEST(ChaosBenchReport, RejectsInjectorConservationViolation) {
  ChaosRunResult bad = valid_run();
  bad.dropped += 1;  // a beacon vanished without being counted
  std::string error;
  EXPECT_FALSE(validate_chaos_bench(
      build_chaos_bench_report("x", 1, {bad}, {}), &error));
  EXPECT_NE(error.find("injector conservation"), std::string::npos);
}

TEST(ChaosBenchReport, RejectsServingConservationViolation) {
  ChaosRunResult bad = valid_run();
  bad.ingested -= 1;
  std::string error;
  EXPECT_FALSE(validate_chaos_bench(
      build_chaos_bench_report("x", 1, {bad}, {}), &error));
  EXPECT_NE(error.find("offered != ingested"), std::string::npos);
}

TEST(ChaosBenchReport, CountsConditionedShedInServingLaw) {
  ChaosRunResult r = valid_run();
  // Five beacons hard-rejected by the conditioning front instead of
  // arriving out of order: the serving law must still balance.
  r.shed_out_of_order = 0;
  r.shed_conditioned = 5;
  r.cond_offered = 85;
  r.cond_passed = 70;
  r.cond_clamped = 10;
  r.cond_rejected = 5;
  std::string error;
  EXPECT_TRUE(validate_chaos_bench(
      build_chaos_bench_report("x", 1, {r}, {}), &error))
      << error;
}

TEST(ChaosBenchReport, RejectsCondConservationViolation) {
  ChaosRunResult bad = valid_run();
  bad.cond_offered = 10;  // verdicts all zero: 10 != 0 + 0 + 0
  std::string error;
  EXPECT_FALSE(validate_chaos_bench(
      build_chaos_bench_report("x", 1, {bad}, {}), &error));
  EXPECT_NE(error.find("cond_offered"), std::string::npos);
}

TEST(ChaosBenchReport, RejectsDivergenceOverCeiling) {
  ChaosRunResult bad = valid_run();
  bad.round_divergence = 0.9;  // ceiling is 0.5
  std::string error;
  EXPECT_FALSE(validate_chaos_bench(
      build_chaos_bench_report("x", 1, {bad}, {}), &error));
  EXPECT_NE(error.find("exceeds max_divergence"), std::string::npos);
}

TEST(ChaosBenchReport, RejectsVacuousCondGate) {
  CondGateResult gate = valid_gate();
  gate.divergence_off = 0.0;  // the fault never bit; 0.0 < 0.0 is false too
  gate.divergence_on = 0.0;
  std::string error;
  EXPECT_FALSE(validate_chaos_bench(
      build_chaos_bench_report("x", 1, {valid_run()}, {gate}), &error));
  EXPECT_NE(error.find("vacuous"), std::string::npos);
}

TEST(ChaosBenchReport, RejectsNonImprovingCondGate) {
  CondGateResult gate = valid_gate();
  gate.divergence_on = gate.divergence_off;  // equal is not improvement
  std::string error;
  EXPECT_FALSE(validate_chaos_bench(
      build_chaos_bench_report("x", 1, {valid_run()}, {gate}), &error));
  EXPECT_NE(error.find("strictly"), std::string::npos);
}

TEST(ChaosBenchReport, RejectsWrongSchemaAndMissingFields) {
  obs::json::Value report = build_chaos_bench_report(
      "chaos_detection", 11, {valid_run()}, {valid_gate()});
  std::string error;
  obs::json::Object broken = report.as_object();
  broken["schema"] = obs::json::Value("voiceprint.stream_bench/v1");
  EXPECT_FALSE(
      validate_chaos_bench(obs::json::Value(std::move(broken)), &error));
  obs::json::Object no_gates = report.as_object();
  no_gates.erase("cond_gates");
  EXPECT_FALSE(
      validate_chaos_bench(obs::json::Value(std::move(no_gates)), &error));
  EXPECT_FALSE(validate_chaos_bench(obs::json::Value(1.0), &error));
}

// --- Stuck-at / saturation episodes -------------------------------------

TEST(FaultInjector, StuckAtFreezesRssiForEpisodeLength) {
  const std::vector<Beacon> trace = clean_trace(1, 10.0, 60.0);
  FaultConfig config;
  config.seed = 5;
  config.rssi_stuck_probability = 0.05;
  config.rssi_stuck_length = 8;
  config.rssi_stuck_rail_probability = 0.0;  // freeze-only: value from trace
  FaultInjector injector(config);
  const std::vector<Beacon> out = injector.apply(trace);

  ASSERT_EQ(out.size(), trace.size());  // stuck-at never drops or adds
  const std::uint64_t stuck = injector.stats().rssi_stuck;
  EXPECT_GT(stuck, 0u);
  // Every changed beacon repeats a value the clean trace produced
  // earlier (the arming beacon's reading). The arming beacon itself is
  // counted stuck but freezes at its own reading — so changed runs are
  // at most length−1, and stuck − changed counts the episodes, each of
  // which covered at most `rssi_stuck_length` beacons.
  std::uint64_t changed = 0;
  std::size_t run_length = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i].rssi_dbm == trace[i].rssi_dbm) {
      run_length = 0;
      continue;
    }
    ++changed;
    ++run_length;
    EXPECT_LE(run_length, config.rssi_stuck_length - 1);
    // Frozen at some earlier clean reading.
    bool seen_before = false;
    for (std::size_t j = 0; j <= i; ++j) {
      if (trace[j].rssi_dbm == out[i].rssi_dbm) {
        seen_before = true;
        break;
      }
    }
    EXPECT_TRUE(seen_before) << "beacon " << i << " frozen at unknown value";
  }
  EXPECT_LE(changed, stuck);
  const std::uint64_t episodes = stuck - changed;
  EXPECT_GT(episodes, 0u);
  EXPECT_GE(episodes * config.rssi_stuck_length, stuck);
  expect_conservation(injector);
}

TEST(FaultInjector, StuckAtRailsAtConfiguredLevel) {
  const std::vector<Beacon> trace = clean_trace(1, 10.0, 30.0);
  FaultConfig config;
  config.seed = 6;
  config.rssi_stuck_probability = 0.1;
  config.rssi_stuck_length = 4;
  config.rssi_stuck_rail_probability = 1.0;  // every episode saturates
  config.rssi_stuck_rail_dbm = -30.0;
  FaultInjector injector(config);
  const std::vector<Beacon> out = injector.apply(trace);

  std::uint64_t railed = 0;
  for (const Beacon& b : out) {
    if (b.rssi_dbm == -30.0) ++railed;
  }
  EXPECT_EQ(railed, injector.stats().rssi_stuck);
  EXPECT_GT(railed, 0u);
  expect_conservation(injector);
}

TEST(FaultInjector, StuckAtIsDeterministicAndIsolatedFromOtherClasses) {
  const std::vector<Beacon> trace = clean_trace(4, 10.0, 30.0);
  // Reference: spike-only faults.
  FaultConfig spikes;
  spikes.seed = 9;
  spikes.rssi_spike_probability = 0.2;
  const std::vector<Beacon> ref = FaultInjector(spikes).apply(trace);

  // Adding stuck-at draws from its own Rng fork, so beacons outside
  // stuck episodes see the identical spike sequence. Rail every episode
  // at a level the spiked trace can never produce, so divergence from
  // the reference counts stuck beacons exactly (a freeze episode would
  // leave its arming beacon at its own clean reading).
  FaultConfig both = spikes;
  both.rssi_stuck_probability = 0.02;
  both.rssi_stuck_length = 6;
  both.rssi_stuck_rail_probability = 1.0;
  both.rssi_stuck_rail_dbm = 0.0;
  FaultInjector a(both);
  FaultInjector b(both);
  const std::vector<Beacon> out_a = a.apply(trace);
  const std::vector<Beacon> out_b = b.apply(trace);

  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out_a[i].rssi_dbm),
              std::bit_cast<std::uint64_t>(out_b[i].rssi_dbm));
  }
  ASSERT_EQ(out_a.size(), ref.size());
  std::uint64_t divergent = 0;
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    if (out_a[i].rssi_dbm != ref[i].rssi_dbm) ++divergent;
  }
  // Exactly the stuck beacons differ from the spike-only run; a stuck
  // beacon that would have been spiked masks the spike entirely (the
  // latched register replaces the measurement wholesale). The spike
  // stream itself is unperturbed, so nothing else moved.
  EXPECT_EQ(divergent, a.stats().rssi_stuck);
  expect_conservation(a);
}

}  // namespace
}  // namespace vp::fault
