// Tests for the pair-alignment machinery of the comparison phase:
// nearest-neighbour sample matching and its effect on the DTW distances
// (core/comparison.h).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/comparison.h"
#include "timeseries/series.h"

namespace vp::core {
namespace {

TEST(MatchSamples, AlignedSeriesMatchFully) {
  const ts::Series a = ts::Series::uniform(0.0, 0.1, {1, 2, 3, 4});
  const ts::Series b = ts::Series::uniform(0.02, 0.1, {10, 20, 30, 40});
  std::vector<double> va, vb;
  match_samples(a, b, 0.06, va, vb);
  ASSERT_EQ(va.size(), 4u);
  EXPECT_EQ(va, (std::vector<double>{1, 2, 3, 4}));
  EXPECT_EQ(vb, (std::vector<double>{10, 20, 30, 40}));
}

TEST(MatchSamples, GapTooLargeSkips) {
  ts::Series a, b;
  a.add(0.0, 1.0);
  a.add(1.0, 2.0);
  b.add(0.5, 10.0);  // 0.5 s from both a-samples
  std::vector<double> va, vb;
  match_samples(a, b, 0.06, va, vb);
  EXPECT_TRUE(va.empty());
  match_samples(a, b, 0.6, va, vb);
  EXPECT_EQ(va.size(), 1u);  // b's one sample can match only once
}

TEST(MatchSamples, PacketLossDropsOnlyAffectedSlots) {
  // a has all 10 slots; b lost slots 3 and 7.
  ts::Series a, b;
  for (int i = 0; i < 10; ++i) a.add(i * 0.1, i);
  for (int i = 0; i < 10; ++i) {
    if (i == 3 || i == 7) continue;
    b.add(i * 0.1 + 0.005, 100 + i);
  }
  std::vector<double> va, vb;
  match_samples(a, b, 0.06, va, vb);
  ASSERT_EQ(va.size(), 8u);
  // The surviving matches pair slot-for-slot.
  for (std::size_t k = 0; k < va.size(); ++k) {
    EXPECT_DOUBLE_EQ(vb[k], 100 + va[k]);
  }
}

TEST(MatchSamples, EachSampleConsumedOnce) {
  // Two a-samples close to one b-sample: only one match.
  ts::Series a, b;
  a.add(0.00, 1.0);
  a.add(0.02, 2.0);
  b.add(0.01, 10.0);
  std::vector<double> va, vb;
  match_samples(a, b, 0.06, va, vb);
  EXPECT_EQ(va.size(), 1u);
}

TEST(MatchSamples, OutputsTimeOrdered) {
  Rng rng(3);
  ts::Series a, b;
  double ta = 0.0, tb = 0.03;
  for (int i = 0; i < 50; ++i) {
    if (rng.chance(0.8)) a.add(ta, rng.uniform(0, 1));
    if (rng.chance(0.8)) b.add(tb, rng.uniform(0, 1));
    ta += 0.1;
    tb += 0.1;
  }
  std::vector<double> va, vb;
  match_samples(a, b, 0.06, va, vb);
  EXPECT_EQ(va.size(), vb.size());
  EXPECT_LE(va.size(), std::min(a.size(), b.size()));
}

// The decisive property: with disjoint loss patterns, matched sampling
// keeps a Sybil pair's distance near the noise floor, while grid
// interpolation smears shadowing drift into it.
TEST(Alignment, MatchedSamplingBeatsInterpolationOnLossySybilPair) {
  Rng rng(9);
  // One shared shadowing trajectory (OU-like), two identities sampled at
  // slightly different instants, independent 30% losses.
  const std::size_t n = 200;
  std::vector<double> shadow(n);
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    s = 0.9 * s + rng.normal(0.0, 1.5);
    shadow[i] = -70.0 + s;
  }
  auto series_with_loss = [&](double phase, std::uint64_t seed) {
    Rng local(seed);
    ts::Series out;
    for (std::size_t i = 0; i < n; ++i) {
      if (local.chance(0.3)) continue;  // lost
      out.add(i * 0.1 + phase, shadow[i] + local.normal(0.0, 0.5));
    }
    return out;
  };
  std::vector<NamedSeries> series = {
      {1, series_with_loss(0.000, 100)},
      {101, series_with_loss(0.002, 101)},
  };

  ComparisonOptions matched;
  matched.alignment = ComparisonOptions::Alignment::kMatchedSamples;
  matched.min_max_normalize = false;
  ComparisonOptions grid = matched;
  grid.alignment = ComparisonOptions::Alignment::kResampleGrid;

  const auto matched_pairs = compare_series(series, matched);
  const auto grid_pairs = compare_series(series, grid);
  ASSERT_EQ(matched_pairs.size(), 1u);
  ASSERT_EQ(grid_pairs.size(), 1u);
  ASSERT_TRUE(matched_pairs[0].comparable);
  ASSERT_TRUE(grid_pairs[0].comparable);
  EXPECT_LT(matched_pairs[0].raw, grid_pairs[0].raw);
}

TEST(Alignment, RawAlignmentStillComparable) {
  // kNone feeds the raw index spaces to DTW (the literal Eq. 3-6 reading).
  Rng rng(11);
  std::vector<double> va(60), vb(60);
  for (std::size_t i = 0; i < 60; ++i) {
    va[i] = rng.normal(-70, 4);
    vb[i] = rng.normal(-70, 4);
  }
  std::vector<NamedSeries> series = {
      {1, ts::Series::uniform(0.0, 0.1, va)},
      {2, ts::Series::uniform(0.0, 0.1, vb)},
  };
  ComparisonOptions options;
  options.alignment = ComparisonOptions::Alignment::kNone;
  const auto pairs = compare_series(series, options);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs[0].comparable);
  EXPECT_GT(pairs[0].raw, 0.0);
}

}  // namespace
}  // namespace vp::core
