#include "common/rng.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/stats.h"

namespace vp {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(7);
  Rng b(7);
  Rng fa = a.fork("mobility");
  Rng fb = b.fork("mobility");
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(fa.uniform(0.0, 1.0), fb.uniform(0.0, 1.0));
  }
}

TEST(Rng, ForksWithDifferentNamesAreIndependent) {
  Rng root(7);
  Rng a = root.fork("a");
  Rng b = root.fork("b");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkDoesNotConsumeParentState) {
  Rng a(9);
  Rng b(9);
  (void)a.fork("child");
  EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 4.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 4.5);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    saw_lo |= v == 1;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, NormalWithZeroSigmaIsConstant) {
  Rng rng(11);
  EXPECT_DOUBLE_EQ(rng.normal(3.5, 0.0), 3.5);
}

TEST(Rng, ExponentialMatchesMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(0.2));
  EXPECT_NEAR(stats.mean(), 5.0, 0.2);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, GammaMatchesMean) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.gamma(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 6.0, 0.2);
}

TEST(Rng, PreconditionViolationsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.chance(1.5), PreconditionError);
  EXPECT_THROW(rng.gamma(0.0, 1.0), PreconditionError);
}

TEST(Rng, Hash64IsStable) {
  EXPECT_EQ(hash64("abc"), hash64("abc"));
  EXPECT_NE(hash64("abc"), hash64("abd"));
  EXPECT_NE(hash64(""), hash64("a"));
}

TEST(Rng, Mix64SpreadsBits) {
  EXPECT_NE(mix64(0, 0), mix64(0, 1));
  EXPECT_NE(mix64(1, 0), mix64(0, 1));
}

}  // namespace
}  // namespace vp
