// Tests for the observability layer (src/obs): metrics primitives with
// exact quantiles on known data, concurrent updates through the thread
// pool, JSONL trace well-formedness, run-report schema round trips, and
// the central invariant that instrumentation never changes what the
// detector computes (enabled vs disabled outputs are bit-identical).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/detector.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/runtime.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "timeseries/series.h"

namespace vp {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(ObsCounter, AddValueReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, ConcurrentIncrementsFromThreadPool) {
  obs::Counter c;
  constexpr std::size_t kAdds = 20000;
  parallel_for(8, kAdds, [&](std::size_t, std::size_t) { c.add(1); });
  EXPECT_EQ(c.value(), kAdds);
}

TEST(ObsGauge, LastWriteWins) {
  obs::Gauge g;
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// One sample per bucket on bounds {1..5}: the documented quantile
// convention reproduces the exact ranks, so these values are not
// approximate — they are what the convention promises.
TEST(ObsHistogram, ExactQuantilesOnKnownData) {
  obs::Histogram h({1.0, 2.0, 3.0, 4.0, 5.0});
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.record(v);

  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 15.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);   // rank 2.5 interpolated in (2, 3]
  EXPECT_DOUBLE_EQ(s.p95, 4.75);  // rank 4.75 interpolated in (4, 5]
  EXPECT_DOUBLE_EQ(s.p99, 4.95);
  EXPECT_DOUBLE_EQ(h.quantile(0.2), 1.0);  // rank 1 = first bucket's bound
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);  // rank C = observed max
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);  // rank 0 = observed min
}

TEST(ObsHistogram, OverflowBucketReturnsObservedMax) {
  obs::Histogram h({10.0});
  h.record(5.0);
  h.record(100.0);
  h.record(200.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 200.0);
  EXPECT_DOUBLE_EQ(h.snapshot().max, 200.0);
}

TEST(ObsHistogram, EmptySnapshotIsAllZero) {
  obs::Histogram h(obs::Histogram::default_latency_bounds_ns());
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(ObsHistogram, ConcurrentRecordsKeepExactCountAndSum) {
  obs::Histogram h(obs::Histogram::default_count_bounds());
  constexpr std::size_t kRecords = 10000;
  parallel_for(8, kRecords, [&](std::size_t, std::size_t i) {
    h.record(static_cast<double>(i % 7));
  });
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kRecords);
  double expected_sum = 0.0;
  for (std::size_t i = 0; i < kRecords; ++i) {
    expected_sum += static_cast<double>(i % 7);
  }
  EXPECT_DOUBLE_EQ(s.sum, expected_sum);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
}

// A sample exactly on a bucket's upper bound belongs to that bucket:
// bucket i covers (bounds[i-1], bounds[i]]. One sample per bound must
// reproduce the bounds exactly under the rank convention.
TEST(ObsHistogram, BoundaryValuesLandInOwningBucket) {
  obs::Histogram h({1.0, 2.0, 4.0});
  for (double v : {1.0, 2.0, 4.0}) h.record(v);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0 / 3.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(2.0 / 3.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

// Non-finite samples must not poison count/sum/quantiles — they are
// refused and tallied in the snapshot's `rejected` counter instead, so
// a telemetry consumer can see that something upstream produced NaN.
TEST(ObsHistogram, NonFiniteSamplesRejectedAndCounted) {
  obs::Histogram h({10.0});
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(std::numeric_limits<double>::infinity());
  h.record(-std::numeric_limits<double>::infinity());
  h.record(5.0);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.rejected, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 5.0);
  EXPECT_TRUE(std::isfinite(s.mean));
  EXPECT_TRUE(std::isfinite(s.p99));
  h.reset();
  EXPECT_EQ(h.snapshot().rejected, 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
}

// Degenerate shapes: a single-bucket histogram still interpolates
// within its one bucket (clamped to the observed extremes), and an
// empty histogram answers 0 for every quantile instead of reading
// uninitialised bucket state.
TEST(ObsHistogram, SingleBucketAndEmptyQuantiles) {
  obs::Histogram single({8.0});
  for (double v : {2.0, 4.0, 6.0, 8.0}) single.record(v);
  const obs::HistogramSnapshot s = single.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(single.quantile(1.0), 8.0);
  EXPECT_GE(single.quantile(0.5), s.min);
  EXPECT_LE(single.quantile(0.5), s.max);
  EXPECT_DOUBLE_EQ(s.p50, single.quantile(0.5));

  obs::Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.99), 0.0);
}

TEST(ObsRegistry, InstrumentAddressesAreStableAcrossReset) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("stable.counter");
  obs::Histogram& h =
      registry.histogram("stable.hist", {1.0, 2.0});
  c.add(7);
  h.record(1.0);

  registry.reset();
  EXPECT_EQ(&registry.counter("stable.counter"), &c);
  EXPECT_EQ(&registry.histogram("stable.hist"), &h);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);

  // An existing name keeps its bounds; new explicit bounds are ignored.
  obs::Histogram& again = registry.histogram("stable.hist", {99.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.upper_bounds().size(), 2u);
}

TEST(ObsJson, DumpParseRoundTrip) {
  obs::json::Object obj;
  obj.emplace("null", obs::json::Value(nullptr));
  obj.emplace("flag", obs::json::Value(true));
  obj.emplace("n", obs::json::Value(42.5));
  obj.emplace("text", obs::json::Value("line\n\"quoted\"\t\\slash"));
  obs::json::Array arr;
  arr.push_back(obs::json::Value(1));
  arr.push_back(obs::json::Value("two"));
  obj.emplace("arr", obs::json::Value(std::move(arr)));
  const obs::json::Value value(std::move(obj));

  for (int indent : {0, 2}) {
    const obs::json::Value parsed = obs::json::parse(value.dump(indent));
    EXPECT_TRUE(parsed.find("null")->is_null());
    EXPECT_TRUE(parsed.find("flag")->as_bool());
    EXPECT_DOUBLE_EQ(parsed.find("n")->as_number(), 42.5);
    EXPECT_EQ(parsed.find("text")->as_string(), "line\n\"quoted\"\t\\slash");
    ASSERT_TRUE(parsed.find("arr")->is_array());
    EXPECT_DOUBLE_EQ(parsed.find("arr")->as_array()[0].as_number(), 1.0);
    EXPECT_EQ(parsed.find("arr")->as_array()[1].as_string(), "two");
    EXPECT_EQ(parsed.find("missing"), nullptr);
  }
}

TEST(ObsJson, RejectsMalformedDocuments) {
  EXPECT_THROW(obs::json::parse("{"), InvalidArgument);
  EXPECT_THROW(obs::json::parse("[1,]"), InvalidArgument);
  EXPECT_THROW(obs::json::parse("{} trailing"), InvalidArgument);
  EXPECT_THROW(obs::json::parse("\"unterminated"), InvalidArgument);
  EXPECT_THROW(obs::json::parse("nul"), InvalidArgument);
}

TEST(ObsTrace, JsonlLinesAreWellFormedUnderConcurrency) {
  const std::string path = temp_path("obs_trace_test.jsonl");
  constexpr std::size_t kSpans = 400;
  {
    obs::TraceRecorder recorder(path);
    parallel_for(8, kSpans, [&](std::size_t, std::size_t i) {
      obs::SpanEvent event;
      event.phase = "test.span";
      event.window = static_cast<std::int64_t>(i);
      event.pairs = (i % 2 == 0) ? static_cast<std::int64_t>(i) : -1;
      event.wall_ns = 17;
      recorder.record(event);
    });
    EXPECT_EQ(recorder.spans_recorded(), kSpans);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  std::string error;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    const obs::json::Value span = obs::json::parse(line);
    EXPECT_TRUE(obs::validate_span(span, &error)) << error;
    EXPECT_EQ(span.find("phase")->as_string(), "test.span");
    // observer was never set: it must be emitted as null, not -1.
    EXPECT_TRUE(span.find("observer")->is_null());
    ++lines;
  }
  EXPECT_EQ(lines, kSpans);
  std::remove(path.c_str());
}

TEST(ObsTimer, DisarmedTimerRecordsNothing) {
  obs::Histogram h({1.0});
  {
    obs::ScopedTimer disarmed;
    EXPECT_EQ(disarmed.stop(), 0u);
  }
  {
    obs::ScopedTimer null_sinks(nullptr, nullptr);
    (void)null_sinks;
  }
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(ObsTimer, RecordsOnceIntoHistogramAndSpan) {
  const std::string path = temp_path("obs_timer_test.jsonl");
  obs::Histogram h(obs::Histogram::default_latency_bounds_ns());
  {
    obs::TraceRecorder recorder(path);
    obs::ScopedTimer timer(&h, &recorder, {.phase = "timed"});
    timer.stop();
    timer.stop();  // idempotent: second stop must not record again
    EXPECT_EQ(recorder.spans_recorded(), 1u);
  }
  EXPECT_EQ(h.snapshot().count, 1u);
  std::remove(path.c_str());
}

TEST(ObsReport, BuildWriteParseValidateRoundTrip) {
  obs::MetricsRegistry registry;
  registry.counter("demo.events").add(3);
  registry.gauge("demo.level").set(0.5);
  obs::Histogram& h = registry.histogram("demo.ns", {1.0, 2.0, 3.0, 4.0, 5.0});
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.record(v);

  obs::json::Object extra;
  extra.emplace("note", obs::json::Value("unit test"));
  const obs::json::Value report = obs::build_run_report(
      registry, "test_obs", obs::json::Value(std::move(extra)));

  std::string error;
  EXPECT_TRUE(obs::validate_run_report(report, &error)) << error;
  EXPECT_EQ(report.find("binary")->as_string(), "test_obs");
  EXPECT_DOUBLE_EQ(
      report.find("counters")->find("demo.events")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(
      report.find("histograms")->find("demo.ns")->find("p95")->as_number(),
      4.75);
  EXPECT_EQ(report.find("extra")->find("note")->as_string(), "unit test");

  const std::string path = temp_path("obs_report_test.json");
  obs::write_run_report(path, report);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const obs::json::Value reread = obs::json::parse(text);
  EXPECT_TRUE(obs::validate_run_report(reread, &error)) << error;
  std::remove(path.c_str());
}

TEST(ObsReport, ValidatorRejectsBrokenDocuments) {
  std::string error;
  EXPECT_FALSE(obs::validate_run_report(obs::json::Value(1.0), &error));

  obs::MetricsRegistry registry;
  registry.counter("x").add(1);
  obs::json::Value report = obs::build_run_report(registry, "b");
  report.as_object()["schema"] = obs::json::Value("something/else");
  EXPECT_FALSE(obs::validate_run_report(report, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);

  obs::json::Value bad_span = obs::json::parse(
      R"({"phase":"","observer":null,"window":null,"pairs":null,)"
      R"("wall_ns":1,"thread":0})");
  EXPECT_FALSE(obs::validate_span(bad_span, &error));
}

// --- Determinism: the acceptance bar for the whole subsystem. ---

std::vector<double> rssi_like(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  double shadow = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
    out[i] = -75.0 + shadow + rng.normal(0.0, 1.0);
  }
  return out;
}

// 12 normal identities plus a 3-identity Sybil clique (same radio, small
// per-identity jitter), so the detector flags a non-trivial suspect set.
std::vector<core::NamedSeries> sybil_scenario_series() {
  std::vector<core::NamedSeries> series;
  for (std::size_t i = 0; i < 12; ++i) {
    series.emplace_back(static_cast<IdentityId>(i),
                        ts::Series::uniform(0.0, 0.1, rssi_like(200, 10 + i)));
  }
  const std::vector<double> radio = rssi_like(200, 99);
  for (std::size_t s = 0; s < 3; ++s) {
    std::vector<double> jittered = radio;
    Rng rng(1000 + s);
    for (double& v : jittered) v += rng.normal(0.0, 0.05);
    series.emplace_back(static_cast<IdentityId>(100 + s),
                        ts::Series::uniform(0.0, 0.1, std::move(jittered)));
  }
  return series;
}

struct DetectorOutput {
  std::vector<IdentityId> suspects;
  std::vector<core::PairDistance> pairs;
  double threshold = 0.0;
};

DetectorOutput run_detector(const std::vector<core::NamedSeries>& series,
                            std::size_t threads) {
  core::VoiceprintOptions options;
  options.comparison.threads = threads;
  core::VoiceprintDetector detector(options);
  DetectorOutput out;
  out.suspects = detector.detect_series(series, 50.0);
  out.pairs = detector.last_all_pairs();
  out.threshold = detector.last_threshold();
  return out;
}

void expect_identical(const DetectorOutput& a, const DetectorOutput& b) {
  EXPECT_EQ(a.suspects, b.suspects);
  EXPECT_EQ(a.threshold, b.threshold);  // bitwise, not approximate
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].a, b.pairs[i].a);
    EXPECT_EQ(a.pairs[i].b, b.pairs[i].b);
    EXPECT_EQ(a.pairs[i].normalized, b.pairs[i].normalized);
    EXPECT_EQ(a.pairs[i].raw, b.pairs[i].raw);
    EXPECT_EQ(a.pairs[i].comparable, b.pairs[i].comparable);
  }
}

TEST(ObsDeterminism, EnabledAndDisabledRunsAreBitIdentical) {
  const std::vector<core::NamedSeries> series = sybil_scenario_series();
  const std::string trace_path = temp_path("obs_determinism_trace.jsonl");

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    obs::disable();
    const DetectorOutput baseline = run_detector(series, threads);
    EXPECT_FALSE(baseline.suspects.empty());

    obs::registry().reset();
    obs::open_trace(trace_path);  // metrics + tracing on
    const DetectorOutput instrumented = run_detector(series, threads);
    obs::disable();

    expect_identical(baseline, instrumented);
    // The instrumented run actually instrumented something.
    EXPECT_GT(obs::registry().counter("comparison.sweeps").value(), 0u);
    EXPECT_GT(obs::registry().counter("dtw.dp_solves").value(), 0u);
  }
  obs::registry().reset();
  std::remove(trace_path.c_str());
}

TEST(ObsDeterminism, ThreadCountDoesNotChangeInstrumentedResults) {
  const std::vector<core::NamedSeries> series = sybil_scenario_series();
  obs::registry().reset();
  obs::enable();
  const DetectorOutput serial = run_detector(series, 1);
  const DetectorOutput parallel = run_detector(series, 8);
  obs::disable();
  expect_identical(serial, parallel);
  obs::registry().reset();
}

}  // namespace
}  // namespace vp
