#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "ml/lda.h"
#include "ml/logistic.h"
#include "ml/metrics.h"
#include "ml/perceptron.h"

namespace vp::ml {
namespace {

// Synthetic density–distance data mimicking Fig. 10: Sybil pairs hug small
// distances with a slight density-dependent rise; normal pairs sit higher.
Dataset make_fig10_like_data(std::size_t n_per_class, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  for (std::size_t i = 0; i < n_per_class; ++i) {
    const double den = rng.uniform(10.0, 100.0);
    LabeledPoint sybil;
    sybil.density = den;
    sybil.distance =
        std::max(0.0, 0.02 + 0.0004 * den + rng.normal(0.0, 0.015));
    sybil.sybil_pair = true;
    data.push_back(sybil);

    LabeledPoint normal;
    normal.density = rng.uniform(10.0, 100.0);
    normal.distance =
        std::clamp(0.42 + rng.normal(0.0, 0.15), 0.08, 1.0);
    normal.sybil_pair = false;
    data.push_back(normal);
  }
  return data;
}

TEST(LinearBoundaryTest, ThresholdAndClassification) {
  const LinearBoundary b{.k = 0.001, .b = 0.05};
  EXPECT_DOUBLE_EQ(b.threshold_at(50.0), 0.1);
  EXPECT_TRUE(b.is_sybil(50.0, 0.1));    // boundary inclusive (Algorithm 1)
  EXPECT_TRUE(b.is_sybil(50.0, 0.05));
  EXPECT_FALSE(b.is_sybil(50.0, 0.11));
}

TEST(LdaTest, SeparatesFig10LikeData) {
  const Dataset data = make_fig10_like_data(400, 1);
  const LdaModel model = Lda::fit(data);
  const Confusion c = evaluate(model.boundary, data);
  EXPECT_GT(c.detection_rate(), 0.90);
  EXPECT_LT(c.false_positive_rate(), 0.15);
  // A tighter prior trades detection for false positives.
  const LdaModel tight = Lda::fit(data, 0.05);
  const Confusion ct = evaluate(tight.boundary, data);
  EXPECT_LT(ct.false_positive_rate(), 0.05);
}

TEST(LdaTest, BoundaryHasSmallPositiveInterceptAndSlope) {
  const Dataset data = make_fig10_like_data(400, 2);
  const LdaModel model = Lda::fit(data, 0.05);
  EXPECT_GT(model.boundary.b, 0.0);
  EXPECT_LT(model.boundary.b, 0.3);
  // Sybil distances rise with density in this data, so the learned
  // threshold should too.
  EXPECT_GT(model.boundary.k, 0.0);
}

TEST(LdaTest, SmallerPriorTightensBoundary) {
  const Dataset data = make_fig10_like_data(400, 3);
  const LdaModel tight = Lda::fit(data, 0.01);
  const LdaModel loose = Lda::fit(data, 0.50);
  // At any density the low-prior threshold sits below the high-prior one.
  EXPECT_LT(tight.boundary.threshold_at(50.0),
            loose.boundary.threshold_at(50.0));
}

TEST(LdaTest, RequiresBothClasses) {
  Dataset data;
  for (int i = 0; i < 10; ++i) {
    data.push_back({10.0 + i, 0.5, false});
  }
  EXPECT_THROW(Lda::fit(data), PreconditionError);
}

TEST(LdaTest, DegenerateOrientationThrows) {
  // Sybil pairs with LARGER distances: the detector's rule cannot
  // represent that, and silently inverting would be dangerous.
  Rng rng(5);
  Dataset data;
  for (int i = 0; i < 100; ++i) {
    data.push_back({rng.uniform(10, 100), rng.normal(0.8, 0.05), true});
    data.push_back({rng.uniform(10, 100), rng.normal(0.2, 0.05), false});
  }
  EXPECT_THROW(Lda::fit(data), InvalidArgument);
}

TEST(LogisticTest, SeparatesFig10LikeData) {
  const Dataset data = make_fig10_like_data(300, 7);
  const LogisticModel model = Logistic::fit(data);
  const Confusion c = evaluate(model.boundary, data);
  EXPECT_GT(c.detection_rate(), 0.85);
  EXPECT_LT(c.false_positive_rate(), 0.15);
}

TEST(LogisticTest, ProbabilitiesOrdered) {
  const Dataset data = make_fig10_like_data(300, 8);
  const LogisticModel model = Logistic::fit(data);
  // A clear Sybil point scores a higher probability than a clear normal.
  EXPECT_GT(model.probability(50.0, 0.02), model.probability(50.0, 0.6));
  EXPECT_GT(model.probability(50.0, 0.02), 0.5);
}

TEST(PerceptronTest, SeparatesFig10LikeData) {
  const Dataset data = make_fig10_like_data(300, 9);
  const PerceptronModel model = Perceptron::fit(data);
  const Confusion c = evaluate(model.boundary, data);
  EXPECT_GT(c.detection_rate(), 0.80);
  EXPECT_LT(c.false_positive_rate(), 0.20);
}

TEST(ConfusionTest, CountsAndRates) {
  Confusion c;
  c.add(true, true);    // tp
  c.add(true, false);   // fn
  c.add(false, true);   // fp
  c.add(false, false);  // tn
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_DOUBLE_EQ(c.detection_rate(), 0.5);
  EXPECT_DOUBLE_EQ(c.false_positive_rate(), 0.5);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(c.precision(), 0.5);
  EXPECT_DOUBLE_EQ(c.f1(), 0.5);
}

TEST(ConfusionTest, EdgeCases) {
  Confusion c;
  EXPECT_DOUBLE_EQ(c.detection_rate(), 1.0);       // no positives
  EXPECT_DOUBLE_EQ(c.false_positive_rate(), 0.0);  // no negatives
  EXPECT_DOUBLE_EQ(c.precision(), 1.0);            // nothing predicted
  EXPECT_THROW(c.accuracy(), PreconditionError);
}

TEST(ConfusionTest, Merge) {
  Confusion a, b;
  a.add(true, true);
  b.add(false, true);
  a.merge(b);
  EXPECT_EQ(a.tp, 1u);
  EXPECT_EQ(a.fp, 1u);
  EXPECT_EQ(a.total(), 2u);
}

TEST(AucTest, PerfectSeparationIsOne) {
  Dataset data;
  for (int i = 0; i < 50; ++i) {
    data.push_back({0.0, 0.1, true});
    data.push_back({0.0, 0.9, false});
  }
  EXPECT_DOUBLE_EQ(auc_lower_is_positive(data), 1.0);
}

TEST(AucTest, RandomScoresNearHalf) {
  Rng rng(11);
  Dataset data;
  for (int i = 0; i < 2000; ++i) {
    data.push_back({0.0, rng.uniform(0.0, 1.0), i % 2 == 0});
  }
  EXPECT_NEAR(auc_lower_is_positive(data), 0.5, 0.05);
}

TEST(AucTest, TiesGetHalfCredit) {
  Dataset data;
  data.push_back({0.0, 0.5, true});
  data.push_back({0.0, 0.5, false});
  EXPECT_DOUBLE_EQ(auc_lower_is_positive(data), 0.5);
}

}  // namespace
}  // namespace vp::ml
