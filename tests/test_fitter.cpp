#include "radio/fitter.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/units.h"

namespace vp::radio {
namespace {

constexpr double kFreq = units::kDsrcFrequencyHz;

std::vector<RssiSample> synthesize(const DualSlopeParams& params,
                                   double tx_power_dbm, std::size_t n,
                                   std::uint64_t seed, bool with_noise) {
  const DualSlopeModel model(kFreq, params);
  Rng rng(seed);
  std::vector<RssiSample> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = rng.uniform(2.0, 500.0);
    const double rssi =
        with_noise ? model.sample_rx_power_dbm(tx_power_dbm, d, 0.0, rng)
                   : model.mean_rx_power_dbm(tx_power_dbm, d, 0.0);
    samples.push_back({d, rssi});
  }
  return samples;
}

TEST(Fitter, RecoversNoiselessParametersExactly) {
  const DualSlopeParams truth = DualSlopeParams::campus();
  const auto samples = synthesize(truth, 20.0, 400, 1, /*with_noise=*/false);
  const DualSlopeFitter fitter(kFreq, 20.0);
  const DualSlopeFit fit = fitter.fit(samples, 100.0, 300.0, 1.0);
  EXPECT_NEAR(fit.params.gamma1, truth.gamma1, 0.02);
  EXPECT_NEAR(fit.params.gamma2, truth.gamma2, 0.05);
  EXPECT_NEAR(fit.params.critical_distance_m, truth.critical_distance_m, 3.0);
  EXPECT_LT(fit.params.sigma1_db, 0.1);
  EXPECT_LT(fit.params.sigma2_db, 0.1);
}

class FitterAreaTest : public ::testing::TestWithParam<DualSlopeParams> {};

TEST_P(FitterAreaTest, RecoversNoisyParameters) {
  // The Table IV regression: recover each area's parameters from noisy
  // synthetic measurements of that area's own channel.
  const DualSlopeParams truth = GetParam();
  const auto samples = synthesize(truth, 20.0, 3000, 2, /*with_noise=*/true);
  const DualSlopeFitter fitter(kFreq, 20.0);
  const DualSlopeFit fit = fitter.fit(samples, 60.0, 350.0, 2.0);
  EXPECT_NEAR(fit.params.gamma1, truth.gamma1, 0.15);
  EXPECT_NEAR(fit.params.gamma2, truth.gamma2, 0.35);
  EXPECT_NEAR(fit.params.critical_distance_m, truth.critical_distance_m,
              30.0);
  EXPECT_NEAR(fit.params.sigma1_db, truth.sigma1_db, 0.5);
  EXPECT_NEAR(fit.params.sigma2_db, truth.sigma2_db, 0.8);
}

INSTANTIATE_TEST_SUITE_P(Table4Areas, FitterAreaTest,
                         ::testing::Values(DualSlopeParams::campus(),
                                           DualSlopeParams::rural(),
                                           DualSlopeParams::urban()),
                         [](const auto& info) {
                           switch (info.index) {
                             case 0: return "campus";
                             case 1: return "rural";
                             default: return "urban";
                           }
                         });

TEST(Fitter, CountsSamplesPerSegment) {
  const auto samples =
      synthesize(DualSlopeParams::rural(), 20.0, 500, 3, true);
  const DualSlopeFitter fitter(kFreq, 20.0);
  const DualSlopeFit fit = fitter.fit(samples);
  EXPECT_EQ(fit.n_near + fit.n_far, samples.size());
  EXPECT_GE(fit.n_near, 4u);
  EXPECT_GE(fit.n_far, 4u);
}

TEST(Fitter, TooFewSamplesThrows) {
  const std::vector<RssiSample> few = {{10, -60}, {20, -65}, {30, -70},
                                       {40, -72}};
  const DualSlopeFitter fitter(kFreq, 20.0);
  EXPECT_THROW(fitter.fit(few), PreconditionError);
}

TEST(Fitter, OneSidedDataThrows) {
  // All samples on the near side of every candidate breakpoint.
  std::vector<RssiSample> near;
  Rng rng(4);
  const DualSlopeModel model(kFreq, DualSlopeParams::campus());
  for (int i = 0; i < 50; ++i) {
    const double d = rng.uniform(2.0, 40.0);
    near.push_back({d, model.mean_rx_power_dbm(20.0, d, 0.0)});
  }
  const DualSlopeFitter fitter(kFreq, 20.0);
  EXPECT_THROW(fitter.fit(near, 50.0, 400.0, 2.0), InvalidArgument);
}

TEST(Fitter, InvalidRangesThrow) {
  const auto samples =
      synthesize(DualSlopeParams::campus(), 20.0, 100, 5, false);
  const DualSlopeFitter fitter(kFreq, 20.0);
  EXPECT_THROW(fitter.fit(samples, 0.5, 300.0, 1.0), PreconditionError);
  EXPECT_THROW(fitter.fit(samples, 100.0, 50.0, 1.0), PreconditionError);
}

}  // namespace
}  // namespace vp::radio
