#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/event_queue.h"
#include "common/rng.h"
#include "common/units.h"
#include "mac/channel.h"
#include "mac/csma_ca.h"
#include "mac/phy.h"
#include "radio/dual_slope.h"

namespace vp::mac {
namespace {

constexpr double kFreq = units::kDsrcFrequencyHz;

radio::DualSlopeModel test_model() {
  return radio::DualSlopeModel(kFreq, radio::DualSlopeParams::highway());
}

Frame make_frame(NodeId sender, IdentityId id = 0) {
  Frame f;
  f.identity = id;
  f.sender = sender;
  f.tx_power_dbm = 20.0;
  f.payload_bytes = 500;
  return f;
}

TEST(Phy, AirtimeMatchesTableIII) {
  const PhyParams phy;
  // 500 B at 3 Mbps = 1333.3 µs payload + 40 µs preamble.
  EXPECT_NEAR(phy.airtime_s(500), 1373.3e-6, 1e-6);
  EXPECT_NEAR(phy.aifs_us(), 58.0, 1e-12);  // SIFS 32 + 2×13
}

TEST(Channel, BusyWithinRangeIdleFarAway) {
  const auto model = test_model();
  Channel channel(model, PhyParams{});
  const double airtime = PhyParams{}.airtime_s(500);
  channel.begin(make_frame(0), {1000.0, 0.0}, 0.0, airtime);

  // 50 m away: clearly audible → busy until the frame ends.
  EXPECT_DOUBLE_EQ(channel.busy_until({1050.0, 0.0}, 0.0005, 1), airtime);
  // 5 km away: mean power far below carrier sense → idle.
  EXPECT_DOUBLE_EQ(channel.busy_until({6000.0, 0.0}, 0.0005, 1), 0.0005);
}

TEST(Channel, OwnTransmissionExcludedFromSensing) {
  const auto model = test_model();
  Channel channel(model, PhyParams{});
  channel.begin(make_frame(7), {0.0, 0.0}, 0.0, 0.001);
  EXPECT_DOUBLE_EQ(channel.busy_until({0.0, 0.0}, 0.0005, 7), 0.0005);
}

TEST(Channel, EndedTransmissionNotBusy) {
  const auto model = test_model();
  Channel channel(model, PhyParams{});
  channel.begin(make_frame(0), {0.0, 0.0}, 0.0, 0.001);
  EXPECT_DOUBLE_EQ(channel.busy_until({10.0, 0.0}, 0.002, 1), 0.002);
}

TEST(Channel, InterferenceSumsOverlapping) {
  const auto model = test_model();
  Channel channel(model, PhyParams{});
  const auto seq_a = channel.begin(make_frame(0), {0.0, 0.0}, 0.0, 0.001);
  channel.begin(make_frame(1), {100.0, 0.0}, 0.0005, 0.001);  // overlaps A

  const double i_a = channel.interference_mw({50.0, 0.0}, 0.0, 0.001, seq_a);
  EXPECT_GT(i_a, 0.0);  // B interferes with A at the midpoint

  // A non-overlapping window sees nothing.
  EXPECT_DOUBLE_EQ(
      channel.interference_mw({50.0, 0.0}, 0.005, 0.006, seq_a), 0.0);
}

TEST(Channel, HalfDuplexDetection) {
  const auto model = test_model();
  Channel channel(model, PhyParams{});
  channel.begin(make_frame(3), {0.0, 0.0}, 0.0, 0.001);
  EXPECT_TRUE(channel.node_transmitting_during(3, 0.0005, 0.002));
  EXPECT_FALSE(channel.node_transmitting_during(3, 0.002, 0.003));
  EXPECT_FALSE(channel.node_transmitting_during(4, 0.0, 0.001));
}

TEST(Channel, PruneDropsOldTransmissions) {
  const auto model = test_model();
  Channel channel(model, PhyParams{});
  channel.begin(make_frame(0), {0.0, 0.0}, 0.0, 0.001);
  channel.begin(make_frame(1), {0.0, 0.0}, 1.0, 0.001);
  channel.prune(0.5);
  EXPECT_EQ(channel.active_count(1.0005), 1u);
  // The pruned frame no longer contributes interference.
  EXPECT_DOUBLE_EQ(channel.interference_mw({10.0, 0.0}, 0.0, 0.001, 999), 0.0);
}

// A small fixture wiring one CSMA MAC to a channel and queue.
class CsmaFixture : public ::testing::Test {
 protected:
  CsmaFixture()
      : model_(test_model()), channel_(model_, phy_) {}

  std::unique_ptr<CsmaCa> make_mac(NodeId id, mob::Vec2 pos,
                                   std::vector<Frame>* sent) {
    return std::make_unique<CsmaCa>(
        phy_, channel_, queue_, Rng(100 + id), id, [pos] { return pos; },
        [this, sent, id](const Frame& f) {
          sent->push_back(f);
          const double airtime = phy_.airtime_s(f.payload_bytes);
          const auto seq =
              channel_.begin(f, {0.0, 0.0}, queue_.now(), airtime);
          (void)seq;
          queue_.schedule_in(airtime, [this, id] { macs_[id]->on_transmission_complete(); });
        },
        /*queue_capacity=*/4);
  }

  PhyParams phy_;
  radio::DualSlopeModel model_;
  Channel channel_;
  EventQueue queue_;
  std::map<NodeId, CsmaCa*> macs_;
};

TEST_F(CsmaFixture, SingleNodeTransmitsAfterBackoff) {
  std::vector<Frame> sent;
  auto mac = make_mac(0, {0.0, 0.0}, &sent);
  macs_[0] = mac.get();
  mac->enqueue(make_frame(0, 42));
  queue_.run_until(1.0);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].identity, 42u);
  EXPECT_EQ(mac->sent(), 1u);
  EXPECT_EQ(mac->queue_depth(), 0u);
}

TEST_F(CsmaFixture, FramesServedInOrder) {
  std::vector<Frame> sent;
  auto mac = make_mac(0, {0.0, 0.0}, &sent);
  macs_[0] = mac.get();
  for (IdentityId i = 0; i < 3; ++i) mac->enqueue(make_frame(0, i));
  queue_.run_until(1.0);
  ASSERT_EQ(sent.size(), 3u);
  for (IdentityId i = 0; i < 3; ++i) EXPECT_EQ(sent[i].identity, i);
}

TEST_F(CsmaFixture, QueueOverflowDrops) {
  std::vector<Frame> sent;
  auto mac = make_mac(0, {0.0, 0.0}, &sent);
  macs_[0] = mac.get();
  // Capacity is 4; one may dequeue into transmission quickly, so pushing
  // 10 must drop at least 5.
  for (IdentityId i = 0; i < 10; ++i) mac->enqueue(make_frame(0, i));
  EXPECT_GE(mac->drops(), 5u);
  queue_.run_until(1.0);
  EXPECT_LE(sent.size(), 5u);
}

TEST_F(CsmaFixture, TwoNodesSerializeWhenInRange) {
  // Both co-located: the second defers until the first frame ends, so the
  // two transmissions must not overlap.
  std::vector<Frame> sent;
  auto mac_a = make_mac(0, {0.0, 0.0}, &sent);
  auto mac_b = make_mac(1, {5.0, 0.0}, &sent);
  macs_[0] = mac_a.get();
  macs_[1] = mac_b.get();

  mac_a->enqueue(make_frame(0, 1));
  queue_.run_until(0.0002);  // A's backoff may still be pending
  mac_b->enqueue(make_frame(1, 2));
  queue_.run_until(1.0);

  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(channel_.total_transmissions(), 2u);
}

}  // namespace
}  // namespace vp::mac
