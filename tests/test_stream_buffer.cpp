#include "stream/beacon_buffer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "sim/rssi_log.h"

namespace vp::stream {
namespace {

TEST(BeaconBuffer, AppendAndWindowQueries) {
  BeaconBuffer ring(8);
  for (int i = 0; i < 5; ++i) ring.push(i * 1.0, -70.0 - i);
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_DOUBLE_EQ(ring.front_time(), 0.0);
  EXPECT_DOUBLE_EQ(ring.back_time(), 4.0);
  EXPECT_EQ(ring.count_in(1.0, 3.0), 2u);  // [1, 3) half-open
  EXPECT_EQ(ring.count_in(3.0, 3.0), 0u);
  EXPECT_EQ(ring.count_in(5.0, 10.0), 0u);
  EXPECT_EQ(ring.count_in(3.0, 1.0), 0u);  // inverted window is empty

  ts::Series out;
  ring.extract(1.0, 3.0, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out.time(0), 1.0);
  EXPECT_DOUBLE_EQ(out.value(0), -71.0);
  EXPECT_DOUBLE_EQ(out.value(1), -72.0);
}

TEST(BeaconBuffer, CapacityOneAndRejections) {
  BeaconBuffer ring(1);
  EXPECT_FALSE(ring.push(1.0, -70.0));
  EXPECT_TRUE(ring.push(2.0, -71.0));  // evicts the only slot
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_DOUBLE_EQ(ring.front_time(), 2.0);
  EXPECT_THROW(ring.push(1.5, -70.0), PreconditionError);  // time regression
  EXPECT_THROW(BeaconBuffer(0), PreconditionError);
}

TEST(BeaconBuffer, EvictionKeepsNewestAndNeverExceedsCapacity) {
  BeaconBuffer ring(4);
  std::size_t evictions = 0;
  for (int i = 0; i < 20; ++i) {
    if (ring.push(i * 0.1, -60.0 + i)) ++evictions;
    EXPECT_LE(ring.size(), 4u);
  }
  EXPECT_EQ(evictions, 16u);
  EXPECT_EQ(ring.size(), 4u);
  // The survivors are exactly the newest four.
  ts::Series out;
  ring.extract(0.0, 10.0, out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out.value(0), -60.0 + 16);
  EXPECT_DOUBLE_EQ(out.value(3), -60.0 + 19);
}

TEST(BeaconBuffer, EvictBefore) {
  BeaconBuffer ring(16);
  for (int i = 0; i < 10; ++i) ring.push(i * 1.0, -70.0);
  EXPECT_EQ(ring.evict_before(4.0), 4u);
  EXPECT_EQ(ring.size(), 6u);
  EXPECT_DOUBLE_EQ(ring.front_time(), 4.0);
  EXPECT_EQ(ring.evict_before(4.0), 0u);  // idempotent at the boundary
  EXPECT_EQ(ring.evict_before(100.0), 6u);
  EXPECT_TRUE(ring.empty());
}

// The sliding Welford summary must track a batch recompute through many
// append/evict cycles (the reverse update accumulates only rounding).
TEST(BeaconBuffer, WelfordMatchesBatchUnderSliding) {
  BeaconBuffer ring(32);
  Rng rng(123);
  std::vector<double> shadow;  // reference copy of the ring contents
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.uniform(0.01, 0.2);
    const double v = -75.0 + rng.normal(0.0, 4.0);
    if (ring.push(t, v)) shadow.erase(shadow.begin());
    shadow.push_back(v);

    RunningStats reference;
    for (double x : shadow) reference.add(x);
    ASSERT_NEAR(ring.mean(), reference.mean(), 1e-9);
    ASSERT_NEAR(ring.population_variance(), reference.population_variance(),
                1e-7);
  }
  // And through explicit front evictions.
  const std::size_t dropped = ring.evict_before(t - 1.0);
  shadow.erase(shadow.begin(), shadow.begin() + static_cast<long>(dropped));
  if (!shadow.empty()) {
    RunningStats reference;
    for (double x : shadow) reference.add(x);
    EXPECT_NEAR(ring.mean(), reference.mean(), 1e-9);
    EXPECT_NEAR(ring.population_variance(), reference.population_variance(),
                1e-7);
  }
}

// Extraction over a fully retained window is bit-identical to
// RssiLog::rssi_series on the same records — the parity foundation.
TEST(BeaconBuffer, ExtractionMatchesRssiLogBitForBit) {
  BeaconBuffer ring(512);
  sim::RssiLog log;
  Rng rng(7);
  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    t += rng.uniform(0.05, 0.15);
    const double v = -70.0 + rng.normal(0.0, 3.0);
    ring.push(t, v);
    sim::BeaconRecord record;
    record.time_s = t;
    record.rssi_dbm = v;
    log.record(42, record);
  }
  for (const auto& [t0, t1] : std::vector<std::pair<double, double>>{
           {0.0, t + 1.0}, {5.0, 15.0}, {t / 2, t / 2 + 7.0}}) {
    ts::Series streamed;
    ring.extract(t0, t1, streamed);
    const ts::Series batch = log.rssi_series(42, t0, t1);
    ASSERT_EQ(streamed.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(streamed.time(i), batch.time(i));    // exact, not NEAR
      EXPECT_EQ(streamed.value(i), batch.value(i));
    }
    EXPECT_EQ(ring.count_in(t0, t1), batch.size());
  }
}

TEST(BeaconBuffer, StatsRequireNonEmpty) {
  BeaconBuffer ring(4);
  EXPECT_THROW(ring.mean(), PreconditionError);
  EXPECT_THROW(ring.front_time(), PreconditionError);
  ring.push(1.0, -70.0);
  EXPECT_DOUBLE_EQ(ring.mean(), -70.0);
  EXPECT_DOUBLE_EQ(ring.population_variance(), 0.0);
  ring.evict_before(2.0);
  EXPECT_THROW(ring.population_variance(), PreconditionError);
}

}  // namespace
}  // namespace vp::stream
