#include "stream/beacon_buffer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "sim/rssi_log.h"

namespace vp::stream {
namespace {

TEST(BeaconBuffer, AppendAndWindowQueries) {
  BeaconBuffer ring(8);
  for (int i = 0; i < 5; ++i) ring.push(i * 1.0, -70.0 - i);
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_DOUBLE_EQ(ring.front_time(), 0.0);
  EXPECT_DOUBLE_EQ(ring.back_time(), 4.0);
  EXPECT_EQ(ring.count_in(1.0, 3.0), 2u);  // [1, 3) half-open
  EXPECT_EQ(ring.count_in(3.0, 3.0), 0u);
  EXPECT_EQ(ring.count_in(5.0, 10.0), 0u);
  EXPECT_EQ(ring.count_in(3.0, 1.0), 0u);  // inverted window is empty

  ts::Series out;
  ring.extract(1.0, 3.0, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out.time(0), 1.0);
  EXPECT_DOUBLE_EQ(out.value(0), -71.0);
  EXPECT_DOUBLE_EQ(out.value(1), -72.0);
}

TEST(BeaconBuffer, CapacityOneAndRejections) {
  BeaconBuffer ring(1);
  EXPECT_FALSE(ring.push(1.0, -70.0));
  EXPECT_TRUE(ring.push(2.0, -71.0));  // evicts the only slot
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_DOUBLE_EQ(ring.front_time(), 2.0);
  EXPECT_THROW(ring.push(1.5, -70.0), PreconditionError);  // time regression
  EXPECT_THROW(BeaconBuffer(0), PreconditionError);
}

TEST(BeaconBuffer, EvictionKeepsNewestAndNeverExceedsCapacity) {
  BeaconBuffer ring(4);
  std::size_t evictions = 0;
  for (int i = 0; i < 20; ++i) {
    if (ring.push(i * 0.1, -60.0 + i)) ++evictions;
    EXPECT_LE(ring.size(), 4u);
  }
  EXPECT_EQ(evictions, 16u);
  EXPECT_EQ(ring.size(), 4u);
  // The survivors are exactly the newest four.
  ts::Series out;
  ring.extract(0.0, 10.0, out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out.value(0), -60.0 + 16);
  EXPECT_DOUBLE_EQ(out.value(3), -60.0 + 19);
}

TEST(BeaconBuffer, EvictBefore) {
  BeaconBuffer ring(16);
  for (int i = 0; i < 10; ++i) ring.push(i * 1.0, -70.0);
  EXPECT_EQ(ring.evict_before(4.0), 4u);
  EXPECT_EQ(ring.size(), 6u);
  EXPECT_DOUBLE_EQ(ring.front_time(), 4.0);
  EXPECT_EQ(ring.evict_before(4.0), 0u);  // idempotent at the boundary
  EXPECT_EQ(ring.evict_before(100.0), 6u);
  EXPECT_TRUE(ring.empty());
}

// The sliding Welford summary must track a batch recompute through many
// append/evict cycles (the reverse update accumulates only rounding).
TEST(BeaconBuffer, WelfordMatchesBatchUnderSliding) {
  BeaconBuffer ring(32);
  Rng rng(123);
  std::vector<double> shadow;  // reference copy of the ring contents
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.uniform(0.01, 0.2);
    const double v = -75.0 + rng.normal(0.0, 4.0);
    if (ring.push(t, v)) shadow.erase(shadow.begin());
    shadow.push_back(v);

    RunningStats reference;
    for (double x : shadow) reference.add(x);
    ASSERT_NEAR(ring.mean(), reference.mean(), 1e-9);
    ASSERT_NEAR(ring.population_variance(), reference.population_variance(),
                1e-7);
  }
  // And through explicit front evictions.
  const std::size_t dropped = ring.evict_before(t - 1.0);
  shadow.erase(shadow.begin(), shadow.begin() + static_cast<long>(dropped));
  if (!shadow.empty()) {
    RunningStats reference;
    for (double x : shadow) reference.add(x);
    EXPECT_NEAR(ring.mean(), reference.mean(), 1e-9);
    EXPECT_NEAR(ring.population_variance(), reference.population_variance(),
                1e-7);
  }
}

// Extraction over a fully retained window is bit-identical to
// RssiLog::rssi_series on the same records — the parity foundation.
TEST(BeaconBuffer, ExtractionMatchesRssiLogBitForBit) {
  BeaconBuffer ring(512);
  sim::RssiLog log;
  Rng rng(7);
  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    t += rng.uniform(0.05, 0.15);
    const double v = -70.0 + rng.normal(0.0, 3.0);
    ring.push(t, v);
    sim::BeaconRecord record;
    record.time_s = t;
    record.rssi_dbm = v;
    log.record(42, record);
  }
  for (const auto& [t0, t1] : std::vector<std::pair<double, double>>{
           {0.0, t + 1.0}, {5.0, 15.0}, {t / 2, t / 2 + 7.0}}) {
    ts::Series streamed;
    ring.extract(t0, t1, streamed);
    const ts::Series batch = log.rssi_series(42, t0, t1);
    ASSERT_EQ(streamed.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(streamed.time(i), batch.time(i));    // exact, not NEAR
      EXPECT_EQ(streamed.value(i), batch.value(i));
    }
    EXPECT_EQ(ring.count_in(t0, t1), batch.size());
  }
}

// Randomised model test: the ring against a naive vector that applies
// the same operations the slow, obviously-correct way. Random appends
// (with duplicate timestamps), random front evictions, and window
// queries with exact-boundary endpoints (t0/t1 landing precisely on
// stored sample times, where a half-open off-by-one would hide).
TEST(BeaconBuffer, RandomizedTraceMatchesNaiveModel) {
  struct Sample {
    double time;
    double value;
  };
  for (std::uint64_t seed : {3u, 17u, 91u}) {
    Rng rng(seed);
    const auto capacity = static_cast<std::size_t>(rng.uniform_int(1, 24));
    BeaconBuffer ring(capacity);
    std::vector<Sample> model;  // ring contents, oldest → newest

    double t = 0.0;
    for (int step = 0; step < 2000; ++step) {
      const double roll = rng.uniform(0.0, 1.0);
      if (roll < 0.6) {
        // Append; 25% of appends reuse the previous timestamp (CCH+SCH
        // double reception is timestamp-equal by design).
        if (model.empty() || !rng.chance(0.25)) t += rng.uniform(0.0, 0.3);
        const double v = rng.uniform(-95.0, -45.0);
        ring.push(t, v);
        model.push_back({t, v});
        if (model.size() > capacity) model.erase(model.begin());
      } else if (roll < 0.8) {
        // Evict a random horizon, sometimes exactly a stored time.
        double horizon = rng.uniform(t - 2.0, t + 0.5);
        if (!model.empty() && rng.chance(0.5)) {
          horizon = model[static_cast<std::size_t>(rng.uniform_int(
                              0, static_cast<std::int64_t>(model.size()) - 1))]
                        .time;
        }
        ring.evict_before(horizon);
        std::erase_if(model,
                      [&](const Sample& s) { return s.time < horizon; });
      } else {
        // Window query; half the time pin an endpoint to a stored time.
        double t0 = rng.uniform(t - 3.0, t + 0.5);
        double t1 = t0 + rng.uniform(0.0, 2.0);
        if (!model.empty() && rng.chance(0.5)) {
          t0 = model[static_cast<std::size_t>(rng.uniform_int(
                         0, static_cast<std::int64_t>(model.size()) - 1))]
                   .time;
        }
        if (!model.empty() && rng.chance(0.5)) {
          t1 = model[static_cast<std::size_t>(rng.uniform_int(
                         0, static_cast<std::int64_t>(model.size()) - 1))]
                   .time;
        }
        std::size_t expected = 0;
        for (const Sample& s : model) {
          if (s.time >= t0 && s.time < t1) ++expected;  // half-open
        }
        ASSERT_EQ(ring.count_in(t0, t1), expected);
        ts::Series extracted;
        ring.extract(t0, t1, extracted);
        ASSERT_EQ(extracted.size(), expected);
        std::size_t k = 0;
        for (const Sample& s : model) {
          if (s.time >= t0 && s.time < t1) {
            EXPECT_EQ(extracted.time(k), s.time);    // exact, not NEAR
            EXPECT_EQ(extracted.value(k), s.value);
            ++k;
          }
        }
      }

      // Structural invariants after every step.
      ASSERT_EQ(ring.size(), model.size());
      ASSERT_LE(ring.size(), capacity);
      if (!model.empty()) {
        ASSERT_EQ(ring.front_time(), model.front().time);
        ASSERT_EQ(ring.back_time(), model.back().time);
        double mean = 0.0;
        for (const Sample& s : model) mean += s.value;
        mean /= static_cast<double>(model.size());
        EXPECT_NEAR(ring.mean(), mean, 1e-6);
      }
    }
  }
}

// Snapshot/restore round-trips the exact ring state, including the raw
// Welford accumulators (checkpoint restore parity needs the same bits,
// not a recomputation).
TEST(BeaconBuffer, SnapshotRoundTripIsExact) {
  BeaconBuffer ring(16);
  Rng rng(5);
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {  // wraps and evicts: head_ != 0
    t += rng.uniform(0.01, 0.2);
    ring.push(t, rng.uniform(-90.0, -50.0));
  }
  ring.evict_before(t - 1.5);

  const BeaconBuffer::Snapshot snap = ring.snapshot();
  const BeaconBuffer restored = BeaconBuffer::from_snapshot(snap);
  ASSERT_EQ(restored.size(), ring.size());
  EXPECT_EQ(restored.capacity(), ring.capacity());
  EXPECT_EQ(restored.mean(), ring.mean());  // bitwise
  EXPECT_EQ(restored.population_variance(), ring.population_variance());
  ts::Series a;
  ts::Series b;
  ring.extract(0.0, t + 1.0, a);
  restored.extract(0.0, t + 1.0, b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.time(i), b.time(i));
    EXPECT_EQ(a.value(i), b.value(i));
  }
}

TEST(BeaconBuffer, FromSnapshotRejectsMalformedState) {
  BeaconBuffer::Snapshot snap;
  snap.capacity = 2;
  snap.times = {1.0, 2.0, 3.0};
  snap.values = {-70.0, -71.0, -72.0};
  EXPECT_THROW(BeaconBuffer::from_snapshot(snap), PreconditionError);  // > cap
  snap.capacity = 4;
  snap.values.pop_back();
  EXPECT_THROW(BeaconBuffer::from_snapshot(snap), PreconditionError);  // sizes
  snap.values.push_back(-72.0);
  snap.times = {2.0, 1.0, 3.0};
  EXPECT_THROW(BeaconBuffer::from_snapshot(snap), PreconditionError);  // order
}

TEST(BeaconBuffer, StatsRequireNonEmpty) {
  BeaconBuffer ring(4);
  EXPECT_THROW(ring.mean(), PreconditionError);
  EXPECT_THROW(ring.front_time(), PreconditionError);
  ring.push(1.0, -70.0);
  EXPECT_DOUBLE_EQ(ring.mean(), -70.0);
  EXPECT_DOUBLE_EQ(ring.population_variance(), 0.0);
  ring.evict_before(2.0);
  EXPECT_THROW(ring.population_variance(), PreconditionError);
}

}  // namespace
}  // namespace vp::stream
