// Tests for the smart-attacker modes (Section VII) and the mid-run attack
// start, plus their impact on the detectors.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baseline/rssi_variation.h"
#include "core/detector.h"
#include "sim/runner.h"
#include "sim/world.h"

namespace vp {
namespace {

sim::ScenarioConfig attack_config(
    sim::ScenarioConfig::AttackerPowerMode power,
    sim::ScenarioConfig::SybilTimingMode timing, std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.density_per_km = 15.0;
  config.sim_time_s = 40.0;
  config.attacker_power_mode = power;
  config.sybil_timing_mode = timing;
  config.seed = seed;
  return config;
}

TEST(Attacks, PerPacketPowerShowsUpInDeclaredPower) {
  sim::World world(attack_config(
      sim::ScenarioConfig::AttackerPowerMode::kPerPacket,
      sim::ScenarioConfig::SybilTimingMode::kBurst, 31));
  world.run();
  // Find a Sybil identity and check the observed declared powers vary.
  const sim::Node* attacker = nullptr;
  for (const auto& node : world.nodes()) {
    if (node->malicious()) attacker = node.get();
  }
  ASSERT_NE(attacker, nullptr);
  const IdentityId sybil = attacker->identities()[1].id;
  bool found_observer = false;
  for (NodeId obs : world.normal_node_ids()) {
    const auto records = world.node(obs).log().records(sybil, 0.0, 40.0);
    if (records.size() < 20) continue;
    found_observer = true;
    std::set<double> powers;
    for (const auto& r : records) powers.insert(r.declared_tx_power_dbm);
    EXPECT_GT(powers.size(), 5u);  // re-drawn per packet
    break;
  }
  EXPECT_TRUE(found_observer);
}

TEST(Attacks, ConstantPowerIsConstant) {
  sim::World world(attack_config(
      sim::ScenarioConfig::AttackerPowerMode::kConstant,
      sim::ScenarioConfig::SybilTimingMode::kBurst, 31));
  world.run();
  for (const auto& node : world.nodes()) {
    for (NodeId obs : world.normal_node_ids()) {
      if (obs == node->id()) continue;
      for (const auto& identity : node->identities()) {
        const auto records =
            world.node(obs).log().records(identity.id, 0.0, 40.0);
        for (const auto& r : records) {
          EXPECT_DOUBLE_EQ(r.declared_tx_power_dbm, identity.tx_power_dbm);
        }
        if (!records.empty()) return;  // one verified link is enough
      }
    }
  }
}

TEST(Attacks, PowerControlDegradesVoiceprint) {
  auto run_dr = [](sim::ScenarioConfig::AttackerPowerMode mode) {
    sim::World world(attack_config(
        mode, sim::ScenarioConfig::SybilTimingMode::kBurst, 33));
    world.run();
    core::VoiceprintDetector detector(core::tuned_simulation_options());
    return sim::evaluate(world, detector, {.max_observers = 10}).average_dr;
  };
  const double dr_constant =
      run_dr(sim::ScenarioConfig::AttackerPowerMode::kConstant);
  const double dr_control =
      run_dr(sim::ScenarioConfig::AttackerPowerMode::kPerPacket);
  // Section VII: power control evades RSSI-shape detection (at least
  // partially — the attack's hop range is only ±3 dB here).
  EXPECT_LT(dr_control, dr_constant);
}

TEST(Attacks, StaggeredTimingSpreadsBeaconPhases) {
  sim::World world(attack_config(
      sim::ScenarioConfig::AttackerPowerMode::kConstant,
      sim::ScenarioConfig::SybilTimingMode::kStaggered, 35));
  world.run();
  const sim::Node* attacker = nullptr;
  for (const auto& node : world.nodes()) {
    if (node->malicious()) attacker = node.get();
  }
  ASSERT_NE(attacker, nullptr);
  // Collect the first-beacon times of the attacker's identities at some
  // observer; staggered mode should spread them over the beacon period
  // rather than bunching within a few milliseconds.
  for (NodeId obs : world.normal_node_ids()) {
    std::vector<double> firsts;
    for (const auto& identity : attacker->identities()) {
      const auto records =
          world.node(obs).log().records(identity.id, 0.0, 40.0);
      if (!records.empty()) firsts.push_back(records.front().time_s);
    }
    if (firsts.size() < 3) continue;
    std::sort(firsts.begin(), firsts.end());
    double max_gap = 0.0;
    for (std::size_t i = 1; i < firsts.size(); ++i) {
      max_gap = std::max(max_gap, firsts[i] - firsts[i - 1]);
    }
    EXPECT_GT(max_gap, 0.004);  // bursts would arrive ~1.4 ms apart
    return;
  }
  FAIL() << "no observer heard three attacker identities";
}

TEST(Attacks, AttackStartDelaysSybilBeacons) {
  sim::ScenarioConfig config = attack_config(
      sim::ScenarioConfig::AttackerPowerMode::kConstant,
      sim::ScenarioConfig::SybilTimingMode::kBurst, 37);
  config.attack_start_time_s = 20.0;
  sim::World world(config);
  world.run();
  for (const auto& node : world.nodes()) {
    for (NodeId obs : world.normal_node_ids()) {
      if (obs == node->id()) continue;
      for (const auto& identity : node->identities()) {
        const auto records =
            world.node(obs).log().records(identity.id, 0.0, 40.0);
        if (records.empty()) continue;
        if (identity.sybil) {
          EXPECT_GE(records.front().time_s, 20.0);
        }
      }
    }
  }
}

TEST(Attacks, MidRunAttackTriggersEntryCheck) {
  // With the attack starting mid-run, the Bouassida-style entry check has
  // something to catch: identities appearing at full strength mid-range.
  sim::ScenarioConfig config = attack_config(
      sim::ScenarioConfig::AttackerPowerMode::kConstant,
      sim::ScenarioConfig::SybilTimingMode::kBurst, 39);
  config.attack_start_time_s = 25.0;
  config.sim_time_s = 45.0;
  sim::World world(config);
  world.run();
  baseline::RssiVariationDetector detector;
  const sim::EvaluationResult result =
      sim::evaluate(world, detector, {.max_observers = 10});
  // Only Sybils first heard well inside the radio horizon are separable
  // from far vehicles genuinely entering range, so the heuristic catches a
  // minority share — but strictly more than the ~0 it scores when the
  // attack runs from t=0 (nothing ever "appears").
  EXPECT_GT(result.average_dr, 0.1);
  EXPECT_LT(result.average_fpr, 0.15);
}

}  // namespace
}  // namespace vp
