// Property sweeps over whole simulated worlds: accounting identities,
// physical invariants of the logs and windows, parameterized across
// densities and seeds.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "sim/world.h"

namespace vp::sim {
namespace {

using Params = std::tuple<double /*density*/, std::uint64_t /*seed*/>;

class WorldProperty : public ::testing::TestWithParam<Params> {
 protected:
  static World& world_for(const Params& params) {
    // Cache worlds across the test cases of one parameterisation.
    static std::map<Params, std::unique_ptr<World>> cache;
    auto& slot = cache[params];
    if (!slot) {
      ScenarioConfig config;
      config.density_per_km = std::get<0>(params);
      config.sim_time_s = 25.0;
      config.seed = std::get<1>(params);
      slot = std::make_unique<World>(config);
      slot->run();
    }
    return *slot;
  }

  World& world() { return world_for(GetParam()); }
};

TEST_P(WorldProperty, IdentityAccounting) {
  World& w = world();
  std::size_t identities = 0;
  std::size_t malicious = 0;
  for (const auto& node : w.nodes()) {
    identities += node->identities().size();
    malicious += node->malicious() ? 1 : 0;
  }
  EXPECT_EQ(identities, w.truth().identity_count());
  EXPECT_EQ(malicious, w.config().malicious_count());
  EXPECT_EQ(w.nodes().size(), w.config().vehicle_count());
}

TEST_P(WorldProperty, FrameAccountingIsConsistent) {
  const WorldStats& s = world().stats();
  EXPECT_GT(s.frames_sent, 0u);
  // Every reception outcome traces back to a sent frame evaluated at a
  // receiver; a frame has at most (N-1) receivers.
  const auto n = world().nodes().size();
  EXPECT_LE(s.frames_received + s.frames_below_sensitivity +
                s.frames_collided + s.frames_half_duplex_missed,
            s.frames_sent * (n - 1));
}

TEST_P(WorldProperty, LoggedRssiRespectsHardware) {
  World& w = world();
  for (const auto& node : w.nodes()) {
    for (IdentityId id : node->log().identities_heard(0.0, 25.0, 1)) {
      for (const auto& r : node->log().records(id, 0.0, 25.0)) {
        EXPECT_GE(r.rssi_dbm, w.config().receiver.sensitivity_dbm);
        EXPECT_GE(r.time_s, 0.0);
        EXPECT_LE(r.time_s, w.config().sim_time_s + 1e-9);
        EXPECT_GE(r.declared_tx_power_dbm, w.config().tx_power_min_dbm);
        EXPECT_LE(r.declared_tx_power_dbm, w.config().tx_power_max_dbm);
      }
    }
  }
}

TEST_P(WorldProperty, ObservationWindowsWellFormed) {
  World& w = world();
  for (NodeId obs : w.normal_node_ids()) {
    const ObservationWindow window = w.observe(obs, 20.0);
    EXPECT_EQ(window.observer, obs);
    EXPECT_GE(window.estimated_density_per_km, 0.0);
    std::set<IdentityId> seen;
    for (const NeighborObservation& n : window.neighbors) {
      EXPECT_TRUE(seen.insert(n.id).second);  // no duplicate identities
      EXPECT_EQ(n.rssi.size(), n.beacons.size());
      for (std::size_t i = 0; i < n.rssi.size(); ++i) {
        EXPECT_DOUBLE_EQ(n.rssi.value(i), n.beacons[i].rssi_dbm);
        EXPECT_DOUBLE_EQ(n.rssi.time(i), n.beacons[i].time_s);
      }
    }
  }
}

TEST_P(WorldProperty, SybilClaimsDriftWithAttacker) {
  // A Sybil identity's claimed position must track its owner's true
  // trajectory at a fixed offset (± GPS noise).
  World& w = world();
  for (const auto& node : w.nodes()) {
    if (!node->malicious()) continue;
    for (const auto& identity : node->identities()) {
      if (!identity.sybil) continue;
      for (NodeId obs : w.normal_node_ids()) {
        for (const auto& r :
             w.node(obs).log().records(identity.id, 0.0, 25.0)) {
          const mob::Vec2 owner_pos =
              node->trace().position_at(r.time_s);
          const double expected_x = owner_pos.x + identity.claimed_offset.x;
          // GPS noise 2.5 m (3-sigma ≈ 8m) plus trace interpolation slack.
          EXPECT_NEAR(r.claimed_position.x, expected_x, 15.0);
        }
      }
    }
  }
}

TEST_P(WorldProperty, TracesAreContinuous) {
  World& w = world();
  const double max_speed = w.config().mobility.max_speed_mps;
  for (const auto& node : w.nodes()) {
    const auto& points = node->trace().points();
    for (std::size_t i = 1; i < points.size(); ++i) {
      const double dt = points[i].time_s - points[i - 1].time_s;
      const double dx =
          std::abs(points[i].position.x - points[i - 1].position.x);
      // Either a smooth step or an end-of-road wrap (which relocates the
      // vehicle to the opposite flow).
      const bool smooth = dx <= max_speed * dt + 1e-6;
      const bool wrap = dx > w.highway().length_m() * 0.5;
      EXPECT_TRUE(smooth || wrap) << "node " << node->id() << " jump " << dx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorldProperty,
    ::testing::Combine(::testing::Values(5.0, 15.0, 35.0),
                       ::testing::Values(1u, 9u)),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "den" + std::to_string(static_cast<int>(std::get<0>(info.param))) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace vp::sim
