#include "radio/fading.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/stats.h"

namespace vp::radio {
namespace {

TEST(Fading, UnitVarianceScaledBySigma) {
  CorrelatedShadowingField field(1.0, 0.0, Rng(1));
  RunningStats stats;
  // Samples 10 coherence times apart are effectively independent.
  for (int i = 0; i < 5000; ++i) {
    stats.add(field.shadow_only(0, 1, 4.0, i * 10.0));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.2);
  EXPECT_NEAR(stats.stddev(), 4.0, 0.2);
}

TEST(Fading, SamePairHighlyCorrelatedAtShortLags) {
  CorrelatedShadowingField field(1.0, 0.0, Rng(2));
  double prev = field.shadow_only(0, 1, 1.0, 0.0);
  double corr_acc = 0.0;
  int n = 0;
  for (int i = 1; i < 2000; ++i) {
    const double cur = field.shadow_only(0, 1, 1.0, i * 0.1);
    corr_acc += prev * cur;
    prev = cur;
    ++n;
  }
  // For OU with unit variance, E[X(t)X(t+0.1)] = exp(−0.1) ≈ 0.905.
  EXPECT_NEAR(corr_acc / n, std::exp(-0.1), 0.07);
}

TEST(Fading, DistinctPairsIndependent) {
  CorrelatedShadowingField field(1.0, 0.0, Rng(3));
  double cross = 0.0;
  int n = 0;
  for (int i = 0; i < 3000; ++i) {
    const double a = field.shadow_only(0, 1, 1.0, i * 10.0);
    const double b = field.shadow_only(2, 1, 1.0, i * 10.0);
    cross += a * b;
    ++n;
  }
  EXPECT_NEAR(cross / n, 0.0, 0.06);
}

TEST(Fading, DirectionalPairsDistinct) {
  // tx→rx and rx→tx are tracked separately (different antennas/paths may
  // differ; also keeps the key space simple).
  CorrelatedShadowingField field(1.0, 0.0, Rng(4));
  const double ab = field.shadow_only(5, 6, 1.0, 0.0);
  const double ba = field.shadow_only(6, 5, 1.0, 0.0);
  EXPECT_NE(ab, ba);
  EXPECT_EQ(field.tracked_pairs(), 2u);
}

TEST(Fading, SameRadioIdentitiesShareProcess) {
  // The Observation-3 property: two samples of the SAME pair a few ms apart
  // are nearly identical, because Sybil identities ride one process.
  CorrelatedShadowingField field(1.0, 0.0, Rng(5));
  for (int i = 0; i < 100; ++i) {
    const double t = i * 0.1;
    const double a = field.shadow_only(0, 1, 3.0, t);
    const double b = field.shadow_only(0, 1, 3.0, t + 0.005);
    // 5 ms ≪ 1 s coherence: the step deviation is 3·sqrt(2·(1−e^−0.005))
    // ≈ 0.3 dB; 1.5 dB is a 5-sigma bound.
    EXPECT_NEAR(a, b, 1.5);
  }
}

TEST(Fading, NoiseAddsOnTop) {
  CorrelatedShadowingField quiet(1.0, 0.0, Rng(6));
  CorrelatedShadowingField noisy(1.0, 1.5, Rng(6));
  // With σ=0 the shadow term vanishes: quiet gives exactly 0, noisy pure
  // i.i.d. noise with the configured deviation.
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    EXPECT_DOUBLE_EQ(quiet.sample(0, 1, 0.0, i * 0.1), 0.0);
    stats.add(noisy.sample(0, 1, 0.0, i * 0.1));
  }
  EXPECT_NEAR(stats.stddev(), 1.5, 0.1);
}

TEST(Fading, TimeMustNotGoBackwards) {
  CorrelatedShadowingField field(1.0, 0.0, Rng(7));
  field.shadow_only(0, 1, 1.0, 10.0);
  EXPECT_THROW(field.shadow_only(0, 1, 1.0, 9.0), PreconditionError);
}

TEST(Fading, InvalidConstruction) {
  EXPECT_THROW(CorrelatedShadowingField(0.0, 1.0, Rng(1)), PreconditionError);
  EXPECT_THROW(CorrelatedShadowingField(1.0, -1.0, Rng(1)), PreconditionError);
}

TEST(Fading, CoherenceTimeControlsDecay) {
  // Longer coherence → higher lag-1 correlation.
  CorrelatedShadowingField fast(0.2, 0.0, Rng(8));
  CorrelatedShadowingField slow(5.0, 0.0, Rng(8));
  double fast_corr = 0.0, slow_corr = 0.0;
  double fprev = fast.shadow_only(0, 1, 1.0, 0.0);
  double sprev = slow.shadow_only(0, 1, 1.0, 0.0);
  const int n = 4000;
  for (int i = 1; i <= n; ++i) {
    const double t = i * 0.5;
    const double f = fast.shadow_only(0, 1, 1.0, t);
    const double s = slow.shadow_only(0, 1, 1.0, t);
    fast_corr += fprev * f;
    slow_corr += sprev * s;
    fprev = f;
    sprev = s;
  }
  EXPECT_GT(slow_corr / n, fast_corr / n + 0.3);
}

}  // namespace
}  // namespace vp::radio
