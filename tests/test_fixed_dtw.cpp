// Fixed-point DTW invariants (DESIGN.md §15):
//   * Quantisation — quantize_q412 rounds half away from zero within
//     kFixedEps of the input, reports the true max |value|, and flags
//     saturation for out-of-range and non-finite samples.
//   * Exactness on dyadics — series whose values are exact Q4.12 dyadics
//     quantise losslessly, and the integer DP divided by its scale equals
//     the double banded-DTW distance bit-for-bit (same recurrence, exact
//     arithmetic on both sides).
//   * Certified bound — fixed_banded_lower_bound never exceeds the true
//     double-precision banded distance, over AR / constant / ramp series,
//     every band and both local costs; and it stays within the advertised
//     2·(2L−1)·pad of the true distance (the certificate is not vacuous).
//   * Abandon soundness — a threshold at the true integer optimum never
//     abandons; an abandoned run proves the optimum exceeds the threshold.
//   * int16 extremes — the DP is wrap-free at the ±32767 rails and at
//     INT16_MIN (the negation edge); the CI integer-sanitizer job runs
//     this file.
//   * Cascade parity — compare_series_pruned with fixed_lower_bound on
//     flags exactly what the exact sweep flags, and the exit-tier
//     partition law (comparable = kim + keogh + fixed + abandoned + full)
//     holds with the new tier counted.
#include "timeseries/fixed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/comparison.h"
#include "core/detector.h"
#include "timeseries/dtw.h"
#include "timeseries/normalize.h"

namespace vp::ts {
namespace {

std::vector<double> ar_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  double shadow = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
    out[i] = -75.0 + shadow + rng.normal(0.0, 1.0);
  }
  return out;
}

// Exact Q4.12 dyadics in ±4: quantisation is lossless on these.
std::vector<double> dyadic_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(rng.uniform_int(-4 * 4096, 4 * 4096)) /
             kFixedScale;
  }
  return out;
}

// --- Quantisation --------------------------------------------------------

TEST(FixedQuantizeTest, RoundsWithinHalfStepAndReportsMaxAbs) {
  Rng rng(5);
  std::vector<double> values(500);
  double max_abs = 0.0;
  for (double& v : values) {
    v = rng.uniform(-7.9, 7.9);
    max_abs = std::max(max_abs, std::abs(v));
  }
  std::vector<std::int16_t> q;
  const FixedQuantize result = quantize_q412(values, q);
  EXPECT_FALSE(result.saturated);
  EXPECT_EQ(result.max_abs, max_abs);
  ASSERT_EQ(q.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_LE(std::abs(static_cast<double>(q[i]) / kFixedScale - values[i]),
              kFixedEps)
        << "sample " << i;
  }
}

TEST(FixedQuantizeTest, RoundsHalfAwayFromZero) {
  const std::vector<double> values = {0.5 / kFixedScale, -0.5 / kFixedScale,
                                      1.0, -1.0};
  std::vector<std::int16_t> q;
  EXPECT_FALSE(quantize_q412(values, q).saturated);
  EXPECT_EQ(q[0], 1);
  EXPECT_EQ(q[1], -1);
  EXPECT_EQ(q[2], 4096);
  EXPECT_EQ(q[3], -4096);
}

TEST(FixedQuantizeTest, FlagsSaturationAndNonFinite) {
  std::vector<std::int16_t> q;
  EXPECT_TRUE(quantize_q412(std::vector<double>{9.0}, q).saturated);
  EXPECT_EQ(q[0], 32767);
  EXPECT_TRUE(quantize_q412(std::vector<double>{-9.0}, q).saturated);
  EXPECT_EQ(q[0], -32767);
  EXPECT_TRUE(
      quantize_q412(std::vector<double>{std::nan("")}, q).saturated);
  EXPECT_EQ(q[0], 0);
  EXPECT_TRUE(quantize_q412(
                  std::vector<double>{std::numeric_limits<double>::infinity()},
                  q)
                  .saturated);
}

// --- Exactness on dyadics ------------------------------------------------

// On lossless inputs the integer DP and the double recurrence compute the
// same numbers: differences are dyadics, squares and sums stay far below
// 2^53, so distance_q / scale == double distance exactly.
TEST(FixedDtwTest, MatchesFloatDtwExactlyOnDyadics) {
  std::vector<std::int64_t> rows;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::vector<double> a = dyadic_series(48, seed);
    const std::vector<double> b = dyadic_series(48, seed + 100);
    std::vector<std::int16_t> qa, qb;
    ASSERT_FALSE(quantize_q412(a, qa).saturated);
    ASSERT_FALSE(quantize_q412(b, qb).saturated);
    for (const std::size_t band : {std::size_t{0}, std::size_t{4},
                                   std::size_t{16}}) {
      for (const LocalCost cost : {LocalCost::kSquared, LocalCost::kAbsolute}) {
        const FixedBandedResult r =
            fixed_banded_dtw(qa, qb, band, cost, kFixedNoAbandon, rows);
        ASSERT_FALSE(r.abandoned);
        const double expected =
            dtw_banded(a, b, band == 0 ? a.size() : band, cost).distance;
        EXPECT_EQ(static_cast<double>(r.distance) / fixed_scale(cost),
                  expected)
            << "seed " << seed << " band " << band;
      }
    }
  }
}

// --- Certified bound -----------------------------------------------------

TEST(FixedDtwTest, LowerBoundNeverExceedsTrueDistance) {
  FixedDtwScratch scratch;
  std::vector<std::vector<double>> families;
  for (std::uint64_t seed = 11; seed <= 16; ++seed) {
    families.push_back(z_score_enhanced(ar_series(64, seed)));
  }
  families.push_back(std::vector<double>(64, 0.25));  // constant
  {
    std::vector<double> ramp(64);
    for (std::size_t i = 0; i < ramp.size(); ++i) {
      ramp[i] = -2.0 + 0.06 * static_cast<double>(i);
    }
    families.push_back(ramp);
  }

  int bounds_checked = 0;
  for (std::size_t i = 0; i < families.size(); ++i) {
    for (std::size_t j = i + 1; j < families.size(); ++j) {
      for (const std::size_t band : {std::size_t{0}, std::size_t{4},
                                     std::size_t{16}}) {
        for (const LocalCost cost :
             {LocalCost::kSquared, LocalCost::kAbsolute}) {
          const double bound = fixed_banded_lower_bound(
              families[i], families[j], band, cost, scratch);
          if (std::isinf(bound)) continue;  // certificate void: no claim
          const std::size_t n = families[i].size();
          const double truth =
              dtw_banded(families[i], families[j], band == 0 ? n : band, cost)
                  .distance;
          EXPECT_LE(bound, truth + 1e-9)
              << "pair (" << i << "," << j << ") band " << band;
          // Tightness: the deflation is (2L−1)·pad below the integer DP,
          // and the DP itself is within (2L−1)·pad of the truth, so the
          // bound trails the true distance by at most twice that.
          std::vector<std::int16_t> qa, qb;
          const FixedQuantize fa = quantize_q412(families[i], qa);
          const FixedQuantize fb = quantize_q412(families[j], qb);
          const double pad = fixed_cell_pad(cost, fa.max_abs, fb.max_abs);
          EXPECT_GE(bound,
                    truth - 2.0 * static_cast<double>(2 * n - 1) * pad - 1e-9)
              << "pair (" << i << "," << j << ") band " << band;
          ++bounds_checked;
        }
      }
    }
  }
  EXPECT_GT(bounds_checked, 100);  // the families must mostly certify
}

TEST(FixedDtwTest, SaturatedSeriesVoidsTheCertificate) {
  FixedDtwScratch scratch;
  const std::vector<double> ok(32, 0.5);
  std::vector<double> hot(32, 0.5);
  hot[7] = 9.5;  // outside Q4.12
  EXPECT_TRUE(std::isinf(fixed_banded_lower_bound(
      hot, ok, 0, LocalCost::kSquared, scratch)));
  EXPECT_TRUE(std::isinf(fixed_banded_lower_bound(
      ok, hot, 0, LocalCost::kSquared, scratch)));
  // Unequal lengths and empties also decline to certify.
  const std::vector<double> shorter(31, 0.5);
  EXPECT_TRUE(std::isinf(fixed_banded_lower_bound(
      ok, shorter, 0, LocalCost::kSquared, scratch)));
  EXPECT_TRUE(std::isinf(fixed_banded_lower_bound(
      std::vector<double>{}, std::vector<double>{}, 0, LocalCost::kSquared,
      scratch)));
}

// --- Abandon soundness ---------------------------------------------------

TEST(FixedDtwTest, AbandonIsSound) {
  std::vector<std::int64_t> rows;
  Rng rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::int16_t> a(32), b(32);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<std::int16_t>(rng.uniform_int(-8000, 8000));
      b[i] = static_cast<std::int16_t>(rng.uniform_int(-8000, 8000));
    }
    const std::size_t band = static_cast<std::size_t>(rng.uniform_int(0, 12));
    const LocalCost cost =
        rng.chance(0.5) ? LocalCost::kSquared : LocalCost::kAbsolute;
    const FixedBandedResult full =
        fixed_banded_dtw(a, b, band, cost, kFixedNoAbandon, rows);
    ASSERT_FALSE(full.abandoned);

    // A threshold at the optimum can never abandon (every row's min is a
    // prefix of some path, and prefixes of non-negative costs only grow).
    const FixedBandedResult at =
        fixed_banded_dtw(a, b, band, cost, full.distance, rows);
    EXPECT_FALSE(at.abandoned);
    EXPECT_EQ(at.distance, full.distance);

    // Any abandoned run must be proving a true statement.
    const std::int64_t below = full.distance / 2;
    const FixedBandedResult maybe =
        fixed_banded_dtw(a, b, band, cost, below, rows);
    if (maybe.abandoned) {
      EXPECT_GT(full.distance, below);
    } else {
      EXPECT_EQ(maybe.distance, full.distance);
    }

    // A threshold below everything abandons on the first row.
    const FixedBandedResult floor =
        fixed_banded_dtw(a, b, band, cost, std::int64_t{-1}, rows);
    EXPECT_TRUE(floor.abandoned);
  }
}

// --- int16 extremes ------------------------------------------------------

// The rails and INT16_MIN: |a − b| reaches 65535, whose square needs
// int64, and negating INT16_MIN must happen in a wider type. A wrap
// anywhere here trips -fsanitize=integer in the CI sanitizer matrix.
TEST(FixedDtwTest, Int16ExtremesAreWrapFree) {
  std::vector<std::int64_t> rows;
  constexpr std::int16_t kMin = std::numeric_limits<std::int16_t>::min();
  const std::vector<std::int16_t> lo = {kMin, kMin, kMin, kMin};
  const std::vector<std::int16_t> hi = {32767, 32767, 32767, 32767};

  const std::int64_t diff = 32767 - static_cast<std::int64_t>(kMin);  // 65535
  const FixedBandedResult sq =
      fixed_banded_dtw(lo, hi, 0, LocalCost::kSquared, kFixedNoAbandon, rows);
  ASSERT_FALSE(sq.abandoned);
  // The diagonal path (7 cells on a 4×4 full matrix has 4-cell diagonal)
  // is optimal: every cell costs the same, so 4 diagonal steps win.
  EXPECT_EQ(sq.distance, 4 * diff * diff);

  const FixedBandedResult ab =
      fixed_banded_dtw(lo, hi, 0, LocalCost::kAbsolute, kFixedNoAbandon, rows);
  ASSERT_FALSE(ab.abandoned);
  EXPECT_EQ(ab.distance, 4 * diff);

  // Single-element: the result IS the local cost, both orders (the
  // negation edge |kMin − 0| = 32768 exceeds int16).
  const std::vector<std::int16_t> one_min = {kMin};
  const std::vector<std::int16_t> one_zero = {0};
  EXPECT_EQ(fixed_banded_dtw(one_min, one_zero, 0, LocalCost::kAbsolute,
                             kFixedNoAbandon, rows)
                .distance,
            32768);
  EXPECT_EQ(fixed_banded_dtw(one_zero, one_min, 0, LocalCost::kAbsolute,
                             kFixedNoAbandon, rows)
                .distance,
            32768);
  EXPECT_EQ(fixed_banded_dtw(one_min, one_zero, 0, LocalCost::kSquared,
                             kFixedNoAbandon, rows)
                .distance,
            std::int64_t{32768} * 32768);
}

}  // namespace
}  // namespace vp::ts

// --- Cascade parity ------------------------------------------------------

namespace vp::core {
namespace {

// Half smooth AR(1) walks, half telegraph noise (random switching between
// two levels). Telegraph pairs are the fixed tier's reason to exist: the
// Sakoe–Chiba envelopes of independent switchers cover both rails, so
// LB_Keogh degenerates, while the true distance is large — only a
// near-exact bound (the integer DP) can prune them without a full solve.
std::vector<NamedSeries> random_bundle(std::size_t count, std::size_t len,
                                       std::uint64_t seed) {
  std::vector<NamedSeries> bundle;
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(mix64(seed, i));
    ts::Series series;
    if (i % 2 == 0) {
      double shadow = 0.0;
      const double level = -60.0 - rng.uniform(0.0, 25.0);
      for (std::size_t t = 0; t < len; ++t) {
        shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
        series.add(0.5 * static_cast<double>(t),
                   level + shadow + rng.normal(0.0, 0.5));
      }
    } else {
      double level = rng.chance(0.5) ? -60.0 : -80.0;
      for (std::size_t t = 0; t < len; ++t) {
        if (rng.chance(0.4)) level = level == -60.0 ? -80.0 : -60.0;
        series.add(0.5 * static_cast<double>(t),
                   level + rng.normal(0.0, 0.5));
      }
    }
    bundle.emplace_back(static_cast<IdentityId>(i + 1), std::move(series));
  }
  return bundle;
}

void expect_verdicts_identical(const std::vector<PairDistance>& pruned,
                               const std::vector<PairDistance>& exact) {
  ASSERT_EQ(pruned.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(pruned[i].a, exact[i].a);
    EXPECT_EQ(pruned[i].b, exact[i].b);
    EXPECT_EQ(pruned[i].comparable, exact[i].comparable) << "pair " << i;
    EXPECT_EQ(pruned[i].flagged, exact[i].flagged) << "pair " << i;
  }
}

// With the fixed tier enabled the cascade must stay verdict-identical to
// the exact sweep and the exit-tier partition law must count the new
// tier: comparable = kim + keogh + fixed + abandoned + full.
TEST(FixedCascade, VerdictParityAndPartitionLawWithFixedTier) {
  ComparisonOptions options = tuned_simulation_options(0).comparison;
  options.exact_mode = false;
  options.fixed_lower_bound = true;

  ComparisonOptions exact_options = options;
  exact_options.exact_mode = true;

  std::uint64_t fixed_pruned_total = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::vector<NamedSeries> bundle = random_bundle(10, 40, seed);
    const std::vector<PairDistance> exact =
        compare_series(bundle, exact_options);

    for (const double threshold : {0.05, 0.2, 0.5}) {
      SCOPED_TRACE("threshold=" + std::to_string(threshold));
      std::vector<PairDistance> exact_verdicts = exact;
      for (PairDistance& p : exact_verdicts) {
        p.flagged = p.comparable && p.normalized <= threshold;
      }
      CascadeStats stats;
      const std::vector<PairDistance> pruned =
          compare_series_pruned(bundle, options, threshold, &stats);
      expect_verdicts_identical(pruned, exact_verdicts);

      std::uint64_t comparable = 0;
      for (const PairDistance& p : pruned) comparable += p.comparable ? 1 : 0;
      EXPECT_EQ(comparable, stats.lb_kim_pruned + stats.lb_keogh_pruned +
                                stats.fixed_pruned + stats.early_abandoned +
                                stats.full_sweeps);
      fixed_pruned_total += stats.fixed_pruned;
    }
  }
  // The tier must actually fire somewhere across the sweep — a silent
  // no-op tier would pass parity trivially.
  EXPECT_GT(fixed_pruned_total, 0u);
}

// Flipping fixed_lower_bound must not change any verdict, only the exit
// tiers (fixed_pruned is zero when the tier is off).
TEST(FixedCascade, FlagIsVerdictNeutral) {
  ComparisonOptions with = tuned_simulation_options(0).comparison;
  with.exact_mode = false;
  with.fixed_lower_bound = true;
  ComparisonOptions without = with;
  without.fixed_lower_bound = false;

  const std::vector<NamedSeries> bundle = random_bundle(12, 40, 99);
  for (const double threshold : {0.1, 0.4}) {
    CascadeStats stats_with, stats_without;
    const std::vector<PairDistance> a =
        compare_series_pruned(bundle, with, threshold, &stats_with);
    const std::vector<PairDistance> b =
        compare_series_pruned(bundle, without, threshold, &stats_without);
    expect_verdicts_identical(a, b);
    EXPECT_EQ(stats_without.fixed_pruned, 0u);
  }
}

}  // namespace
}  // namespace vp::core
