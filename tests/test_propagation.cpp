#include "radio/propagation.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "radio/dual_slope.h"
#include "radio/switching.h"

namespace vp::radio {
namespace {

constexpr double kFreq = units::kDsrcFrequencyHz;

TEST(FreeSpace, KnownFsplAt5p89GHz) {
  // FSPL(1 m, 5.89 GHz) = 20·log10(4π·1/λ) ≈ 47.84 dB.
  const FreeSpaceModel model(kFreq);
  const double rx = model.mean_rx_power_dbm(20.0, 1.0, 0.0);
  EXPECT_NEAR(rx, 20.0 - 47.84, 0.05);
}

TEST(FreeSpace, InverseSquareLaw) {
  const FreeSpaceModel model(kFreq);
  const double p100 = model.mean_rx_power_dbm(20.0, 100.0, 0.0);
  const double p200 = model.mean_rx_power_dbm(20.0, 200.0, 0.0);
  EXPECT_NEAR(p100 - p200, 6.02, 0.01);  // doubling distance costs 6 dB
}

TEST(FreeSpace, AntennaGainsAdd) {
  const FreeSpaceModel bare(kFreq);
  const FreeSpaceModel gained(kFreq, {.tx_antenna_gain_dbi = 7.0,
                                      .rx_antenna_gain_dbi = 7.0});
  EXPECT_NEAR(gained.mean_rx_power_dbm(20.0, 100.0, 0.0) -
                  bare.mean_rx_power_dbm(20.0, 100.0, 0.0),
              14.0, 1e-9);
}

TEST(FreeSpace, DistanceInversionRoundTrip) {
  const FreeSpaceModel model(kFreq);
  for (double d : {1.0, 10.0, 140.0, 400.0}) {
    const double rx = model.mean_rx_power_dbm(20.0, d, 0.0);
    EXPECT_NEAR(model.distance_for_mean_power(20.0, rx, 0.0), d, 1e-6);
  }
}

TEST(FreeSpace, SampleEqualsMean) {
  const FreeSpaceModel model(kFreq);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(model.sample_rx_power_dbm(20.0, 50.0, 0.0, rng),
                   model.mean_rx_power_dbm(20.0, 50.0, 0.0));
}

TEST(TwoRay, FourthPowerBeyondCrossover) {
  const TwoRayGroundModel model(kFreq, 1.5, 1.5);
  const double dc = model.crossover_distance_m();
  const double p1 = model.mean_rx_power_dbm(20.0, 2.0 * dc, 0.0);
  const double p2 = model.mean_rx_power_dbm(20.0, 4.0 * dc, 0.0);
  EXPECT_NEAR(p1 - p2, 12.04, 0.01);  // 40·log10(2)
}

TEST(TwoRay, FreeSpaceBeforeCrossover) {
  const TwoRayGroundModel model(kFreq, 1.5, 1.5);
  const FreeSpaceModel fs(kFreq);
  const double d = model.crossover_distance_m() / 3.0;
  EXPECT_DOUBLE_EQ(model.mean_rx_power_dbm(20.0, d, 0.0),
                   fs.mean_rx_power_dbm(20.0, d, 0.0));
}

TEST(TwoRay, InversionRoundTrip) {
  const TwoRayGroundModel model(kFreq, 1.5, 1.5);
  const double dc = model.crossover_distance_m();
  for (double d : {dc / 4.0, dc * 2.0, dc * 5.0}) {
    const double rx = model.mean_rx_power_dbm(20.0, d, 0.0);
    EXPECT_NEAR(model.distance_for_mean_power(20.0, rx, 0.0), d, d * 0.05);
  }
}

TEST(Shadowing, MeanFollowsPathLossExponent) {
  const ShadowingModel model(kFreq, 1.0, 3.0, 4.0);
  const double p10 = model.mean_rx_power_dbm(20.0, 10.0, 0.0);
  const double p100 = model.mean_rx_power_dbm(20.0, 100.0, 0.0);
  EXPECT_NEAR(p10 - p100, 30.0, 1e-9);  // 10·γ per decade
}

TEST(Shadowing, SampleScatterMatchesSigma) {
  const ShadowingModel model(kFreq, 1.0, 2.5, 3.9);
  Rng rng(2);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(model.sample_rx_power_dbm(20.0, 150.0, 0.0, rng));
  }
  EXPECT_NEAR(stats.mean(), model.mean_rx_power_dbm(20.0, 150.0, 0.0), 0.1);
  EXPECT_NEAR(stats.stddev(), 3.9, 0.1);
  EXPECT_DOUBLE_EQ(model.shadowing_sigma_db(150.0, 0.0), 3.9);
}

TEST(Shadowing, InversionRoundTrip) {
  const ShadowingModel model(kFreq, 1.0, 2.8, 4.0);
  for (double d : {5.0, 80.0, 350.0}) {
    const double rx = model.mean_rx_power_dbm(20.0, d, 0.0);
    EXPECT_NEAR(model.distance_for_mean_power(20.0, rx, 0.0), d, 1e-6);
  }
}

TEST(Nakagami, MeanPowerPreserved) {
  const NakagamiModel model(kFreq, 1.0, 2.0, 3.0);
  Rng rng(3);
  double mean_mw = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    mean_mw += units::dbm_to_mw(model.sample_rx_power_dbm(20.0, 100.0, 0.0, rng));
  }
  mean_mw /= n;
  const double expected_mw =
      units::dbm_to_mw(model.mean_rx_power_dbm(20.0, 100.0, 0.0));
  EXPECT_NEAR(mean_mw / expected_mw, 1.0, 0.05);
}

TEST(Nakagami, HigherMMeansLessFading) {
  Rng rng1(4), rng2(4);
  const NakagamiModel rayleigh(kFreq, 1.0, 2.0, 1.0);  // m=1: Rayleigh
  const NakagamiModel calm(kFreq, 1.0, 2.0, 16.0);
  RunningStats s1, s2;
  for (int i = 0; i < 20000; ++i) {
    s1.add(rayleigh.sample_rx_power_dbm(20.0, 100.0, 0.0, rng1));
    s2.add(calm.sample_rx_power_dbm(20.0, 100.0, 0.0, rng2));
  }
  EXPECT_GT(s1.stddev(), 2.0 * s2.stddev());
}

TEST(DualSlope, ContinuousAtBreakpoint) {
  const DualSlopeModel model(kFreq, DualSlopeParams::campus());
  const double dc = model.params().critical_distance_m;
  const double before = model.mean_rx_power_dbm(20.0, dc - 1e-6, 0.0);
  const double after = model.mean_rx_power_dbm(20.0, dc + 1e-6, 0.0);
  EXPECT_NEAR(before, after, 0.01);
}

TEST(DualSlope, SlopesMatchGammas) {
  const DualSlopeParams p = DualSlopeParams::urban();
  const DualSlopeModel model(kFreq, p);
  // Before the breakpoint: γ1 per decade.
  const double p10 = model.mean_rx_power_dbm(20.0, 10.0, 0.0);
  const double p100 = model.mean_rx_power_dbm(20.0, 100.0, 0.0);
  EXPECT_NEAR(p10 - p100, 10.0 * p.gamma1, 1e-6);
  // After: γ2 per decade.
  const double p200 = model.mean_rx_power_dbm(20.0, 200.0, 0.0);
  const double p2000 = model.mean_rx_power_dbm(20.0, 2000.0, 0.0);
  EXPECT_NEAR(p200 - p2000, 10.0 * p.gamma2, 1e-6);
}

TEST(DualSlope, SigmaSwitchesAtBreakpoint) {
  const DualSlopeParams p = DualSlopeParams::rural();
  const DualSlopeModel model(kFreq, p);
  EXPECT_DOUBLE_EQ(model.shadowing_sigma_db(p.critical_distance_m - 1.0, 0.0),
                   p.sigma1_db);
  EXPECT_DOUBLE_EQ(model.shadowing_sigma_db(p.critical_distance_m + 1.0, 0.0),
                   p.sigma2_db);
}

TEST(DualSlope, InversionRoundTripBothSegments) {
  const DualSlopeModel model(kFreq, DualSlopeParams::campus());
  for (double d : {10.0, 100.0, 217.0, 300.0, 600.0}) {
    const double rx = model.mean_rx_power_dbm(20.0, d, 0.0);
    EXPECT_NEAR(model.distance_for_mean_power(20.0, rx, 0.0), d, d * 0.01)
        << "d=" << d;
  }
}

TEST(DualSlope, Table4PresetsMatchPaper) {
  const DualSlopeParams campus = DualSlopeParams::campus();
  EXPECT_DOUBLE_EQ(campus.critical_distance_m, 218.0);
  EXPECT_DOUBLE_EQ(campus.gamma1, 1.66);
  EXPECT_DOUBLE_EQ(campus.gamma2, 5.53);
  const DualSlopeParams urban = DualSlopeParams::urban();
  EXPECT_DOUBLE_EQ(urban.critical_distance_m, 102.0);
  EXPECT_DOUBLE_EQ(urban.sigma2_db, 5.2);
  const DualSlopeParams rural = DualSlopeParams::rural();
  EXPECT_DOUBLE_EQ(rural.gamma1, 1.89);
  EXPECT_DOUBLE_EQ(rural.sigma1_db, 3.1);
}

TEST(DualSlope, UrbanAttenuatesFasterThanCampusFarOut) {
  // Observation 2: NLOS-heavy urban channels decay faster.
  const DualSlopeModel campus(kFreq, DualSlopeParams::campus());
  const DualSlopeModel urban(kFreq, DualSlopeParams::urban());
  EXPECT_GT(campus.mean_rx_power_dbm(20.0, 400.0, 0.0),
            urban.mean_rx_power_dbm(20.0, 400.0, 0.0));
}

TEST(Switching, CyclesWithPeriod) {
  const SwitchingDualSlopeModel model = SwitchingDualSlopeModel::perturbed_cycle(
      kFreq, DualSlopeParams::highway(), 4, 30.0, 77);
  EXPECT_EQ(model.cycle_length(), 4u);
  // Same slot → same model; different slot → (almost surely) different power.
  const double p0a = model.mean_rx_power_dbm(20.0, 150.0, 5.0);
  const double p0b = model.mean_rx_power_dbm(20.0, 150.0, 25.0);
  EXPECT_DOUBLE_EQ(p0a, p0b);
  const double p1 = model.mean_rx_power_dbm(20.0, 150.0, 35.0);
  EXPECT_NE(p0a, p1);
  // Cycle wraps after steps × period.
  const double p_wrap = model.mean_rx_power_dbm(20.0, 150.0, 5.0 + 4 * 30.0);
  EXPECT_DOUBLE_EQ(p0a, p_wrap);
}

TEST(Switching, FirstSlotIsBaseEnvironment) {
  const DualSlopeParams base = DualSlopeParams::rural();
  const SwitchingDualSlopeModel model =
      SwitchingDualSlopeModel::perturbed_cycle(kFreq, base, 3, 30.0, 5);
  const DualSlopeModel plain(kFreq, base);
  EXPECT_DOUBLE_EQ(model.mean_rx_power_dbm(20.0, 123.0, 10.0),
                   plain.mean_rx_power_dbm(20.0, 123.0, 10.0));
}

TEST(Switching, PerturbedParamsStayInTable4Envelope) {
  const SwitchingDualSlopeModel model = SwitchingDualSlopeModel::perturbed_cycle(
      kFreq, DualSlopeParams::highway(), 8, 30.0, 99);
  for (double t = 0.0; t < 8 * 30.0; t += 30.0) {
    const DualSlopeParams& p = model.active_model(t).params();
    EXPECT_GE(p.gamma1, 1.66);
    EXPECT_LE(p.gamma1, 2.56);
    EXPECT_GE(p.gamma2, 5.53);
    EXPECT_LE(p.gamma2, 6.34);
    EXPECT_GE(p.critical_distance_m, 102.0);
    EXPECT_LE(p.critical_distance_m, 218.0);
  }
}

TEST(Models, InvalidParamsThrow) {
  EXPECT_THROW(FreeSpaceModel(0.0), PreconditionError);
  EXPECT_THROW(TwoRayGroundModel(kFreq, 0.0, 1.5), PreconditionError);
  EXPECT_THROW(ShadowingModel(kFreq, 1.0, 0.0, 3.0), PreconditionError);
  EXPECT_THROW(NakagamiModel(kFreq, 1.0, 2.0, 0.1), PreconditionError);
  DualSlopeParams bad = DualSlopeParams::campus();
  bad.critical_distance_m = 0.5;
  EXPECT_THROW(DualSlopeModel(kFreq, bad), PreconditionError);
}

TEST(Models, ZeroDistanceThrows) {
  const FreeSpaceModel model(kFreq);
  EXPECT_THROW(model.mean_rx_power_dbm(20.0, 0.0, 0.0), PreconditionError);
}

}  // namespace
}  // namespace vp::radio
