// Property sweeps over every propagation model: monotone mean power,
// inversion round-trips and unbiased sampling, parameterized across the
// model zoo and a distance grid.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "radio/dual_slope.h"
#include "radio/propagation.h"
#include "radio/switching.h"

namespace vp::radio {
namespace {

constexpr double kFreq = units::kDsrcFrequencyHz;

struct ModelCase {
  std::string name;
  std::function<std::unique_ptr<PropagationModel>()> make;
};

class RadioProperty : public ::testing::TestWithParam<ModelCase> {
 protected:
  void SetUp() override { model_ = GetParam().make(); }
  std::unique_ptr<PropagationModel> model_;
};

TEST_P(RadioProperty, MeanPowerStrictlyDecreasesWithDistance) {
  double prev = model_->mean_rx_power_dbm(20.0, 2.0, 0.0);
  for (double d = 4.0; d <= 1024.0; d *= 2.0) {
    const double p = model_->mean_rx_power_dbm(20.0, d, 0.0);
    EXPECT_LT(p, prev) << GetParam().name << " at d=" << d;
    prev = p;
  }
}

TEST_P(RadioProperty, TxPowerShiftsLinearly) {
  for (double d : {10.0, 150.0, 500.0}) {
    const double p20 = model_->mean_rx_power_dbm(20.0, d, 0.0);
    const double p23 = model_->mean_rx_power_dbm(23.0, d, 0.0);
    EXPECT_NEAR(p23 - p20, 3.0, 1e-9) << GetParam().name;
  }
}

TEST_P(RadioProperty, InversionRoundTrips) {
  for (double d : {3.0, 30.0, 120.0, 240.0, 600.0}) {
    const double p = model_->mean_rx_power_dbm(20.0, d, 0.0);
    const double d_back = model_->distance_for_mean_power(20.0, p, 0.0);
    EXPECT_NEAR(d_back, d, 0.05 * d) << GetParam().name << " at d=" << d;
  }
}

TEST_P(RadioProperty, SamplingIsUnbiasedInDb) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 4000; ++i) {
    stats.add(model_->sample_rx_power_dbm(20.0, 180.0, 0.0, rng));
  }
  const double mean = model_->mean_rx_power_dbm(20.0, 180.0, 0.0);
  // Nakagami is unbiased in linear power (so biased low in dB); all other
  // models must be dB-unbiased within sampling error.
  const double tolerance = GetParam().name == "nakagami" ? 3.0 : 0.3;
  EXPECT_NEAR(stats.mean(), mean, tolerance) << GetParam().name;
}

TEST_P(RadioProperty, SigmaNonNegativeEverywhere) {
  for (double d : {5.0, 100.0, 300.0, 900.0}) {
    EXPECT_GE(model_->shadowing_sigma_db(d, 0.0), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelZoo, RadioProperty,
    ::testing::Values(
        ModelCase{"free-space",
                  [] { return std::make_unique<FreeSpaceModel>(kFreq); }},
        ModelCase{"two-ray",
                  [] {
                    return std::make_unique<TwoRayGroundModel>(kFreq, 1.5,
                                                               1.5);
                  }},
        ModelCase{"shadowing",
                  [] {
                    return std::make_unique<ShadowingModel>(kFreq, 1.0, 2.8,
                                                            4.0);
                  }},
        ModelCase{"nakagami",
                  [] {
                    return std::make_unique<NakagamiModel>(kFreq, 1.0, 2.2,
                                                           3.0);
                  }},
        ModelCase{"dual-slope-campus",
                  [] {
                    return std::make_unique<DualSlopeModel>(
                        kFreq, DualSlopeParams::campus());
                  }},
        ModelCase{"dual-slope-urban",
                  [] {
                    return std::make_unique<DualSlopeModel>(
                        kFreq, DualSlopeParams::urban());
                  }},
        ModelCase{"switching",
                  [] {
                    return std::make_unique<SwitchingDualSlopeModel>(
                        SwitchingDualSlopeModel::perturbed_cycle(
                            kFreq, DualSlopeParams::highway(), 4, 30.0, 9));
                  }}),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace vp::radio
