#include "common/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace vp {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.population_variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), PreconditionError);
  EXPECT_THROW(s.min(), PreconditionError);
}

TEST(RunningStats, SingleSampleVarianceThrows) {
  RunningStats s;
  s.add(1.0);
  EXPECT_THROW(s.variance(), PreconditionError);
  EXPECT_DOUBLE_EQ(s.population_variance(), 0.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats a, b, all;
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 4 ? a : b).add(xs[i]);
    all.add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(BatchStats, MatchRunning) {
  const std::vector<double> xs = {-3.0, 1.5, 2.0, 8.0, 0.0};
  EXPECT_NEAR(mean(xs), 1.7, 1e-12);
  EXPECT_DOUBLE_EQ(min_of(xs), -3.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 8.0);
  EXPECT_GT(variance(xs), 0.0);
  EXPECT_NEAR(stddev(xs) * stddev(xs), variance(xs), 1e-12);
}

TEST(Percentile, InterpolatesSorted) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 7.0);
}

TEST(NormalDistribution, PdfPeak) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804, 1e-9);
  EXPECT_NEAR(normal_pdf(1.0), 0.2419707245, 1e-9);
}

TEST(NormalDistribution, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(NormalDistribution, QuantileInvertsCdf) {
  for (double p : {0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-6) << "p=" << p;
  }
}

TEST(NormalDistribution, QuantileBoundsThrow) {
  EXPECT_THROW(normal_quantile(0.0), PreconditionError);
  EXPECT_THROW(normal_quantile(1.0), PreconditionError);
}

TEST(HistogramTest, BinningAndFractions) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.5, 2.5, 2.7, 9.9}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);  // 0.5, 1.5
  EXPECT_EQ(h.count(1), 2u);  // 2.5, 2.7
  EXPECT_EQ(h.count(4), 1u);  // 9.9
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(HistogramTest, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

}  // namespace
}  // namespace vp
