// Lower-bound cascade invariants (DESIGN.md §11):
//   * Bound ordering — LB_Kim <= LB_Keogh <= banded-DTW accumulated cost
//     on the true Z-images <= diagonal upper bound, for every series
//     family the pipeline can produce (AR noise, constants, monotone
//     ramps, near-flat traces that defeat the approximate sketch, and
//     fault-injected beacon streams), every band and both local costs.
//   * Kernel parity — banded_dtw_distance is bit-identical in distance
//     AND path cell count to dtw_banded()/dtw(), scalar or SIMD, narrow
//     bands (row sweep) and wide (wavefront).
//   * Abandon soundness — an abandoned sweep proves the distance exceeds
//     the ceiling; a ceiling at or above the true distance never
//     abandons and returns the exact answer.
//   * Verdict parity — compare_series_pruned flags exactly the pairs the
//     exact sweep flags (and the detector the same suspects) over random
//     bundles, highway-simulator windows and field-test replays, at
//     every thread count, with the exit-tier conservation law intact.
#include "timeseries/lower_bound.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/comparison.h"
#include "core/detector.h"
#include "fault/injector.h"
#include "fieldtest/replay.h"
#include "sim/world.h"
#include "timeseries/dtw.h"
#include "timeseries/normalize.h"

namespace vp {
namespace {

std::vector<double> ar_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  double shadow = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
    out[i] = -75.0 + shadow + rng.normal(0.0, 1.0);
  }
  return out;
}

std::vector<double> constant_series(std::size_t n, double v) {
  return std::vector<double>(n, v);
}

std::vector<double> monotone_series(std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = -90.0 + 0.25 * static_cast<double>(i);
  }
  return out;
}

// Sub-epsilon wiggle on a constant: sigma is so small the sketch's
// certified error is infinite and every bound must degenerate safely.
std::vector<double> near_flat_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = -80.0 + 1e-13 * rng.normal(0.0, 1.0);
  }
  return out;
}

// An AR trace pushed through the fault injector (spikes + quantisation —
// the faults that distort values while keeping them finite).
std::vector<double> faulty_series(std::size_t n, std::uint64_t seed) {
  const std::vector<double> base = ar_series(2 * n, seed);
  std::vector<fault::Beacon> beacons(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    beacons[i] = {1, 0.1 * static_cast<double>(i), base[i]};
  }
  fault::FaultConfig config;
  config.seed = seed;
  config.rssi_spike_probability = 0.1;
  config.rssi_quantize_step_db = 0.5;
  config.drop_probability = 0.1;
  fault::FaultInjector injector(config);
  const std::vector<fault::Beacon> out = injector.apply(beacons);
  std::vector<double> values;
  for (const fault::Beacon& b : out) values.push_back(b.rssi_dbm);
  values.resize(n, -75.0);  // drops may shorten the trace; pad to length
  return values;
}

std::vector<std::vector<double>> series_pool(std::size_t n) {
  return {
      ar_series(n, 1),       ar_series(n, 2),        ar_series(n, 3),
      constant_series(n, -70.0), constant_series(n, 5.0),
      monotone_series(n),    near_flat_series(n, 4), faulty_series(n, 5),
  };
}

// Accumulated banded-DTW cost between the true (Eq. 7) Z-images — the
// quantity every cascade bound certifies against.
double true_banded_cost(std::span<const double> a, std::span<const double> b,
                        std::size_t band, ts::LocalCost cost) {
  const std::vector<double> za = ts::z_score_enhanced(a);
  const std::vector<double> zb = ts::z_score_enhanced(b);
  return (band == 0 || band >= a.size() - 1)
             ? ts::dtw(za, zb, cost).distance
             : ts::dtw_banded(za, zb, band, cost).distance;
}

TEST(LowerBound, BoundOrderingAcrossSeriesFamilies) {
  constexpr std::size_t kLen = 64;
  const std::vector<std::vector<double>> pool = series_pool(kLen);
  ts::DtwWorkspace workspace;
  for (const ts::LocalCost cost :
       {ts::LocalCost::kSquared, ts::LocalCost::kAbsolute}) {
    for (std::size_t i = 0; i < pool.size(); ++i) {
      for (std::size_t j = i; j < pool.size(); ++j) {
        const std::vector<double>& a = pool[i];
        const std::vector<double>& b = pool[j];
        const ts::SeriesSketch sa = ts::sketch_series(a);
        const ts::SeriesSketch sb = ts::sketch_series(b);
        const double kim = ts::lb_kim(sa, sb, cost);
        const double ub = ts::diagonal_upper_bound(a, sa, b, sb, cost);
        EXPECT_GE(kim, 0.0);
        for (const std::size_t band : {0ul, 1ul, 2ul, 3ul, 8ul, kLen}) {
          const double keogh =
              ts::lb_keogh(a, sa, b, sb, band, cost, workspace);
          const double truth = true_banded_cost(a, b, band, cost);
          EXPECT_LE(kim, keogh) << "i=" << i << " j=" << j;
          EXPECT_LE(keogh, truth)
              << "i=" << i << " j=" << j << " band=" << band;
          // The diagonal is admissible in every band window, so its
          // (inflated) cost caps the banded optimum at any band.
          EXPECT_GE(ub, truth) << "i=" << i << " j=" << j
                               << " band=" << band;
        }
      }
    }
  }
}

// Identical series: the true distance is zero, so the lower bounds (which
// clamp at zero after deflating by their certified error pads) must be
// exactly zero, and the upper bound — inflated by the same pads, never
// deflated — must be a non-negative value no larger than the pad itself.
TEST(LowerBound, IdenticalSeriesAllBoundsZero) {
  const std::vector<double> a = ar_series(48, 9);
  const ts::SeriesSketch s = ts::sketch_series(a);
  ts::DtwWorkspace workspace;
  const ts::LocalCost cost = ts::LocalCost::kSquared;
  EXPECT_EQ(ts::lb_kim(s, s, cost), 0.0);
  EXPECT_EQ(ts::lb_keogh(a, s, a, s, 3, cost, workspace), 0.0);
  const double ub = ts::diagonal_upper_bound(a, s, a, s, cost);
  EXPECT_GE(ub, 0.0);
  EXPECT_LE(ub, 1e-12);
}

TEST(LowerBound, KernelBitIdenticalToReferenceDtw) {
  constexpr std::size_t kLen = 50;
  const std::vector<double> a = ts::z_score_enhanced(ar_series(kLen, 11));
  const std::vector<double> b = ts::z_score_enhanced(ar_series(kLen, 12));
  ts::DtwWorkspace workspace;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (const ts::LocalCost cost :
       {ts::LocalCost::kSquared, ts::LocalCost::kAbsolute}) {
    for (const bool simd : {false, true}) {
      // Narrow bands run the row sweep, wide ones the wavefront; 0 and
      // >= n-1 sweep the full matrix and must match plain dtw().
      for (const std::size_t band :
           {0ul, 1ul, 2ul, 3ul, 5ul, 8ul, 32ul, kLen - 1, kLen + 10}) {
        const ts::BandedDistance got =
            ts::banded_dtw_distance(a, b, band, cost, kInf, simd, workspace);
        const ts::DtwResult ref = (band == 0 || band >= kLen - 1)
                                      ? ts::dtw(a, b, cost)
                                      : ts::dtw_banded(a, b, band, cost);
        EXPECT_FALSE(got.abandoned);
        EXPECT_EQ(got.distance, ref.distance)
            << "band=" << band << " simd=" << simd;
        EXPECT_EQ(got.path_cells, ref.path.size())
            << "band=" << band << " simd=" << simd;
      }
    }
  }
}

TEST(LowerBound, EarlyAbandonIsSound) {
  constexpr std::size_t kLen = 40;
  ts::DtwWorkspace workspace;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> a =
        ts::z_score_enhanced(ar_series(kLen, 100 + trial));
    const std::vector<double> b =
        ts::z_score_enhanced(ar_series(kLen, 200 + trial));
    for (const std::size_t band : {2ul, 8ul, 0ul}) {
      const ts::BandedDistance full = ts::banded_dtw_distance(
          a, b, band, ts::LocalCost::kSquared, kInf, true, workspace);
      ASSERT_FALSE(full.abandoned);
      // A ceiling below the true distance: either the sweep abandons
      // (proving distance > ceiling, which is true) or it completes with
      // the exact answer.
      const double low = full.distance * rng.uniform(0.1, 0.9);
      const ts::BandedDistance probe = ts::banded_dtw_distance(
          a, b, band, ts::LocalCost::kSquared, low, true, workspace);
      if (!probe.abandoned) {
        EXPECT_EQ(probe.distance, full.distance);
        EXPECT_EQ(probe.path_cells, full.path_cells);
      } else {
        EXPECT_GT(full.distance, low);
      }
      // A ceiling at/above the true distance can never abandon: every
      // pair of consecutive anti-diagonals contains an optimal-path
      // prefix cell, whose cost is at most the final distance.
      const ts::BandedDistance high = ts::banded_dtw_distance(
          a, b, band, ts::LocalCost::kSquared, full.distance, true,
          workspace);
      EXPECT_FALSE(high.abandoned);
      EXPECT_EQ(high.distance, full.distance);
      EXPECT_EQ(high.path_cells, full.path_cells);
    }
  }
}

// A bundle with one Sybil clique (shared radio + per-identity noise)
// among independent vehicles — the workload whose verdicts matter.
std::vector<core::NamedSeries> sybil_bundle(std::size_t identities,
                                            std::size_t len,
                                            std::uint64_t seed) {
  const std::vector<double> radio = ar_series(len, seed);
  Rng noise(seed + 1);
  std::vector<core::NamedSeries> series;
  for (std::size_t i = 0; i < identities; ++i) {
    std::vector<double> values;
    if (i < std::max<std::size_t>(2, identities / 8)) {
      values = radio;
      for (double& v : values) v += noise.normal(0.0, 1.0);
    } else {
      values = ar_series(len, seed + 100 + i);
    }
    series.emplace_back(static_cast<IdentityId>(i),
                        ts::Series::uniform(0.0, 0.1, std::move(values)));
  }
  return series;
}

void expect_verdicts_identical(const std::vector<core::PairDistance>& pruned,
                               const std::vector<core::PairDistance>& exact) {
  ASSERT_EQ(pruned.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(pruned[i].a, exact[i].a);
    EXPECT_EQ(pruned[i].b, exact[i].b);
    EXPECT_EQ(pruned[i].comparable, exact[i].comparable) << "pair " << i;
    EXPECT_EQ(pruned[i].flagged, exact[i].flagged) << "pair " << i;
  }
}

class CascadeParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CascadeParity, PrunedVerdictsMatchExactSweep) {
  const std::size_t threads = GetParam();
  core::ComparisonOptions options;
  options.distance = core::DistanceKind::kExactDtw;
  options.threads = threads;
  for (const bool simd : {true, false}) {
    for (const std::uint64_t seed : {31ull, 32ull, 33ull}) {
      const std::vector<core::NamedSeries> series =
          sybil_bundle(24, 120, seed);
      const double threshold = 0.00054 * 50.0 + 0.0483;
      options.use_simd = simd;

      options.exact_mode = true;
      std::vector<core::PairDistance> exact =
          core::compare_series(series, options);
      for (core::PairDistance& p : exact) {
        if (p.comparable) p.flagged = p.normalized <= threshold;
      }

      options.exact_mode = false;
      core::CascadeStats stats;
      const std::vector<core::PairDistance> pruned =
          core::compare_series_pruned(series, options, threshold, &stats);

      expect_verdicts_identical(pruned, exact);
      // Conservation law: every comparable pair exits at exactly one tier.
      std::size_t comparable = 0;
      for (const core::PairDistance& p : exact) comparable += p.comparable;
      EXPECT_EQ(stats.lb_kim_pruned + stats.lb_keogh_pruned +
                    stats.early_abandoned + stats.full_sweeps,
                comparable);
    }
  }
}

// The exit tiers are a pure function of the input — thread count must not
// move a pair between tiers (pruning decisions compare exact bounds, and
// the searches visit pairs in a fixed order regardless of scheduling).
TEST(CascadeParity, StatsDeterministicAcrossThreadCounts) {
  const std::vector<core::NamedSeries> series = sybil_bundle(20, 150, 77);
  core::ComparisonOptions options;
  options.distance = core::DistanceKind::kExactDtw;
  options.exact_mode = false;
  const double threshold = 0.00054 * 50.0 + 0.0483;
  std::vector<core::CascadeStats> all;
  for (const std::size_t threads : {1ul, 2ul, 4ul, 0ul}) {
    options.threads = threads;
    core::CascadeStats stats;
    (void)core::compare_series_pruned(series, options, threshold, &stats);
    all.push_back(stats);
  }
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_EQ(all[i].lb_kim_pruned, all[0].lb_kim_pruned);
    EXPECT_EQ(all[i].lb_keogh_pruned, all[0].lb_keogh_pruned);
    EXPECT_EQ(all[i].early_abandoned, all[0].early_abandoned);
    EXPECT_EQ(all[i].full_sweeps, all[0].full_sweeps);
  }
}

TEST_P(CascadeParity, HighwaySimWindowsMatchExactDetector) {
  const std::size_t threads = GetParam();
  sim::ScenarioConfig config;
  config.density_per_km = 15.0;
  config.sim_time_s = 45.0;
  config.seed = 63;
  sim::World world(config);
  world.run();

  core::VoiceprintOptions exact_options =
      core::tuned_simulation_options(threads);
  core::VoiceprintOptions pruned_options = exact_options;
  pruned_options.comparison.exact_mode = false;
  core::VoiceprintDetector exact(exact_options);
  core::VoiceprintDetector pruned(pruned_options);

  std::size_t windows = 0;
  const std::vector<NodeId> normals = world.normal_node_ids();
  for (NodeId observer : {normals.front(), normals.back()}) {
    for (const double t : world.detection_times()) {
      const sim::ObservationWindow window = world.observe(observer, t);
      if (window.neighbors.size() < 2) continue;
      EXPECT_EQ(pruned.detect_window(window), exact.detect_window(window));
      expect_verdicts_identical(pruned.last_all_pairs(),
                                exact.last_all_pairs());
      ++windows;
    }
  }
  EXPECT_GE(windows, 3u);
}

TEST_P(CascadeParity, FieldTestReplayMatchesExactReplay) {
  const std::size_t threads = GetParam();
  ft::FieldTestConfig config;
  config.area = ft::Area::kCampus;
  config.duration_s = 240.0;
  const ft::FieldTestData data = ft::run_field_test(config);

  ft::ReplayOptions exact_options;
  exact_options.comparison.threads = threads;
  ft::ReplayOptions pruned_options = exact_options;
  pruned_options.comparison.exact_mode = false;

  const ft::FieldReplayResult exact = ft::replay_field_test(data,
                                                            exact_options);
  const ft::FieldReplayResult pruned =
      ft::replay_field_test(data, pruned_options);

  EXPECT_EQ(pruned.detection_rate, exact.detection_rate);
  EXPECT_EQ(pruned.false_positive_rate, exact.false_positive_rate);
  ASSERT_EQ(pruned.detections.size(), exact.detections.size());
  for (std::size_t d = 0; d < exact.detections.size(); ++d) {
    const ft::FieldDetection& pd = pruned.detections[d];
    const ft::FieldDetection& ed = exact.detections[d];
    EXPECT_EQ(pd.flagged, ed.flagged);
    ASSERT_EQ(pd.pairs.size(), ed.pairs.size());
    for (std::size_t i = 0; i < ed.pairs.size(); ++i) {
      EXPECT_EQ(pd.pairs[i].a, ed.pairs[i].a);
      EXPECT_EQ(pd.pairs[i].b, ed.pairs[i].b);
      EXPECT_EQ(pd.pairs[i].flagged, ed.pairs[i].flagged);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, CascadeParity,
                         ::testing::Values(0u, 1u, 4u));

}  // namespace
}  // namespace vp
