#include "timeseries/series.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vp::ts {
namespace {

TEST(Series, UniformConstruction) {
  const Series s = Series::uniform(10.0, 0.1, {1.0, 2.0, 3.0});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.time(0), 10.0);
  EXPECT_DOUBLE_EQ(s.time(2), 10.2);
  EXPECT_DOUBLE_EQ(s.value(1), 2.0);
}

TEST(Series, AddEnforcesTimeOrder) {
  Series s;
  s.add(1.0, -80.0);
  s.add(1.0, -81.0);  // equal time allowed
  EXPECT_THROW(s.add(0.5, -82.0), PreconditionError);
  EXPECT_EQ(s.size(), 2u);
}

TEST(Series, ConstructorRejectsUnsortedTimes) {
  EXPECT_THROW(Series({2.0, 1.0}, {0.0, 0.0}), PreconditionError);
  EXPECT_THROW(Series({1.0}, {0.0, 0.0}), PreconditionError);
}

TEST(Series, SliceTimeHalfOpen) {
  const Series s = Series::uniform(0.0, 1.0, {0, 1, 2, 3, 4});
  const Series cut = s.slice_time(1.0, 3.0);
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_DOUBLE_EQ(cut.value(0), 1.0);
  EXPECT_DOUBLE_EQ(cut.value(1), 2.0);
}

TEST(Series, SliceOutsideRangeIsEmpty) {
  const Series s = Series::uniform(0.0, 1.0, {0, 1, 2});
  EXPECT_TRUE(s.slice_time(10.0, 20.0).empty());
}

TEST(Series, Tail) {
  const Series s = Series::uniform(0.0, 1.0, {0, 1, 2, 3});
  const Series t = s.tail(2);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.value(0), 2.0);
  EXPECT_EQ(s.tail(10).size(), 4u);
}

TEST(Series, MovingAverageSmooths) {
  const Series s = Series::uniform(0.0, 1.0, {0, 10, 0, 10, 0});
  const Series m = s.moving_average(3);
  ASSERT_EQ(m.size(), 5u);
  EXPECT_NEAR(m.value(2), 20.0 / 3.0, 1e-12);
  // Window 1 is identity.
  const Series id = s.moving_average(1);
  EXPECT_DOUBLE_EQ(id.value(1), 10.0);
}

TEST(Series, MovingAverageRequiresOddWindow) {
  const Series s = Series::uniform(0.0, 1.0, {1, 2, 3});
  EXPECT_THROW(s.moving_average(2), PreconditionError);
}

TEST(Series, ResampleLinearInterpolation) {
  const Series s = Series::uniform(0.0, 1.0, {0.0, 10.0});
  const Series r = s.resample(5);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_DOUBLE_EQ(r.value(0), 0.0);
  EXPECT_DOUBLE_EQ(r.value(2), 5.0);
  EXPECT_DOUBLE_EQ(r.value(4), 10.0);
}

TEST(Series, ResamplePreservesEndpoints) {
  const Series s = Series({0.0, 0.5, 3.0}, {1.0, 5.0, -2.0});
  const Series r = s.resample(7);
  EXPECT_DOUBLE_EQ(r.value(0), 1.0);
  EXPECT_DOUBLE_EQ(r.value(6), -2.0);
}

TEST(Series, ResampleRequirements) {
  Series s;
  s.add(0.0, 1.0);
  EXPECT_THROW(s.resample(5), PreconditionError);
}

}  // namespace
}  // namespace vp::ts
