#include "timeseries/fast_dtw.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace vp::ts {
namespace {

std::vector<double> random_walk(std::size_t n, Rng& rng) {
  std::vector<double> out(n);
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x += rng.normal(0.0, 1.0);
    out[i] = x;
  }
  return out;
}

TEST(Coarsen, AveragesPairs) {
  const std::vector<double> x = {1.0, 3.0, 5.0, 7.0};
  EXPECT_EQ(coarsen_by_two(x), (std::vector<double>{2.0, 6.0}));
}

TEST(Coarsen, OddTailKept) {
  const std::vector<double> x = {1.0, 3.0, 10.0};
  EXPECT_EQ(coarsen_by_two(x), (std::vector<double>{2.0, 10.0}));
}

TEST(Coarsen, SingleElement) {
  const std::vector<double> x = {4.0};
  EXPECT_EQ(coarsen_by_two(x), (std::vector<double>{4.0}));
}

TEST(ExpandWindow, CoversCornersAndIsUsable) {
  // A diagonal coarse path on a 3x3 grid expands onto a 6x6 fine grid.
  const std::vector<WarpStep> coarse = {{0, 0}, {1, 1}, {2, 2}};
  const SearchWindow w = expand_window(coarse, 6, 6, 1);
  EXPECT_FALSE(w.row_empty(0));
  EXPECT_EQ(w.lo(0), 0u);
  EXPECT_EQ(w.hi(5), 5u);
  for (std::size_t r = 0; r < 6; ++r) EXPECT_FALSE(w.row_empty(r));
}

TEST(FastDtw, ExactOnShortSeries) {
  // Below the recursion floor FastDTW IS full DTW.
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(fast_dtw(x, y).distance, dtw(x, y).distance);
}

TEST(FastDtw, NeverBeatsExactDtw) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> x = random_walk(80, rng);
    const std::vector<double> y = random_walk(90, rng);
    const double exact = dtw(x, y).distance;
    const double fast = fast_dtw(x, y, {.radius = 1}).distance;
    EXPECT_GE(fast, exact - 1e-9);  // approximation can only over-estimate
  }
}

TEST(FastDtw, SmallApproximationErrorOnSmoothSeries) {
  // Salvador & Chan report ~1% typical error at small radius; allow a
  // generous margin but catch gross regressions.
  Rng rng(22);
  double total_rel_err = 0.0;
  int n = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<double> x = random_walk(120, rng);
    const std::vector<double> y = random_walk(120, rng);
    const double exact = dtw(x, y).distance;
    if (exact < 1e-9) continue;
    const double fast = fast_dtw(x, y, {.radius = 2}).distance;
    total_rel_err += (fast - exact) / exact;
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(total_rel_err / n, 0.15);
}

TEST(FastDtw, LargerRadiusIsMoreAccurate) {
  Rng rng(23);
  double err_small = 0.0, err_large = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<double> x = random_walk(100, rng);
    const std::vector<double> y = random_walk(100, rng);
    const double exact = dtw(x, y).distance;
    err_small += fast_dtw(x, y, {.radius = 0}).distance - exact;
    err_large += fast_dtw(x, y, {.radius = 8}).distance - exact;
  }
  EXPECT_LE(err_large, err_small + 1e-9);
}

TEST(FastDtw, LargeRadiusConvergesToExact) {
  Rng rng(24);
  const std::vector<double> x = random_walk(60, rng);
  const std::vector<double> y = random_walk(70, rng);
  EXPECT_NEAR(fast_dtw(x, y, {.radius = 70}).distance, dtw(x, y).distance,
              1e-9);
}

TEST(FastDtw, IdenticalSeriesZero) {
  Rng rng(25);
  const std::vector<double> x = random_walk(200, rng);
  EXPECT_DOUBLE_EQ(fast_dtw(x, x).distance, 0.0);
}

TEST(FastDtw, PathIsValid) {
  Rng rng(26);
  const std::vector<double> x = random_walk(150, rng);
  const std::vector<double> y = random_walk(130, rng);
  const DtwResult result = fast_dtw(x, y, {.radius = 1});
  EXPECT_TRUE(is_valid_warp_path(result.path, x.size(), y.size()));
}

TEST(FastDtw, DifferentLengthsAndAbsoluteCost) {
  Rng rng(27);
  const std::vector<double> x = random_walk(101, rng);
  const std::vector<double> y = random_walk(57, rng);
  const DtwResult result =
      fast_dtw(x, y, {.radius = 1, .cost = LocalCost::kAbsolute});
  EXPECT_GT(result.distance, 0.0);
  EXPECT_TRUE(is_valid_warp_path(result.path, x.size(), y.size()));
}

TEST(FastDtw, EmptyThrows) {
  const std::vector<double> x = {1.0};
  const std::vector<double> empty;
  EXPECT_THROW(fast_dtw(x, empty), PreconditionError);
}

}  // namespace
}  // namespace vp::ts
