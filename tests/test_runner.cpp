// Tests for the evaluation harness (sim/runner.h): observer sampling and
// the Eq. 12/13 aggregation loop.
#include "sim/runner.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/detector.h"
#include "sim/world.h"

namespace vp::sim {
namespace {

const World& world() {
  static std::unique_ptr<World> instance = [] {
    ScenarioConfig config;
    config.density_per_km = 10.0;
    config.sim_time_s = 45.0;
    config.seed = 63;
    auto w = std::make_unique<World>(config);
    w->run();
    return w;
  }();
  return *instance;
}

TEST(SampleObservers, RespectsCapAndMembership) {
  const EvaluationOptions options{.max_observers = 5};
  const std::vector<NodeId> sample = sample_observers(world(), options);
  EXPECT_EQ(sample.size(), 5u);
  const std::vector<NodeId> normals = world().normal_node_ids();
  const std::set<NodeId> normal_set(normals.begin(), normals.end());
  std::set<NodeId> unique;
  for (NodeId id : sample) {
    EXPECT_TRUE(normal_set.count(id)) << id;
    EXPECT_TRUE(unique.insert(id).second);  // no duplicates
  }
}

TEST(SampleObservers, DeterministicPerSeed) {
  EvaluationOptions a{.max_observers = 6};
  a.sampling_seed = 1;
  EvaluationOptions b{.max_observers = 6};
  b.sampling_seed = 1;
  EXPECT_EQ(sample_observers(world(), a), sample_observers(world(), b));
  EvaluationOptions c{.max_observers = 6};
  c.sampling_seed = 2;
  EXPECT_NE(sample_observers(world(), a), sample_observers(world(), c));
}

TEST(SampleObservers, TakesAllWhenCapExceedsFleet) {
  const EvaluationOptions options{.max_observers = 10000};
  EXPECT_EQ(sample_observers(world(), options).size(),
            world().normal_node_ids().size());
}

// A detector that flags everything / nothing, for harness arithmetic.
class FlagAll final : public Detector {
 public:
  std::vector<IdentityId> detect(const ObservationWindow& window,
                                 const World&) override {
    std::vector<IdentityId> all;
    for (const auto& n : window.neighbors) all.push_back(n.id);
    return all;
  }
  std::string_view name() const override { return "flag-all"; }
};

class FlagNone final : public Detector {
 public:
  std::vector<IdentityId> detect(const ObservationWindow&,
                                 const World&) override {
    return {};
  }
  std::string_view name() const override { return "flag-none"; }
};

TEST(Evaluate, FlagAllHasPerfectDrAndFullFpr) {
  FlagAll detector;
  const EvaluationResult result =
      evaluate(world(), detector, {.max_observers = 6});
  EXPECT_GT(result.windows_evaluated, 0u);
  EXPECT_DOUBLE_EQ(result.average_dr, 1.0);
  EXPECT_DOUBLE_EQ(result.average_fpr, 1.0);
}

TEST(Evaluate, FlagNoneHasZeroRates) {
  FlagNone detector;
  const EvaluationResult result =
      evaluate(world(), detector, {.max_observers = 6});
  EXPECT_DOUBLE_EQ(result.average_dr, 0.0);
  EXPECT_DOUBLE_EQ(result.average_fpr, 0.0);
}

TEST(Evaluate, WindowCountBoundedByGrid) {
  FlagNone detector;
  const EvaluationOptions options{.max_observers = 4};
  const EvaluationResult result = evaluate(world(), detector, options);
  const std::size_t grid =
      world().detection_times().size() * options.max_observers;
  EXPECT_LE(result.windows_evaluated, grid);
  EXPECT_GT(result.windows_evaluated, 0u);
  EXPECT_GT(result.average_neighbors, 0.0);
  EXPECT_GT(result.average_estimated_density, 0.0);
}

}  // namespace
}  // namespace vp::sim
