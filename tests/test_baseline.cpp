#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baseline/cpvsad.h"
#include "baseline/rssi_variation.h"
#include "common/error.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "sim/world.h"

namespace vp::baseline {
namespace {

sim::ScenarioConfig test_config(std::uint64_t seed, bool model_change) {
  sim::ScenarioConfig config;
  config.density_per_km = 15.0;  // 30 vehicles
  config.sim_time_s = 40.0;
  config.observation_time_s = 20.0;
  config.detection_period_s = 20.0;
  config.model_change = model_change;
  config.model_change_period_s = 10.0;  // several drifts within the run
  config.seed = seed;
  return config;
}

const sim::World& stable_world() {
  static std::unique_ptr<sim::World> world = [] {
    auto w = std::make_unique<sim::World>(test_config(11, false));
    w->run();
    return w;
  }();
  return *world;
}

const sim::World& drifting_world() {
  static std::unique_ptr<sim::World> world = [] {
    auto w = std::make_unique<sim::World>(test_config(11, true));
    w->run();
    return w;
  }();
  return *world;
}

TEST(Cpvsad, DetectsSybilGroupUnderMatchedModel) {
  // In this sparse test world witnesses are scarce, so CPVSAD's absolute
  // detection rate is modest; it must still find a solid share of the
  // attack with few false positives.
  CpvsadDetector detector;
  const sim::EvaluationOptions options{.max_observers = 10};
  const sim::EvaluationResult result =
      sim::evaluate(stable_world(), detector, options);
  EXPECT_GT(result.windows_evaluated, 0u);
  EXPECT_GT(result.average_dr, 0.2);
  EXPECT_LT(result.average_fpr, 0.15);
}

TEST(Cpvsad, CollapsesUnderModelDrift) {
  // Fig. 11b's point: CPVSAD needs the predefined model to be right. In
  // this reproduction the collapse manifests as a false-positive explosion
  // (the claim checks misfire for everyone once the model is wrong), which
  // renders the detector unusable.
  CpvsadDetector detector;
  const sim::EvaluationOptions options{.max_observers = 10};
  const double fpr_stable =
      sim::evaluate(stable_world(), detector, options).average_fpr;
  const double fpr_drift =
      sim::evaluate(drifting_world(), detector, options).average_fpr;
  EXPECT_GT(fpr_drift, 2.0 * fpr_stable);
  EXPECT_GT(fpr_drift, 0.2);
}

TEST(Cpvsad, PositionEstimationWithOneObserverIsAmbiguous) {
  // One observer's distance circle has two road intersections; with several
  // spread observers the estimate tightens. We test the geometric core.
  CpvsadOptions options;
  CpvsadDetector detector(options);
  (void)detector;  // construction sanity
}

TEST(Cpvsad, InvalidOptionsThrow) {
  CpvsadOptions options;
  options.max_witnesses = 0;
  EXPECT_THROW(CpvsadDetector{options}, PreconditionError);
  options = CpvsadOptions{};
  options.significance = 0.0;
  EXPECT_THROW(CpvsadDetector{options}, PreconditionError);
}

TEST(RssiVariation, FlagsIdentityAppearingMidRange) {
  // Build a window by hand: identity 9 pops up at −60 dBm mid-window.
  sim::ObservationWindow window;
  window.observer = stable_world().normal_node_ids().front();
  window.t0 = 0.0;
  window.t1 = 20.0;
  sim::NeighborObservation pop;
  pop.id = 509;  // not a real identity: no history anywhere
  for (int i = 0; i < 30; ++i) {
    const double t = 10.0 + i * 0.1;
    pop.beacons.push_back(
        {.time_s = t, .rssi_dbm = -60.0, .claimed_position = {}});
    pop.rssi.add(t, -60.0);
  }
  window.neighbors.push_back(pop);

  RssiVariationDetector detector;
  const auto& world = stable_world();  // unused by the detector's logic
  const auto flagged = detector.detect(window, world);
  EXPECT_EQ(flagged, (std::vector<IdentityId>{509}));
}

TEST(RssiVariation, AcceptsEdgeEntry) {
  sim::ObservationWindow window;
  window.observer = stable_world().normal_node_ids().front();
  window.t0 = 0.0;
  window.t1 = 20.0;
  window.observer_position = {0.0, 0.0};
  sim::NeighborObservation edge;
  edge.id = 504;
  for (int i = 0; i < 50; ++i) {
    const double t = 10.0 + i * 0.1;
    // Enters weak (−94) and strengthens slowly; claims a far position.
    const double rssi = -94.0 + i * 0.1;
    edge.beacons.push_back(
        {.time_s = t, .rssi_dbm = rssi, .claimed_position = {350.0, 0.0}});
    edge.rssi.add(t, rssi);
  }
  window.neighbors.push_back(edge);

  RssiVariationDetector detector;
  EXPECT_TRUE(detector.detect(window, stable_world()).empty());
}

TEST(RssiVariation, FlagsPhysicallyImpossibleJumps) {
  sim::ObservationWindow window;
  window.observer = stable_world().normal_node_ids().front();
  window.t0 = 0.0;
  window.t1 = 20.0;
  window.observer_position = {0.0, 0.0};
  sim::NeighborObservation jumpy;
  jumpy.id = 505;
  for (int i = 0; i < 100; ++i) {
    const double t = i * 0.1;
    // ±25 dB swings every 100 ms at a claimed 200 m range: impossible.
    const double rssi = (i % 2 == 0) ? -55.0 : -80.0;
    jumpy.beacons.push_back(
        {.time_s = t, .rssi_dbm = rssi, .claimed_position = {200.0, 0.0}});
    jumpy.rssi.add(t, rssi);
  }
  window.neighbors.push_back(jumpy);

  RssiVariationDetector detector;
  const auto flagged = detector.detect(window, stable_world());
  EXPECT_EQ(flagged, (std::vector<IdentityId>{505}));
}

TEST(RssiVariation, TooFewBeaconsIgnored) {
  sim::ObservationWindow window;
  window.observer = stable_world().normal_node_ids().front();
  window.t0 = 0.0;
  window.t1 = 20.0;
  sim::NeighborObservation lone;
  lone.id = 506;
  lone.beacons.push_back(
      {.time_s = 10.0, .rssi_dbm = -50.0, .claimed_position = {}});
  window.neighbors.push_back(lone);
  RssiVariationDetector detector;
  EXPECT_TRUE(detector.detect(window, stable_world()).empty());
}

TEST(RssiVariation, InvalidOptionsThrow) {
  RssiVariationOptions options;
  options.violation_fraction = 0.0;
  EXPECT_THROW(RssiVariationDetector{options}, PreconditionError);
}

}  // namespace
}  // namespace vp::baseline
