#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/comparison.h"
#include "core/confirmation.h"
#include "core/density.h"
#include "core/detector.h"
#include "core/threshold.h"
#include "timeseries/series.h"

namespace vp::core {
namespace {

// Builds a bundle of synthetic RSSI series mimicking one observer's
// collection phase: a shared fading trajectory for the attacker's three
// identities (primary + two Sybils at spoofed powers), and independent
// trajectories for two normal vehicles.
std::vector<NamedSeries> make_attack_series(std::uint64_t seed,
                                            double noise_db = 1.0) {
  Rng rng(seed);
  const std::size_t n = 200;
  std::vector<double> attacker_path(n), normal1_path(n), normal2_path(n);
  double a = -75.0, b = -78.0, c = -70.0;
  for (std::size_t i = 0; i < n; ++i) {
    a += rng.normal(0.0, 0.4);
    b += rng.normal(0.0, 0.4);
    c += rng.normal(0.0, 0.4);
    attacker_path[i] = a;
    normal1_path[i] = b;
    normal2_path[i] = c;
  }
  auto series_from = [&](const std::vector<double>& path, double offset,
                         std::uint64_t noise_seed) {
    Rng noise(noise_seed);
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = path[i] + offset + noise.normal(0.0, noise_db);
    }
    return ts::Series::uniform(0.0, 0.1, std::move(values));
  };
  return {
      {1, series_from(attacker_path, 0.0, seed + 10)},     // malicious
      {101, series_from(attacker_path, 3.0, seed + 11)},   // Sybil, +3 dB
      {102, series_from(attacker_path, -3.0, seed + 12)},  // Sybil, −3 dB
      {2, series_from(normal1_path, 0.0, seed + 13)},
      {3, series_from(normal2_path, 0.0, seed + 14)},
  };
}

bool is_sybil_pair(IdentityId a, IdentityId b) {
  auto owner = [](IdentityId id) {
    return (id == 101 || id == 102) ? IdentityId{1} : id;
  };
  return owner(a) == owner(b);
}

TEST(Comparison, SybilPairsScoreLowest) {
  const auto series = make_attack_series(1);
  const auto pairs = compare_series(series);
  ASSERT_EQ(pairs.size(), 10u);  // C(5,2)
  double max_sybil = 0.0;
  double min_other = 1.0;
  for (const PairDistance& p : pairs) {
    if (is_sybil_pair(p.a, p.b)) {
      max_sybil = std::max(max_sybil, p.normalized);
    } else {
      min_other = std::min(min_other, p.normalized);
    }
  }
  EXPECT_LT(max_sybil, min_other);
  EXPECT_LT(max_sybil, 0.2);
}

TEST(Comparison, NormalizedDistancesInUnitInterval) {
  const auto pairs = compare_series(make_attack_series(2));
  double lo = 1.0, hi = 0.0;
  for (const PairDistance& p : pairs) {
    EXPECT_GE(p.normalized, 0.0);
    EXPECT_LE(p.normalized, 1.0);
    lo = std::min(lo, p.normalized);
    hi = std::max(hi, p.normalized);
  }
  EXPECT_DOUBLE_EQ(lo, 0.0);  // min-max normalisation pins the extremes
  EXPECT_DOUBLE_EQ(hi, 1.0);
}

TEST(Comparison, ZScoreDefeatsPowerSpoofing) {
  // Without Eq. 7 the ±3 dB spoofed powers push Sybil pairs apart; with it
  // they collapse back to the smallest distances.
  const auto series = make_attack_series(3);
  ComparisonOptions with, without;
  without.z_score_normalize = false;

  auto sybil_rank = [&](const ComparisonOptions& options) {
    const auto pairs = compare_series(series, options);
    // Rank of the worst Sybil pair when sorted ascending by distance.
    std::vector<double> sybil, all;
    for (const PairDistance& p : pairs) {
      all.push_back(p.normalized);
      if (is_sybil_pair(p.a, p.b)) sybil.push_back(p.normalized);
    }
    std::sort(all.begin(), all.end());
    const double worst = *std::max_element(sybil.begin(), sybil.end());
    return std::lower_bound(all.begin(), all.end(), worst) - all.begin();
  };
  EXPECT_LE(sybil_rank(with), 2);     // Sybil pairs are the closest three
  EXPECT_GT(sybil_rank(without), 2);  // spoofing breaks raw-DTW ordering
}

TEST(Comparison, SkipsDegenerateSeries) {
  // Identity 1 offers a single sample; identity 4 a flat (shape-less)
  // series; identities 2 and 3 proper wiggly series.
  Rng rng(42);
  auto wiggly = [&](double base) {
    std::vector<double> v(80);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = base + rng.normal(0.0, 4.0);
    }
    return ts::Series::uniform(0.0, 0.1, std::move(v));
  };
  std::vector<NamedSeries> series = {
      {1, ts::Series::uniform(0.0, 0.1, {-80.0})},
      {2, wiggly(-70.0)},
      {3, wiggly(-60.0)},
      {4, ts::Series::uniform(0.0, 0.1, std::vector<double>(80, -75.0))},
  };
  const auto pairs = compare_series(series);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, 2u);
  EXPECT_EQ(pairs[0].b, 3u);
  EXPECT_TRUE(pairs[0].comparable);
}

TEST(Comparison, FewerThanTwoSeriesYieldsEmpty) {
  std::vector<NamedSeries> one = {{1, ts::Series::uniform(0.0, 0.1, {1, 2})}};
  EXPECT_TRUE(compare_series(one).empty());
  EXPECT_TRUE(compare_series(std::vector<NamedSeries>{}).empty());
}

TEST(Comparison, DistanceKindsAgreeOnOrdering) {
  const auto series = make_attack_series(4);
  for (DistanceKind kind :
       {DistanceKind::kExactDtw, DistanceKind::kEuclidean}) {
    ComparisonOptions options;
    options.distance = kind;
    const auto pairs = compare_series(series, options);
    double max_sybil = 0.0, min_other = 1.0;
    for (const PairDistance& p : pairs) {
      if (is_sybil_pair(p.a, p.b)) {
        max_sybil = std::max(max_sybil, p.normalized);
      } else {
        min_other = std::min(min_other, p.normalized);
      }
    }
    EXPECT_LT(max_sybil, min_other) << "kind=" << static_cast<int>(kind);
  }
}

TEST(Density, Eq9KnownValues) {
  // 80 neighbours at Dist_max = 400 m → 80 / 0.8 km = 100 vhls/km.
  EXPECT_DOUBLE_EQ(estimate_density_per_km(80, 400.0), 100.0);
  EXPECT_DOUBLE_EQ(estimate_density_per_km(0, 400.0), 0.0);
  EXPECT_THROW(estimate_density_per_km(1, 0.0), PreconditionError);
}

TEST(Density, ExcludesKnownSybils) {
  const std::vector<IdentityId> heard = {1, 2, 101, 102};
  const std::set<IdentityId> known = {101, 102};
  EXPECT_DOUBLE_EQ(estimate_density_per_km(heard, known, 400.0), 2.5);
}

TEST(Threshold, PaperAndConstantBoundaries) {
  const auto paper = paper_boundary();
  EXPECT_DOUBLE_EQ(paper.k, 0.00054);
  EXPECT_DOUBLE_EQ(paper.b, 0.0483);
  const auto constant = constant_boundary(0.05046);
  EXPECT_DOUBLE_EQ(constant.threshold_at(4.0), 0.05046);
  EXPECT_DOUBLE_EQ(constant.threshold_at(100.0), 0.05046);
  EXPECT_THROW(constant_boundary(-0.1), PreconditionError);
}

TEST(Detector, FlagsExactlyTheAttackCluster) {
  VoiceprintDetector detector;  // paper boundary defaults
  const auto flagged = detector.detect_series(make_attack_series(5), 10.0);
  EXPECT_EQ(flagged, (std::vector<IdentityId>{1, 101, 102}));
  EXPECT_EQ(detector.last_flagged_pairs().size(), 3u);  // the 3 Sybil pairs
  EXPECT_EQ(detector.last_all_pairs().size(), 10u);
}

TEST(Detector, PowerSpoofingStillCaught) {
  // ±3 dB offsets are built into make_attack_series; push them wider.
  auto series = make_attack_series(6);
  // Re-offset Sybil series by a large constant (strong spoofing).
  std::vector<double> vals(series[1].second.values().begin(),
                           series[1].second.values().end());
  for (double& v : vals) v += 8.0;
  series[1].second = ts::Series::uniform(0.0, 0.1, std::move(vals));

  VoiceprintDetector detector;
  const auto flagged = detector.detect_series(series, 10.0);
  EXPECT_EQ(flagged, (std::vector<IdentityId>{1, 101, 102}));
}

TEST(Detector, FixedDensityOverride) {
  VoiceprintOptions options;
  options.boundary = {.k = 1.0, .b = 0.0};  // threshold = density
  options.fixed_density_per_km = 0.0;       // → threshold 0: nothing flagged
  VoiceprintDetector detector(options);
  const auto flagged = detector.detect_series(make_attack_series(7), 100.0);
  // Threshold 0 still flags the pair(s) at exactly normalized distance 0.
  EXPECT_LE(flagged.size(), 2u);
  EXPECT_DOUBLE_EQ(detector.last_threshold(), 0.0);
}

TEST(Detector, NoNeighborsNoFlags) {
  VoiceprintDetector detector;
  EXPECT_TRUE(
      detector.detect_series(std::vector<NamedSeries>{}, 10.0).empty());
  EXPECT_TRUE(detector.last_all_pairs().empty());
}

TEST(Confirmation, RequiresRepeatedVerdicts) {
  ConfirmationFilter filter(/*required=*/2, /*window=*/3);
  const std::vector<IdentityId> heard = {7, 8};
  EXPECT_TRUE(filter.update(0, heard, {7}).empty());      // 1 of 2
  const auto confirmed = filter.update(0, heard, {7});    // 2 of 2
  EXPECT_EQ(confirmed, (std::vector<IdentityId>{7}));
  EXPECT_TRUE(filter.confirmed(99).empty());  // unknown observer
}

TEST(Confirmation, SlidingWindowForgets) {
  ConfirmationFilter filter(2, 2);
  const std::vector<IdentityId> heard = {5};
  filter.update(0, heard, {5});
  filter.update(0, heard, {5});
  EXPECT_FALSE(filter.confirmed(0).empty());
  filter.update(0, heard, {});
  filter.update(0, heard, {});
  EXPECT_TRUE(filter.confirmed(0).empty());  // both positives aged out
}

TEST(Confirmation, PerObserverIsolation) {
  ConfirmationFilter filter(1, 1);
  filter.update(0, {4}, {4});
  EXPECT_FALSE(filter.confirmed(0).empty());
  EXPECT_TRUE(filter.confirmed(1).empty());
}

TEST(Confirmation, ResetClearsState) {
  ConfirmationFilter filter(1, 1);
  filter.update(0, {4}, {4});
  filter.reset();
  EXPECT_TRUE(filter.confirmed(0).empty());
}

TEST(Confirmation, InvalidConfigThrows) {
  EXPECT_THROW(ConfirmationFilter(0, 3), PreconditionError);
  EXPECT_THROW(ConfirmationFilter(4, 3), PreconditionError);
}

}  // namespace
}  // namespace vp::core
