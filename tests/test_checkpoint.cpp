// Checkpoint/restore invariants (DESIGN.md §10):
//   * Codec — encode/decode is an exact roundtrip; every corruption
//     (truncation, bit flips, bad magic/version, trailing garbage,
//     structurally invalid contents) is rejected with a reason, and the
//     restore constructors refuse a configuration-hash mismatch.
//   * Restore parity — an engine checkpointed after any beacon and
//     restored emits bit-identical rounds (suspects AND pair distances)
//     to the uninterrupted engine, over highway and field-test traces,
//     at every thread count; same for DetectionService kill/restore.
#include "stream/checkpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "common/binio.h"
#include "cond/conditioner.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/detector.h"
#include "fieldtest/scenario3.h"
#include "service/checkpoint.h"
#include "service/service.h"
#include "sim/world.h"
#include "stream/engine.h"

namespace vp::stream {
namespace {

struct Rx {
  double time_s;
  IdentityId id;
  double rssi_dbm;
};

std::vector<Rx> arrival_stream(const sim::RssiLog& log, double horizon) {
  std::vector<Rx> beacons;
  for (IdentityId id : log.identities_heard(0.0, horizon, 1)) {
    for (const sim::BeaconRecord& r : log.records(id, 0.0, horizon)) {
      beacons.push_back({r.time_s, id, r.rssi_dbm});
    }
  }
  std::sort(beacons.begin(), beacons.end(), [](const Rx& a, const Rx& b) {
    return a.time_s != b.time_s ? a.time_s < b.time_s : a.id < b.id;
  });
  return beacons;
}

void expect_rounds_identical(const std::vector<StreamRound>& actual,
                             const std::vector<StreamRound>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].time_s, expected[i].time_s);
    EXPECT_EQ(actual[i].identities_heard, expected[i].identities_heard);
    EXPECT_EQ(actual[i].density_per_km, expected[i].density_per_km);
    EXPECT_EQ(actual[i].suspects, expected[i].suspects);
    ASSERT_EQ(actual[i].pairs.size(), expected[i].pairs.size());
    for (std::size_t j = 0; j < expected[i].pairs.size(); ++j) {
      EXPECT_EQ(actual[i].pairs[j].a, expected[i].pairs[j].a);
      EXPECT_EQ(actual[i].pairs[j].b, expected[i].pairs[j].b);
      EXPECT_EQ(actual[i].pairs[j].comparable, expected[i].pairs[j].comparable);
      EXPECT_EQ(actual[i].pairs[j].raw, expected[i].pairs[j].raw);  // bitwise
      EXPECT_EQ(actual[i].pairs[j].normalized, expected[i].pairs[j].normalized);
    }
  }
}

// Feeds `trace` into a fresh engine, returning every round it emitted.
std::vector<StreamRound> run_uninterrupted(const StreamEngineConfig& config,
                                           const std::vector<Rx>& trace,
                                           double end_time) {
  StreamEngine engine(config);
  std::vector<StreamRound> rounds;
  engine.set_round_callback(
      [&rounds](const StreamRound& r) { rounds.push_back(r); });
  for (const Rx& rx : trace) engine.ingest(rx.id, rx.time_s, rx.rssi_dbm);
  engine.advance_to(end_time);
  return rounds;
}

// Feeds trace[0, cut) into one engine, checkpoints it THROUGH THE WIRE
// FORMAT (encode + decode, exercising the codec on real state), restores
// a second engine and feeds it the remainder. Returns prefix + suffix
// rounds concatenated — which must equal the uninterrupted run's.
std::vector<StreamRound> run_killed_at(const StreamEngineConfig& config,
                                       const std::vector<Rx>& trace,
                                       double end_time, std::size_t cut,
                                       const StreamEngineConfig& restore_config) {
  std::vector<StreamRound> rounds;
  const auto record = [&rounds](const StreamRound& r) { rounds.push_back(r); };

  StreamEngine first(config);
  first.set_round_callback(record);
  for (std::size_t i = 0; i < cut; ++i) {
    first.ingest(trace[i].id, trace[i].time_s, trace[i].rssi_dbm);
  }

  const std::vector<std::uint8_t> bytes = encode_checkpoint(first.checkpoint());
  EngineCheckpoint restored_cp;
  std::string error;
  EXPECT_TRUE(decode_checkpoint(bytes, &restored_cp, &error)) << error;

  StreamEngine second(restore_config, restored_cp);
  second.set_round_callback(record);
  for (std::size_t i = cut; i < trace.size(); ++i) {
    second.ingest(trace[i].id, trace[i].time_s, trace[i].rssi_dbm);
  }
  second.advance_to(end_time);
  return rounds;
}

StreamEngineConfig highway_config(const sim::ScenarioConfig& sim_config,
                                  std::size_t threads) {
  StreamEngineConfig config;
  config.observation_time_s = sim_config.observation_time_s;
  config.round_period_s = sim_config.detection_period_s;
  config.density_estimation_period_s = sim_config.density_estimation_period_s;
  config.max_transmission_range_m = sim_config.max_transmission_range_m;
  config.min_samples = 4;
  config.detector = core::tuned_simulation_options(threads);
  return config;
}

class CheckpointHighwayParity : public ::testing::TestWithParam<std::size_t> {};

// The tentpole acceptance bar: kill/restore at stride-sampled beacon
// positions across a highway trace (including before the first beacon and
// after the last) and the combined round stream is bit-identical to the
// uninterrupted engine, at every thread count.
TEST_P(CheckpointHighwayParity, KillRestoreAnywhereIsBitIdentical) {
  const std::size_t threads = GetParam();
  sim::ScenarioConfig sim_config;
  sim_config.density_per_km = 12.0;
  sim_config.sim_time_s = 60.0;
  sim_config.seed = 11;
  sim::World world(sim_config);
  world.run();
  const double end_time = world.detection_times().back();
  const std::vector<Rx> trace = arrival_stream(
      world.node(world.normal_node_ids().front()).log(),
      sim_config.sim_time_s + 1.0);
  ASSERT_GT(trace.size(), 100u);

  const StreamEngineConfig config = highway_config(sim_config, threads);
  const std::vector<StreamRound> baseline =
      run_uninterrupted(config, trace, end_time);
  ASSERT_EQ(baseline.size(), world.detection_times().size());

  const std::vector<std::size_t> cuts = {
      0, 1, trace.size() / 4, trace.size() / 2, (3 * trace.size()) / 4,
      trace.size() - 1, trace.size()};
  for (std::size_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    expect_rounds_identical(
        run_killed_at(config, trace, end_time, cut, config), baseline);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, CheckpointHighwayParity,
                         ::testing::Values(0u, 1u, 4u));

// engine_config_hash deliberately excludes comparison threads: a
// checkpoint taken under a single-threaded engine restores into a
// 4-thread one (and vice versa) with bit-identical results.
TEST(Checkpoint, RestoresAcrossThreadCounts) {
  sim::ScenarioConfig sim_config;
  sim_config.density_per_km = 10.0;
  sim_config.sim_time_s = 45.0;
  sim_config.seed = 7;
  sim::World world(sim_config);
  world.run();
  const double end_time = world.detection_times().back();
  const std::vector<Rx> trace = arrival_stream(
      world.node(world.normal_node_ids().front()).log(),
      sim_config.sim_time_s + 1.0);

  const StreamEngineConfig one = highway_config(sim_config, 1);
  const StreamEngineConfig four = highway_config(sim_config, 4);
  ASSERT_EQ(engine_config_hash(one), engine_config_hash(four));

  const std::vector<StreamRound> baseline =
      run_uninterrupted(one, trace, end_time);
  expect_rounds_identical(
      run_killed_at(one, trace, end_time, trace.size() / 2, four), baseline);
}

// Same parity over the field-test generator's campus trace, whose
// geometry (fixed density, long staleness horizon) differs from the
// highway defaults.
TEST(Checkpoint, FieldTestReplayKillRestoreParity) {
  ft::FieldTestConfig ft_config;
  ft_config.area = ft::Area::kCampus;
  ft_config.duration_s = 180.0;
  const ft::FieldTestData data = ft::run_field_test(ft_config);
  const std::vector<Rx> trace =
      arrival_stream(data.logs.at(ft::kNormalNode3), data.duration_s + 1.0);
  ASSERT_GT(trace.size(), 50u);

  StreamEngineConfig config;
  config.observation_time_s = ft_config.observation_time_s;
  config.round_period_s = ft_config.detection_period_s;
  config.min_samples = 4;
  config.staleness_horizon_s = 120.0;
  config.detector.fixed_density_per_km = 4.0;

  const std::vector<StreamRound> baseline =
      run_uninterrupted(config, trace, data.duration_s);
  ASSERT_GE(baseline.size(), 3u);
  for (std::size_t cut :
       {trace.size() / 3, trace.size() / 2, (2 * trace.size()) / 3}) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    expect_rounds_identical(
        run_killed_at(config, trace, data.duration_s, cut, config), baseline);
  }
}

// --- Codec --------------------------------------------------------------

// A checkpoint with real state in every field, for codec tests.
EngineCheckpoint sample_checkpoint() {
  StreamEngineConfig config;
  config.max_ingest_rate_hz = 100.0;  // exercise the bucket fields
  StreamEngine engine(config);
  Rng rng(5);
  for (double t = 0.5; t < 25.0; t += 0.1) {
    engine.ingest(static_cast<IdentityId>(1 + rng.uniform_int(0, 5)), t,
                  -70.0 + rng.normal(0.0, 4.0));
  }
  engine.ingest(3, std::numeric_limits<double>::quiet_NaN(), -70.0);  // stats
  return engine.checkpoint();
}

void expect_stats_equal(const StreamEngine::Stats& a,
                        const StreamEngine::Stats& b) {
  EXPECT_EQ(a.beacons_offered, b.beacons_offered);
  EXPECT_EQ(a.beacons_ingested, b.beacons_ingested);
  EXPECT_EQ(a.beacons_shed_rate_limited, b.beacons_shed_rate_limited);
  EXPECT_EQ(a.beacons_shed_identity_cap, b.beacons_shed_identity_cap);
  EXPECT_EQ(a.beacons_shed_out_of_order, b.beacons_shed_out_of_order);
  EXPECT_EQ(a.shed_invalid_rssi_non_finite, b.shed_invalid_rssi_non_finite);
  EXPECT_EQ(a.shed_invalid_rssi_out_of_range,
            b.shed_invalid_rssi_out_of_range);
  EXPECT_EQ(a.shed_invalid_time_non_finite, b.shed_invalid_time_non_finite);
  EXPECT_EQ(a.shed_invalid_time_negative, b.shed_invalid_time_negative);
  EXPECT_EQ(a.ring_evictions, b.ring_evictions);
  EXPECT_EQ(a.samples_expired, b.samples_expired);
  EXPECT_EQ(a.identities_expired, b.identities_expired);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(CheckpointCodec, RoundTripIsExact) {
  const EngineCheckpoint original = sample_checkpoint();
  const std::vector<std::uint8_t> bytes = encode_checkpoint(original);
  EngineCheckpoint decoded;
  std::string error;
  ASSERT_TRUE(decode_checkpoint(bytes, &decoded, &error)) << error;

  EXPECT_EQ(decoded.config_hash, original.config_hash);
  EXPECT_EQ(decoded.next_round_s, original.next_round_s);
  EXPECT_EQ(decoded.last_round_time_s, original.last_round_time_s);
  EXPECT_EQ(decoded.bucket_second, original.bucket_second);
  EXPECT_EQ(decoded.bucket_accepted, original.bucket_accepted);
  expect_stats_equal(decoded.stats, original.stats);
  ASSERT_EQ(decoded.identities.size(), original.identities.size());
  for (std::size_t i = 0; i < original.identities.size(); ++i) {
    const IdentityCheckpoint& a = decoded.identities[i];
    const IdentityCheckpoint& b = original.identities[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.last_heard_s, b.last_heard_s);
    EXPECT_EQ(a.ring.capacity, b.ring.capacity);
    EXPECT_EQ(a.ring.times, b.ring.times);
    EXPECT_EQ(a.ring.values, b.ring.values);
    // Welford accumulators verbatim — the bit-parity-critical part.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.ring.mean),
              std::bit_cast<std::uint64_t>(b.ring.mean));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.ring.m2),
              std::bit_cast<std::uint64_t>(b.ring.m2));
  }
}

TEST(CheckpointCodec, EveryTruncationIsRejected) {
  const std::vector<std::uint8_t> bytes =
      encode_checkpoint(sample_checkpoint());
  EngineCheckpoint out;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::string error;
    EXPECT_FALSE(decode_checkpoint(
        std::span<const std::uint8_t>(bytes.data(), len), &out, &error))
        << "prefix of " << len << " bytes decoded";
    EXPECT_FALSE(error.empty());
  }
}

TEST(CheckpointCodec, EverySingleByteFlipIsRejected) {
  // The trailing FNV-1a checksum (verified before anything is parsed)
  // makes any single-byte corruption detectable.
  const std::vector<std::uint8_t> bytes =
      encode_checkpoint(sample_checkpoint());
  EngineCheckpoint out;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[i] ^= 0x40;
    std::string error;
    EXPECT_FALSE(decode_checkpoint(corrupt, &out, &error))
        << "flip at byte " << i << " decoded";
  }
}

TEST(CheckpointCodec, TrailingGarbageIsRejected) {
  std::vector<std::uint8_t> bytes = encode_checkpoint(sample_checkpoint());
  bytes.push_back(0x00);
  EngineCheckpoint out;
  std::string error;
  EXPECT_FALSE(decode_checkpoint(bytes, &out, &error));
}

// Patches the version field AND recomputes the checksum, so the version
// check itself (not the checksum) must reject.
TEST(CheckpointCodec, UnknownVersionIsRejected) {
  std::vector<std::uint8_t> bytes = encode_checkpoint(sample_checkpoint());
  bytes[4] = 0x2a;  // version u32 LE at offset 4 (after "VPCK")
  const std::uint64_t checksum = fnv1a64(
      std::span<const std::uint8_t>(bytes.data(), bytes.size() - 8));
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + i] =
        static_cast<std::uint8_t>(checksum >> (8 * i));
  }
  EngineCheckpoint out;
  std::string error;
  EXPECT_FALSE(decode_checkpoint(bytes, &out, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(CheckpointCodec, StructurallyInvalidContentsAreRejected) {
  EngineCheckpoint cp = sample_checkpoint();
  ASSERT_GE(cp.identities.size(), 2u);
  // Unsorted ring times inside one identity.
  EngineCheckpoint bad = cp;
  ASSERT_GE(bad.identities[0].ring.times.size(), 2u);
  std::swap(bad.identities[0].ring.times.front(),
            bad.identities[0].ring.times.back());
  EngineCheckpoint out;
  std::string error;
  EXPECT_FALSE(decode_checkpoint(encode_checkpoint(bad), &out, &error));

  // Identity ids out of ascending order.
  bad = cp;
  std::swap(bad.identities[0].id, bad.identities[1].id);
  EXPECT_FALSE(decode_checkpoint(encode_checkpoint(bad), &out, &error));

  // More samples than ring capacity.
  bad = cp;
  bad.identities[0].ring.capacity = 1;
  EXPECT_FALSE(decode_checkpoint(encode_checkpoint(bad), &out, &error));
}

TEST(CheckpointCodec, RestoreRefusesMismatchedConfig) {
  StreamEngineConfig config;
  StreamEngine engine(config);
  engine.ingest(1, 1.0, -70.0);
  const EngineCheckpoint cp = engine.checkpoint();

  StreamEngineConfig other = config;
  other.observation_time_s = 30.0;  // different window geometry
  EXPECT_THROW(StreamEngine(other, cp), PreconditionError);
  other = config;
  other.detector.boundary.k += 0.5;  // different threshold rule
  EXPECT_THROW(StreamEngine(other, cp), PreconditionError);
}

// --- Conditioning state (VPCK v3) ---------------------------------------

// A conditioned engine's checkpoint carries the full §15 filter state —
// Hampel window, EMA register, init flag, reject streak — and the cond_*
// counters, all bit-exact through the wire format. The trace ends inside
// a spike burst so at least one identity is checkpointed mid-streak.
TEST(CheckpointCodec, V3RoundTripCarriesConditioningState) {
  StreamEngineConfig config;
  config.condition_ingest = true;
  StreamEngine engine(config);
  Rng rng(13);
  double t = 0.5;
  for (int i = 0; i < 400; ++i, t += 0.1) {
    const IdentityId id = static_cast<IdentityId>(1 + rng.uniform_int(0, 3));
    double x = std::round(-70.0 + rng.normal(0.0, 2.0));
    if (i % 37 == 0) x += 30.0;  // sporadic spikes: rejects + streaks
    engine.ingest(id, t, x);
  }
  for (int i = 0; i < 3; ++i, t += 0.1) engine.ingest(1, t, -35.0);  // streak

  const EngineCheckpoint original = engine.checkpoint();
  EXPECT_GT(original.stats.cond_offered, 0u);
  EXPECT_EQ(original.stats.cond_offered,
            original.stats.cond_passed + original.stats.cond_clamped +
                original.stats.cond_rejected);
  bool saw_window = false;
  bool saw_streak = false;
  for (const IdentityCheckpoint& ic : original.identities) {
    saw_window = saw_window || !ic.cond_window.empty();
    saw_streak = saw_streak || ic.cond_reject_streak > 0;
  }
  EXPECT_TRUE(saw_window);
  EXPECT_TRUE(saw_streak);

  const std::vector<std::uint8_t> bytes = encode_checkpoint(original);
  EngineCheckpoint decoded;
  std::string error;
  ASSERT_TRUE(decode_checkpoint(bytes, &decoded, &error)) << error;
  EXPECT_EQ(decoded.stats.beacons_shed_conditioned,
            original.stats.beacons_shed_conditioned);
  EXPECT_EQ(decoded.stats.cond_offered, original.stats.cond_offered);
  EXPECT_EQ(decoded.stats.cond_passed, original.stats.cond_passed);
  EXPECT_EQ(decoded.stats.cond_clamped, original.stats.cond_clamped);
  EXPECT_EQ(decoded.stats.cond_rejected, original.stats.cond_rejected);
  ASSERT_EQ(decoded.identities.size(), original.identities.size());
  for (std::size_t i = 0; i < original.identities.size(); ++i) {
    const IdentityCheckpoint& a = decoded.identities[i];
    const IdentityCheckpoint& b = original.identities[i];
    EXPECT_EQ(a.cond_window, b.cond_window);
    EXPECT_EQ(a.cond_ema_q12, b.cond_ema_q12);
    EXPECT_EQ(a.cond_ema_init, b.cond_ema_init);
    EXPECT_EQ(a.cond_reject_streak, b.cond_reject_streak);
  }
}

TEST(CheckpointCodec, RejectsOversizedConditionerWindow) {
  StreamEngineConfig config;
  config.condition_ingest = true;
  StreamEngine engine(config);
  engine.ingest(1, 1.0, -70.0);
  EngineCheckpoint cp = engine.checkpoint();
  ASSERT_FALSE(cp.identities.empty());
  cp.identities[0].cond_window.assign(cond::kMaxWindow + 1, 0);
  EngineCheckpoint out;
  std::string error;
  EXPECT_FALSE(decode_checkpoint(encode_checkpoint(cp), &out, &error));
  EXPECT_NE(error.find("window"), std::string::npos) << error;
}

// Writes `cp` in the exact v2 layout (no conditioning fields anywhere):
// the forward-compat pin for checkpoints taken before §15 existed.
std::vector<std::uint8_t> encode_v2(const EngineCheckpoint& cp) {
  std::vector<std::uint8_t> bytes;
  ByteWriter w(bytes);
  w.put_u32(0x4b435056u);  // "VPCK"
  w.put_u32(2);
  w.put_u64(cp.config_hash);
  w.put_f64(cp.next_round_s);
  w.put_f64(cp.last_round_time_s);
  w.put_i64(cp.bucket_second);
  w.put_u64(cp.bucket_accepted);
  w.put_u64(cp.next_round_id);
  const StreamEngine::Stats& s = cp.stats;
  w.put_u64(s.beacons_offered);
  w.put_u64(s.beacons_ingested);
  w.put_u64(s.beacons_shed_rate_limited);
  w.put_u64(s.beacons_shed_identity_cap);
  w.put_u64(s.beacons_shed_out_of_order);
  w.put_u64(s.shed_invalid_rssi_non_finite);
  w.put_u64(s.shed_invalid_rssi_out_of_range);
  w.put_u64(s.shed_invalid_time_non_finite);
  w.put_u64(s.shed_invalid_time_negative);
  w.put_u64(s.ring_evictions);
  w.put_u64(s.samples_expired);
  w.put_u64(s.identities_expired);
  w.put_u64(s.rounds);
  w.put_u64(cp.identities.size());
  for (const IdentityCheckpoint& ic : cp.identities) {
    w.put_u64(static_cast<std::uint64_t>(ic.id));
    w.put_f64(ic.last_heard_s);
    w.put_u64(static_cast<std::uint64_t>(ic.ring.capacity));
    w.put_u64(static_cast<std::uint64_t>(ic.ring.times.size()));
    for (double time : ic.ring.times) w.put_f64(time);
    for (double v : ic.ring.values) w.put_f64(v);
    w.put_f64(ic.ring.mean);
    w.put_f64(ic.ring.m2);
  }
  w.put_u64(fnv1a64(bytes));
  return bytes;
}

// A pre-§15 (v2) checkpoint still decodes: every v2 field lands intact,
// the conditioning state defaults to empty, and the engine restores and
// keeps serving from it.
TEST(CheckpointCodec, V2PayloadStillDecodes) {
  const EngineCheckpoint original = sample_checkpoint();
  const std::vector<std::uint8_t> bytes = encode_v2(original);

  EngineCheckpoint decoded;
  std::string error;
  ASSERT_TRUE(decode_checkpoint(bytes, &decoded, &error)) << error;
  EXPECT_EQ(decoded.config_hash, original.config_hash);
  EXPECT_EQ(decoded.next_round_s, original.next_round_s);
  EXPECT_EQ(decoded.next_round_id, original.next_round_id);
  expect_stats_equal(decoded.stats, original.stats);
  EXPECT_EQ(decoded.stats.beacons_shed_conditioned, 0u);
  EXPECT_EQ(decoded.stats.cond_offered, 0u);
  ASSERT_EQ(decoded.identities.size(), original.identities.size());
  for (std::size_t i = 0; i < original.identities.size(); ++i) {
    EXPECT_EQ(decoded.identities[i].ring.times,
              original.identities[i].ring.times);
    EXPECT_TRUE(decoded.identities[i].cond_window.empty());
    EXPECT_EQ(decoded.identities[i].cond_reject_streak, 0u);
    EXPECT_FALSE(decoded.identities[i].cond_ema_init);
  }

  StreamEngineConfig config;
  config.max_ingest_rate_hz = 100.0;  // sample_checkpoint's config
  StreamEngine restored(config, decoded);
  restored.ingest(1, 30.0, -70.0);  // still serving
  EXPECT_GT(restored.stats().beacons_ingested,
            original.stats.beacons_ingested);
}

TEST(CheckpointCodec, SaveLoadFileRoundTrip) {
  const EngineCheckpoint original = sample_checkpoint();
  const std::string path = "test_checkpoint_roundtrip.vpck";
  std::string error;
  ASSERT_TRUE(save_checkpoint(original, path, &error)) << error;
  EngineCheckpoint loaded;
  ASSERT_TRUE(load_checkpoint(path, &loaded, &error)) << error;
  EXPECT_EQ(encode_checkpoint(loaded), encode_checkpoint(original));
  std::remove(path.c_str());
  EXPECT_FALSE(load_checkpoint(path, &loaded, &error));  // gone
}

}  // namespace
}  // namespace vp::stream

// --- Service kill/restore ----------------------------------------------

namespace vp::service {
namespace {

struct FleetRx {
  double time_s;
  SessionId session;
  IdentityId id;
  double rssi_dbm;
};

std::vector<FleetRx> fleet_trace(std::size_t sessions, std::size_t identities,
                                 double rate_hz, double duration_s) {
  std::vector<FleetRx> beacons;
  for (std::size_t s = 1; s <= sessions; ++s) {
    for (std::size_t i = 1; i <= identities; ++i) {
      Rng rng(mix64(mix64(0xc4a05, s), i));
      double shadow = 0.0;
      const double level = -62.0 - rng.uniform(0.0, 20.0);
      for (double t = rng.uniform(0.0, 0.1); t < duration_s;
           t += 1.0 / rate_hz) {
        shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
        beacons.push_back({t, static_cast<SessionId>(s),
                           static_cast<IdentityId>(i), level + shadow});
      }
    }
  }
  std::sort(beacons.begin(), beacons.end(),
            [](const FleetRx& a, const FleetRx& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              if (a.session != b.session) return a.session < b.session;
              return a.id < b.id;
            });
  return beacons;
}

using SessionRounds = std::map<SessionId, std::vector<stream::StreamRound>>;

void expect_fleet_identical(const SessionRounds& actual,
                            const SessionRounds& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [session, rounds] : expected) {
    SCOPED_TRACE("session=" + std::to_string(session));
    const auto it = actual.find(session);
    ASSERT_NE(it, actual.end());
    stream::expect_rounds_identical(it->second, rounds);
  }
}

TEST(ServiceCheckpoint, KillRestoreFleetParity) {
  constexpr double kDuration = 45.0;
  const std::vector<FleetRx> beacons = fleet_trace(3, 6, 10.0, kDuration);

  ServiceConfig config;
  config.shards = 3;
  config.threads = 1;
  config.engine.detector = core::tuned_simulation_options(1);

  const auto collect_into = [](SessionRounds& rounds) {
    return [&rounds](const SessionRound& r) {
      rounds[r.session].push_back(r.round);
    };
  };

  SessionRounds baseline;
  {
    DetectionService fleet(config);
    fleet.set_round_callback(collect_into(baseline));
    for (const FleetRx& rx : beacons) {
      fleet.ingest(rx.session, rx.id, rx.time_s, rx.rssi_dbm);
    }
    fleet.advance_all_to(kDuration);
  }
  ASSERT_FALSE(baseline.empty());

  for (std::size_t cut :
       {beacons.size() / 3, beacons.size() / 2, (4 * beacons.size()) / 5}) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    SessionRounds rounds;
    DetectionService first(config);
    first.set_round_callback(collect_into(rounds));
    for (std::size_t i = 0; i < cut; ++i) {
      first.ingest(beacons[i].session, beacons[i].id, beacons[i].time_s,
                   beacons[i].rssi_dbm);
    }
    first.pump();  // checkpoint requires a drained round queue

    // Kill: through the wire format, as a real restart would.
    const std::vector<std::uint8_t> bytes =
        encode_checkpoint(first.checkpoint());
    ServiceCheckpoint cp;
    std::string error;
    ASSERT_TRUE(decode_checkpoint(bytes, &cp, &error)) << error;

    // Restore under a different pool width: threads are results-neutral
    // and deliberately excluded from the config hash.
    ServiceConfig restore_config = config;
    restore_config.threads = 4;
    DetectionService second(restore_config, cp);
    second.set_round_callback(collect_into(rounds));
    for (std::size_t i = cut; i < beacons.size(); ++i) {
      second.ingest(beacons[i].session, beacons[i].id, beacons[i].time_s,
                    beacons[i].rssi_dbm);
    }
    second.advance_all_to(kDuration);
    expect_fleet_identical(rounds, baseline);
  }
}

TEST(ServiceCheckpoint, RequiresDrainedQueue) {
  ServiceConfig config;
  config.pump_batch_rounds = 0;  // no auto-pump: rounds stay queued
  DetectionService fleet(config);
  fleet.ingest(1, 1, 1.0, -70.0);
  fleet.ingest(1, 1, 21.0, -70.0);  // prepares + queues the round at t=20
  ASSERT_GT(fleet.queued_rounds(), 0u);
  EXPECT_THROW(fleet.checkpoint(), PreconditionError);
  fleet.pump();
  EXPECT_NO_THROW(fleet.checkpoint());
}

TEST(ServiceCheckpoint, CodecRejectsCorruptionAndWrongConfig) {
  ServiceConfig config;
  DetectionService fleet(config);
  fleet.ingest(7, 1, 1.0, -70.0);
  fleet.ingest(8, 2, 1.5, -72.0);
  fleet.pump();
  const ServiceCheckpoint cp = fleet.checkpoint();
  const std::vector<std::uint8_t> bytes = encode_checkpoint(cp);

  ServiceCheckpoint out;
  std::string error;
  ASSERT_TRUE(decode_checkpoint(bytes, &out, &error)) << error;
  EXPECT_EQ(encode_checkpoint(out), bytes);  // roundtrip is exact

  std::vector<std::uint8_t> corrupt = bytes;
  corrupt[0] ^= 0xff;  // magic
  EXPECT_FALSE(decode_checkpoint(corrupt, &out, &error));
  corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x01;  // body → checksum mismatch
  EXPECT_FALSE(decode_checkpoint(corrupt, &out, &error));
  EXPECT_FALSE(decode_checkpoint(
      std::span<const std::uint8_t>(bytes.data(), bytes.size() - 1), &out,
      &error));

  ServiceConfig other = config;
  other.shards = config.shards + 1;  // placement-changing: must refuse
  EXPECT_THROW(DetectionService(other, cp), PreconditionError);
}

TEST(ServiceCheckpoint, SaveLoadFileRoundTrip) {
  ServiceConfig config;
  DetectionService fleet(config);
  fleet.ingest(3, 1, 1.0, -70.0);
  fleet.pump();
  const ServiceCheckpoint cp = fleet.checkpoint();
  const std::string path = "test_service_checkpoint_roundtrip.vpsc";
  std::string error;
  ASSERT_TRUE(save_checkpoint(cp, path, &error)) << error;
  ServiceCheckpoint loaded;
  ASSERT_TRUE(load_checkpoint(path, &loaded, &error)) << error;
  EXPECT_EQ(encode_checkpoint(loaded), encode_checkpoint(cp));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vp::service
