// End-to-end checks of the paper's headline claims on small, fast
// configurations: Voiceprint detects the attack cluster through the full
// simulation stack, stays accurate when the propagation environment
// drifts, and its training pipeline produces a usable boundary.
#include <gtest/gtest.h>

#include <memory>

#include "core/detector.h"
#include "core/threshold.h"
#include "ml/metrics.h"
#include "sim/runner.h"
#include "sim/world.h"

namespace vp {
namespace {

sim::ScenarioConfig config_for(double density, bool model_change,
                               std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.density_per_km = density;
  config.sim_time_s = 40.0;
  config.observation_time_s = 20.0;
  config.detection_period_s = 20.0;
  config.model_change = model_change;
  config.model_change_period_s = 10.0;
  config.seed = seed;
  return config;
}

const sim::World& world_low_density() {
  static auto world = [] {
    auto w = std::make_unique<sim::World>(config_for(15.0, false, 21));
    w->run();
    return w;
  }();
  return *world;
}

const sim::World& world_drifting() {
  static auto world = [] {
    auto w = std::make_unique<sim::World>(config_for(15.0, true, 21));
    w->run();
    return w;
  }();
  return *world;
}

TEST(Integration, VoiceprintDetectsThroughFullStack) {
  core::VoiceprintDetector detector(core::tuned_simulation_options());
  const sim::EvaluationOptions options{.max_observers = 10};
  const sim::EvaluationResult result =
      sim::evaluate(world_low_density(), detector, options);
  EXPECT_GT(result.windows_evaluated, 0u);
  EXPECT_GT(result.average_dr, 0.75);
  EXPECT_LT(result.average_fpr, 0.10);
}

TEST(Integration, VoiceprintImmuneToModelDrift) {
  core::VoiceprintDetector detector(core::tuned_simulation_options());
  const sim::EvaluationOptions options{.max_observers = 10};
  const double dr_stable =
      sim::evaluate(world_low_density(), detector, options).average_dr;
  const double dr_drift =
      sim::evaluate(world_drifting(), detector, options).average_dr;
  // Fig. 11b: Voiceprint is "almost immune to the change".
  EXPECT_GT(dr_drift, dr_stable - 0.15);
}

TEST(Integration, TrainingPipelineProducesUsableBoundary) {
  ml::Dataset data;
  core::TrainingOptions options;
  options.max_observers = 10;
  core::collect_training_points(world_low_density(), options, data);
  ASSERT_GT(data.size(), 100u);

  std::size_t sybil_pairs = 0;
  for (const auto& p : data) sybil_pairs += p.sybil_pair ? 1 : 0;
  ASSERT_GT(sybil_pairs, 10u);
  ASSERT_LT(sybil_pairs, data.size());

  const ml::LinearBoundary boundary = core::train_boundary(data);
  const ml::Confusion confusion = ml::evaluate(boundary, data);
  EXPECT_GT(confusion.detection_rate(), 0.8);
  EXPECT_LT(confusion.false_positive_rate(), 0.15);

  // Distances separate classes strongly in ranking terms too.
  EXPECT_GT(ml::auc_lower_is_positive(data), 0.9);
}

TEST(Integration, TunedBoundaryWorksInDetector) {
  // The identity-level tuner (the pipeline behind tuned_simulation_options)
  // must yield a detector meeting its own FPR budget in-domain.
  std::vector<core::LabeledWindow> windows;
  core::TrainingOptions toptions;
  toptions.max_observers = 10;
  core::collect_labeled_windows(world_low_density(), toptions, windows);
  ASSERT_FALSE(windows.empty());
  const core::TunedBoundary tuned = core::tune_boundary(windows);
  EXPECT_GT(tuned.train_dr, 0.7);
  EXPECT_LE(tuned.train_fpr, 0.05 + 1e-9);

  core::VoiceprintOptions voptions;
  voptions.boundary = tuned.boundary;
  voptions.min_pair_votes = tuned.votes;
  core::VoiceprintDetector detector(voptions);
  const sim::EvaluationResult result = sim::evaluate(
      world_low_density(), detector, {.max_observers = 10});
  EXPECT_GT(result.average_dr, 0.7);
  EXPECT_LT(result.average_fpr, 0.10);
}

TEST(Integration, DensityEstimateTracksTruth) {
  const sim::World& world = world_low_density();
  double density_sum = 0.0;
  int n = 0;
  for (NodeId observer : world.normal_node_ids()) {
    const auto window = world.observe(observer, 20.0);
    density_sum += window.estimated_density_per_km;
    ++n;
  }
  const double avg = density_sum / n;
  // Eq. 9 counts Sybil identities too, so it overestimates; it must still
  // sit within a factor ~2 of the configured 15 vhls/km.
  EXPECT_GT(avg, 5.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Integration, CollisionsIncreaseWithDensity) {
  // The mechanism the paper blames for Voiceprint's DR decline at high
  // density: more vehicles → more channel collisions → packet loss.
  auto dense_cfg = config_for(60.0, false, 22);
  dense_cfg.sim_time_s = 20.0;
  dense_cfg.observation_time_s = 10.0;
  auto sparse_cfg = config_for(10.0, false, 22);
  sparse_cfg.sim_time_s = 20.0;
  sparse_cfg.observation_time_s = 10.0;

  sim::World dense(dense_cfg);
  sim::World sparse(sparse_cfg);
  dense.run();
  sparse.run();

  const auto loss_rate = [](const sim::WorldStats& s) {
    const double attempted = static_cast<double>(
        s.frames_received + s.frames_collided + s.frames_half_duplex_missed);
    return attempted == 0.0
               ? 0.0
               : static_cast<double>(s.frames_collided) / attempted;
  };
  EXPECT_GT(loss_rate(dense.stats()), loss_rate(sparse.stats()));
}

}  // namespace
}  // namespace vp
