#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "mobility/epoch_mobility.h"
#include "mobility/highway.h"
#include "mobility/trace.h"
#include "mobility/waypoint_route.h"

namespace vp::mob {
namespace {

TEST(HighwayTest, LaneGeometry) {
  const Highway hw;  // 2 km, 2 lanes/direction, 3.6 m
  EXPECT_EQ(hw.lane_count(), 4u);
  EXPECT_EQ(hw.lane_direction(0), Direction::kForward);
  EXPECT_EQ(hw.lane_direction(1), Direction::kForward);
  EXPECT_EQ(hw.lane_direction(2), Direction::kBackward);
  EXPECT_EQ(hw.lane_direction(3), Direction::kBackward);
  EXPECT_DOUBLE_EQ(hw.lane_center_y(0), 1.8);
  EXPECT_DOUBLE_EQ(hw.lane_center_y(3), 12.6);
}

TEST(HighwayTest, OppositeLaneMirrors) {
  const Highway hw;
  EXPECT_EQ(hw.opposite_lane(0), 3u);
  EXPECT_EQ(hw.opposite_lane(1), 2u);
  EXPECT_EQ(hw.opposite_lane(2), 1u);
  EXPECT_EQ(hw.opposite_lane(3), 0u);
}

TEST(HighwayTest, WrapAtForwardEndTurnsAround) {
  const Highway hw;
  VehicleState s;
  s.lane = 0;
  s.direction = Direction::kForward;
  s.position = {2050.0, hw.lane_center_y(0)};
  hw.wrap(s);
  EXPECT_DOUBLE_EQ(s.position.x, 1950.0);
  EXPECT_EQ(s.direction, Direction::kBackward);
  EXPECT_EQ(s.lane, 3u);
  EXPECT_DOUBLE_EQ(s.position.y, hw.lane_center_y(3));
}

TEST(HighwayTest, WrapAtBackwardEndTurnsAround) {
  const Highway hw;
  VehicleState s;
  s.lane = 3;
  s.direction = Direction::kBackward;
  s.position = {-30.0, hw.lane_center_y(3)};
  hw.wrap(s);
  EXPECT_DOUBLE_EQ(s.position.x, 30.0);
  EXPECT_EQ(s.direction, Direction::kForward);
  EXPECT_EQ(s.lane, 0u);
}

TEST(HighwayTest, WrapNoopOnRoad) {
  const Highway hw;
  VehicleState s;
  s.lane = 1;
  s.direction = Direction::kForward;
  s.position = {1000.0, hw.lane_center_y(1)};
  hw.wrap(s);
  EXPECT_DOUBLE_EQ(s.position.x, 1000.0);
  EXPECT_EQ(s.lane, 1u);
}

TEST(HighwayTest, RandomStateOnRoad) {
  const Highway hw;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const VehicleState s = hw.random_state(rng);
    EXPECT_GE(s.position.x, 0.0);
    EXPECT_LE(s.position.x, hw.length_m());
    EXPECT_LT(s.lane, hw.lane_count());
    EXPECT_EQ(s.direction, hw.lane_direction(s.lane));
  }
}

TEST(EpochMobilityTest, SpeedStatisticsMatchTableV) {
  // Speeds are N(25, 5) m/s clamped; over many epochs the sample mean
  // should sit near 25 m/s.
  const Highway hw;
  Rng rng(2);
  VehicleState init = hw.random_state(rng);
  EpochMobility mob({}, init, Rng(3));
  RunningStats speeds;
  for (int i = 0; i < 5000; ++i) {
    mob.advance(1.0, hw);
    speeds.add(mob.state().speed_mps);
  }
  EXPECT_NEAR(speeds.mean(), 25.0, 1.0);
  EXPECT_GT(speeds.stddev(), 2.0);
}

TEST(EpochMobilityTest, EpochRateMatches) {
  // λe = 0.2/s → ≈ 0.2 epochs per second.
  const Highway hw;
  Rng rng(4);
  EpochMobility mob({}, hw.random_state(rng), Rng(5));
  const std::size_t start_epochs = mob.epoch_count();
  mob.advance(1000.0, hw);
  const auto epochs = static_cast<double>(mob.epoch_count() - start_epochs);
  EXPECT_NEAR(epochs / 1000.0, 0.2, 0.05);
}

TEST(EpochMobilityTest, StaysOnRoad) {
  const Highway hw;
  Rng rng(6);
  EpochMobility mob({}, hw.random_state(rng), Rng(7));
  for (int i = 0; i < 1000; ++i) {
    mob.advance(0.5, hw);
    EXPECT_GE(mob.state().position.x, 0.0);
    EXPECT_LE(mob.state().position.x, hw.length_m());
    EXPECT_GE(mob.state().speed_mps, 1.0);
    EXPECT_LE(mob.state().speed_mps, 50.0);
  }
}

TEST(EpochMobilityTest, DistanceConsistentWithSpeed) {
  // Over a short interval without epoch change the displacement is v·dt.
  const Highway hw({.length_m = 1e9});  // effectively no wrap
  VehicleState init;
  init.lane = 0;
  init.direction = Direction::kForward;
  init.position = {0.0, 1.8};
  EpochMobilityParams params;
  params.epoch_rate_per_s = 1e-9;  // epochs effectively never end
  EpochMobility mob(params, init, Rng(8));
  const double v = mob.state().speed_mps;
  mob.advance(10.0, hw);
  EXPECT_NEAR(mob.state().position.x, 10.0 * v, 1e-6);
}

TEST(EpochMobilityTest, ZeroAdvanceIsNoop) {
  const Highway hw;
  Rng rng(9);
  EpochMobility mob({}, hw.random_state(rng), Rng(10));
  const double x = mob.state().position.x;
  mob.advance(0.0, hw);
  EXPECT_DOUBLE_EQ(mob.state().position.x, x);
}

TEST(WaypointRouteTest, InterpolatesAndClamps) {
  const WaypointRoute route({{0.0, {0.0, 0.0}}, {10.0, {100.0, 0.0}}});
  EXPECT_DOUBLE_EQ(route.position_at(5.0).x, 50.0);
  EXPECT_DOUBLE_EQ(route.position_at(-1.0).x, 0.0);
  EXPECT_DOUBLE_EQ(route.position_at(11.0).x, 100.0);
  EXPECT_NEAR(route.speed_at(5.0), 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(route.speed_at(20.0), 0.0);
}

TEST(WaypointRouteTest, BuilderChainsLegs) {
  WaypointRoute route = WaypointRoute::linear({0, 0}, {100, 0}, 0.0, 10.0);
  route.then_stop(5.0).then_move_to({200, 0}, 10.0);
  EXPECT_DOUBLE_EQ(route.end_time_s(), 25.0);
  EXPECT_DOUBLE_EQ(route.position_at(12.0).x, 100.0);  // stopped
  EXPECT_DOUBLE_EQ(route.speed_at(12.0), 0.0);
  EXPECT_DOUBLE_EQ(route.position_at(20.0).x, 150.0);
}

TEST(WaypointRouteTest, StationaryRoute) {
  const WaypointRoute route = WaypointRoute::stationary({5.0, 1.0}, 0.0, 60.0);
  EXPECT_DOUBLE_EQ(route.position_at(30.0).x, 5.0);
  EXPECT_DOUBLE_EQ(route.speed_at(30.0), 0.0);
}

TEST(WaypointRouteTest, NonIncreasingTimesThrow) {
  EXPECT_THROW(WaypointRoute({{1.0, {0, 0}}, {1.0, {1, 0}}}),
               PreconditionError);
  EXPECT_THROW(WaypointRoute({}), PreconditionError);
}

TEST(TraceTest, PositionInterpolation) {
  Trace trace;
  trace.add(0.0, {0.0, 0.0}, 10.0);
  trace.add(10.0, {100.0, 0.0}, 10.0);
  EXPECT_DOUBLE_EQ(trace.position_at(5.0).x, 50.0);
  EXPECT_DOUBLE_EQ(trace.position_at(-5.0).x, 0.0);
  EXPECT_DOUBLE_EQ(trace.position_at(50.0).x, 100.0);
}

TEST(TraceTest, StationaryWindowDetection) {
  Trace trace;
  for (int i = 0; i < 100; ++i) {
    const double t = i * 1.0;
    const double v = (i >= 40 && i < 70) ? 0.0 : 15.0;
    trace.add(t, {t * 15.0, 0.0}, v);
  }
  EXPECT_TRUE(trace.is_stationary(45.0, 65.0, 0.5));
  EXPECT_FALSE(trace.is_stationary(30.0, 50.0, 0.5));
  EXPECT_FALSE(trace.is_stationary(200.0, 300.0, 0.5));  // no samples
}

TEST(TraceTest, DistanceBetweenTraces) {
  Trace a, b;
  a.add(0.0, {0.0, 0.0}, 0.0);
  a.add(10.0, {100.0, 0.0}, 0.0);
  b.add(0.0, {0.0, 30.0}, 0.0);
  b.add(10.0, {100.0, 30.0}, 0.0);
  EXPECT_DOUBLE_EQ(distance_at(a, b, 5.0), 30.0);
}

TEST(TraceTest, TimeOrderEnforced) {
  Trace trace;
  trace.add(1.0, {0, 0}, 0.0);
  EXPECT_THROW(trace.add(0.5, {0, 0}, 0.0), PreconditionError);
}

}  // namespace
}  // namespace vp::mob
