// Hardened-reader contract for the binary codecs (DESIGN.md §10, §14):
// every bounds-checked ByteReader getter fails cleanly on exhausted
// input, and every persisted image — VPCK (engine), VPSC (service),
// VPFU (fusion), VPWB (wire frame) — rejects truncation at *every* byte
// boundary structurally: decode returns failure, never UB (the CI
// sanitizer jobs run these same truncations under ASan/UBSan).
//
// The checksum-trailer variants are the sharp edge: a plain prefix dies
// at the FNV gate, so those tests re-stamp a *correct* checksum over the
// truncated prefix, forcing the field readers themselves to prove they
// are bounds-checked past the integrity layer.
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/binio.h"
#include "core/detector.h"
#include "fusion/checkpoint.h"
#include "fusion/engine.h"
#include "service/checkpoint.h"
#include "service/service.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"
#include "wire/frame.h"

namespace vp {
namespace {

// ------------------------------------------------------------ ByteReader

TEST(ByteReader, GettersFailOnTruncationLeavingValuesUntouched) {
  std::vector<std::uint8_t> bytes;
  ByteWriter writer(bytes);
  writer.put_u8(0xAA);
  writer.put_u32(0x12345678);
  writer.put_u64(0x1122334455667788ULL);
  writer.put_i64(-42);
  writer.put_f64(-63.25);
  ASSERT_EQ(bytes.size(), 1u + 4 + 8 + 8 + 8);

  // The full image reads back exactly.
  {
    ByteReader reader(bytes);
    std::uint8_t u8 = 0;
    std::uint32_t u32 = 0;
    std::uint64_t u64 = 0;
    std::int64_t i64 = 0;
    double f64 = 0.0;
    EXPECT_TRUE(reader.get_u8(u8));
    EXPECT_TRUE(reader.get_u32(u32));
    EXPECT_TRUE(reader.get_u64(u64));
    EXPECT_TRUE(reader.get_i64(i64));
    EXPECT_TRUE(reader.get_f64(f64));
    EXPECT_EQ(u8, 0xAA);
    EXPECT_EQ(u32, 0x12345678u);
    EXPECT_EQ(u64, 0x1122334455667788ULL);
    EXPECT_EQ(i64, -42);
    EXPECT_EQ(f64, -63.25);  // bit-exact through the u64 pattern
    EXPECT_EQ(reader.remaining(), 0u);
  }

  // Any prefix: the getter crossing the cut fails and leaves its output
  // untouched; the reader's cursor stays where the failure happened.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteReader reader(std::span<const std::uint8_t>(bytes.data(), cut));
    std::uint8_t u8 = 0xEE;
    std::uint32_t u32 = 0xEEEEEEEEu;
    std::uint64_t u64 = 0xEEEEEEEEEEEEEEEEULL;
    std::int64_t i64 = -1;
    double f64 = 1e9;
    const bool ok8 = reader.get_u8(u8);
    const bool ok32 = reader.get_u32(u32);
    const bool ok64 = reader.get_u64(u64);
    const bool oki = reader.get_i64(i64);
    const bool okf = reader.get_f64(f64);
    EXPECT_EQ(ok8, cut >= 1);
    EXPECT_EQ(ok32, cut >= 5);
    EXPECT_EQ(ok64, cut >= 13);
    EXPECT_EQ(oki, cut >= 21);
    EXPECT_EQ(okf, cut >= 29);
    if (!ok8) EXPECT_EQ(u8, 0xEE);
    if (!ok32) EXPECT_EQ(u32, 0xEEEEEEEEu);
    if (!ok64) EXPECT_EQ(u64, 0xEEEEEEEEEEEEEEEEULL);
    if (!oki) EXPECT_EQ(i64, -1);
    if (!okf) EXPECT_EQ(f64, 1e9);
  }
}

TEST(ByteReader, SkipAndCursorAreBoundsChecked) {
  const std::vector<std::uint8_t> bytes(10, 0x7F);
  ByteReader reader(bytes);
  EXPECT_TRUE(reader.skip(4));
  EXPECT_EQ(reader.cursor(), 4u);
  EXPECT_EQ(reader.remaining(), 6u);
  EXPECT_FALSE(reader.skip(7));   // past the end: refused, cursor holds
  EXPECT_EQ(reader.cursor(), 4u);
  EXPECT_TRUE(reader.skip(6));
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_FALSE(reader.skip(1));
}

// ------------------------------------------------- checkpoint image rigs

stream::EngineCheckpoint engine_image_source(
    std::vector<std::uint8_t>* image) {
  stream::StreamEngineConfig config;
  config.min_samples = 1;
  config.detector = core::tuned_simulation_options(1);
  stream::StreamEngine engine(config);
  for (int i = 0; i < 40; ++i) {
    engine.ingest(1 + static_cast<IdentityId>(i % 3), 0.25 * i,
                  -60.0 - 0.1 * i);
  }
  engine.advance_to(10.0);
  const stream::EngineCheckpoint checkpoint = engine.checkpoint();
  *image = stream::encode_checkpoint(checkpoint);
  return checkpoint;
}

std::vector<std::uint8_t> service_image() {
  service::ServiceConfig config;
  config.shards = 2;
  config.engine.min_samples = 1;
  config.engine.detector = core::tuned_simulation_options(1);
  service::DetectionService service(config);
  for (int i = 0; i < 40; ++i) {
    service.ingest(1 + (i % 2), 1 + static_cast<IdentityId>(i % 3), 0.25 * i,
                   -60.0 - 0.1 * i);
  }
  service.advance_all_to(10.0);
  service.pump();
  return service::encode_checkpoint(service.checkpoint());
}

std::vector<std::uint8_t> fusion_image() {
  fusion::FusionConfig config;
  fusion::FusionEngine engine(config);
  service::SessionRound round;
  round.session = 3;
  round.round.round_id = 1;
  round.round.time_s = 5.0;
  round.round.identities_heard = 2;
  round.round.suspects = {2};
  engine.observe(round);
  engine.advance(20.0);
  return fusion::encode_checkpoint(engine.checkpoint());
}

// Every strict prefix of `image` must fail its decoder with an error
// message, never crash. `decode` adapts each codec's signature.
template <typename Decode>
void expect_all_truncations_fail(const std::vector<std::uint8_t>& image,
                                 const Decode& decode, const char* what) {
  ASSERT_FALSE(image.empty());
  ASSERT_TRUE(decode(image)) << what << ": the full image must decode";
  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    EXPECT_FALSE(decode(std::vector<std::uint8_t>(image.begin(),
                                                  image.begin() + cut)))
        << what << " accepted a truncation at byte " << cut << "/"
        << image.size();
  }
}

// The checksum-fixed variant: truncate, then append a *correct* FNV-1a
// trailer over the truncated prefix. The integrity gate passes by
// construction, so only structural bounds checks can reject — which
// they must, at every cut.
template <typename Decode>
void expect_checksum_fixed_truncations_fail(
    const std::vector<std::uint8_t>& image, const Decode& decode,
    const char* what) {
  ASSERT_GT(image.size(), 8u);
  const std::size_t body = image.size() - 8;  // trailer is the last field
  for (std::size_t cut = 0; cut < body; ++cut) {
    std::vector<std::uint8_t> forged(image.begin(), image.begin() + cut);
    ByteWriter writer(forged);
    writer.put_u64(fnv1a64(std::span<const std::uint8_t>(forged.data(), cut)));
    EXPECT_FALSE(decode(forged))
        << what << " accepted a checksum-fixed truncation at byte " << cut
        << "/" << body;
  }
}

TEST(CheckpointImages, EngineVpckRejectsEveryTruncation) {
  std::vector<std::uint8_t> image;
  engine_image_source(&image);
  const auto decode = [](const std::vector<std::uint8_t>& bytes) {
    stream::EngineCheckpoint out;
    std::string error;
    return stream::decode_checkpoint(bytes, &out, &error);
  };
  expect_all_truncations_fail(image, decode, "VPCK");
  expect_checksum_fixed_truncations_fail(image, decode, "VPCK");
}

TEST(CheckpointImages, ServiceVpscRejectsEveryTruncation) {
  const std::vector<std::uint8_t> image = service_image();
  const auto decode = [](const std::vector<std::uint8_t>& bytes) {
    service::ServiceCheckpoint out;
    std::string error;
    return service::decode_checkpoint(bytes, &out, &error);
  };
  expect_all_truncations_fail(image, decode, "VPSC");
  expect_checksum_fixed_truncations_fail(image, decode, "VPSC");
}

TEST(CheckpointImages, FusionVpfuRejectsEveryTruncation) {
  const std::vector<std::uint8_t> image = fusion_image();
  const auto decode = [](const std::vector<std::uint8_t>& bytes) {
    fusion::FusionCheckpoint out;
    std::string error;
    return fusion::decode_checkpoint(bytes, &out, &error);
  };
  expect_all_truncations_fail(image, decode, "VPFU");
  expect_checksum_fixed_truncations_fail(image, decode, "VPFU");
}

// ------------------------------------------------------------ VPWB frame

TEST(WireFrameImage, EveryTruncationNeedsMoreEveryFlipRejects) {
  wire::FrameEncoder encoder;
  std::vector<std::uint8_t> image;
  encoder.append_beacon(7, 3, 1.5, -65.0, image);
  ASSERT_EQ(image.size(), wire::kFrameBytes);

  // A truncated frame is indistinguishable from a partial arrival: the
  // decoder must hold it as kNeedMore (no field read past the cut) for
  // every prefix length.
  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    wire::FrameDecoder decoder;
    ASSERT_EQ(decoder.push(std::span<const std::uint8_t>(image.data(), cut)),
              cut);
    wire::Frame frame;
    EXPECT_EQ(decoder.next(frame), wire::DecodeStatus::kNeedMore)
        << "truncation at byte " << cut;
    EXPECT_EQ(decoder.buffered_bytes(), cut);
  }

  // A complete frame with any single byte flipped must be rejected —
  // consumed and counted, never decoded and never UB.
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::vector<std::uint8_t> flipped = image;
    flipped[i] ^= 0xA5;
    wire::FrameDecoder decoder;
    ASSERT_EQ(decoder.push(flipped), flipped.size());
    wire::Frame frame;
    EXPECT_EQ(decoder.next(frame), wire::DecodeStatus::kRejected)
        << "flip at byte " << i;
  }
}

}  // namespace
}  // namespace vp
