// DetectionService invariants (DESIGN.md §9):
//   * Parity — every session's confirmation rounds (suspects, pair list,
//     density) are bit-identical to a standalone stream::StreamEngine fed
//     the same per-observer stream, at every shard and thread count, and
//     round delivery order is deterministic regardless of worker
//     interleaving.
//   * Admission & backpressure — the session cap, the queued-round cap,
//     idle eviction and close() all shed deterministically, and the
//     conservation laws (beacons, rounds, sessions) hold after every
//     call.
//   * The voiceprint.service_bench/v1 builder and validator agree, and
//     the validator rejects documents that break the conservation laws.
#include "service/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/detector.h"
#include "service/report.h"
#include "sim/world.h"
#include "stream/engine.h"

namespace vp::service {
namespace {

struct FleetRx {
  double time_s;
  SessionId session;
  IdentityId id;
  double rssi_dbm;
};

// The fleet's receptions in arrival order, merged across observers by
// (time, session, id) — the interleaving a shared front-end would see.
std::vector<FleetRx> fleet_stream(const sim::World& world,
                                  const std::vector<NodeId>& observers,
                                  double horizon) {
  std::vector<FleetRx> beacons;
  for (NodeId observer : observers) {
    const sim::RssiLog& log = world.node(observer).log();
    for (IdentityId id : log.identities_heard(0.0, horizon, 1)) {
      for (const sim::BeaconRecord& r : log.records(id, 0.0, horizon)) {
        beacons.push_back({r.time_s, static_cast<SessionId>(observer), id,
                           r.rssi_dbm});
      }
    }
  }
  std::sort(beacons.begin(), beacons.end(),
            [](const FleetRx& a, const FleetRx& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              if (a.session != b.session) return a.session < b.session;
              return a.id < b.id;
            });
  return beacons;
}

void expect_rounds_identical(const stream::StreamRound& got,
                             const stream::StreamRound& want) {
  EXPECT_EQ(got.time_s, want.time_s);
  EXPECT_EQ(got.density_per_km, want.density_per_km);
  EXPECT_EQ(got.identities_heard, want.identities_heard);
  EXPECT_EQ(got.suspects, want.suspects);
  ASSERT_EQ(got.pairs.size(), want.pairs.size());
  for (std::size_t i = 0; i < want.pairs.size(); ++i) {
    EXPECT_EQ(got.pairs[i].a, want.pairs[i].a);
    EXPECT_EQ(got.pairs[i].b, want.pairs[i].b);
    EXPECT_EQ(got.pairs[i].comparable, want.pairs[i].comparable);
    EXPECT_EQ(got.pairs[i].raw, want.pairs[i].raw);  // bitwise, no NEAR
    EXPECT_EQ(got.pairs[i].normalized, want.pairs[i].normalized);
  }
}

stream::StreamEngineConfig sim_engine_config(
    const sim::ScenarioConfig& config) {
  stream::StreamEngineConfig engine_config;
  engine_config.observation_time_s = config.observation_time_s;
  engine_config.round_period_s = config.detection_period_s;
  engine_config.density_estimation_period_s =
      config.density_estimation_period_s;
  engine_config.max_transmission_range_m = config.max_transmission_range_m;
  engine_config.min_samples = 4;
  engine_config.detector = core::tuned_simulation_options(1);
  return engine_config;
}

// The tentpole invariant: multiplexing a fleet through the sharded
// service reproduces every standalone engine bit for bit, at every shard
// and thread count, with a delivery order independent of both.
TEST(DetectionService, FleetMatchesStandaloneEnginesAtEveryShardThreadCount) {
  sim::ScenarioConfig config;
  config.density_per_km = 12.0;
  config.sim_time_s = 40.0;
  config.seed = 9;
  sim::World world(config);
  world.run();

  const std::vector<NodeId> normals = world.normal_node_ids();
  ASSERT_GE(normals.size(), 3u);
  const std::vector<NodeId> observers(normals.begin(), normals.begin() + 3);
  const std::vector<FleetRx> fleet =
      fleet_stream(world, observers, config.sim_time_s + 1.0);
  const stream::StreamEngineConfig engine_config = sim_engine_config(config);
  const double end_time = world.detection_times().back();

  // Standalone reference rounds per observer.
  std::map<SessionId, std::vector<stream::StreamRound>> reference;
  for (NodeId observer : observers) {
    stream::StreamEngine engine(engine_config);
    engine.set_round_callback([&, observer](const stream::StreamRound& r) {
      reference[static_cast<SessionId>(observer)].push_back(r);
    });
    for (const FleetRx& rx : fleet) {
      if (rx.session != static_cast<SessionId>(observer)) continue;
      engine.ingest(rx.id, rx.time_s, rx.rssi_dbm);
    }
    engine.advance_to(end_time);
    ASSERT_FALSE(reference[static_cast<SessionId>(observer)].empty());
  }

  std::vector<std::vector<std::pair<SessionId, double>>> delivery_orders;
  for (std::size_t shards : {1u, 3u}) {
    for (std::size_t threads : {1u, 2u, 0u}) {
      ServiceConfig service_config;
      service_config.shards = shards;
      service_config.threads = threads;
      service_config.engine = engine_config;

      DetectionService service(service_config);
      std::map<SessionId, std::vector<stream::StreamRound>> streamed;
      std::vector<std::pair<SessionId, double>> order;
      service.set_round_callback([&](const SessionRound& round) {
        streamed[round.session].push_back(round.round);
        order.emplace_back(round.session, round.round.time_s);
      });
      for (const FleetRx& rx : fleet) {
        EXPECT_EQ(service.ingest(rx.session, rx.id, rx.time_s, rx.rssi_dbm),
                  DetectionService::Admission::kAccepted);
      }
      service.advance_all_to(end_time);
      EXPECT_EQ(service.queued_rounds(), 0u);

      for (const auto& [session, expected] : reference) {
        const std::vector<stream::StreamRound>& got = streamed[session];
        ASSERT_EQ(got.size(), expected.size())
            << "session " << session << " shards " << shards << " threads "
            << threads;
        for (std::size_t i = 0; i < expected.size(); ++i) {
          expect_rounds_identical(got[i], expected[i]);
        }
      }
      // Beacon conservation: the fleet stream is in-order and uncapped,
      // so everything offered must have been ingested.
      const DetectionService::Stats& stats = service.stats();
      EXPECT_EQ(stats.beacons_offered, fleet.size());
      EXPECT_EQ(stats.beacons_offered, stats.beacons_ingested);
      EXPECT_EQ(stats.rounds_prepared,
                stats.rounds_executed + stats.rounds_shed_queue_full +
                    stats.rounds_shed_closed);
      delivery_orders.push_back(std::move(order));
    }
  }
  // Same shard count ⇒ identical delivery order at every thread count
  // (threads only change which worker runs a shard, never the post-join
  // delivery sequence).
  ASSERT_EQ(delivery_orders.size(), 6u);
  EXPECT_EQ(delivery_orders[0], delivery_orders[1]);
  EXPECT_EQ(delivery_orders[0], delivery_orders[2]);
  EXPECT_EQ(delivery_orders[3], delivery_orders[4]);
  EXPECT_EQ(delivery_orders[3], delivery_orders[5]);
}

TEST(DetectionService, SessionCapShedsNewSessionsAndCounts) {
  ServiceConfig config;
  config.max_sessions = 2;
  config.pump_batch_rounds = 0;
  DetectionService service(config);

  EXPECT_EQ(service.ingest(1, 10, 1.0, -70.0),
            DetectionService::Admission::kAccepted);
  EXPECT_EQ(service.ingest(2, 10, 1.5, -72.0),
            DetectionService::Admission::kAccepted);
  // A third observer cannot grow the service.
  EXPECT_EQ(service.ingest(3, 10, 2.0, -74.0),
            DetectionService::Admission::kShedSessionCap);
  EXPECT_FALSE(service.open(3));
  EXPECT_TRUE(service.open(1));  // idempotent for a live session

  const DetectionService::Stats& stats = service.stats();
  EXPECT_EQ(service.sessions_active(), 2u);
  EXPECT_EQ(stats.sessions_opened, 2u);
  EXPECT_EQ(stats.sessions_rejected, 1u);
  EXPECT_EQ(stats.beacons_offered, 3u);
  EXPECT_EQ(stats.beacons_offered,
            stats.beacons_ingested + stats.beacons_shed_session_cap +
                stats.beacons_shed_rate_limited +
                stats.beacons_shed_identity_cap +
                stats.beacons_shed_out_of_order);
  EXPECT_EQ(stats.beacons_shed_session_cap, 1u);

  // Closing one frees a slot.
  EXPECT_TRUE(service.close(2));
  EXPECT_TRUE(service.open(3));
  EXPECT_EQ(service.sessions_active(), 2u);
  EXPECT_EQ(service.stats().sessions_closed, 1u);
}

TEST(DetectionService, QueueCapShedsRoundsDeterministically) {
  ServiceConfig config;
  config.shards = 2;
  config.max_queued_rounds = 1;
  config.pump_batch_rounds = 0;  // manual pump only
  config.engine.min_samples = 1;
  DetectionService service(config);

  std::vector<SessionId> delivered;
  service.set_round_callback([&](const SessionRound& round) {
    delivered.push_back(round.session);
  });

  service.ingest(1, 10, 1.0, -70.0);
  service.ingest(2, 10, 1.0, -72.0);
  // Both sessions' rounds at t = 20 fall due; the queue holds one.
  service.ingest(1, 10, 21.0, -70.0);
  service.ingest(2, 10, 21.0, -72.0);

  const DetectionService::Stats& stats = service.stats();
  EXPECT_EQ(stats.rounds_prepared, 2u);
  EXPECT_EQ(stats.rounds_shed_queue_full, 1u);
  EXPECT_EQ(service.queued_rounds(), 1u);
  EXPECT_EQ(service.pump(), 1u);
  EXPECT_EQ(service.queued_rounds(), 0u);
  EXPECT_EQ(stats.rounds_executed, 1u);
  EXPECT_EQ(stats.rounds_prepared,
            stats.rounds_executed + stats.rounds_shed_queue_full +
                stats.rounds_shed_closed);
  ASSERT_EQ(delivered.size(), 1u);
}

TEST(DetectionService, AutoPumpExecutesRoundsDuringIngest) {
  ServiceConfig config;
  config.pump_batch_rounds = 1;
  config.engine.min_samples = 1;
  DetectionService service(config);

  std::size_t delivered = 0;
  service.set_round_callback([&](const SessionRound&) { ++delivered; });

  service.ingest(1, 10, 1.0, -70.0);
  EXPECT_EQ(delivered, 0u);
  // Crossing the round boundary prepares the round; the auto-pump
  // threshold of one executes it before ingest returns.
  service.ingest(1, 10, 21.0, -70.0);
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(service.stats().rounds_executed, 1u);
  EXPECT_EQ(service.queued_rounds(), 0u);
}

TEST(DetectionService, EvictsIdleSessionsAtPumpBoundaries) {
  ServiceConfig config;
  config.session_idle_timeout_s = 30.0;
  config.engine.min_samples = 1;
  DetectionService service(config);

  service.ingest(1, 10, 1.0, -70.0);  // then silent
  for (double t = 1.0; t <= 45.0; t += 1.0) {
    service.ingest(2, 10, t, -72.0);
  }
  EXPECT_EQ(service.sessions_active(), 2u);
  service.advance_all_to(45.0);  // pump boundary: 1 idle for 44 s
  EXPECT_EQ(service.sessions_active(), 1u);
  EXPECT_EQ(service.session_engine(1), nullptr);
  EXPECT_NE(service.session_engine(2), nullptr);

  const DetectionService::Stats& stats = service.stats();
  EXPECT_EQ(stats.sessions_evicted_idle, 1u);
  EXPECT_EQ(stats.sessions_opened,
            service.sessions_active() + stats.sessions_closed +
                stats.sessions_evicted_idle);
  // A fresh beacon re-opens the evicted observer as a new session.
  EXPECT_EQ(service.ingest(1, 10, 46.0, -70.0),
            DetectionService::Admission::kAccepted);
  EXPECT_EQ(service.stats().sessions_opened, 3u);
}

TEST(DetectionService, CloseDropsQueuedRoundsAndCountsThem) {
  ServiceConfig config;
  config.pump_batch_rounds = 0;
  config.engine.min_samples = 1;
  DetectionService service(config);

  std::size_t delivered = 0;
  service.set_round_callback([&](const SessionRound&) { ++delivered; });

  service.ingest(7, 10, 1.0, -70.0);
  service.ingest(7, 10, 21.0, -70.0);  // queues the round at t = 20
  EXPECT_EQ(service.queued_rounds(), 1u);
  EXPECT_TRUE(service.close(7));
  EXPECT_FALSE(service.close(7));  // already gone
  EXPECT_EQ(service.queued_rounds(), 0u);
  EXPECT_EQ(service.pump(), 0u);
  EXPECT_EQ(delivered, 0u);

  const DetectionService::Stats& stats = service.stats();
  EXPECT_EQ(stats.rounds_shed_closed, 1u);
  EXPECT_EQ(stats.rounds_prepared,
            stats.rounds_executed + stats.rounds_shed_queue_full +
                stats.rounds_shed_closed);
}

TEST(DetectionService, ForwardsEngineAdmissionVerdicts) {
  ServiceConfig config;
  config.pump_batch_rounds = 0;
  config.engine.max_identities = 1;
  config.engine.max_ingest_rate_hz = 2.0;
  DetectionService service(config);

  EXPECT_EQ(service.ingest(1, 10, 0.5, -70.0),
            DetectionService::Admission::kAccepted);
  EXPECT_EQ(service.ingest(1, 11, 0.6, -72.0),
            DetectionService::Admission::kShedIdentityCap);
  EXPECT_EQ(service.ingest(1, 10, 0.7, -70.0),
            DetectionService::Admission::kAccepted);
  EXPECT_EQ(service.ingest(1, 10, 0.8, -70.0),
            DetectionService::Admission::kShedRateLimited);
  // A fresh second refills the rate bucket; a timestamp regression for a
  // known identity is shed as out-of-order.
  EXPECT_EQ(service.ingest(1, 10, 1.5, -70.0),
            DetectionService::Admission::kAccepted);
  EXPECT_EQ(service.ingest(1, 10, 1.2, -70.0),
            DetectionService::Admission::kShedOutOfOrder);

  const DetectionService::Stats& stats = service.stats();
  EXPECT_EQ(stats.beacons_offered, 6u);
  EXPECT_EQ(stats.beacons_ingested, 3u);
  EXPECT_EQ(stats.beacons_shed_identity_cap, 1u);
  EXPECT_EQ(stats.beacons_shed_rate_limited, 1u);
  EXPECT_EQ(stats.beacons_shed_out_of_order, 1u);
  EXPECT_EQ(stats.beacons_offered,
            stats.beacons_ingested + stats.beacons_shed_session_cap +
                stats.beacons_shed_rate_limited +
                stats.beacons_shed_identity_cap +
                stats.beacons_shed_out_of_order);
}

ServiceBenchConfigResult consistent_result() {
  ServiceBenchConfigResult r;
  r.label = "s8_rate10";
  r.sessions = 8;
  r.identities_per_session = 16;
  r.beacon_rate_hz = 10.0;
  r.duration_s = 60.0;
  r.shards = 4;
  r.threads = 2;
  r.offered = 1000;
  r.ingested = 900;
  r.shed = 100;
  r.rounds_prepared = 24;
  r.rounds_executed = 20;
  r.rounds_shed = 4;
  r.ingest_beacons_per_s = 5e6;
  return r;
}

TEST(ServiceBenchReport, BuildsAndValidates) {
  const obs::json::Value report =
      build_service_bench_report("service_throughput", {consistent_result()});
  std::string error;
  EXPECT_TRUE(validate_service_bench(report, &error)) << error;
}

TEST(ServiceBenchReport, RejectsBrokenConservationLaws) {
  ServiceBenchConfigResult beacons = consistent_result();
  beacons.ingested += 1;  // offered != ingested + shed
  std::string error;
  EXPECT_FALSE(validate_service_bench(
      build_service_bench_report("b", {beacons}), &error));
  EXPECT_NE(error.find("offered"), std::string::npos);

  ServiceBenchConfigResult rounds = consistent_result();
  rounds.rounds_executed += 1;  // prepared != executed + shed
  EXPECT_FALSE(validate_service_bench(
      build_service_bench_report("b", {rounds}), &error));
  EXPECT_NE(error.find("rounds_prepared"), std::string::npos);
}

TEST(ServiceBenchReport, RejectsWrongSchemaAndEmptyConfigs) {
  std::string error;
  obs::json::Object wrong;
  wrong.emplace("schema", obs::json::Value("voiceprint.run_report/v1"));
  EXPECT_FALSE(
      validate_service_bench(obs::json::Value(std::move(wrong)), &error));

  const obs::json::Value empty = build_service_bench_report("b", {});
  EXPECT_FALSE(validate_service_bench(empty, &error));
  EXPECT_NE(error.find("configs"), std::string::npos);
}

}  // namespace
}  // namespace vp::service
