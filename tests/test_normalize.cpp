#include "timeseries/normalize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"

namespace vp::ts {
namespace {

TEST(ZScoreEnhanced, RemovesOffsetExactly) {
  // Eq. 7's purpose (Assumption 3): a constant TX-power offset between two
  // Sybil series must vanish entirely.
  Rng rng(1);
  std::vector<double> base(100);
  for (double& v : base) v = rng.normal(-75.0, 4.0);
  std::vector<double> shifted = base;
  for (double& v : shifted) v += 6.0;  // +6 dB spoofed power

  const auto a = z_score_enhanced(base);
  const auto b = z_score_enhanced(shifted);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-9);
  }
}

TEST(ZScoreEnhanced, RemovesPositiveScaling) {
  std::vector<double> base = {-80, -75, -70, -78, -72};
  std::vector<double> scaled = base;
  for (double& v : scaled) v = v * 2.0 + 10.0;
  const auto a = z_score_enhanced(base);
  const auto b = z_score_enhanced(scaled);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST(ZScoreEnhanced, ThreeSigmaRange) {
  // 99.7% of normal samples fall within (−1, 1) after dividing by 3σ.
  Rng rng(2);
  std::vector<double> xs(10000);
  for (double& v : xs) v = rng.normal(-70.0, 5.0);
  const auto z = z_score_enhanced(xs);
  std::size_t inside = 0;
  for (double v : z) {
    if (v > -1.0 && v < 1.0) ++inside;
  }
  EXPECT_GT(static_cast<double>(inside) / 10000.0, 0.99);
}

TEST(ZScoreEnhanced, ConstantSeriesMapsToZeros) {
  const std::vector<double> xs(50, -95.0);  // sensitivity-floor series
  const auto z = z_score_enhanced(xs);
  for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ZScoreEnhanced, EmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(z_score_enhanced(empty), PreconditionError);
}

TEST(ZScore, UnitVariance) {
  Rng rng(3);
  std::vector<double> xs(5000);
  for (double& v : xs) v = rng.normal(10.0, 4.0);
  const auto z = z_score(xs);
  RunningStats stats;
  for (double v : z) stats.add(v);
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(ZScoreEnhanced, ThirdOfClassicZScore) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const auto z1 = z_score(xs);
  const auto z3 = z_score_enhanced(xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(z3[i] * 3.0, z1[i], 1e-12);
  }
}

TEST(MinMax, MapsToUnitInterval) {
  std::vector<double> xs = {5.0, 1.0, 3.0};
  min_max_normalize(xs);
  EXPECT_DOUBLE_EQ(xs[0], 1.0);
  EXPECT_DOUBLE_EQ(xs[1], 0.0);
  EXPECT_DOUBLE_EQ(xs[2], 0.5);
}

TEST(MinMax, PreservesOrdering) {
  Rng rng(4);
  std::vector<double> xs(100);
  for (double& v : xs) v = rng.uniform(0.0, 50.0);
  std::vector<double> normalized = min_max_normalized(xs);
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    for (std::size_t j = i + 1; j < xs.size(); ++j) {
      EXPECT_EQ(xs[i] < xs[j], normalized[i] < normalized[j]);
    }
  }
}

TEST(MinMax, ConstantInputBecomesZeros) {
  std::vector<double> xs(10, 7.0);
  min_max_normalize(xs);
  for (double v : xs) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MinMax, EmptyIsNoop) {
  std::vector<double> xs;
  min_max_normalize(xs);  // must not crash
  EXPECT_TRUE(min_max_normalized(xs).empty());
}

// Numeric edge regressions (DESIGN.md §10): degenerate windows must take
// the documented all-zeros branch, never produce NaN. A constant RSSI
// series (σ = 0) is exactly what a quantised or clipped radio reports.
TEST(ZScoreEnhanced, ConstantSeriesIsAllZerosNotNaN) {
  const std::vector<double> xs(50, -70.0);
  const auto z = z_score_enhanced(xs);
  ASSERT_EQ(z.size(), xs.size());
  for (double v : z) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(ZScoreEnhanced, SingleSampleIsZero) {
  const std::vector<double> xs = {-63.5};
  const auto z = z_score_enhanced(xs);
  ASSERT_EQ(z.size(), 1u);
  EXPECT_DOUBLE_EQ(z[0], 0.0);
}

// Near-constant input: RunningStats' Welford m2 can drift a few ulps
// negative, and sqrt of that would be NaN without the clamp.
TEST(ZScoreEnhanced, NearConstantSeriesStaysFinite) {
  std::vector<double> xs(200, -70.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] += (i % 2 == 0 ? 1.0 : -1.0) * 1e-13;
  }
  for (double v : z_score_enhanced(xs)) EXPECT_TRUE(std::isfinite(v));
}

TEST(MinMax, SingleElementBecomesZeroNotNaN) {
  std::vector<double> xs = {42.0};  // hi == lo: the degenerate branch
  min_max_normalize(xs);
  EXPECT_TRUE(std::isfinite(xs[0]));
  EXPECT_DOUBLE_EQ(xs[0], 0.0);
}

TEST(MinMax, AllEqualNegativeValuesBecomeZerosNotNaN) {
  std::vector<double> xs(8, -3.25);
  min_max_normalize(xs);
  for (double v : xs) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(MinMax, Idempotent) {
  std::vector<double> xs = {0.2, 0.8, 0.0, 1.0};
  const auto once = min_max_normalized(xs);
  const auto twice = min_max_normalized(once);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(once[i], twice[i], 1e-12);
  }
}

}  // namespace
}  // namespace vp::ts
