#include "common/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace vp {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesToEventTime) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(2.5, [&] { seen = q.now(); });
  q.run_all();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndSetsNow) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(10.0, [&] { ++fired; });
  q.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) q.schedule_in(1.0, tick);
  };
  q.schedule(0.0, tick);
  q.run_until(100.0);
  EXPECT_EQ(count, 5);
}

TEST(EventQueue, SelfReschedulingStopsAtHorizon) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    q.schedule_in(1.0, tick);  // unbounded; run_until must bound it
  };
  q.schedule(0.5, tick);
  q.run_until(10.0);
  EXPECT_EQ(count, 10);  // 0.5, 1.5, ..., 9.5
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.run_until(5.0);
  EXPECT_THROW(q.schedule(4.0, [] {}), PreconditionError);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), PreconditionError);
}

TEST(EventQueue, ExecutedCounter) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule(static_cast<double>(i), [] {});
  q.run_all();
  EXPECT_EQ(q.executed(), 7u);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace vp
