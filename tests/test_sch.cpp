// Tests for the Service Channel extension (Section VII future work #1):
// a second contention domain carrying extra RSSI samples.
#include <gtest/gtest.h>

#include "core/detector.h"
#include "sim/runner.h"
#include "sim/world.h"

namespace vp::sim {
namespace {

ScenarioConfig sch_config(double sch_rate, std::uint64_t seed = 51) {
  ScenarioConfig config;
  config.density_per_km = 10.0;
  config.sim_time_s = 25.0;
  config.sch_beacon_rate_hz = sch_rate;
  config.seed = seed;
  return config;
}

TEST(Sch, DisabledByDefault) {
  ScenarioConfig config;
  EXPECT_DOUBLE_EQ(config.sch_beacon_rate_hz, 0.0);
}

TEST(Sch, IncreasesPerIdentitySampleCounts) {
  World without(sch_config(0.0));
  World with(sch_config(30.0));
  without.run();
  with.run();

  auto median_samples = [](const World& world) {
    std::vector<double> counts;
    for (NodeId obs : world.normal_node_ids()) {
      const auto window = world.observe(obs, 20.0, 4);
      for (const auto& n : window.neighbors) {
        counts.push_back(static_cast<double>(n.rssi.size()));
      }
    }
    std::sort(counts.begin(), counts.end());
    return counts.empty() ? 0.0 : counts[counts.size() / 2];
  };
  // 10 Hz CCH + 30 Hz SCH ≈ 4x the samples (minus collisions).
  EXPECT_GT(median_samples(with), 2.0 * median_samples(without));
}

TEST(Sch, CchLoadUnaffected) {
  // The SCH must not contend with the CCH: the CCH-only collision count
  // (run with SCH disabled) is a lower bound for total collisions when
  // SCH is on, but the CCH beacons themselves still get through — the
  // per-identity CCH-paced reception at a close observer stays healthy.
  World with(sch_config(30.0, 53));
  with.run();
  // Total receptions balloon with the added channel, and the run completes
  // without half-duplex interlock between the two radios.
  EXPECT_GT(with.stats().frames_received, 100000u);
}

TEST(Sch, SeriesTimesInterleaveBothChannels) {
  World world(sch_config(30.0, 55));
  world.run();
  // At least one observed identity shows sub-100ms median inter-sample
  // gaps (impossible with the 10 Hz CCH alone).
  bool found = false;
  for (NodeId obs : world.normal_node_ids()) {
    const auto window = world.observe(obs, 20.0, 40);
    for (const auto& n : window.neighbors) {
      std::vector<double> gaps;
      for (std::size_t i = 1; i < n.rssi.size(); ++i) {
        gaps.push_back(n.rssi.time(i) - n.rssi.time(i - 1));
      }
      if (gaps.size() < 10) continue;
      std::sort(gaps.begin(), gaps.end());
      if (gaps[gaps.size() / 2] < 0.09) {
        found = true;
        break;
      }
    }
    if (found) break;
  }
  EXPECT_TRUE(found);
}

TEST(Sch, DetectionStillWorksWithSch) {
  World world(sch_config(30.0, 57));
  world.run();
  core::VoiceprintDetector detector(core::tuned_simulation_options());
  const EvaluationResult result =
      sim::evaluate(world, detector, {.max_observers = 8});
  EXPECT_GT(result.average_dr, 0.6);
  EXPECT_LT(result.average_fpr, 0.15);
}

TEST(Sch, DeterministicWithSeed) {
  World a(sch_config(20.0, 59));
  World b(sch_config(20.0, 59));
  a.run();
  b.run();
  EXPECT_EQ(a.stats().frames_received, b.stats().frames_received);
}

}  // namespace
}  // namespace vp::sim
