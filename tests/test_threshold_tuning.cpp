// Unit tests for the identity-level boundary tuner (core/threshold.h):
// Algorithm 1 unions flagged pairs into identities, so the tuner must
// optimise identity-level DR under an identity-level FPR budget.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/threshold.h"

namespace vp::core {
namespace {

// One window: identities 1 (attacker), 101/102 (Sybils), 2/3 (normal).
// Sybil-cluster pairs sit at small distances; everything else far away,
// except an optional "platoon" pair (2,3) at a configurable distance.
LabeledWindow make_window(double platoon_distance, double density = 40.0) {
  LabeledWindow w;
  w.density = density;
  w.identities = {{1, true}, {101, true}, {102, true}, {2, false},
                  {3, false}};
  auto pair = [](IdentityId a, IdentityId b, double d, bool sybil) {
    return LabeledWindow::Pair{
        .a = a, .b = b, .distance = d, .comparable = true, .sybil_pair = sybil};
  };
  w.pairs = {
      pair(1, 101, 0.010, true),  pair(1, 102, 0.015, true),
      pair(101, 102, 0.012, true), pair(1, 2, 0.500, false),
      pair(1, 3, 0.450, false),   pair(101, 2, 0.550, false),
      pair(101, 3, 0.600, false), pair(102, 2, 0.700, false),
      pair(102, 3, 0.650, false), pair(2, 3, platoon_distance, false),
  };
  return w;
}

TEST(EvaluateBoundary, PerfectBoundaryPerfectRates) {
  const std::vector<LabeledWindow> windows = {make_window(0.4)};
  const TunedBoundary result =
      evaluate_boundary({.k = 0.0, .b = 0.02}, windows);
  EXPECT_DOUBLE_EQ(result.train_dr, 1.0);
  EXPECT_DOUBLE_EQ(result.train_fpr, 0.0);
}

TEST(EvaluateBoundary, LooseBoundaryFlagsPlatoon) {
  // Threshold above the platoon pair's distance: both normal identities
  // get one vote each; with votes=1 they are false positives.
  const std::vector<LabeledWindow> windows = {make_window(0.05)};
  const TunedBoundary v1 =
      evaluate_boundary({.k = 0.0, .b = 0.06}, windows, 1);
  EXPECT_DOUBLE_EQ(v1.train_dr, 1.0);
  EXPECT_DOUBLE_EQ(v1.train_fpr, 1.0);  // both normals flagged

  // With votes=2 the single platoon pair cannot condemn anyone, while the
  // Sybil clique members still collect two votes each.
  const TunedBoundary v2 =
      evaluate_boundary({.k = 0.0, .b = 0.06}, windows, 2);
  EXPECT_DOUBLE_EQ(v2.train_dr, 1.0);
  EXPECT_DOUBLE_EQ(v2.train_fpr, 0.0);
}

TEST(EvaluateBoundary, TightBoundaryMissesEverything) {
  const std::vector<LabeledWindow> windows = {make_window(0.4)};
  const TunedBoundary result =
      evaluate_boundary({.k = 0.0, .b = 0.001}, windows);
  EXPECT_DOUBLE_EQ(result.train_dr, 0.0);
  EXPECT_DOUBLE_EQ(result.train_fpr, 0.0);
}

TEST(EvaluateBoundary, IncomparablePairsCarryNoVotes) {
  LabeledWindow w = make_window(0.4);
  for (auto& p : w.pairs) p.comparable = false;
  const TunedBoundary result =
      evaluate_boundary({.k = 0.0, .b = 1.0}, {&w, 1});
  EXPECT_DOUBLE_EQ(result.train_dr, 0.0);
  EXPECT_DOUBLE_EQ(result.train_fpr, 0.0);
}

TEST(EvaluateBoundary, DensityDependentThreshold) {
  // Boundary k·den+b: at density 40 with k=0.001, b=0 → threshold 0.04,
  // which catches the Sybil cluster (distances ≤ 0.015) only because of
  // the density term.
  const std::vector<LabeledWindow> windows = {make_window(0.4)};
  const TunedBoundary with_slope =
      evaluate_boundary({.k = 0.001, .b = 0.0}, windows);
  EXPECT_DOUBLE_EQ(with_slope.train_dr, 1.0);
  const TunedBoundary without =
      evaluate_boundary({.k = 0.0, .b = 0.0}, windows);
  EXPECT_DOUBLE_EQ(without.train_dr, 0.0);
}

TEST(TuneBoundary, FindsFeasibleOptimum) {
  // Two windows, one with a confusable platoon pair at 0.05. The tuner
  // should pick votes=2 (or a threshold below 0.05) and reach DR 1 with
  // FPR 0.
  std::vector<LabeledWindow> windows = {make_window(0.05), make_window(0.4)};
  const TunedBoundary tuned = tune_boundary(windows, {.fpr_budget = 0.01});
  EXPECT_DOUBLE_EQ(tuned.train_dr, 1.0);
  EXPECT_LE(tuned.train_fpr, 0.01);
}

TEST(TuneBoundary, FallsBackToLowestFprWhenInfeasible) {
  // Budget 0 with an unavoidable false positive: pick the lowest-FPR line.
  LabeledWindow w = make_window(0.001);  // platoon below every Sybil pair
  BoundaryTuning tuning;
  tuning.fpr_budget = -1.0;  // nothing is feasible
  const TunedBoundary tuned = tune_boundary({&w, 1}, tuning);
  EXPECT_LE(tuned.train_fpr, 1.0);  // returns something sane
}

TEST(TuneBoundary, InvalidConfigThrows) {
  std::vector<LabeledWindow> windows = {make_window(0.4)};
  BoundaryTuning bad;
  bad.b_steps = 1;
  EXPECT_THROW(tune_boundary(windows, bad), PreconditionError);
  bad = BoundaryTuning{};
  bad.k_grid.clear();
  EXPECT_THROW(tune_boundary(windows, bad), PreconditionError);
  EXPECT_THROW(tune_boundary(std::vector<LabeledWindow>{}, BoundaryTuning{}),
               PreconditionError);
}

TEST(TuneBoundary, TwoIdentityWindowsUseSinglePairRule) {
  // With only two identities heard, clique evidence cannot exist; the
  // vote requirement must fall back to 1.
  LabeledWindow w;
  w.density = 10.0;
  w.identities = {{1, true}, {101, true}};
  w.pairs = {{.a = 1, .b = 101, .distance = 0.01, .comparable = true,
              .sybil_pair = true}};
  const TunedBoundary result =
      evaluate_boundary({.k = 0.0, .b = 0.02}, {&w, 1}, /*votes=*/2);
  EXPECT_DOUBLE_EQ(result.train_dr, 1.0);
}

}  // namespace
}  // namespace vp::core
