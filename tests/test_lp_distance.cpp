#include "timeseries/lp_distance.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"

namespace vp::ts {
namespace {

TEST(LpDistance, EuclideanKnownValue) {
  const std::vector<double> x = {0.0, 0.0};
  const std::vector<double> y = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(euclidean_distance(x, y), 5.0);
  EXPECT_DOUBLE_EQ(squared_euclidean_distance(x, y), 25.0);
}

TEST(LpDistance, ManhattanKnownValue) {
  const std::vector<double> x = {1.0, -2.0, 3.0};
  const std::vector<double> y = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(manhattan_distance(x, y), 6.0);
}

TEST(LpDistance, GeneralPMatchesSpecialCases) {
  const std::vector<double> x = {1.0, 5.0, -2.0, 0.5};
  const std::vector<double> y = {0.0, 4.5, 1.0, 0.5};
  EXPECT_NEAR(lp_distance(x, y, 2), euclidean_distance(x, y), 1e-12);
  EXPECT_NEAR(lp_distance(x, y, 1), manhattan_distance(x, y), 1e-12);
}

TEST(LpDistance, IdentityIsZero) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(euclidean_distance(x, x), 0.0);
  EXPECT_DOUBLE_EQ(lp_distance(x, x, 3), 0.0);
}

TEST(LpDistance, Symmetry) {
  const std::vector<double> x = {1.0, 0.0, 2.5};
  const std::vector<double> y = {-1.0, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(euclidean_distance(x, y), euclidean_distance(y, x));
  EXPECT_DOUBLE_EQ(manhattan_distance(x, y), manhattan_distance(y, x));
}

TEST(LpDistance, TriangleInequality) {
  const std::vector<double> a = {0.0, 0.0, 0.0};
  const std::vector<double> b = {1.0, 2.0, -1.0};
  const std::vector<double> c = {3.0, -1.0, 0.5};
  EXPECT_LE(euclidean_distance(a, c),
            euclidean_distance(a, b) + euclidean_distance(b, c) + 1e-12);
}

TEST(LpDistance, HigherPWeightsLargestDeviation) {
  // As p grows, Lp approaches the max-abs deviation.
  const std::vector<double> x = {0.0, 0.0};
  const std::vector<double> y = {1.0, 10.0};
  EXPECT_GT(lp_distance(x, y, 1), lp_distance(x, y, 4));
  EXPECT_NEAR(lp_distance(x, y, 8), 10.0, 0.1);
}

TEST(LpDistance, LengthMismatchThrows) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0};
  EXPECT_THROW(euclidean_distance(x, y), PreconditionError);
  EXPECT_THROW(lp_distance(x, y, 2), PreconditionError);
}

TEST(LpDistance, InvalidPThrows) {
  const std::vector<double> x = {1.0};
  EXPECT_THROW(lp_distance(x, x, 0), PreconditionError);
}

}  // namespace
}  // namespace vp::ts
