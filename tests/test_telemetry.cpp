// Tests for the continuous telemetry pipeline (src/obs/telemetry):
//   * Determinism — the deterministic projection of every frame is
//     bit-identical across comparison thread counts {0, 1, 4} and across
//     an in-process kill/restore, for the same trace and cadence.
//   * Validation — TelemetryValidator enforces schema, gapless sequence,
//     stream-clock and counter monotonicity, and the conservation laws;
//     crafted bad frames are rejected with a reason.
//   * Health — HealthMonitor's default invariants stay silent on a clean
//     run and flag an injected conservation violation.
//   * Cost — attaching an exporter at the default cadence changes no
//     detection result and stays within a small wall-clock budget.
#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/detector.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/runtime.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"

namespace vp {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

struct Rx {
  double time_s;
  IdentityId id;
  double rssi_dbm;
};

// Synthetic beacon stream: per-identity AR(1) shadowing walks at
// jittered 1/rate instants, merged into arrival order (the same shape
// the throughput benches use).
std::vector<Rx> synthesize_stream(std::size_t identities, double rate_hz,
                                  double duration_s) {
  std::vector<Rx> beacons;
  for (std::size_t i = 0; i < identities; ++i) {
    const auto id = static_cast<IdentityId>(i + 1);
    Rng rng(mix64(0x7e1e, id));
    const double period = 1.0 / rate_hz;
    double shadow = 0.0;
    const double level = -60.0 - rng.uniform(0.0, 25.0);
    for (double t = rng.uniform(0.0, period); t < duration_s; t += period) {
      shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
      beacons.push_back({t + rng.uniform(0.0, 0.2 * period), id,
                         level + shadow + rng.normal(0.0, 0.5)});
    }
  }
  std::sort(beacons.begin(), beacons.end(), [](const Rx& a, const Rx& b) {
    return a.time_s != b.time_s ? a.time_s < b.time_s : a.id < b.id;
  });
  return beacons;
}

stream::StreamEngineConfig make_engine_config(std::size_t threads) {
  stream::StreamEngineConfig config;
  config.detector = core::tuned_simulation_options(threads);
  return config;
}

struct TelemetryRun {
  std::vector<std::string> frames;  // deterministic_form, compact dumps
  std::vector<std::uint64_t> round_ids;
  std::vector<stream::StreamRound> rounds;
  std::uint64_t alerts = 0;
};

// Replays `trace` through a StreamEngine with a frame-per-round exporter
// attached; optionally kills the engine at beacon `kill_at` and restores
// it from an encode/decode checkpoint roundtrip mid-stream. Every run
// starts from a zeroed registry so frame deltas depend only on the
// trace. The emitted file is validated before its frames are returned.
TelemetryRun run_stream_with_telemetry(const std::vector<Rx>& trace,
                                       std::size_t threads,
                                       const std::string& path,
                                       std::size_t kill_at = 0) {
  obs::registry().reset();
  obs::TelemetryConfig telemetry_config;
  telemetry_config.path = path;
  telemetry_config.every_rounds = 1;
  obs::TelemetryExporter telemetry(telemetry_config);
  obs::HealthMonitor monitor = obs::HealthMonitor::with_default_invariants();
  telemetry.set_monitor(&monitor);

  TelemetryRun run;
  const stream::StreamEngineConfig config = make_engine_config(threads);
  auto engine = std::make_unique<stream::StreamEngine>(config);
  const auto hook = [&](stream::StreamEngine& e) {
    e.set_round_callback([&](const stream::StreamRound& round) {
      telemetry.on_round(round.time_s);
      run.round_ids.push_back(round.round_id);
      run.rounds.push_back(round);
    });
  };
  hook(*engine);

  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (kill_at != 0 && i == kill_at) {
      const std::vector<std::uint8_t> blob =
          stream::encode_checkpoint(engine->checkpoint());
      engine.reset();
      stream::EngineCheckpoint checkpoint;
      std::string error;
      EXPECT_TRUE(stream::decode_checkpoint(blob, &checkpoint, &error))
          << error;
      engine = std::make_unique<stream::StreamEngine>(config, checkpoint);
      hook(*engine);
    }
    engine->ingest(trace[i].id, trace[i].time_s, trace[i].rssi_dbm);
    telemetry.sample(trace[i].time_s);
  }
  const double end = trace.back().time_s + 1.0;
  engine->advance_to(end);
  telemetry.finish(end);
  run.alerts = monitor.alerts_total();

  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  obs::TelemetryValidator validator;
  std::string line;
  std::string error;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const obs::json::Value frame = obs::json::parse(line);
    EXPECT_TRUE(validator.check_frame(frame, &error)) << error;
    run.frames.push_back(obs::deterministic_form(frame).dump(0));
  }
  EXPECT_TRUE(validator.finish(&error)) << error;
  return run;
}

std::string frame_json(std::uint64_t seq, double time_s,
                       const std::string& counters,
                       const std::string& schema = "voiceprint.telemetry/v1") {
  return "{\"schema\":\"" + schema + "\",\"seq\":" + std::to_string(seq) +
         ",\"stream_time_s\":" + std::to_string(time_s) +
         ",\"rounds_observed\":0,\"counters\":{" + counters +
         "},\"gauges\":{},\"histograms\":{},\"timing\":{},\"alerts\":[]}";
}

TEST(TelemetryFrames, DeterministicAcrossThreadCounts) {
  const std::vector<Rx> trace = synthesize_stream(8, 10.0, 65.0);
  const TelemetryRun reference =
      run_stream_with_telemetry(trace, 0, temp_path("tele_t0.jsonl"));
  ASSERT_GE(reference.frames.size(), 3u);  // rounds every 20 s, plus final
  EXPECT_EQ(reference.alerts, 0u);

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const TelemetryRun run = run_stream_with_telemetry(
        trace, threads, temp_path("tele_t" + std::to_string(threads) +
                                  ".jsonl"));
    ASSERT_EQ(run.frames.size(), reference.frames.size());
    for (std::size_t i = 0; i < run.frames.size(); ++i) {
      EXPECT_EQ(run.frames[i], reference.frames[i])
          << "frame " << i << " diverged at threads=" << threads;
    }
    EXPECT_EQ(run.alerts, 0u);
  }
}

TEST(TelemetryFrames, ContinuousAcrossKillRestore) {
  const std::vector<Rx> trace = synthesize_stream(8, 10.0, 65.0);
  const TelemetryRun uninterrupted =
      run_stream_with_telemetry(trace, 0, temp_path("tele_full.jsonl"));
  const TelemetryRun restored = run_stream_with_telemetry(
      trace, 0, temp_path("tele_killed.jsonl"), trace.size() / 2);

  // Same frames, gaplessly sequenced (the validator inside the helper
  // already enforced seq 0..N-1), and zero health alerts: the restore is
  // invisible to a telemetry consumer.
  ASSERT_EQ(restored.frames.size(), uninterrupted.frames.size());
  for (std::size_t i = 0; i < restored.frames.size(); ++i) {
    EXPECT_EQ(restored.frames[i], uninterrupted.frames[i]) << "frame " << i;
  }
  EXPECT_EQ(restored.alerts, 0u);

  // The causal round ids continue across the restore: same gapless
  // sequence the uninterrupted engine assigned.
  ASSERT_FALSE(uninterrupted.round_ids.empty());
  ASSERT_EQ(restored.round_ids, uninterrupted.round_ids);
  for (std::size_t i = 0; i < restored.round_ids.size(); ++i) {
    EXPECT_EQ(restored.round_ids[i], i);
  }
}

TEST(TelemetryExporter, RoundCadenceAndStreamClockTicks) {
  obs::registry().reset();
  const std::string path = temp_path("tele_cadence.jsonl");
  obs::TelemetryConfig config;
  config.path = path;
  config.every_rounds = 2;
  obs::TelemetryExporter telemetry(config);

  // Rounds 1..4 at t = 10, 20, 30, 40: frames land only after rounds 2
  // and 4 (at the next quiescent sample), plus the closing frame.
  for (int round = 1; round <= 4; ++round) {
    telemetry.on_round(10.0 * round);
    telemetry.sample(10.0 * round + 1.0);
  }
  EXPECT_EQ(telemetry.frames_emitted(), 2u);
  telemetry.finish(50.0);
  EXPECT_EQ(telemetry.frames_emitted(), 3u);

  std::ifstream in(path);
  obs::TelemetryValidator validator;
  std::string line;
  std::string error;
  std::size_t frames = 0;
  while (std::getline(in, line)) {
    ASSERT_TRUE(validator.check_frame(obs::json::parse(line), &error))
        << error;
    ++frames;
  }
  EXPECT_EQ(frames, 3u);
  EXPECT_TRUE(validator.finish(&error)) << error;
}

TEST(TelemetryExporter, StreamTimeCadenceWithoutRounds) {
  obs::registry().reset();
  obs::TelemetryConfig config;
  config.path = temp_path("tele_clock.jsonl");
  config.every_rounds = 0;          // rounds alone never trigger
  config.every_stream_s = 10.0;     // the stream clock does
  obs::TelemetryExporter telemetry(config);
  for (double t = 0.0; t < 35.0; t += 1.0) telemetry.sample(t);
  // Ticks at 10, 20, 30 s of stream time — wall clock plays no part.
  EXPECT_EQ(telemetry.frames_emitted(), 3u);
  telemetry.finish(35.0);
  EXPECT_EQ(telemetry.frames_emitted(), 4u);
}

TEST(TelemetryExporter, AppendResumesSequenceAfterRestart) {
  obs::registry().reset();
  const std::string path = temp_path("tele_resume.jsonl");
  std::uint64_t next_seq = 0;
  {
    obs::TelemetryConfig config;
    config.path = path;
    obs::TelemetryExporter first(config);
    first.emit_now(1.0);
    first.finish(2.0);
    next_seq = first.next_seq();
  }
  EXPECT_EQ(next_seq, 2u);
  {
    obs::TelemetryConfig config;
    config.path = path;
    config.first_seq = next_seq;  // restart: append, do not truncate
    obs::TelemetryExporter second(config);
    second.emit_now(3.0);
    second.finish(4.0);
  }
  std::ifstream in(path);
  obs::TelemetryValidator validator;
  std::string line;
  std::string error;
  std::size_t frames = 0;
  while (std::getline(in, line)) {
    ASSERT_TRUE(validator.check_frame(obs::json::parse(line), &error))
        << error;
    ++frames;
  }
  EXPECT_EQ(frames, 4u);  // seq 0..3 with no gap across the restart
  EXPECT_TRUE(validator.finish(&error)) << error;
}

TEST(TelemetryValidator, AcceptsWellFormedSequence) {
  obs::TelemetryValidator validator;
  std::string error;
  EXPECT_TRUE(validator.check_frame(
      obs::json::parse(frame_json(
          0, 1.0,
          "\"stream.beacons_offered\":5,\"stream.beacons_ingested\":5")),
      &error))
      << error;
  EXPECT_TRUE(validator.check_frame(
      obs::json::parse(frame_json(
          1, 2.0,
          "\"stream.beacons_offered\":3,\"stream.beacons_ingested\":3")),
      &error))
      << error;
  EXPECT_TRUE(validator.finish(&error)) << error;
  EXPECT_EQ(validator.frames(), 2u);
}

TEST(TelemetryValidator, RejectsMalformedFrames) {
  std::string error;
  {
    obs::TelemetryValidator validator;
    EXPECT_FALSE(validator.check_frame(
        obs::json::parse(frame_json(0, 1.0, "", "wrong/schema")), &error));
    EXPECT_NE(error.find("schema"), std::string::npos) << error;
  }
  {
    obs::TelemetryValidator validator;
    EXPECT_FALSE(validator.check_frame(
        obs::json::parse(frame_json(3, 1.0, "")), &error));
    EXPECT_NE(error.find("sequence gap"), std::string::npos) << error;
  }
  {
    obs::TelemetryValidator validator;
    ASSERT_TRUE(validator.check_frame(
        obs::json::parse(frame_json(0, 5.0, "")), &error))
        << error;
    EXPECT_FALSE(validator.check_frame(
        obs::json::parse(frame_json(1, 4.0, "")), &error));
    EXPECT_NE(error.find("backwards"), std::string::npos) << error;
  }
  {
    obs::TelemetryValidator validator;
    EXPECT_FALSE(validator.check_frame(
        obs::json::parse(frame_json(0, 1.0, "\"stream.rounds\":-2")),
        &error));
    EXPECT_NE(error.find("regressed"), std::string::npos) << error;
  }
  {
    // Offered beacons that never land anywhere: conservation violation.
    obs::TelemetryValidator validator;
    EXPECT_FALSE(validator.check_frame(
        obs::json::parse(frame_json(0, 1.0, "\"stream.beacons_offered\":5")),
        &error));
    EXPECT_NE(error.find("conservation.stream.beacons"), std::string::npos)
        << error;
  }
  {
    obs::TelemetryValidator validator;
    EXPECT_FALSE(validator.finish(&error));  // empty stream is an error
  }
}

TEST(TelemetryHealth, DefaultInvariantsFlagViolations) {
  obs::HealthMonitor monitor = obs::HealthMonitor::with_default_invariants();

  std::map<std::string, std::uint64_t> counters{
      {"stream.beacons_offered", 10}, {"stream.beacons_ingested", 10}};
  std::map<std::string, std::int64_t> deltas{{"stream.beacons_offered", 10},
                                             {"stream.beacons_ingested", 10}};
  std::map<std::string, double> gauges;
  obs::FrameView frame;
  frame.counters = &counters;
  frame.deltas = &deltas;
  frame.gauges = &gauges;
  EXPECT_TRUE(monitor.evaluate(frame).empty());
  EXPECT_EQ(monitor.alerts_total(), 0u);

  // Lose two beacons: the stream conservation law must fire.
  counters["stream.beacons_ingested"] = 8;
  const std::vector<obs::HealthAlert> alerts = monitor.evaluate(frame);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].invariant, "conservation.stream.beacons");

  // A shrinking counter trips monotonicity independently of the laws.
  counters["stream.beacons_ingested"] = 10;
  deltas["stream.beacons_ingested"] = -1;
  bool monotonic_alert = false;
  for (const obs::HealthAlert& alert : monitor.evaluate(frame)) {
    monotonic_alert = monotonic_alert || alert.invariant == "counter_monotonic";
  }
  EXPECT_TRUE(monotonic_alert);

  EXPECT_EQ(monitor.frames_evaluated(), 3u);
  EXPECT_GE(monitor.alerts_total(), 2u);
  const obs::json::Value summary = monitor.summary();
  ASSERT_TRUE(summary.is_object());
  EXPECT_EQ(summary.find("frames")->as_number(), 3.0);
  EXPECT_NE(summary.find("by_invariant")
                ->as_object()
                .count("conservation.stream.beacons"),
            0u);
}

TEST(TelemetryOpenMetrics, WritesPrometheusText) {
  obs::registry().reset();
  obs::registry().counter("om.rounds").add(3);
  obs::registry().gauge("om.depth").set(2.5);
  obs::Histogram& h = obs::registry().histogram("om.latency_ns");
  h.record(1000.0);
  h.record(2000.0);

  const std::string path = temp_path("telemetry.om");
  obs::write_openmetrics(obs::registry(), path);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("# TYPE om_rounds_total counter\nom_rounds_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("om_depth 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("om_latency_ns{quantile=\"0.5\"} "), std::string::npos);
  EXPECT_NE(text.find("om_latency_ns_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("# EOF\n"), std::string::npos);
}

// Satellite guarantee: turning the exporter on changes nothing the
// engine computes, and at the default cadence its wall cost on a replay
// stays within a small budget. The timing half is measured as a
// min-of-3 and retried: CI machines are noisy, the true overhead (two
// branches per beacon, one registry snapshot per round) is not.
TEST(TelemetryOverhead, NoResultDriftAndBoundedCost) {
  const std::vector<Rx> trace = synthesize_stream(16, 10.0, 65.0);
  obs::enable();  // both arms instrumented: isolate the exporter's cost

  const auto replay = [&](obs::TelemetryExporter* telemetry,
                          std::vector<stream::StreamRound>* rounds) {
    stream::StreamEngine engine(make_engine_config(1));
    engine.set_round_callback([&](const stream::StreamRound& round) {
      if (telemetry != nullptr) telemetry->on_round(round.time_s);
      if (rounds != nullptr) rounds->push_back(round);
    });
    const auto start = std::chrono::steady_clock::now();
    for (const Rx& rx : trace) {
      engine.ingest(rx.id, rx.time_s, rx.rssi_dbm);
      if (telemetry != nullptr) telemetry->sample(rx.time_s);
    }
    engine.advance_to(trace.back().time_s + 1.0);
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  // Result parity, checked once: rounds with and without the exporter
  // are bit-identical.
  std::vector<stream::StreamRound> baseline_rounds;
  std::vector<stream::StreamRound> telemetry_rounds;
  replay(nullptr, &baseline_rounds);
  {
    obs::registry().reset();
    obs::TelemetryConfig config;
    config.path = temp_path("tele_overhead.jsonl");
    obs::TelemetryExporter telemetry(config);
    replay(&telemetry, &telemetry_rounds);
    telemetry.finish(trace.back().time_s + 1.0);
  }
  ASSERT_EQ(telemetry_rounds.size(), baseline_rounds.size());
  for (std::size_t i = 0; i < baseline_rounds.size(); ++i) {
    EXPECT_EQ(telemetry_rounds[i].round_id, baseline_rounds[i].round_id);
    EXPECT_EQ(telemetry_rounds[i].time_s, baseline_rounds[i].time_s);
    EXPECT_EQ(telemetry_rounds[i].suspects, baseline_rounds[i].suspects);
    ASSERT_EQ(telemetry_rounds[i].pairs.size(), baseline_rounds[i].pairs.size());
    for (std::size_t j = 0; j < baseline_rounds[i].pairs.size(); ++j) {
      EXPECT_EQ(telemetry_rounds[i].pairs[j].raw,
                baseline_rounds[i].pairs[j].raw);  // bitwise, no epsilon
      EXPECT_EQ(telemetry_rounds[i].pairs[j].normalized,
                baseline_rounds[i].pairs[j].normalized);
    }
  }

  // Wall budget: 2% plus a 2 ms absolute floor so a sub-100 ms baseline
  // does not turn scheduler jitter into a failure.
  bool within_budget = false;
  for (int attempt = 0; attempt < 5 && !within_budget; ++attempt) {
    double off = std::numeric_limits<double>::infinity();
    double on = std::numeric_limits<double>::infinity();
    for (int i = 0; i < 3; ++i) {
      off = std::min(off, replay(nullptr, nullptr));
      obs::registry().reset();
      obs::TelemetryConfig config;
      config.path = temp_path("tele_overhead.jsonl");
      obs::TelemetryExporter telemetry(config);
      on = std::min(on, replay(&telemetry, nullptr));
      telemetry.finish(trace.back().time_s + 1.0);
    }
    within_budget = on <= off * 1.02 + 0.002;
  }
  EXPECT_TRUE(within_budget);
}

}  // namespace
}  // namespace vp
