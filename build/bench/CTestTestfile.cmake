# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig09 "/root/repo/build/bench/fig09_dtw_example")
set_tests_properties(bench_smoke_fig09 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table04 "/root/repo/build/bench/table04_model_fit" "--samples" "600")
set_tests_properties(bench_smoke_table04 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig05 "/root/repo/build/bench/fig05_rssi_distributions")
set_tests_properties(bench_smoke_fig05 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig06_07 "/root/repo/build/bench/fig06_07_sybil_timeseries" "--duration" "30")
set_tests_properties(bench_smoke_fig06_07 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig10 "/root/repo/build/bench/fig10_lda_training" "--densities" "12" "--runs" "1" "--observers" "3")
set_tests_properties(bench_smoke_fig10 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig11 "/root/repo/build/bench/fig11_detection" "--densities" "12" "--runs" "1" "--observers" "3" "--model-change" "off")
set_tests_properties(bench_smoke_fig11 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;42;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig13 "/root/repo/build/bench/fig13_field_test" "--duration-scale" "0.08")
set_tests_properties(bench_smoke_fig13 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_distance "/root/repo/build/bench/ablation_distance" "--density" "12")
set_tests_properties(bench_smoke_ablation_distance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_attacks "/root/repo/build/bench/ablation_attacks" "--density" "12")
set_tests_properties(bench_smoke_ablation_attacks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;49;add_test;/root/repo/bench/CMakeLists.txt;0;")
