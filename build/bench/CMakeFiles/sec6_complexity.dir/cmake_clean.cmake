file(REMOVE_RECURSE
  "CMakeFiles/sec6_complexity.dir/sec6_complexity.cpp.o"
  "CMakeFiles/sec6_complexity.dir/sec6_complexity.cpp.o.d"
  "sec6_complexity"
  "sec6_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
