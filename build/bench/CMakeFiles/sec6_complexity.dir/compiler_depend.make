# Empty compiler generated dependencies file for sec6_complexity.
# This may be replaced when dependencies are built.
