# Empty dependencies file for fig05_rssi_distributions.
# This may be replaced when dependencies are built.
