file(REMOVE_RECURSE
  "CMakeFiles/fig05_rssi_distributions.dir/fig05_rssi_distributions.cpp.o"
  "CMakeFiles/fig05_rssi_distributions.dir/fig05_rssi_distributions.cpp.o.d"
  "fig05_rssi_distributions"
  "fig05_rssi_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_rssi_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
