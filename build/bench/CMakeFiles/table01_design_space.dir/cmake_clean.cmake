file(REMOVE_RECURSE
  "CMakeFiles/table01_design_space.dir/table01_design_space.cpp.o"
  "CMakeFiles/table01_design_space.dir/table01_design_space.cpp.o.d"
  "table01_design_space"
  "table01_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
