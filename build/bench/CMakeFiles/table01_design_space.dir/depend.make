# Empty dependencies file for table01_design_space.
# This may be replaced when dependencies are built.
