# Empty dependencies file for fig09_dtw_example.
# This may be replaced when dependencies are built.
