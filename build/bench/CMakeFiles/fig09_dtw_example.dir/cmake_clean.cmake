file(REMOVE_RECURSE
  "CMakeFiles/fig09_dtw_example.dir/fig09_dtw_example.cpp.o"
  "CMakeFiles/fig09_dtw_example.dir/fig09_dtw_example.cpp.o.d"
  "fig09_dtw_example"
  "fig09_dtw_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_dtw_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
