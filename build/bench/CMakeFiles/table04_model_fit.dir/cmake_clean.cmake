file(REMOVE_RECURSE
  "CMakeFiles/table04_model_fit.dir/table04_model_fit.cpp.o"
  "CMakeFiles/table04_model_fit.dir/table04_model_fit.cpp.o.d"
  "table04_model_fit"
  "table04_model_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_model_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
