# Empty compiler generated dependencies file for table04_model_fit.
# This may be replaced when dependencies are built.
