file(REMOVE_RECURSE
  "CMakeFiles/fig13_field_test.dir/fig13_field_test.cpp.o"
  "CMakeFiles/fig13_field_test.dir/fig13_field_test.cpp.o.d"
  "fig13_field_test"
  "fig13_field_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
