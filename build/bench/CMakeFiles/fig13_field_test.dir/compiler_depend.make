# Empty compiler generated dependencies file for fig13_field_test.
# This may be replaced when dependencies are built.
