file(REMOVE_RECURSE
  "CMakeFiles/fig11_detection.dir/fig11_detection.cpp.o"
  "CMakeFiles/fig11_detection.dir/fig11_detection.cpp.o.d"
  "fig11_detection"
  "fig11_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
