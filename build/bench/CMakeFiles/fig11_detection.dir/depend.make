# Empty dependencies file for fig11_detection.
# This may be replaced when dependencies are built.
