file(REMOVE_RECURSE
  "CMakeFiles/substrate_channel.dir/substrate_channel.cpp.o"
  "CMakeFiles/substrate_channel.dir/substrate_channel.cpp.o.d"
  "substrate_channel"
  "substrate_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substrate_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
