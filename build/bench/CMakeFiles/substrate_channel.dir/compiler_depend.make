# Empty compiler generated dependencies file for substrate_channel.
# This may be replaced when dependencies are built.
