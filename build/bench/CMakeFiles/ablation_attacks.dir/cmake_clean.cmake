file(REMOVE_RECURSE
  "CMakeFiles/ablation_attacks.dir/ablation_attacks.cpp.o"
  "CMakeFiles/ablation_attacks.dir/ablation_attacks.cpp.o.d"
  "ablation_attacks"
  "ablation_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
