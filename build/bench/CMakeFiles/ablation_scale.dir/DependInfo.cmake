
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_scale.cpp" "bench/CMakeFiles/ablation_scale.dir/ablation_scale.cpp.o" "gcc" "bench/CMakeFiles/ablation_scale.dir/ablation_scale.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vp_fieldtest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vp_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vp_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vp_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vp_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
