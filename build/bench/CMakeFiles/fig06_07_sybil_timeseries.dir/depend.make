# Empty dependencies file for fig06_07_sybil_timeseries.
# This may be replaced when dependencies are built.
