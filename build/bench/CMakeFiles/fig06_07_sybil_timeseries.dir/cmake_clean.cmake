file(REMOVE_RECURSE
  "CMakeFiles/fig06_07_sybil_timeseries.dir/fig06_07_sybil_timeseries.cpp.o"
  "CMakeFiles/fig06_07_sybil_timeseries.dir/fig06_07_sybil_timeseries.cpp.o.d"
  "fig06_07_sybil_timeseries"
  "fig06_07_sybil_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_07_sybil_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
