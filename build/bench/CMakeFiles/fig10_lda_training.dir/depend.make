# Empty dependencies file for fig10_lda_training.
# This may be replaced when dependencies are built.
