file(REMOVE_RECURSE
  "CMakeFiles/fig10_lda_training.dir/fig10_lda_training.cpp.o"
  "CMakeFiles/fig10_lda_training.dir/fig10_lda_training.cpp.o.d"
  "fig10_lda_training"
  "fig10_lda_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_lda_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
