# Empty compiler generated dependencies file for ablation_observation.
# This may be replaced when dependencies are built.
