file(REMOVE_RECURSE
  "CMakeFiles/ablation_observation.dir/ablation_observation.cpp.o"
  "CMakeFiles/ablation_observation.dir/ablation_observation.cpp.o.d"
  "ablation_observation"
  "ablation_observation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_observation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
