file(REMOVE_RECURSE
  "CMakeFiles/ablation_normalization.dir/ablation_normalization.cpp.o"
  "CMakeFiles/ablation_normalization.dir/ablation_normalization.cpp.o.d"
  "ablation_normalization"
  "ablation_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
