file(REMOVE_RECURSE
  "CMakeFiles/vp_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/vp_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/vp_sim.dir/sim/node.cpp.o"
  "CMakeFiles/vp_sim.dir/sim/node.cpp.o.d"
  "CMakeFiles/vp_sim.dir/sim/rssi_log.cpp.o"
  "CMakeFiles/vp_sim.dir/sim/rssi_log.cpp.o.d"
  "CMakeFiles/vp_sim.dir/sim/runner.cpp.o"
  "CMakeFiles/vp_sim.dir/sim/runner.cpp.o.d"
  "CMakeFiles/vp_sim.dir/sim/scenario.cpp.o"
  "CMakeFiles/vp_sim.dir/sim/scenario.cpp.o.d"
  "CMakeFiles/vp_sim.dir/sim/world.cpp.o"
  "CMakeFiles/vp_sim.dir/sim/world.cpp.o.d"
  "libvp_sim.a"
  "libvp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
