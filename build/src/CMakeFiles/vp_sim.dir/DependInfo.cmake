
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/vp_sim.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/vp_sim.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/CMakeFiles/vp_sim.dir/sim/node.cpp.o" "gcc" "src/CMakeFiles/vp_sim.dir/sim/node.cpp.o.d"
  "/root/repo/src/sim/rssi_log.cpp" "src/CMakeFiles/vp_sim.dir/sim/rssi_log.cpp.o" "gcc" "src/CMakeFiles/vp_sim.dir/sim/rssi_log.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "src/CMakeFiles/vp_sim.dir/sim/runner.cpp.o" "gcc" "src/CMakeFiles/vp_sim.dir/sim/runner.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/CMakeFiles/vp_sim.dir/sim/scenario.cpp.o" "gcc" "src/CMakeFiles/vp_sim.dir/sim/scenario.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/CMakeFiles/vp_sim.dir/sim/world.cpp.o" "gcc" "src/CMakeFiles/vp_sim.dir/sim/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vp_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vp_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vp_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vp_mac.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
