file(REMOVE_RECURSE
  "CMakeFiles/vp_common.dir/common/cli.cpp.o"
  "CMakeFiles/vp_common.dir/common/cli.cpp.o.d"
  "CMakeFiles/vp_common.dir/common/csv.cpp.o"
  "CMakeFiles/vp_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/vp_common.dir/common/event_queue.cpp.o"
  "CMakeFiles/vp_common.dir/common/event_queue.cpp.o.d"
  "CMakeFiles/vp_common.dir/common/least_squares.cpp.o"
  "CMakeFiles/vp_common.dir/common/least_squares.cpp.o.d"
  "CMakeFiles/vp_common.dir/common/rng.cpp.o"
  "CMakeFiles/vp_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/vp_common.dir/common/stats.cpp.o"
  "CMakeFiles/vp_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/vp_common.dir/common/table.cpp.o"
  "CMakeFiles/vp_common.dir/common/table.cpp.o.d"
  "libvp_common.a"
  "libvp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
