file(REMOVE_RECURSE
  "CMakeFiles/vp_timeseries.dir/timeseries/dtw.cpp.o"
  "CMakeFiles/vp_timeseries.dir/timeseries/dtw.cpp.o.d"
  "CMakeFiles/vp_timeseries.dir/timeseries/fast_dtw.cpp.o"
  "CMakeFiles/vp_timeseries.dir/timeseries/fast_dtw.cpp.o.d"
  "CMakeFiles/vp_timeseries.dir/timeseries/lp_distance.cpp.o"
  "CMakeFiles/vp_timeseries.dir/timeseries/lp_distance.cpp.o.d"
  "CMakeFiles/vp_timeseries.dir/timeseries/normalize.cpp.o"
  "CMakeFiles/vp_timeseries.dir/timeseries/normalize.cpp.o.d"
  "CMakeFiles/vp_timeseries.dir/timeseries/series.cpp.o"
  "CMakeFiles/vp_timeseries.dir/timeseries/series.cpp.o.d"
  "libvp_timeseries.a"
  "libvp_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
