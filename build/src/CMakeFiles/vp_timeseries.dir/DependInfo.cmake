
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeseries/dtw.cpp" "src/CMakeFiles/vp_timeseries.dir/timeseries/dtw.cpp.o" "gcc" "src/CMakeFiles/vp_timeseries.dir/timeseries/dtw.cpp.o.d"
  "/root/repo/src/timeseries/fast_dtw.cpp" "src/CMakeFiles/vp_timeseries.dir/timeseries/fast_dtw.cpp.o" "gcc" "src/CMakeFiles/vp_timeseries.dir/timeseries/fast_dtw.cpp.o.d"
  "/root/repo/src/timeseries/lp_distance.cpp" "src/CMakeFiles/vp_timeseries.dir/timeseries/lp_distance.cpp.o" "gcc" "src/CMakeFiles/vp_timeseries.dir/timeseries/lp_distance.cpp.o.d"
  "/root/repo/src/timeseries/normalize.cpp" "src/CMakeFiles/vp_timeseries.dir/timeseries/normalize.cpp.o" "gcc" "src/CMakeFiles/vp_timeseries.dir/timeseries/normalize.cpp.o.d"
  "/root/repo/src/timeseries/series.cpp" "src/CMakeFiles/vp_timeseries.dir/timeseries/series.cpp.o" "gcc" "src/CMakeFiles/vp_timeseries.dir/timeseries/series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
