# Empty compiler generated dependencies file for vp_timeseries.
# This may be replaced when dependencies are built.
