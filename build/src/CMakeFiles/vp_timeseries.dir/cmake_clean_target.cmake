file(REMOVE_RECURSE
  "libvp_timeseries.a"
)
