file(REMOVE_RECURSE
  "CMakeFiles/vp_core.dir/core/comparison.cpp.o"
  "CMakeFiles/vp_core.dir/core/comparison.cpp.o.d"
  "CMakeFiles/vp_core.dir/core/confirmation.cpp.o"
  "CMakeFiles/vp_core.dir/core/confirmation.cpp.o.d"
  "CMakeFiles/vp_core.dir/core/density.cpp.o"
  "CMakeFiles/vp_core.dir/core/density.cpp.o.d"
  "CMakeFiles/vp_core.dir/core/detector.cpp.o"
  "CMakeFiles/vp_core.dir/core/detector.cpp.o.d"
  "CMakeFiles/vp_core.dir/core/threshold.cpp.o"
  "CMakeFiles/vp_core.dir/core/threshold.cpp.o.d"
  "libvp_core.a"
  "libvp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
