file(REMOVE_RECURSE
  "CMakeFiles/vp_fieldtest.dir/fieldtest/area.cpp.o"
  "CMakeFiles/vp_fieldtest.dir/fieldtest/area.cpp.o.d"
  "CMakeFiles/vp_fieldtest.dir/fieldtest/replay.cpp.o"
  "CMakeFiles/vp_fieldtest.dir/fieldtest/replay.cpp.o.d"
  "CMakeFiles/vp_fieldtest.dir/fieldtest/scenario3.cpp.o"
  "CMakeFiles/vp_fieldtest.dir/fieldtest/scenario3.cpp.o.d"
  "libvp_fieldtest.a"
  "libvp_fieldtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_fieldtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
