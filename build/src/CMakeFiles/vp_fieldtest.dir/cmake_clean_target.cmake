file(REMOVE_RECURSE
  "libvp_fieldtest.a"
)
