# Empty dependencies file for vp_fieldtest.
# This may be replaced when dependencies are built.
