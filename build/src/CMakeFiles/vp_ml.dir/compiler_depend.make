# Empty compiler generated dependencies file for vp_ml.
# This may be replaced when dependencies are built.
