
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/lda.cpp" "src/CMakeFiles/vp_ml.dir/ml/lda.cpp.o" "gcc" "src/CMakeFiles/vp_ml.dir/ml/lda.cpp.o.d"
  "/root/repo/src/ml/logistic.cpp" "src/CMakeFiles/vp_ml.dir/ml/logistic.cpp.o" "gcc" "src/CMakeFiles/vp_ml.dir/ml/logistic.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/CMakeFiles/vp_ml.dir/ml/metrics.cpp.o" "gcc" "src/CMakeFiles/vp_ml.dir/ml/metrics.cpp.o.d"
  "/root/repo/src/ml/perceptron.cpp" "src/CMakeFiles/vp_ml.dir/ml/perceptron.cpp.o" "gcc" "src/CMakeFiles/vp_ml.dir/ml/perceptron.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
