file(REMOVE_RECURSE
  "libvp_ml.a"
)
