file(REMOVE_RECURSE
  "CMakeFiles/vp_ml.dir/ml/lda.cpp.o"
  "CMakeFiles/vp_ml.dir/ml/lda.cpp.o.d"
  "CMakeFiles/vp_ml.dir/ml/logistic.cpp.o"
  "CMakeFiles/vp_ml.dir/ml/logistic.cpp.o.d"
  "CMakeFiles/vp_ml.dir/ml/metrics.cpp.o"
  "CMakeFiles/vp_ml.dir/ml/metrics.cpp.o.d"
  "CMakeFiles/vp_ml.dir/ml/perceptron.cpp.o"
  "CMakeFiles/vp_ml.dir/ml/perceptron.cpp.o.d"
  "libvp_ml.a"
  "libvp_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
