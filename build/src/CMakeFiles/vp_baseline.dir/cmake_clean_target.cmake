file(REMOVE_RECURSE
  "libvp_baseline.a"
)
