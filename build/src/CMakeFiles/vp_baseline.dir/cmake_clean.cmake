file(REMOVE_RECURSE
  "CMakeFiles/vp_baseline.dir/baseline/cpvsad.cpp.o"
  "CMakeFiles/vp_baseline.dir/baseline/cpvsad.cpp.o.d"
  "CMakeFiles/vp_baseline.dir/baseline/rssi_variation.cpp.o"
  "CMakeFiles/vp_baseline.dir/baseline/rssi_variation.cpp.o.d"
  "libvp_baseline.a"
  "libvp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
