file(REMOVE_RECURSE
  "libvp_mobility.a"
)
