file(REMOVE_RECURSE
  "CMakeFiles/vp_mobility.dir/mobility/epoch_mobility.cpp.o"
  "CMakeFiles/vp_mobility.dir/mobility/epoch_mobility.cpp.o.d"
  "CMakeFiles/vp_mobility.dir/mobility/highway.cpp.o"
  "CMakeFiles/vp_mobility.dir/mobility/highway.cpp.o.d"
  "CMakeFiles/vp_mobility.dir/mobility/trace.cpp.o"
  "CMakeFiles/vp_mobility.dir/mobility/trace.cpp.o.d"
  "CMakeFiles/vp_mobility.dir/mobility/waypoint_route.cpp.o"
  "CMakeFiles/vp_mobility.dir/mobility/waypoint_route.cpp.o.d"
  "libvp_mobility.a"
  "libvp_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
