
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/epoch_mobility.cpp" "src/CMakeFiles/vp_mobility.dir/mobility/epoch_mobility.cpp.o" "gcc" "src/CMakeFiles/vp_mobility.dir/mobility/epoch_mobility.cpp.o.d"
  "/root/repo/src/mobility/highway.cpp" "src/CMakeFiles/vp_mobility.dir/mobility/highway.cpp.o" "gcc" "src/CMakeFiles/vp_mobility.dir/mobility/highway.cpp.o.d"
  "/root/repo/src/mobility/trace.cpp" "src/CMakeFiles/vp_mobility.dir/mobility/trace.cpp.o" "gcc" "src/CMakeFiles/vp_mobility.dir/mobility/trace.cpp.o.d"
  "/root/repo/src/mobility/waypoint_route.cpp" "src/CMakeFiles/vp_mobility.dir/mobility/waypoint_route.cpp.o" "gcc" "src/CMakeFiles/vp_mobility.dir/mobility/waypoint_route.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
