# Empty compiler generated dependencies file for vp_mobility.
# This may be replaced when dependencies are built.
