# Empty compiler generated dependencies file for vp_mac.
# This may be replaced when dependencies are built.
