file(REMOVE_RECURSE
  "libvp_mac.a"
)
