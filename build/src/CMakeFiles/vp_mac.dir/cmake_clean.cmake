file(REMOVE_RECURSE
  "CMakeFiles/vp_mac.dir/mac/channel.cpp.o"
  "CMakeFiles/vp_mac.dir/mac/channel.cpp.o.d"
  "CMakeFiles/vp_mac.dir/mac/csma_ca.cpp.o"
  "CMakeFiles/vp_mac.dir/mac/csma_ca.cpp.o.d"
  "libvp_mac.a"
  "libvp_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
