
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/channel.cpp" "src/CMakeFiles/vp_mac.dir/mac/channel.cpp.o" "gcc" "src/CMakeFiles/vp_mac.dir/mac/channel.cpp.o.d"
  "/root/repo/src/mac/csma_ca.cpp" "src/CMakeFiles/vp_mac.dir/mac/csma_ca.cpp.o" "gcc" "src/CMakeFiles/vp_mac.dir/mac/csma_ca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vp_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vp_mobility.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
