# Empty dependencies file for vp_radio.
# This may be replaced when dependencies are built.
