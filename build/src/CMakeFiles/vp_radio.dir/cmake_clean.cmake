file(REMOVE_RECURSE
  "CMakeFiles/vp_radio.dir/radio/dual_slope.cpp.o"
  "CMakeFiles/vp_radio.dir/radio/dual_slope.cpp.o.d"
  "CMakeFiles/vp_radio.dir/radio/fading.cpp.o"
  "CMakeFiles/vp_radio.dir/radio/fading.cpp.o.d"
  "CMakeFiles/vp_radio.dir/radio/fitter.cpp.o"
  "CMakeFiles/vp_radio.dir/radio/fitter.cpp.o.d"
  "CMakeFiles/vp_radio.dir/radio/free_space.cpp.o"
  "CMakeFiles/vp_radio.dir/radio/free_space.cpp.o.d"
  "CMakeFiles/vp_radio.dir/radio/nakagami.cpp.o"
  "CMakeFiles/vp_radio.dir/radio/nakagami.cpp.o.d"
  "CMakeFiles/vp_radio.dir/radio/receiver.cpp.o"
  "CMakeFiles/vp_radio.dir/radio/receiver.cpp.o.d"
  "CMakeFiles/vp_radio.dir/radio/shadowing.cpp.o"
  "CMakeFiles/vp_radio.dir/radio/shadowing.cpp.o.d"
  "CMakeFiles/vp_radio.dir/radio/switching.cpp.o"
  "CMakeFiles/vp_radio.dir/radio/switching.cpp.o.d"
  "CMakeFiles/vp_radio.dir/radio/two_ray.cpp.o"
  "CMakeFiles/vp_radio.dir/radio/two_ray.cpp.o.d"
  "libvp_radio.a"
  "libvp_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
