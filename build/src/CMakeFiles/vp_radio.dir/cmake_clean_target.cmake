file(REMOVE_RECURSE
  "libvp_radio.a"
)
