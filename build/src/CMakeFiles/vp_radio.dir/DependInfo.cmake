
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/dual_slope.cpp" "src/CMakeFiles/vp_radio.dir/radio/dual_slope.cpp.o" "gcc" "src/CMakeFiles/vp_radio.dir/radio/dual_slope.cpp.o.d"
  "/root/repo/src/radio/fading.cpp" "src/CMakeFiles/vp_radio.dir/radio/fading.cpp.o" "gcc" "src/CMakeFiles/vp_radio.dir/radio/fading.cpp.o.d"
  "/root/repo/src/radio/fitter.cpp" "src/CMakeFiles/vp_radio.dir/radio/fitter.cpp.o" "gcc" "src/CMakeFiles/vp_radio.dir/radio/fitter.cpp.o.d"
  "/root/repo/src/radio/free_space.cpp" "src/CMakeFiles/vp_radio.dir/radio/free_space.cpp.o" "gcc" "src/CMakeFiles/vp_radio.dir/radio/free_space.cpp.o.d"
  "/root/repo/src/radio/nakagami.cpp" "src/CMakeFiles/vp_radio.dir/radio/nakagami.cpp.o" "gcc" "src/CMakeFiles/vp_radio.dir/radio/nakagami.cpp.o.d"
  "/root/repo/src/radio/receiver.cpp" "src/CMakeFiles/vp_radio.dir/radio/receiver.cpp.o" "gcc" "src/CMakeFiles/vp_radio.dir/radio/receiver.cpp.o.d"
  "/root/repo/src/radio/shadowing.cpp" "src/CMakeFiles/vp_radio.dir/radio/shadowing.cpp.o" "gcc" "src/CMakeFiles/vp_radio.dir/radio/shadowing.cpp.o.d"
  "/root/repo/src/radio/switching.cpp" "src/CMakeFiles/vp_radio.dir/radio/switching.cpp.o" "gcc" "src/CMakeFiles/vp_radio.dir/radio/switching.cpp.o.d"
  "/root/repo/src/radio/two_ray.cpp" "src/CMakeFiles/vp_radio.dir/radio/two_ray.cpp.o" "gcc" "src/CMakeFiles/vp_radio.dir/radio/two_ray.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
