# Empty compiler generated dependencies file for highway_sybil_sim.
# This may be replaced when dependencies are built.
