file(REMOVE_RECURSE
  "CMakeFiles/highway_sybil_sim.dir/highway_sybil_sim.cpp.o"
  "CMakeFiles/highway_sybil_sim.dir/highway_sybil_sim.cpp.o.d"
  "highway_sybil_sim"
  "highway_sybil_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/highway_sybil_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
