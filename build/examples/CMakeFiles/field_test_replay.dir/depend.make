# Empty dependencies file for field_test_replay.
# This may be replaced when dependencies are built.
