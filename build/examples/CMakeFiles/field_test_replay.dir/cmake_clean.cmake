file(REMOVE_RECURSE
  "CMakeFiles/field_test_replay.dir/field_test_replay.cpp.o"
  "CMakeFiles/field_test_replay.dir/field_test_replay.cpp.o.d"
  "field_test_replay"
  "field_test_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_test_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
