# Empty dependencies file for power_spoofing_attack.
# This may be replaced when dependencies are built.
