file(REMOVE_RECURSE
  "CMakeFiles/power_spoofing_attack.dir/power_spoofing_attack.cpp.o"
  "CMakeFiles/power_spoofing_attack.dir/power_spoofing_attack.cpp.o.d"
  "power_spoofing_attack"
  "power_spoofing_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_spoofing_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
