# Empty compiler generated dependencies file for test_property_dtw.
# This may be replaced when dependencies are built.
