file(REMOVE_RECURSE
  "CMakeFiles/test_property_dtw.dir/test_property_dtw.cpp.o"
  "CMakeFiles/test_property_dtw.dir/test_property_dtw.cpp.o.d"
  "test_property_dtw"
  "test_property_dtw.pdb"
  "test_property_dtw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_dtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
