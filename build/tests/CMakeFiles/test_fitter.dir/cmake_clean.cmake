file(REMOVE_RECURSE
  "CMakeFiles/test_fitter.dir/test_fitter.cpp.o"
  "CMakeFiles/test_fitter.dir/test_fitter.cpp.o.d"
  "test_fitter"
  "test_fitter.pdb"
  "test_fitter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
