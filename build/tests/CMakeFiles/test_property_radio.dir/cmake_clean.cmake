file(REMOVE_RECURSE
  "CMakeFiles/test_property_radio.dir/test_property_radio.cpp.o"
  "CMakeFiles/test_property_radio.dir/test_property_radio.cpp.o.d"
  "test_property_radio"
  "test_property_radio.pdb"
  "test_property_radio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
