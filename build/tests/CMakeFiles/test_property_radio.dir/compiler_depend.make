# Empty compiler generated dependencies file for test_property_radio.
# This may be replaced when dependencies are built.
