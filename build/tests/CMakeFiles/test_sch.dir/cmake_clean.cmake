file(REMOVE_RECURSE
  "CMakeFiles/test_sch.dir/test_sch.cpp.o"
  "CMakeFiles/test_sch.dir/test_sch.cpp.o.d"
  "test_sch"
  "test_sch.pdb"
  "test_sch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
