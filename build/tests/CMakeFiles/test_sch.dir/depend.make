# Empty dependencies file for test_sch.
# This may be replaced when dependencies are built.
