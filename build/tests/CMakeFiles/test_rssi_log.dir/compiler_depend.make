# Empty compiler generated dependencies file for test_rssi_log.
# This may be replaced when dependencies are built.
