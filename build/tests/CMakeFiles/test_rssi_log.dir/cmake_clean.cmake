file(REMOVE_RECURSE
  "CMakeFiles/test_rssi_log.dir/test_rssi_log.cpp.o"
  "CMakeFiles/test_rssi_log.dir/test_rssi_log.cpp.o.d"
  "test_rssi_log"
  "test_rssi_log.pdb"
  "test_rssi_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rssi_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
