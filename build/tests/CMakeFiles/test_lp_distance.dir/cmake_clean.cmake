file(REMOVE_RECURSE
  "CMakeFiles/test_lp_distance.dir/test_lp_distance.cpp.o"
  "CMakeFiles/test_lp_distance.dir/test_lp_distance.cpp.o.d"
  "test_lp_distance"
  "test_lp_distance.pdb"
  "test_lp_distance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
