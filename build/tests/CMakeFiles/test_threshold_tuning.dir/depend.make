# Empty dependencies file for test_threshold_tuning.
# This may be replaced when dependencies are built.
