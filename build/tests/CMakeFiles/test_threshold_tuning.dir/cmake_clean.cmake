file(REMOVE_RECURSE
  "CMakeFiles/test_threshold_tuning.dir/test_threshold_tuning.cpp.o"
  "CMakeFiles/test_threshold_tuning.dir/test_threshold_tuning.cpp.o.d"
  "test_threshold_tuning"
  "test_threshold_tuning.pdb"
  "test_threshold_tuning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threshold_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
