# Empty dependencies file for test_fieldtest.
# This may be replaced when dependencies are built.
