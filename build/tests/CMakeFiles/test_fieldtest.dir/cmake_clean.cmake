file(REMOVE_RECURSE
  "CMakeFiles/test_fieldtest.dir/test_fieldtest.cpp.o"
  "CMakeFiles/test_fieldtest.dir/test_fieldtest.cpp.o.d"
  "test_fieldtest"
  "test_fieldtest.pdb"
  "test_fieldtest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fieldtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
