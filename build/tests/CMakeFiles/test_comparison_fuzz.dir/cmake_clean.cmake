file(REMOVE_RECURSE
  "CMakeFiles/test_comparison_fuzz.dir/test_comparison_fuzz.cpp.o"
  "CMakeFiles/test_comparison_fuzz.dir/test_comparison_fuzz.cpp.o.d"
  "test_comparison_fuzz"
  "test_comparison_fuzz.pdb"
  "test_comparison_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comparison_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
