# Empty dependencies file for test_comparison_fuzz.
# This may be replaced when dependencies are built.
