file(REMOVE_RECURSE
  "CMakeFiles/test_fast_dtw.dir/test_fast_dtw.cpp.o"
  "CMakeFiles/test_fast_dtw.dir/test_fast_dtw.cpp.o.d"
  "test_fast_dtw"
  "test_fast_dtw.pdb"
  "test_fast_dtw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fast_dtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
