# Empty compiler generated dependencies file for test_fast_dtw.
# This may be replaced when dependencies are built.
