#!/usr/bin/env bash
# End-to-end smoke test: build (if needed), run the quickstart example,
# run an instrumented highway simulation, and validate the emitted run
# report + span trace with tools/check_run_report (which applies the same
# voiceprint.run_report/v1 schema checks as the unit tests). The
# instrumented runs also emit §12 telemetry frame streams, validated with
# `check_run_report --telemetry` and rendered once through tools/vp_top.
#
#   scripts/smoke.sh [build-dir]       # default build dir: ./build
#
# Set SMOKE_ARTIFACT_DIR to keep the emitted reports, traces, telemetry
# streams and bench artefacts (CI uploads them); by default they live in
# a mktemp dir removed on exit.
#
# Wired into ctest as the `smoke` test (ctest passes its own binary dir).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

quickstart="$build_dir/examples/quickstart"
highway="$build_dir/examples/highway_sybil_sim"
streaming="$build_dir/examples/streaming_detection"
fleet="$build_dir/examples/fleet_detection"
stream_bench="$build_dir/bench/stream_throughput"
service_bench="$build_dir/bench/service_throughput"
chaos_bench="$build_dir/bench/chaos_detection"
complexity_bench="$build_dir/bench/sec6_complexity"
fusion_bench="$build_dir/bench/fusion_quality"
wire_bench="$build_dir/bench/wire_throughput"
ingest_server="$build_dir/tools/vp_ingest_server"
ingest_client="$build_dir/tools/vp_ingest_client"
checker="$build_dir/tools/check_run_report"
top="$build_dir/tools/vp_top"

if [[ ! -x "$quickstart" || ! -x "$highway" || ! -x "$streaming" \
      || ! -x "$fleet" || ! -x "$stream_bench" || ! -x "$service_bench" \
      || ! -x "$chaos_bench" || ! -x "$complexity_bench" \
      || ! -x "$fusion_bench" || ! -x "$wire_bench" \
      || ! -x "$ingest_server" || ! -x "$ingest_client" \
      || ! -x "$checker" || ! -x "$top" ]]; then
  echo "smoke: binaries missing, building in $build_dir"
  cmake -B "$build_dir" -S "$repo_root"
  cmake --build "$build_dir" -j --target quickstart highway_sybil_sim \
    streaming_detection fleet_detection stream_throughput \
    service_throughput chaos_detection sec6_complexity fusion_quality \
    wire_throughput vp_ingest_server vp_ingest_client \
    check_run_report vp_top
fi

if [[ -n "${SMOKE_ARTIFACT_DIR:-}" ]]; then
  mkdir -p "$SMOKE_ARTIFACT_DIR"
  tmp="$(cd "$SMOKE_ARTIFACT_DIR" && pwd)"
else
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
fi

echo "smoke: quickstart"
"$quickstart" > "$tmp/quickstart.out"
grep -q "flagged as Sybil attack" "$tmp/quickstart.out" || {
  echo "smoke: quickstart output missing detection summary"
  cat "$tmp/quickstart.out"
  exit 1
}

echo "smoke: instrumented highway_sybil_sim"
"$highway" --density 12 --sim-time 20 \
  --metrics-out "$tmp/report.json" --trace-out "$tmp/trace.jsonl" \
  --telemetry-out "$tmp/highway_telemetry.jsonl" \
  --openmetrics-out "$tmp/highway.om" \
  > "$tmp/highway.out"
grep -q "fleet average detection rate" "$tmp/highway.out" || {
  echo "smoke: highway_sybil_sim output missing fleet summary"
  cat "$tmp/highway.out"
  exit 1
}
grep -q "# EOF" "$tmp/highway.om" || {
  echo "smoke: highway_sybil_sim OpenMetrics snapshot not terminated"
  exit 1
}

echo "smoke: validating run report + trace + telemetry"
"$checker" "$tmp/report.json" --trace "$tmp/trace.jsonl" \
  --telemetry "$tmp/highway_telemetry.jsonl"

echo "smoke: streaming_detection (batch parity)"
"$streaming" --density 12 --duration 60 \
  --metrics-out "$tmp/stream_report.json" \
  --trace-out "$tmp/stream_trace.jsonl" \
  --telemetry-out "$tmp/stream_telemetry.jsonl" > "$tmp/streaming.out"
grep -q "streaming parity: OK" "$tmp/streaming.out" || {
  echo "smoke: streaming_detection did not report batch parity"
  cat "$tmp/streaming.out"
  exit 1
}

echo "smoke: stream_throughput --quick"
"$stream_bench" --quick --duration 25 --out "$tmp/BENCH_stream.json" \
  > "$tmp/stream_bench.out"

echo "smoke: validating streaming report + bench artefact + telemetry"
"$checker" "$tmp/stream_report.json" --trace "$tmp/stream_trace.jsonl" \
  --require stream.beacons_ingested --require stream.rounds \
  --stream-bench "$tmp/BENCH_stream.json" \
  --telemetry "$tmp/stream_telemetry.jsonl"

echo "smoke: vp_top --once over the streaming telemetry"
"$top" --once "$tmp/stream_telemetry.jsonl" > "$tmp/vp_top.out"
grep -q "stream.beacons_ingested" "$tmp/vp_top.out" || {
  echo "smoke: vp_top did not render the throughput table"
  cat "$tmp/vp_top.out"
  exit 1
}

echo "smoke: fleet_detection --fuse (multi-session + fusion parity)"
"$fleet" --density 12 --sim-time 40 --sessions 3 --fuse \
  --metrics-out "$tmp/fleet_report.json" \
  --trace-out "$tmp/fleet_trace.jsonl" \
  --telemetry-out "$tmp/fleet_telemetry.jsonl" > "$tmp/fleet.out"
grep -q "fleet parity: OK" "$tmp/fleet.out" || {
  echo "smoke: fleet_detection did not report parity"
  cat "$tmp/fleet.out"
  exit 1
}
grep -q "fusion parity: OK" "$tmp/fleet.out" || {
  echo "smoke: fleet_detection --fuse did not report fusion parity"
  cat "$tmp/fleet.out"
  exit 1
}

echo "smoke: service_throughput --quick"
"$service_bench" --quick --duration 25 --out "$tmp/BENCH_service.json" \
  > "$tmp/service_bench.out"

echo "smoke: validating fleet report + service bench artefact + telemetry"
"$checker" "$tmp/fleet_report.json" --trace "$tmp/fleet_trace.jsonl" \
  --require service.beacons_ingested --require service.rounds_executed \
  --require fusion.rounds_delivered --require fusion.epochs_closed \
  --service-bench "$tmp/BENCH_service.json" \
  --telemetry "$tmp/fleet_telemetry.jsonl"

echo "smoke: fusion_quality --quick (corroboration accuracy sweep)"
"$fusion_bench" --quick --out "$tmp/BENCH_fusion.json" \
  > "$tmp/fusion_bench.out"
grep -q "fusion_quality: OK" "$tmp/fusion_bench.out" || {
  echo "smoke: fusion_quality did not report success"
  cat "$tmp/fusion_bench.out"
  exit 1
}

echo "smoke: validating fusion bench artefact"
"$checker" --fusion-bench "$tmp/BENCH_fusion.json"

echo "smoke: streaming_detection --kill-at (checkpoint/restore parity)"
"$streaming" --density 12 --sim-time 60 --kill-at 30 > "$tmp/killed.out"
grep -q "killed and restored engine" "$tmp/killed.out" || {
  echo "smoke: streaming_detection --kill-at did not kill/restore"
  cat "$tmp/killed.out"
  exit 1
}
grep -q "streaming parity: OK" "$tmp/killed.out" || {
  echo "smoke: parity lost across kill/restore"
  cat "$tmp/killed.out"
  exit 1
}

echo "smoke: streaming_detection --cond --kill-at (conditioned restore parity)"
"$streaming" --density 12 --sim-time 60 --cond --kill-at 30 \
  > "$tmp/conditioned.out"
grep -q "conditioned parity: OK" "$tmp/conditioned.out" || {
  echo "smoke: conditioned parity lost across kill/restore"
  cat "$tmp/conditioned.out"
  exit 1
}

echo "smoke: chaos_detection --quick (fault sweep + kill/restore cycles)"
"$chaos_bench" --quick --out "$tmp/BENCH_chaos.json" \
  --metrics-out "$tmp/chaos_report.json" > "$tmp/chaos.out"
grep -q "chaos: OK" "$tmp/chaos.out" || {
  echo "smoke: chaos_detection did not report success"
  cat "$tmp/chaos.out"
  exit 1
}
grep -q "chaos: collusion held" "$tmp/chaos.out" || {
  echo "smoke: chaos_detection did not run the collusion regression"
  cat "$tmp/chaos.out"
  exit 1
}

echo "smoke: validating chaos report + bench artefact"
"$checker" "$tmp/chaos_report.json" \
  --require fault.dropped --require fault.flood_injected \
  --require fault.rssi_non_finite \
  --require stream.shed_invalid.rssi_non_finite \
  --require stream.shed_invalid.time_negative \
  --require cond.offered --require cond.passed --require cond.rejected \
  --chaos-bench "$tmp/BENCH_chaos.json"

echo "smoke: streaming_detection --prune --simd (cascade parity)"
"$streaming" --density 12 --duration 60 --prune --simd \
  > "$tmp/streaming_pruned.out"
grep -q "streaming parity: OK" "$tmp/streaming_pruned.out" || {
  echo "smoke: streaming_detection --prune lost batch parity"
  cat "$tmp/streaming_pruned.out"
  exit 1
}

echo "smoke: wire ingest server + client over loopback TCP"
rm -f "$tmp/vp.port"
"$ingest_server" --port 0 --port-file "$tmp/vp.port" \
  --expect-connections 2 --max-seconds 60 \
  --telemetry-out "$tmp/wire_telemetry.jsonl" > "$tmp/wire_server.out" &
server_pid=$!
if ! "$ingest_client" --port-file "$tmp/vp.port" --connections 2 \
    --sessions 4 --identities 4 --rate 10 --duration 10 \
    > "$tmp/wire_client.out"; then
  echo "smoke: vp_ingest_client failed"
  cat "$tmp/wire_client.out"
  kill "$server_pid" 2>/dev/null || true
  exit 1
fi
if ! wait "$server_pid"; then
  echo "smoke: vp_ingest_server exited with failure (timeout or alerts)"
  cat "$tmp/wire_server.out"
  exit 1
fi
grep -q "0 invalid, 0 backpressure" "$tmp/wire_server.out" || {
  echo "smoke: vp_ingest_server shed frames on a clean stream"
  cat "$tmp/wire_server.out"
  exit 1
}
grep -q "0 health alerts" "$tmp/wire_server.out" || {
  echo "smoke: vp_ingest_server raised health alerts"
  cat "$tmp/wire_server.out"
  exit 1
}

echo "smoke: validating wire telemetry stream"
"$checker" --telemetry "$tmp/wire_telemetry.jsonl"

echo "smoke: wire_throughput --quick"
"$wire_bench" --quick --out "$tmp/BENCH_wire.json" > "$tmp/wire_bench.out"

echo "smoke: validating wire bench artefact"
"$checker" --wire-bench "$tmp/BENCH_wire.json"

echo "smoke: sec6_complexity --quick (pruned-vs-exact bench artefact)"
"$complexity_bench" --quick --out "$tmp/BENCH_comparison.json" \
  --benchmark_filter=SkipAll > "$tmp/complexity.out"

echo "smoke: validating comparison bench artefact"
"$checker" --comparison-bench "$tmp/BENCH_comparison.json"

echo "smoke: OK"
