#!/usr/bin/env bash
# End-to-end smoke test: build (if needed), run the quickstart example,
# run an instrumented highway simulation, and validate the emitted run
# report + span trace with tools/check_run_report (which applies the same
# voiceprint.run_report/v1 schema checks as the unit tests).
#
#   scripts/smoke.sh [build-dir]       # default build dir: ./build
#
# Wired into ctest as the `smoke` test (ctest passes its own binary dir).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

quickstart="$build_dir/examples/quickstart"
highway="$build_dir/examples/highway_sybil_sim"
streaming="$build_dir/examples/streaming_detection"
stream_bench="$build_dir/bench/stream_throughput"
checker="$build_dir/tools/check_run_report"

if [[ ! -x "$quickstart" || ! -x "$highway" || ! -x "$streaming" \
      || ! -x "$stream_bench" || ! -x "$checker" ]]; then
  echo "smoke: binaries missing, building in $build_dir"
  cmake -B "$build_dir" -S "$repo_root"
  cmake --build "$build_dir" -j --target quickstart highway_sybil_sim \
    streaming_detection stream_throughput check_run_report
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "smoke: quickstart"
"$quickstart" > "$tmp/quickstart.out"
grep -q "flagged as Sybil attack" "$tmp/quickstart.out" || {
  echo "smoke: quickstart output missing detection summary"
  cat "$tmp/quickstart.out"
  exit 1
}

echo "smoke: instrumented highway_sybil_sim"
"$highway" --density 12 --sim-time 20 \
  --metrics-out "$tmp/report.json" --trace-out "$tmp/trace.jsonl" \
  > "$tmp/highway.out"
grep -q "fleet average detection rate" "$tmp/highway.out" || {
  echo "smoke: highway_sybil_sim output missing fleet summary"
  cat "$tmp/highway.out"
  exit 1
}

echo "smoke: validating run report + trace"
"$checker" "$tmp/report.json" --trace "$tmp/trace.jsonl"

echo "smoke: streaming_detection (batch parity)"
"$streaming" --density 12 --duration 60 \
  --metrics-out "$tmp/stream_report.json" \
  --trace-out "$tmp/stream_trace.jsonl" > "$tmp/streaming.out"
grep -q "streaming parity: OK" "$tmp/streaming.out" || {
  echo "smoke: streaming_detection did not report batch parity"
  cat "$tmp/streaming.out"
  exit 1
}

echo "smoke: stream_throughput --quick"
"$stream_bench" --quick --duration 25 --out "$tmp/BENCH_stream.json" \
  > "$tmp/stream_bench.out"

echo "smoke: validating streaming report + bench artefact"
"$checker" "$tmp/stream_report.json" --trace "$tmp/stream_trace.jsonl" \
  --require stream.beacons_ingested --require stream.rounds \
  --stream-bench "$tmp/BENCH_stream.json"

echo "smoke: OK"
