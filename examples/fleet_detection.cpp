// Fleet mode demo (DESIGN.md §9): many observers' beacon streams
// multiplexed through one sharded service::DetectionService.
//
// Builds and runs the simulated VANET, then replays N observers'
// receptions — merged into a single arrival-ordered fleet stream — through
// the service, which hosts one stream::StreamEngine per observer session
// and batches due confirmation rounds across sessions onto the thread
// pool. Every session's rounds are cross-checked against a standalone
// StreamEngine fed the same per-observer stream: suspect sets, pair
// distances and densities must match bit for bit, for every combination
// of shards ∈ {1, 4} × threads ∈ {0, 1, 4}. Exit status is non-zero on
// any divergence.
//
//   ./build/examples/fleet_detection --density 15 --sessions 6
//   ./build/examples/fleet_detection --density 12 --sim-time 40 --sessions 3
//
// Pass --metrics-out / --trace-out for a run report with the service.*
// metrics (admission, round scheduling, pump latency), and
// --telemetry-out for the continuous frame stream with per-shard round
// latency and live conservation-law checks (DESIGN.md §12).
#include <algorithm>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/detector.h"
#include "fusion/engine.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "service/service.h"
#include "sim/replay_source.h"
#include "sim/runner.h"
#include "sim/world.h"
#include "stream/engine.h"

namespace {

using namespace vp;

// Everything the fusion layer produces for one run: the closed epochs in
// order plus the end-of-run trust scores and counters. Compared bitwise
// (no epsilon) across the shard/thread grid — the fusion determinism
// claim is exactly that these are invariant under delivery interleaving.
struct FusionOutcome {
  std::vector<fusion::FusedEpoch> epochs;
  std::map<std::uint64_t, double> identity_trust;
  std::map<std::uint64_t, double> observer_trust;
  fusion::FusionEngine::Stats stats;
};

bool verdicts_identical(const fusion::FusedVerdict& a,
                        const fusion::FusedVerdict& b) {
  return a.id == b.id && a.accused == b.accused &&
         a.accuse_weight == b.accuse_weight &&    // bitwise, no epsilon
         a.total_weight == b.total_weight && a.voters == b.voters &&
         a.accusations == b.accusations;
}

bool outcomes_identical(const FusionOutcome& a, const FusionOutcome& b) {
  if (a.epochs.size() != b.epochs.size()) return false;
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    const fusion::FusedEpoch& ea = a.epochs[i];
    const fusion::FusedEpoch& eb = b.epochs[i];
    if (ea.index != eb.index || ea.start_s != eb.start_s ||
        ea.end_s != eb.end_s || ea.rounds != eb.rounds ||
        ea.max_round_id != eb.max_round_id ||
        ea.verdicts.size() != eb.verdicts.size()) {
      return false;
    }
    for (std::size_t v = 0; v < ea.verdicts.size(); ++v) {
      if (!verdicts_identical(ea.verdicts[v], eb.verdicts[v])) return false;
    }
  }
  const fusion::FusionEngine::Stats& sa = a.stats;
  const fusion::FusionEngine::Stats& sb = b.stats;
  return a.identity_trust == b.identity_trust &&
         a.observer_trust == b.observer_trust &&
         sa.rounds_delivered == sb.rounds_delivered &&
         sa.rounds_fused == sb.rounds_fused &&
         sa.rounds_expired == sb.rounds_expired &&
         sa.epochs_closed == sb.epochs_closed &&
         sa.votes_cast == sb.votes_cast &&
         sa.verdicts_fused == sb.verdicts_fused &&
         sa.accusations_fused == sb.accusations_fused;
}

bool rounds_identical(const stream::StreamRound& a,
                      const stream::StreamRound& b) {
  if (a.round_id != b.round_id || a.time_s != b.time_s ||
      a.density_per_km != b.density_per_km ||
      a.identities_heard != b.identities_heard || a.suspects != b.suspects ||
      a.pairs.size() != b.pairs.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    if (a.pairs[i].a != b.pairs[i].a || a.pairs[i].b != b.pairs[i].b ||
        a.pairs[i].comparable != b.pairs[i].comparable ||
        a.pairs[i].raw != b.pairs[i].raw ||              // bitwise, no epsilon
        a.pairs[i].normalized != b.pairs[i].normalized) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const RunFlags run_flags = parse_run_flags(args);
  obs::RunSession session(args.program_name(), run_flags.metrics_out,
                          run_flags.trace_out);
  obs::HealthMonitor monitor = obs::HealthMonitor::with_default_invariants();
  obs::TelemetryExporter telemetry(obs::telemetry_config_from_flags(run_flags));
  if (telemetry.active()) telemetry.set_monitor(&monitor);

  sim::ScenarioConfig config;
  config.density_per_km = args.get_double("density", 15.0);
  config.seed = args.get_seed("seed", 5);
  config.sim_time_s = args.get_double("sim-time", 60.0);

  std::cout << config.describe() << "\nrunning...\n";
  sim::World world(config);
  world.run();

  const std::vector<NodeId> normals = world.normal_node_ids();
  const std::size_t session_count = std::min<std::size_t>(
      static_cast<std::size_t>(args.get_int("sessions", 6)), normals.size());
  const std::vector<NodeId> observers(normals.begin(),
                                      normals.begin() + session_count);
  const double horizon = config.sim_time_s + 1.0;

  // The fleet's receptions in arrival order: every observer's log merged
  // into one stream keyed (time, observer, identity) — the interleaving a
  // shared ingestion front-end would see. sim::replay_from_world is the
  // single source of this stream for the example, the benches and the
  // wire client, so all paths replay identical sequences.
  const std::vector<sim::FleetBeacon> fleet =
      sim::replay_from_world(world, observers, horizon, 1);

  stream::StreamEngineConfig engine_config;
  engine_config.observation_time_s = config.observation_time_s;
  engine_config.round_period_s = config.detection_period_s;
  engine_config.density_estimation_period_s =
      config.density_estimation_period_s;
  engine_config.max_transmission_range_m = config.max_transmission_range_m;
  engine_config.min_samples = 4;  // World::observe's default
  engine_config.condition_ingest = run_flags.cond;
  engine_config.detector =
      core::with_run_flags(core::tuned_simulation_options(1), run_flags);
  const double end_time = world.detection_times().back();

  // Reference: each observer through its own standalone StreamEngine
  // (PR 3's engine, untouched). The service must reproduce these rounds
  // bit for bit at every shard/thread count.
  std::map<NodeId, std::vector<stream::StreamRound>> reference;
  for (NodeId observer : observers) {
    stream::StreamEngine engine(engine_config);
    engine.set_round_callback([&, observer](const stream::StreamRound& round) {
      reference[observer].push_back(round);
    });
    for (const sim::FleetBeacon& rx : fleet) {
      if (rx.observer != observer) continue;
      engine.ingest(rx.id, rx.time_s, rx.rssi_dbm);
    }
    engine.advance_to(end_time);
  }
  std::size_t reference_rounds = 0;
  for (const auto& [observer, rounds] : reference) {
    reference_rounds += rounds.size();
  }

  std::cout << "\nfleet of " << observers.size() << " observers, "
            << fleet.size() << " beacons, " << reference_rounds
            << " reference rounds\n\n";

  // --fuse: additionally attach a fusion::FusionEngine to every config
  // and require its entire output — fused epochs, trust scores, counters
  // — to be bit-identical across the grid (DESIGN.md §13).
  const bool fuse = args.get_bool("fuse", false);
  fusion::FusionConfig fusion_config;
  fusion_config.epoch_period_s = config.detection_period_s;

  const std::vector<std::size_t> shard_counts = {1, 4};
  const std::vector<std::size_t> thread_counts = {0, 1, 4};
  bool all_ok = true;
  bool fusion_ok = true;
  std::optional<FusionOutcome> fusion_reference;
  std::size_t total_checked = 0;
  std::size_t total_matched = 0;
  Table table(fuse ? std::vector<std::string>{"shards", "threads", "rounds",
                                              "matched", "parity", "fusion"}
                   : std::vector<std::string>{"shards", "threads", "rounds",
                                              "matched", "parity"});

  for (std::size_t shards : shard_counts) {
    for (std::size_t threads : thread_counts) {
      service::ServiceConfig service_config;
      service_config.shards = shards;
      service_config.threads = threads;
      service_config.max_sessions = observers.size() + 4;
      service_config.engine = engine_config;

      service::DetectionService fleet_service(service_config);
      std::map<NodeId, std::vector<stream::StreamRound>> streamed;
      fleet_service.set_round_callback(
          [&](const service::SessionRound& round) {
            telemetry.on_round(round.round.time_s);
            streamed[static_cast<NodeId>(round.session)].push_back(
                round.round);
          });

      std::optional<fusion::FusionEngine> fusion_engine;
      FusionOutcome outcome;
      if (fuse) {
        fusion_engine.emplace(fusion_config);
        fusion_engine->set_epoch_callback(
            [&](const fusion::FusedEpoch& epoch) {
              outcome.epochs.push_back(epoch);
            });
        fleet_service.add_round_listener(
            [&](const service::SessionRound& round) {
              fusion_engine->observe(round);
            });
      }

      for (const sim::FleetBeacon& rx : fleet) {
        fleet_service.ingest(static_cast<service::SessionId>(rx.observer),
                             rx.id, rx.time_s, rx.rssi_dbm);
        if (fusion_engine) fusion_engine->advance(rx.time_s);
        telemetry.sample(rx.time_s);
      }
      fleet_service.advance_all_to(end_time);
      if (fusion_engine) {
        fusion_engine->advance(end_time);
        fusion_engine->finish();
        outcome.identity_trust = fusion_engine->identity_trust().scores();
        outcome.observer_trust = fusion_engine->observer_trust().scores();
        outcome.stats = fusion_engine->stats();
      }
      telemetry.sample(end_time);

      std::size_t checked = 0;
      std::size_t matched = 0;
      bool counts_ok = true;
      for (NodeId observer : observers) {
        const std::vector<stream::StreamRound>& expected =
            reference[observer];
        const std::vector<stream::StreamRound>& got = streamed[observer];
        counts_ok = counts_ok && got.size() == expected.size();
        for (std::size_t i = 0; i < expected.size(); ++i) {
          ++checked;
          if (i < got.size() && rounds_identical(got[i], expected[i])) {
            ++matched;
          }
        }
      }
      // Graceful shutdown: close every session so the cumulative session
      // accounting (opened = closed + evicted + active) stays exact
      // across the shard/thread configs sharing one registry.
      for (NodeId observer : observers) {
        fleet_service.close(static_cast<service::SessionId>(observer));
      }
      const bool ok =
          counts_ok && checked == matched && checked == reference_rounds;
      all_ok = all_ok && ok;
      total_checked += checked;
      total_matched += matched;
      std::vector<std::string> row{std::to_string(shards),
                                   std::to_string(threads),
                                   std::to_string(checked),
                                   std::to_string(matched),
                                   ok ? "ok" : "MISMATCH"};
      if (fuse) {
        bool config_fusion_ok = true;
        if (!fusion_reference.has_value()) {
          fusion_reference = std::move(outcome);
        } else {
          config_fusion_ok = outcomes_identical(*fusion_reference, outcome);
        }
        fusion_ok = fusion_ok && config_fusion_ok;
        row.push_back(config_fusion_ok ? "ok" : "MISMATCH");
      }
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
  telemetry.finish(end_time);

  if (all_ok) {
    std::cout << "\nfleet parity: OK — every session bit-identical to its "
              << "standalone engine across " << shard_counts.size() << "x"
              << thread_counts.size() << " shard/thread configs\n";
  } else {
    std::cout << "\nfleet parity: MISMATCH — " << total_matched << "/"
              << total_checked << " rounds matched\n";
  }
  if (fuse) {
    if (fusion_ok && fusion_reference.has_value()) {
      std::cout << "fusion parity: OK — " << fusion_reference->epochs.size()
                << " fused epochs, " << fusion_reference->identity_trust.size()
                << " identity and " << fusion_reference->observer_trust.size()
                << " observer trust scores bit-identical across all configs\n";
    } else {
      std::cout << "fusion parity: MISMATCH\n";
    }
  }

  if (session.active()) {
    obs::json::Object extra;
    extra.emplace("sessions", obs::json::Value(observers.size()));
    extra.emplace("beacons", obs::json::Value(fleet.size()));
    extra.emplace("reference_rounds", obs::json::Value(reference_rounds));
    extra.emplace("parity_rounds_checked", obs::json::Value(total_checked));
    extra.emplace("parity_rounds_matched", obs::json::Value(total_matched));
    if (fuse && fusion_reference.has_value()) {
      extra.emplace("fused_epochs",
                    obs::json::Value(fusion_reference->epochs.size()));
      extra.emplace("fusion_parity_ok", obs::json::Value(fusion_ok));
    }
    session.set_extra(obs::json::Value(std::move(extra)));
    if (telemetry.active()) session.merge_extra("health", monitor.summary());
  }
  return all_ok && fusion_ok ? 0 : 1;
}
