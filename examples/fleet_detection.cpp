// Fleet mode demo (DESIGN.md §9): many observers' beacon streams
// multiplexed through one sharded service::DetectionService.
//
// Builds and runs the simulated VANET, then replays N observers'
// receptions — merged into a single arrival-ordered fleet stream — through
// the service, which hosts one stream::StreamEngine per observer session
// and batches due confirmation rounds across sessions onto the thread
// pool. Every session's rounds are cross-checked against a standalone
// StreamEngine fed the same per-observer stream: suspect sets, pair
// distances and densities must match bit for bit, for every combination
// of shards ∈ {1, 4} × threads ∈ {0, 1, 4}. Exit status is non-zero on
// any divergence.
//
//   ./build/examples/fleet_detection --density 15 --sessions 6
//   ./build/examples/fleet_detection --density 12 --sim-time 40 --sessions 3
//
// Pass --metrics-out / --trace-out for a run report with the service.*
// metrics (admission, round scheduling, pump latency), and
// --telemetry-out for the continuous frame stream with per-shard round
// latency and live conservation-law checks (DESIGN.md §12).
#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/detector.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "service/service.h"
#include "sim/runner.h"
#include "sim/world.h"
#include "stream/engine.h"

namespace {

using namespace vp;

struct FleetRx {
  double time_s;
  NodeId observer;
  IdentityId id;
  double rssi_dbm;
};

bool rounds_identical(const stream::StreamRound& a,
                      const stream::StreamRound& b) {
  if (a.round_id != b.round_id || a.time_s != b.time_s ||
      a.density_per_km != b.density_per_km ||
      a.identities_heard != b.identities_heard || a.suspects != b.suspects ||
      a.pairs.size() != b.pairs.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    if (a.pairs[i].a != b.pairs[i].a || a.pairs[i].b != b.pairs[i].b ||
        a.pairs[i].comparable != b.pairs[i].comparable ||
        a.pairs[i].raw != b.pairs[i].raw ||              // bitwise, no epsilon
        a.pairs[i].normalized != b.pairs[i].normalized) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const RunFlags run_flags = parse_run_flags(args);
  obs::RunSession session(args.program_name(), run_flags.metrics_out,
                          run_flags.trace_out);
  obs::HealthMonitor monitor = obs::HealthMonitor::with_default_invariants();
  obs::TelemetryExporter telemetry(obs::telemetry_config_from_flags(run_flags));
  if (telemetry.active()) telemetry.set_monitor(&monitor);

  sim::ScenarioConfig config;
  config.density_per_km = args.get_double("density", 15.0);
  config.seed = args.get_seed("seed", 5);
  config.sim_time_s = args.get_double("sim-time", 60.0);

  std::cout << config.describe() << "\nrunning...\n";
  sim::World world(config);
  world.run();

  const std::vector<NodeId> normals = world.normal_node_ids();
  const std::size_t session_count = std::min<std::size_t>(
      static_cast<std::size_t>(args.get_int("sessions", 6)), normals.size());
  const std::vector<NodeId> observers(normals.begin(),
                                      normals.begin() + session_count);
  const double horizon = config.sim_time_s + 1.0;

  // The fleet's receptions in arrival order: every observer's log merged
  // into one stream keyed (time, observer, identity) — the interleaving a
  // shared ingestion front-end would see.
  std::vector<FleetRx> fleet;
  for (NodeId observer : observers) {
    const sim::RssiLog& log = world.node(observer).log();
    for (IdentityId id : log.identities_heard(0.0, horizon, 1)) {
      for (const sim::BeaconRecord& r : log.records(id, 0.0, horizon)) {
        fleet.push_back({r.time_s, observer, id, r.rssi_dbm});
      }
    }
  }
  std::sort(fleet.begin(), fleet.end(), [](const FleetRx& a, const FleetRx& b) {
    if (a.time_s != b.time_s) return a.time_s < b.time_s;
    if (a.observer != b.observer) return a.observer < b.observer;
    return a.id < b.id;
  });

  stream::StreamEngineConfig engine_config;
  engine_config.observation_time_s = config.observation_time_s;
  engine_config.round_period_s = config.detection_period_s;
  engine_config.density_estimation_period_s =
      config.density_estimation_period_s;
  engine_config.max_transmission_range_m = config.max_transmission_range_m;
  engine_config.min_samples = 4;  // World::observe's default
  engine_config.detector =
      core::with_run_flags(core::tuned_simulation_options(1), run_flags);
  const double end_time = world.detection_times().back();

  // Reference: each observer through its own standalone StreamEngine
  // (PR 3's engine, untouched). The service must reproduce these rounds
  // bit for bit at every shard/thread count.
  std::map<NodeId, std::vector<stream::StreamRound>> reference;
  for (NodeId observer : observers) {
    stream::StreamEngine engine(engine_config);
    engine.set_round_callback([&, observer](const stream::StreamRound& round) {
      reference[observer].push_back(round);
    });
    for (const FleetRx& rx : fleet) {
      if (rx.observer != observer) continue;
      engine.ingest(rx.id, rx.time_s, rx.rssi_dbm);
    }
    engine.advance_to(end_time);
  }
  std::size_t reference_rounds = 0;
  for (const auto& [observer, rounds] : reference) {
    reference_rounds += rounds.size();
  }

  std::cout << "\nfleet of " << observers.size() << " observers, "
            << fleet.size() << " beacons, " << reference_rounds
            << " reference rounds\n\n";

  const std::vector<std::size_t> shard_counts = {1, 4};
  const std::vector<std::size_t> thread_counts = {0, 1, 4};
  bool all_ok = true;
  std::size_t total_checked = 0;
  std::size_t total_matched = 0;
  Table table({"shards", "threads", "rounds", "matched", "parity"});

  for (std::size_t shards : shard_counts) {
    for (std::size_t threads : thread_counts) {
      service::ServiceConfig service_config;
      service_config.shards = shards;
      service_config.threads = threads;
      service_config.max_sessions = observers.size() + 4;
      service_config.engine = engine_config;

      service::DetectionService fleet_service(service_config);
      std::map<NodeId, std::vector<stream::StreamRound>> streamed;
      fleet_service.set_round_callback(
          [&](const service::SessionRound& round) {
            telemetry.on_round(round.round.time_s);
            streamed[static_cast<NodeId>(round.session)].push_back(
                round.round);
          });

      for (const FleetRx& rx : fleet) {
        fleet_service.ingest(static_cast<service::SessionId>(rx.observer),
                             rx.id, rx.time_s, rx.rssi_dbm);
        telemetry.sample(rx.time_s);
      }
      fleet_service.advance_all_to(end_time);
      telemetry.sample(end_time);

      std::size_t checked = 0;
      std::size_t matched = 0;
      bool counts_ok = true;
      for (NodeId observer : observers) {
        const std::vector<stream::StreamRound>& expected =
            reference[observer];
        const std::vector<stream::StreamRound>& got = streamed[observer];
        counts_ok = counts_ok && got.size() == expected.size();
        for (std::size_t i = 0; i < expected.size(); ++i) {
          ++checked;
          if (i < got.size() && rounds_identical(got[i], expected[i])) {
            ++matched;
          }
        }
      }
      // Graceful shutdown: close every session so the cumulative session
      // accounting (opened = closed + evicted + active) stays exact
      // across the shard/thread configs sharing one registry.
      for (NodeId observer : observers) {
        fleet_service.close(static_cast<service::SessionId>(observer));
      }
      const bool ok =
          counts_ok && checked == matched && checked == reference_rounds;
      all_ok = all_ok && ok;
      total_checked += checked;
      total_matched += matched;
      table.add_row({std::to_string(shards), std::to_string(threads),
                     std::to_string(checked), std::to_string(matched),
                     ok ? "ok" : "MISMATCH"});
    }
  }
  table.print(std::cout);
  telemetry.finish(end_time);

  if (all_ok) {
    std::cout << "\nfleet parity: OK — every session bit-identical to its "
              << "standalone engine across " << shard_counts.size() << "x"
              << thread_counts.size() << " shard/thread configs\n";
  } else {
    std::cout << "\nfleet parity: MISMATCH — " << total_matched << "/"
              << total_checked << " rounds matched\n";
  }

  if (session.active()) {
    obs::json::Object extra;
    extra.emplace("sessions", obs::json::Value(observers.size()));
    extra.emplace("beacons", obs::json::Value(fleet.size()));
    extra.emplace("reference_rounds", obs::json::Value(reference_rounds));
    extra.emplace("parity_rounds_checked", obs::json::Value(total_checked));
    extra.emplace("parity_rounds_matched", obs::json::Value(total_matched));
    session.set_extra(obs::json::Value(std::move(extra)));
    if (telemetry.active()) session.merge_extra("health", monitor.summary());
  }
  return all_ok ? 0 : 1;
}
