// Online streaming detection demo (DESIGN.md §8): the Table V highway
// scenario served beacon-by-beacon instead of as an offline batch.
//
// Builds and runs the simulated VANET, then replays one observer's
// receptions in arrival order through stream::StreamEngine — bounded
// per-identity ring buffers, staleness expiry, explicit load shedding —
// which runs a confirmation round every detection period. Each round is
// checked against core::VoiceprintDetector on the batch-cut window: the
// suspect sets and pair distances must match bit for bit.
//
//   ./build/examples/streaming_detection --density 30 --seed 5
//   ./build/examples/streaming_detection --rate-cap 50 --ring 64   # overload
//   ./build/examples/streaming_detection --kill-at 30               # restart
//
// --kill-at T simulates an OBU reboot: at the first beacon at or past
// stream time T the engine is checkpointed through the wire format
// (encode + decode), destroyed, and restored (DESIGN.md §10). Parity
// against the batch detector must still hold — restore is bit-exact.
//
// --cond turns on the §15 fixed-point conditioning front. The batch
// detector reads the raw log, so batch parity is replaced by conditioned
// parity: the rounds must match an uninterrupted conditioned engine
// bit for bit (combine with --kill-at to prove the VPCK v3 checkpoint
// restores the filter state mid-stream).
//
// Pass --metrics-out / --trace-out for a run report with the stream.*
// metrics (ingest and shed counters, ring evictions, round latency), and
// --telemetry-out for the continuous frame stream (DESIGN.md §12) with
// the HealthMonitor's conservation-law checks on every frame. Across a
// --kill-at reboot the same exporter keeps running, so frame sequence
// numbers stay continuous — check_run_report --telemetry verifies it.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <optional>
#include <set>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/detector.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "sim/runner.h"
#include "sim/world.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const RunFlags run_flags = parse_run_flags(args);
  obs::RunSession session(args.program_name(), run_flags.metrics_out,
                          run_flags.trace_out);
  obs::HealthMonitor monitor = obs::HealthMonitor::with_default_invariants();
  obs::TelemetryExporter telemetry(obs::telemetry_config_from_flags(run_flags));
  if (telemetry.active()) telemetry.set_monitor(&monitor);

  sim::ScenarioConfig config;
  config.density_per_km = args.get_double("density", 30.0);
  config.seed = args.get_seed("seed", 5);
  config.sim_time_s = args.get_double("sim-time", 60.0);

  std::cout << config.describe() << "\nrunning...\n";
  sim::World world(config);
  world.run();

  const NodeId observer = world.normal_node_ids().front();
  const sim::RssiLog& log = world.node(observer).log();
  const double horizon = config.sim_time_s + 1.0;

  // The observer's receptions in arrival order: merge the per-identity
  // logs by (time, id) — exactly the beacon stream its radio delivered.
  struct Rx {
    double time_s;
    IdentityId id;
    double rssi_dbm;
  };
  std::vector<Rx> beacons;
  for (IdentityId id : log.identities_heard(0.0, horizon, 1)) {
    for (const sim::BeaconRecord& r : log.records(id, 0.0, horizon)) {
      beacons.push_back({r.time_s, id, r.rssi_dbm});
    }
  }
  std::sort(beacons.begin(), beacons.end(), [](const Rx& a, const Rx& b) {
    return a.time_s != b.time_s ? a.time_s < b.time_s : a.id < b.id;
  });

  stream::StreamEngineConfig engine_config;
  engine_config.observation_time_s = config.observation_time_s;
  engine_config.round_period_s = config.detection_period_s;
  engine_config.density_estimation_period_s =
      config.density_estimation_period_s;
  engine_config.max_transmission_range_m = config.max_transmission_range_m;
  engine_config.min_samples = 4;  // World::observe's default
  engine_config.ring_capacity =
      static_cast<std::size_t>(args.get_int("ring", 256));
  engine_config.max_identities =
      static_cast<std::size_t>(args.get_int("max-identities", 512));
  engine_config.max_ingest_rate_hz = args.get_double("rate-cap", 0.0);
  engine_config.condition_ingest = run_flags.cond;
  engine_config.detector = core::with_run_flags(
      core::tuned_simulation_options(run_flags.threads), run_flags);

  const double kill_at = args.get_double("kill-at", -1.0);

  std::optional<stream::StreamEngine> engine;
  engine.emplace(engine_config);
  core::VoiceprintDetector batch(core::with_run_flags(
      core::tuned_simulation_options(run_flags.threads), run_flags));

  // Check every round against the batch detector on the same window as it
  // completes. Shedding (a rate cap, a small ring) breaks parity by
  // design — the engine then sees less than the unbounded log did. The
  // conditioning front breaks batch parity too (the batch detector reads
  // the raw log); --cond runs its own restore-parity check below instead.
  const bool shedding_configured =
      engine_config.max_ingest_rate_hz > 0.0 || args.has("ring") ||
      args.has("max-identities");
  const bool batch_parity = !shedding_configured && !run_flags.cond;
  std::size_t rounds_checked = 0;
  std::size_t rounds_matched = 0;
  std::vector<stream::StreamRound> rounds;
  const auto on_round = [&](const stream::StreamRound& round) {
    telemetry.on_round(round.time_s);
    rounds.push_back(round);
    if (!batch_parity) return;
    const sim::ObservationWindow window =
        world.observe(observer, round.time_s, engine_config.min_samples);
    const std::vector<IdentityId> expected = batch.detect_window(window);
    ++rounds_checked;
    if (expected == round.suspects &&
        window.estimated_density_per_km == round.density_per_km) {
      ++rounds_matched;
    }
  };
  engine->set_round_callback(on_round);

  bool killed = false;
  for (const Rx& rx : beacons) {
    engine->ingest(rx.id, rx.time_s, rx.rssi_dbm);
    telemetry.sample(rx.time_s);
    if (kill_at >= 0.0 && !killed && rx.time_s >= kill_at) {
      // Reboot: checkpoint through the wire format, destroy, restore.
      const std::vector<std::uint8_t> bytes =
          stream::encode_checkpoint(engine->checkpoint());
      engine.reset();
      stream::EngineCheckpoint restored;
      std::string error;
      if (!stream::decode_checkpoint(bytes, &restored, &error)) {
        std::cerr << "checkpoint decode failed: " << error << "\n";
        return 1;
      }
      engine.emplace(engine_config, restored);
      engine->set_round_callback(on_round);
      killed = true;
      std::cout << "killed and restored engine at t=" << rx.time_s << " ("
                << bytes.size() << "-byte checkpoint)\n";
    }
  }
  engine->advance_to(world.detection_times().back());
  telemetry.finish(world.detection_times().back());

  // --cond parity: the batch detector reads the raw log, so it cannot be
  // the reference for a conditioned stream. Instead an uninterrupted
  // conditioned engine replays the same beacons — its rounds must be
  // bit-identical to the served engine's, which with --kill-at proves
  // the VPCK v3 checkpoint restores the Hampel/EMA state mid-filter.
  std::size_t cond_checked = 0;
  std::size_t cond_matched = 0;
  if (run_flags.cond) {
    stream::StreamEngine reference(engine_config);
    std::vector<stream::StreamRound> reference_rounds;
    reference.set_round_callback(
        [&reference_rounds](const stream::StreamRound& round) {
          reference_rounds.push_back(round);
        });
    for (const Rx& rx : beacons) {
      reference.ingest(rx.id, rx.time_s, rx.rssi_dbm);
    }
    reference.advance_to(world.detection_times().back());
    cond_checked = std::max(reference_rounds.size(), rounds.size());
    for (std::size_t i = 0;
         i < std::min(reference_rounds.size(), rounds.size()); ++i) {
      const stream::StreamRound& a = reference_rounds[i];
      const stream::StreamRound& b = rounds[i];
      bool pairs_equal = a.pairs.size() == b.pairs.size();
      for (std::size_t j = 0; pairs_equal && j < a.pairs.size(); ++j) {
        pairs_equal = a.pairs[j].raw == b.pairs[j].raw;
      }
      if (a.time_s == b.time_s && a.suspects == b.suspects && pairs_equal) {
        ++cond_matched;
      }
    }
  }

  std::cout << "\nstreamed " << beacons.size() << " beacons through observer "
            << observer << "; " << engine->stats().rounds
            << " confirmation rounds\n\n";
  Table table({"round t", "heard", "density", "suspects"});
  for (const stream::StreamRound& round : rounds) {
    std::string ids;
    for (IdentityId id : round.suspects) {
      if (!ids.empty()) ids += " ";
      ids += std::to_string(id);
    }
    table.add_row({Table::num(round.time_s, 0), std::to_string(
                       round.identities_heard),
                   Table::num(round.density_per_km, 1),
                   ids.empty() ? "-" : ids});
  }
  table.print(std::cout);

  if (engine->last_round()) {
    const stream::StreamRound& last = *engine->last_round();
    const std::set<IdentityId> flagged(last.suspects.begin(),
                                       last.suspects.end());
    std::cout << "\nlast round verdicts vs ground truth:\n";
    Table verdicts({"identity", "truth", "verdict"});
    const sim::ObservationWindow window =
        world.observe(observer, last.time_s, engine_config.min_samples);
    for (const sim::NeighborObservation& n : window.neighbors) {
      const auto& info = world.truth().info(n.id);
      const std::string truth = info.sybil ? "SYBIL"
                                : info.owner_malicious ? "malicious sender"
                                                       : "normal";
      verdicts.add_row({std::to_string(n.id), truth,
                        flagged.count(n.id) ? "flagged" : "-"});
    }
    verdicts.print(std::cout);
  }

  const stream::StreamEngine::Stats& stats = engine->stats();
  std::cout << "\nstream engine: ingested " << stats.beacons_ingested << "/"
            << stats.beacons_offered << " beacons (shed "
            << stats.beacons_shed_rate_limited << " rate-limited, "
            << stats.beacons_shed_identity_cap << " identity-cap, "
            << stats.beacons_shed_out_of_order << " out-of-order; "
            << stats.ring_evictions << " ring evictions), tracking "
            << engine->identities_tracked() << " identities\n";

  if (run_flags.cond) {
    if (cond_checked > 0 && cond_matched == cond_checked) {
      std::cout << "conditioned parity: OK — " << cond_matched << "/"
                << cond_checked << " rounds bit-identical to an "
                << "uninterrupted conditioned engine\n";
    } else {
      std::cout << "conditioned parity: MISMATCH — " << cond_matched << "/"
                << cond_checked << " rounds matched\n";
    }
  } else if (shedding_configured) {
    std::cout << "streaming parity: skipped (load shedding configured)\n";
  } else if (rounds_checked > 0 && rounds_matched == rounds_checked) {
    std::cout << "streaming parity: OK — " << rounds_matched << "/"
              << rounds_checked << " rounds bit-identical to the batch "
              << "detector\n";
  } else {
    std::cout << "streaming parity: MISMATCH — " << rounds_matched << "/"
              << rounds_checked << " rounds matched\n";
  }

  if (session.active()) {
    obs::json::Object extra;
    extra.emplace("beacons_offered", obs::json::Value(stats.beacons_offered));
    extra.emplace("beacons_ingested",
                  obs::json::Value(stats.beacons_ingested));
    extra.emplace("rounds", obs::json::Value(stats.rounds));
    extra.emplace("parity_rounds_checked", obs::json::Value(rounds_checked));
    extra.emplace("parity_rounds_matched", obs::json::Value(rounds_matched));
    session.set_extra(obs::json::Value(std::move(extra)));
    if (telemetry.active()) session.merge_extra("health", monitor.summary());
  }
  if (run_flags.cond) {
    return cond_checked > 0 && cond_matched == cond_checked ? 0 : 1;
  }
  return (shedding_configured || rounds_matched == rounds_checked) ? 0 : 1;
}
