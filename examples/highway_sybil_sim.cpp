// Full-stack demo: the Table V highway scenario end to end.
//
// Builds the 2 km simulated VANET (stochastic epoch mobility, 802.11p-style
// CSMA/CA beacons, dual-slope channel with per-radio-pair correlated
// shadowing), runs it, then lets one normal vehicle run Voiceprint and
// prints what it found vs ground truth.
//
//   ./build/examples/highway_sybil_sim --density 30 --seed 5
//
// Pass --metrics-out report.json and/or --trace-out trace.jsonl to get a
// structured run report (per-phase latency percentiles, per-pair DTW
// counters, thread-pool utilisation) and a JSONL span trace;
// --telemetry-out / --openmetrics-out add the §12 telemetry frame stream
// (a batch run emits its closing frame, health-checked) and a Prometheus
// text snapshot.
#include <iostream>
#include <set>

#include "common/cli.h"
#include "common/table.h"
#include "core/detector.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "sim/world.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const RunFlags run_flags = parse_run_flags(args);
  obs::RunSession session(args.program_name(), run_flags.metrics_out,
                          run_flags.trace_out);
  obs::HealthMonitor monitor = obs::HealthMonitor::with_default_invariants();
  obs::TelemetryExporter telemetry(obs::telemetry_config_from_flags(run_flags));
  if (telemetry.active()) telemetry.set_monitor(&monitor);

  sim::ScenarioConfig config;
  config.density_per_km = args.get_double("density", 30.0);
  config.seed = args.get_seed("seed", 5);
  config.sim_time_s = args.get_double("sim-time", 60.0);
  const std::size_t threads = run_flags.threads;

  std::cout << config.describe() << "\nrunning...\n";
  sim::World world(config);
  world.run();

  const sim::WorldStats& stats = world.stats();
  std::cout << "\nchannel statistics:\n"
            << "  frames sent        : " << stats.frames_sent << "\n"
            << "  frames received    : " << stats.frames_received << "\n"
            << "  below sensitivity  : " << stats.frames_below_sensitivity
            << "\n  collided           : " << stats.frames_collided << "\n"
            << "  half-duplex missed : " << stats.frames_half_duplex_missed
            << "\n  queue drops        : " << stats.beacon_queue_drops
            << "\n\n";

  // One observer's point of view.
  const NodeId observer = world.normal_node_ids().front();
  const double t = world.detection_times().back();
  const sim::ObservationWindow window = world.observe(observer, t);
  std::cout << "observer " << observer << " at t=" << t << " s heard "
            << window.neighbors.size() << " identities; Eq. 9 density "
            << Table::num(window.estimated_density_per_km, 1)
            << " vhls/km\n\n";

  core::VoiceprintDetector detector(core::with_run_flags(
      core::tuned_simulation_options(threads), run_flags));
  const auto flagged = detector.detect_window(window);
  const std::set<IdentityId> flagged_set(flagged.begin(), flagged.end());

  Table table({"identity", "truth", "verdict"});
  for (const sim::NeighborObservation& n : window.neighbors) {
    const auto& info = world.truth().info(n.id);
    const std::string truth = info.sybil ? "SYBIL"
                              : info.owner_malicious ? "malicious sender"
                                                     : "normal";
    table.add_row({std::to_string(n.id), truth,
                   flagged_set.count(n.id) ? "flagged" : "-"});
  }
  table.print(std::cout);

  // Fleet-wide averages (Eq. 12/13) over sampled observers and periods.
  core::VoiceprintDetector fleet_detector(core::with_run_flags(
      core::tuned_simulation_options(threads), run_flags));
  const sim::EvaluationResult result = sim::evaluate(
      world, fleet_detector, {.max_observers = 8, .threads = threads});
  std::cout << "\nfleet average detection rate      : "
            << Table::num(result.average_dr, 4)
            << "\nfleet average false positive rate : "
            << Table::num(result.average_fpr, 4) << "\n";

  telemetry.finish(t);
  if (session.active()) {
    session.set_extra(sim::evaluation_report_extra(result));
    if (telemetry.active()) session.merge_extra("health", monitor.summary());
  }
  return 0;
}
