// The full threshold-training pipeline, end to end (Section IV-C-3 /
// Fig. 10): run training scenarios, collect labelled windows, tune the
// density-dependent boundary under a false-positive budget, and deploy it
// on a fresh, unseen world.
//
//   ./build/examples/train_and_detect --budget 0.05 --eval-density 60
#include <iostream>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/detector.h"
#include "core/threshold.h"
#include "ml/lda.h"
#include "ml/metrics.h"
#include "sim/runner.h"
#include "sim/world.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const double budget = args.get_double("budget", 0.05);
  const double eval_density = args.get_double("eval-density", 60.0);
  const std::uint64_t seed = args.get_seed("seed", 404);

  // 1. Training runs at three densities (the paper trains across its
  //    density sweep; Section V-B-2 uses 5 runs per density — trimmed here
  //    for example runtime).
  std::cout << "1) running training scenarios...\n";
  ml::Dataset pairs;
  std::vector<core::LabeledWindow> windows;
  for (double density : {15.0, 45.0, 75.0}) {
    sim::ScenarioConfig config;
    config.density_per_km = density;
    config.seed = mix64(seed, static_cast<std::uint64_t>(density));
    sim::World world(config);
    world.run();
    core::TrainingOptions options;
    options.max_observers = 8;
    core::collect_training_points(world, options, pairs);
    core::collect_labeled_windows(world, options, windows);
    std::cout << "   density " << density << ": " << pairs.size()
              << " pairs, " << windows.size() << " windows so far\n";
  }

  // 2a. The paper's per-pair LDA boundary (for reference).
  const ml::LdaModel lda = ml::Lda::fit(pairs, 0.1);
  std::cout << "\n2) per-pair LDA (the paper's Fig. 10 method): k="
            << lda.boundary.k << " b=" << lda.boundary.b
            << " (AUC " << Table::num(ml::auc_lower_is_positive(pairs), 4)
            << ")\n";

  // 2b. The identity-level tuner (what Algorithm 1's pair-union actually
  //     needs — see EXPERIMENTS.md).
  core::BoundaryTuning tuning;
  tuning.fpr_budget = budget;
  const core::TunedBoundary tuned = core::tune_boundary(windows, tuning);
  std::cout << "   identity-level tuned boundary: k=" << tuned.boundary.k
            << " b=" << tuned.boundary.b << " votes=" << tuned.votes
            << "  (train DR " << Table::num(tuned.train_dr, 3) << ", FPR "
            << Table::num(tuned.train_fpr, 3) << ")\n";

  // 3. Deploy on a fresh world at an unseen density.
  std::cout << "\n3) deploying on an unseen density " << eval_density
            << " world...\n";
  sim::ScenarioConfig eval_config;
  eval_config.density_per_km = eval_density;
  eval_config.seed = mix64(seed, 999);
  sim::World eval_world(eval_config);
  eval_world.run();

  Table table({"detector", "DR", "FPR"});
  for (const auto& [name, boundary, votes] :
       {std::tuple<std::string, ml::LinearBoundary, std::size_t>{
            "per-pair LDA boundary", lda.boundary, 1},
        {"identity-level tuned boundary", tuned.boundary, tuned.votes}}) {
    core::VoiceprintOptions options;
    options.boundary = boundary;
    options.min_pair_votes = votes;
    core::VoiceprintDetector detector(options);
    const sim::EvaluationResult result =
        sim::evaluate(eval_world, detector, {.max_observers = 8});
    table.add_row({name, Table::num(result.average_dr, 4),
                   Table::num(result.average_fpr, 4)});
  }
  table.print(std::cout);
  std::cout << "\nThe tuned boundary holds its FPR budget out of domain; "
               "the per-pair boundary does not (Algorithm 1 unions flagged "
               "pairs, multiplying per-pair errors).\n";
  return 0;
}
