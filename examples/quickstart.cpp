// Quickstart: run Voiceprint (Algorithm 1) on RSSI series you provide.
//
// This example needs no simulator: it fabricates the series a vehicle
// would have collected on the control channel — three identities riding
// the same radio (a malicious node and its two Sybils, at different
// spoofed TX powers) and two genuine neighbours — and asks the detector
// which identities belong to a Sybil attack.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>
#include <vector>

#include "common/rng.h"
#include "core/detector.h"
#include "timeseries/series.h"

int main() {
  using namespace vp;
  Rng rng(7);

  // Fabricate 20 s of 10 Hz RSSI. Same-radio identities share one slowly
  // wandering fading trajectory; each identity adds only its (spoofed)
  // power offset and per-packet measurement noise.
  const std::size_t n = 200;
  std::vector<double> attacker_path(n), neighbor1_path(n), neighbor2_path(n);
  double a = -74.0, b = -80.0, c = -68.0;
  for (std::size_t i = 0; i < n; ++i) {
    a += rng.normal(0.0, 0.4);
    b += rng.normal(0.0, 0.4);
    c += rng.normal(0.0, 0.4);
    attacker_path[i] = a;
    neighbor1_path[i] = b;
    neighbor2_path[i] = c;
  }
  auto observed = [&](const std::vector<double>& path, double power_offset) {
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = path[i] + power_offset + rng.normal(0.0, 1.0);
    }
    return ts::Series::uniform(0.0, 0.1, std::move(values));
  };

  const std::vector<core::NamedSeries> heard = {
      {1, observed(attacker_path, 0.0)},    // the attacker's real identity
      {101, observed(attacker_path, 3.0)},  // Sybil, spoofed +3 dB
      {102, observed(attacker_path, -3.0)}, // Sybil, spoofed −3 dB
      {2, observed(neighbor1_path, 0.0)},   // honest vehicle
      {3, observed(neighbor2_path, 0.0)},   // honest vehicle
  };

  // Detect with the paper's trained boundary (Fig. 10: k=0.00054, b=0.0483)
  // at an estimated local density of 10 vehicles/km (Eq. 9).
  core::VoiceprintDetector detector;
  const std::vector<IdentityId> suspects = detector.detect_series(heard, 10.0);

  std::cout << "threshold at this density: " << detector.last_threshold()
            << "\n\npairwise normalised DTW distances:\n";
  for (const core::PairDistance& p : detector.last_all_pairs()) {
    std::cout << "  (" << p.a << ", " << p.b << ") -> " << p.normalized
              << "\n";
  }
  std::cout << "\nflagged as Sybil attack: ";
  for (IdentityId id : suspects) std::cout << id << " ";
  std::cout << "\nexpected: 1 101 102\n";
  return suspects == std::vector<IdentityId>{1, 101, 102} ? 0 : 1;
}
