// Adversarial example — the Assumption 3 attacker: every Sybil identity is
// beaconed at a different constant TX power to break naive RSSI-similarity
// detection. Shows (1) raw DTW distances are indeed pushed apart, (2) the
// enhanced Z-score (Eq. 7) erases the offsets, and (3) the paper's noted
// limitation: an attacker *varying* power per packet (power control)
// defeats Voiceprint — reproduced honestly here as the Section VII
// future-work case.
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/detector.h"
#include "timeseries/series.h"

namespace {

using namespace vp;

std::vector<core::NamedSeries> make_attack(std::uint64_t seed,
                                           bool per_packet_power_control) {
  Rng rng(seed);
  const std::size_t n = 200;
  std::vector<double> attacker_path(n), normal_path(n);
  double a = -72.0, b = -79.0;
  for (std::size_t i = 0; i < n; ++i) {
    a += rng.normal(0.0, 0.4);
    b += rng.normal(0.0, 0.4);
    attacker_path[i] = a;
    normal_path[i] = b;
  }
  auto series = [&](const std::vector<double>& path, double offset,
                    bool hop) {
    std::vector<double> values(n);
    double hop_offset = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Power control: re-draw the identity's TX power every ~10 packets.
      if (hop && i % 10 == 0) hop_offset = rng.uniform(-6.0, 6.0);
      values[i] = path[i] + offset + hop_offset + rng.normal(0.0, 1.0);
    }
    return ts::Series::uniform(0.0, 0.1, std::move(values));
  };
  return {
      {1, series(attacker_path, 0.0, false)},
      {101, series(attacker_path, 5.0, per_packet_power_control)},
      {102, series(attacker_path, -5.0, per_packet_power_control)},
      {2, series(normal_path, 0.0, false)},
  };
}

void report(const std::string& title,
            const std::vector<core::NamedSeries>& heard, bool z_score) {
  core::VoiceprintOptions options;
  options.comparison.z_score_normalize = z_score;
  core::VoiceprintDetector detector(options);
  const auto flagged = detector.detect_series(heard, 10.0);
  std::cout << title << " (Eq. 7 " << (z_score ? "on" : "off") << ")\n";
  Table table({"pair", "normalised DTW"});
  for (const core::PairDistance& p : detector.last_all_pairs()) {
    table.add_row({"(" + std::to_string(p.a) + "," + std::to_string(p.b) +
                       ")",
                   Table::num(p.normalized, 4)});
  }
  table.print(std::cout);
  std::cout << "flagged:";
  for (IdentityId id : flagged) std::cout << " " << id;
  std::cout << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_seed("seed", 33);

  std::cout << "=== constant spoofed powers (+5/-5 dB per Sybil, "
               "Assumption 3) ===\n\n";
  const auto constant_attack = make_attack(seed, false);
  report("without pre-processing", constant_attack, false);
  report("with enhanced Z-score", constant_attack, true);

  std::cout << "=== per-packet power control (Section VII limitation) "
               "===\n\n";
  const auto hopping_attack = make_attack(seed, true);
  report("with enhanced Z-score", hopping_attack, true);
  std::cout << "Expected: constant offsets are defeated by Eq. 7 (Sybils "
               "1,101,102 flagged); per-packet power hopping destroys the "
               "shared shape and evades detection — the open problem the "
               "paper closes with.\n";
  return 0;
}
