// The Section VI field test as a runnable example: generate the
// four-vehicle convoy (attacker + Sybils 101/102 at 23/17 dBm, three
// normal vehicles) in a chosen area, replay Voiceprint once per minute
// from the trailing vehicle's logs, and print the verdicts.
//
//   ./build/examples/field_test_replay --area urban --duration 600
#include <iostream>
#include <string>

#include "common/cli.h"
#include "common/table.h"
#include "fieldtest/replay.h"

int main(int argc, char** argv) {
  using namespace vp;
  const CliArgs args(argc, argv);
  const std::string area_name = args.get("area", "rural");

  ft::FieldTestConfig config;
  if (area_name == "campus") config.area = ft::Area::kCampus;
  else if (area_name == "rural") config.area = ft::Area::kRural;
  else if (area_name == "urban") config.area = ft::Area::kUrban;
  else if (area_name == "highway") config.area = ft::Area::kHighway;
  else {
    std::cerr << "unknown --area (campus|rural|urban|highway)\n";
    return 2;
  }
  config.duration_s = args.get_double("duration", 300.0);
  config.seed = args.get_seed("seed", 42);

  std::cout << "field test: " << area_name << ", " << config.duration_s
            << " s, Sybils at +3/-3 dB spoofed power, threshold "
            << config.constant_threshold << "\n\n";
  const ft::FieldTestData data = ft::run_field_test(config);
  const ft::FieldReplayResult result = ft::replay_field_test(data);

  Table table({"t (s)", "attack IDs flagged", "normal IDs flagged",
               "verdict"});
  for (const ft::FieldDetection& d : result.detections) {
    table.add_row(
        {Table::num(d.time_s, 0),
         std::to_string(d.attack_identities_flagged) + "/" +
             std::to_string(d.attack_identities_heard),
         std::to_string(d.normal_identities_flagged) + "/" +
             std::to_string(d.normal_identities_heard),
         d.has_false_positive() ? "FALSE POSITIVE"
         : d.complete_detection() ? "full detection"
                                  : "partial"});
  }
  table.print(std::cout);
  std::cout << "\ndetection rate " << Table::num(result.detection_rate, 4)
            << ", false positive rate "
            << Table::num(result.false_positive_rate, 4) << "\n";

  for (const ft::FalsePositiveAnalysis& fp : result.false_positives) {
    std::cout << "\nfalse positive at t=" << fp.time_s << " s (node "
              << fp.victim << "): all vehicles stationary = "
              << (fp.all_stationary ? "yes — the paper's red-light case"
                                    : "no")
              << "\n";
  }
  return 0;
}
