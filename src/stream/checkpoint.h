// Versioned checkpoint/restore for stream::StreamEngine (DESIGN.md §10).
//
// An OBU that reboots mid-drive must resume detection without losing its
// 20 s observation window. EngineCheckpoint is the engine's complete
// detection-relevant state — every identity's ring and last-heard time,
// the round schedule, the admission-rate bucket and the Stats counters —
// captured at a beacon boundary by StreamEngine::checkpoint() and
// restored by the StreamEngine(config, checkpoint) constructor.
//
// Restore-parity invariant: an engine checkpointed after any beacon and
// restored with the same configuration emits bit-identical rounds
// (suspect sets AND pair distances) to the uninterrupted engine, at
// every thread count. Enforced by tests/test_checkpoint.cpp over highway
// and field-test traces.
//
// Wire format ("voiceprint checkpoint", version 3): magic "VPCK",
// u32 version, the fields below in fixed order, doubles as IEEE-754 bit
// patterns (common/binio.h), and a trailing FNV-1a checksum over
// everything before it. Version 2 adds next_round_id (the causal round
// counter) after the admission bucket; version 3 adds the §15
// conditioning state — the cond_* Stats counters after `rounds` and,
// per identity, the Hampel window ring (oldest first) plus the EMA
// register — so a conditioned engine killed mid-filter restores
// bit-identically. Version-1/2 blobs still decode: next_round_id
// defaults to stats.rounds on v1 (exact when every prepared round also
// executed, best-effort under deferred-round shedding) and the
// conditioning state defaults to empty on v1/v2 — correct, because
// those versions could only have been written by unconditioned
// engines. decode_checkpoint rejects bad magic, unknown versions,
// truncation, trailing garbage, checksum mismatches and structurally
// invalid contents (unsorted ring times, rings over capacity) with a
// one-line reason — a corrupted checkpoint is a diagnosable error,
// never UB. save_checkpoint writes crash-safely:
// the bytes go to "<path>.tmp" and are renamed over <path> only after a
// successful flush, so a crash mid-save leaves the previous checkpoint
// intact.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stream/beacon_buffer.h"
#include "stream/engine.h"

namespace vp::stream {

// One tracked identity's state.
struct IdentityCheckpoint {
  IdentityId id = 0;
  double last_heard_s = 0.0;  // survives the ring ageing empty
  BeaconBuffer::Snapshot ring;
  // §15 conditioning channel (VPCK v3): the Hampel window oldest-first
  // and the EMA register. Empty/false for unconditioned engines and for
  // v1/v2 blobs.
  std::vector<std::int32_t> cond_window;
  std::int32_t cond_ema_q12 = 0;
  bool cond_ema_init = false;
  std::uint32_t cond_reject_streak = 0;
};

struct EngineCheckpoint {
  // Guards restore against a mismatched engine configuration; filled by
  // StreamEngine::checkpoint() with engine_config_hash(config).
  std::uint64_t config_hash = 0;
  // Round schedule and admission bookkeeping.
  double next_round_s = 0.0;
  double last_round_time_s = -1.0;
  std::int64_t bucket_second = 0;
  std::uint64_t bucket_accepted = 0;
  // Causal id of the next prepared round (engine next_round_id()); keeps
  // telemetry round ids and trace joins continuous across a restore.
  std::uint64_t next_round_id = 0;
  StreamEngine::Stats stats;
  std::vector<IdentityCheckpoint> identities;  // ascending id
};

// Hash of the engine-level configuration a checkpoint depends on: window
// geometry, bounded-memory knobs, the validation contract, and the
// detector scalars the engine itself owns (threshold boundary, density
// override, vote count). Deliberately excludes execution knobs —
// comparison threads — so a checkpoint restores across thread counts,
// which never change results.
std::uint64_t engine_config_hash(const StreamEngineConfig& config);

// Serialises to the version-3 wire format described above.
std::vector<std::uint8_t> encode_checkpoint(const EngineCheckpoint& checkpoint);

// Parses and validates; returns false with a one-line reason in `error`
// (if non-null) on any malformation. `out` is only modified on success.
bool decode_checkpoint(std::span<const std::uint8_t> bytes,
                       EngineCheckpoint* out, std::string* error);

// Crash-safe file save (write "<path>.tmp", flush, rename) / load.
bool save_checkpoint(const EngineCheckpoint& checkpoint,
                     const std::string& path, std::string* error);
bool load_checkpoint(const std::string& path, EngineCheckpoint* out,
                     std::string* error);

}  // namespace vp::stream
