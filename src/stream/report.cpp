#include "stream/report.h"

#include <utility>

#include "common/thread_pool.h"

namespace vp::stream {

namespace {

using obs::json::Array;
using obs::json::Object;
using obs::json::Value;

Value snapshot_json(const obs::HistogramSnapshot& s) {
  Object o;
  o.emplace("count", Value(s.count));
  o.emplace("sum", Value(s.sum));
  o.emplace("min", Value(s.min));
  o.emplace("max", Value(s.max));
  o.emplace("mean", Value(s.mean));
  o.emplace("p50", Value(s.p50));
  o.emplace("p95", Value(s.p95));
  o.emplace("p99", Value(s.p99));
  return Value(std::move(o));
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool require_number(const Value& object, const char* key,
                    const std::string& where, std::string* error) {
  const Value* v = object.find(key);
  if (v == nullptr || !v->is_number()) {
    return fail(error, where + ": missing or non-numeric \"" + key + "\"");
  }
  return true;
}

}  // namespace

Value build_stream_bench_report(const std::string& binary,
                                const std::vector<BenchConfigResult>& configs) {
  Object doc;
  doc.emplace("schema", Value("voiceprint.stream_bench/v1"));
  doc.emplace("binary", Value(binary));
  doc.emplace("hardware_threads", Value(hardware_threads()));
  Array rows;
  for (const BenchConfigResult& c : configs) {
    Object row;
    row.emplace("label", Value(c.label));
    row.emplace("beacon_rate_hz", Value(c.beacon_rate_hz));
    row.emplace("identities", Value(c.identities));
    row.emplace("duration_s", Value(c.duration_s));
    row.emplace("offered", Value(c.offered));
    row.emplace("ingested", Value(c.ingested));
    row.emplace("shed", Value(c.shed));
    row.emplace("ring_evictions", Value(c.ring_evictions));
    row.emplace("rounds", Value(c.rounds));
    row.emplace("ingest_beacons_per_s", Value(c.ingest_beacons_per_s));
    row.emplace("round_ns", snapshot_json(c.round_ns));
    rows.push_back(Value(std::move(row)));
  }
  doc.emplace("configs", Value(std::move(rows)));
  return Value(std::move(doc));
}

bool validate_stream_bench(const Value& report, std::string* error) {
  if (!report.is_object()) return fail(error, "report is not an object");
  const Value* schema = report.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "voiceprint.stream_bench/v1") {
    return fail(error, "schema is not \"voiceprint.stream_bench/v1\"");
  }
  const Value* binary = report.find("binary");
  if (binary == nullptr || !binary->is_string()) {
    return fail(error, "missing or non-string \"binary\"");
  }
  if (!require_number(report, "hardware_threads", "report", error)) {
    return false;
  }
  const Value* configs = report.find("configs");
  if (configs == nullptr || !configs->is_array()) {
    return fail(error, "missing or non-array \"configs\"");
  }
  if (configs->as_array().empty()) return fail(error, "\"configs\" is empty");
  std::size_t index = 0;
  for (const Value& row : configs->as_array()) {
    const std::string where = "configs[" + std::to_string(index++) + "]";
    if (!row.is_object()) return fail(error, where + " is not an object");
    const Value* label = row.find("label");
    if (label == nullptr || !label->is_string()) {
      return fail(error, where + ": missing or non-string \"label\"");
    }
    for (const char* key :
         {"beacon_rate_hz", "identities", "duration_s", "offered", "ingested",
          "shed", "ring_evictions", "rounds", "ingest_beacons_per_s"}) {
      if (!require_number(row, key, where, error)) return false;
    }
    // Conservation law of the admission path: every offered beacon was
    // either ingested or explicitly shed — a bench that silently loses
    // beacons is rejected here, not discovered in a dashboard.
    if (row.find("offered")->as_number() !=
        row.find("ingested")->as_number() + row.find("shed")->as_number()) {
      return fail(error, where + ": offered != ingested + shed");
    }
    const Value* round_ns = row.find("round_ns");
    if (round_ns == nullptr || !round_ns->is_object()) {
      return fail(error, where + ": missing or non-object \"round_ns\"");
    }
    for (const char* key :
         {"count", "sum", "min", "max", "mean", "p50", "p95", "p99"}) {
      if (!require_number(*round_ns, key, where + ".round_ns", error)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace vp::stream
