#include "stream/engine.h"

#include <cmath>
#include <utility>

#include "common/error.h"
#include "obs/runtime.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "stream/checkpoint.h"

namespace vp::stream {

namespace {

// Registry instruments, resolved once per engine (lookup takes a mutex;
// ingest must not). Updates are gated on obs::enabled() — with
// observability off the engine pays one predictable branch per beacon.
struct Sinks {
  obs::Counter* offered;
  obs::Counter* ingested;
  obs::Counter* shed_rate;
  obs::Counter* shed_identity_cap;
  obs::Counter* shed_out_of_order;
  obs::Counter* shed_invalid_rssi_non_finite;
  obs::Counter* shed_invalid_rssi_out_of_range;
  obs::Counter* shed_invalid_time_non_finite;
  obs::Counter* shed_invalid_time_negative;
  obs::Counter* shed_conditioned;
  obs::Counter* cond_offered;
  obs::Counter* cond_passed;
  obs::Counter* cond_clamped;
  obs::Counter* cond_rejected;
  obs::Counter* ring_evictions;
  obs::Counter* samples_expired;
  obs::Counter* identities_expired;
  obs::Counter* rounds;
  obs::Histogram* round_ns;
  obs::Histogram* round_suspects;
  obs::Histogram* round_neighbors;
  obs::Gauge* identities_tracked;
};

const Sinks& sinks() {
  static const Sinks s = [] {
    obs::MetricsRegistry& r = obs::registry();
    return Sinks{
        .offered = &r.counter("stream.beacons_offered"),
        .ingested = &r.counter("stream.beacons_ingested"),
        .shed_rate = &r.counter("stream.beacons_shed_rate_limited"),
        .shed_identity_cap = &r.counter("stream.beacons_shed_identity_cap"),
        .shed_out_of_order = &r.counter("stream.beacons_shed_out_of_order"),
        .shed_invalid_rssi_non_finite =
            &r.counter("stream.shed_invalid.rssi_non_finite"),
        .shed_invalid_rssi_out_of_range =
            &r.counter("stream.shed_invalid.rssi_out_of_range"),
        .shed_invalid_time_non_finite =
            &r.counter("stream.shed_invalid.time_non_finite"),
        .shed_invalid_time_negative =
            &r.counter("stream.shed_invalid.time_negative"),
        .shed_conditioned = &r.counter("stream.beacons_shed_conditioned"),
        .cond_offered = &r.counter("cond.offered"),
        .cond_passed = &r.counter("cond.passed"),
        .cond_clamped = &r.counter("cond.clamped"),
        .cond_rejected = &r.counter("cond.rejected"),
        .ring_evictions = &r.counter("stream.ring_evictions"),
        .samples_expired = &r.counter("stream.samples_expired"),
        .identities_expired = &r.counter("stream.identities_expired"),
        .rounds = &r.counter("stream.rounds"),
        .round_ns = &r.histogram("stream.round_ns"),
        .round_suspects = &r.histogram("stream.round_suspects",
                                       obs::Histogram::default_count_bounds()),
        .round_neighbors = &r.histogram("stream.round_neighbors",
                                        obs::Histogram::default_count_bounds()),
        .identities_tracked = &r.gauge("stream.identities_tracked"),
    };
  }();
  return s;
}

}  // namespace

StreamEngine::StreamEngine(StreamEngineConfig config)
    : config_(std::move(config)), detector_(config_.detector) {
  VP_REQUIRE(config_.observation_time_s > 0.0);
  VP_REQUIRE(config_.round_period_s > 0.0);
  VP_REQUIRE(config_.density_estimation_period_s > 0.0);
  // The rings only guarantee retention over the observation window, so
  // the Eq. 9 estimation period must fit inside it.
  VP_REQUIRE(config_.density_estimation_period_s <= config_.observation_time_s);
  VP_REQUIRE(config_.max_transmission_range_m > 0.0);
  VP_REQUIRE(config_.ring_capacity >= 1);
  VP_REQUIRE(config_.max_identities >= 1);
  VP_REQUIRE(config_.staleness_horizon_s > 0.0);
  next_round_ = config_.observation_time_s;
  VP_REQUIRE(config_.min_valid_rssi_dbm < config_.max_valid_rssi_dbm);
  if (config_.condition_ingest) cond::validate(config_.conditioning);
}

StreamEngine::StreamEngine(StreamEngineConfig config,
                           const EngineCheckpoint& checkpoint)
    : StreamEngine(std::move(config)) {
  // The checkpoint only makes sense under the geometry it was taken with;
  // a silent mismatch would produce plausible-looking wrong rounds.
  VP_REQUIRE(checkpoint.config_hash == engine_config_hash(config_));
  next_round_ = checkpoint.next_round_s;
  last_round_time_ = checkpoint.last_round_time_s;
  next_round_id_ = checkpoint.next_round_id;
  bucket_second_ = checkpoint.bucket_second;
  bucket_accepted_ = checkpoint.bucket_accepted;
  stats_ = checkpoint.stats;
  for (const IdentityCheckpoint& ic : checkpoint.identities) {
    IdentityState state(1);
    state.ring = BeaconBuffer::from_snapshot(ic.ring);
    state.last_heard_s = ic.last_heard_s;
    state.conditioner.restore(ic.cond_window, ic.cond_ema_q12,
                              ic.cond_ema_init, ic.cond_reject_streak);
    states_.emplace(ic.id, std::move(state));
  }
}

EngineCheckpoint StreamEngine::checkpoint() const {
  EngineCheckpoint cp;
  cp.config_hash = engine_config_hash(config_);
  cp.next_round_s = next_round_;
  cp.last_round_time_s = last_round_time_;
  cp.next_round_id = next_round_id_;
  cp.bucket_second = bucket_second_;
  cp.bucket_accepted = bucket_accepted_;
  cp.stats = stats_;
  cp.identities.reserve(states_.size());
  for (const auto& [id, state] : states_) {
    IdentityCheckpoint ic;
    ic.id = id;
    ic.last_heard_s = state.last_heard_s;
    ic.ring = state.ring.snapshot();
    const cond::Conditioner& c = state.conditioner;
    ic.cond_window.reserve(c.window_count());
    for (std::size_t i = 0; i < c.window_count(); ++i) {
      ic.cond_window.push_back(c.window_sample(i));
    }
    ic.cond_ema_q12 = c.ema_q12();
    ic.cond_ema_init = c.ema_initialized();
    ic.cond_reject_streak = c.reject_streak();
    cp.identities.push_back(std::move(ic));
  }
  return cp;
}

StreamEngine::Admission StreamEngine::ingest(IdentityId id, double time_s,
                                             double rssi_dbm) {
  const bool instrumented = obs::enabled();
  ++stats_.beacons_offered;
  if (instrumented) sinks().offered->add(1);

  // Validation front: out-of-contract beacons are shed before the stream
  // clock moves — a non-finite timestamp must never reach advance_to,
  // where it would stall (NaN) or unboundedly run (+inf) the scheduler.
  if (config_.validate_ingest) {
    if (!std::isfinite(time_s)) {
      ++stats_.shed_invalid_time_non_finite;
      if (instrumented) sinks().shed_invalid_time_non_finite->add(1);
      return Admission::kShedInvalid;
    }
    if (time_s < 0.0) {
      ++stats_.shed_invalid_time_negative;
      if (instrumented) sinks().shed_invalid_time_negative->add(1);
      return Admission::kShedInvalid;
    }
    if (!std::isfinite(rssi_dbm)) {
      ++stats_.shed_invalid_rssi_non_finite;
      if (instrumented) sinks().shed_invalid_rssi_non_finite->add(1);
      return Admission::kShedInvalid;
    }
    if (rssi_dbm < config_.min_valid_rssi_dbm ||
        rssi_dbm > config_.max_valid_rssi_dbm) {
      ++stats_.shed_invalid_rssi_out_of_range;
      if (instrumented) sinks().shed_invalid_rssi_out_of_range->add(1);
      return Admission::kShedInvalid;
    }
  }

  // A round at t covers [t − observation, t): run every round due at or
  // before this beacon first, so the beacon (time >= t) stays outside.
  advance_to(time_s);

  // Late beacon whose confirmation round already closed.
  if (time_s < last_round_time_) {
    ++stats_.beacons_shed_out_of_order;
    if (instrumented) sinks().shed_out_of_order->add(1);
    return Admission::kShedOutOfOrder;
  }

  // Admission cap: at most max_ingest_rate_hz accepted beacons per whole
  // second of stream time. Deterministic — no wall clock involved.
  if (config_.max_ingest_rate_hz > 0.0) {
    const auto second = static_cast<std::int64_t>(std::floor(time_s));
    if (second != bucket_second_) {
      bucket_second_ = second;
      bucket_accepted_ = 0;
    }
    if (static_cast<double>(bucket_accepted_) >= config_.max_ingest_rate_hz) {
      ++stats_.beacons_shed_rate_limited;
      if (instrumented) sinks().shed_rate->add(1);
      return Admission::kShedRateLimited;
    }
  }

  auto it = states_.find(id);
  if (it == states_.end()) {
    if (states_.size() >= config_.max_identities) {
      ++stats_.beacons_shed_identity_cap;
      if (instrumented) sinks().shed_identity_cap->add(1);
      return Admission::kShedIdentityCap;
    }
    it = states_.emplace(id, IdentityState(config_.ring_capacity)).first;
  } else if (time_s < it->second.last_heard_s) {
    // Identities of one radio beacon in time order; a regression is a
    // transport glitch, not a new window sample (equal timestamps are
    // fine — CCH and SCH receptions can land together).
    ++stats_.beacons_shed_out_of_order;
    if (instrumented) sinks().shed_out_of_order->add(1);
    return Admission::kShedOutOfOrder;
  }

  IdentityState& state = it->second;

  // Conditioning stage (DESIGN.md §15): after every admission decision —
  // a shed beacon must not perturb the filter — and before the ring, so
  // the detector only ever sees conditioned values. Pure integer
  // arithmetic; the double round-trip through Q19.12 is exact dyadic.
  if (config_.condition_ingest) {
    ++stats_.cond_offered;
    if (instrumented) sinks().cond_offered->add(1);
    const cond::Sample sample =
        state.conditioner.process(cond::to_q12(rssi_dbm), config_.conditioning);
    switch (sample.verdict) {
      case cond::Verdict::kReject:
        ++stats_.cond_rejected;
        ++stats_.beacons_shed_conditioned;
        if (instrumented) {
          sinks().cond_rejected->add(1);
          sinks().shed_conditioned->add(1);
        }
        return Admission::kShedConditioned;
      case cond::Verdict::kClamp:
        ++stats_.cond_clamped;
        if (instrumented) sinks().cond_clamped->add(1);
        break;
      case cond::Verdict::kPass:
        ++stats_.cond_passed;
        if (instrumented) sinks().cond_passed->add(1);
        break;
    }
    rssi_dbm = cond::from_q12(sample.conditioned_q12);
  }

  if (state.ring.push(time_s, rssi_dbm)) {
    ++stats_.ring_evictions;
    if (instrumented) sinks().ring_evictions->add(1);
  }
  state.last_heard_s = time_s;
  ++bucket_accepted_;
  ++stats_.beacons_ingested;
  if (instrumented) sinks().ingested->add(1);
  return Admission::kAccepted;
}

void StreamEngine::advance_to(double time_s) {
  // Repeated addition, exactly like World::detection_times builds its
  // instants — bit-equal round times are part of the parity invariant.
  while (next_round_ <= time_s) {
    run_round(next_round_);
    next_round_ += config_.round_period_s;
  }
}

void StreamEngine::expire_stale(double t) {
  const bool instrumented = obs::enabled();
  for (auto it = states_.begin(); it != states_.end();) {
    IdentityState& state = it->second;
    if (state.last_heard_s < t - config_.staleness_horizon_s) {
      ++stats_.identities_expired;
      if (instrumented) sinks().identities_expired->add(1);
      it = states_.erase(it);
      continue;
    }
    // Age samples that slid out of every window this round can use.
    const std::size_t dropped =
        state.ring.evict_before(t - config_.observation_time_s);
    stats_.samples_expired += dropped;
    if (instrumented && dropped > 0) sinks().samples_expired->add(dropped);
    ++it;
  }
}

void StreamEngine::run_round(double t) {
  expire_stale(t);

  const double t0 = t - config_.observation_time_s;
  round_series_.clear();
  std::size_t heard_for_density = 0;
  for (auto& [id, state] : states_) {
    if (state.ring.count_in(t - config_.density_estimation_period_s, t) >= 1) {
      ++heard_for_density;
    }
    const std::size_t n = state.ring.count_in(t0, t);
    if (n < config_.min_samples) continue;
    ts::Series series;
    series.reserve(n);
    state.ring.extract(t0, t, series);
    round_series_.emplace_back(id, std::move(series));
  }
  // Eq. 9, exactly as World::observe computes it for the batch window.
  const double dist_max_km = config_.max_transmission_range_m / 1000.0;
  const double density =
      static_cast<double>(heard_for_density) / (2.0 * dist_max_km);

  // The cut is final: from here the round is a pure function of `input`,
  // so later beacons are late relative to it whether or not the detector
  // has run yet.
  last_round_time_ = t;
  if (obs::enabled()) {
    sinks().identities_tracked->set(static_cast<double>(states_.size()));
  }

  RoundInput input;
  input.round_id = next_round_id_++;
  input.time_s = t;
  input.density_per_km = density;
  input.series = std::move(round_series_);
  if (defer_) {
    defer_(std::move(input));
    return;
  }
  run_prepared_round(std::move(input));
}

const StreamRound& StreamEngine::run_prepared_round(RoundInput input) {
  const bool instrumented = obs::enabled();
  // Detector-internal spans on this thread inherit the round id (and, in
  // service mode, the session id the pump worker installed).
  obs::ScopedSpanContext span_context(
      static_cast<std::int64_t>(input.round_id), -1);
  obs::ScopedTimer round_timer =
      instrumented
          ? obs::ScopedTimer(
                sinks().round_ns, obs::trace(),
                {.phase = "stream.round",
                 .pairs = static_cast<std::int64_t>(
                     input.series.size() * (input.series.size() - 1) / 2),
                 .round = static_cast<std::int64_t>(input.round_id)})
          : obs::ScopedTimer();

  StreamRound round;
  round.round_id = input.round_id;
  round.time_s = input.time_s;
  round.identities_heard = input.series.size();
  round.density_per_km = input.density_per_km;
  round.suspects = detector_.detect_series(input.series, input.density_per_km);
  round.pairs = detector_.last_all_pairs();
  round_timer.stop();

  ++stats_.rounds;
  if (instrumented) {
    sinks().rounds->add(1);
    sinks().round_suspects->record(static_cast<double>(round.suspects.size()));
    sinks().round_neighbors->record(
        static_cast<double>(round.identities_heard));
  }
  if (callback_) callback_(round);
  last_round_ = std::move(round);
  // Recycle the window vector's capacity for the next inline cut. Under
  // deferral the next cut may already be in flight on the harness thread,
  // so the buffer is left alone there.
  if (!defer_) round_series_ = std::move(input.series);
  return *last_round_;
}

}  // namespace vp::stream
