// BENCH_stream.json schema ("voiceprint.stream_bench/v1"): the
// bench/stream_throughput sweep writes one document summarising each
// (beacon rate × identity count) configuration — offered/ingested/shed
// beacon counts, wall-clock ingest throughput, and the confirmation-round
// latency percentiles taken from the same obs::HistogramSnapshot
// aggregation a --metrics-out run report uses.
//
// Like obs/report.h, build and validate live together so the emitted
// document and the check (tools/check_run_report --stream-bench, the
// smoke test, and the unit tests) cannot drift apart.
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace vp::stream {

// One sweep configuration's results.
struct BenchConfigResult {
  std::string label;            // e.g. "rate50_n80"
  double beacon_rate_hz = 0.0;  // offered per-identity beacon rate
  std::size_t identities = 0;
  double duration_s = 0.0;      // stream time covered
  std::uint64_t offered = 0;
  std::uint64_t ingested = 0;
  std::uint64_t shed = 0;       // all shed classes summed
  std::uint64_t ring_evictions = 0;
  std::uint64_t rounds = 0;
  double ingest_beacons_per_s = 0.0;  // offered / wall time, the hot number
  obs::HistogramSnapshot round_ns;    // confirmation-round latency
};

// Builds the voiceprint.stream_bench/v1 document.
obs::json::Value build_stream_bench_report(
    const std::string& binary, const std::vector<BenchConfigResult>& configs);

// True when `report` conforms to voiceprint.stream_bench/v1. On failure,
// `error` (if non-null) receives a one-line description.
bool validate_stream_bench(const obs::json::Value& report, std::string* error);

}  // namespace vp::stream
