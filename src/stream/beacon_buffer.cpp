#include "stream/beacon_buffer.h"

#include <algorithm>

#include "common/error.h"

namespace vp::stream {

BeaconBuffer::BeaconBuffer(std::size_t capacity) {
  VP_REQUIRE(capacity >= 1);
  times_.resize(capacity);
  values_.resize(capacity);
}

bool BeaconBuffer::push(double time_s, double rssi_dbm) {
  VP_REQUIRE(empty() || time_s >= back_time());
  bool evicted = false;
  if (size_ == times_.size()) {
    pop_front();
    evicted = true;
  }
  const std::size_t slot = (head_ + size_) % times_.size();
  times_[slot] = time_s;
  values_[slot] = rssi_dbm;
  ++size_;
  // Welford forward update.
  const double delta = rssi_dbm - mean_;
  mean_ += delta / static_cast<double>(size_);
  m2_ += delta * (rssi_dbm - mean_);
  return evicted;
}

void BeaconBuffer::pop_front() {
  const double x = values_[head_];
  head_ = (head_ + 1) % times_.size();
  --size_;
  // Welford reverse update (exact inverse of the forward step).
  if (size_ == 0) {
    mean_ = 0.0;
    m2_ = 0.0;
    return;
  }
  const double old_mean = mean_;
  mean_ = (static_cast<double>(size_ + 1) * mean_ - x) /
          static_cast<double>(size_);
  m2_ -= (x - old_mean) * (x - mean_);
  m2_ = std::max(m2_, 0.0);
}

std::size_t BeaconBuffer::evict_before(double t) {
  std::size_t dropped = 0;
  while (size_ > 0 && times_[head_] < t) {
    pop_front();
    ++dropped;
  }
  return dropped;
}

double BeaconBuffer::front_time() const {
  VP_REQUIRE(!empty());
  return times_[head_];
}

double BeaconBuffer::back_time() const {
  VP_REQUIRE(!empty());
  return time_at(size_ - 1);
}

std::size_t BeaconBuffer::lower_index(double t) const {
  std::size_t lo = 0;
  std::size_t hi = size_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (time_at(mid) < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::size_t BeaconBuffer::count_in(double t0, double t1) const {
  const std::size_t lo = lower_index(t0);
  const std::size_t hi = lower_index(std::max(t0, t1));
  return hi - lo;
}

void BeaconBuffer::extract(double t0, double t1, ts::Series& out) const {
  const std::size_t lo = lower_index(t0);
  const std::size_t hi = lower_index(std::max(t0, t1));
  out.reserve(out.size() + (hi - lo));
  for (std::size_t i = lo; i < hi; ++i) {
    const std::size_t slot = (head_ + i) % times_.size();
    out.add(times_[slot], values_[slot]);
  }
}

BeaconBuffer::Snapshot BeaconBuffer::snapshot() const {
  Snapshot snap;
  snap.capacity = times_.size();
  snap.times.reserve(size_);
  snap.values.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t slot = (head_ + i) % times_.size();
    snap.times.push_back(times_[slot]);
    snap.values.push_back(values_[slot]);
  }
  snap.mean = mean_;
  snap.m2 = m2_;
  return snap;
}

BeaconBuffer BeaconBuffer::from_snapshot(const Snapshot& snapshot) {
  VP_REQUIRE(snapshot.times.size() == snapshot.values.size());
  VP_REQUIRE(snapshot.times.size() <= snapshot.capacity);
  VP_REQUIRE(std::is_sorted(snapshot.times.begin(), snapshot.times.end()));
  BeaconBuffer buffer(snapshot.capacity);
  std::copy(snapshot.times.begin(), snapshot.times.end(),
            buffer.times_.begin());
  std::copy(snapshot.values.begin(), snapshot.values.end(),
            buffer.values_.begin());
  buffer.size_ = snapshot.times.size();
  buffer.mean_ = snapshot.mean;
  buffer.m2_ = snapshot.m2;
  return buffer;
}

double BeaconBuffer::mean() const {
  VP_REQUIRE(!empty());
  return mean_;
}

double BeaconBuffer::population_variance() const {
  VP_REQUIRE(!empty());
  return m2_ / static_cast<double>(size_);
}

}  // namespace vp::stream
