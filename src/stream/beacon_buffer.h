// Fixed-capacity per-identity beacon storage for the streaming engine.
//
// A BeaconBuffer is a ring of ⟨reception time, RSSI⟩ samples with O(1)
// append: when full, the oldest sample is evicted (the streaming engine
// counts those evictions — under overload the window degrades gracefully
// instead of growing without bound). Samples arrive in time order, so
// window queries (`count_in`, `extract`) binary-search the ring exactly
// like sim::RssiLog does over its vectors, and extracting [t0, t1)
// reproduces RssiLog::rssi_series bit for bit — the foundation of the
// streaming-vs-batch parity invariant (DESIGN.md §8).
//
// The buffer also maintains incremental Welford mean/variance over its
// current contents (updated forward on append, reversed on eviction), so
// a window-level amplitude summary — the shape/floor admission signals
// and the stream.* gauges — costs O(1) per beacon instead of a second
// pass. Note the detection path itself still normalises per *pair* over
// the aligned subsequences (Eq. 7 in core/comparison.cpp); that is what
// keeps streaming results bit-identical to the batch detector.
#pragma once

#include <cstddef>
#include <vector>

#include "timeseries/series.h"

namespace vp::stream {

class BeaconBuffer {
 public:
  // Requires capacity >= 1.
  explicit BeaconBuffer(std::size_t capacity);

  // Appends a sample; time must be >= the newest sample's time (the
  // engine sheds out-of-order beacons before they reach the ring).
  // Returns true when a full ring evicted its oldest sample to make room.
  bool push(double time_s, double rssi_dbm);

  // Drops samples with time < t from the front; returns how many.
  std::size_t evict_before(double t);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return times_.size(); }
  bool empty() const { return size_ == 0; }

  // Oldest / newest sample times; require a non-empty buffer.
  double front_time() const;
  double back_time() const;

  // Number of samples with time in [t0, t1) (binary search, O(log n)).
  std::size_t count_in(double t0, double t1) const;

  // Appends the samples in [t0, t1) to `out` in time order. The values
  // are the stored doubles, untouched — extraction over a window the
  // ring fully retains equals RssiLog::rssi_series on the same records.
  void extract(double t0, double t1, ts::Series& out) const;

  // Welford summary over the current contents. mean() requires a
  // non-empty buffer; population_variance() likewise (divides by n).
  // Evictions reverse the update, so after long streams the summary can
  // carry rounding on the order of 1e-9 dB² — fine for gauges and
  // admission signals, which is all it feeds.
  double mean() const;
  double population_variance() const;

  // Complete logical state, for checkpointing (DESIGN.md §10). The
  // samples come out oldest → newest; `mean`/`m2` are the raw Welford
  // accumulators, captured verbatim so a restored buffer carries the
  // exact same bits — including the reversal rounding a recomputation
  // from the samples would lose.
  struct Snapshot {
    std::size_t capacity = 0;
    std::vector<double> times;   // oldest → newest
    std::vector<double> values;  // values[i] belongs to times[i]
    double mean = 0.0;
    double m2 = 0.0;
  };
  Snapshot snapshot() const;

  // Rebuilds a buffer bit-identical (for every query) to the one the
  // snapshot was taken from. Requires capacity >= 1, parallel
  // times/values no longer than capacity, and non-decreasing times.
  static BeaconBuffer from_snapshot(const Snapshot& snapshot);

 private:
  double time_at(std::size_t i) const {
    return times_[(head_ + i) % times_.size()];
  }
  // First logical index with time >= t.
  std::size_t lower_index(double t) const;
  void pop_front();

  std::vector<double> times_;
  std::vector<double> values_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;

  // Sliding Welford state over the ring contents.
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace vp::stream
