#include "stream/checkpoint.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>
#include <utility>

#include "cond/conditioner.h"

#include "common/binio.h"
#include "common/rng.h"

namespace vp::stream {

namespace {

constexpr std::uint32_t kMagic = 0x4b435056u;  // "VPCK" little-endian
// Version 2 adds next_round_id after the admission bucket; version 3
// adds the §15 conditioning state (cond_* stats counters and the
// per-identity Hampel window + EMA register). Versions 1 and 2 still
// decode, with the newer fields defaulted (next_round_id from
// stats.rounds on v1; empty conditioning state on v1/v2).
constexpr std::uint32_t kVersion = 3;
constexpr std::uint32_t kMinVersion = 1;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

bool fail(std::string* error, std::string reason) {
  if (error != nullptr) *error = std::move(reason);
  return false;
}

void encode_stats(ByteWriter& w, const StreamEngine::Stats& s) {
  w.put_u64(s.beacons_offered);
  w.put_u64(s.beacons_ingested);
  w.put_u64(s.beacons_shed_rate_limited);
  w.put_u64(s.beacons_shed_identity_cap);
  w.put_u64(s.beacons_shed_out_of_order);
  w.put_u64(s.shed_invalid_rssi_non_finite);
  w.put_u64(s.shed_invalid_rssi_out_of_range);
  w.put_u64(s.shed_invalid_time_non_finite);
  w.put_u64(s.shed_invalid_time_negative);
  w.put_u64(s.ring_evictions);
  w.put_u64(s.samples_expired);
  w.put_u64(s.identities_expired);
  w.put_u64(s.rounds);
  // v3: the conditioning counters, after the v2 fields so old decoders
  // of old blobs never see them.
  w.put_u64(s.beacons_shed_conditioned);
  w.put_u64(s.cond_offered);
  w.put_u64(s.cond_passed);
  w.put_u64(s.cond_clamped);
  w.put_u64(s.cond_rejected);
}

bool decode_stats(ByteReader& r, std::uint32_t version,
                  StreamEngine::Stats& s) {
  if (!(r.get_u64(s.beacons_offered) && r.get_u64(s.beacons_ingested) &&
        r.get_u64(s.beacons_shed_rate_limited) &&
        r.get_u64(s.beacons_shed_identity_cap) &&
        r.get_u64(s.beacons_shed_out_of_order) &&
        r.get_u64(s.shed_invalid_rssi_non_finite) &&
        r.get_u64(s.shed_invalid_rssi_out_of_range) &&
        r.get_u64(s.shed_invalid_time_non_finite) &&
        r.get_u64(s.shed_invalid_time_negative) &&
        r.get_u64(s.ring_evictions) && r.get_u64(s.samples_expired) &&
        r.get_u64(s.identities_expired) && r.get_u64(s.rounds))) {
    return false;
  }
  if (version < 3) return true;  // cond counters default to zero
  return r.get_u64(s.beacons_shed_conditioned) && r.get_u64(s.cond_offered) &&
         r.get_u64(s.cond_passed) && r.get_u64(s.cond_clamped) &&
         r.get_u64(s.cond_rejected);
}

}  // namespace

std::uint64_t engine_config_hash(const StreamEngineConfig& config) {
  // Everything the engine's own bookkeeping depends on, chained through
  // mix64 in declaration order. Detector options stay out except the
  // scalars that change results (boundary, density override, votes) —
  // comparison threads must NOT be here, restoring across thread counts
  // is supported and results-neutral.
  std::uint64_t h = hash64("vp.stream.engine_config/v1");
  h = mix64(h, bits(config.observation_time_s));
  h = mix64(h, bits(config.round_period_s));
  h = mix64(h, bits(config.density_estimation_period_s));
  h = mix64(h, bits(config.max_transmission_range_m));
  h = mix64(h, static_cast<std::uint64_t>(config.min_samples));
  h = mix64(h, static_cast<std::uint64_t>(config.ring_capacity));
  h = mix64(h, static_cast<std::uint64_t>(config.max_identities));
  h = mix64(h, bits(config.staleness_horizon_s));
  h = mix64(h, bits(config.max_ingest_rate_hz));
  h = mix64(h, config.validate_ingest ? 1u : 0u);
  h = mix64(h, bits(config.min_valid_rssi_dbm));
  h = mix64(h, bits(config.max_valid_rssi_dbm));
  h = mix64(h, bits(config.detector.boundary.k));
  h = mix64(h, bits(config.detector.boundary.b));
  h = mix64(h, config.detector.fixed_density_per_km
                   ? mix64(1u, bits(*config.detector.fixed_density_per_km))
                   : 0u);
  h = mix64(h, static_cast<std::uint64_t>(config.detector.min_pair_votes));
  // Conditioning only enters the hash when enabled, so every hash
  // computed before §15 existed (and every unconditioned engine today)
  // keeps its value — old checkpoints restore unchanged.
  if (config.condition_ingest) {
    const cond::CondConfig& c = config.conditioning;
    h = mix64(h, hash64("vp.cond.config/v1"));
    h = mix64(h, static_cast<std::uint64_t>(c.window));
    h = mix64(h, static_cast<std::uint64_t>(c.clamp_k_q8));
    h = mix64(h, static_cast<std::uint64_t>(c.reject_k_q8));
    h = mix64(h, static_cast<std::uint64_t>(c.mad_floor_q12));
    h = mix64(h, static_cast<std::uint64_t>(c.reject_limit));
    h = mix64(h, static_cast<std::uint64_t>(c.ema_alpha_max_q15));
    h = mix64(h, static_cast<std::uint64_t>(c.ema_alpha_min_q15));
    h = mix64(h, static_cast<std::uint64_t>(c.mad_ref_q12));
  }
  return h;
}

std::vector<std::uint8_t> encode_checkpoint(
    const EngineCheckpoint& checkpoint) {
  std::vector<std::uint8_t> bytes;
  ByteWriter w(bytes);
  w.put_u32(kMagic);
  w.put_u32(kVersion);
  w.put_u64(checkpoint.config_hash);
  w.put_f64(checkpoint.next_round_s);
  w.put_f64(checkpoint.last_round_time_s);
  w.put_i64(checkpoint.bucket_second);
  w.put_u64(checkpoint.bucket_accepted);
  w.put_u64(checkpoint.next_round_id);
  encode_stats(w, checkpoint.stats);
  w.put_u64(checkpoint.identities.size());
  for (const IdentityCheckpoint& ic : checkpoint.identities) {
    w.put_u64(static_cast<std::uint64_t>(ic.id));
    w.put_f64(ic.last_heard_s);
    w.put_u64(static_cast<std::uint64_t>(ic.ring.capacity));
    w.put_u64(static_cast<std::uint64_t>(ic.ring.times.size()));
    for (double t : ic.ring.times) w.put_f64(t);
    for (double v : ic.ring.values) w.put_f64(v);
    w.put_f64(ic.ring.mean);
    w.put_f64(ic.ring.m2);
    // v3: conditioning channel — Hampel window oldest-first, then the
    // EMA register, its init flag, and the consecutive-reject streak.
    w.put_u64(static_cast<std::uint64_t>(ic.cond_window.size()));
    for (std::int32_t q : ic.cond_window) {
      w.put_i64(static_cast<std::int64_t>(q));
    }
    w.put_i64(static_cast<std::int64_t>(ic.cond_ema_q12));
    w.put_u8(ic.cond_ema_init ? 1 : 0);
    w.put_u32(ic.cond_reject_streak);
  }
  // Trailer: FNV-1a over everything before it.
  w.put_u64(fnv1a64(bytes));
  return bytes;
}

bool decode_checkpoint(std::span<const std::uint8_t> bytes,
                       EngineCheckpoint* out, std::string* error) {
  if (bytes.size() < 8 + 8) return fail(error, "checkpoint: truncated header");
  // Verify the trailer first — no field is trusted over bit rot.
  const std::uint64_t stored_sum =
      [&] {
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i) {
          v = (v << 8) | bytes[bytes.size() - 8 + static_cast<std::size_t>(i)];
        }
        return v;
      }();
  const auto body = bytes.subspan(0, bytes.size() - 8);
  if (fnv1a64(body) != stored_sum) {
    return fail(error, "checkpoint: checksum mismatch (corrupted bytes)");
  }

  ByteReader r(body);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!r.get_u32(magic) || magic != kMagic) {
    return fail(error, "checkpoint: bad magic (not a VPCK checkpoint)");
  }
  if (!r.get_u32(version) || version < kMinVersion || version > kVersion) {
    return fail(error, "checkpoint: unsupported version");
  }

  EngineCheckpoint cp;
  std::uint64_t identity_count = 0;
  if (!r.get_u64(cp.config_hash) || !r.get_f64(cp.next_round_s) ||
      !r.get_f64(cp.last_round_time_s) || !r.get_i64(cp.bucket_second) ||
      !r.get_u64(cp.bucket_accepted)) {
    return fail(error, "checkpoint: truncated engine fields");
  }
  if (version >= 2 && !r.get_u64(cp.next_round_id)) {
    return fail(error, "checkpoint: truncated engine fields");
  }
  if (!decode_stats(r, version, cp.stats) || !r.get_u64(identity_count)) {
    return fail(error, "checkpoint: truncated engine fields");
  }
  // v1 predates round ids; every executed round was also prepared, so the
  // rounds counter is the best (and usually exact) continuation point.
  if (version < 2) cp.next_round_id = cp.stats.rounds;
  // Each identity needs at least id + last_heard + capacity + size + the
  // two Welford doubles — reject absurd counts before reserving.
  if (identity_count > r.remaining() / (6 * 8)) {
    return fail(error, "checkpoint: identity count exceeds payload");
  }
  cp.identities.reserve(static_cast<std::size_t>(identity_count));
  IdentityId previous_id = 0;
  for (std::uint64_t i = 0; i < identity_count; ++i) {
    IdentityCheckpoint ic;
    std::uint64_t raw_id = 0;
    std::uint64_t capacity = 0;
    std::uint64_t samples = 0;
    if (!r.get_u64(raw_id) || !r.get_f64(ic.last_heard_s) ||
        !r.get_u64(capacity) || !r.get_u64(samples)) {
      return fail(error, "checkpoint: truncated identity header");
    }
    ic.id = static_cast<IdentityId>(raw_id);
    if (i > 0 && ic.id <= previous_id) {
      return fail(error, "checkpoint: identity ids not strictly ascending");
    }
    previous_id = ic.id;
    if (capacity < 1) return fail(error, "checkpoint: ring capacity < 1");
    if (samples > capacity) {
      return fail(error, "checkpoint: ring holds more samples than capacity");
    }
    if (samples > r.remaining() / 8) {
      return fail(error, "checkpoint: ring sample count exceeds payload");
    }
    ic.ring.capacity = static_cast<std::size_t>(capacity);
    ic.ring.times.resize(static_cast<std::size_t>(samples));
    ic.ring.values.resize(static_cast<std::size_t>(samples));
    for (double& t : ic.ring.times) {
      if (!r.get_f64(t)) return fail(error, "checkpoint: truncated ring times");
    }
    for (double& v : ic.ring.values) {
      if (!r.get_f64(v)) {
        return fail(error, "checkpoint: truncated ring values");
      }
    }
    if (!std::is_sorted(ic.ring.times.begin(), ic.ring.times.end())) {
      return fail(error, "checkpoint: ring times not sorted");
    }
    if (!r.get_f64(ic.ring.mean) || !r.get_f64(ic.ring.m2)) {
      return fail(error, "checkpoint: truncated ring summary");
    }
    if (version >= 3) {
      std::uint64_t cond_count = 0;
      if (!r.get_u64(cond_count)) {
        return fail(error, "checkpoint: truncated conditioner header");
      }
      if (cond_count > cond::kMaxWindow) {
        return fail(error, "checkpoint: conditioner window over maximum");
      }
      ic.cond_window.resize(static_cast<std::size_t>(cond_count));
      for (std::int32_t& q : ic.cond_window) {
        std::int64_t raw = 0;
        if (!r.get_i64(raw)) {
          return fail(error, "checkpoint: truncated conditioner window");
        }
        if (raw < std::numeric_limits<std::int32_t>::min() ||
            raw > std::numeric_limits<std::int32_t>::max()) {
          return fail(error, "checkpoint: conditioner sample out of range");
        }
        q = static_cast<std::int32_t>(raw);
      }
      std::int64_t ema_raw = 0;
      std::uint8_t init_raw = 0;
      if (!r.get_i64(ema_raw) || !r.get_u8(init_raw)) {
        return fail(error, "checkpoint: truncated conditioner register");
      }
      if (ema_raw < std::numeric_limits<std::int32_t>::min() ||
          ema_raw > std::numeric_limits<std::int32_t>::max()) {
        return fail(error, "checkpoint: conditioner register out of range");
      }
      if (init_raw > 1) {
        return fail(error, "checkpoint: conditioner init flag not boolean");
      }
      ic.cond_ema_q12 = static_cast<std::int32_t>(ema_raw);
      ic.cond_ema_init = init_raw == 1;
      if (!r.get_u32(ic.cond_reject_streak)) {
        return fail(error, "checkpoint: truncated conditioner streak");
      }
    }
    cp.identities.push_back(std::move(ic));
  }
  if (r.remaining() != 0) {
    return fail(error, "checkpoint: trailing bytes after last identity");
  }
  if (out != nullptr) *out = std::move(cp);
  return true;
}

bool save_checkpoint(const EngineCheckpoint& checkpoint,
                     const std::string& path, std::string* error) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint(checkpoint);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return fail(error, "checkpoint: cannot open " + tmp);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  if (std::fclose(f) != 0 || written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return fail(error, "checkpoint: short write to " + tmp);
  }
  // The previous checkpoint at `path` stays intact until this atomic step.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail(error, "checkpoint: cannot rename " + tmp + " over " + path);
  }
  return true;
}

bool load_checkpoint(const std::string& path, EngineCheckpoint* out,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail(error, "checkpoint: cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return fail(error, "checkpoint: read error on " + path);
  return decode_checkpoint(bytes, out, error);
}

}  // namespace vp::stream
