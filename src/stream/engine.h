// Online streaming Sybil detection (DESIGN.md §8).
//
// The paper's pipeline — collect a 20 s window, compare, confirm
// (Section IV-C) — is implemented in sim/ and core/ as an offline batch
// over an unbounded RssiLog. StreamEngine is the serving-layer version a
// real OBU needs: it ingests timestamped ⟨ID, RSSI⟩ beacons one at a
// time into bounded per-identity ring buffers (stream/beacon_buffer.h),
// keeps the sliding observation window incrementally, and every
// confirmation period cuts the window out of the rings and runs the
// unmodified core::VoiceprintDetector over it.
//
// Parity invariant: on any trace the rings fully retain (ring capacity
// and identity cap not exceeded, staleness horizon >= observation time),
// every confirmation round produces **bit-identical** suspect sets and
// pair distances to VoiceprintDetector::detect_window on the batch-cut
// window — at every thread count. Enforced by tests/test_stream_engine.cpp
// over simulator and field-test-replay traces.
//
// Overload behaviour: the engine never blocks, never allocates per
// beacon beyond its rings, and never exceeds its configured bounds.
// Excess load is shed explicitly — a beacons-per-second admission cap, a
// per-observer identity cap, ring eviction of the oldest samples — and
// every shed unit is counted (engine Stats and, when observability is
// enabled, the stream.* metrics).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "cond/conditioner.h"
#include "core/detector.h"
#include "stream/beacon_buffer.h"

namespace vp::stream {

struct StreamEngineConfig {
  // Window geometry; mirrors sim::ScenarioConfig so the engine's rounds
  // line up with World::detection_times (first round at
  // observation_time_s, then every round_period_s).
  double observation_time_s = 20.0;  // Table V
  double round_period_s = 20.0;      // the paper's detection period
  double density_estimation_period_s = 10.0;
  double max_transmission_range_m = 400.0;  // Dist_max of Eq. 9
  std::size_t min_samples = 4;  // identity needs this many in the window

  // --- Bounded-memory knobs --------------------------------------------
  // Per-identity ring capacity. 10 Hz beacons over a 20 s window are 200
  // samples; 256 leaves headroom for CCH+SCH double beaconing.
  std::size_t ring_capacity = 256;
  // Identities tracked at once per engine (observer). A new identity
  // arriving at the cap is shed — an attacker fabricating identities
  // cannot grow the observer's memory.
  std::size_t max_identities = 512;
  // Identities silent this long are dropped at the next round boundary.
  // Must be >= observation_time_s for batch parity (a shorter horizon
  // deliberately narrows what the engine remembers).
  double staleness_horizon_s = 40.0;
  // Admission cap in accepted beacons per second, bucketed on whole
  // seconds of stream time; 0 = unlimited. Beacons over the cap are shed
  // before touching any ring.
  double max_ingest_rate_hz = 0.0;

  // --- Ingestion validation (DESIGN.md §10) ------------------------------
  // The validation front runs before any other admission step and before
  // the stream clock moves: a beacon with a non-finite RSSI, an RSSI
  // outside [min_valid_rssi_dbm, max_valid_rssi_dbm], or a non-finite or
  // negative timestamp is shed (per-reason counters in Stats and the
  // stream.shed_invalid.* metrics) without touching any engine state.
  // Disabling validation is for trusted-replay ablations only — a
  // hostile +inf timestamp would otherwise drive the round scheduler
  // forever. On a clean trace validation sheds nothing, so enabling it
  // leaves output bit-identical.
  bool validate_ingest = true;
  double min_valid_rssi_dbm = -150.0;  // below thermal-noise plausibility
  double max_valid_rssi_dbm = 50.0;    // far above any legal DSRC EIRP

  // --- Signal conditioning (DESIGN.md §15) -------------------------------
  // Optional fixed-point Hampel/MAD + adaptive-EMA pre-filter between the
  // admission front and the ring buffer: per-identity, deterministic,
  // allocation-free integer arithmetic (cond/conditioner.h). A sample the
  // Hampel stage hard-rejects is shed (kShedConditioned); accepted
  // samples enter the ring with the EMA output in place of the raw RSSI.
  // Off by default — with conditioning off the engine is bit-identical
  // to the unconditioned pipeline, and the cond.* counters stay zero.
  bool condition_ingest = false;
  cond::CondConfig conditioning{};

  // Detector options for the rounds (threads, boundary, fixed density …).
  // The engine feeds the same series the batch window cut would.
  core::VoiceprintOptions detector{};
};

// What one confirmation round produced.
struct StreamRound {
  std::uint64_t round_id = 0;        // causal id, sequential per engine
  double time_s = 0.0;               // window is [time_s - observation, time_s)
  std::size_t identities_heard = 0;  // series handed to the detector
  double density_per_km = 0.0;       // Eq. 9 over the estimation period
  std::vector<IdentityId> suspects;
  std::vector<core::PairDistance> pairs;  // detector's last_all_pairs()
};

// A confirmation round's detector input, captured at the moment the round
// fell due — the window cut out of the rings and the Eq. 9 density, i.e.
// everything whose value depends on ring state. Given a RoundInput, the
// detector's results are a pure function of it, which is what lets a
// serving layer (service::DetectionService) run the expensive part later
// on another thread without touching parity.
struct RoundInput {
  // Causal round id, assigned at preparation time (sequential per
  // engine, checkpointed). Spans recorded while the round executes carry
  // it — detector-internal spans inherit it through the thread's
  // SpanContext — so a trace joins per confirmation round even when the
  // service runs rounds on pool workers.
  std::uint64_t round_id = 0;
  double time_s = 0.0;  // window is [time_s - observation, time_s)
  double density_per_km = 0.0;
  std::vector<core::NamedSeries> series;
};

struct EngineCheckpoint;  // stream/checkpoint.h

class StreamEngine {
 public:
  enum class Admission {
    kAccepted,
    kShedRateLimited,   // over max_ingest_rate_hz this second
    kShedIdentityCap,   // new identity at the max_identities cap
    kShedOutOfOrder,    // time regressed (per identity, or into a closed round)
    kShedInvalid,       // failed the validation front (see Stats for why)
    kShedConditioned,   // Hampel hard-reject in the conditioning stage
  };

  // Plain counters mirroring the stream.* metrics, always maintained (the
  // registry copies are gated on obs::enabled()). For every call,
  // beacons_offered == beacons_ingested + every shed counter (the three
  // overload classes plus the four shed_invalid reasons).
  struct Stats {
    std::uint64_t beacons_offered = 0;
    std::uint64_t beacons_ingested = 0;
    std::uint64_t beacons_shed_rate_limited = 0;
    std::uint64_t beacons_shed_identity_cap = 0;
    std::uint64_t beacons_shed_out_of_order = 0;
    // Validation front, by reason (stream.shed_invalid.* metrics).
    std::uint64_t shed_invalid_rssi_non_finite = 0;
    std::uint64_t shed_invalid_rssi_out_of_range = 0;
    std::uint64_t shed_invalid_time_non_finite = 0;
    std::uint64_t shed_invalid_time_negative = 0;
    // Conditioning stage (DESIGN.md §15): every beacon offered to the
    // conditioner lands in exactly one of passed/clamped/rejected (the
    // cond.* metrics and the conservation.cond.samples law); a rejected
    // beacon is also counted here as beacons_shed_conditioned.
    std::uint64_t beacons_shed_conditioned = 0;
    std::uint64_t cond_offered = 0;
    std::uint64_t cond_passed = 0;
    std::uint64_t cond_clamped = 0;
    std::uint64_t cond_rejected = 0;
    std::uint64_t ring_evictions = 0;    // capacity-pressure drops
    std::uint64_t samples_expired = 0;   // aged past the observation window
    std::uint64_t identities_expired = 0;
    std::uint64_t rounds = 0;

    std::uint64_t shed_invalid_total() const {
      return shed_invalid_rssi_non_finite + shed_invalid_rssi_out_of_range +
             shed_invalid_time_non_finite + shed_invalid_time_negative;
    }
    std::uint64_t shed_total() const {
      return beacons_shed_rate_limited + beacons_shed_identity_cap +
             beacons_shed_out_of_order + beacons_shed_conditioned +
             shed_invalid_total();
    }
  };

  explicit StreamEngine(StreamEngineConfig config);

  // Restores a checkpointed engine (DESIGN.md §10). `config` must carry
  // the same engine-level geometry the checkpoint was taken under
  // (engine_config_hash match, VP_REQUIRE otherwise) and the caller must
  // supply the same detector options; the restored engine then emits
  // bit-identical rounds to the uninterrupted one from the checkpoint
  // beacon onward (tests/test_checkpoint.cpp). last_round() starts empty:
  // completed rounds belong to whoever consumed them before the save.
  StreamEngine(StreamEngineConfig config, const EngineCheckpoint& checkpoint);

  // Captures the complete detection-relevant state: every identity's ring
  // and last-heard time, the round schedule, admission-bucket bookkeeping
  // and Stats. Callable at any beacon boundary.
  EngineCheckpoint checkpoint() const;

  // Feeds one beacon, running any confirmation rounds that fall due at or
  // before its timestamp first (a round at t sees exactly the beacons
  // with time < t, matching the half-open batch window). Never throws on
  // overload — excess load is shed and counted.
  Admission ingest(IdentityId id, double time_s, double rssi_dbm);

  // Advances stream time without a beacon, running any due rounds —
  // call with the trace end time to flush the final round(s).
  void advance_to(double time_s);

  // Invoked synchronously after every confirmation round (memory stays
  // bounded: the engine itself retains only last_round()).
  void set_round_callback(std::function<void(const StreamRound&)> callback) {
    callback_ = std::move(callback);
  }

  // Deferred round execution, for a serving layer multiplexing many
  // engines. When set, a due round is *prepared* inline — staleness
  // expiry, window cut, Eq. 9 density: everything that must see the rings
  // exactly as the triggering beacon found them — and handed to `defer`
  // instead of running the detector. The owner later completes it with
  // run_prepared_round (in preparation order, never concurrently with
  // ingest/advance_to on this engine) or drops it under overload; either
  // way the engine's window bookkeeping has already moved on, so
  // subsequent beacons are admitted exactly as if the round had run.
  void set_round_deferral(std::function<void(RoundInput&&)> defer) {
    defer_ = std::move(defer);
  }

  // Completes a prepared round: runs the unmodified detector over the
  // input, updates Stats::rounds and last_round(), and invokes the round
  // callback. Results are bit-identical to the inline path — the input
  // already fixes the window and density, and the detector is a pure
  // function of them. Also the tail of the inline path itself.
  const StreamRound& run_prepared_round(RoundInput input);

  const std::optional<StreamRound>& last_round() const { return last_round_; }
  const Stats& stats() const { return stats_; }
  std::size_t identities_tracked() const { return states_.size(); }
  double next_round_time() const { return next_round_; }
  // Id the next prepared round will carry (count of rounds prepared so
  // far; survives checkpoint/restore).
  std::uint64_t next_round_id() const { return next_round_id_; }
  const StreamEngineConfig& config() const { return config_; }

 private:
  struct IdentityState {
    BeaconBuffer ring;
    double last_heard_s = 0.0;  // survives the ring ageing empty
    // Per-channel conditioning state; untouched (and unserialised) when
    // condition_ingest is off.
    cond::Conditioner conditioner;
    explicit IdentityState(std::size_t capacity) : ring(capacity) {}
  };

  void run_round(double t);
  void expire_stale(double t);

  StreamEngineConfig config_;
  core::VoiceprintDetector detector_;
  // Sorted by identity id — the same order RssiLog's std::map gives the
  // batch window cut, which the pair list's ordering parity relies on.
  std::map<IdentityId, IdentityState> states_;
  std::function<void(const StreamRound&)> callback_;
  std::function<void(RoundInput&&)> defer_;
  std::optional<StreamRound> last_round_;
  Stats stats_;

  double next_round_ = 0.0;
  double last_round_time_ = -1.0;
  std::uint64_t next_round_id_ = 0;
  // Admission bucket: accepted count within [bucket_second_, +1 s).
  std::int64_t bucket_second_ = 0;
  std::uint64_t bucket_accepted_ = 0;

  // Reused across rounds so a round allocates only for its results.
  std::vector<core::NamedSeries> round_series_;
};

}  // namespace vp::stream
