// The safety beacon (WSMP single-hop broadcast) every identity transmits at
// 10 Hz on the control channel: identity, claimed GPS position, speed and
// direction (Section III-B). For Sybil identities the claimed position is
// forged; the physical TX power may also differ per identity
// (Assumption 3).
#pragma once

#include <cstddef>

#include "common/ids.h"
#include "mobility/state.h"

namespace vp::mac {

struct Frame {
  IdentityId identity = kInvalidIdentity;
  NodeId sender = kInvalidNode;  // physical radio (not visible on air)
  double tx_power_dbm = 20.0;
  mob::Vec2 claimed_position;    // what the payload says; forged for Sybils
  double claimed_speed_mps = 0.0;
  std::size_t payload_bytes = 500;  // Table III
};

}  // namespace vp::mac
