// Simplified IEEE 802.11p broadcast CSMA/CA for the control channel.
//
// Broadcast beacons get no ACKs, so there are no retransmissions and the
// contention window stays fixed. A node with a queued frame waits for the
// channel to be idle, defers AIFS plus a uniform backoff, re-senses, and
// transmits. Two nodes whose backoffs expire inside each other's vulnerable
// window (or that cannot hear each other — hidden terminals) transmit
// concurrently and collide at receivers caught in between; that is the
// density-dependent loss mechanism Section V-C discusses.
//
// A malicious node's single radio carries the beacons of ALL its identities
// through this one queue (Assumption 2: one OBU, 10n packets/s for n fake
// identities).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/event_queue.h"
#include "common/rng.h"
#include "mac/channel.h"
#include "mac/frame.h"
#include "mac/phy.h"

namespace vp::mac {

class CsmaCa {
 public:
  // `position_fn` reports the radio's current position (carrier sensing is
  // location-dependent); `transmit_fn` is invoked exactly when a frame
  // starts occupying the air — the owner registers it with the channel and
  // must call on_transmission_complete() at its end.
  using PositionFn = std::function<mob::Vec2()>;
  using TransmitFn = std::function<void(const Frame&)>;

  CsmaCa(PhyParams phy, const Channel& channel, EventQueue& queue, Rng rng,
         NodeId self, PositionFn position_fn, TransmitFn transmit_fn,
         std::size_t queue_capacity = 64);

  // Enqueues a frame for transmission; oldest-first service. Returns false
  // (and counts a drop) if the queue is full.
  bool enqueue(const Frame& frame);

  // Must be called by the owner when the frame handed to `transmit_fn`
  // leaves the air.
  void on_transmission_complete();

  std::size_t queue_depth() const { return queue_.size(); }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t sent() const { return sent_; }

 private:
  // Starts an access attempt if one is not already pending.
  void try_send();
  // Fires when the deferral (AIFS + backoff) elapses: re-sense and either
  // transmit or start over.
  void on_backoff_expired();
  double draw_deferral_s();

  PhyParams phy_;
  const Channel& channel_;
  EventQueue& queue_ref_;
  Rng rng_;
  NodeId self_;
  PositionFn position_fn_;
  TransmitFn transmit_fn_;
  std::size_t capacity_;

  std::deque<Frame> queue_;
  bool transmitting_ = false;
  bool attempt_pending_ = false;
  std::uint64_t drops_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace vp::mac
