// The shared broadcast medium. Tracks every in-flight (and recently ended)
// transmission so that (a) CSMA nodes can carrier-sense, and (b) receivers
// can accumulate co-channel interference for frames that overlapped in
// time — the collision mechanism behind the paper's observation that
// packet loss grows with traffic density and degrades Voiceprint's
// detection rate (Section V-C).
#pragma once

#include <cstdint>
#include <vector>

#include "mac/frame.h"
#include "mac/phy.h"
#include "radio/propagation.h"

namespace vp::mac {

using TransmissionSeq = std::uint64_t;

struct Transmission {
  TransmissionSeq seq = 0;
  Frame frame;
  mob::Vec2 tx_position;  // where the radio physically was at TX start
  double start_s = 0.0;
  double end_s = 0.0;
};

class Channel {
 public:
  // The channel reads (does not own) the propagation model; `phy` supplies
  // the carrier-sense threshold.
  Channel(const radio::PropagationModel& model, PhyParams phy);

  // Registers a transmission; returns its sequence number.
  TransmissionSeq begin(Frame frame, mob::Vec2 tx_position, double start_s,
                        double airtime_s);

  // Latest end time among transmissions audible (mean power >= carrier
  // sense threshold) at `pos`, ignoring transmissions from `exclude`.
  // Returns `now_s` when the channel is idle there.
  double busy_until(mob::Vec2 pos, double now_s, NodeId exclude) const;

  // Total interference power (linear mW, mean path loss) at `pos` from
  // transmissions other than `seq` whose air interval overlaps
  // [start_s, end_s).
  double interference_mw(mob::Vec2 pos, double start_s, double end_s,
                         TransmissionSeq seq) const;

  // True if `node` had a transmission of its own overlapping [t0, t1) —
  // a half-duplex radio cannot receive while transmitting.
  bool node_transmitting_during(NodeId node, double t0, double t1) const;

  // Drops transmissions that ended before `horizon_s`; call periodically
  // (anything ending before the oldest frame still in flight can no longer
  // interfere).
  void prune(double horizon_s);

  std::size_t active_count(double now_s) const;
  std::uint64_t total_transmissions() const { return next_seq_; }

 private:
  const radio::PropagationModel& model_;
  PhyParams phy_;
  std::vector<Transmission> transmissions_;
  TransmissionSeq next_seq_ = 0;
};

}  // namespace vp::mac
