#include "mac/channel.h"

#include <algorithm>

#include "common/error.h"
#include "common/units.h"

namespace vp::mac {

Channel::Channel(const radio::PropagationModel& model, PhyParams phy)
    : model_(model), phy_(phy) {}

TransmissionSeq Channel::begin(Frame frame, mob::Vec2 tx_position,
                               double start_s, double airtime_s) {
  VP_REQUIRE(airtime_s > 0.0);
  Transmission t;
  t.seq = next_seq_++;
  t.frame = frame;
  t.tx_position = tx_position;
  t.start_s = start_s;
  t.end_s = start_s + airtime_s;
  transmissions_.push_back(t);
  return t.seq;
}

double Channel::busy_until(mob::Vec2 pos, double now_s, NodeId exclude) const {
  double until = now_s;
  for (const Transmission& t : transmissions_) {
    if (t.end_s <= now_s || t.frame.sender == exclude) continue;
    if (t.start_s > now_s) continue;  // not yet on the air
    const double d = std::max(mob::distance(pos, t.tx_position), 1.0);
    const double power =
        model_.mean_rx_power_dbm(t.frame.tx_power_dbm, d, now_s);
    if (power >= phy_.cs_threshold_dbm) until = std::max(until, t.end_s);
  }
  return until;
}

double Channel::interference_mw(mob::Vec2 pos, double start_s, double end_s,
                                TransmissionSeq seq) const {
  double total_mw = 0.0;
  for (const Transmission& t : transmissions_) {
    if (t.seq == seq) continue;
    if (t.end_s <= start_s || t.start_s >= end_s) continue;  // no overlap
    const double d = std::max(mob::distance(pos, t.tx_position), 1.0);
    const double power_dbm =
        model_.mean_rx_power_dbm(t.frame.tx_power_dbm, d, t.start_s);
    total_mw += units::dbm_to_mw(power_dbm);
  }
  return total_mw;
}

bool Channel::node_transmitting_during(NodeId node, double t0,
                                       double t1) const {
  for (const Transmission& t : transmissions_) {
    if (t.frame.sender != node) continue;
    if (t.end_s > t0 && t.start_s < t1) return true;
  }
  return false;
}

void Channel::prune(double horizon_s) {
  transmissions_.erase(
      std::remove_if(transmissions_.begin(), transmissions_.end(),
                     [horizon_s](const Transmission& t) {
                       return t.end_s < horizon_s;
                     }),
      transmissions_.end());
}

std::size_t Channel::active_count(double now_s) const {
  std::size_t n = 0;
  for (const Transmission& t : transmissions_) {
    if (t.start_s <= now_s && t.end_s > now_s) ++n;
  }
  return n;
}

}  // namespace vp::mac
