#include "mac/csma_ca.h"

#include <utility>

#include "common/error.h"

namespace vp::mac {

CsmaCa::CsmaCa(PhyParams phy, const Channel& channel, EventQueue& queue,
               Rng rng, NodeId self, PositionFn position_fn,
               TransmitFn transmit_fn, std::size_t queue_capacity)
    : phy_(phy),
      channel_(channel),
      queue_ref_(queue),
      rng_(std::move(rng)),
      self_(self),
      position_fn_(std::move(position_fn)),
      transmit_fn_(std::move(transmit_fn)),
      capacity_(queue_capacity) {
  VP_REQUIRE(queue_capacity > 0);
  VP_REQUIRE(position_fn_ && transmit_fn_);
}

bool CsmaCa::enqueue(const Frame& frame) {
  if (queue_.size() >= capacity_) {
    ++drops_;
    return false;
  }
  queue_.push_back(frame);
  try_send();
  return true;
}

void CsmaCa::on_transmission_complete() {
  VP_REQUIRE(transmitting_);
  transmitting_ = false;
  try_send();
}

double CsmaCa::draw_deferral_s() {
  const auto slots = static_cast<double>(
      rng_.uniform_int(0, static_cast<std::int64_t>(phy_.contention_window)));
  return (phy_.aifs_us() + slots * phy_.slot_us) * 1e-6;
}

void CsmaCa::try_send() {
  if (transmitting_ || attempt_pending_ || queue_.empty()) return;
  attempt_pending_ = true;
  const double now = queue_ref_.now();
  const double busy_until = channel_.busy_until(position_fn_(), now, self_);
  // If the channel is busy, defer from its projected release; otherwise
  // defer from now. Either way re-sense when the deferral expires.
  const double start = busy_until > now ? busy_until : now;
  queue_ref_.schedule(start + draw_deferral_s(),
                      [this] { on_backoff_expired(); });
}

void CsmaCa::on_backoff_expired() {
  VP_ASSERT(attempt_pending_);
  attempt_pending_ = false;
  if (transmitting_ || queue_.empty()) return;
  const double now = queue_ref_.now();
  const double busy_until = channel_.busy_until(position_fn_(), now, self_);
  if (busy_until > now) {
    // Someone grabbed the channel during our backoff: start a fresh attempt.
    try_send();
    return;
  }
  Frame frame = queue_.front();
  queue_.pop_front();
  transmitting_ = true;
  ++sent_;
  transmit_fn_(frame);
}

}  // namespace vp::mac
