// IEEE 802.11p PHY/MAC timing parameters for the 10 MHz control channel
// (Table V: slot 13 µs, SIFS 32 µs, 3 Mbps, 500-byte beacons).
#pragma once

#include <cstddef>

namespace vp::mac {

struct PhyParams {
  double data_rate_bps = 3e6;
  double preamble_us = 40.0;  // PLCP preamble + signal field at 10 MHz
  double slot_us = 13.0;
  double sifs_us = 32.0;
  // Broadcast frames use a fixed contention window (no retries, no ACK).
  unsigned contention_window = 15;
  // Carrier-sense threshold: mean power above this marks the channel busy.
  double cs_threshold_dbm = -94.0;

  // Arbitration inter-frame space (AIFSN = 2, as for the CCH best-effort
  // access category).
  double aifs_us() const { return sifs_us + 2.0 * slot_us; }

  // Time a frame of `payload_bytes` occupies the air, in seconds.
  double airtime_s(std::size_t payload_bytes) const {
    const double payload_us =
        static_cast<double>(payload_bytes) * 8.0 / data_rate_bps * 1e6;
    return (preamble_us + payload_us) * 1e-6;
  }
};

}  // namespace vp::mac
