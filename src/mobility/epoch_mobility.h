// The continuous-time stochastic mobility model of Section V-A: a
// vehicle's motion is a sequence of mobility epochs whose lengths are
// i.i.d. exponential with rate λe; during each epoch it holds a constant
// speed drawn i.i.d. from N(µv, σv). Defaults follow Table V
// (λe = 0.2 s⁻¹, µv = 25 m/s, σv = 5 m/s).
#pragma once

#include "common/rng.h"
#include "mobility/highway.h"
#include "mobility/state.h"

namespace vp::mob {

struct EpochMobilityParams {
  double epoch_rate_per_s = 0.2;  // λe
  double mean_speed_mps = 25.0;   // µv
  double sigma_speed_mps = 5.0;   // σv
  // Draws are clamped here so a tail sample cannot stop or reverse traffic.
  double min_speed_mps = 1.0;
  double max_speed_mps = 50.0;
};

class EpochMobility {
 public:
  // The initial epoch starts at time 0 with a freshly drawn speed.
  EpochMobility(EpochMobilityParams params, VehicleState initial, Rng rng);

  // Advances by dt seconds (dt >= 0), crossing as many epoch boundaries as
  // fall inside the interval and applying the highway's wrap rule.
  void advance(double dt, const Highway& highway);

  const VehicleState& state() const { return state_; }
  const EpochMobilityParams& params() const { return params_; }

  // Number of epochs started so far (>= 1); exposed for tests.
  std::size_t epoch_count() const { return epoch_count_; }

 private:
  void start_new_epoch();

  EpochMobilityParams params_;
  VehicleState state_;
  Rng rng_;
  double time_to_epoch_end_ = 0.0;
  std::size_t epoch_count_ = 0;
};

}  // namespace vp::mob
