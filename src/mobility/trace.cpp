#include "mobility/trace.h"

#include <algorithm>

#include "common/error.h"

namespace vp::mob {

void Trace::add(double time_s, Vec2 position, double speed_mps) {
  VP_REQUIRE(points_.empty() || time_s >= points_.back().time_s);
  points_.push_back({time_s, position, speed_mps});
}

const TracePoint& Trace::point(std::size_t i) const {
  VP_REQUIRE(i < points_.size());
  return points_[i];
}

Vec2 Trace::position_at(double time_s) const {
  VP_REQUIRE(!points_.empty());
  if (time_s <= points_.front().time_s) return points_.front().position;
  if (time_s >= points_.back().time_s) return points_.back().position;
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), time_s,
      [](double t, const TracePoint& p) { return t < p.time_s; });
  const TracePoint& b = *it;
  const TracePoint& a = *(it - 1);
  const double frac = (time_s - a.time_s) / (b.time_s - a.time_s);
  return a.position + frac * (b.position - a.position);
}

double Trace::mean_speed_mps() const {
  VP_REQUIRE(!points_.empty());
  double acc = 0.0;
  for (const TracePoint& p : points_) acc += p.speed_mps;
  return acc / static_cast<double>(points_.size());
}

bool Trace::is_stationary(double t0, double t1, double speed_floor_mps) const {
  bool any = false;
  for (const TracePoint& p : points_) {
    if (p.time_s < t0 || p.time_s >= t1) continue;
    any = true;
    if (p.speed_mps >= speed_floor_mps) return false;
  }
  return any;
}

double distance_at(const Trace& a, const Trace& b, double time_s) {
  return distance(a.position_at(time_s), b.position_at(time_s));
}

}  // namespace vp::mob
