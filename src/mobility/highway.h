// The simulation road of Section V-A: a 2 km bi-directional highway with
// 2 lanes per direction (lane width 3.6 m). Vehicles that reach the end of
// one direction re-enter at the beginning of the other direction.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "mobility/state.h"

namespace vp::mob {

struct HighwayConfig {
  double length_m = 2000.0;
  std::size_t lanes_per_direction = 2;
  double lane_width_m = 3.6;
};

class Highway {
 public:
  explicit Highway(HighwayConfig config = {});

  double length_m() const { return config_.length_m; }
  std::size_t lane_count() const { return 2 * config_.lanes_per_direction; }

  // Lanes [0, lanes_per_direction) drive forward, the rest backward.
  Direction lane_direction(std::size_t lane) const;
  double lane_center_y(std::size_t lane) const;

  // A lane of the opposite direction "mirroring" this one (outer stays
  // outer); where a wrapping vehicle continues.
  std::size_t opposite_lane(std::size_t lane) const;

  // Applies the end-of-road rule: a vehicle that ran past either end is
  // placed at that end in a lane of the other direction, preserving the
  // overshoot distance.
  void wrap(VehicleState& state) const;

  // Uniformly random initial state: lane uniform, x uniform along the road,
  // speed drawn by the caller afterwards.
  VehicleState random_state(Rng& rng) const;

  const HighwayConfig& config() const { return config_; }

 private:
  HighwayConfig config_;
};

}  // namespace vp::mob
