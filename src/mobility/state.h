// Geometry and kinematic state shared by the mobility models.
#pragma once

#include <cmath>
#include <cstddef>

namespace vp::mob {

// Planar position in metres: x runs along the road, y across it.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(double s, Vec2 v) { return {s * v.x, s * v.y}; }
};

inline double distance(Vec2 a, Vec2 b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

// Driving direction along the x axis.
enum class Direction : int { kForward = +1, kBackward = -1 };

inline double sign(Direction d) { return d == Direction::kForward ? 1.0 : -1.0; }

struct VehicleState {
  Vec2 position;
  double speed_mps = 0.0;
  Direction direction = Direction::kForward;
  std::size_t lane = 0;
};

}  // namespace vp::mob
