#include "mobility/highway.h"

#include "common/error.h"

namespace vp::mob {

Highway::Highway(HighwayConfig config) : config_(config) {
  VP_REQUIRE(config.length_m > 0.0);
  VP_REQUIRE(config.lanes_per_direction > 0);
  VP_REQUIRE(config.lane_width_m > 0.0);
}

Direction Highway::lane_direction(std::size_t lane) const {
  VP_REQUIRE(lane < lane_count());
  return lane < config_.lanes_per_direction ? Direction::kForward
                                            : Direction::kBackward;
}

double Highway::lane_center_y(std::size_t lane) const {
  VP_REQUIRE(lane < lane_count());
  return (static_cast<double>(lane) + 0.5) * config_.lane_width_m;
}

std::size_t Highway::opposite_lane(std::size_t lane) const {
  VP_REQUIRE(lane < lane_count());
  // Mirror across the median: lane i ↔ lane (count-1-i) keeps outer lanes
  // outer and inner lanes inner.
  return lane_count() - 1 - lane;
}

void Highway::wrap(VehicleState& state) const {
  const double len = config_.length_m;
  // A long dt could in principle overshoot more than a full road length;
  // loop until the vehicle is back on the road.
  while (state.position.x < 0.0 || state.position.x > len) {
    if (state.position.x > len) {
      // Ran off the forward end: continue backward from that end.
      state.position.x = len - (state.position.x - len);
      state.lane = opposite_lane(state.lane);
      state.direction = lane_direction(state.lane);
    } else {
      state.position.x = -state.position.x;
      state.lane = opposite_lane(state.lane);
      state.direction = lane_direction(state.lane);
    }
    state.position.y = lane_center_y(state.lane);
  }
}

VehicleState Highway::random_state(Rng& rng) const {
  VehicleState s;
  s.lane = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(lane_count()) - 1));
  s.direction = lane_direction(s.lane);
  s.position.x = rng.uniform(0.0, config_.length_m);
  s.position.y = lane_center_y(s.lane);
  return s;
}

}  // namespace vp::mob
