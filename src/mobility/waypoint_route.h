// Time-stamped waypoint routes: the GPS-trace substitute the synthetic
// field test (Section VI) drives its four vehicles with. Consecutive
// waypoints with the same position model a stop (e.g. the red light at the
// urban intersection behind the paper's single false positive, Fig. 14).
#pragma once

#include <vector>

#include "mobility/state.h"

namespace vp::mob {

struct Waypoint {
  double time_s = 0.0;
  Vec2 position;
};

class WaypointRoute {
 public:
  // Waypoints must be non-empty and strictly increasing in time.
  explicit WaypointRoute(std::vector<Waypoint> waypoints);

  // Piecewise-linear position; clamps before the first / after the last
  // waypoint.
  Vec2 position_at(double time_s) const;

  // Instantaneous speed of the active segment (0 at stops and outside the
  // route's time span).
  double speed_at(double time_s) const;

  double start_time_s() const { return waypoints_.front().time_s; }
  double end_time_s() const { return waypoints_.back().time_s; }
  std::size_t size() const { return waypoints_.size(); }

  // Route that stays at one position for [t0, t1].
  static WaypointRoute stationary(Vec2 position, double t0, double t1);

  // Constant-velocity route from `from` at t0 to `to` at t1.
  static WaypointRoute linear(Vec2 from, Vec2 to, double t0, double t1);

  // Appends another route; its first waypoint must be at or after this
  // route's last time.
  WaypointRoute& then(const WaypointRoute& next);

  // Appends a stop of the given duration at the current end position.
  WaypointRoute& then_stop(double duration_s);

  // Appends a constant-speed leg to `to`, taking `duration_s`.
  WaypointRoute& then_move_to(Vec2 to, double duration_s);

 private:
  std::vector<Waypoint> waypoints_;
};

}  // namespace vp::mob
