#include "mobility/epoch_mobility.h"

#include <algorithm>

#include "common/error.h"

namespace vp::mob {

EpochMobility::EpochMobility(EpochMobilityParams params, VehicleState initial,
                             Rng rng)
    : params_(params), state_(initial), rng_(rng) {
  VP_REQUIRE(params.epoch_rate_per_s > 0.0);
  VP_REQUIRE(params.sigma_speed_mps >= 0.0);
  VP_REQUIRE(params.min_speed_mps > 0.0);
  VP_REQUIRE(params.max_speed_mps >= params.mean_speed_mps);
  start_new_epoch();
}

void EpochMobility::start_new_epoch() {
  state_.speed_mps =
      std::clamp(rng_.normal(params_.mean_speed_mps, params_.sigma_speed_mps),
                 params_.min_speed_mps, params_.max_speed_mps);
  time_to_epoch_end_ = rng_.exponential(params_.epoch_rate_per_s);
  ++epoch_count_;
}

void EpochMobility::advance(double dt, const Highway& highway) {
  VP_REQUIRE(dt >= 0.0);
  double remaining = dt;
  while (remaining > 0.0) {
    const double step = std::min(remaining, time_to_epoch_end_);
    state_.position.x += sign(state_.direction) * state_.speed_mps * step;
    highway.wrap(state_);
    time_to_epoch_end_ -= step;
    remaining -= step;
    if (time_to_epoch_end_ <= 0.0) start_new_epoch();
  }
}

}  // namespace vp::mob
