// Position traces: sampled vehicle states over time, plus derived
// quantities (pairwise distance series) used by tests and the field-test
// analysis of Fig. 14.
#pragma once

#include <vector>

#include "mobility/state.h"

namespace vp::mob {

struct TracePoint {
  double time_s = 0.0;
  Vec2 position;
  double speed_mps = 0.0;
};

class Trace {
 public:
  Trace() = default;

  void add(double time_s, Vec2 position, double speed_mps);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const TracePoint& point(std::size_t i) const;
  const std::vector<TracePoint>& points() const { return points_; }

  // Linear interpolation of position at an arbitrary time (clamped to the
  // trace's span). Requires a non-empty trace.
  Vec2 position_at(double time_s) const;

  // Mean speed over the trace; requires non-empty.
  double mean_speed_mps() const;

  // True if every sample in [t0, t1) moves slower than `speed_floor_mps` —
  // how the Fig. 14 analysis identifies "all vehicles stationary at the
  // intersection". Returns false if the window contains no samples.
  bool is_stationary(double t0, double t1, double speed_floor_mps) const;

 private:
  std::vector<TracePoint> points_;
};

// Distance between two traces at a common time.
double distance_at(const Trace& a, const Trace& b, double time_s);

}  // namespace vp::mob
