#include "mobility/waypoint_route.h"

#include <algorithm>

#include "common/error.h"

namespace vp::mob {

WaypointRoute::WaypointRoute(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  VP_REQUIRE(!waypoints_.empty());
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    VP_REQUIRE(waypoints_[i].time_s > waypoints_[i - 1].time_s);
  }
}

Vec2 WaypointRoute::position_at(double time_s) const {
  if (time_s <= waypoints_.front().time_s) return waypoints_.front().position;
  if (time_s >= waypoints_.back().time_s) return waypoints_.back().position;
  const auto it = std::upper_bound(
      waypoints_.begin(), waypoints_.end(), time_s,
      [](double t, const Waypoint& w) { return t < w.time_s; });
  const Waypoint& b = *it;
  const Waypoint& a = *(it - 1);
  const double frac = (time_s - a.time_s) / (b.time_s - a.time_s);
  return a.position + frac * (b.position - a.position);
}

double WaypointRoute::speed_at(double time_s) const {
  if (time_s < waypoints_.front().time_s ||
      time_s >= waypoints_.back().time_s) {
    return 0.0;
  }
  const auto it = std::upper_bound(
      waypoints_.begin(), waypoints_.end(), time_s,
      [](double t, const Waypoint& w) { return t < w.time_s; });
  if (it == waypoints_.begin() || it == waypoints_.end()) return 0.0;
  const Waypoint& b = *it;
  const Waypoint& a = *(it - 1);
  return distance(a.position, b.position) / (b.time_s - a.time_s);
}

WaypointRoute WaypointRoute::stationary(Vec2 position, double t0, double t1) {
  VP_REQUIRE(t1 > t0);
  return WaypointRoute({{t0, position}, {t1, position}});
}

WaypointRoute WaypointRoute::linear(Vec2 from, Vec2 to, double t0, double t1) {
  VP_REQUIRE(t1 > t0);
  return WaypointRoute({{t0, from}, {t1, to}});
}

WaypointRoute& WaypointRoute::then(const WaypointRoute& next) {
  VP_REQUIRE(next.start_time_s() >= end_time_s());
  for (const Waypoint& w : next.waypoints_) {
    if (w.time_s > end_time_s()) waypoints_.push_back(w);
  }
  return *this;
}

WaypointRoute& WaypointRoute::then_stop(double duration_s) {
  VP_REQUIRE(duration_s > 0.0);
  waypoints_.push_back(
      {end_time_s() + duration_s, waypoints_.back().position});
  return *this;
}

WaypointRoute& WaypointRoute::then_move_to(Vec2 to, double duration_s) {
  VP_REQUIRE(duration_s > 0.0);
  waypoints_.push_back({end_time_s() + duration_s, to});
  return *this;
}

}  // namespace vp::mob
