// Synthetic stand-in for the paper's four-vehicle DSRC field test
// (Scenario 3 of Section III-B, reused in Section VI; Fig. 4):
//
//   node 4 (normal) ———→            ~150 m ahead of the attacker
//   node 1 (malicious) ———→         broadcasts itself + Sybils 101, 102
//   node 2 (normal) ———→            side by side with node 1 (2.75–3.25 m)
//   node 3 (normal) ———→            ~195 m behind
//
// We do not have the ITRI IWCU OBU4.2 testbed, so the generator drives the
// convoy along per-area speed profiles (urban includes red-light stops)
// and synthesises receptions through the area's own Table IV dual-slope
// fit, with per-radio-pair correlated shadowing, −95 dBm sensitivity and
// integer-dBm quantisation — the ingredients that produce Figs. 5–7 and 13.
#pragma once

#include <map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "fieldtest/area.h"
#include "mobility/trace.h"
#include "radio/receiver.h"
#include "sim/rssi_log.h"

namespace vp::ft {

inline constexpr NodeId kMaliciousNode = 1;
inline constexpr NodeId kNormalNode2 = 2;  // side-by-side vehicle
inline constexpr NodeId kNormalNode3 = 3;  // trailing vehicle (Figs. 7, 13)
inline constexpr NodeId kNormalNode4 = 4;  // leading vehicle
inline constexpr IdentityId kSybil1 = 101;
inline constexpr IdentityId kSybil2 = 102;

struct FieldTestConfig {
  Area area = Area::kCampus;
  double duration_s = 0.0;  // 0 → the paper's duration for the area

  double beacon_rate_hz = 10.0;
  double tx_power_normal_dbm = 20.0;  // physical nodes 1–4 (Section VI-A)
  double tx_power_sybil1_dbm = 23.0;  // identity 101
  double tx_power_sybil2_dbm = 17.0;  // identity 102
  radio::LinkBudget link_budget{};

  double gap_ahead_m = 150.0;   // node 4 − node 1 along the road
  double gap_behind_m = 195.0;  // node 1 − node 3
  double side_gap_m = 3.0;      // node 2 lateral offset (2.75–3.25 m)
  // Sybil claimed positions, relative to the attacker's true position.
  double sybil1_claim_offset_m = 80.0;
  double sybil2_claim_offset_m = -120.0;

  double shadowing_coherence_time_s = 1.0;
  double measurement_noise_db = 0.5;
  radio::ReceiverConfig receiver{};  // −95 dBm, 1 dB quantisation

  double observation_time_s = 20.0;  // Section VI-A
  double detection_period_s = 60.0;  // Section VI-A: one detection per min
  double constant_threshold = 0.05046;  // Section VI-A

  // Urban stop behaviour (red lights): stop length and spacing ranges.
  double stop_duration_min_s = 20.0;
  double stop_duration_max_s = 45.0;
  double drive_between_stops_min_s = 60.0;
  double drive_between_stops_max_s = 150.0;

  std::uint64_t seed = 42;
};

struct FieldTestData {
  FieldTestConfig config;
  double duration_s = 0.0;
  // Per receiving physical node: everything it heard.
  std::map<NodeId, sim::RssiLog> logs;
  // Per physical node: its GPS trace.
  std::map<NodeId, mob::Trace> traces;
  std::vector<double> detection_times;

  static bool identity_is_attack(IdentityId id) {
    return id == kMaliciousNode || id == kSybil1 || id == kSybil2;
  }
  static NodeId identity_owner(IdentityId id) {
    return (id == kSybil1 || id == kSybil2) ? kMaliciousNode
                                            : static_cast<NodeId>(id);
  }
  static std::vector<NodeId> physical_nodes() {
    return {kMaliciousNode, kNormalNode2, kNormalNode3, kNormalNode4};
  }
  static std::vector<IdentityId> identities() {
    return {kMaliciousNode, kNormalNode2, kNormalNode3, kNormalNode4, kSybil1,
            kSybil2};
  }
};

// Runs the generator. Deterministic for a fixed config.
FieldTestData run_field_test(const FieldTestConfig& config);

}  // namespace vp::ft
