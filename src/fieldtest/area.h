// The four field-test environments of Section VI (campus, rural, urban,
// highway), each with its dual-slope channel parameters (Table IV for the
// three measured areas) and plausible convoy speed ranges.
#pragma once

#include <string_view>
#include <vector>

#include "radio/dual_slope.h"

namespace vp::ft {

enum class Area { kCampus, kRural, kUrban, kHighway };

std::string_view area_name(Area area);
std::vector<Area> all_areas();

// Channel parameters of the area (Table IV; highway uses the library's
// LOS-dominated extrapolation, see DualSlopeParams::highway()).
radio::DualSlopeParams area_params(Area area);

// Paper test durations (Section VI-B): 13 min 21 s, 22 min 40 s,
// 34 min 46 s, 11 min 12 s.
double area_duration_s(Area area);

// Convoy speed range driven in that area (m/s). Campus follows the paper's
// 10–15 km/h; urban driving includes red-light stops handled separately.
struct SpeedRange {
  double min_mps = 0.0;
  double max_mps = 0.0;
};
SpeedRange area_speed_range(Area area);

// Whether the area's traffic pattern includes full stops (the urban
// red-light behaviour behind the paper's single false positive, Fig. 14).
bool area_has_stops(Area area);

}  // namespace vp::ft
