#include "fieldtest/replay.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "core/threshold.h"

namespace vp::ft {

FieldReplayResult replay_field_test(const FieldTestData& data,
                                    const ReplayOptions& options) {
  std::vector<NodeId> observers = options.observers;
  if (observers.empty()) observers = {kNormalNode3};

  core::VoiceprintOptions vp_options;
  vp_options.comparison = options.comparison;
  vp_options.boundary =
      core::constant_boundary(data.config.constant_threshold);
  core::VoiceprintDetector detector(vp_options);

  FieldReplayResult result;
  double dr_sum = 0.0;
  std::size_t dr_n = 0;
  double fpr_sum = 0.0;
  std::size_t fpr_n = 0;

  for (NodeId observer : observers) {
    const auto log_it = data.logs.find(observer);
    VP_REQUIRE(log_it != data.logs.end());
    const sim::RssiLog& log = log_it->second;

    for (double t1 : data.detection_times) {
      const double t0 = t1 - data.config.observation_time_s;

      std::vector<core::NamedSeries> series;
      for (IdentityId id :
           log.identities_heard(t0, t1, options.min_samples)) {
        series.emplace_back(id, log.rssi_series(id, t0, t1));
      }
      if (series.size() < 2) continue;

      const std::vector<IdentityId> flagged =
          detector.detect_series(series, /*density_per_km=*/4.0);
      const std::set<IdentityId> flagged_set(flagged.begin(), flagged.end());

      FieldDetection detection;
      detection.time_s = t1;
      detection.observer = observer;
      detection.threshold = detector.last_threshold();
      for (const core::PairDistance& pair : detector.last_all_pairs()) {
        const bool same_radio = FieldTestData::identity_owner(pair.a) ==
                                FieldTestData::identity_owner(pair.b);
        detection.pairs.push_back(
            {.a = pair.a,
             .b = pair.b,
             .distance = pair.normalized,
             .sybil_pair = same_radio,
             .flagged = pair.normalized <= detection.threshold});
      }
      detection.flagged = flagged;
      for (const auto& [id, s] : series) {
        const bool attack = FieldTestData::identity_is_attack(id);
        const bool hit = flagged_set.count(id) != 0;
        if (attack) {
          ++detection.attack_identities_heard;
          if (hit) ++detection.attack_identities_flagged;
        } else {
          ++detection.normal_identities_heard;
          if (hit) {
            ++detection.normal_identities_flagged;
            // Fig. 14 style analysis of the false alarm.
            FalsePositiveAnalysis fp;
            fp.time_s = t1;
            fp.observer = observer;
            fp.victim = id;
            bool stationary = true;
            for (NodeId n : FieldTestData::physical_nodes()) {
              if (!data.traces.at(n).is_stationary(t0, t1, 0.5)) {
                stationary = false;
                break;
              }
            }
            fp.all_stationary = stationary;
            fp.dist_attacker_victim_m =
                mob::distance(data.traces.at(kMaliciousNode).position_at(t1),
                              data.traces.at(static_cast<NodeId>(id))
                                  .position_at(t1));
            fp.dist_observer_attacker_m =
                mob::distance(data.traces.at(observer).position_at(t1),
                              data.traces.at(kMaliciousNode).position_at(t1));
            result.false_positives.push_back(fp);
          }
        }
      }

      if (detection.attack_identities_heard > 0) {
        dr_sum += static_cast<double>(detection.attack_identities_flagged) /
                  static_cast<double>(detection.attack_identities_heard);
        ++dr_n;
      }
      if (detection.normal_identities_heard > 0) {
        fpr_sum += static_cast<double>(detection.normal_identities_flagged) /
                   static_cast<double>(detection.normal_identities_heard);
        ++fpr_n;
      }
      ++result.detection_count;
      result.detections.push_back(std::move(detection));
    }
  }

  result.detection_rate = dr_n == 0 ? 0.0 : dr_sum / static_cast<double>(dr_n);
  result.false_positive_rate =
      fpr_n == 0 ? 0.0 : fpr_sum / static_cast<double>(fpr_n);
  return result;
}

}  // namespace vp::ft
