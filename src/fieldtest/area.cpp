#include "fieldtest/area.h"

#include "common/error.h"
#include "common/units.h"

namespace vp::ft {

std::string_view area_name(Area area) {
  switch (area) {
    case Area::kCampus:
      return "campus";
    case Area::kRural:
      return "rural";
    case Area::kUrban:
      return "urban";
    case Area::kHighway:
      return "highway";
  }
  throw InternalError("unknown area");
}

std::vector<Area> all_areas() {
  return {Area::kCampus, Area::kRural, Area::kUrban, Area::kHighway};
}

radio::DualSlopeParams area_params(Area area) {
  switch (area) {
    case Area::kCampus:
      return radio::DualSlopeParams::campus();
    case Area::kRural:
      return radio::DualSlopeParams::rural();
    case Area::kUrban:
      return radio::DualSlopeParams::urban();
    case Area::kHighway:
      return radio::DualSlopeParams::highway();
  }
  throw InternalError("unknown area");
}

double area_duration_s(Area area) {
  switch (area) {
    case Area::kCampus:
      return 13.0 * 60.0 + 21.0;
    case Area::kRural:
      return 22.0 * 60.0 + 40.0;
    case Area::kUrban:
      return 34.0 * 60.0 + 46.0;
    case Area::kHighway:
      return 11.0 * 60.0 + 12.0;
  }
  throw InternalError("unknown area");
}

SpeedRange area_speed_range(Area area) {
  using units::kmh_to_mps;
  switch (area) {
    case Area::kCampus:
      return {kmh_to_mps(10.0), kmh_to_mps(15.0)};  // Section III-B
    case Area::kRural:
      return {kmh_to_mps(40.0), kmh_to_mps(60.0)};
    case Area::kUrban:
      return {kmh_to_mps(20.0), kmh_to_mps(40.0)};
    case Area::kHighway:
      return {kmh_to_mps(80.0), kmh_to_mps(100.0)};
  }
  throw InternalError("unknown area");
}

bool area_has_stops(Area area) { return area == Area::kUrban; }

}  // namespace vp::ft
