#include "fieldtest/scenario3.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "radio/fading.h"

namespace vp::ft {

namespace {

// Piecewise-linear profile of a scalar over an axis (time or distance).
class Profile {
 public:
  void add(double axis, double value) {
    VP_REQUIRE(points_.empty() || axis >= points_.back().first);
    points_.emplace_back(axis, value);
  }
  double at(double axis) const {
    VP_REQUIRE(!points_.empty());
    if (axis <= points_.front().first) return points_.front().second;
    if (axis >= points_.back().first) return points_.back().second;
    const auto it = std::upper_bound(
        points_.begin(), points_.end(), axis,
        [](double a, const std::pair<double, double>& p) { return a < p.first; });
    const auto& b = *it;
    const auto& a = *(it - 1);
    const double frac = (axis - a.first) / (b.first - a.first);
    return a.second + frac * (b.second - a.second);
  }

 private:
  std::vector<std::pair<double, double>> points_;
};

// Convoy speed profile: alternating drive segments (random speed from the
// area's range) and — in stop-and-go areas — full stops at red lights.
Profile build_speed_profile(const FieldTestConfig& config, double duration_s,
                            Rng& rng) {
  const SpeedRange range = area_speed_range(config.area);
  const bool stops = area_has_stops(config.area);
  Profile profile;
  double t = 0.0;
  profile.add(0.0, rng.uniform(range.min_mps, range.max_mps));
  while (t < duration_s) {
    const double drive =
        stops ? rng.uniform(config.drive_between_stops_min_s,
                            config.drive_between_stops_max_s)
              : rng.uniform(15.0, 45.0);
    // Ramp to a new cruise speed over a short transition, hold, and (in
    // stop areas) decelerate into a stop.
    const double v = rng.uniform(range.min_mps, range.max_mps);
    profile.add(t + 3.0, v);
    profile.add(t + drive, v);
    t += drive;
    if (stops && t < duration_s) {
      const double stop = rng.uniform(config.stop_duration_min_s,
                                      config.stop_duration_max_s);
      profile.add(t + 3.0, 0.0);
      profile.add(t + 3.0 + stop, 0.0);
      t += 3.0 + stop;
    }
  }
  return profile;
}

}  // namespace

FieldTestData run_field_test(const FieldTestConfig& config) {
  VP_REQUIRE(config.beacon_rate_hz > 0.0);
  FieldTestData data;
  data.config = config;
  data.duration_s =
      config.duration_s > 0.0 ? config.duration_s : area_duration_s(config.area);

  Rng rng(config.seed);
  Rng route_rng = rng.fork("route");
  Rng phase_rng = rng.fork("phase");
  radio::CorrelatedShadowingField field(config.shadowing_coherence_time_s,
                                        config.measurement_noise_db,
                                        rng.fork("shadowing"));
  const radio::DualSlopeModel model(units::kDsrcFrequencyHz,
                                    area_params(config.area),
                                    config.link_budget);
  const radio::Receiver receiver(config.receiver);

  // --- Kinematics ----------------------------------------------------------
  const Profile speed = build_speed_profile(config, data.duration_s, route_rng);

  // Gap factors drift with *distance travelled* so that inter-vehicle gaps
  // freeze while the convoy waits at a light (Fig. 14's stationary phase).
  Profile gap_ahead, gap_behind, side_jitter;
  {
    // Rough upper bound of distance travelled.
    const SpeedRange range = area_speed_range(config.area);
    const double max_dist = range.max_mps * data.duration_s + 1000.0;
    for (double s = 0.0; s <= max_dist; s += 250.0) {
      gap_ahead.add(s, route_rng.uniform(0.85, 1.15));
      gap_behind.add(s, route_rng.uniform(0.85, 1.15));
      side_jitter.add(s, route_rng.uniform(-0.25, 0.25));
    }
  }

  // Integrate the convoy's distance and lay down the four traces.
  const double tick = 0.1;
  double x = 0.0;
  for (double t = 0.0; t <= data.duration_s + 1e-9; t += tick) {
    const double v = speed.at(t);
    auto put = [&](NodeId node, mob::Vec2 pos, double spd) {
      data.traces[node].add(t, pos, spd);
    };
    put(kMaliciousNode, {x, 0.0}, v);
    put(kNormalNode2, {x + side_jitter.at(x), config.side_gap_m}, v);
    put(kNormalNode4, {x + config.gap_ahead_m * gap_ahead.at(x), 0.0}, v);
    put(kNormalNode3, {x - config.gap_behind_m * gap_behind.at(x), 0.0}, v);
    x += v * tick;
  }

  // --- Beacons --------------------------------------------------------------
  struct TxIdentity {
    IdentityId id;
    NodeId owner;
    double tx_power_dbm;
    double claim_offset_m;
    double phase_s;
  };
  std::vector<TxIdentity> identities = {
      {kMaliciousNode, kMaliciousNode, config.tx_power_normal_dbm, 0.0, 0.0},
      {kNormalNode2, kNormalNode2, config.tx_power_normal_dbm, 0.0, 0.0},
      {kNormalNode3, kNormalNode3, config.tx_power_normal_dbm, 0.0, 0.0},
      {kNormalNode4, kNormalNode4, config.tx_power_normal_dbm, 0.0, 0.0},
      {kSybil1, kMaliciousNode, config.tx_power_sybil1_dbm,
       config.sybil1_claim_offset_m, 0.0},
      {kSybil2, kMaliciousNode, config.tx_power_sybil2_dbm,
       config.sybil2_claim_offset_m, 0.0},
  };
  const double period = 1.0 / config.beacon_rate_hz;
  for (TxIdentity& tx : identities) {
    tx.phase_s = phase_rng.uniform(0.0, period);
  }
  // The attacker's radio drains one queue: its genuine beacon and the two
  // Sybil beacons leave back-to-back (~1.4 ms of airtime apart), riding
  // nearly identical instantaneous shadowing — the heart of Observation 3.
  const double attacker_phase = identities[0].phase_s;
  identities[4].phase_s = attacker_phase + 0.0015;  // Sybil 101
  identities[5].phase_s = attacker_phase + 0.0030;  // Sybil 102
  // Process beacons in global time order so each radio pair's shadowing
  // process advances monotonically.
  std::sort(identities.begin(), identities.end(),
            [](const TxIdentity& a, const TxIdentity& b) {
              return a.phase_s < b.phase_s;
            });

  const std::vector<NodeId> receivers = FieldTestData::physical_nodes();
  for (double slot = 0.0; slot < data.duration_s; slot += period) {
    for (const TxIdentity& tx : identities) {
      const double t = slot + tx.phase_s;
      if (t >= data.duration_s) continue;
      const mob::Vec2 tx_pos = data.traces[tx.owner].position_at(t);
      for (NodeId rx : receivers) {
        if (rx == tx.owner) continue;  // half duplex: own frames unseen
        const mob::Vec2 rx_pos = data.traces[rx].position_at(t);
        const double d = std::max(mob::distance(tx_pos, rx_pos), 1.0);
        const double mean = model.mean_rx_power_dbm(tx.tx_power_dbm, d, t);
        const double sigma = model.shadowing_sigma_db(d, t);
        const double rx_power =
            mean + field.sample(tx.owner, rx, sigma, t);
        const auto rssi = receiver.measure(rx_power);
        if (!rssi.has_value()) continue;
        data.logs[rx].record(tx.id,
                             {.time_s = t,
                              .rssi_dbm = *rssi,
                              .claimed_position = {tx_pos.x + tx.claim_offset_m,
                                                   tx_pos.y},
                              .claimed_speed_mps = speed.at(t),
                              .declared_tx_power_dbm = tx.tx_power_dbm});
      }
    }
  }

  // The first detection fires as soon as one observation window has
  // filled, then once per detection period (this also reproduces the
  // paper's detection counts of 14/23/35/11 for its four run durations).
  for (double t = config.observation_time_s; t <= data.duration_s + 1e-9;
       t += config.detection_period_s) {
    data.detection_times.push_back(t);
  }
  return data;
}

}  // namespace vp::ft
