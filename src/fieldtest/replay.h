// Field-test replay (Section VI-B): runs the embedded Voiceprint
// application over a generated four-vehicle run exactly as the paper's
// OBUs did — one detection per detection period (1 min), each using the
// trailing 20 s observation window and the constant threshold — and
// produces the Fig. 13 distance-vs-threshold records plus the Fig. 14
// style post-analysis of any false positive (was everybody stationary?).
#pragma once

#include <map>
#include <vector>

#include "core/detector.h"
#include "fieldtest/scenario3.h"

namespace vp::ft {

struct PairRecord {
  IdentityId a = kInvalidIdentity;
  IdentityId b = kInvalidIdentity;
  double distance = 0.0;  // normalised DTW distance
  bool sybil_pair = false;  // ground truth: same physical radio
  bool flagged = false;     // distance <= threshold
};

struct FieldDetection {
  double time_s = 0.0;
  NodeId observer = kInvalidNode;
  double threshold = 0.0;
  std::vector<PairRecord> pairs;
  std::vector<IdentityId> flagged;  // union of flagged pairs
  std::size_t attack_identities_heard = 0;
  std::size_t attack_identities_flagged = 0;
  std::size_t normal_identities_heard = 0;
  std::size_t normal_identities_flagged = 0;

  bool complete_detection() const {
    return attack_identities_heard > 0 &&
           attack_identities_flagged == attack_identities_heard;
  }
  bool has_false_positive() const { return normal_identities_flagged > 0; }
};

struct FalsePositiveAnalysis {
  double time_s = 0.0;
  NodeId observer = kInvalidNode;
  IdentityId victim = kInvalidIdentity;
  bool all_stationary = false;  // Fig. 14: everyone waiting at the light?
  double dist_attacker_victim_m = 0.0;
  double dist_observer_attacker_m = 0.0;
};

struct FieldReplayResult {
  std::vector<FieldDetection> detections;
  double detection_rate = 0.0;        // Eq. 12 over identities
  double false_positive_rate = 0.0;   // Eq. 13 over identities
  std::size_t detection_count = 0;    // periods evaluated
  std::vector<FalsePositiveAnalysis> false_positives;
};

struct ReplayOptions {
  // Observers to evaluate; empty → node 3 only (the paper reports node 3).
  std::vector<NodeId> observers{};
  std::size_t min_samples = 4;
  core::ComparisonOptions comparison{};
};

FieldReplayResult replay_field_test(const FieldTestData& data,
                                    const ReplayOptions& options = {});

}  // namespace vp::ft
