#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace vp::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Relaxed CAS loops for the double aggregates; std::atomic<double>
// fetch_add/min/max support is uneven across standard libraries.
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  VP_REQUIRE(!bounds_.empty());
  VP_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
             std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                 bounds_.end());
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

std::vector<double> Histogram::default_latency_bounds_ns() {
  std::vector<double> bounds;
  bounds.reserve(9 * 8);
  for (double decade = 1e3; decade <= 1e10; decade *= 10.0) {
    for (int digit = 1; digit <= 9; ++digit) {
      bounds.push_back(decade * digit);
    }
  }
  return bounds;
}

std::vector<double> Histogram::default_count_bounds() {
  std::vector<double> bounds;
  bounds.reserve(64 + 10);
  for (int i = 0; i <= 64; ++i) bounds.push_back(static_cast<double>(i));
  for (double b = 128.0; b <= 65536.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

void Histogram::record(double value) {
  if (!std::isfinite(value)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

double Histogram::quantile(double q) const {
  const std::uint64_t count = count_.load(std::memory_order_relaxed);
  if (count == 0) return 0.0;
  const double observed_min = min_.load(std::memory_order_relaxed);
  const double observed_max = max_.load(std::memory_order_relaxed);
  const double target = q * static_cast<double>(count);
  if (target <= 0.0) return observed_min;
  if (target >= static_cast<double>(count)) return observed_max;

  double cum_before = 0.0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const double n =
        static_cast<double>(buckets_[b].load(std::memory_order_relaxed));
    if (n == 0.0 || cum_before + n < target) {
      cum_before += n;
      continue;
    }
    // Rank `target` falls in bucket b; interpolate over its value range,
    // clamped to what was actually observed (a sparsely filled bucket
    // would otherwise extrapolate past the true extremes).
    if (b == bounds_.size()) return observed_max;  // overflow bucket
    const double hi = bounds_[b];
    const double lo = b == 0 ? std::min(observed_min, hi) : bounds_[b - 1];
    return std::clamp(lo + (hi - lo) * (target - cum_before) / n,
                      observed_min, observed_max);
  }
  return observed_max;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.mean = s.sum / static_cast<double>(s.count);
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histogram(name, Histogram::default_latency_bounds_ns());
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(name, std::move(bounds)).first->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c.value();
  return out;
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out[name] = g.value();
  return out;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) out[name] = h.snapshot();
  return out;
}

}  // namespace vp::obs
