#include "obs/trace.h"

#include <atomic>

#include "common/error.h"
#include "obs/json.h"

namespace vp::obs {

std::uint64_t trace_thread_id() {
  static std::atomic<std::uint64_t> next{0};
  thread_local const std::uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

SpanContext& span_context() {
  thread_local SpanContext context;
  return context;
}

ScopedSpanContext::ScopedSpanContext(std::int64_t round, std::int64_t observer)
    : saved_(span_context()) {
  SpanContext& context = span_context();
  if (round >= 0) context.round = round;
  if (observer >= 0) context.observer = observer;
}

ScopedSpanContext::~ScopedSpanContext() { span_context() = saved_; }

TraceRecorder::TraceRecorder(const std::string& path)
    : out_(path, std::ios::out | std::ios::trunc) {
  if (!out_) throw InvalidArgument("cannot open trace file: " + path);
}

TraceRecorder::~TraceRecorder() { flush(); }

void TraceRecorder::record(const SpanEvent& event) {
  const SpanContext& context = span_context();
  std::string line;
  line.reserve(128);
  line += "{\"phase\":";
  json::escape_string(event.phase, line);
  auto int_or_null = [&line](const char* key, std::int64_t v) {
    line += ",\"";
    line += key;
    line += "\":";
    line += v < 0 ? "null" : std::to_string(v);
  };
  int_or_null("observer",
              event.observer >= 0 ? event.observer : context.observer);
  int_or_null("window", event.window);
  int_or_null("pairs", event.pairs);
  int_or_null("round", event.round >= 0 ? event.round : context.round);
  line += ",\"wall_ns\":" + std::to_string(event.wall_ns);
  line += ",\"thread\":" + std::to_string(trace_thread_id());
  line += "}\n";

  std::lock_guard<std::mutex> lock(mu_);
  out_ << line;
  ++spans_;
}

void TraceRecorder::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  out_.flush();
}

std::uint64_t TraceRecorder::spans_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

}  // namespace vp::obs
