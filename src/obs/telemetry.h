// Continuous telemetry for the detection pipeline (DESIGN.md §12): the
// MetricsRegistry, which PR 2 only reported at end-of-run, becomes a
// stream of delta-encoded JSONL frames emitted on *deterministic*
// boundaries — every N confirmation rounds and/or every T seconds of
// stream clock, never wall clock — so a frame sequence is bit-reproducible
// from (seed, cadence) regardless of thread count or machine load.
//
// Frame schema "voiceprint.telemetry/v1" (one compact JSON object per
// line):
//   {
//     "schema": "voiceprint.telemetry/v1",
//     "seq": <frame sequence number, continuous across kill/restore>,
//     "stream_time_s": <stream clock, monotonically non-decreasing>,
//     "rounds_observed": <confirmation rounds seen so far>,
//     "counters": { "<name>": <delta since previous frame>, ... },
//     "gauges":   { "<name>": <instantaneous value>, ... },
//     "histograms": { "<name>": {count,sum,min,max,mean,p50,p95,p99,
//                                rejected}, ... },
//     "timing":     { ...same shape... },
//     "alerts": [ { "invariant": "<name>", "detail": "<text>" }, ... ]
//   }
// Counters appear only when their delta is non-zero (a negative delta is
// emitted too — it is a bug, and the validator flags it). The
// "histograms" section holds the count-valued distributions (suspect
// counts, neighbour counts, queue depths), which are deterministic;
// wall-clock latency histograms — every name ending in "_ns" — go into
// "timing", which is excluded from the bit-identity contract.
// deterministic_form() strips that section plus the two
// "dtw.workspace_*" counters (per-worker scratch sums, so they track
// how many workers ran, not what was computed).
//
// HealthMonitor evaluates registered invariants against every frame:
// counter monotonicity plus the pipeline's conservation laws (stream and
// service admission, round and session accounting, the fault injector's
// in/out law, and the DTW tier partition). Violations become structured
// alert events inside the frame and are aggregated into an end-of-run
// summary that RunSession folds into the run report.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace vp {
struct RunFlags;
}

namespace vp::obs {

struct TelemetryConfig {
  std::string path;  // JSONL sink; empty → frames feed only the monitor
  // Emit a frame every N confirmation rounds (0 disables the round
  // cadence) and/or every T seconds of stream clock (0 disables the
  // stream-clock cadence). Both are deterministic boundaries.
  std::uint64_t every_rounds = 1;
  double every_stream_s = 0.0;
  // Resume support: with first_seq > 0 the file is opened in append mode
  // and frame numbering continues from first_seq (kill/restore).
  std::uint64_t first_seq = 0;
  std::string openmetrics_path;  // final snapshot, Prometheus text format
};

struct HealthAlert {
  std::string invariant;
  std::string detail;
};

// What an invariant check sees for one frame. `counters` are cumulative
// registry values at the frame boundary; `deltas` are changes since the
// previous frame (negative on counter regression); `gauges` are
// instantaneous. Missing names read as zero.
struct FrameView {
  std::uint64_t seq = 0;
  double stream_time_s = 0.0;
  const std::map<std::string, std::uint64_t>* counters = nullptr;
  const std::map<std::string, std::int64_t>* deltas = nullptr;
  const std::map<std::string, double>* gauges = nullptr;

  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
};

// One conservation law: sum(lhs counters) must equal sum(rhs counters) +
// sum(rhs gauges, rounded) at every frame boundary. `skip_if_rhs_zero`
// marks laws whose right side is only populated on some code paths — the
// DTW tier partition is empty in exact (non-pruned) comparison mode, so
// that law only binds once any tier counter is non-zero.
struct ConservationLaw {
  const char* name;
  std::vector<const char*> lhs;
  std::vector<const char*> rhs;
  std::vector<const char*> rhs_gauges;
  bool skip_if_rhs_zero = false;
};

// The pipeline's conservation laws — the single table shared by the
// HealthMonitor (live, in-process) and the TelemetryValidator (offline,
// in check_run_report --telemetry), so the two can never drift apart.
const std::vector<ConservationLaw>& conservation_laws();

// Evaluates registered invariants once per frame and accumulates an
// alert summary. Not thread-safe; drive it from the thread that emits
// frames (the TelemetryExporter does exactly that).
class HealthMonitor {
 public:
  using Check = std::function<std::optional<std::string>(const FrameView&)>;

  void add_invariant(std::string name, Check check);

  // Monitor pre-loaded with counter monotonicity plus every law in
  // conservation_laws().
  static HealthMonitor with_default_invariants();

  // Runs every invariant against `frame`; returns (and accumulates) the
  // alerts it raised.
  std::vector<HealthAlert> evaluate(const FrameView& frame);

  std::uint64_t frames_evaluated() const { return frames_evaluated_; }
  std::uint64_t alerts_total() const { return alerts_total_; }
  const std::map<std::string, std::uint64_t>& alerts_by_invariant() const {
    return alerts_by_invariant_;
  }

  // End-of-run summary for the run report's extra block:
  //   { "frames": n, "alerts": n, "by_invariant": {name: n, ...},
  //     "recent": [ {invariant, detail}, ... ] }   (recent capped at 32)
  json::Value summary() const;

 private:
  struct Invariant {
    std::string name;
    Check check;
  };
  std::vector<Invariant> invariants_;
  std::uint64_t frames_evaluated_ = 0;
  std::uint64_t alerts_total_ = 0;
  std::map<std::string, std::uint64_t> alerts_by_invariant_;
  std::vector<HealthAlert> recent_;
};

// Snapshots the global registry into telemetry frames.
//
// Clocking: the exporter never looks at wall clock. Round boundaries are
// reported via on_round() (from a stream/service round callback);
// stream-clock progress via sample(), which the driver calls from its
// ingest loop with the current stream time. Frames are *emitted* from
// sample() — a quiescent point where no beacon is mid-admission — so
// every conservation law holds exactly on every frame. on_round() only
// marks the boundary; the frame appears at the next sample()/finish().
class TelemetryExporter {
 public:
  // Opens the sink (throws InvalidArgument when the file cannot be
  // opened) and enables obs collection when the config is active. The
  // registry is NOT reset — a restored process continues its counters.
  explicit TelemetryExporter(TelemetryConfig config);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  bool active() const {
    return file_open_ || monitor_ != nullptr ||
           !config_.openmetrics_path.empty();
  }

  // Attaches a HealthMonitor evaluated on every emitted frame; the
  // monitor must outlive the exporter. Enables obs collection.
  void set_monitor(HealthMonitor* monitor);

  // Marks a confirmation-round boundary at stream time `stream_time_s`.
  void on_round(double stream_time_s);

  // Advances the stream clock and emits any pending frame. Cheap (two
  // branches) when nothing is due.
  void sample(double stream_time_s);

  // Emits a frame unconditionally (stress probes, tests).
  void emit_now(double stream_time_s);

  // Emits the final frame, writes the OpenMetrics snapshot when
  // configured, and closes the sink. Idempotent; the destructor calls it
  // with the last seen stream time.
  void finish(double stream_time_s);

  std::uint64_t frames_emitted() const { return frames_; }
  std::uint64_t next_seq() const { return seq_; }

 private:
  void emit(double stream_time_s);

  TelemetryConfig config_;
  std::ofstream out_;
  bool file_open_ = false;
  HealthMonitor* monitor_ = nullptr;
  std::uint64_t seq_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t rounds_seen_ = 0;
  double next_tick_s_ = 0.0;  // next stream-clock boundary (+inf when off)
  double last_time_s_ = 0.0;
  bool pending_ = false;
  double pending_time_s_ = 0.0;
  bool finished_ = false;
  std::map<std::string, std::uint64_t> prev_counters_;
};

// Frame minus its "timing" section and the "dtw.workspace_*" counters —
// the part covered by the bit-identity contract (equal across thread
// counts and across kill/restore).
json::Value deterministic_form(const json::Value& frame);

// Writes the registry's final snapshot in Prometheus/OpenMetrics text
// exposition: counters as `<name>_total`, gauges as gauges, histograms as
// summaries with p50/p95/p99 quantile labels. Metric names are sanitised
// ('.' and any other non-[a-zA-Z0-9_:] byte → '_').
void write_openmetrics(const MetricsRegistry& registry,
                       const std::string& path);

// Offline frame-stream checker (check_run_report --telemetry): schema,
// sequence continuity, stream-clock monotonicity, counter monotonicity
// (non-negative whole deltas), histogram shape, and every conservation
// law re-evaluated against the accumulated counter totals per frame.
// Feed frames in file order; finish() requires at least one frame.
class TelemetryValidator {
 public:
  // `first_seq`: expected sequence number of the first frame (0 for a
  // fresh stream).
  explicit TelemetryValidator(std::uint64_t first_seq = 0);

  bool check_frame(const json::Value& frame, std::string* error);
  bool finish(std::string* error) const;

  std::uint64_t frames() const { return frames_; }
  std::uint64_t alerts_seen() const { return alerts_; }

 private:
  std::uint64_t next_seq_;
  double last_time_s_ = 0.0;
  double last_rounds_ = 0.0;
  std::uint64_t frames_ = 0;
  std::uint64_t alerts_ = 0;
  std::map<std::string, std::uint64_t> totals_;
};

// Maps the shared run flags (--telemetry-out / --telemetry-every /
// --telemetry-every-s / --openmetrics-out) onto a TelemetryConfig.
TelemetryConfig telemetry_config_from_flags(const RunFlags& flags);

}  // namespace vp::obs
