// Lock-cheap metrics primitives for the detection pipeline.
//
// A MetricsRegistry hands out named Counters, Gauges and Histograms with
// stable addresses (instruments are created under a mutex once, then
// updated lock-free), so instrumentation sites cache the reference in a
// function-local static and pay one relaxed atomic add per event. The
// registry never removes instruments; reset() zeroes values in place so
// cached references stay valid across runs and tests.
//
// Histograms use fixed upper-bound buckets (default: log-spaced latency
// buckets from 1 µs to ~100 s) plus exact count/sum/min/max, which is
// enough to report p50/p95/p99 with bounded memory and no per-sample
// allocation. Quantiles interpolate linearly inside the owning bucket —
// the convention is documented at Histogram::quantile.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace vp::obs {

// Monotonic counter. All operations are lock-free and relaxed: counters
// feed end-of-run reports, not synchronisation.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Point-in-time aggregate of a histogram, for reports and tests.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::uint64_t rejected = 0;  // non-finite samples refused by record()
};

// Fixed-bucket histogram. Bucket i covers (bounds[i-1], bounds[i]]; an
// implicit overflow bucket covers (bounds.back(), +inf). record() is a
// binary search plus relaxed atomic adds — no locks, no allocation.
class Histogram {
 public:
  // `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  // Log-spaced latency bounds in nanoseconds: 9 per decade (1,2,...,9 ×
  // 10^k) from 1 µs through 100 s. Fine enough that p99 of a phase timer
  // is meaningful, small enough (72 buckets) to live per instrument.
  static std::vector<double> default_latency_bounds_ns();

  // Bounds for small-count distributions (suspect-set sizes, neighbour
  // counts, densities): every integer up to 64, then power-of-two steps
  // up to 65536.
  static std::vector<double> default_count_bounds();

  // Records one sample. NaN and ±inf are refused — a single non-finite
  // sample would poison `sum` (and with it every serialized report, since
  // JSON has no NaN) — and tallied in the `rejected` counter instead.
  void record(double value);
  HistogramSnapshot snapshot() const;

  // Quantile convention: with total count C, the q-quantile is the value
  // at rank r = q·C (1-based, fractional). Ranks are located in bucket
  // order; within a bucket holding n samples over (lo, hi], ranks map
  // linearly onto (lo, hi] — rank k of n returns lo + (hi−lo)·k/n,
  // clamped to [observed min, observed max] so a sparsely filled bucket
  // cannot extrapolate past the true extremes. The first bucket uses its
  // lower bound, and the overflow bucket returns the exact observed max.
  // Exact-on-known-data: samples equal to bucket upper bounds, one per
  // bucket, reproduce themselves exactly.
  double quantile(double q) const;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  void reset();

 private:
  std::vector<double> bounds_;
  // bounds_.size() + 1 buckets; the last is the overflow bucket.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// Named instrument store. Lookup takes a mutex (sites should cache the
// returned reference); updates through the returned instruments are
// lock-free. Instruments live as long as the registry and are never
// removed, so cached references survive reset().
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // Histogram with the default latency bounds, or explicit bounds. Asking
  // for an existing name returns the existing instrument (explicit bounds
  // are ignored in that case — bounds are fixed at creation).
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  // Zeroes every instrument in place (addresses are preserved).
  void reset();

  // Stable snapshot of all instrument names → values, for the RunReport.
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, HistogramSnapshot> histograms() const;

 private:
  mutable std::mutex mu_;
  // std::map node stability keeps instrument addresses valid forever.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace vp::obs
