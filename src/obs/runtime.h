// Process-wide observability switchboard.
//
// Instrumentation sites in the hot path are gated on obs::enabled() — one
// relaxed atomic load and a predictable branch when observability is off,
// which keeps the disabled cost unmeasurable (< 2% end to end is the
// acceptance bar; in practice it is noise). When enabled, sites record
// into the global MetricsRegistry and, if a trace file is open, emit
// spans through the TraceRecorder.
//
// Instrumentation never changes what the detector computes: every hook
// only *reads* pipeline state, so enabled-vs-disabled outputs are
// bit-identical (enforced by tests/test_obs.cpp).
#pragma once

#include <atomic>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vp::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<TraceRecorder*> g_trace;
}  // namespace detail

// True when metrics collection is on. Hot-path gate: relaxed load.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// The process-wide registry. Always usable (recording while disabled is
// allowed, e.g. from tests); instruments have stable addresses for the
// process lifetime.
MetricsRegistry& registry();

// The open trace recorder, or nullptr when tracing is off.
inline TraceRecorder* trace() {
  return detail::g_trace.load(std::memory_order_acquire);
}

// Turns metrics collection on (idempotent).
void enable();

// Opens a trace file and turns collection on. Replaces any previously
// open trace. Not safe to call concurrently with in-flight span
// recording — open/close traces from the harness thread, outside
// parallel regions.
void open_trace(const std::string& path);

// Flushes and closes the trace file, if open.
void close_trace();

// Turns collection off and closes the trace (values already in the
// registry are kept; use registry().reset() to zero them). Primarily for
// tests that toggle instrumentation.
void disable();

}  // namespace vp::obs
