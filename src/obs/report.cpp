#include "obs/report.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/runtime.h"

namespace vp::obs {

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

// `v` must be a non-negative whole number (counters, ns totals, ids).
bool is_count(const json::Value& v) {
  return v.is_number() && v.as_number() >= 0.0 &&
         v.as_number() == std::floor(v.as_number());
}

}  // namespace

json::Value histogram_to_json(const HistogramSnapshot& s) {
  json::Object h;
  h.emplace("count", json::Value(s.count));
  h.emplace("sum", json::Value(s.sum));
  h.emplace("min", json::Value(s.min));
  h.emplace("max", json::Value(s.max));
  h.emplace("mean", json::Value(s.mean));
  h.emplace("p50", json::Value(s.p50));
  h.emplace("p95", json::Value(s.p95));
  h.emplace("p99", json::Value(s.p99));
  h.emplace("rejected", json::Value(s.rejected));
  return json::Value(std::move(h));
}

bool validate_histogram_json(const std::string& name, const json::Value& v,
                             std::string* error) {
  if (!v.is_object()) return fail(error, "histogram " + name + ": not object");
  for (const char* key : {"count", "sum", "min", "max", "mean", "p50", "p95",
                          "p99"}) {
    const json::Value* field = v.find(key);
    if (field == nullptr || !field->is_number()) {
      return fail(error, "histogram " + name + ": missing number '" + key +
                             "'");
    }
  }
  if (!is_count(*v.find("count"))) {
    return fail(error, "histogram " + name + ": count not a whole number");
  }
  const json::Value* rejected = v.find("rejected");
  if (rejected != nullptr && !is_count(*rejected)) {
    return fail(error, "histogram " + name + ": rejected not a whole number");
  }
  if (v.find("count")->as_number() > 0) {
    const double min = v.find("min")->as_number();
    const double max = v.find("max")->as_number();
    for (const char* q : {"p50", "p95", "p99"}) {
      const double p = v.find(q)->as_number();
      if (p < min || p > max) {
        return fail(error,
                    "histogram " + name + ": " + q + " outside [min, max]");
      }
    }
    if (v.find("p50")->as_number() > v.find("p95")->as_number() ||
        v.find("p95")->as_number() > v.find("p99")->as_number()) {
      return fail(error, "histogram " + name + ": percentiles not monotone");
    }
  }
  return true;
}

json::Value build_run_report(const MetricsRegistry& registry,
                             const std::string& binary,
                             std::optional<json::Value> extra) {
  json::Object report;
  report.emplace("schema", json::Value("voiceprint.run_report/v1"));
  report.emplace("binary", json::Value(binary));

  json::Object counters;
  for (const auto& [name, value] : registry.counters()) {
    counters.emplace(name, json::Value(value));
  }
  report.emplace("counters", json::Value(std::move(counters)));

  json::Object gauges;
  for (const auto& [name, value] : registry.gauges()) {
    gauges.emplace(name, json::Value(value));
  }
  report.emplace("gauges", json::Value(std::move(gauges)));

  json::Object histograms;
  for (const auto& [name, snapshot] : registry.histograms()) {
    histograms.emplace(name, histogram_to_json(snapshot));
  }
  report.emplace("histograms", json::Value(std::move(histograms)));

  const ThreadPool::Stats pool = ThreadPool::shared().stats();
  json::Object pool_obj;
  pool_obj.emplace("workers", json::Value(pool.workers));
  pool_obj.emplace("jobs", json::Value(pool.jobs));
  pool_obj.emplace("tasks", json::Value(pool.tasks));
  pool_obj.emplace("submit_wait_ns", json::Value(pool.submit_wait_ns));
  json::Array busy;
  for (const std::uint64_t ns : pool.worker_busy_ns) {
    busy.emplace_back(json::Value(ns));
  }
  pool_obj.emplace("worker_busy_ns", json::Value(std::move(busy)));
  report.emplace("thread_pool", json::Value(std::move(pool_obj)));

  if (extra.has_value()) report.emplace("extra", std::move(*extra));
  return json::Value(std::move(report));
}

void write_run_report(const std::string& path, const json::Value& report) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) throw InvalidArgument("cannot open report file: " + path);
  out << report.dump(2) << "\n";
  if (!out) throw InvalidArgument("failed writing report file: " + path);
}

bool validate_run_report(const json::Value& report, std::string* error) {
  if (!report.is_object()) return fail(error, "report: not a JSON object");
  const json::Value* schema = report.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "voiceprint.run_report/v1") {
    return fail(error, "report: schema is not voiceprint.run_report/v1");
  }
  const json::Value* binary = report.find("binary");
  if (binary == nullptr || !binary->is_string()) {
    return fail(error, "report: missing string 'binary'");
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const json::Value* v = report.find(section);
    if (v == nullptr || !v->is_object()) {
      return fail(error, std::string("report: missing object '") + section +
                             "'");
    }
  }
  for (const auto& [name, v] : report.find("counters")->as_object()) {
    if (!is_count(v)) {
      return fail(error, "counter " + name + ": not a non-negative integer");
    }
  }
  for (const auto& [name, v] : report.find("gauges")->as_object()) {
    if (!v.is_number()) return fail(error, "gauge " + name + ": not a number");
  }
  for (const auto& [name, v] : report.find("histograms")->as_object()) {
    if (!validate_histogram_json(name, v, error)) return false;
  }
  const json::Value* pool = report.find("thread_pool");
  if (pool == nullptr || !pool->is_object()) {
    return fail(error, "report: missing object 'thread_pool'");
  }
  for (const char* key : {"workers", "jobs", "tasks", "submit_wait_ns"}) {
    const json::Value* v = pool->find(key);
    if (v == nullptr || !is_count(*v)) {
      return fail(error, std::string("thread_pool: missing count '") + key +
                             "'");
    }
  }
  const json::Value* busy = pool->find("worker_busy_ns");
  if (busy == nullptr || !busy->is_array()) {
    return fail(error, "thread_pool: missing array 'worker_busy_ns'");
  }
  for (const json::Value& v : busy->as_array()) {
    if (!is_count(v)) return fail(error, "thread_pool: busy entry not a count");
  }
  return true;
}

bool validate_span(const json::Value& span, std::string* error) {
  if (!span.is_object()) return fail(error, "span: not a JSON object");
  const json::Value* phase = span.find("phase");
  if (phase == nullptr || !phase->is_string() || phase->as_string().empty()) {
    return fail(error, "span: missing non-empty string 'phase'");
  }
  for (const char* key : {"observer", "window", "pairs", "round"}) {
    const json::Value* v = span.find(key);
    if (v == nullptr || (!v->is_null() && !is_count(*v))) {
      return fail(error, std::string("span: '") + key +
                             "' must be null or a count");
    }
  }
  for (const char* key : {"wall_ns", "thread"}) {
    const json::Value* v = span.find(key);
    if (v == nullptr || !is_count(*v)) {
      return fail(error, std::string("span: missing count '") + key + "'");
    }
  }
  return true;
}

RunSession::RunSession(std::string binary, std::string metrics_out,
                       std::string trace_out)
    : binary_(std::move(binary)), metrics_out_(std::move(metrics_out)) {
  if (metrics_out_.empty() && trace_out.empty()) return;
  active_ = true;
  registry().reset();
  ThreadPool::shared().reset_stats();
  enable();
  if (!trace_out.empty()) open_trace(trace_out);
}

RunSession::~RunSession() {
  try {
    finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run report: %s\n", e.what());
  }
}

void RunSession::merge_extra(const std::string& key, json::Value value) {
  if (!extra_.has_value() || !extra_->is_object()) {
    extra_ = json::Value(json::Object{});
  }
  extra_->as_object().insert_or_assign(key, std::move(value));
}

void RunSession::finish() {
  if (!active_ || finished_) return;
  finished_ = true;
  if (!metrics_out_.empty()) {
    const json::Value report =
        build_run_report(registry(), binary_, std::move(extra_));
    write_run_report(metrics_out_, report);
    std::fprintf(stderr, "wrote run report %s\n", metrics_out_.c_str());
  }
  disable();
}

}  // namespace vp::obs
