#include "obs/runtime.h"

#include <memory>
#include <mutex>

namespace vp::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<TraceRecorder*> g_trace{nullptr};
}  // namespace detail

namespace {
std::mutex g_trace_mu;
std::unique_ptr<TraceRecorder> g_trace_owner;
}  // namespace

MetricsRegistry& registry() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never freed
  return *instance;
}

void enable() { detail::g_enabled.store(true, std::memory_order_relaxed); }

void open_trace(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  auto recorder = std::make_unique<TraceRecorder>(path);
  detail::g_trace.store(recorder.get(), std::memory_order_release);
  // The old recorder (if any) is destroyed after the pointer swap; spans
  // racing a replacement would dangle, hence the header's rule to manage
  // traces from the harness thread only.
  g_trace_owner = std::move(recorder);
  enable();
}

void close_trace() {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  detail::g_trace.store(nullptr, std::memory_order_release);
  g_trace_owner.reset();
}

void disable() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
  close_trace();
}

}  // namespace vp::obs
