#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace vp::obs::json {

bool Value::as_bool() const {
  if (!is_bool()) throw InvalidArgument("JSON value is not a bool");
  return std::get<bool>(v_);
}

double Value::as_number() const {
  if (!is_number()) throw InvalidArgument("JSON value is not a number");
  return std::get<double>(v_);
}

const std::string& Value::as_string() const {
  if (!is_string()) throw InvalidArgument("JSON value is not a string");
  return std::get<std::string>(v_);
}

const Array& Value::as_array() const {
  if (!is_array()) throw InvalidArgument("JSON value is not an array");
  return std::get<Array>(v_);
}

const Object& Value::as_object() const {
  if (!is_object()) throw InvalidArgument("JSON value is not an object");
  return std::get<Object>(v_);
}

Array& Value::as_array() {
  if (!is_array()) throw InvalidArgument("JSON value is not an array");
  return std::get<Array>(v_);
}

Object& Value::as_object() {
  if (!is_object()) throw InvalidArgument("JSON value is not an object");
  return std::get<Object>(v_);
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& o = std::get<Object>(v_);
  const auto it = o.find(key);
  return it == o.end() ? nullptr : &it->second;
}

void escape_string(std::string_view s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

namespace {

void append_number(double d, std::string& out) {
  if (!std::isfinite(d)) throw InvalidArgument("JSON cannot encode non-finite");
  // Integers (the common case: counters, ns totals) print without a
  // fraction; everything else gets shortest round-trip formatting.
  if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
    return;
  }
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, r.ptr);
}

void append_indent(std::string& out, int indent, int depth) {
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(v_) ? "true" : "false";
  } else if (is_number()) {
    append_number(std::get<double>(v_), out);
  } else if (is_string()) {
    escape_string(std::get<std::string>(v_), out);
  } else if (is_array()) {
    const Array& a = std::get<Array>(v_);
    if (a.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const Value& v : a) {
      if (!first) out.push_back(',');
      first = false;
      if (indent > 0) append_indent(out, indent, depth + 1);
      v.dump_to(out, indent, depth + 1);
    }
    if (indent > 0) append_indent(out, indent, depth);
    out.push_back(']');
  } else {
    const Object& o = std::get<Object>(v_);
    if (o.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, v] : o) {
      if (!first) out.push_back(',');
      first = false;
      if (indent > 0) append_indent(out, indent, depth + 1);
      escape_string(key, out);
      out += indent > 0 ? ": " : ":";
      v.dump_to(out, indent, depth + 1);
    }
    if (indent > 0) append_indent(out, indent, depth);
    out.push_back('}');
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("JSON parse error at offset " +
                          std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Value(string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default: return number();
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double out = 0.0;
    const auto r =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (r.ec != std::errc() || r.ptr != text_.data() + pos_ || pos_ == start) {
      fail("invalid number");
    }
    return Value(out);
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          const auto r = std::from_chars(text_.data() + pos_,
                                         text_.data() + pos_ + 4, code, 16);
          if (r.ec != std::errc() || r.ptr != text_.data() + pos_ + 4) {
            fail("invalid \\u escape");
          }
          pos_ += 4;
          // Our writers only emit \u for ASCII control characters; decode
          // the BMP code point as UTF-8 so foreign documents round-trip.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value array() {
    expect('[');
    Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    for (;;) {
      out.push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return Value(std::move(out));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Value object() {
    expect('{');
    Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out.insert_or_assign(std::move(key), value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return Value(std::move(out));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace vp::obs::json
