#include "obs/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/cli.h"
#include "common/error.h"
#include "obs/report.h"
#include "obs/runtime.h"

namespace vp::obs {

namespace {

constexpr char kSchema[] = "voiceprint.telemetry/v1";
constexpr double kInf = std::numeric_limits<double>::infinity();

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

// Whole number (possibly negative): counter deltas and sequence fields.
bool is_whole(const json::Value& v) {
  return v.is_number() && std::isfinite(v.as_number()) &&
         v.as_number() == std::floor(v.as_number());
}

std::string sanitize_metric_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::uint64_t FrameView::counter(const std::string& name) const {
  if (counters == nullptr) return 0;
  const auto it = counters->find(name);
  return it == counters->end() ? 0 : it->second;
}

double FrameView::gauge(const std::string& name) const {
  if (gauges == nullptr) return 0.0;
  const auto it = gauges->find(name);
  return it == gauges->end() ? 0.0 : it->second;
}

const std::vector<ConservationLaw>& conservation_laws() {
  // Every unit offered to a stage is ingested, shed into a counted bucket,
  // or sitting in a counted buffer (the gauge terms) — nothing vanishes.
  // The DTW tier partition only binds in pruned mode: exact comparison
  // tallies comparable pairs but no tier counters, hence skip_if_rhs_zero.
  static const std::vector<ConservationLaw> laws = {
      {"conservation.stream.beacons",
       {"stream.beacons_offered"},
       {"stream.beacons_ingested", "stream.beacons_shed_rate_limited",
        "stream.beacons_shed_identity_cap",
        "stream.beacons_shed_out_of_order",
        "stream.beacons_shed_conditioned",
        "stream.shed_invalid.rssi_non_finite",
        "stream.shed_invalid.rssi_out_of_range",
        "stream.shed_invalid.time_non_finite",
        "stream.shed_invalid.time_negative"},
       {},
       false},
      // §15 conditioning: every sample offered to the Hampel stage lands
      // in exactly one verdict bucket. Vacuous (all zero) with
      // conditioning off, so the law binds only when the stage runs.
      {"conservation.cond.samples",
       {"cond.offered"},
       {"cond.passed", "cond.clamped", "cond.rejected"},
       {},
       false},
      {"conservation.service.beacons",
       {"service.beacons_offered"},
       {"service.beacons_ingested", "service.beacons_shed_session_cap",
        "service.beacons_shed_rate_limited",
        "service.beacons_shed_identity_cap",
        "service.beacons_shed_out_of_order", "service.beacons_shed_invalid",
        "service.beacons_shed_conditioned"},
       {},
       false},
      {"conservation.service.rounds",
       {"service.rounds_prepared"},
       {"service.rounds_executed", "service.rounds_shed_queue_full",
        "service.rounds_shed_closed"},
       {"service.queued_rounds"},
       false},
      {"conservation.service.sessions",
       {"service.sessions_opened"},
       {"service.sessions_closed", "service.sessions_evicted_idle"},
       {"service.sessions_active"},
       false},
      {"conservation.fusion.rounds",
       {"fusion.rounds_delivered"},
       {"fusion.rounds_fused", "fusion.rounds_expired"},
       {"fusion.rounds_pending"},
       false},
      {"conservation.wire.frames",
       {"wire.frames_received"},
       {"wire.frames_ingested", "wire.frames_shed_invalid",
        "wire.frames_shed_backpressure"},
       {"wire.frames_buffered"},
       false},
      {"conservation.fault.beacons",
       {"fault.offered", "fault.duplicated", "fault.flood_injected"},
       {"fault.emitted", "fault.dropped", "fault.burst_dropped"},
       {"fault.held"},
       false},
      {"conservation.dtw.tiers",
       {"comparison.pairs_comparable"},
       {"dtw.lb_kim_pruned", "dtw.lb_keogh_pruned", "dtw.fixed_pruned",
        "dtw.early_abandoned", "dtw.full_sweeps"},
       {},
       true},
  };
  return laws;
}

void HealthMonitor::add_invariant(std::string name, Check check) {
  invariants_.push_back(Invariant{std::move(name), std::move(check)});
}

HealthMonitor HealthMonitor::with_default_invariants() {
  HealthMonitor monitor;
  monitor.add_invariant(
      "counter_monotonic",
      [](const FrameView& frame) -> std::optional<std::string> {
        if (frame.deltas == nullptr) return std::nullopt;
        for (const auto& [name, delta] : *frame.deltas) {
          if (delta < 0) {
            return name + " shrank by " + std::to_string(-delta);
          }
        }
        return std::nullopt;
      });
  for (const ConservationLaw& law : conservation_laws()) {
    monitor.add_invariant(
        law.name, [&law](const FrameView& frame) -> std::optional<std::string> {
          std::uint64_t lhs = 0;
          for (const char* name : law.lhs) lhs += frame.counter(name);
          std::uint64_t rhs_counters = 0;
          for (const char* name : law.rhs) rhs_counters += frame.counter(name);
          std::int64_t rhs_gauges = 0;
          for (const char* name : law.rhs_gauges) {
            rhs_gauges += std::llround(frame.gauge(name));
          }
          if (law.skip_if_rhs_zero && rhs_counters == 0 && rhs_gauges == 0) {
            return std::nullopt;
          }
          const std::int64_t rhs =
              static_cast<std::int64_t>(rhs_counters) + rhs_gauges;
          if (static_cast<std::int64_t>(lhs) != rhs) {
            return "lhs=" + std::to_string(lhs) +
                   " rhs=" + std::to_string(rhs);
          }
          return std::nullopt;
        });
  }
  return monitor;
}

std::vector<HealthAlert> HealthMonitor::evaluate(const FrameView& frame) {
  ++frames_evaluated_;
  std::vector<HealthAlert> alerts;
  for (const Invariant& invariant : invariants_) {
    std::optional<std::string> detail = invariant.check(frame);
    if (!detail.has_value()) continue;
    alerts.push_back(HealthAlert{invariant.name, std::move(*detail)});
  }
  for (const HealthAlert& alert : alerts) {
    ++alerts_total_;
    ++alerts_by_invariant_[alert.invariant];
    if (recent_.size() >= 32) recent_.erase(recent_.begin());
    recent_.push_back(alert);
  }
  return alerts;
}

json::Value HealthMonitor::summary() const {
  json::Object summary;
  summary.emplace("frames", json::Value(frames_evaluated_));
  summary.emplace("alerts", json::Value(alerts_total_));
  json::Object by_invariant;
  for (const auto& [name, count] : alerts_by_invariant_) {
    by_invariant.emplace(name, json::Value(count));
  }
  summary.emplace("by_invariant", json::Value(std::move(by_invariant)));
  json::Array recent;
  for (const HealthAlert& alert : recent_) {
    json::Object event;
    event.emplace("invariant", json::Value(alert.invariant));
    event.emplace("detail", json::Value(alert.detail));
    recent.emplace_back(json::Value(std::move(event)));
  }
  summary.emplace("recent", json::Value(std::move(recent)));
  return json::Value(std::move(summary));
}

TelemetryExporter::TelemetryExporter(TelemetryConfig config)
    : config_(std::move(config)), seq_(config_.first_seq) {
  if (!config_.path.empty()) {
    const auto mode = config_.first_seq > 0
                          ? std::ios::out | std::ios::app
                          : std::ios::out | std::ios::trunc;
    out_.open(config_.path, mode);
    if (!out_) {
      throw InvalidArgument("cannot open telemetry file: " + config_.path);
    }
    file_open_ = true;
  }
  next_tick_s_ = config_.every_stream_s > 0.0 ? config_.every_stream_s : kInf;
  if (active()) enable();
}

TelemetryExporter::~TelemetryExporter() {
  try {
    finish(last_time_s_);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry: %s\n", e.what());
  }
}

void TelemetryExporter::set_monitor(HealthMonitor* monitor) {
  monitor_ = monitor;
  if (active()) enable();
}

void TelemetryExporter::on_round(double stream_time_s) {
  if (!active() || finished_) return;
  ++rounds_seen_;
  if (config_.every_rounds > 0 && rounds_seen_ % config_.every_rounds == 0) {
    pending_ = true;
    pending_time_s_ = std::max(pending_time_s_, stream_time_s);
  }
}

void TelemetryExporter::sample(double stream_time_s) {
  if (!active() || finished_) return;
  if (stream_time_s >= next_tick_s_) {
    while (next_tick_s_ <= stream_time_s) {
      next_tick_s_ += config_.every_stream_s;
    }
    pending_ = true;
    pending_time_s_ = std::max(pending_time_s_, stream_time_s);
  }
  if (pending_) emit(pending_time_s_);
}

void TelemetryExporter::emit_now(double stream_time_s) {
  if (!active() || finished_) return;
  emit(stream_time_s);
}

void TelemetryExporter::finish(double stream_time_s) {
  if (!active() || finished_) return;
  emit(std::max(stream_time_s, last_time_s_));
  finished_ = true;
  if (!config_.openmetrics_path.empty()) {
    write_openmetrics(registry(), config_.openmetrics_path);
  }
  if (file_open_) out_.flush();
}

void TelemetryExporter::emit(double stream_time_s) {
  const double t = std::max(stream_time_s, last_time_s_);
  last_time_s_ = t;
  pending_ = false;
  pending_time_s_ = t;

  MetricsRegistry& reg = registry();
  const std::map<std::string, std::uint64_t> counters = reg.counters();
  const std::map<std::string, double> gauges = reg.gauges();
  const std::map<std::string, HistogramSnapshot> histograms =
      reg.histograms();

  std::map<std::string, std::int64_t> deltas;
  json::Object counter_deltas;
  for (const auto& [name, value] : counters) {
    const auto it = prev_counters_.find(name);
    const std::uint64_t prev = it == prev_counters_.end() ? 0 : it->second;
    const std::int64_t delta = static_cast<std::int64_t>(value) -
                               static_cast<std::int64_t>(prev);
    deltas.emplace(name, delta);
    if (delta != 0) counter_deltas.emplace(name, json::Value(delta));
  }
  prev_counters_ = counters;

  json::Object gauge_obj;
  for (const auto& [name, value] : gauges) {
    gauge_obj.emplace(name, json::Value(value));
  }

  json::Object hist_obj;
  json::Object timing_obj;
  for (const auto& [name, snapshot] : histograms) {
    json::Object& section = name.ends_with("_ns") ? timing_obj : hist_obj;
    section.emplace(name, histogram_to_json(snapshot));
  }

  json::Array alerts;
  if (monitor_ != nullptr) {
    FrameView view;
    view.seq = seq_;
    view.stream_time_s = t;
    view.counters = &counters;
    view.deltas = &deltas;
    view.gauges = &gauges;
    for (const HealthAlert& alert : monitor_->evaluate(view)) {
      json::Object event;
      event.emplace("invariant", json::Value(alert.invariant));
      event.emplace("detail", json::Value(alert.detail));
      alerts.emplace_back(json::Value(std::move(event)));
    }
  }

  json::Object frame;
  frame.emplace("schema", json::Value(kSchema));
  frame.emplace("seq", json::Value(seq_));
  frame.emplace("stream_time_s", json::Value(t));
  frame.emplace("rounds_observed", json::Value(rounds_seen_));
  frame.emplace("counters", json::Value(std::move(counter_deltas)));
  frame.emplace("gauges", json::Value(std::move(gauge_obj)));
  frame.emplace("histograms", json::Value(std::move(hist_obj)));
  frame.emplace("timing", json::Value(std::move(timing_obj)));
  frame.emplace("alerts", json::Value(std::move(alerts)));

  if (file_open_) {
    // Flushed per frame so a live `vp_top` (or a post-crash validator)
    // only ever sees complete lines.
    out_ << json::Value(std::move(frame)).dump(0) << "\n";
    out_.flush();
  }
  ++seq_;
  ++frames_;
}

json::Value deterministic_form(const json::Value& frame) {
  json::Value out = frame;
  if (!out.is_object()) return out;
  out.as_object().erase("timing");
  // The workspace counters sum per-worker scratch: how many DTW
  // workspaces grew depends on how many workers ran the sweep, so like
  // wall-clock timing they are execution artifacts, not results.
  const json::Value* counters = out.find("counters");
  if (counters != nullptr && counters->is_object()) {
    json::Object& obj = out.as_object().at("counters").as_object();
    obj.erase("dtw.workspace_grows");
    obj.erase("dtw.workspace_reuse_hits");
  }
  return out;
}

void write_openmetrics(const MetricsRegistry& registry,
                       const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) throw InvalidArgument("cannot open openmetrics file: " + path);
  for (const auto& [name, value] : registry.counters()) {
    const std::string metric = sanitize_metric_name(name);
    out << "# TYPE " << metric << "_total counter\n";
    out << metric << "_total " << value << "\n";
  }
  for (const auto& [name, value] : registry.gauges()) {
    const std::string metric = sanitize_metric_name(name);
    out << "# TYPE " << metric << " gauge\n";
    out << metric << " " << format_number(value) << "\n";
  }
  // Histograms ship as summaries: the fixed-bucket histograms keep exact
  // count/sum plus interpolated quantiles, which maps onto the summary
  // type without exposing internal bucket layout.
  for (const auto& [name, s] : registry.histograms()) {
    const std::string metric = sanitize_metric_name(name);
    out << "# TYPE " << metric << " summary\n";
    out << metric << "{quantile=\"0.5\"} " << format_number(s.p50) << "\n";
    out << metric << "{quantile=\"0.95\"} " << format_number(s.p95) << "\n";
    out << metric << "{quantile=\"0.99\"} " << format_number(s.p99) << "\n";
    out << metric << "_sum " << format_number(s.sum) << "\n";
    out << metric << "_count " << s.count << "\n";
  }
  out << "# EOF\n";
  if (!out) throw InvalidArgument("failed writing openmetrics file: " + path);
}

TelemetryValidator::TelemetryValidator(std::uint64_t first_seq)
    : next_seq_(first_seq) {}

bool TelemetryValidator::check_frame(const json::Value& frame,
                                     std::string* error) {
  if (!frame.is_object()) return fail(error, "frame: not a JSON object");
  const json::Value* schema = frame.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kSchema) {
    return fail(error, std::string("frame: schema is not ") + kSchema);
  }
  const json::Value* seq = frame.find("seq");
  if (seq == nullptr || !is_whole(*seq) || seq->as_number() < 0) {
    return fail(error, "frame: missing count 'seq'");
  }
  const auto seq_value = static_cast<std::uint64_t>(seq->as_number());
  if (seq_value != next_seq_) {
    return fail(error, "frame: sequence gap: expected seq " +
                           std::to_string(next_seq_) + ", got " +
                           std::to_string(seq_value));
  }
  const json::Value* time = frame.find("stream_time_s");
  if (time == nullptr || !time->is_number() ||
      !std::isfinite(time->as_number())) {
    return fail(error, "frame: missing finite number 'stream_time_s'");
  }
  if (frames_ > 0 && time->as_number() < last_time_s_) {
    return fail(error, "frame seq " + std::to_string(seq_value) +
                           ": stream clock went backwards");
  }
  const json::Value* rounds = frame.find("rounds_observed");
  if (rounds == nullptr || !is_whole(*rounds) || rounds->as_number() < 0) {
    return fail(error, "frame: missing count 'rounds_observed'");
  }
  if (frames_ > 0 && rounds->as_number() < last_rounds_) {
    return fail(error, "frame seq " + std::to_string(seq_value) +
                           ": rounds_observed regressed");
  }

  const json::Value* counters = frame.find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return fail(error, "frame: missing object 'counters'");
  }
  for (const auto& [name, delta] : counters->as_object()) {
    if (!is_whole(delta)) {
      return fail(error, "counter " + name + ": delta not a whole number");
    }
    if (delta.as_number() < 0) {
      return fail(error, "counter " + name + ": regressed by " +
                             std::to_string(-delta.as_number()) + " at seq " +
                             std::to_string(seq_value));
    }
    totals_[name] += static_cast<std::uint64_t>(delta.as_number());
  }

  const json::Value* gauges = frame.find("gauges");
  if (gauges == nullptr || !gauges->is_object()) {
    return fail(error, "frame: missing object 'gauges'");
  }
  for (const auto& [name, value] : gauges->as_object()) {
    if (!value.is_number()) {
      return fail(error, "gauge " + name + ": not a number");
    }
  }

  for (const char* section : {"histograms", "timing"}) {
    const json::Value* v = frame.find(section);
    if (v == nullptr || !v->is_object()) {
      return fail(error,
                  std::string("frame: missing object '") + section + "'");
    }
    for (const auto& [name, hist] : v->as_object()) {
      if (!validate_histogram_json(name, hist, error)) return false;
    }
  }

  const json::Value* alerts = frame.find("alerts");
  if (alerts == nullptr || !alerts->is_array()) {
    return fail(error, "frame: missing array 'alerts'");
  }
  for (const json::Value& alert : alerts->as_array()) {
    const json::Value* invariant =
        alert.is_object() ? alert.find("invariant") : nullptr;
    const json::Value* detail =
        alert.is_object() ? alert.find("detail") : nullptr;
    if (invariant == nullptr || !invariant->is_string() || detail == nullptr ||
        !detail->is_string()) {
      return fail(error, "frame: malformed alert event at seq " +
                             std::to_string(seq_value));
    }
    ++alerts_;
  }

  // Conservation laws against the accumulated counter totals, with the
  // frame's gauge values as the instantaneous terms.
  auto total = [this](const char* name) -> std::uint64_t {
    const auto it = totals_.find(name);
    return it == totals_.end() ? 0 : it->second;
  };
  auto gauge_value = [gauges](const char* name) -> double {
    const json::Value* v = gauges->find(name);
    return v == nullptr ? 0.0 : v->as_number();
  };
  for (const ConservationLaw& law : conservation_laws()) {
    std::uint64_t lhs = 0;
    for (const char* name : law.lhs) lhs += total(name);
    std::uint64_t rhs_counters = 0;
    for (const char* name : law.rhs) rhs_counters += total(name);
    std::int64_t rhs_gauges = 0;
    for (const char* name : law.rhs_gauges) {
      rhs_gauges += std::llround(gauge_value(name));
    }
    if (law.skip_if_rhs_zero && rhs_counters == 0 && rhs_gauges == 0) {
      continue;
    }
    const std::int64_t rhs =
        static_cast<std::int64_t>(rhs_counters) + rhs_gauges;
    if (static_cast<std::int64_t>(lhs) != rhs) {
      return fail(error, std::string(law.name) + " violated at seq " +
                             std::to_string(seq_value) + ": lhs=" +
                             std::to_string(lhs) + " rhs=" +
                             std::to_string(rhs));
    }
  }

  ++frames_;
  ++next_seq_;
  last_time_s_ = time->as_number();
  last_rounds_ = rounds->as_number();
  return true;
}

bool TelemetryValidator::finish(std::string* error) const {
  if (frames_ == 0) return fail(error, "telemetry: no frames");
  return true;
}

TelemetryConfig telemetry_config_from_flags(const RunFlags& flags) {
  TelemetryConfig config;
  config.path = flags.telemetry_out;
  config.every_rounds = flags.telemetry_every_rounds;
  config.every_stream_s = flags.telemetry_every_s;
  config.openmetrics_path = flags.openmetrics_out;
  return config;
}

}  // namespace vp::obs
