// RAII scoped timer: measures wall time from construction to destruction
// (or stop()) and delivers it to a Histogram and/or a TraceRecorder span.
//
// A default-constructed timer is disarmed and never reads the clock, so
// the disabled-instrumentation pattern
//
//   obs::ScopedTimer t = obs::enabled()
//       ? obs::ScopedTimer(&hist, obs::trace(), {.phase = "x"})
//       : obs::ScopedTimer();
//
// costs one branch when observability is off.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vp::obs {

class ScopedTimer {
 public:
  // Disarmed: no clock read, destructor is a no-op.
  ScopedTimer() = default;

  // Armed if at least one sink is non-null. `proto` carries the span
  // fields except wall_ns, which the timer fills in.
  explicit ScopedTimer(Histogram* hist, TraceRecorder* trace = nullptr,
                       SpanEvent proto = {})
      : hist_(hist), trace_(trace), proto_(proto) {
    if (hist_ != nullptr || trace_ != nullptr) {
      armed_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ScopedTimer(ScopedTimer&& other) noexcept { *this = std::move(other); }
  ScopedTimer& operator=(ScopedTimer&& other) noexcept {
    if (this != &other) {
      hist_ = other.hist_;
      trace_ = other.trace_;
      proto_ = other.proto_;
      start_ = other.start_;
      armed_ = other.armed_;
      other.armed_ = false;
    }
    return *this;
  }

  ~ScopedTimer() { stop(); }

  // Records now instead of at scope exit; returns the elapsed wall time
  // (0 when disarmed). Idempotent.
  std::uint64_t stop() {
    if (!armed_) return 0;
    armed_ = false;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    if (hist_ != nullptr) hist_->record(static_cast<double>(ns));
    if (trace_ != nullptr) {
      proto_.wall_ns = ns;
      trace_->record(proto_);
    }
    return ns;
  }

 private:
  Histogram* hist_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  SpanEvent proto_{};
  std::chrono::steady_clock::time_point start_{};
  bool armed_ = false;
};

}  // namespace vp::obs
