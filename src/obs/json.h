// Minimal JSON document model used by the observability layer: the
// RunReport writer builds a Value tree and serialises it; the report
// checker and the obs tests parse emitted documents back. This is not a
// general-purpose JSON library — it supports exactly the subset the run
// reports and trace files use (null, bool, finite numbers, strings,
// arrays, objects; UTF-8 passed through verbatim, \uXXXX escapes written
// for control characters only).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

namespace vp::obs::json {

class Value;

using Array = std::vector<Value>;
// std::map keeps report keys sorted, so emitted documents are diffable.
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  // One constructor for every numeric type (JSON has only one number
  // kind); an overload set would collide where e.g. size_t == uint64_t.
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  Value(T n) : v_(static_cast<double>(n)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  // Typed accessors; throw InvalidArgument on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  // Object convenience: member lookup (nullptr when absent / not an object).
  const Value* find(const std::string& key) const;

  // Serialises the tree. `indent` > 0 pretty-prints with that many spaces
  // per level; 0 emits the compact single-line form (used for JSONL).
  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

// Parses one JSON document; trailing whitespace is allowed, anything else
// after the document throws InvalidArgument (as does any syntax error).
Value parse(std::string_view text);

// Appends the JSON string escape of `s` (including the quotes) to `out`.
void escape_string(std::string_view s, std::string& out);

}  // namespace vp::obs::json
