// Structured run reports: one JSON document per run aggregating the whole
// MetricsRegistry (counters, gauges, histogram percentiles) plus shared
// thread-pool utilisation and an optional binary-specific "extra" block.
//
// Schema "voiceprint.run_report/v1" (DESIGN.md §7):
//   {
//     "schema": "voiceprint.run_report/v1",
//     "binary": "<program name>",
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": <number>, ... },
//     "histograms": { "<name>": { "count", "sum", "min", "max", "mean",
//                                 "p50", "p95", "p99" }, ... },
//     "thread_pool": { "workers", "jobs", "tasks", "submit_wait_ns",
//                      "worker_busy_ns": [<uint>, ...] },
//     "extra": { ... }            // optional, e.g. the evaluation summary
//   }
// validate_run_report / validate_span are the single source of truth for
// that schema — the smoke-test checker binary and the unit tests both
// call them, so the documented schema and the emitted documents cannot
// drift apart.
#pragma once

#include <optional>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace vp::obs {

// Serialises one HistogramSnapshot to its report/telemetry JSON form
// ({"count","sum","min","max","mean","p50","p95","p99","rejected"}).
// Shared between the run report and the telemetry frame encoder.
json::Value histogram_to_json(const HistogramSnapshot& snapshot);

// Validates one serialised histogram object (shape, count a whole number,
// percentiles monotone and inside [min, max]). Extra keys are allowed.
bool validate_histogram_json(const std::string& name, const json::Value& v,
                             std::string* error);

// Builds the report document from `registry` plus the shared thread
// pool's utilisation counters.
json::Value build_run_report(const MetricsRegistry& registry,
                             const std::string& binary,
                             std::optional<json::Value> extra = std::nullopt);

// Serialises (pretty-printed) to `path`; throws InvalidArgument when the
// file cannot be written.
void write_run_report(const std::string& path, const json::Value& report);

// True when `report` conforms to voiceprint.run_report/v1. On failure,
// `error` (if non-null) receives a one-line description.
bool validate_run_report(const json::Value& report, std::string* error);

// True when `span` is a well-formed trace span line (phase string,
// wall_ns/thread counts, observer/window/pairs/round each null or a
// number).
bool validate_span(const json::Value& span, std::string* error);

// RAII harness hook used by the instrumented binaries: enables collection
// when either output path is non-empty (and resets the registry so the
// report covers exactly this run), opens the trace, and on destruction
// writes the report and closes the trace. With both paths empty it does
// nothing at all — the run stays uninstrumented.
class RunSession {
 public:
  RunSession(std::string binary, std::string metrics_out,
             std::string trace_out);
  ~RunSession();

  RunSession(const RunSession&) = delete;
  RunSession& operator=(const RunSession&) = delete;

  bool active() const { return active_; }

  // Binary-specific report block, e.g. the Eq. 12/13 evaluation summary.
  void set_extra(json::Value extra) { extra_ = std::move(extra); }

  // Merges one key into the extra block without clobbering what set_extra
  // installed (used e.g. to fold the telemetry health summary into a
  // report that already carries an evaluation block).
  void merge_extra(const std::string& key, json::Value value);

  // Writes the report and closes the trace now (idempotent; the
  // destructor calls this).
  void finish();

 private:
  std::string binary_;
  std::string metrics_out_;
  std::optional<json::Value> extra_;
  bool active_ = false;
  bool finished_ = false;
};

}  // namespace vp::obs
