// Scoped tracing for the detection pipeline: a thread-safe recorder that
// appends one JSON object per span to a JSONL file.
//
// Span taxonomy (DESIGN.md §7): every span carries `phase` (which stage of
// Algorithm 1 or the harness produced it), `wall_ns`, and `thread` (a
// small per-process sequential id assigned on a thread's first span);
// `observer`, `window`, `pairs` and `round` are contextual and emitted as
// null when the phase has no such notion; `round` and `observer` are
// inherited from the thread's SpanContext when the span itself does not
// set them. The file is valid JSONL: one complete object per line,
// flushed on close.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

namespace vp::obs {

// One completed span. Negative contextual fields mean "not applicable"
// and are written as JSON null.
struct SpanEvent {
  std::string_view phase;       // e.g. "comparison.sweep"
  std::int64_t observer = -1;   // observing node id
  std::int64_t window = -1;     // window ordinal within the run
  std::int64_t pairs = -1;      // pair count the span covered
  std::int64_t round = -1;      // confirmation-round id the span belongs to
  std::uint64_t wall_ns = 0;    // span duration
};

// Thread-local causal context. The stream engine (and the service's pump
// workers) install the current confirmation-round id and observing session
// before running detection, so spans recorded by core:: code — which knows
// nothing about rounds — still join the trace per round: record() fills
// any SpanEvent field left at -1 from the installed context.
struct SpanContext {
  std::int64_t round = -1;
  std::int64_t observer = -1;
};

SpanContext& span_context();

// RAII install/restore of the calling thread's SpanContext. Fields passed
// as -1 keep whatever the enclosing scope installed.
class ScopedSpanContext {
 public:
  ScopedSpanContext(std::int64_t round, std::int64_t observer);
  ~ScopedSpanContext();

  ScopedSpanContext(const ScopedSpanContext&) = delete;
  ScopedSpanContext& operator=(const ScopedSpanContext&) = delete;

 private:
  SpanContext saved_;
};

// Small sequential id of the calling thread (0 for the first thread that
// asks, 1 for the second, ...). Stable for the thread's lifetime; used so
// trace consumers can group spans by executing thread without parsing
// platform thread ids.
std::uint64_t trace_thread_id();

class TraceRecorder {
 public:
  // Opens `path` for writing (truncates); throws InvalidArgument when the
  // file cannot be opened.
  explicit TraceRecorder(const std::string& path);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Appends one span line. Thread-safe; the JSON text is built outside the
  // lock so contention covers only the stream append.
  void record(const SpanEvent& event);

  void flush();
  std::uint64_t spans_recorded() const;

 private:
  mutable std::mutex mu_;
  std::ofstream out_;
  std::uint64_t spans_ = 0;
};

}  // namespace vp::obs
