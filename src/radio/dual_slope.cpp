#include "radio/dual_slope.h"

#include <cmath>

#include "common/error.h"

namespace vp::radio {

DualSlopeParams DualSlopeParams::campus() {
  return {.reference_distance_m = 1.0,
          .critical_distance_m = 218.0,
          .gamma1 = 1.66,
          .gamma2 = 5.53,
          .sigma1_db = 2.8,
          .sigma2_db = 3.2};
}

DualSlopeParams DualSlopeParams::rural() {
  return {.reference_distance_m = 1.0,
          .critical_distance_m = 182.0,
          .gamma1 = 1.89,
          .gamma2 = 5.86,
          .sigma1_db = 3.1,
          .sigma2_db = 3.6};
}

DualSlopeParams DualSlopeParams::urban() {
  return {.reference_distance_m = 1.0,
          .critical_distance_m = 102.0,
          .gamma1 = 2.56,
          .gamma2 = 6.34,
          .sigma1_db = 3.9,
          .sigma2_db = 5.2};
}

DualSlopeParams DualSlopeParams::highway() {
  return {.reference_distance_m = 1.0,
          .critical_distance_m = 200.0,
          .gamma1 = 1.80,
          .gamma2 = 5.70,
          .sigma1_db = 3.0,
          .sigma2_db = 3.4};
}

DualSlopeModel::DualSlopeModel(double frequency_hz, DualSlopeParams params,
                               LinkBudget budget)
    : free_space_(frequency_hz, budget), params_(params) {
  VP_REQUIRE(params.reference_distance_m > 0.0);
  VP_REQUIRE(params.critical_distance_m > params.reference_distance_m);
  VP_REQUIRE(params.gamma1 > 0.0 && params.gamma2 > 0.0);
  VP_REQUIRE(params.sigma1_db >= 0.0 && params.sigma2_db >= 0.0);
}

double DualSlopeModel::mean_rx_power_dbm(double tx_power_dbm,
                                         double distance_m,
                                         double time_s) const {
  VP_REQUIRE(distance_m > 0.0);
  const DualSlopeParams& p = params_;
  // P(d0) computed with free space at the reference distance (Eq. 1).
  const double p_d0 = free_space_.mean_rx_power_dbm(
      tx_power_dbm, p.reference_distance_m, time_s);
  const double d = std::max(distance_m, p.reference_distance_m);
  if (d <= p.critical_distance_m) {
    return p_d0 -
           10.0 * p.gamma1 * std::log10(d / p.reference_distance_m);
  }
  return p_d0 -
         10.0 * p.gamma1 *
             std::log10(p.critical_distance_m / p.reference_distance_m) -
         10.0 * p.gamma2 * std::log10(d / p.critical_distance_m);
}

double DualSlopeModel::sample_rx_power_dbm(double tx_power_dbm,
                                           double distance_m, double time_s,
                                           Rng& rng) const {
  const double sigma = distance_m <= params_.critical_distance_m
                           ? params_.sigma1_db
                           : params_.sigma2_db;
  return mean_rx_power_dbm(tx_power_dbm, distance_m, time_s) +
         rng.normal(0.0, sigma);
}

double DualSlopeModel::shadowing_sigma_db(double distance_m,
                                          double /*time_s*/) const {
  return distance_m <= params_.critical_distance_m ? params_.sigma1_db
                                                   : params_.sigma2_db;
}

double DualSlopeModel::distance_for_mean_power(double tx_power_dbm,
                                               double rx_power_dbm,
                                               double time_s) const {
  const DualSlopeParams& p = params_;
  const double p_d0 = free_space_.mean_rx_power_dbm(
      tx_power_dbm, p.reference_distance_m, time_s);
  const double at_breakpoint =
      p_d0 - 10.0 * p.gamma1 *
                 std::log10(p.critical_distance_m / p.reference_distance_m);
  if (rx_power_dbm >= at_breakpoint) {
    return p.reference_distance_m *
           std::pow(10.0, (p_d0 - rx_power_dbm) / (10.0 * p.gamma1));
  }
  return p.critical_distance_m *
         std::pow(10.0, (at_breakpoint - rx_power_dbm) / (10.0 * p.gamma2));
}

}  // namespace vp::radio
