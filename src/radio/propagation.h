// Radio propagation model interface.
//
// The simulator (replacing NS-2.34) computes the power a receiver sees for
// every transmission through one of these models. Models are time-aware so
// the Fig. 11b experiment — where the environment drifts every 30 s and the
// predefined-model baseline breaks — is expressible; stationary models
// simply ignore the time argument.
//
// All models also expose the *mean* received power and its inverse
// (distance for a given mean power): the CPVSAD baseline [19] estimates
// positions exactly that way, which is precisely the fragility Voiceprint
// avoids.
#pragma once

#include <memory>
#include <string_view>

#include "common/rng.h"

namespace vp::radio {

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  // Deterministic (fading-free) received power in dBm at the given link
  // distance in metres. Requires distance > 0.
  virtual double mean_rx_power_dbm(double tx_power_dbm, double distance_m,
                                   double time_s) const = 0;

  // One stochastic realisation including fading/shadowing.
  virtual double sample_rx_power_dbm(double tx_power_dbm, double distance_m,
                                     double time_s, Rng& rng) const = 0;

  // Distance (metres) at which the mean received power equals
  // `rx_power_dbm` — the model inversion position-verification methods use.
  // Requires a strictly monotone mean power curve.
  virtual double distance_for_mean_power(double tx_power_dbm,
                                         double rx_power_dbm,
                                         double time_s) const = 0;

  // Large-scale shadowing deviation (dB) the model prescribes at this
  // link distance and time; deterministic models return 0. Consumed by the
  // correlated shadowing field (radio/fading.h) that realises per-radio-
  // pair fading in the simulator.
  virtual double shadowing_sigma_db(double distance_m, double time_s) const {
    (void)distance_m;
    (void)time_s;
    return 0.0;
  }

  virtual std::string_view name() const = 0;
};

// Antenna gains applied at both ends of every link (Table II: 7 dBi omni).
struct LinkBudget {
  double tx_antenna_gain_dbi = 0.0;
  double rx_antenna_gain_dbi = 0.0;

  double total_gain_db() const {
    return tx_antenna_gain_dbi + rx_antenna_gain_dbi;
  }
};

// --- Concrete models -------------------------------------------------------

// Friis free-space path loss (the model of Demirbas [14] / Bouassida [17]).
class FreeSpaceModel final : public PropagationModel {
 public:
  explicit FreeSpaceModel(double frequency_hz, LinkBudget budget = {});

  double mean_rx_power_dbm(double tx_power_dbm, double distance_m,
                           double time_s) const override;
  double sample_rx_power_dbm(double tx_power_dbm, double distance_m,
                             double time_s, Rng& rng) const override;
  double distance_for_mean_power(double tx_power_dbm, double rx_power_dbm,
                                 double time_s) const override;
  std::string_view name() const override { return "free-space"; }

  double wavelength_m() const { return wavelength_m_; }

 private:
  double wavelength_m_;
  LinkBudget budget_;
};

// Two-ray ground reflection (the model of Lv [16]). Below the crossover
// distance it degenerates to free space, as in NS-2.
class TwoRayGroundModel final : public PropagationModel {
 public:
  TwoRayGroundModel(double frequency_hz, double tx_height_m,
                    double rx_height_m, LinkBudget budget = {});

  double mean_rx_power_dbm(double tx_power_dbm, double distance_m,
                           double time_s) const override;
  double sample_rx_power_dbm(double tx_power_dbm, double distance_m,
                             double time_s, Rng& rng) const override;
  double distance_for_mean_power(double tx_power_dbm, double rx_power_dbm,
                                 double time_s) const override;
  std::string_view name() const override { return "two-ray-ground"; }

  // Distance where the two-ray term takes over from free space.
  double crossover_distance_m() const { return crossover_m_; }

 private:
  FreeSpaceModel free_space_;
  double tx_height_m_;
  double rx_height_m_;
  double crossover_m_;
  LinkBudget budget_;
};

// Log-normal shadowing (the model of Chen [18], Xiao [20], Yu [19] — and
// therefore the model CPVSAD assumes).
class ShadowingModel final : public PropagationModel {
 public:
  // Mean power follows P(d0) − 10·γ·log10(d/d0); P(d0) is free space at the
  // reference distance d0. σ is the shadowing deviation in dB.
  ShadowingModel(double frequency_hz, double reference_distance_m,
                 double path_loss_exponent, double sigma_db,
                 LinkBudget budget = {});

  double mean_rx_power_dbm(double tx_power_dbm, double distance_m,
                           double time_s) const override;
  double sample_rx_power_dbm(double tx_power_dbm, double distance_m,
                             double time_s, Rng& rng) const override;
  double distance_for_mean_power(double tx_power_dbm, double rx_power_dbm,
                                 double time_s) const override;
  double shadowing_sigma_db(double distance_m, double time_s) const override;
  std::string_view name() const override { return "log-shadowing"; }

  double path_loss_exponent() const { return exponent_; }
  double sigma_db() const { return sigma_db_; }

 private:
  FreeSpaceModel free_space_;
  double reference_distance_m_;
  double exponent_;
  double sigma_db_;
};

// Nakagami-m fast fading on top of a log-distance mean — the fading NS-2's
// VANET extensions use (Rayleigh when m = 1, matching Wang [15]).
class NakagamiModel final : public PropagationModel {
 public:
  NakagamiModel(double frequency_hz, double reference_distance_m,
                double path_loss_exponent, double m_shape,
                LinkBudget budget = {});

  double mean_rx_power_dbm(double tx_power_dbm, double distance_m,
                           double time_s) const override;
  double sample_rx_power_dbm(double tx_power_dbm, double distance_m,
                             double time_s, Rng& rng) const override;
  double distance_for_mean_power(double tx_power_dbm, double rx_power_dbm,
                                 double time_s) const override;
  std::string_view name() const override { return "nakagami"; }

  double m_shape() const { return m_shape_; }

 private:
  ShadowingModel mean_model_;  // σ = 0: pure log-distance mean
  double m_shape_;
};

}  // namespace vp::radio
