#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "radio/propagation.h"

namespace vp::radio {

TwoRayGroundModel::TwoRayGroundModel(double frequency_hz, double tx_height_m,
                                     double rx_height_m, LinkBudget budget)
    : free_space_(frequency_hz, budget),
      tx_height_m_(tx_height_m),
      rx_height_m_(rx_height_m),
      crossover_m_(4.0 * units::kPi * tx_height_m * rx_height_m /
                   free_space_.wavelength_m()),
      budget_(budget) {
  VP_REQUIRE(tx_height_m > 0.0 && rx_height_m > 0.0);
}

double TwoRayGroundModel::mean_rx_power_dbm(double tx_power_dbm,
                                            double distance_m,
                                            double time_s) const {
  VP_REQUIRE(distance_m > 0.0);
  if (distance_m < crossover_m_) {
    return free_space_.mean_rx_power_dbm(tx_power_dbm, distance_m, time_s);
  }
  // Pr = Pt + Gt + Gr + 20·log10(ht·hr) − 40·log10(d).
  return tx_power_dbm + budget_.total_gain_db() +
         20.0 * std::log10(tx_height_m_ * rx_height_m_) -
         40.0 * std::log10(distance_m);
}

double TwoRayGroundModel::sample_rx_power_dbm(double tx_power_dbm,
                                              double distance_m, double time_s,
                                              Rng& /*rng*/) const {
  return mean_rx_power_dbm(tx_power_dbm, distance_m, time_s);
}

double TwoRayGroundModel::distance_for_mean_power(double tx_power_dbm,
                                                  double rx_power_dbm,
                                                  double time_s) const {
  const double at_crossover =
      mean_rx_power_dbm(tx_power_dbm, crossover_m_, time_s);
  if (rx_power_dbm > at_crossover) {
    return free_space_.distance_for_mean_power(tx_power_dbm, rx_power_dbm,
                                               time_s);
  }
  // Invert the fourth-power law.
  const double num = tx_power_dbm + budget_.total_gain_db() +
                     20.0 * std::log10(tx_height_m_ * rx_height_m_) -
                     rx_power_dbm;
  return std::pow(10.0, num / 40.0);
}

}  // namespace vp::radio
