#include "radio/receiver.h"

#include <cmath>

#include "common/error.h"

namespace vp::radio {

Receiver::Receiver(ReceiverConfig config) : config_(config) {
  VP_REQUIRE(config.quantization_db >= 0.0);
}

std::optional<double> Receiver::measure(double rx_power_dbm) const {
  if (rx_power_dbm < config_.sensitivity_dbm) return std::nullopt;
  double rssi = rx_power_dbm;
  if (config_.quantization_db > 0.0) {
    rssi = std::round(rssi / config_.quantization_db) * config_.quantization_db;
  }
  return std::max(rssi, config_.sensitivity_dbm);
}

bool Receiver::captures(double rx_power_dbm, double interference_mw) const {
  if (rx_power_dbm < config_.sensitivity_dbm) return false;
  if (interference_mw <= 0.0) return true;
  const double signal_mw = units::dbm_to_mw(rx_power_dbm);
  const double sinr_db = units::linear_to_db(signal_mw / interference_mw);
  return sinr_db >= config_.capture_threshold_db;
}

}  // namespace vp::radio
